// Textual import/export for graph databases.
//
// Text format (one directive per line, '#' comments):
//   node <name>
//   edge <from> <label> <to>     (nodes are auto-created)
// DOT export is provided for visual inspection of small graphs.

#ifndef ECRPQ_GRAPH_IO_H_
#define ECRPQ_GRAPH_IO_H_

#include <string>
#include <string_view>

#include "graph/graph.h"
#include "util/status.h"

namespace ecrpq {

/// Parses the line-oriented text format into a graph over `alphabet`
/// (created fresh when null).
Result<GraphDb> ParseGraphText(std::string_view text,
                               AlphabetPtr alphabet = nullptr);

/// Serializes to the line-oriented text format (round-trips with
/// ParseGraphText up to node order).
std::string GraphToText(const GraphDb& graph);

/// Graphviz DOT rendering.
std::string GraphToDot(const GraphDb& graph);

}  // namespace ecrpq

#endif  // ECRPQ_GRAPH_IO_H_
