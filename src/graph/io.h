// Textual import/export for graph databases.
//
// Text format (one directive per line, '#' comments):
//   label <name>                 (declares an alphabet symbol; optional)
//   edge <from> <label> <to>     (nodes are auto-created)
//   node <name>
// Symbol ids are assigned in interning order, so `label` directives pin
// the id of every symbol — including ones no edge uses — making
// GraphToText → ParseGraphText preserve symbol ids exactly. Files without
// `label` lines still parse; their symbols are numbered by first edge use.
// DOT export is provided for visual inspection of small graphs.

#ifndef ECRPQ_GRAPH_IO_H_
#define ECRPQ_GRAPH_IO_H_

#include <string>
#include <string_view>

#include "graph/graph.h"
#include "util/status.h"

namespace ecrpq {

/// Parses the line-oriented text format into a graph over `alphabet`
/// (created fresh when null).
Result<GraphDb> ParseGraphText(std::string_view text,
                               AlphabetPtr alphabet = nullptr);

/// Serializes to the line-oriented text format. Round-trips with
/// ParseGraphText: node names, the edge multiset, and alphabet symbol
/// ids (via `label` directives in id order) are all preserved.
/// Anonymous nodes materialize as their "n<id>" display names —
/// disambiguated with trailing underscores if a named node owns that
/// string, so distinct nodes never merge on re-import.
std::string GraphToText(const GraphDb& graph);

/// Graphviz DOT rendering.
std::string GraphToDot(const GraphDb& graph);

}  // namespace ecrpq

#endif  // ECRPQ_GRAPH_IO_H_
