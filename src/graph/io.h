// Textual import/export for graph databases.
//
// Text format (one directive per line, '#' comments):
//   label <name>                 (declares an alphabet symbol; optional)
//   edge <from> <label> <to>     (nodes are auto-created)
//   node <name>
// Symbol ids are assigned in interning order, so `label` directives pin
// the id of every symbol — including ones no edge uses — making
// GraphToText → ParseGraphText preserve symbol ids exactly. Files without
// `label` lines still parse; their symbols are numbered by first edge use.
// DOT export is provided for visual inspection of small graphs.

#ifndef ECRPQ_GRAPH_IO_H_
#define ECRPQ_GRAPH_IO_H_

#include <string>
#include <string_view>

#include "graph/graph.h"
#include "util/status.h"

namespace ecrpq {

/// Parses the line-oriented text format into a graph over `alphabet`
/// (created fresh when null).
Result<GraphDb> ParseGraphText(std::string_view text,
                               AlphabetPtr alphabet = nullptr);

/// Serializes to the line-oriented text format. Round-trips with
/// ParseGraphText: node names, the edge multiset, and alphabet symbol
/// ids (via `label` directives in id order) are all preserved.
/// Anonymous nodes materialize as their "n<id>" display names —
/// disambiguated with trailing underscores if a named node owns that
/// string, so distinct nodes never merge on re-import.
std::string GraphToText(const GraphDb& graph);

/// Graphviz DOT rendering.
std::string GraphToDot(const GraphDb& graph);

// ---- bulk edge-list format -------------------------------------------------
//
// The `edge`-directive format above creates nodes by name and edges one at
// a time — fine for serving-layer fixtures, hopeless for multi-million-edge
// loads (per-line keyword dispatch, a name hash probe per endpoint, and
// per-edge adjacency reallocation). The edge-list format is the bulk
// counterpart, for anonymous graphs at generator scale:
//
//   ecrpq-edgelist <num_nodes> <num_edges> <num_labels>
//   <label name>                (num_labels lines, pinning symbol ids 0..)
//   <from> <label> <to>         (num_edges lines, integer ids)
//
// '#' starts a comment anywhere; blank lines are skipped. The declared
// counts let the loader reserve everything up front and hand the whole
// edge array to GraphDb::FromEdges (size-then-fill, no per-edge
// reallocation); integers are parsed with std::from_chars. Node names are
// NOT preserved (every node imports as anonymous) — by design: the format
// targets the synthetic large tiers and external bulk dumps, where names
// are dead weight. GraphToEdgeListText -> ParseEdgeListText round-trips
// node count, symbol ids, and the exact per-node edge order.

/// Parses the bulk edge-list format into a graph over `alphabet` (created
/// fresh when null; listed labels are interned in declaration order).
Result<GraphDb> ParseEdgeListText(std::string_view text,
                                  AlphabetPtr alphabet = nullptr);

/// Serializes to the bulk edge-list format (out-edges in per-node CSR
/// order, one "<from> <label> <to>" line per edge).
std::string GraphToEdgeListText(const GraphDb& graph);

}  // namespace ecrpq

#endif  // ECRPQ_GRAPH_IO_H_
