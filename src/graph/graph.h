// Σ-labeled graph databases (Section 2 of the paper).
//
// A graph database G = (V, E) with E ⊆ V × Σ × V. Nodes carry optional
// user-facing names; edges are labeled with alphabet symbols. A graph can be
// viewed as an NFA over Σ without initial/final states (the paper uses this
// equivalence throughout); `ToNfa` realizes that view with a chosen set of
// initial/final nodes.

#ifndef ECRPQ_GRAPH_GRAPH_H_
#define ECRPQ_GRAPH_GRAPH_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "automata/alphabet.h"
#include "automata/nfa.h"
#include "util/status.h"

namespace ecrpq {

/// Dense node id within a GraphDb.
using NodeId = int32_t;

/// A directed labeled edge (from, label, to).
struct Edge {
  NodeId from;
  Symbol label;
  NodeId to;

  bool operator==(const Edge& other) const = default;
};

/// One edge of a GraphMutation, endpoints and label by name. Unknown
/// node names are created; an unknown label is interned on add (but
/// never on remove — removing a never-seen label is a no-op skip).
struct EdgeSpec {
  std::string from;
  std::string label;
  std::string to;
};

/// A batched write: nodes to create plus edges to add/remove, applied
/// atomically under the writer lock by Database::ApplyDelta. Lives at
/// the graph layer (not api/) so the write-ahead log (src/wal/) can
/// serialize and replay batches without depending on the session
/// facade. Name-level resolution is deterministic — replaying the same
/// mutation sequence against the same starting graph assigns identical
/// node ids and symbols — which is what makes a logical WAL sound.
struct GraphMutation {
  /// Node names to create up front (empty string = anonymous node).
  /// Names that already exist are left as-is.
  std::vector<std::string> add_nodes;
  std::vector<EdgeSpec> add_edges;
  /// Each spec removes ONE instance of a matching edge (multiset
  /// semantics); specs matching nothing are counted, not errors.
  std::vector<EdgeSpec> remove_edges;
};

/// A finite Σ-labeled directed graph database.
class GraphDb {
 public:
  /// Creates an empty graph over `alphabet` (shared; may be grown by
  /// AddEdge with unseen labels).
  explicit GraphDb(AlphabetPtr alphabet);

  /// Creates an empty graph with a fresh alphabet.
  GraphDb();

  /// Adds an anonymous node.
  NodeId AddNode();

  /// Adds a named node (names must be unique; returns existing id if the
  /// name is already present). An empty name adds an anonymous node.
  NodeId AddNode(std::string_view name);

  /// Appends `count` anonymous nodes in one shot; returns the first new
  /// id. Bulk-construction companion of AddEdges.
  NodeId AddNodes(int count);

  /// Looks up a node by name.
  std::optional<NodeId> FindNode(std::string_view name) const;

  /// Node name, or "n<id>" for anonymous nodes.
  std::string NodeName(NodeId node) const;

  /// Adds an edge with an already-interned label symbol.
  void AddEdge(NodeId from, Symbol label, NodeId to);

  /// Adds an edge, interning `label` into the alphabet if needed.
  void AddEdge(NodeId from, std::string_view label, NodeId to);

  /// Removes ONE instance of the edge (from, label, to) — edges form a
  /// multiset, so a duplicate edge survives a single removal. Returns
  /// false (and changes nothing) when no such edge exists. Per-node
  /// adjacency order of the remaining edges is preserved.
  bool RemoveEdge(NodeId from, Symbol label, NodeId to);

  /// Bulk-adds `edges` (already-interned labels, existing node ids) with
  /// size-then-fill adjacency construction: one degree-counting pass, one
  /// exact reservation per touched node, one fill pass — no per-edge
  /// vector reallocation. Equivalent to calling AddEdge per element in
  /// order (per-node adjacency order is identical), but O(V + E) with
  /// ~2 allocations per touched node instead of the amortized-doubling
  /// churn that dominates multi-million-edge loads.
  void AddEdges(const std::vector<Edge>& edges);

  /// One-shot bulk construction: `num_nodes` anonymous nodes plus
  /// `edges`, built through the size-then-fill path. The workhorse of the
  /// large-graph generators and the edge-list loader (graph/io.h).
  static GraphDb FromEdges(AlphabetPtr alphabet, int num_nodes,
                           const std::vector<Edge>& edges);

  int num_nodes() const { return static_cast<int>(out_.size()); }
  int num_edges() const { return num_edges_; }

  /// Monotone mutation counter: bumped by every node/edge addition and
  /// every removal. Snapshots (GraphIndex) record the version they were
  /// built at, which makes staleness checks sound even for mutation
  /// sequences that leave the node/edge counts unchanged (e.g. one add
  /// plus one remove).
  uint64_t version() const { return version_; }

  const Alphabet& alphabet() const { return *alphabet_; }
  const AlphabetPtr& alphabet_ptr() const { return alphabet_; }

  /// Outgoing (label, target) pairs of `node`.
  const std::vector<std::pair<Symbol, NodeId>>& Out(NodeId node) const {
    return out_[node];
  }
  /// Incoming (label, source) pairs of `node`.
  const std::vector<std::pair<Symbol, NodeId>>& In(NodeId node) const {
    return in_[node];
  }

  /// True if the edge (from, label, to) exists.
  bool HasEdge(NodeId from, Symbol label, NodeId to) const;

  /// The graph as an NFA over its alphabet with the given initial and
  /// accepting node sets (paper: "a graph database can be naturally viewed
  /// as an NFA"). States coincide with node ids.
  Nfa ToNfa(const std::vector<NodeId>& initial,
            const std::vector<NodeId>& accepting) const;

  /// NFA view where every node is both initial and accepting.
  Nfa ToNfaAllStates() const;

 private:
  AlphabetPtr alphabet_;
  std::vector<std::vector<std::pair<Symbol, NodeId>>> out_;
  std::vector<std::vector<std::pair<Symbol, NodeId>>> in_;
  std::vector<std::string> names_;  // empty string = anonymous
  std::unordered_map<std::string, NodeId> name_index_;
  int num_edges_ = 0;
  uint64_t version_ = 0;
};

}  // namespace ecrpq

#endif  // ECRPQ_GRAPH_GRAPH_H_
