#include "graph/io.h"

#include <sstream>
#include <unordered_set>
#include <utility>
#include <vector>

namespace ecrpq {

namespace {
std::vector<std::string> SplitWhitespace(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string token;
  while (in >> token) out.push_back(token);
  return out;
}
}  // namespace

Result<GraphDb> ParseGraphText(std::string_view text, AlphabetPtr alphabet) {
  if (alphabet == nullptr) alphabet = std::make_shared<Alphabet>();
  GraphDb graph(alphabet);
  std::istringstream in{std::string(text)};
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::vector<std::string> tokens = SplitWhitespace(line);
    if (tokens.empty()) continue;
    if (tokens[0] == "node") {
      if (tokens.size() != 2) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": expected 'node <name>'");
      }
      graph.AddNode(tokens[1]);
    } else if (tokens[0] == "label") {
      if (tokens.size() != 2) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": expected 'label <name>'");
      }
      alphabet->Intern(tokens[1]);
    } else if (tokens[0] == "edge") {
      if (tokens.size() != 4) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_no) +
            ": expected 'edge <from> <label> <to>'");
      }
      NodeId from = graph.AddNode(tokens[1]);
      NodeId to = graph.AddNode(tokens[3]);
      graph.AddEdge(from, tokens[2], to);
    } else {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": unknown directive '" + tokens[0] +
                                     "'");
    }
  }
  return graph;
}

std::string GraphToText(const GraphDb& graph) {
  // Anonymous nodes have no stored name; they are exported under their
  // "n<id>" display name. When a *named* node already owns that string,
  // reusing it verbatim would merge the two nodes on re-import, so the
  // synthetic name is disambiguated with trailing underscores.
  std::vector<std::string> display(graph.num_nodes());
  std::unordered_set<std::string> used;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    std::string name = graph.NodeName(v);
    if (graph.FindNode(name) == v) {  // truly named node
      display[v] = std::move(name);
      used.insert(display[v]);
    }
  }
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (!display[v].empty()) continue;
    std::string name = graph.NodeName(v);
    while (used.count(name) > 0) name += "_";
    display[v] = std::move(name);
    used.insert(display[v]);
  }

  std::string out;
  for (Symbol a = 0; a < graph.alphabet().size(); ++a) {
    out += "label " + graph.alphabet().Label(a) + "\n";
  }
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    out += "node " + display[v] + "\n";
  }
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (const auto& [label, to] : graph.Out(v)) {
      out += "edge " + display[v] + " " + graph.alphabet().Label(label) +
             " " + display[to] + "\n";
    }
  }
  return out;
}

std::string GraphToDot(const GraphDb& graph) {
  std::string out = "digraph G {\n";
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    out += "  \"" + graph.NodeName(v) + "\";\n";
  }
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (const auto& [label, to] : graph.Out(v)) {
      out += "  \"" + graph.NodeName(v) + "\" -> \"" + graph.NodeName(to) +
             "\" [label=\"" + graph.alphabet().Label(label) + "\"];\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace ecrpq
