#include "graph/io.h"

#include <sstream>
#include <vector>

namespace ecrpq {

namespace {
std::vector<std::string> SplitWhitespace(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string token;
  while (in >> token) out.push_back(token);
  return out;
}
}  // namespace

Result<GraphDb> ParseGraphText(std::string_view text, AlphabetPtr alphabet) {
  if (alphabet == nullptr) alphabet = std::make_shared<Alphabet>();
  GraphDb graph(alphabet);
  std::istringstream in{std::string(text)};
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::vector<std::string> tokens = SplitWhitespace(line);
    if (tokens.empty()) continue;
    if (tokens[0] == "node") {
      if (tokens.size() != 2) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": expected 'node <name>'");
      }
      graph.AddNode(tokens[1]);
    } else if (tokens[0] == "edge") {
      if (tokens.size() != 4) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_no) +
            ": expected 'edge <from> <label> <to>'");
      }
      NodeId from = graph.AddNode(tokens[1]);
      NodeId to = graph.AddNode(tokens[3]);
      graph.AddEdge(from, tokens[2], to);
    } else {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": unknown directive '" + tokens[0] +
                                     "'");
    }
  }
  return graph;
}

std::string GraphToText(const GraphDb& graph) {
  std::string out;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    out += "node " + graph.NodeName(v) + "\n";
  }
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (const auto& [label, to] : graph.Out(v)) {
      out += "edge " + graph.NodeName(v) + " " +
             graph.alphabet().Label(label) + " " + graph.NodeName(to) + "\n";
    }
  }
  return out;
}

std::string GraphToDot(const GraphDb& graph) {
  std::string out = "digraph G {\n";
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    out += "  \"" + graph.NodeName(v) + "\";\n";
  }
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (const auto& [label, to] : graph.Out(v)) {
      out += "  \"" + graph.NodeName(v) + "\" -> \"" + graph.NodeName(to) +
             "\" [label=\"" + graph.alphabet().Label(label) + "\"];\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace ecrpq
