#include "graph/io.h"

#include <charconv>
#include <sstream>
#include <unordered_set>
#include <utility>
#include <vector>

namespace ecrpq {

namespace {
std::vector<std::string> SplitWhitespace(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string token;
  while (in >> token) out.push_back(token);
  return out;
}
}  // namespace

Result<GraphDb> ParseGraphText(std::string_view text, AlphabetPtr alphabet) {
  if (alphabet == nullptr) alphabet = std::make_shared<Alphabet>();
  GraphDb graph(alphabet);
  std::istringstream in{std::string(text)};
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::vector<std::string> tokens = SplitWhitespace(line);
    if (tokens.empty()) continue;
    if (tokens[0] == "node") {
      if (tokens.size() != 2) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": expected 'node <name>'");
      }
      graph.AddNode(tokens[1]);
    } else if (tokens[0] == "label") {
      if (tokens.size() != 2) {
        return Status::InvalidArgument("line " + std::to_string(line_no) +
                                       ": expected 'label <name>'");
      }
      alphabet->Intern(tokens[1]);
    } else if (tokens[0] == "edge") {
      if (tokens.size() != 4) {
        return Status::InvalidArgument(
            "line " + std::to_string(line_no) +
            ": expected 'edge <from> <label> <to>'");
      }
      NodeId from = graph.AddNode(tokens[1]);
      NodeId to = graph.AddNode(tokens[3]);
      graph.AddEdge(from, tokens[2], to);
    } else {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": unknown directive '" + tokens[0] +
                                     "'");
    }
  }
  return graph;
}

std::string GraphToText(const GraphDb& graph) {
  // Anonymous nodes have no stored name; they are exported under their
  // "n<id>" display name. When a *named* node already owns that string,
  // reusing it verbatim would merge the two nodes on re-import, so the
  // synthetic name is disambiguated with trailing underscores.
  std::vector<std::string> display(graph.num_nodes());
  std::unordered_set<std::string> used;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    std::string name = graph.NodeName(v);
    if (graph.FindNode(name) == v) {  // truly named node
      display[v] = std::move(name);
      used.insert(display[v]);
    }
  }
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    if (!display[v].empty()) continue;
    std::string name = graph.NodeName(v);
    while (used.count(name) > 0) name += "_";
    display[v] = std::move(name);
    used.insert(display[v]);
  }

  std::string out;
  for (Symbol a = 0; a < graph.alphabet().size(); ++a) {
    out += "label " + graph.alphabet().Label(a) + "\n";
  }
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    out += "node " + display[v] + "\n";
  }
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (const auto& [label, to] : graph.Out(v)) {
      out += "edge " + display[v] + " " + graph.alphabet().Label(label) +
             " " + display[to] + "\n";
    }
  }
  return out;
}

Result<GraphDb> ParseEdgeListText(std::string_view text,
                                  AlphabetPtr alphabet) {
  if (alphabet == nullptr) alphabet = std::make_shared<Alphabet>();
  // Cursor-based tokenizer: newlines are whitespace (the format is
  // positional — header, labels, then 3 integers per edge), '#' comments
  // run to end of line, and integers parse in place with from_chars — no
  // per-line string allocation on the multi-million-edge path.
  const char* p = text.data();
  const char* end = p + text.size();
  int line = 1;
  auto skip = [&] {
    while (p < end) {
      if (*p == '#') {
        while (p < end && *p != '\n') ++p;
      } else if (*p == '\n') {
        ++line;
        ++p;
      } else if (*p == ' ' || *p == '\t' || *p == '\r') {
        ++p;
      } else {
        break;
      }
    }
  };
  auto error = [&](const std::string& what) {
    return Status::InvalidArgument("edge-list line " + std::to_string(line) +
                                   ": " + what);
  };
  auto word = [&](std::string_view* out) {
    skip();
    const char* b = p;
    while (p < end && *p != ' ' && *p != '\t' && *p != '\r' && *p != '\n' &&
           *p != '#') {
      ++p;
    }
    *out = std::string_view(b, p - b);
    return !out->empty();
  };
  auto integer = [&](int64_t* out) {
    skip();
    auto [ptr, ec] = std::from_chars(p, end, *out);
    if (ec != std::errc()) return false;
    p = ptr;
    return true;
  };

  std::string_view magic;
  if (!word(&magic) || magic != "ecrpq-edgelist") {
    return error("expected 'ecrpq-edgelist <nodes> <edges> <labels>' header");
  }
  int64_t num_nodes = 0, num_edges = 0, num_labels = 0;
  if (!integer(&num_nodes) || !integer(&num_edges) || !integer(&num_labels) ||
      num_nodes < 0 || num_edges < 0 || num_labels < 0 ||
      num_nodes > INT32_MAX || num_edges > INT32_MAX) {
    return error("malformed header counts");
  }
  for (int64_t l = 0; l < num_labels; ++l) {
    std::string_view name;
    if (!word(&name)) {
      return error("expected " + std::to_string(num_labels) +
                   " label names, got " + std::to_string(l));
    }
    alphabet->Intern(name);
  }
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  for (int64_t i = 0; i < num_edges; ++i) {
    int64_t from = 0, label = 0, to = 0;
    if (!integer(&from) || !integer(&label) || !integer(&to)) {
      return error("expected '<from> <label> <to>' for edge " +
                   std::to_string(i) + " of " + std::to_string(num_edges));
    }
    if (from < 0 || from >= num_nodes || to < 0 || to >= num_nodes) {
      return error("edge " + std::to_string(i) + ": node id out of range");
    }
    if (label < 0 || label >= alphabet->size()) {
      return error("edge " + std::to_string(i) + ": label id out of range");
    }
    edges.push_back({static_cast<NodeId>(from), static_cast<Symbol>(label),
                     static_cast<NodeId>(to)});
  }
  skip();
  if (p < end) return error("trailing content after declared edge count");
  return GraphDb::FromEdges(std::move(alphabet),
                            static_cast<int>(num_nodes), edges);
}

std::string GraphToEdgeListText(const GraphDb& graph) {
  std::string out = "ecrpq-edgelist " + std::to_string(graph.num_nodes()) +
                    " " + std::to_string(graph.num_edges()) + " " +
                    std::to_string(graph.alphabet().size()) + "\n";
  for (Symbol a = 0; a < graph.alphabet().size(); ++a) {
    out += graph.alphabet().Label(a);
    out += '\n';
  }
  out.reserve(out.size() + static_cast<size_t>(graph.num_edges()) * 24);
  char buf[64];
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (const auto& [label, to] : graph.Out(v)) {
      const int n = std::snprintf(buf, sizeof(buf), "%d %d %d\n", v,
                                  static_cast<int>(label), to);
      out.append(buf, n);
    }
  }
  return out;
}

std::string GraphToDot(const GraphDb& graph) {
  std::string out = "digraph G {\n";
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    out += "  \"" + graph.NodeName(v) + "\";\n";
  }
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    for (const auto& [label, to] : graph.Out(v)) {
      out += "  \"" + graph.NodeName(v) + "\" -> \"" + graph.NodeName(to) +
             "\" [label=\"" + graph.alphabet().Label(label) + "\"];\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace ecrpq
