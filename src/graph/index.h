// Sealed CSR label index over a GraphDb — the evaluation hot-path view.
//
// Theorem 6.1's NLOGSPACE data-complexity argument works on-the-fly: a
// product configuration holds one graph node per path variable plus one
// NFA state-set per relation, and a step only needs the edges of those
// nodes *restricted to the letters the relation states can currently
// read*. GraphDb's adjacency (one unsorted (label, target) vector per
// node) forces every step to scan a node's full out-list even when the
// live letter set is a fraction of the alphabet. GraphIndex realizes the
// restricted-edge access the theorem assumes:
//
//   * out- and in-edges in CSR form (one offsets array, one labels array,
//     one targets array), sorted by (node, label, target) — the
//     per-(node, label) successor set is a contiguous slice found by
//     binary search inside the node's range;
//   * a per-node label bitmask (alphabets here are small) so a frontier
//     expansion can intersect "letters the automaton can read" with
//     "letters this node has" in one AND before touching edge memory;
//   * per-label edge counts (selectivity, used by planners/benches) and a
//     degree-descending node permutation for frontier seeding: start-node
//     enumeration visits high-degree nodes first, which reaches accepting
//     configurations sooner under early termination (LIMIT / EXISTS).
//
// An index is an immutable snapshot: it is built from a GraphDb once and
// never mutated. Database (src/api) caches one per graph version and
// drops it on mutation; engines fall back to GraphDb scans when no index
// is supplied (EvalOptions::use_graph_index = false).

#ifndef ECRPQ_GRAPH_INDEX_H_
#define ECRPQ_GRAPH_INDEX_H_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace ecrpq {

class GraphIndex {
 public:
  /// Builds the sealed index (CSR arrays, masks, counts, permutation)
  /// from the current state of `graph`. Size-then-fill construction: one
  /// degree pass sizes the CSR arrays exactly, then each node's slice is
  /// filled by sorting packed (label << 32 | target) keys — no per-edge
  /// reallocation and no per-node permutation buffers. Auto-parallelizes
  /// the fill above ~512k edges (see the overload).
  static std::shared_ptr<const GraphIndex> Build(const GraphDb& graph);

  /// As Build, with the CSR fill explicitly split over contiguous node
  /// ranges on `num_threads` pool lanes (0 = auto). Each node owns a
  /// disjoint output slice, so the built index is byte-identical at any
  /// lane count.
  static std::shared_ptr<const GraphIndex> Build(const GraphDb& graph,
                                                 int num_threads);

  int num_nodes() const { return num_nodes_; }
  int num_edges() const { return num_edges_; }
  /// Alphabet size at build time (the snapshot's label universe).
  int num_labels() const { return num_labels_; }

  /// Targets of `node`'s out-edges labeled `label` (a contiguous,
  /// ascending slice; empty when the node has no such edge).
  std::span<const NodeId> Out(NodeId node, Symbol label) const {
    return Slice(out_offsets_, out_labels_, out_targets_, node, label);
  }
  /// Sources of `node`'s in-edges labeled `label`.
  std::span<const NodeId> In(NodeId node, Symbol label) const {
    return Slice(in_offsets_, in_labels_, in_targets_, node, label);
  }

  /// All out-edge labels/targets of `node`, sorted by label (parallel
  /// spans of equal length).
  std::span<const Symbol> OutLabels(NodeId node) const {
    return {out_labels_.data() + out_offsets_[node],
            out_labels_.data() + out_offsets_[node + 1]};
  }
  std::span<const NodeId> OutTargets(NodeId node) const {
    return {out_targets_.data() + out_offsets_[node],
            out_targets_.data() + out_offsets_[node + 1]};
  }
  std::span<const Symbol> InLabels(NodeId node) const {
    return {in_labels_.data() + in_offsets_[node],
            in_labels_.data() + in_offsets_[node + 1]};
  }
  std::span<const NodeId> InSources(NodeId node) const {
    return {in_targets_.data() + in_offsets_[node],
            in_targets_.data() + in_offsets_[node + 1]};
  }

  /// Bit `l` set iff `node` has an out-edge labeled `l` (labels >= 63
  /// collapse into bit 63; exact when num_labels() <= 63, which covers
  /// every workload here — callers must treat bit 63 as "maybe").
  uint64_t OutLabelMask(NodeId node) const { return out_label_mask_[node]; }
  uint64_t InLabelMask(NodeId node) const { return in_label_mask_[node]; }

  int out_degree(NodeId node) const {
    return out_offsets_[node + 1] - out_offsets_[node];
  }
  int in_degree(NodeId node) const {
    return in_offsets_[node + 1] - in_offsets_[node];
  }

  /// Total number of edges carrying `label`.
  int64_t LabelCount(Symbol label) const { return label_counts_[label]; }

  /// Distinct nodes with at least one out-edge (in-edge) carrying `label`.
  /// Planner statistics: LabelCount / LabelSourceCount is the average
  /// per-source fanout of the label, and the source/target counts bound
  /// the frontier a label-restricted expansion can reach.
  int64_t LabelSourceCount(Symbol label) const {
    return label_source_counts_[label];
  }
  int64_t LabelTargetCount(Symbol label) const {
    return label_target_counts_[label];
  }

  /// Every node exactly once, by descending (out + in) degree; ties by
  /// ascending id. Frontier seeding order.
  const std::vector<NodeId>& NodesByDegree() const { return by_degree_; }

  /// Every node exactly once, by descending in-degree; ties by ascending
  /// id. Seeding order for backward / bidirectional searches: end-anchor
  /// enumeration visits the nodes with the densest backward frontiers
  /// first, reaching accepting configurations sooner under early
  /// termination (the in-side mirror of NodesByDegree).
  const std::vector<NodeId>& NodesByInDegree() const { return by_in_degree_; }

 private:
  GraphIndex() = default;

  static std::span<const NodeId> Slice(const std::vector<int32_t>& offsets,
                                       const std::vector<Symbol>& labels,
                                       const std::vector<NodeId>& targets,
                                       NodeId node, Symbol label);

  int num_nodes_ = 0;
  int num_edges_ = 0;
  int num_labels_ = 0;
  // CSR triples: offsets (num_nodes + 1), labels/targets (num_edges),
  // sorted by (node, label, target).
  std::vector<int32_t> out_offsets_, in_offsets_;
  std::vector<Symbol> out_labels_, in_labels_;
  std::vector<NodeId> out_targets_, in_targets_;
  std::vector<uint64_t> out_label_mask_, in_label_mask_;
  std::vector<int64_t> label_counts_;
  std::vector<int64_t> label_source_counts_, label_target_counts_;
  std::vector<NodeId> by_degree_;
  std::vector<NodeId> by_in_degree_;
};

using GraphIndexPtr = std::shared_ptr<const GraphIndex>;

}  // namespace ecrpq

#endif  // ECRPQ_GRAPH_INDEX_H_
