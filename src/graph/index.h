// Segmented CSR label index over a GraphDb — the evaluation hot-path view.
//
// Theorem 6.1's NLOGSPACE data-complexity argument works on-the-fly: a
// product configuration holds one graph node per path variable plus one
// NFA state-set per relation, and a step only needs the edges of those
// nodes *restricted to the letters the relation states can currently
// read*. GraphDb's adjacency (one unsorted (label, target) vector per
// node) forces every step to scan a node's full out-list even when the
// live letter set is a fraction of the alphabet. GraphIndex realizes the
// restricted-edge access the theorem assumes:
//
//   * out- and in-edges in CSR form (one offsets array, one labels array,
//     one targets array), sorted by (node, label, target) — the
//     per-(node, label) successor set is a contiguous slice found by
//     binary search inside the node's range;
//   * a per-node label bitmask (alphabets here are small) so a frontier
//     expansion can intersect "letters the automaton can read" with
//     "letters this node has" in one AND before touching edge memory;
//   * per-label edge counts (selectivity, used by planners/benches) and a
//     degree-descending node permutation for frontier seeding: start-node
//     enumeration visits high-degree nodes first, which reaches accepting
//     configurations sooner under early termination (LIMIT / EXISTS).
//
// Snapshots and deltas
// --------------------
// An index is an immutable snapshot; engines never see it change. Two
// ways a snapshot comes to exist:
//
//   * Build(graph): a sealed BASE — the full parallel size-then-fill CSR
//     construction, O(V + E).
//   * snapshot->ApplyDelta(batch): a DELTA snapshot layered on the same
//     base. The batch's touched nodes get fully *merged* logical rows
//     (previous view of the row ⊎ adds ∖ removes, kept (label, target)-
//     sorted) written into one new shared_ptr-held delta segment; every
//     untouched row keeps resolving into the shared base (or an older
//     segment) untouched. Removing every edge of a row leaves an empty
//     row in the segment — the tombstone that shadows the base row.
//     Cost is O(|batch| + Σ degree(touched) + |overlay|), independent of
//     V and E — the O(delta) write path Database::ApplyDelta rides.
//
// A delta snapshot presents the exact logical view a from-scratch Build
// of the mutated graph would: identical slices, masks, degrees, label
// statistics, and degree-ordered permutations (property-tested in
// tests/index_delta_test.cc), so engines and planner cost models are
// byte-for-byte oblivious to which kind of snapshot they run on. Each
// row lookup costs one branch when the overlay is empty and one binary
// search over the touched-node directory otherwise; Database folds
// segments back into a fresh base (threshold/background compaction) so
// the directory stays small.
//
// Database (src/api) owns the snapshot-swap protocol: executions pin a
// snapshot shared_ptr for their whole run and finish against it even as
// writers chain new delta snapshots; the serving layer's result cache
// keys on the snapshot pointer, so every ApplyDelta (and every
// compaction) is a distinct cache generation. Engines fall back to
// GraphDb scans when no index is supplied (EvalOptions::use_graph_index
// = false).

#ifndef ECRPQ_GRAPH_INDEX_H_
#define ECRPQ_GRAPH_INDEX_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace ecrpq {

class GraphIndex;
using GraphIndexPtr = std::shared_ptr<const GraphIndex>;

class GraphIndex : public std::enable_shared_from_this<GraphIndex> {
 public:
  /// One MutateGraph batch in index terms: already-interned labels,
  /// resolved node ids, and the post-batch totals of the graph the batch
  /// was applied to. `removed` must list only edges that were actually
  /// present (Database::ApplyDelta filters through GraphDb::RemoveEdge),
  /// each entry deleting one instance under multiset semantics.
  struct Delta {
    std::vector<Edge> added;
    std::vector<Edge> removed;
    /// Totals of the mutated graph (>= the snapshot's; node ids in
    /// [num_nodes(), new_num_nodes) are the batch's fresh nodes).
    int new_num_nodes = 0;
    int new_num_labels = 0;
    /// GraphDb::version() after the batch (staleness checks).
    uint64_t new_version = 0;
  };

  /// Builds a sealed base index (CSR arrays, masks, counts, permutation)
  /// from the current state of `graph`. Size-then-fill construction: one
  /// degree pass sizes the CSR arrays exactly, then each node's slice is
  /// filled by sorting packed (label << 32 | target) keys — no per-edge
  /// reallocation and no per-node permutation buffers. Auto-parallelizes
  /// the fill above ~512k edges (see the overload).
  static GraphIndexPtr Build(const GraphDb& graph);

  /// As Build, with the CSR fill explicitly split over contiguous node
  /// ranges on `num_threads` pool lanes (0 = auto). Each node owns a
  /// disjoint output slice, so the built index is byte-identical at any
  /// lane count.
  static GraphIndexPtr Build(const GraphDb& graph, int num_threads);

  /// A new snapshot presenting this snapshot's view plus `delta`. Shares
  /// the base CSR and all prior segments; adds one segment holding the
  /// merged rows of the touched nodes. O(delta), never O(V + E) — see
  /// the header comment. This snapshot is unchanged.
  GraphIndexPtr ApplyDelta(const Delta& delta) const;

  int num_nodes() const { return num_nodes_; }
  int num_edges() const { return num_edges_; }
  /// Alphabet size at snapshot time (the snapshot's label universe).
  int num_labels() const { return num_labels_; }

  /// GraphDb::version() of the graph state this snapshot reflects.
  uint64_t version() const { return version_; }

  // ---- delta-chain introspection (compaction policy, stats) ----

  bool has_delta() const { return !segments_.empty(); }
  size_t num_delta_segments() const { return segments_.size(); }
  /// Nodes whose rows live in the overlay rather than the base.
  size_t delta_nodes() const { return out_overlay_.nodes.size(); }
  /// Edges resident in overlay rows (out side): the overlay's footprint,
  /// compared against base_edges() by the compaction threshold.
  int64_t delta_edges() const { return delta_edges_; }
  /// Edge count of the shared base the segments shadow.
  int base_edges() const { return base_num_edges_; }

  /// Targets of `node`'s out-edges labeled `label` (a contiguous,
  /// ascending slice; empty when the node has no such edge).
  std::span<const NodeId> Out(NodeId node, Symbol label) const {
    if (overlay_path_) [[unlikely]] {
      if (const RowRef* r = FindOverlay(out_overlay_, node)) {
        return SliceRow(*r, label);
      }
      if (node >= base_num_nodes_) return {};
    }
    return SliceBase(*bout_, node, label);
  }
  /// Sources of `node`'s in-edges labeled `label`.
  std::span<const NodeId> In(NodeId node, Symbol label) const {
    if (overlay_path_) [[unlikely]] {
      if (const RowRef* r = FindOverlay(in_overlay_, node)) {
        return SliceRow(*r, label);
      }
      if (node >= base_num_nodes_) return {};
    }
    return SliceBase(*bin_, node, label);
  }

  /// All out-edge labels/targets of `node`, sorted by label (parallel
  /// spans of equal length).
  std::span<const Symbol> OutLabels(NodeId node) const {
    return RowLabels(out_overlay_, *bout_, node);
  }
  std::span<const NodeId> OutTargets(NodeId node) const {
    return RowTargets(out_overlay_, *bout_, node);
  }
  std::span<const Symbol> InLabels(NodeId node) const {
    return RowLabels(in_overlay_, *bin_, node);
  }
  std::span<const NodeId> InSources(NodeId node) const {
    return RowTargets(in_overlay_, *bin_, node);
  }

  /// Bit `l` set iff `node` has an out-edge labeled `l` (labels >= 63
  /// collapse into bit 63; exact when num_labels() <= 63, which covers
  /// every workload here — callers must treat bit 63 as "maybe").
  uint64_t OutLabelMask(NodeId node) const {
    if (overlay_path_) [[unlikely]] {
      if (const RowRef* r = FindOverlay(out_overlay_, node)) return r->mask;
      if (node >= base_num_nodes_) return 0;
    }
    return bout_->masks[node];
  }
  uint64_t InLabelMask(NodeId node) const {
    if (overlay_path_) [[unlikely]] {
      if (const RowRef* r = FindOverlay(in_overlay_, node)) return r->mask;
      if (node >= base_num_nodes_) return 0;
    }
    return bin_->masks[node];
  }

  int out_degree(NodeId node) const {
    if (overlay_path_) [[unlikely]] {
      if (const RowRef* r = FindOverlay(out_overlay_, node)) return r->len;
      if (node >= base_num_nodes_) return 0;
    }
    return bout_->offsets[node + 1] - bout_->offsets[node];
  }
  int in_degree(NodeId node) const {
    if (overlay_path_) [[unlikely]] {
      if (const RowRef* r = FindOverlay(in_overlay_, node)) return r->len;
      if (node >= base_num_nodes_) return 0;
    }
    return bin_->offsets[node + 1] - bin_->offsets[node];
  }

  /// Total number of edges carrying `label`.
  int64_t LabelCount(Symbol label) const { return label_counts_[label]; }

  /// Distinct nodes with at least one out-edge (in-edge) carrying `label`.
  /// Planner statistics: LabelCount / LabelSourceCount is the average
  /// per-source fanout of the label, and the source/target counts bound
  /// the frontier a label-restricted expansion can reach.
  int64_t LabelSourceCount(Symbol label) const {
    return label_source_counts_[label];
  }
  int64_t LabelTargetCount(Symbol label) const {
    return label_target_counts_[label];
  }

  /// Every node exactly once, by descending (out + in) degree; ties by
  /// ascending id. Frontier seeding order. On a delta snapshot the first
  /// call materializes the repaired permutation (see EnsureDegreeOrders);
  /// every later call is a plain reference return.
  const std::vector<NodeId>& NodesByDegree() const {
    EnsureDegreeOrders();
    return by_degree_;
  }

  /// Every node exactly once, by descending in-degree; ties by ascending
  /// id. Seeding order for backward / bidirectional searches: end-anchor
  /// enumeration visits the nodes with the densest backward frontiers
  /// first, reaching accepting configurations sooner under early
  /// termination (the in-side mirror of NodesByDegree).
  const std::vector<NodeId>& NodesByInDegree() const {
    EnsureDegreeOrders();
    return by_in_degree_;
  }

 private:
  GraphIndex() = default;

  /// One CSR direction of the sealed base: offsets (num_nodes + 1),
  /// labels/targets (num_edges) sorted by (node, label, target), per-node
  /// label-presence masks.
  struct Side {
    std::vector<int32_t> offsets;
    std::vector<Symbol> labels;
    std::vector<NodeId> targets;
    std::vector<uint64_t> masks;
  };
  /// The immutable arrays every snapshot of one build generation shares.
  struct Base {
    int num_nodes = 0;
    Side out, in;
  };
  /// One direction of one delta batch: the concatenated merged rows of
  /// the nodes the batch touched (row i spans
  /// [offsets[i], offsets[i+1]) of labels/targets).
  struct SegSide {
    std::vector<int32_t> offsets{0};
    std::vector<Symbol> labels;
    std::vector<NodeId> targets;
  };
  struct DeltaSegment {
    SegSide out, in;
  };

  /// A resolved overlay row: raw pointers into whichever segment holds
  /// the node's newest merged row (kept alive by segments_).
  struct RowRef {
    const Symbol* labels;
    const NodeId* targets;
    int32_t len;
    uint64_t mask;
  };
  /// Per-side directory of overlay rows, sorted by node id. One binary
  /// search resolves a touched node regardless of chain depth.
  struct Overlay {
    std::vector<NodeId> nodes;
    std::vector<RowRef> rows;
  };

  static const RowRef* FindOverlay(const Overlay& overlay, NodeId node) {
    auto it = std::lower_bound(overlay.nodes.begin(), overlay.nodes.end(),
                               node);
    if (it == overlay.nodes.end() || *it != node) return nullptr;
    return &overlay.rows[it - overlay.nodes.begin()];
  }
  static std::span<const NodeId> SliceRow(const RowRef& row, Symbol label) {
    auto [lo, hi] = std::equal_range(row.labels, row.labels + row.len, label);
    return {row.targets + (lo - row.labels), row.targets + (hi - row.labels)};
  }
  static std::span<const NodeId> SliceBase(const Side& side, NodeId node,
                                           Symbol label) {
    const Symbol* first = side.labels.data() + side.offsets[node];
    const Symbol* last = side.labels.data() + side.offsets[node + 1];
    auto [lo, hi] = std::equal_range(first, last, label);
    return {side.targets.data() + (lo - side.labels.data()),
            side.targets.data() + (hi - side.labels.data())};
  }
  std::span<const Symbol> RowLabels(const Overlay& overlay, const Side& side,
                                    NodeId node) const {
    if (overlay_path_) [[unlikely]] {
      if (const RowRef* r = FindOverlay(overlay, node)) {
        return {r->labels, r->labels + r->len};
      }
      if (node >= base_num_nodes_) return {};
    }
    return {side.labels.data() + side.offsets[node],
            side.labels.data() + side.offsets[node + 1]};
  }
  std::span<const NodeId> RowTargets(const Overlay& overlay, const Side& side,
                                     NodeId node) const {
    if (overlay_path_) [[unlikely]] {
      if (const RowRef* r = FindOverlay(overlay, node)) {
        return {r->targets, r->targets + r->len};
      }
      if (node >= base_num_nodes_) return {};
    }
    return {side.targets.data() + side.offsets[node],
            side.targets.data() + side.offsets[node + 1]};
  }

  /// ApplyDelta helper: merges one side's batch into a new SegSide and
  /// splices the touched rows into `next`'s overlay (see index.cc).
  static void ApplySide(const GraphIndex& prev, bool out_side,
                        const Delta& delta, GraphIndex* next,
                        SegSide* seg_side, std::vector<NodeId>* touched);
  void RepairDegreeOrder(const GraphIndex& prev,
                         const std::vector<NodeId>& dirty,
                         bool in_only) const;
  void EnsureDegreeOrders() const;

  int num_nodes_ = 0;
  int num_edges_ = 0;
  int num_labels_ = 0;
  uint64_t version_ = 0;

  // Shared immutable arrays: the base build plus the delta segments
  // shadowing parts of it (empty for a sealed base snapshot).
  std::shared_ptr<const Base> base_;
  std::vector<std::shared_ptr<const DeltaSegment>> segments_;
  // Raw views of *base_ (accessor hot path skips the shared_ptr hop).
  const Side* bout_ = nullptr;
  const Side* bin_ = nullptr;
  int base_num_nodes_ = 0;
  int base_num_edges_ = 0;
  Overlay out_overlay_, in_overlay_;
  int64_t delta_edges_ = 0;
  // True for every delta snapshot (even a node-only one with an empty
  // overlay): accessors must bounds-guard nodes the base doesn't cover.
  bool overlay_path_ = false;

  // Snapshot-local statistics (exact for the logical view).
  std::vector<int64_t> label_counts_;
  std::vector<int64_t> label_source_counts_, label_target_counts_;

  // Degree permutations, materialized lazily on delta snapshots: the
  // write path only records the parent snapshot and the batch's dirty
  // nodes, and the first NodesBy*Degree() call runs the O(V) merge
  // repair (EnsureDegreeOrders), then drops the parent reference. Until
  // then the snapshot pins its unrepaired ancestors — bounded by the
  // compaction segment cap, and released as soon as any reader (or any
  // descendant's reader, recursively) asks for a seeding order.
  mutable std::vector<NodeId> by_degree_;
  mutable std::vector<NodeId> by_in_degree_;
  mutable std::mutex orders_mutex_;
  mutable std::atomic<bool> orders_ready_{false};
  mutable GraphIndexPtr repair_parent_;
  mutable std::vector<NodeId> repair_dirty_;
};

}  // namespace ecrpq

#endif  // ECRPQ_GRAPH_INDEX_H_
