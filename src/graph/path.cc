#include "graph/path.h"

namespace ecrpq {

Word Path::Label() const {
  Word word;
  word.reserve(steps_.size());
  for (const auto& [label, to] : steps_) word.push_back(label);
  return word;
}

NodeId Path::NodeAt(int i) const {
  ECRPQ_DCHECK(i >= 0 && i <= length());
  if (i == 0) return start_;
  return steps_[i - 1].second;
}

bool Path::IsValidIn(const GraphDb& graph) const {
  if (start_ < 0 || start_ >= graph.num_nodes()) return false;
  NodeId at = start_;
  for (const auto& [label, to] : steps_) {
    if (!graph.HasEdge(at, label, to)) return false;
    at = to;
  }
  return true;
}

std::string Path::ToString(const GraphDb& graph) const {
  std::string out = graph.NodeName(start_);
  NodeId at = start_;
  (void)at;
  for (const auto& [label, to] : steps_) {
    out += " -" + graph.alphabet().Label(label) + "-> ";
    out += graph.NodeName(to);
    at = to;
  }
  return out;
}

std::vector<Path> EnumeratePathsFrom(const GraphDb& graph, NodeId start,
                                     int max_len) {
  std::vector<Path> out;
  std::vector<Path> frontier = {Path(start)};
  out.push_back(frontier[0]);
  for (int depth = 0; depth < max_len; ++depth) {
    std::vector<Path> next;
    for (const Path& p : frontier) {
      for (const auto& [label, to] : graph.Out(p.end())) {
        Path extended = p;
        extended.Append(label, to);
        out.push_back(extended);
        next.push_back(std::move(extended));
      }
    }
    frontier = std::move(next);
    if (frontier.empty()) break;
  }
  return out;
}

std::vector<Path> EnumerateAllPaths(const GraphDb& graph, int max_len) {
  std::vector<Path> out;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    std::vector<Path> from = EnumeratePathsFrom(graph, v, max_len);
    out.insert(out.end(), from.begin(), from.end());
  }
  return out;
}

}  // namespace ecrpq
