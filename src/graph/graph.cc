#include "graph/graph.h"

#include <algorithm>

namespace ecrpq {

GraphDb::GraphDb(AlphabetPtr alphabet) : alphabet_(std::move(alphabet)) {
  ECRPQ_DCHECK(alphabet_ != nullptr);
}

GraphDb::GraphDb() : alphabet_(std::make_shared<Alphabet>()) {}

NodeId GraphDb::AddNode() {
  ++version_;
  out_.emplace_back();
  in_.emplace_back();
  names_.emplace_back();
  return static_cast<NodeId>(out_.size() - 1);
}

NodeId GraphDb::AddNodes(int count) {
  ECRPQ_DCHECK(count >= 0);
  ++version_;
  const NodeId first = static_cast<NodeId>(out_.size());
  out_.resize(out_.size() + count);
  in_.resize(in_.size() + count);
  names_.resize(names_.size() + count);
  return first;
}

NodeId GraphDb::AddNode(std::string_view name) {
  // An empty name is not a name: fall through to an anonymous node
  // instead of interning "" (which would collapse every such node into
  // one and break text-format round-trips).
  if (name.empty()) return AddNode();
  auto it = name_index_.find(std::string(name));
  if (it != name_index_.end()) return it->second;
  NodeId id = AddNode();
  names_[id] = std::string(name);
  name_index_.emplace(names_[id], id);
  return id;
}

std::optional<NodeId> GraphDb::FindNode(std::string_view name) const {
  auto it = name_index_.find(std::string(name));
  if (it == name_index_.end()) return std::nullopt;
  return it->second;
}

std::string GraphDb::NodeName(NodeId node) const {
  ECRPQ_DCHECK(node >= 0 && node < num_nodes());
  if (!names_[node].empty()) return names_[node];
  return "n" + std::to_string(node);
}

void GraphDb::AddEdge(NodeId from, Symbol label, NodeId to) {
  ECRPQ_DCHECK(from >= 0 && from < num_nodes());
  ECRPQ_DCHECK(to >= 0 && to < num_nodes());
  ECRPQ_DCHECK(label >= 0 && label < alphabet_->size());
  out_[from].emplace_back(label, to);
  in_[to].emplace_back(label, from);
  ++num_edges_;
  ++version_;
}

bool GraphDb::RemoveEdge(NodeId from, Symbol label, NodeId to) {
  ECRPQ_DCHECK(from >= 0 && from < num_nodes());
  ECRPQ_DCHECK(to >= 0 && to < num_nodes());
  auto& out = out_[from];
  auto out_it = std::find(out.begin(), out.end(), std::pair(label, to));
  if (out_it == out.end()) return false;
  auto& in = in_[to];
  auto in_it = std::find(in.begin(), in.end(), std::pair(label, from));
  ECRPQ_DCHECK(in_it != in.end());
  out.erase(out_it);
  in.erase(in_it);
  --num_edges_;
  ++version_;
  return true;
}

void GraphDb::AddEdge(NodeId from, std::string_view label, NodeId to) {
  AddEdge(from, alphabet_->Intern(label), to);
}

void GraphDb::AddEdges(const std::vector<Edge>& edges) {
  const int n = num_nodes();
  std::vector<int32_t> out_deg(n, 0), in_deg(n, 0);
  for (const Edge& e : edges) {
    ECRPQ_DCHECK(e.from >= 0 && e.from < n);
    ECRPQ_DCHECK(e.to >= 0 && e.to < n);
    ECRPQ_DCHECK(e.label >= 0 && e.label < alphabet_->size());
    ++out_deg[e.from];
    ++in_deg[e.to];
  }
  for (NodeId v = 0; v < n; ++v) {
    if (out_deg[v] > 0) out_[v].reserve(out_[v].size() + out_deg[v]);
    if (in_deg[v] > 0) in_[v].reserve(in_[v].size() + in_deg[v]);
  }
  for (const Edge& e : edges) {
    out_[e.from].emplace_back(e.label, e.to);
    in_[e.to].emplace_back(e.label, e.from);
  }
  num_edges_ += static_cast<int>(edges.size());
  ++version_;
}

GraphDb GraphDb::FromEdges(AlphabetPtr alphabet, int num_nodes,
                           const std::vector<Edge>& edges) {
  GraphDb g(std::move(alphabet));
  g.AddNodes(num_nodes);
  g.AddEdges(edges);
  return g;
}

bool GraphDb::HasEdge(NodeId from, Symbol label, NodeId to) const {
  for (const auto& [l, t] : out_[from]) {
    if (l == label && t == to) return true;
  }
  return false;
}

Nfa GraphDb::ToNfa(const std::vector<NodeId>& initial,
                   const std::vector<NodeId>& accepting) const {
  Nfa nfa(alphabet_->size());
  nfa.AddStates(num_nodes());
  for (NodeId v = 0; v < num_nodes(); ++v) {
    for (const auto& [label, to] : out_[v]) {
      nfa.AddTransition(v, label, to);
    }
  }
  for (NodeId v : initial) nfa.SetInitial(v);
  for (NodeId v : accepting) nfa.SetAccepting(v);
  return nfa;
}

Nfa GraphDb::ToNfaAllStates() const {
  std::vector<NodeId> all(num_nodes());
  for (NodeId v = 0; v < num_nodes(); ++v) all[v] = v;
  return ToNfa(all, all);
}

}  // namespace ecrpq
