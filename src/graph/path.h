// Paths in a graph database (Section 2 of the paper).
//
// A path ρ = v0 a0 v1 a1 ... a(m-1) vm with every (vi, ai, vi+1) an edge.
// The label λ(ρ) is the word a0...a(m-1); the empty path (v, ε, v) has label
// ε. Paths are the objects bound to path variables and may appear in query
// outputs.

#ifndef ECRPQ_GRAPH_PATH_H_
#define ECRPQ_GRAPH_PATH_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/status.h"

namespace ecrpq {

/// A concrete path in a GraphDb.
class Path {
 public:
  /// The empty path at `start`.
  explicit Path(NodeId start) : start_(start) {}

  /// A path from `start` through the given (label, node) steps.
  Path(NodeId start, std::vector<std::pair<Symbol, NodeId>> steps)
      : start_(start), steps_(std::move(steps)) {}

  NodeId start() const { return start_; }
  NodeId end() const { return steps_.empty() ? start_ : steps_.back().second; }

  /// Number of edges (the paper's path length).
  int length() const { return static_cast<int>(steps_.size()); }

  const std::vector<std::pair<Symbol, NodeId>>& steps() const {
    return steps_;
  }

  /// Appends one edge step.
  void Append(Symbol label, NodeId to) { steps_.emplace_back(label, to); }

  /// λ(ρ): the word of edge labels.
  Word Label() const;

  /// The i-th node on the path, i in [0, length()].
  NodeId NodeAt(int i) const;

  /// Checks that every step is an edge of `graph`.
  bool IsValidIn(const GraphDb& graph) const;

  /// Rendering "v0 -a-> v1 -b-> v2" using graph names.
  std::string ToString(const GraphDb& graph) const;

  bool operator==(const Path& other) const = default;

 private:
  NodeId start_;
  std::vector<std::pair<Symbol, NodeId>> steps_;
};

/// All paths of `graph` starting anywhere, with length <= max_len, in BFS
/// order. Intended for brute-force reference evaluation on small graphs.
std::vector<Path> EnumerateAllPaths(const GraphDb& graph, int max_len);

/// All paths from `start` with length <= max_len.
std::vector<Path> EnumeratePathsFrom(const GraphDb& graph, NodeId start,
                                     int max_len);

}  // namespace ecrpq

#endif  // ECRPQ_GRAPH_PATH_H_
