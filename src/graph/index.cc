#include "graph/index.h"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "util/thread_pool.h"

namespace ecrpq {

namespace {

// Edge counts below this build serially — the pool hand-off costs more
// than the fill of a small graph.
constexpr int kParallelBuildMinEdges = 1 << 19;
// Contiguous node range each fill morsel claims.
constexpr int kBuildGrain = 4096;

// Size-then-fill CSR construction. The offsets pass sizes every array
// exactly; the fill pass sorts each node's adjacency as packed
// (label << 32 | target) uint64 keys — one flat scratch buffer reused
// across nodes, same (label, target) order the old per-node permutation
// sort produced, a fraction of its comparisons and allocations. Every
// node writes only its own [offsets[v], offsets[v+1]) slice, so the fill
// parallelizes over contiguous node ranges with byte-identical output at
// any lane count.
void BuildCsr(const GraphDb& graph, bool out_side, int num_threads,
              std::vector<int32_t>* offsets, std::vector<Symbol>* labels,
              std::vector<NodeId>* targets, std::vector<uint64_t>* masks) {
  const int n = graph.num_nodes();
  offsets->assign(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    const auto& adj = out_side ? graph.Out(v) : graph.In(v);
    (*offsets)[v + 1] = (*offsets)[v] + static_cast<int32_t>(adj.size());
  }
  const int e = (*offsets)[n];
  labels->resize(e);
  targets->resize(e);
  masks->assign(n, 0);

  auto fill_range = [&](NodeId vbegin, NodeId vend,
                        std::vector<uint64_t>& keys) {
    for (NodeId v = vbegin; v < vend; ++v) {
      const auto& adj = out_side ? graph.Out(v) : graph.In(v);
      keys.clear();
      for (const auto& [label, other] : adj) {
        keys.push_back(static_cast<uint64_t>(static_cast<uint32_t>(label))
                           << 32 |
                       static_cast<uint32_t>(other));
      }
      std::sort(keys.begin(), keys.end());
      const int32_t base = (*offsets)[v];
      uint64_t mask = 0;
      for (size_t i = 0; i < keys.size(); ++i) {
        const Symbol label = static_cast<Symbol>(keys[i] >> 32);
        (*labels)[base + i] = label;
        (*targets)[base + i] = static_cast<NodeId>(
            static_cast<uint32_t>(keys[i]));
        mask |= 1ULL << std::min<Symbol>(label, 63);
      }
      (*masks)[v] = mask;
    }
  };

  if (num_threads <= 1 || e < kParallelBuildMinEdges || n <= kBuildGrain) {
    std::vector<uint64_t> keys;
    fill_range(0, n, keys);
    return;
  }
  std::atomic<int> cursor{0};
  ThreadPool::Shared().RunOnWorkers(num_threads, [&](int) {
    std::vector<uint64_t> keys;
    for (;;) {
      const int begin = cursor.fetch_add(kBuildGrain,
                                         std::memory_order_relaxed);
      if (begin >= n) return;
      fill_range(begin, std::min(n, begin + kBuildGrain), keys);
    }
  });
}

}  // namespace

std::shared_ptr<const GraphIndex> GraphIndex::Build(const GraphDb& graph) {
  return Build(graph, /*num_threads=*/0);
}

std::shared_ptr<const GraphIndex> GraphIndex::Build(const GraphDb& graph,
                                                    int num_threads) {
  if (num_threads <= 0) {
    num_threads = graph.num_edges() >= kParallelBuildMinEdges
                      ? ThreadPool::DefaultParallelism()
                      : 1;
  }
  auto index = std::shared_ptr<GraphIndex>(new GraphIndex());
  index->num_nodes_ = graph.num_nodes();
  index->num_edges_ = graph.num_edges();
  index->num_labels_ = graph.alphabet().size();

  BuildCsr(graph, /*out_side=*/true, num_threads, &index->out_offsets_,
           &index->out_labels_, &index->out_targets_,
           &index->out_label_mask_);
  BuildCsr(graph, /*out_side=*/false, num_threads, &index->in_offsets_,
           &index->in_labels_, &index->in_targets_, &index->in_label_mask_);

  index->label_counts_.assign(std::max(index->num_labels_, 1), 0);
  for (Symbol label : index->out_labels_) ++index->label_counts_[label];

  // Distinct-source/target counts per label: CSR rows are sorted by
  // label, so each node contributes one increment per distinct label run.
  auto distinct_endpoint_counts = [&](const std::vector<int32_t>& offsets,
                                      const std::vector<Symbol>& labels,
                                      std::vector<int64_t>* counts) {
    counts->assign(std::max(index->num_labels_, 1), 0);
    for (NodeId v = 0; v < index->num_nodes_; ++v) {
      Symbol prev = -1;
      for (int32_t i = offsets[v]; i < offsets[v + 1]; ++i) {
        if (labels[i] != prev) {
          prev = labels[i];
          ++(*counts)[prev];
        }
      }
    }
  };
  distinct_endpoint_counts(index->out_offsets_, index->out_labels_,
                           &index->label_source_counts_);
  distinct_endpoint_counts(index->in_offsets_, index->in_labels_,
                           &index->label_target_counts_);

  index->by_degree_.resize(index->num_nodes_);
  std::iota(index->by_degree_.begin(), index->by_degree_.end(), 0);
  std::stable_sort(index->by_degree_.begin(), index->by_degree_.end(),
                   [&](NodeId a, NodeId b) {
                     return index->out_degree(a) + index->in_degree(a) >
                            index->out_degree(b) + index->in_degree(b);
                   });
  index->by_in_degree_.resize(index->num_nodes_);
  std::iota(index->by_in_degree_.begin(), index->by_in_degree_.end(), 0);
  std::stable_sort(index->by_in_degree_.begin(), index->by_in_degree_.end(),
                   [&](NodeId a, NodeId b) {
                     return index->in_degree(a) > index->in_degree(b);
                   });
  return index;
}

std::span<const NodeId> GraphIndex::Slice(const std::vector<int32_t>& offsets,
                                          const std::vector<Symbol>& labels,
                                          const std::vector<NodeId>& targets,
                                          NodeId node, Symbol label) {
  auto first = labels.begin() + offsets[node];
  auto last = labels.begin() + offsets[node + 1];
  auto [lo, hi] = std::equal_range(first, last, label);
  return {targets.data() + (lo - labels.begin()),
          targets.data() + (hi - labels.begin())};
}

}  // namespace ecrpq
