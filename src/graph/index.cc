#include "graph/index.h"

#include <algorithm>
#include <atomic>
#include <numeric>

#include "util/thread_pool.h"

namespace ecrpq {

namespace {

// Edge counts below this build serially — the pool hand-off costs more
// than the fill of a small graph.
constexpr int kParallelBuildMinEdges = 1 << 19;
// Contiguous node range each fill morsel claims.
constexpr int kBuildGrain = 4096;

uint64_t PackKey(Symbol label, NodeId other) {
  return static_cast<uint64_t>(static_cast<uint32_t>(label)) << 32 |
         static_cast<uint32_t>(other);
}

// Size-then-fill CSR construction. The offsets pass sizes every array
// exactly; the fill pass sorts each node's adjacency as packed
// (label << 32 | target) uint64 keys — one flat scratch buffer reused
// across nodes, same (label, target) order the old per-node permutation
// sort produced, a fraction of its comparisons and allocations. Every
// node writes only its own [offsets[v], offsets[v+1]) slice, so the fill
// parallelizes over contiguous node ranges with byte-identical output at
// any lane count.
void BuildCsr(const GraphDb& graph, bool out_side, int num_threads,
              std::vector<int32_t>* offsets, std::vector<Symbol>* labels,
              std::vector<NodeId>* targets, std::vector<uint64_t>* masks) {
  const int n = graph.num_nodes();
  offsets->assign(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    const auto& adj = out_side ? graph.Out(v) : graph.In(v);
    (*offsets)[v + 1] = (*offsets)[v] + static_cast<int32_t>(adj.size());
  }
  const int e = (*offsets)[n];
  labels->resize(e);
  targets->resize(e);
  masks->assign(n, 0);

  auto fill_range = [&](NodeId vbegin, NodeId vend,
                        std::vector<uint64_t>& keys) {
    for (NodeId v = vbegin; v < vend; ++v) {
      const auto& adj = out_side ? graph.Out(v) : graph.In(v);
      keys.clear();
      for (const auto& [label, other] : adj) {
        keys.push_back(PackKey(label, other));
      }
      std::sort(keys.begin(), keys.end());
      const int32_t base = (*offsets)[v];
      uint64_t mask = 0;
      for (size_t i = 0; i < keys.size(); ++i) {
        const Symbol label = static_cast<Symbol>(keys[i] >> 32);
        (*labels)[base + i] = label;
        (*targets)[base + i] = static_cast<NodeId>(
            static_cast<uint32_t>(keys[i]));
        mask |= 1ULL << std::min<Symbol>(label, 63);
      }
      (*masks)[v] = mask;
    }
  };

  if (num_threads <= 1 || e < kParallelBuildMinEdges || n <= kBuildGrain) {
    std::vector<uint64_t> keys;
    fill_range(0, n, keys);
    return;
  }
  std::atomic<int> cursor{0};
  ThreadPool::Shared().RunOnWorkers(num_threads, [&](int) {
    std::vector<uint64_t> keys;
    for (;;) {
      const int begin = cursor.fetch_add(kBuildGrain,
                                         std::memory_order_relaxed);
      if (begin >= n) return;
      fill_range(begin, std::min(n, begin + kBuildGrain), keys);
    }
  });
}

}  // namespace

GraphIndexPtr GraphIndex::Build(const GraphDb& graph) {
  return Build(graph, /*num_threads=*/0);
}

GraphIndexPtr GraphIndex::Build(const GraphDb& graph, int num_threads) {
  if (num_threads <= 0) {
    num_threads = graph.num_edges() >= kParallelBuildMinEdges
                      ? ThreadPool::DefaultParallelism()
                      : 1;
  }
  auto index = std::shared_ptr<GraphIndex>(new GraphIndex());
  index->num_nodes_ = graph.num_nodes();
  index->num_edges_ = graph.num_edges();
  index->num_labels_ = graph.alphabet().size();
  index->version_ = graph.version();

  auto base = std::make_shared<Base>();
  base->num_nodes = graph.num_nodes();
  BuildCsr(graph, /*out_side=*/true, num_threads, &base->out.offsets,
           &base->out.labels, &base->out.targets, &base->out.masks);
  BuildCsr(graph, /*out_side=*/false, num_threads, &base->in.offsets,
           &base->in.labels, &base->in.targets, &base->in.masks);
  index->base_ = base;
  index->bout_ = &base->out;
  index->bin_ = &base->in;
  index->base_num_nodes_ = graph.num_nodes();
  index->base_num_edges_ = graph.num_edges();

  index->label_counts_.assign(std::max(index->num_labels_, 1), 0);
  for (Symbol label : base->out.labels) ++index->label_counts_[label];

  // Distinct-source/target counts per label: CSR rows are sorted by
  // label, so each node contributes one increment per distinct label run.
  auto distinct_endpoint_counts = [&](const Side& side,
                                      std::vector<int64_t>* counts) {
    counts->assign(std::max(index->num_labels_, 1), 0);
    for (NodeId v = 0; v < index->num_nodes_; ++v) {
      Symbol prev = -1;
      for (int32_t i = side.offsets[v]; i < side.offsets[v + 1]; ++i) {
        if (side.labels[i] != prev) {
          prev = side.labels[i];
          ++(*counts)[prev];
        }
      }
    }
  };
  distinct_endpoint_counts(base->out, &index->label_source_counts_);
  distinct_endpoint_counts(base->in, &index->label_target_counts_);

  index->by_degree_.resize(index->num_nodes_);
  std::iota(index->by_degree_.begin(), index->by_degree_.end(), 0);
  std::stable_sort(index->by_degree_.begin(), index->by_degree_.end(),
                   [&](NodeId a, NodeId b) {
                     return index->out_degree(a) + index->in_degree(a) >
                            index->out_degree(b) + index->in_degree(b);
                   });
  index->by_in_degree_.resize(index->num_nodes_);
  std::iota(index->by_in_degree_.begin(), index->by_in_degree_.end(), 0);
  std::stable_sort(index->by_in_degree_.begin(), index->by_in_degree_.end(),
                   [&](NodeId a, NodeId b) {
                     return index->in_degree(a) > index->in_degree(b);
                   });
  index->orders_ready_.store(true, std::memory_order_release);
  return index;
}

// Builds one direction of the new snapshot's segment: for every node the
// batch touches on this side, the node's full logical row is re-merged
// (previous view ⊎ adds ∖ removes, multiset semantics, (label, target)
// order) into seg_side, and the overlay directory of `next` is spliced to
// resolve those nodes into the new segment. Also maintains the side's
// distinct-endpoint label statistics on `next`.
void GraphIndex::ApplySide(const GraphIndex& prev, bool out_side,
                           const Delta& delta, GraphIndex* next,
                           SegSide* seg_side, std::vector<NodeId>* touched) {
  // (node, packed (label, other)) pairs of the batch, sorted.
  auto collect = [&](const std::vector<Edge>& edges) {
    std::vector<std::pair<NodeId, uint64_t>> items;
    items.reserve(edges.size());
    for (const Edge& e : edges) {
      items.emplace_back(out_side ? e.from : e.to,
                         PackKey(e.label, out_side ? e.to : e.from));
    }
    std::sort(items.begin(), items.end());
    return items;
  };
  const auto adds = collect(delta.added);
  const auto removes = collect(delta.removed);

  touched->clear();
  for (const auto& [node, key] : adds) touched->push_back(node);
  for (const auto& [node, key] : removes) touched->push_back(node);
  std::sort(touched->begin(), touched->end());
  touched->erase(std::unique(touched->begin(), touched->end()),
                 touched->end());
  if (touched->empty()) return;

  std::vector<uint64_t> row_masks;
  row_masks.reserve(touched->size());
  std::vector<uint64_t> merged;  // scratch: one row's packed keys
  auto add_it = adds.begin();
  auto rem_it = removes.begin();
  std::vector<int64_t>& endpoint_counts =
      out_side ? next->label_source_counts_ : next->label_target_counts_;

  for (NodeId v : *touched) {
    // Previous logical row of v, already (label, target)-sorted. Nodes
    // the batch freshly created (>= prev.num_nodes_) have no previous
    // row — and are out of range for prev's accessors.
    std::span<const Symbol> old_labels;
    std::span<const NodeId> old_targets;
    if (v < prev.num_nodes_) {
      old_labels = out_side ? prev.OutLabels(v) : prev.InLabels(v);
      old_targets = out_side ? prev.OutTargets(v) : prev.InSources(v);
    }

    merged.clear();
    // Merge old row with this node's adds (both sorted by packed key).
    size_t oi = 0;
    while (add_it != adds.end() && add_it->first == v &&
           oi < old_labels.size()) {
      const uint64_t old_key = PackKey(old_labels[oi], old_targets[oi]);
      if (old_key <= add_it->second) {
        merged.push_back(old_key);
        ++oi;
      } else {
        merged.push_back(add_it->second);
        ++add_it;
      }
    }
    for (; oi < old_labels.size(); ++oi) {
      merged.push_back(PackKey(old_labels[oi], old_targets[oi]));
    }
    for (; add_it != adds.end() && add_it->first == v; ++add_it) {
      merged.push_back(add_it->second);
    }
    // Multiset-subtract this node's removes: each remove entry deletes
    // one instance of its key (Database validated existence, so every
    // remove key is present in the merged row).
    if (rem_it != removes.end() && rem_it->first == v) {
      size_t w = 0;
      for (size_t r = 0; r < merged.size(); ++r) {
        if (rem_it != removes.end() && rem_it->first == v &&
            rem_it->second == merged[r]) {
          ++rem_it;
          continue;
        }
        merged[w++] = merged[r];
      }
      merged.resize(w);
      while (rem_it != removes.end() && rem_it->first == v) ++rem_it;
    }

    // Write the merged row into the segment and diff the distinct label
    // sets against the old row (planner endpoint statistics).
    uint64_t mask = 0;
    Symbol prev_label = -1;
    for (uint64_t key : merged) {
      const Symbol label = static_cast<Symbol>(key >> 32);
      seg_side->labels.push_back(label);
      seg_side->targets.push_back(static_cast<NodeId>(
          static_cast<uint32_t>(key)));
      mask |= 1ULL << std::min<Symbol>(label, 63);
      if (label != prev_label) {
        prev_label = label;
        ++endpoint_counts[label];
      }
    }
    prev_label = -1;
    for (Symbol label : old_labels) {
      if (label != prev_label) {
        prev_label = label;
        --endpoint_counts[label];
      }
    }
    seg_side->offsets.push_back(
        static_cast<int32_t>(seg_side->labels.size()));
    row_masks.push_back(mask);
  }

  // Splice the touched rows into the overlay directory: one merge of the
  // previous directory (superseded entries dropped) with the new rows.
  // Raw pointers into older segments stay valid — the snapshot retains
  // every segment shared_ptr.
  const Overlay& old_overlay =
      out_side ? prev.out_overlay_ : prev.in_overlay_;
  Overlay& overlay = out_side ? next->out_overlay_ : next->in_overlay_;
  overlay.nodes.reserve(old_overlay.nodes.size() + touched->size());
  overlay.rows.reserve(old_overlay.rows.size() + touched->size());
  size_t a = 0, b = 0;
  auto push_new = [&](size_t i) {
    overlay.nodes.push_back((*touched)[i]);
    overlay.rows.push_back(
        RowRef{seg_side->labels.data() + seg_side->offsets[i],
               seg_side->targets.data() + seg_side->offsets[i],
               seg_side->offsets[i + 1] - seg_side->offsets[i],
               row_masks[i]});
  };
  while (a < old_overlay.nodes.size() && b < touched->size()) {
    if (old_overlay.nodes[a] < (*touched)[b]) {
      overlay.nodes.push_back(old_overlay.nodes[a]);
      overlay.rows.push_back(old_overlay.rows[a]);
      ++a;
    } else {
      if (old_overlay.nodes[a] == (*touched)[b]) ++a;  // superseded
      push_new(b++);
    }
  }
  for (; a < old_overlay.nodes.size(); ++a) {
    overlay.nodes.push_back(old_overlay.nodes[a]);
    overlay.rows.push_back(old_overlay.rows[a]);
  }
  for (; b < touched->size(); ++b) push_new(b);
}

// Re-establishes the exact fresh-build permutation order after a batch:
// both orders are sorted by (-key, id) with unique ids, so dropping the
// dirty nodes from the previous order (their keys may have changed) and
// merging them back in sorted by their NEW keys reproduces the
// stable_sort result of a from-scratch Build. O(V + |dirty| log |dirty|)
// with trivial constants — no full sort.
void GraphIndex::RepairDegreeOrder(const GraphIndex& prev,
                                   const std::vector<NodeId>& dirty,
                                   bool in_only) const {
  auto key = [&](NodeId v) {
    return in_only ? in_degree(v) : out_degree(v) + in_degree(v);
  };
  auto before = [&](NodeId a, int ka, NodeId b, int kb) {
    return ka > kb || (ka == kb && a < b);
  };

  std::vector<NodeId> dirty_by_id = dirty;  // sorted by id (membership)
  std::vector<std::pair<int, NodeId>> dirty_by_key;
  dirty_by_key.reserve(dirty.size());
  for (NodeId v : dirty) dirty_by_key.emplace_back(key(v), v);
  std::sort(dirty_by_key.begin(), dirty_by_key.end(),
            [&](const auto& x, const auto& y) {
              return before(x.second, x.first, y.second, y.first);
            });

  const std::vector<NodeId>& old_order =
      in_only ? prev.by_in_degree_ : prev.by_degree_;
  std::vector<NodeId>& order = in_only ? by_in_degree_ : by_degree_;
  order.clear();
  order.reserve(num_nodes_);
  size_t d = 0;
  for (NodeId v : old_order) {
    if (std::binary_search(dirty_by_id.begin(), dirty_by_id.end(), v)) {
      continue;  // re-inserted from dirty_by_key at its new position
    }
    const int kv = key(v);
    while (d < dirty_by_key.size() &&
           before(dirty_by_key[d].second, dirty_by_key[d].first, v, kv)) {
      order.push_back(dirty_by_key[d++].second);
    }
    order.push_back(v);
  }
  while (d < dirty_by_key.size()) order.push_back(dirty_by_key[d++].second);
}

// Materializes a delta snapshot's degree permutations on first use.
// ApplyDelta defers the O(V) merge repair so the write path stays
// O(delta); the first reader asking for a seeding order pays it once per
// snapshot, first materializing any unread ancestors (the recursion
// bottoms out at the eager base build). Double-checked: once materialized
// the accessor cost is a single acquire load.
void GraphIndex::EnsureDegreeOrders() const {
  if (orders_ready_.load(std::memory_order_acquire)) return;
  std::lock_guard<std::mutex> lock(orders_mutex_);
  if (orders_ready_.load(std::memory_order_relaxed)) return;
  const GraphIndexPtr parent = repair_parent_;
  parent->EnsureDegreeOrders();
  RepairDegreeOrder(*parent, repair_dirty_, /*in_only=*/false);
  RepairDegreeOrder(*parent, repair_dirty_, /*in_only=*/true);
  repair_parent_.reset();  // stop pinning the ancestor chain
  repair_dirty_ = {};
  orders_ready_.store(true, std::memory_order_release);
}

GraphIndexPtr GraphIndex::ApplyDelta(const Delta& delta) const {
  auto next = std::shared_ptr<GraphIndex>(new GraphIndex());
  next->num_nodes_ = std::max(delta.new_num_nodes, num_nodes_);
  next->num_edges_ = num_edges_ + static_cast<int>(delta.added.size()) -
                     static_cast<int>(delta.removed.size());
  next->num_labels_ = std::max(delta.new_num_labels, num_labels_);
  next->version_ = delta.new_version;
  next->base_ = base_;
  next->bout_ = bout_;
  next->bin_ = bin_;
  next->base_num_nodes_ = base_num_nodes_;
  next->base_num_edges_ = base_num_edges_;
  next->segments_ = segments_;
  next->overlay_path_ = true;

  const int stats_size = std::max(next->num_labels_, 1);
  auto copy_resized = [&](const std::vector<int64_t>& from,
                          std::vector<int64_t>* to) {
    *to = from;
    to->resize(stats_size, 0);
  };
  copy_resized(label_counts_, &next->label_counts_);
  copy_resized(label_source_counts_, &next->label_source_counts_);
  copy_resized(label_target_counts_, &next->label_target_counts_);
  for (const Edge& e : delta.added) ++next->label_counts_[e.label];
  for (const Edge& e : delta.removed) --next->label_counts_[e.label];

  auto seg = std::make_shared<DeltaSegment>();
  std::vector<NodeId> touched_out, touched_in;
  ApplySide(*this, /*out_side=*/true, delta, next.get(), &seg->out,
            &touched_out);
  ApplySide(*this, /*out_side=*/false, delta, next.get(), &seg->in,
            &touched_in);
  if (!touched_out.empty() || !touched_in.empty()) {
    next->segments_.push_back(std::move(seg));
  } else {
    // Node-only batch: no rows changed, but the directories must still
    // resolve (they were never spliced — inherit the previous ones).
    next->out_overlay_ = out_overlay_;
    next->in_overlay_ = in_overlay_;
  }
  next->delta_edges_ = 0;
  for (const RowRef& row : next->out_overlay_.rows) {
    next->delta_edges_ += row.len;
  }

  // Nodes whose degree (either side) may have changed, plus the batch's
  // fresh nodes — even edge-less new nodes appear in a fresh build's
  // permutations. The O(V) permutation repair itself is deferred to the
  // first NodesBy*Degree() call (EnsureDegreeOrders): the write path
  // only records the parent and the dirty set, keeping it O(delta).
  std::vector<NodeId> dirty;
  dirty.reserve(touched_out.size() + touched_in.size() +
                (next->num_nodes_ - num_nodes_));
  std::merge(touched_out.begin(), touched_out.end(), touched_in.begin(),
             touched_in.end(), std::back_inserter(dirty));
  dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
  for (NodeId v = num_nodes_; v < next->num_nodes_; ++v) {
    if (!std::binary_search(dirty.begin(), dirty.end(), v)) {
      dirty.push_back(v);
    }
  }
  std::sort(dirty.begin(), dirty.end());
  next->repair_parent_ = shared_from_this();
  next->repair_dirty_ = std::move(dirty);
  return next;
}

}  // namespace ecrpq
