#include "graph/index.h"

#include <algorithm>
#include <numeric>

namespace ecrpq {

namespace {

void BuildCsr(const GraphDb& graph, bool out_side,
              std::vector<int32_t>* offsets, std::vector<Symbol>* labels,
              std::vector<NodeId>* targets, std::vector<uint64_t>* masks) {
  const int n = graph.num_nodes();
  offsets->assign(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    const auto& adj = out_side ? graph.Out(v) : graph.In(v);
    (*offsets)[v + 1] = (*offsets)[v] + static_cast<int32_t>(adj.size());
  }
  const int e = (*offsets)[n];
  labels->resize(e);
  targets->resize(e);
  masks->assign(n, 0);
  // Sort each node's range by (label, target). The per-node ranges are
  // independent; a simple index sort per node keeps this O(E log d).
  std::vector<int> perm;
  for (NodeId v = 0; v < n; ++v) {
    const auto& adj = out_side ? graph.Out(v) : graph.In(v);
    perm.resize(adj.size());
    std::iota(perm.begin(), perm.end(), 0);
    std::sort(perm.begin(), perm.end(), [&](int a, int b) {
      return adj[a] < adj[b];
    });
    int32_t base = (*offsets)[v];
    for (size_t i = 0; i < adj.size(); ++i) {
      const auto& [label, other] = adj[perm[i]];
      (*labels)[base + i] = label;
      (*targets)[base + i] = other;
      (*masks)[v] |= 1ULL << std::min<Symbol>(label, 63);
    }
  }
}

}  // namespace

std::shared_ptr<const GraphIndex> GraphIndex::Build(const GraphDb& graph) {
  auto index = std::shared_ptr<GraphIndex>(new GraphIndex());
  index->num_nodes_ = graph.num_nodes();
  index->num_edges_ = graph.num_edges();
  index->num_labels_ = graph.alphabet().size();

  BuildCsr(graph, /*out_side=*/true, &index->out_offsets_,
           &index->out_labels_, &index->out_targets_,
           &index->out_label_mask_);
  BuildCsr(graph, /*out_side=*/false, &index->in_offsets_,
           &index->in_labels_, &index->in_targets_, &index->in_label_mask_);

  index->label_counts_.assign(std::max(index->num_labels_, 1), 0);
  for (Symbol label : index->out_labels_) ++index->label_counts_[label];

  // Distinct-source/target counts per label: CSR rows are sorted by
  // label, so each node contributes one increment per distinct label run.
  auto distinct_endpoint_counts = [&](const std::vector<int32_t>& offsets,
                                      const std::vector<Symbol>& labels,
                                      std::vector<int64_t>* counts) {
    counts->assign(std::max(index->num_labels_, 1), 0);
    for (NodeId v = 0; v < index->num_nodes_; ++v) {
      Symbol prev = -1;
      for (int32_t i = offsets[v]; i < offsets[v + 1]; ++i) {
        if (labels[i] != prev) {
          prev = labels[i];
          ++(*counts)[prev];
        }
      }
    }
  };
  distinct_endpoint_counts(index->out_offsets_, index->out_labels_,
                           &index->label_source_counts_);
  distinct_endpoint_counts(index->in_offsets_, index->in_labels_,
                           &index->label_target_counts_);

  index->by_degree_.resize(index->num_nodes_);
  std::iota(index->by_degree_.begin(), index->by_degree_.end(), 0);
  std::stable_sort(index->by_degree_.begin(), index->by_degree_.end(),
                   [&](NodeId a, NodeId b) {
                     return index->out_degree(a) + index->in_degree(a) >
                            index->out_degree(b) + index->in_degree(b);
                   });
  index->by_in_degree_.resize(index->num_nodes_);
  std::iota(index->by_in_degree_.begin(), index->by_in_degree_.end(), 0);
  std::stable_sort(index->by_in_degree_.begin(), index->by_in_degree_.end(),
                   [&](NodeId a, NodeId b) {
                     return index->in_degree(a) > index->in_degree(b);
                   });
  return index;
}

std::span<const NodeId> GraphIndex::Slice(const std::vector<int32_t>& offsets,
                                          const std::vector<Symbol>& labels,
                                          const std::vector<NodeId>& targets,
                                          NodeId node, Symbol label) {
  auto first = labels.begin() + offsets[node];
  auto last = labels.begin() + offsets[node + 1];
  auto [lo, hi] = std::equal_range(first, last, label);
  return {targets.data() + (lo - labels.begin()),
          targets.data() + (hi - labels.begin())};
}

}  // namespace ecrpq
