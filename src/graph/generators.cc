#include "graph/generators.h"

#include <string>

namespace ecrpq {

GraphDb WordGraph(const AlphabetPtr& alphabet, const Word& word) {
  GraphDb g(alphabet);
  NodeId prev = g.AddNode("w0");
  for (size_t i = 0; i < word.size(); ++i) {
    NodeId next = g.AddNode("w" + std::to_string(i + 1));
    g.AddEdge(prev, word[i], next);
    prev = next;
  }
  return g;
}

GraphDb TwoWordGraph(const AlphabetPtr& alphabet, const Word& x,
                     const Word& y) {
  GraphDb g(alphabet);
  NodeId prev = g.AddNode("x0");
  for (size_t i = 0; i < x.size(); ++i) {
    NodeId next = g.AddNode("x" + std::to_string(i + 1));
    g.AddEdge(prev, x[i], next);
    prev = next;
  }
  prev = g.AddNode("y0");
  for (size_t i = 0; i < y.size(); ++i) {
    NodeId next = g.AddNode("y" + std::to_string(i + 1));
    g.AddEdge(prev, y[i], next);
    prev = next;
  }
  return g;
}

GraphDb RandomGraph(const AlphabetPtr& alphabet, int num_nodes, int num_edges,
                    Rng* rng) {
  ECRPQ_DCHECK(num_nodes > 0);
  ECRPQ_DCHECK(alphabet->size() > 0);
  GraphDb g(alphabet);
  for (int i = 0; i < num_nodes; ++i) g.AddNode();
  for (int i = 0; i < num_edges; ++i) {
    NodeId from = static_cast<NodeId>(rng->Below(num_nodes));
    NodeId to = static_cast<NodeId>(rng->Below(num_nodes));
    Symbol label = static_cast<Symbol>(rng->Below(alphabet->size()));
    g.AddEdge(from, label, to);
  }
  return g;
}

GraphDb LayeredGraph(const AlphabetPtr& alphabet, int layers, int width,
                     int fanout, Rng* rng) {
  ECRPQ_DCHECK(layers >= 1 && width >= 1 && fanout >= 1);
  ECRPQ_DCHECK(alphabet->size() > 0);
  GraphDb g(alphabet);
  for (int l = 0; l < layers; ++l) {
    for (int w = 0; w < width; ++w) g.AddNode();
  }
  auto node = [&](int l, int w) { return static_cast<NodeId>(l * width + w); };
  for (int l = 0; l + 1 < layers; ++l) {
    for (int w = 0; w < width; ++w) {
      for (int f = 0; f < fanout; ++f) {
        NodeId to = node(l + 1, static_cast<int>(rng->Below(width)));
        Symbol label = static_cast<Symbol>(rng->Below(alphabet->size()));
        g.AddEdge(node(l, w), label, to);
      }
    }
  }
  return g;
}

GraphDb CycleGraph(const AlphabetPtr& alphabet, int n,
                   std::string_view label) {
  ECRPQ_DCHECK(n >= 1);
  GraphDb g(alphabet);
  for (int i = 0; i < n; ++i) g.AddNode("c" + std::to_string(i));
  Symbol sym = g.alphabet_ptr()->Intern(label);
  for (int i = 0; i < n; ++i) {
    g.AddEdge(i, sym, (i + 1) % n);
  }
  return g;
}

GraphDb UniversalWordGraph(const AlphabetPtr& alphabet) {
  // The graph G_R of Theorem 6.3: nodes v1..v{n+1} (n = |Σ|); edge
  // (vi, a, vj) for i != j, where a = a_{j-1} if i < j and a = a_j
  // otherwise (1-based letters a_1..a_n). From every node, every word over
  // Σ labels some path.
  const int n = alphabet->size();
  ECRPQ_DCHECK(n >= 1);
  GraphDb g(alphabet);
  for (int i = 1; i <= n + 1; ++i) g.AddNode("v" + std::to_string(i));
  for (int i = 1; i <= n + 1; ++i) {
    for (int j = 1; j <= n + 1; ++j) {
      if (i == j) continue;
      int letter_index = (i < j) ? (j - 1) : j;  // 1-based
      g.AddEdge(i - 1, static_cast<Symbol>(letter_index - 1), j - 1);
    }
  }
  return g;
}

GraphDb AdvisorGenealogy(int generations, int width, int max_advisors,
                         Rng* rng, AlphabetPtr alphabet) {
  if (alphabet == nullptr) alphabet = std::make_shared<Alphabet>();
  GraphDb g(alphabet);
  Symbol advisor = g.alphabet_ptr()->Intern("advisor");
  std::vector<std::vector<NodeId>> layers(generations);
  for (int gen = 0; gen < generations; ++gen) {
    for (int i = 0; i < width; ++i) {
      layers[gen].push_back(
          g.AddNode("p" + std::to_string(gen) + "_" + std::to_string(i)));
    }
  }
  for (int gen = 0; gen + 1 < generations; ++gen) {
    for (NodeId person : layers[gen]) {
      int count = 1 + static_cast<int>(rng->Below(max_advisors));
      for (int k = 0; k < count; ++k) {
        g.AddEdge(person, advisor, rng->Pick(layers[gen + 1]));
      }
    }
  }
  return g;
}

GraphDb RdfPropertyGraph(int num_nodes, int num_properties, int fanout,
                         Rng* rng,
                         std::vector<std::pair<std::string, std::string>>*
                             subproperty_pairs,
                         AlphabetPtr alphabet) {
  if (alphabet == nullptr) alphabet = std::make_shared<Alphabet>();
  GraphDb g(alphabet);
  std::vector<Symbol> properties;
  for (int p = 0; p < num_properties; ++p) {
    properties.push_back(g.alphabet_ptr()->Intern("p" + std::to_string(p)));
  }
  // A random forest-shaped subproperty hierarchy: p_i ≺ p_{parent(i)}.
  if (subproperty_pairs != nullptr) {
    subproperty_pairs->clear();
    for (int p = 1; p < num_properties; ++p) {
      int parent = static_cast<int>(rng->Below(p));
      subproperty_pairs->emplace_back("p" + std::to_string(p),
                                      "p" + std::to_string(parent));
    }
  }
  for (int i = 0; i < num_nodes; ++i) g.AddNode("r" + std::to_string(i));
  for (int i = 0; i < num_nodes; ++i) {
    for (int f = 0; f < fanout; ++f) {
      NodeId to = static_cast<NodeId>(rng->Below(num_nodes));
      g.AddEdge(i, rng->Pick(properties), to);
    }
  }
  return g;
}

GraphDb FlightNetwork(int num_cities, int num_routes, int max_legs,
                      const std::vector<std::string>& airlines, Rng* rng,
                      AlphabetPtr alphabet) {
  ECRPQ_DCHECK(!airlines.empty());
  if (alphabet == nullptr) alphabet = std::make_shared<Alphabet>();
  GraphDb g(alphabet);
  std::vector<Symbol> airline_syms;
  for (const std::string& a : airlines) {
    airline_syms.push_back(g.alphabet_ptr()->Intern(a));
  }
  for (int c = 0; c < num_cities; ++c) g.AddNode("city" + std::to_string(c));
  for (int r = 0; r < num_routes; ++r) {
    NodeId from = static_cast<NodeId>(rng->Below(num_cities));
    NodeId to = static_cast<NodeId>(rng->Below(num_cities));
    if (from == to) to = (to + 1) % num_cities;
    Symbol airline = rng->Pick(airline_syms);
    // Each route is a chain of `legs` time-slice edges through fresh
    // intermediate nodes (the paper's "introduce intermediate nodes to
    // indicate time information").
    int legs = 1 + static_cast<int>(rng->Below(max_legs));
    NodeId at = from;
    for (int l = 0; l + 1 < legs; ++l) {
      NodeId mid = g.AddNode();
      g.AddEdge(at, airline, mid);
      at = mid;
    }
    g.AddEdge(at, airline, to);
  }
  return g;
}

GraphDb PowerLawGraph(const AlphabetPtr& alphabet, int num_nodes,
                      int num_edges, Rng* rng) {
  ECRPQ_DCHECK(num_nodes > 0);
  ECRPQ_DCHECK(alphabet->size() > 0);
  const int num_labels = alphabet->size();
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  // Repeated-endpoint pool: picking a uniform element is picking a node
  // with probability proportional to its current in-degree.
  std::vector<NodeId> endpoints;
  endpoints.reserve(num_edges);
  for (int i = 0; i < num_edges; ++i) {
    const NodeId from = static_cast<NodeId>(rng->Below(num_nodes));
    NodeId to;
    if (!endpoints.empty() && rng->Chance(0.75)) {
      to = rng->Pick(endpoints);
    } else {
      to = static_cast<NodeId>(rng->Below(num_nodes));
    }
    const Symbol label = static_cast<Symbol>(rng->Below(num_labels));
    edges.push_back({from, label, to});
    endpoints.push_back(to);
  }
  return GraphDb::FromEdges(alphabet, num_nodes, edges);
}

GraphDb GridGraph(const AlphabetPtr& alphabet, int rows, int cols, Rng* rng) {
  ECRPQ_DCHECK(rows >= 1 && cols >= 1);
  ECRPQ_DCHECK(alphabet->size() > 0);
  const int num_labels = alphabet->size();
  GraphDb g(alphabet);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      g.AddNode("g" + std::to_string(r) + "_" + std::to_string(c));
    }
  }
  auto node = [&](int r, int c) { return static_cast<NodeId>(r * cols + c); };
  std::vector<Edge> edges;
  edges.reserve(static_cast<size_t>(rows) * cols * 3);
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const NodeId v = node(r, c);
      if (c + 1 < cols) {
        edges.push_back(
            {v, static_cast<Symbol>(rng->Below(num_labels)), node(r, c + 1)});
      }
      if (r + 1 < rows) {
        edges.push_back(
            {v, static_cast<Symbol>(rng->Below(num_labels)), node(r + 1, c)});
      }
      if (r + 1 < rows && c + 1 < cols) {
        edges.push_back({v, static_cast<Symbol>(rng->Below(num_labels)),
                         node(r + 1, c + 1)});
      }
    }
  }
  g.AddEdges(edges);
  return g;
}

Word RandomDna(const AlphabetPtr& alphabet, int n, Rng* rng) {
  static const char* kBases[] = {"a", "c", "g", "t"};
  Word out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    out.push_back(alphabet->Intern(kBases[rng->Below(4)]));
  }
  return out;
}

Word MutateWord(const AlphabetPtr& alphabet, const Word& word, int edits,
                Rng* rng) {
  Word out = word;
  for (int e = 0; e < edits; ++e) {
    int op = static_cast<int>(rng->Below(3));
    if (out.empty()) op = 2;
    if (op == 0) {  // substitution
      size_t pos = rng->Below(out.size());
      out[pos] = static_cast<Symbol>(rng->Below(alphabet->size()));
    } else if (op == 1) {  // deletion
      size_t pos = rng->Below(out.size());
      out.erase(out.begin() + pos);
    } else {  // insertion
      size_t pos = rng->Below(out.size() + 1);
      out.insert(out.begin() + pos,
                 static_cast<Symbol>(rng->Below(alphabet->size())));
    }
  }
  return out;
}

}  // namespace ecrpq
