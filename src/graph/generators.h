// Synthetic graph workload generators.
//
// The paper has no datasets; its motivating workloads (RDF subproperty
// graphs, biological sequences, advisor genealogies, route networks, word
// graphs) are synthesized here. Each generator documents which paper example
// it backs. All generators are deterministic given a seed.

#ifndef ECRPQ_GRAPH_GENERATORS_H_
#define ECRPQ_GRAPH_GENERATORS_H_

#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/random.h"

namespace ecrpq {

/// The word graph G_s of Proposition 3.2: a simple path v0 -s1-> v1 ... vn
/// spelling the word `s`. Nodes are named w0..wn.
GraphDb WordGraph(const AlphabetPtr& alphabet, const Word& word);

/// Two disjoint word graphs (used by sequence-alignment examples; node
/// names are prefixed "x" and "y").
GraphDb TwoWordGraph(const AlphabetPtr& alphabet, const Word& x,
                     const Word& y);

/// Uniform random graph: `num_nodes` nodes, `num_edges` edges with labels
/// drawn uniformly from `alphabet`.
GraphDb RandomGraph(const AlphabetPtr& alphabet, int num_nodes, int num_edges,
                    Rng* rng);

/// Layered DAG with `layers` layers of `width` nodes; edges go from layer i
/// to layer i+1 with random labels, `fanout` edges per node. Data-complexity
/// benches scale this shape (path lengths stay bounded by `layers`).
GraphDb LayeredGraph(const AlphabetPtr& alphabet, int layers, int width,
                     int fanout, Rng* rng);

/// Directed cycle of length n with all edges labeled `label` plus optional
/// chords. Exercises infinite path sets.
GraphDb CycleGraph(const AlphabetPtr& alphabet, int n, std::string_view label);

/// The complete graph the PSPACE-hardness reduction of Theorem 6.3 uses:
/// for every node v and every word w over Σ there is a path from v labeled
/// w (n+1 nodes for an n-letter alphabet).
GraphDb UniversalWordGraph(const AlphabetPtr& alphabet);

/// Advisor genealogy (Introduction): a DAG of `generations` layers; every
/// person in layer i has an `advisor`-labeled edge to 1..max_advisors
/// people in layer i+1.
GraphDb AdvisorGenealogy(int generations, int width, int max_advisors,
                         Rng* rng, AlphabetPtr alphabet = nullptr);

/// RDF/S-style property-sequence graph (Section 4, ρ-queries): labels are
/// p0..p{k-1}; `subproperty_pairs` receives the declared a ≺ b pairs. Each
/// node gets `fanout` outgoing property edges.
GraphDb RdfPropertyGraph(int num_nodes, int num_properties, int fanout,
                         Rng* rng,
                         std::vector<std::pair<std::string, std::string>>*
                             subproperty_pairs,
                         AlphabetPtr alphabet = nullptr);

/// Flight network for the linear-constraint example of Section 8.2: cities
/// connected by airline-labeled edge chains where each edge is a fixed time
/// slice. Labels: `airlines` entries.
GraphDb FlightNetwork(int num_cities, int num_routes, int max_legs,
                      const std::vector<std::string>& airlines, Rng* rng,
                      AlphabetPtr alphabet = nullptr);

/// Scalable power-law (preferential-attachment flavored) graph for the
/// large benchmark tiers: `num_nodes` anonymous nodes, `num_edges` edges
/// with labels uniform over `alphabet`. Sources are uniform; each target
/// is, with probability 0.75, an endpoint of an earlier edge (degree-
/// proportional — the repeated-endpoint trick, no aux structures beyond
/// one flat array), else uniform. Built through GraphDb::FromEdges, so
/// generation is O(V + E) with no per-edge adjacency reallocation —
/// 10^6 nodes / several million edges generate in well under a second.
GraphDb PowerLawGraph(const AlphabetPtr& alphabet, int num_nodes,
                      int num_edges, Rng* rng);

/// Scalable labeled grid/mesh: `rows` x `cols` nodes named "g<r>_<c>"
/// (row-major ids), each cell with right / down / down-right diagonal
/// edges (where they exist) carrying labels uniform over `alphabet` —
/// ~3·rows·cols edges. Bounded degree and named corners make it the
/// anchored product-search workload of the large tier: with L labels the
/// off-diagonal branching of a two-track eq-product is ~9/L, so L >= 16
/// keeps the explored configuration count O(rows·cols). Edges are built
/// through the size-then-fill bulk path.
GraphDb GridGraph(const AlphabetPtr& alphabet, int rows, int cols, Rng* rng);

/// Random DNA-like sequence of length n over {a,c,g,t}.
Word RandomDna(const AlphabetPtr& alphabet, int n, Rng* rng);

/// Mutates `word` with at most `edits` random insertions/deletions/
/// substitutions (useful for edit-distance workloads).
Word MutateWord(const AlphabetPtr& alphabet, const Word& word, int edits,
                Rng* rng);

}  // namespace ecrpq

#endif  // ECRPQ_GRAPH_GENERATORS_H_
