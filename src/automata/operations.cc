#include "automata/operations.h"

#include <algorithm>
#include <map>
#include <queue>
#include <unordered_map>

namespace ecrpq {

namespace {

// Copies `src` into `dst` with all state ids shifted by `offset`.
// Returns the offset of the first copied state.
StateId AppendStates(const Nfa& src, Nfa* dst, bool keep_initial,
                     bool keep_accepting) {
  StateId offset = dst->AddStates(src.num_states());
  for (StateId s = 0; s < src.num_states(); ++s) {
    if (keep_initial && src.IsInitial(s)) dst->SetInitial(offset + s);
    if (keep_accepting && src.IsAccepting(s)) dst->SetAccepting(offset + s);
    for (const Nfa::Arc& arc : src.ArcsFrom(s)) {
      dst->AddTransition(offset + s, arc.first, offset + arc.second);
    }
  }
  return offset;
}

std::vector<bool> ReachableStates(const Nfa& nfa) {
  std::vector<bool> seen(nfa.num_states(), false);
  std::vector<StateId> stack;
  for (StateId s : nfa.InitialStates()) {
    seen[s] = true;
    stack.push_back(s);
  }
  while (!stack.empty()) {
    StateId s = stack.back();
    stack.pop_back();
    for (const Nfa::Arc& arc : nfa.ArcsFrom(s)) {
      if (!seen[arc.second]) {
        seen[arc.second] = true;
        stack.push_back(arc.second);
      }
    }
  }
  return seen;
}

std::vector<bool> CoReachableStates(const Nfa& nfa) {
  std::vector<std::vector<StateId>> rev(nfa.num_states());
  for (StateId s = 0; s < nfa.num_states(); ++s) {
    for (const Nfa::Arc& arc : nfa.ArcsFrom(s)) {
      rev[arc.second].push_back(s);
    }
  }
  std::vector<bool> seen(nfa.num_states(), false);
  std::vector<StateId> stack;
  for (StateId s : nfa.AcceptingStates()) {
    seen[s] = true;
    stack.push_back(s);
  }
  while (!stack.empty()) {
    StateId s = stack.back();
    stack.pop_back();
    for (StateId p : rev[s]) {
      if (!seen[p]) {
        seen[p] = true;
        stack.push_back(p);
      }
    }
  }
  return seen;
}

}  // namespace

Nfa RemoveEpsilons(const Nfa& nfa) {
  if (!nfa.HasEpsilonArcs()) return nfa;
  Nfa out(nfa.num_symbols());
  out.AddStates(nfa.num_states());
  for (StateId s = 0; s < nfa.num_states(); ++s) {
    std::vector<StateId> closure = nfa.EpsilonClosure({s});
    bool accepting = false;
    for (StateId c : closure) {
      if (nfa.IsAccepting(c)) accepting = true;
      for (const Nfa::Arc& arc : nfa.ArcsFrom(c)) {
        if (arc.first != kEpsilon) {
          out.AddTransition(s, arc.first, arc.second);
        }
      }
    }
    if (accepting) out.SetAccepting(s);
    if (nfa.IsInitial(s)) out.SetInitial(s);
  }
  return out;
}

Nfa Trim(const Nfa& nfa) {
  std::vector<bool> fwd = ReachableStates(nfa);
  std::vector<bool> bwd = CoReachableStates(nfa);
  std::vector<StateId> remap(nfa.num_states(), -1);
  Nfa out(nfa.num_symbols());
  for (StateId s = 0; s < nfa.num_states(); ++s) {
    if (fwd[s] && bwd[s]) {
      remap[s] = out.AddState();
      out.SetInitial(remap[s], nfa.IsInitial(s));
      out.SetAccepting(remap[s], nfa.IsAccepting(s));
    }
  }
  for (StateId s = 0; s < nfa.num_states(); ++s) {
    if (remap[s] < 0) continue;
    for (const Nfa::Arc& arc : nfa.ArcsFrom(s)) {
      if (remap[arc.second] >= 0) {
        out.AddTransition(remap[s], arc.first, remap[arc.second]);
      }
    }
  }
  return out;
}

Nfa Reverse(const Nfa& nfa) {
  Nfa out(nfa.num_symbols());
  out.AddStates(nfa.num_states());
  for (StateId s = 0; s < nfa.num_states(); ++s) {
    if (nfa.IsInitial(s)) out.SetAccepting(s);
    if (nfa.IsAccepting(s)) out.SetInitial(s);
    for (const Nfa::Arc& arc : nfa.ArcsFrom(s)) {
      out.AddTransition(arc.second, arc.first, s);
    }
  }
  return out;
}

Nfa UnionNfa(const Nfa& a, const Nfa& b) {
  ECRPQ_DCHECK(a.num_symbols() == b.num_symbols());
  Nfa out(a.num_symbols());
  AppendStates(a, &out, /*keep_initial=*/true, /*keep_accepting=*/true);
  AppendStates(b, &out, /*keep_initial=*/true, /*keep_accepting=*/true);
  return out;
}

Nfa ConcatNfa(const Nfa& a, const Nfa& b) {
  ECRPQ_DCHECK(a.num_symbols() == b.num_symbols());
  Nfa out(a.num_symbols());
  StateId a_off =
      AppendStates(a, &out, /*keep_initial=*/true, /*keep_accepting=*/false);
  StateId b_off =
      AppendStates(b, &out, /*keep_initial=*/false, /*keep_accepting=*/true);
  for (StateId s = 0; s < a.num_states(); ++s) {
    if (!a.IsAccepting(s)) continue;
    for (StateId t = 0; t < b.num_states(); ++t) {
      if (b.IsInitial(t)) {
        out.AddTransition(a_off + s, kEpsilon, b_off + t);
      }
    }
  }
  return out;
}

Nfa StarNfa(const Nfa& a) {
  Nfa out = PlusNfa(a);
  StateId start = out.AddState();
  out.SetInitial(start);
  out.SetAccepting(start);
  for (StateId s = 0; s < a.num_states(); ++s) {
    if (a.IsInitial(s)) out.AddTransition(start, kEpsilon, s);
  }
  return out;
}

Nfa PlusNfa(const Nfa& a) {
  Nfa out(a.num_symbols());
  AppendStates(a, &out, /*keep_initial=*/true, /*keep_accepting=*/true);
  for (StateId s = 0; s < a.num_states(); ++s) {
    if (!a.IsAccepting(s)) continue;
    for (StateId t = 0; t < a.num_states(); ++t) {
      if (a.IsInitial(t)) out.AddTransition(s, kEpsilon, t);
    }
  }
  return out;
}

Nfa OptionalNfa(const Nfa& a) {
  Nfa out(a.num_symbols());
  AppendStates(a, &out, /*keep_initial=*/true, /*keep_accepting=*/true);
  StateId start = out.AddState();
  out.SetInitial(start);
  out.SetAccepting(start);
  for (StateId s = 0; s < a.num_states(); ++s) {
    if (a.IsInitial(s)) out.AddTransition(start, kEpsilon, s);
  }
  return out;
}

Nfa IntersectNfa(const Nfa& a_in, const Nfa& b_in) {
  ECRPQ_DCHECK(a_in.num_symbols() == b_in.num_symbols());
  const Nfa a = RemoveEpsilons(a_in);
  const Nfa b = RemoveEpsilons(b_in);
  Nfa out(a.num_symbols());

  // On-the-fly product over reachable pairs only.
  std::unordered_map<uint64_t, StateId> ids;
  std::vector<std::pair<StateId, StateId>> pairs;
  auto key = [&](StateId x, StateId y) {
    return (static_cast<uint64_t>(x) << 32) | static_cast<uint32_t>(y);
  };
  std::queue<std::pair<StateId, StateId>> work;
  auto get = [&](StateId x, StateId y) {
    auto [it, inserted] = ids.emplace(key(x, y), 0);
    if (inserted) {
      it->second = out.AddState();
      pairs.emplace_back(x, y);
      work.emplace(x, y);
      if (a.IsAccepting(x) && b.IsAccepting(y)) out.SetAccepting(it->second);
    }
    return it->second;
  };
  for (StateId x : a.InitialStates()) {
    for (StateId y : b.InitialStates()) {
      out.SetInitial(get(x, y));
    }
  }
  while (!work.empty()) {
    auto [x, y] = work.front();
    work.pop();
    StateId from = ids[key(x, y)];
    // Group b's arcs by symbol for pairing.
    for (const Nfa::Arc& ax : a.ArcsFrom(x)) {
      for (const Nfa::Arc& by : b.ArcsFrom(y)) {
        if (ax.first == by.first) {
          out.AddTransition(from, ax.first, get(ax.second, by.second));
        }
      }
    }
  }
  return out;
}

Dfa Determinize(const Nfa& nfa_in) {
  const Nfa nfa = RemoveEpsilons(nfa_in);
  // Map from sorted state sets to DFA ids.
  std::map<std::vector<StateId>, StateId> ids;
  std::vector<std::vector<StateId>> sets;
  std::vector<bool> accepting;

  auto intern = [&](std::vector<StateId> set) {
    auto [it, inserted] = ids.emplace(std::move(set), 0);
    if (inserted) {
      it->second = static_cast<StateId>(sets.size());
      sets.push_back(it->first);
      bool acc = false;
      for (StateId s : it->first) acc = acc || nfa.IsAccepting(s);
      accepting.push_back(acc);
    }
    return it->second;
  };

  StateId initial = intern(nfa.InitialStates());
  std::vector<std::vector<StateId>> table;  // per dfa state: per symbol
  for (size_t i = 0; i < sets.size(); ++i) {
    std::vector<StateId> row(nfa.num_symbols());
    // Successor sets per symbol.
    std::vector<std::vector<StateId>> next(nfa.num_symbols());
    for (StateId s : sets[i]) {
      for (const Nfa::Arc& arc : nfa.ArcsFrom(s)) {
        next[arc.first].push_back(arc.second);
      }
    }
    for (Symbol a = 0; a < nfa.num_symbols(); ++a) {
      std::sort(next[a].begin(), next[a].end());
      next[a].erase(std::unique(next[a].begin(), next[a].end()),
                    next[a].end());
      row[a] = intern(std::move(next[a]));
    }
    table.push_back(std::move(row));
  }

  Dfa dfa(nfa.num_symbols(), static_cast<int>(sets.size()));
  dfa.set_initial(initial);
  for (size_t i = 0; i < table.size(); ++i) {
    if (accepting[i]) dfa.SetAccepting(static_cast<StateId>(i));
    for (Symbol a = 0; a < nfa.num_symbols(); ++a) {
      dfa.SetNext(static_cast<StateId>(i), a, table[i][a]);
    }
  }
  return dfa;
}

Dfa Minimize(const Dfa& dfa) {
  const int n = dfa.num_states();
  const int k = dfa.num_symbols();

  // Restrict to reachable states first.
  std::vector<bool> reach(n, false);
  std::vector<StateId> stack = {dfa.initial()};
  reach[dfa.initial()] = true;
  while (!stack.empty()) {
    StateId s = stack.back();
    stack.pop_back();
    for (Symbol a = 0; a < k; ++a) {
      StateId t = dfa.Next(s, a);
      if (!reach[t]) {
        reach[t] = true;
        stack.push_back(t);
      }
    }
  }

  // Moore partition refinement on reachable states.
  std::vector<int> cls(n, -1);
  for (StateId s = 0; s < n; ++s) {
    if (reach[s]) cls[s] = dfa.IsAccepting(s) ? 1 : 0;
  }
  int num_classes = 2;
  bool changed = true;
  while (changed) {
    changed = false;
    std::map<std::vector<int>, int> sig_to_class;
    std::vector<int> new_cls(n, -1);
    for (StateId s = 0; s < n; ++s) {
      if (!reach[s]) continue;
      std::vector<int> sig;
      sig.reserve(k + 1);
      sig.push_back(cls[s]);
      for (Symbol a = 0; a < k; ++a) sig.push_back(cls[dfa.Next(s, a)]);
      auto [it, inserted] =
          sig_to_class.emplace(std::move(sig), static_cast<int>(sig_to_class.size()));
      new_cls[s] = it->second;
      (void)inserted;
    }
    int new_count = static_cast<int>(sig_to_class.size());
    if (new_count != num_classes) changed = true;
    cls = std::move(new_cls);
    num_classes = new_count;
  }

  Dfa out(k, num_classes);
  out.set_initial(cls[dfa.initial()]);
  for (StateId s = 0; s < n; ++s) {
    if (!reach[s]) continue;
    if (dfa.IsAccepting(s)) out.SetAccepting(cls[s]);
    for (Symbol a = 0; a < k; ++a) {
      out.SetNext(cls[s], a, cls[dfa.Next(s, a)]);
    }
  }
  return out;
}

Nfa ComplementNfa(const Nfa& nfa) {
  Dfa dfa = Determinize(nfa);
  dfa.ComplementInPlace();
  return dfa.ToNfa();
}

bool IsEmpty(const Nfa& nfa) {
  std::vector<bool> reach = ReachableStates(nfa);
  for (StateId s = 0; s < nfa.num_states(); ++s) {
    if (reach[s] && nfa.IsAccepting(s)) return false;
  }
  return true;
}

bool IsInfinite(const Nfa& nfa_in) {
  // Infinite iff the trimmed ε-free automaton has a non-ε cycle.
  Nfa nfa = Trim(RemoveEpsilons(nfa_in));
  const int n = nfa.num_states();
  // Iterative DFS cycle detection (colors: 0 white, 1 gray, 2 black).
  std::vector<int> color(n, 0);
  for (StateId root = 0; root < n; ++root) {
    if (color[root] != 0) continue;
    std::vector<std::pair<StateId, size_t>> stack = {{root, 0}};
    color[root] = 1;
    while (!stack.empty()) {
      auto& [s, idx] = stack.back();
      const auto& arcs = nfa.ArcsFrom(s);
      if (idx < arcs.size()) {
        StateId t = arcs[idx++].second;
        if (color[t] == 1) return true;  // back edge
        if (color[t] == 0) {
          color[t] = 1;
          stack.emplace_back(t, 0);
        }
      } else {
        color[s] = 2;
        stack.pop_back();
      }
    }
  }
  return false;
}

bool IsSubsetOf(const Nfa& a, const Nfa& b) {
  return IsEmpty(IntersectNfa(a, ComplementNfa(b)));
}

bool AreEquivalent(const Nfa& a, const Nfa& b) {
  return IsSubsetOf(a, b) && IsSubsetOf(b, a);
}

std::optional<Word> ShortestWord(const Nfa& nfa_in) {
  const Nfa nfa = RemoveEpsilons(nfa_in);
  std::vector<StateId> parent(nfa.num_states(), -1);
  std::vector<Symbol> via(nfa.num_states(), -1);
  std::vector<bool> seen(nfa.num_states(), false);
  std::queue<StateId> work;
  for (StateId s : nfa.InitialStates()) {
    seen[s] = true;
    work.push(s);
  }
  StateId goal = -1;
  // Check immediate acceptance.
  for (StateId s : nfa.InitialStates()) {
    if (nfa.IsAccepting(s)) return Word{};
  }
  while (!work.empty() && goal < 0) {
    StateId s = work.front();
    work.pop();
    for (const Nfa::Arc& arc : nfa.ArcsFrom(s)) {
      if (!seen[arc.second]) {
        seen[arc.second] = true;
        parent[arc.second] = s;
        via[arc.second] = arc.first;
        if (nfa.IsAccepting(arc.second)) {
          goal = arc.second;
          break;
        }
        work.push(arc.second);
      }
    }
  }
  if (goal < 0) return std::nullopt;
  Word word;
  for (StateId s = goal; parent[s] >= 0 || via[s] >= 0; s = parent[s]) {
    word.push_back(via[s]);
    if (parent[s] < 0) break;
  }
  std::reverse(word.begin(), word.end());
  return word;
}

std::vector<Word> EnumerateWords(const Nfa& nfa_in, int max_count,
                                 int max_len) {
  const Nfa nfa = RemoveEpsilons(nfa_in);
  std::vector<Word> out;
  if (max_count <= 0) return out;

  // BFS over subset-construction states, expanding symbols in order; this
  // yields distinct words in length-then-lex order.
  struct Item {
    std::vector<StateId> set;
    Word word;
  };
  std::queue<Item> work;
  std::vector<StateId> init = nfa.InitialStates();
  std::sort(init.begin(), init.end());
  work.push({init, {}});
  while (!work.empty() && static_cast<int>(out.size()) < max_count) {
    Item item = std::move(work.front());
    work.pop();
    bool accepting = false;
    for (StateId s : item.set) accepting = accepting || nfa.IsAccepting(s);
    if (accepting) out.push_back(item.word);
    if (static_cast<int>(item.word.size()) >= max_len) continue;
    for (Symbol a = 0; a < nfa.num_symbols(); ++a) {
      std::vector<StateId> next;
      for (StateId s : item.set) {
        for (const Nfa::Arc& arc : nfa.ArcsFrom(s)) {
          if (arc.first == a) next.push_back(arc.second);
        }
      }
      if (next.empty()) continue;
      std::sort(next.begin(), next.end());
      next.erase(std::unique(next.begin(), next.end()), next.end());
      Word w = item.word;
      w.push_back(a);
      work.push({std::move(next), std::move(w)});
    }
  }
  if (static_cast<int>(out.size()) > max_count) out.resize(max_count);
  return out;
}

namespace {
uint64_t SaturatingAdd(uint64_t a, uint64_t b) {
  uint64_t s = a + b;
  return s < a ? UINT64_MAX : s;
}
}  // namespace

uint64_t CountWordsOfLength(const Nfa& nfa_in, int len) {
  // Count distinct words via on-the-fly subset construction with a DP over
  // lengths. Subset states are interned; counts flow along DFA transitions.
  const Nfa nfa = RemoveEpsilons(nfa_in);
  std::map<std::vector<StateId>, StateId> ids;
  std::vector<std::vector<StateId>> sets;
  auto intern = [&](std::vector<StateId> set) -> StateId {
    auto [it, inserted] = ids.emplace(std::move(set), 0);
    if (inserted) {
      it->second = static_cast<StateId>(sets.size());
      sets.push_back(it->first);
    }
    return it->second;
  };
  std::vector<StateId> init = nfa.InitialStates();
  std::sort(init.begin(), init.end());
  if (init.empty()) return 0;
  intern(init);

  std::unordered_map<StateId, uint64_t> current;
  current[0] = 1;
  for (int step = 0; step < len; ++step) {
    std::unordered_map<StateId, uint64_t> next;
    for (const auto& [id, count] : current) {
      std::vector<std::vector<StateId>> succ(nfa.num_symbols());
      for (StateId s : sets[id]) {
        for (const Nfa::Arc& arc : nfa.ArcsFrom(s)) {
          succ[arc.first].push_back(arc.second);
        }
      }
      for (Symbol a = 0; a < nfa.num_symbols(); ++a) {
        if (succ[a].empty()) continue;
        std::sort(succ[a].begin(), succ[a].end());
        succ[a].erase(std::unique(succ[a].begin(), succ[a].end()),
                      succ[a].end());
        StateId t = intern(std::move(succ[a]));
        uint64_t& slot = next[t];
        slot = SaturatingAdd(slot, count);
      }
    }
    current = std::move(next);
    if (current.empty()) return 0;
  }
  uint64_t total = 0;
  for (const auto& [id, count] : current) {
    bool accepting = false;
    for (StateId s : sets[id]) accepting = accepting || nfa.IsAccepting(s);
    if (accepting) total = SaturatingAdd(total, count);
  }
  return total;
}

uint64_t CountWordsUpTo(const Nfa& nfa, int len) {
  uint64_t total = 0;
  for (int l = 0; l <= len; ++l) {
    total = SaturatingAdd(total, CountWordsOfLength(nfa, l));
  }
  return total;
}

Nfa FromWords(int num_symbols, const std::vector<Word>& words) {
  Nfa out(num_symbols);
  StateId root = out.AddState();
  out.SetInitial(root);
  // Simple trie.
  for (const Word& word : words) {
    StateId at = root;
    for (Symbol a : word) {
      StateId next = -1;
      for (const Nfa::Arc& arc : out.ArcsFrom(at)) {
        if (arc.first == a) {
          next = arc.second;
          break;
        }
      }
      if (next < 0) {
        next = out.AddState();
        out.AddTransition(at, a, next);
      }
      at = next;
    }
    out.SetAccepting(at);
  }
  return out;
}

Nfa UniverseNfa(int num_symbols) {
  Nfa out(num_symbols);
  StateId s = out.AddState();
  out.SetInitial(s);
  out.SetAccepting(s);
  for (Symbol a = 0; a < num_symbols; ++a) out.AddTransition(s, a, s);
  return out;
}

Nfa EmptyNfa(int num_symbols) {
  Nfa out(num_symbols);
  StateId s = out.AddState();
  out.SetInitial(s);
  return out;
}

}  // namespace ecrpq
