// Nondeterministic finite automata over dense symbol ids.
//
// The NFA is the workhorse of the library: regular languages (unary
// relations), regular relations (NFAs over tuple alphabets), graphs viewed as
// automata, and the answer automata of Proposition 5.2 are all Nfa instances.
// Symbols are plain ints in [0, num_symbols); the special kEpsilon id labels
// ε-transitions. Multiple initial states are allowed (graphs-as-automata need
// them).

#ifndef ECRPQ_AUTOMATA_NFA_H_
#define ECRPQ_AUTOMATA_NFA_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "automata/alphabet.h"
#include "util/status.h"

namespace ecrpq {

/// Dense automaton state id.
using StateId = int32_t;

/// Symbol id labelling ε-transitions. Never a valid alphabet symbol.
constexpr Symbol kEpsilon = -1;

/// A nondeterministic finite automaton with ε-transitions and multiple
/// initial states.
class Nfa {
 public:
  /// An outgoing transition: (symbol, target state).
  using Arc = std::pair<Symbol, StateId>;

  /// Creates an NFA over symbols [0, num_symbols). num_symbols >= 0.
  explicit Nfa(int num_symbols);

  /// Adds a fresh state and returns its id.
  StateId AddState();

  /// Adds `count` fresh states; returns the id of the first.
  StateId AddStates(int count);

  /// Adds a transition. `symbol` must be kEpsilon or in [0, num_symbols).
  void AddTransition(StateId from, Symbol symbol, StateId to);

  void SetInitial(StateId state, bool initial = true);
  void SetAccepting(StateId state, bool accepting = true);

  int num_states() const { return static_cast<int>(arcs_.size()); }
  int num_symbols() const { return num_symbols_; }
  int num_transitions() const { return num_transitions_; }

  bool IsInitial(StateId state) const { return initial_[state]; }
  bool IsAccepting(StateId state) const { return accepting_[state]; }

  /// All initial / accepting state ids, ascending.
  std::vector<StateId> InitialStates() const;
  std::vector<StateId> AcceptingStates() const;

  /// Outgoing arcs of `state` in insertion order (includes ε-arcs).
  const std::vector<Arc>& ArcsFrom(StateId state) const {
    return arcs_[state];
  }

  bool HasEpsilonArcs() const { return num_epsilon_arcs_ > 0; }

  /// ε-closure of a set of states (sorted, deduplicated).
  std::vector<StateId> EpsilonClosure(std::vector<StateId> states) const;

  /// Subset simulation: does this NFA accept `word`?
  bool Accepts(const Word& word) const;

  /// True if some state is both initial and accepting (after ε-closure),
  /// i.e. the empty word is accepted.
  bool AcceptsEmptyWord() const;

 private:
  int num_symbols_;
  int num_transitions_ = 0;
  int num_epsilon_arcs_ = 0;
  std::vector<std::vector<Arc>> arcs_;
  std::vector<bool> initial_;
  std::vector<bool> accepting_;
};

}  // namespace ecrpq

#endif  // ECRPQ_AUTOMATA_NFA_H_
