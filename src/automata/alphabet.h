// Finite alphabets of edge labels.
//
// Graph databases, regular languages and regular relations all share a base
// alphabet Σ. Labels are user-facing strings; the library works with dense
// integer `Symbol` ids assigned by an Alphabet in interning order.

#ifndef ECRPQ_AUTOMATA_ALPHABET_H_
#define ECRPQ_AUTOMATA_ALPHABET_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/status.h"

namespace ecrpq {

/// Dense id of a letter within an Alphabet. Valid ids are [0, alphabet size).
using Symbol = int32_t;

/// A word over Σ, as a sequence of symbol ids.
using Word = std::vector<Symbol>;

/// An interning table mapping label strings to dense Symbol ids.
///
/// Alphabets are append-only: ids remain stable once assigned, so automata
/// and relations built against an alphabet stay valid when more labels are
/// interned later (they simply never match the new letters).
class Alphabet {
 public:
  Alphabet() = default;

  /// Creates an alphabet containing the given labels, in order.
  static std::shared_ptr<Alphabet> FromLabels(
      std::initializer_list<std::string_view> labels);
  static std::shared_ptr<Alphabet> FromLabels(
      const std::vector<std::string>& labels);

  /// Returns the id for `label`, interning it if new.
  Symbol Intern(std::string_view label);

  /// Returns the id for `label` if present.
  std::optional<Symbol> Find(std::string_view label) const;

  /// Returns the label of `symbol`. Requires 0 <= symbol < size().
  const std::string& Label(Symbol symbol) const;

  /// Number of interned labels.
  int size() const { return static_cast<int>(labels_.size()); }

  /// Renders a word as concatenated labels. Multi-character labels are
  /// separated by `sep` from their neighbours.
  std::string Format(const Word& word, std::string_view sep = "") const;

  /// Converts a string of single-character labels to a Word.
  /// Fails if any character is not an interned label.
  Result<Word> WordFromChars(std::string_view text) const;

 private:
  std::vector<std::string> labels_;
  std::unordered_map<std::string, Symbol> index_;
};

using AlphabetPtr = std::shared_ptr<Alphabet>;

}  // namespace ecrpq

#endif  // ECRPQ_AUTOMATA_ALPHABET_H_
