#include "automata/alphabet.h"

namespace ecrpq {

std::shared_ptr<Alphabet> Alphabet::FromLabels(
    std::initializer_list<std::string_view> labels) {
  auto alphabet = std::make_shared<Alphabet>();
  for (auto label : labels) alphabet->Intern(label);
  return alphabet;
}

std::shared_ptr<Alphabet> Alphabet::FromLabels(
    const std::vector<std::string>& labels) {
  auto alphabet = std::make_shared<Alphabet>();
  for (const auto& label : labels) alphabet->Intern(label);
  return alphabet;
}

Symbol Alphabet::Intern(std::string_view label) {
  auto it = index_.find(std::string(label));
  if (it != index_.end()) return it->second;
  Symbol id = static_cast<Symbol>(labels_.size());
  labels_.emplace_back(label);
  index_.emplace(labels_.back(), id);
  return id;
}

std::optional<Symbol> Alphabet::Find(std::string_view label) const {
  auto it = index_.find(std::string(label));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const std::string& Alphabet::Label(Symbol symbol) const {
  ECRPQ_DCHECK(symbol >= 0 && symbol < size());
  return labels_[static_cast<size_t>(symbol)];
}

std::string Alphabet::Format(const Word& word, std::string_view sep) const {
  std::string out;
  bool first = true;
  for (Symbol s : word) {
    if (!first && !sep.empty()) out += sep;
    out += Label(s);
    first = false;
  }
  return out;
}

Result<Word> Alphabet::WordFromChars(std::string_view text) const {
  Word word;
  word.reserve(text.size());
  for (char c : text) {
    auto sym = Find(std::string_view(&c, 1));
    if (!sym.has_value()) {
      return Status::NotFound(std::string("label not in alphabet: '") + c +
                              "'");
    }
    word.push_back(*sym);
  }
  return word;
}

}  // namespace ecrpq
