// Regular expressions over a base alphabet.
//
// Grammar (recursive descent, usual precedence: star > concat > union):
//
//   expr    := term ('|' term)*
//   term    := factor*
//   factor  := atom ('*' | '+' | '?')*
//   atom    := letter | '.' | '(' expr ')' | '\e' | '\0'
//   letter  := single alphanumeric char | 'quoted multi-char label'
//
// '.' matches any alphabet letter, '\e' is ε, '\0' the empty language.
// Whitespace between tokens is ignored. Letters are resolved against (and
// interned into) the supplied Alphabet.

#ifndef ECRPQ_AUTOMATA_REGEX_H_
#define ECRPQ_AUTOMATA_REGEX_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "automata/alphabet.h"
#include "automata/nfa.h"
#include "util/status.h"

namespace ecrpq {

class Regex;
using RegexPtr = std::shared_ptr<const Regex>;

/// Immutable regular-expression syntax tree.
class Regex {
 public:
  enum class Kind {
    kEmptySet,   ///< ∅
    kEpsilon,    ///< ε
    kSymbol,     ///< a single letter
    kAnySymbol,  ///< '.', any letter of the alphabet
    kUnion,      ///< e1 | e2
    kConcat,     ///< e1 e2
    kStar,       ///< e*
    kPlus,       ///< e+
    kOptional,   ///< e?
  };

  static RegexPtr EmptySet();
  static RegexPtr Epsilon();
  static RegexPtr Letter(Symbol symbol);
  static RegexPtr Any();
  static RegexPtr Union(RegexPtr a, RegexPtr b);
  static RegexPtr Concat(RegexPtr a, RegexPtr b);
  static RegexPtr Star(RegexPtr a);
  static RegexPtr Plus(RegexPtr a);
  static RegexPtr Optional(RegexPtr a);

  /// Union / concatenation over a list (∅ / ε for empty lists).
  static RegexPtr UnionAll(const std::vector<RegexPtr>& parts);
  static RegexPtr ConcatAll(const std::vector<RegexPtr>& parts);

  /// A literal word a1 a2 ... an.
  static RegexPtr Literal(const Word& word);

  Kind kind() const { return kind_; }
  Symbol symbol() const { return symbol_; }
  const RegexPtr& left() const { return left_; }
  const RegexPtr& right() const { return right_; }

  /// Thompson construction over symbols [0, num_symbols).
  Nfa ToNfa(int num_symbols) const;

  /// Round-trippable rendering using `alphabet` labels.
  std::string ToString(const Alphabet& alphabet) const;

 private:
  Regex(Kind kind, Symbol symbol, RegexPtr left, RegexPtr right)
      : kind_(kind), symbol_(symbol), left_(std::move(left)),
        right_(std::move(right)) {}

  Kind kind_;
  Symbol symbol_ = -1;
  RegexPtr left_;
  RegexPtr right_;
};

/// Parses `text` against `alphabet` (new letters are interned).
Result<RegexPtr> ParseRegex(std::string_view text, Alphabet* alphabet);

/// Parses `text`; letters must already be present in `alphabet`.
Result<RegexPtr> ParseRegexStrict(std::string_view text,
                                  const Alphabet& alphabet);

}  // namespace ecrpq

#endif  // ECRPQ_AUTOMATA_REGEX_H_
