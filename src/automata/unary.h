// Unary-automaton analysis: accepted path *lengths* as arithmetic
// progressions.
//
// Section 6.3 of the paper relies on the fact (Chrobak 1986 / To 2009) that
// the set of lengths accepted by an n-state unary NFA is a union of at most
// quadratically many arithmetic progressions with offsets O(n²) and periods
// <= n. We implement the standard decomposition: accepted lengths below n²
// are listed exactly, and every accepted length >= n² is of the form
// x + k*c where x < n² is witnessed by an accepting path through a state q
// and c <= n is the length of a closed walk at q (Sawa's characterization).
//
// `LengthAutomaton` views any NFA (or a graph database) as unary by erasing
// labels.

#ifndef ECRPQ_AUTOMATA_UNARY_H_
#define ECRPQ_AUTOMATA_UNARY_H_

#include "automata/nfa.h"
#include "solver/progression.h"

namespace ecrpq {

/// Erases symbols: the result accepts a^n iff `nfa` accepts some word of
/// length n. (ε-arcs are removed first, so lengths are preserved.)
Nfa LengthAutomaton(const Nfa& nfa);

/// Decomposes the set of accepted lengths of `nfa` (treated as unary: all
/// symbols equivalent) into a normalized union of arithmetic progressions.
/// Exact for every NFA; output size is O(n²) progressions.
SemilinearSet1D AcceptedLengths(const Nfa& nfa);

}  // namespace ecrpq

#endif  // ECRPQ_AUTOMATA_UNARY_H_
