#include "automata/dfa.h"

namespace ecrpq {

Dfa::Dfa(int num_symbols, int num_states)
    : num_symbols_(num_symbols),
      table_(static_cast<size_t>(num_states) *
                 static_cast<size_t>(num_symbols),
             0),
      accepting_(num_states, false) {
  ECRPQ_DCHECK(num_symbols >= 0);
  ECRPQ_DCHECK(num_states >= 1);
}

bool Dfa::Accepts(const Word& word) const {
  StateId s = initial_;
  for (Symbol symbol : word) {
    ECRPQ_DCHECK(symbol >= 0 && symbol < num_symbols_);
    s = Next(s, symbol);
  }
  return accepting_[s];
}

void Dfa::ComplementInPlace() {
  for (size_t i = 0; i < accepting_.size(); ++i) accepting_[i] = !accepting_[i];
}

Nfa Dfa::ToNfa() const {
  Nfa nfa(num_symbols_);
  nfa.AddStates(num_states());
  nfa.SetInitial(initial_);
  for (StateId s = 0; s < num_states(); ++s) {
    if (accepting_[s]) nfa.SetAccepting(s);
    for (Symbol a = 0; a < num_symbols_; ++a) {
      nfa.AddTransition(s, a, Next(s, a));
    }
  }
  return nfa;
}

}  // namespace ecrpq
