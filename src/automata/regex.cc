#include "automata/regex.h"

#include <cctype>

namespace ecrpq {

RegexPtr Regex::EmptySet() {
  return RegexPtr(new Regex(Kind::kEmptySet, -1, nullptr, nullptr));
}
RegexPtr Regex::Epsilon() {
  return RegexPtr(new Regex(Kind::kEpsilon, -1, nullptr, nullptr));
}
RegexPtr Regex::Letter(Symbol symbol) {
  ECRPQ_DCHECK(symbol >= 0);
  return RegexPtr(new Regex(Kind::kSymbol, symbol, nullptr, nullptr));
}
RegexPtr Regex::Any() {
  return RegexPtr(new Regex(Kind::kAnySymbol, -1, nullptr, nullptr));
}
RegexPtr Regex::Union(RegexPtr a, RegexPtr b) {
  return RegexPtr(
      new Regex(Kind::kUnion, -1, std::move(a), std::move(b)));
}
RegexPtr Regex::Concat(RegexPtr a, RegexPtr b) {
  return RegexPtr(
      new Regex(Kind::kConcat, -1, std::move(a), std::move(b)));
}
RegexPtr Regex::Star(RegexPtr a) {
  return RegexPtr(new Regex(Kind::kStar, -1, std::move(a), nullptr));
}
RegexPtr Regex::Plus(RegexPtr a) {
  return RegexPtr(new Regex(Kind::kPlus, -1, std::move(a), nullptr));
}
RegexPtr Regex::Optional(RegexPtr a) {
  return RegexPtr(new Regex(Kind::kOptional, -1, std::move(a), nullptr));
}

RegexPtr Regex::UnionAll(const std::vector<RegexPtr>& parts) {
  if (parts.empty()) return EmptySet();
  RegexPtr out = parts[0];
  for (size_t i = 1; i < parts.size(); ++i) out = Union(out, parts[i]);
  return out;
}

RegexPtr Regex::ConcatAll(const std::vector<RegexPtr>& parts) {
  if (parts.empty()) return Epsilon();
  RegexPtr out = parts[0];
  for (size_t i = 1; i < parts.size(); ++i) out = Concat(out, parts[i]);
  return out;
}

RegexPtr Regex::Literal(const Word& word) {
  std::vector<RegexPtr> parts;
  parts.reserve(word.size());
  for (Symbol s : word) parts.push_back(Letter(s));
  return ConcatAll(parts);
}

namespace {
// Thompson fragment: start and end states within a shared NFA.
struct Fragment {
  StateId start;
  StateId end;
};

Fragment Build(const Regex& re, int num_symbols, Nfa* nfa) {
  StateId start = nfa->AddState();
  StateId end = nfa->AddState();
  switch (re.kind()) {
    case Regex::Kind::kEmptySet:
      break;  // no connection
    case Regex::Kind::kEpsilon:
      nfa->AddTransition(start, kEpsilon, end);
      break;
    case Regex::Kind::kSymbol:
      ECRPQ_DCHECK(re.symbol() < num_symbols);
      nfa->AddTransition(start, re.symbol(), end);
      break;
    case Regex::Kind::kAnySymbol:
      for (Symbol a = 0; a < num_symbols; ++a) {
        nfa->AddTransition(start, a, end);
      }
      break;
    case Regex::Kind::kUnion: {
      Fragment l = Build(*re.left(), num_symbols, nfa);
      Fragment r = Build(*re.right(), num_symbols, nfa);
      nfa->AddTransition(start, kEpsilon, l.start);
      nfa->AddTransition(start, kEpsilon, r.start);
      nfa->AddTransition(l.end, kEpsilon, end);
      nfa->AddTransition(r.end, kEpsilon, end);
      break;
    }
    case Regex::Kind::kConcat: {
      Fragment l = Build(*re.left(), num_symbols, nfa);
      Fragment r = Build(*re.right(), num_symbols, nfa);
      nfa->AddTransition(start, kEpsilon, l.start);
      nfa->AddTransition(l.end, kEpsilon, r.start);
      nfa->AddTransition(r.end, kEpsilon, end);
      break;
    }
    case Regex::Kind::kStar: {
      Fragment l = Build(*re.left(), num_symbols, nfa);
      nfa->AddTransition(start, kEpsilon, end);
      nfa->AddTransition(start, kEpsilon, l.start);
      nfa->AddTransition(l.end, kEpsilon, l.start);
      nfa->AddTransition(l.end, kEpsilon, end);
      break;
    }
    case Regex::Kind::kPlus: {
      Fragment l = Build(*re.left(), num_symbols, nfa);
      nfa->AddTransition(start, kEpsilon, l.start);
      nfa->AddTransition(l.end, kEpsilon, l.start);
      nfa->AddTransition(l.end, kEpsilon, end);
      break;
    }
    case Regex::Kind::kOptional: {
      Fragment l = Build(*re.left(), num_symbols, nfa);
      nfa->AddTransition(start, kEpsilon, end);
      nfa->AddTransition(start, kEpsilon, l.start);
      nfa->AddTransition(l.end, kEpsilon, end);
      break;
    }
  }
  return {start, end};
}
}  // namespace

Nfa Regex::ToNfa(int num_symbols) const {
  Nfa nfa(num_symbols);
  Fragment f = Build(*this, num_symbols, &nfa);
  nfa.SetInitial(f.start);
  nfa.SetAccepting(f.end);
  return nfa;
}

namespace {
int Precedence(Regex::Kind kind) {
  switch (kind) {
    case Regex::Kind::kUnion:
      return 0;
    case Regex::Kind::kConcat:
      return 1;
    default:
      return 2;
  }
}

void Render(const Regex& re, const Alphabet& alphabet, std::string* out) {
  auto child = [&](const Regex& c) {
    bool parens = Precedence(c.kind()) < Precedence(re.kind()) ||
                  (re.kind() != Regex::Kind::kUnion &&
                   re.kind() != Regex::Kind::kConcat &&
                   Precedence(c.kind()) < 2);
    if (parens) out->push_back('(');
    Render(c, alphabet, out);
    if (parens) out->push_back(')');
  };
  switch (re.kind()) {
    case Regex::Kind::kEmptySet:
      *out += "\\0";
      break;
    case Regex::Kind::kEpsilon:
      *out += "\\e";
      break;
    case Regex::Kind::kSymbol: {
      const std::string& label = alphabet.Label(re.symbol());
      if (label.size() == 1 && std::isalnum(static_cast<unsigned char>(
                                   label[0]))) {
        *out += label;
      } else {
        *out += "'" + label + "'";
      }
      break;
    }
    case Regex::Kind::kAnySymbol:
      out->push_back('.');
      break;
    case Regex::Kind::kUnion:
      Render(*re.left(), alphabet, out);
      out->push_back('|');
      Render(*re.right(), alphabet, out);
      break;
    case Regex::Kind::kConcat:
      child(*re.left());
      child(*re.right());
      break;
    case Regex::Kind::kStar:
      child(*re.left());
      out->push_back('*');
      break;
    case Regex::Kind::kPlus:
      child(*re.left());
      out->push_back('+');
      break;
    case Regex::Kind::kOptional:
      child(*re.left());
      out->push_back('?');
      break;
  }
}
}  // namespace

std::string Regex::ToString(const Alphabet& alphabet) const {
  std::string out;
  Render(*this, alphabet, &out);
  return out;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, Alphabet* alphabet, const Alphabet* strict)
      : text_(text), alphabet_(alphabet), strict_(strict) {}

  Result<RegexPtr> Parse() {
    auto expr = ParseUnion();
    if (!expr.ok()) return expr;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("unexpected character at offset " +
                                     std::to_string(pos_) + " in regex: " +
                                     std::string(text_));
    }
    return expr;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool AtAtomStart() {
    SkipSpace();
    if (pos_ >= text_.size()) return false;
    char c = text_[pos_];
    return std::isalnum(static_cast<unsigned char>(c)) || c == '(' ||
           c == '\'' || c == '.' || c == '\\' || c == '_';
  }

  Result<RegexPtr> ParseUnion() {
    auto left = ParseConcat();
    if (!left.ok()) return left;
    RegexPtr out = std::move(left).value();
    SkipSpace();
    while (pos_ < text_.size() && text_[pos_] == '|') {
      ++pos_;
      auto right = ParseConcat();
      if (!right.ok()) return right;
      out = Regex::Union(out, std::move(right).value());
      SkipSpace();
    }
    return out;
  }

  Result<RegexPtr> ParseConcat() {
    std::vector<RegexPtr> parts;
    while (AtAtomStart()) {
      auto factor = ParseFactor();
      if (!factor.ok()) return factor;
      parts.push_back(std::move(factor).value());
    }
    return Regex::ConcatAll(parts);
  }

  Result<RegexPtr> ParseFactor() {
    auto atom = ParseAtom();
    if (!atom.ok()) return atom;
    RegexPtr out = std::move(atom).value();
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '*') {
        out = Regex::Star(out);
        ++pos_;
      } else if (c == '+') {
        out = Regex::Plus(out);
        ++pos_;
      } else if (c == '?') {
        out = Regex::Optional(out);
        ++pos_;
      } else {
        break;
      }
    }
    return out;
  }

  Result<RegexPtr> MakeLetter(std::string_view label) {
    if (strict_ != nullptr) {
      auto sym = strict_->Find(label);
      if (!sym.has_value()) {
        return Status::NotFound("letter '" + std::string(label) +
                                "' not in alphabet");
      }
      return Regex::Letter(*sym);
    }
    return Regex::Letter(alphabet_->Intern(label));
  }

  Result<RegexPtr> ParseAtom() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("regex ended unexpectedly");
    }
    char c = text_[pos_];
    if (c == '(') {
      ++pos_;
      auto inner = ParseUnion();
      if (!inner.ok()) return inner;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ')') {
        return Status::InvalidArgument("missing ')' in regex");
      }
      ++pos_;
      return inner;
    }
    if (c == '.') {
      ++pos_;
      return Regex::Any();
    }
    if (c == '\\') {
      if (pos_ + 1 >= text_.size()) {
        return Status::InvalidArgument("dangling '\\' in regex");
      }
      char e = text_[pos_ + 1];
      pos_ += 2;
      if (e == 'e') return Regex::Epsilon();
      if (e == '0') return Regex::EmptySet();
      return Status::InvalidArgument(std::string("unknown escape '\\") + e +
                                     "'");
    }
    if (c == '\'') {
      size_t end = text_.find('\'', pos_ + 1);
      if (end == std::string_view::npos) {
        return Status::InvalidArgument("unterminated quoted label");
      }
      std::string_view label = text_.substr(pos_ + 1, end - pos_ - 1);
      if (label.empty()) {
        return Status::InvalidArgument("empty quoted label");
      }
      pos_ = end + 1;
      return MakeLetter(label);
    }
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_') {
      ++pos_;
      return MakeLetter(text_.substr(pos_ - 1, 1));
    }
    return Status::InvalidArgument(std::string("unexpected character '") + c +
                                   "' in regex");
  }

  std::string_view text_;
  Alphabet* alphabet_;
  const Alphabet* strict_;
  size_t pos_ = 0;
};

}  // namespace

Result<RegexPtr> ParseRegex(std::string_view text, Alphabet* alphabet) {
  return Parser(text, alphabet, nullptr).Parse();
}

Result<RegexPtr> ParseRegexStrict(std::string_view text,
                                  const Alphabet& alphabet) {
  return Parser(text, nullptr, &alphabet).Parse();
}

}  // namespace ecrpq
