#include "automata/unary.h"

#include <algorithm>
#include <vector>

#include "automata/operations.h"

namespace ecrpq {

Nfa LengthAutomaton(const Nfa& nfa_in) {
  const Nfa nfa = RemoveEpsilons(nfa_in);
  Nfa out(1);
  out.AddStates(nfa.num_states());
  for (StateId s = 0; s < nfa.num_states(); ++s) {
    if (nfa.IsInitial(s)) out.SetInitial(s);
    if (nfa.IsAccepting(s)) out.SetAccepting(s);
    // Deduplicate parallel arcs (labels no longer matter).
    std::vector<StateId> targets;
    for (const Nfa::Arc& arc : nfa.ArcsFrom(s)) targets.push_back(arc.second);
    std::sort(targets.begin(), targets.end());
    targets.erase(std::unique(targets.begin(), targets.end()), targets.end());
    for (StateId t : targets) out.AddTransition(s, 0, t);
  }
  return out;
}

namespace {

// Dense bitset over states.
class StateSet {
 public:
  explicit StateSet(int n) : bits_((n + 63) / 64, 0), n_(n) {}
  void Set(int i) { bits_[i >> 6] |= (1ULL << (i & 63)); }
  bool Get(int i) const { return (bits_[i >> 6] >> (i & 63)) & 1; }
  bool Any() const {
    for (uint64_t b : bits_) {
      if (b) return true;
    }
    return false;
  }
  bool Intersects(const StateSet& other) const {
    for (size_t i = 0; i < bits_.size(); ++i) {
      if (bits_[i] & other.bits_[i]) return true;
    }
    return false;
  }
  int size() const { return n_; }

 private:
  std::vector<uint64_t> bits_;
  int n_;
};

// One unary step: next[q] set iff some predecessor p with arc p->q is set.
StateSet Step(const std::vector<std::vector<StateId>>& succ,
              const StateSet& current) {
  StateSet next(current.size());
  for (int s = 0; s < current.size(); ++s) {
    if (!current.Get(s)) continue;
    for (StateId t : succ[s]) next.Set(t);
  }
  return next;
}

}  // namespace

SemilinearSet1D AcceptedLengths(const Nfa& nfa_in) {
  const Nfa nfa = Trim(LengthAutomaton(nfa_in));
  const int n = nfa.num_states();
  SemilinearSet1D out;
  if (n == 0) return out;  // empty language

  std::vector<std::vector<StateId>> succ(n);
  std::vector<std::vector<StateId>> pred(n);
  for (StateId s = 0; s < n; ++s) {
    for (const Nfa::Arc& arc : nfa.ArcsFrom(s)) {
      succ[s].push_back(arc.second);
      pred[arc.second].push_back(s);
    }
  }

  const int64_t threshold = static_cast<int64_t>(n) * n;  // n²

  // Forward layers: fwd[i] = states reachable from an initial state in
  // exactly i steps, for i in [0, threshold].
  std::vector<StateSet> fwd;
  fwd.reserve(threshold + 1);
  {
    StateSet init(n);
    for (StateId s : nfa.InitialStates()) init.Set(s);
    fwd.push_back(init);
    for (int64_t i = 1; i <= threshold; ++i) {
      fwd.push_back(Step(succ, fwd.back()));
    }
  }
  // Backward layers: bwd[j] = states from which an accepting state is
  // reachable in exactly j steps.
  std::vector<StateSet> bwd;
  bwd.reserve(threshold + 1);
  {
    StateSet fin(n);
    for (StateId s : nfa.AcceptingStates()) fin.Set(s);
    bwd.push_back(fin);
    for (int64_t j = 1; j <= threshold; ++j) {
      bwd.push_back(Step(pred, bwd.back()));
    }
  }

  // Finite part: exact accepted lengths below n².
  for (int64_t l = 0; l < threshold; ++l) {
    StateSet acc(n);
    for (StateId s : nfa.AcceptingStates()) acc.Set(s);
    if (fwd[l].Intersects(acc)) out.Add({l, 0});
  }

  // Cycle lengths through each state: closed walks of length c in [1, n].
  // walk[q] computed by BFS layers from q (forward), checking return to q.
  // Layered reachability from every q at once would be O(n³) bits; n is the
  // trimmed automaton size, typically small, so per-state BFS is fine.
  std::vector<std::vector<int>> cycles(n);
  for (StateId q = 0; q < n; ++q) {
    StateSet cur(n);
    cur.Set(q);
    for (int c = 1; c <= n; ++c) {
      cur = Step(succ, cur);
      if (cur.Get(q)) cycles[q].push_back(c);
      if (!cur.Any()) break;
    }
  }

  // Pumpable part: for q with closed-walk length c and accepting path of
  // length x = i + j (< n²) through q, add x + c·ℕ. To keep the output at
  // O(n²) progressions, keep only the smallest base per (c, residue).
  //
  // Soundness: a closed walk of length c at q pumps any accepting path
  // through q. Completeness for lengths >= n² is Chrobak/To/Sawa.
  std::vector<std::vector<int64_t>> best;  // best[c][r] = min base or -1
  best.resize(n + 1);
  for (int c = 1; c <= n; ++c) best[c].assign(c, -1);

  for (StateId q = 0; q < n; ++q) {
    if (cycles[q].empty()) continue;
    // Lengths i with q reachable in i steps, and j with F reachable in j.
    std::vector<int64_t> ins, outs;
    for (int64_t i = 0; i <= threshold; ++i) {
      if (fwd[i].Get(q)) ins.push_back(i);
    }
    for (int64_t j = 0; j <= threshold; ++j) {
      if (bwd[j].Get(q)) outs.push_back(j);
    }
    if (ins.empty() || outs.empty()) continue;
    for (int c : cycles[q]) {
      // Min i and min j per residue class mod c; the min base with residue
      // r is min over r1 of minI[r1] + minJ[(r - r1) mod c], because i and
      // j range independently.
      std::vector<int64_t> min_in(c, -1), min_out(c, -1);
      for (int64_t i : ins) {
        int64_t r = i % c;
        if (min_in[r] < 0 || i < min_in[r]) min_in[r] = i;
      }
      for (int64_t j : outs) {
        int64_t r = j % c;
        if (min_out[r] < 0 || j < min_out[r]) min_out[r] = j;
      }
      for (int64_t r1 = 0; r1 < c; ++r1) {
        if (min_in[r1] < 0) continue;
        for (int64_t r2 = 0; r2 < c; ++r2) {
          if (min_out[r2] < 0) continue;
          int64_t x = min_in[r1] + min_out[r2];
          int64_t r = (r1 + r2) % c;
          if (best[c][r] < 0 || x < best[c][r]) best[c][r] = x;
        }
      }
    }
  }
  for (int c = 1; c <= n; ++c) {
    for (int64_t r = 0; r < c; ++r) {
      if (best[c][r] >= 0) out.Add({best[c][r], c});
    }
  }
  out.Normalize();
  return out;
}

}  // namespace ecrpq
