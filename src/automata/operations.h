// Language-level operations on Nfa/Dfa.
//
// All functions are pure (inputs are untouched) and preserve the symbol
// universe [0, num_symbols). Binary operations require both operands to share
// num_symbols; callers combine automata only over the same (tuple) alphabet.

#ifndef ECRPQ_AUTOMATA_OPERATIONS_H_
#define ECRPQ_AUTOMATA_OPERATIONS_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "automata/dfa.h"
#include "automata/nfa.h"

namespace ecrpq {

/// Equivalent NFA without ε-transitions.
Nfa RemoveEpsilons(const Nfa& nfa);

/// Restriction to states both reachable from an initial state and
/// co-reachable from an accepting state. Preserves the language. The result
/// has no states at all when the language is empty.
Nfa Trim(const Nfa& nfa);

/// Automaton for the reversed language.
Nfa Reverse(const Nfa& nfa);

/// L(a) ∪ L(b).
Nfa UnionNfa(const Nfa& a, const Nfa& b);

/// L(a) · L(b).
Nfa ConcatNfa(const Nfa& a, const Nfa& b);

/// L(a)*.
Nfa StarNfa(const Nfa& a);

/// L(a)⁺.
Nfa PlusNfa(const Nfa& a);

/// L(a) ∪ {ε}.
Nfa OptionalNfa(const Nfa& a);

/// L(a) ∩ L(b) via the product construction (ε-arcs are eliminated first).
Nfa IntersectNfa(const Nfa& a, const Nfa& b);

/// Subset construction. The result is complete (includes a dead state when
/// needed) and accepts exactly L(nfa).
Dfa Determinize(const Nfa& nfa);

/// Hopcroft-style minimization (implemented as Moore partition refinement,
/// which is simpler and adequate at our sizes). Result is complete & minimal.
Dfa Minimize(const Dfa& dfa);

/// Automaton for the complement language (over the full symbol universe).
Nfa ComplementNfa(const Nfa& nfa);

/// True iff L(nfa) = ∅.
bool IsEmpty(const Nfa& nfa);

/// True iff L(nfa) is infinite (a useful cycle exists in the trimmed NFA).
bool IsInfinite(const Nfa& nfa);

/// True iff L(a) ⊆ L(b).
bool IsSubsetOf(const Nfa& a, const Nfa& b);

/// True iff L(a) = L(b).
bool AreEquivalent(const Nfa& a, const Nfa& b);

/// A shortest accepted word, or nullopt when the language is empty.
std::optional<Word> ShortestWord(const Nfa& nfa);

/// Up to `max_count` accepted words of length <= max_len, in length-then-
/// lexicographic order. Deterministic and duplicate-free.
std::vector<Word> EnumerateWords(const Nfa& nfa, int max_count, int max_len);

/// Number of *distinct* accepted words of length exactly `len`, saturating
/// at UINT64_MAX. (Counts words, not runs: the NFA is determinized up to the
/// needed depth via on-the-fly subset construction.)
uint64_t CountWordsOfLength(const Nfa& nfa, int len);

/// Number of distinct accepted words of length <= len, saturating.
uint64_t CountWordsUpTo(const Nfa& nfa, int len);

/// NFA accepting exactly the given finite set of words.
Nfa FromWords(int num_symbols, const std::vector<Word>& words);

/// NFA accepting all words over the universe (Σ*).
Nfa UniverseNfa(int num_symbols);

/// NFA accepting nothing.
Nfa EmptyNfa(int num_symbols);

}  // namespace ecrpq

#endif  // ECRPQ_AUTOMATA_OPERATIONS_H_
