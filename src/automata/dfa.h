// Deterministic finite automata with a complete transition table.
//
// Dfa instances are produced by subset construction (see operations.h) and
// are always complete: every (state, symbol) pair has a successor; a dead
// sink state absorbs missing transitions. This makes complementation a flag
// flip and equivalence/minimization straightforward.

#ifndef ECRPQ_AUTOMATA_DFA_H_
#define ECRPQ_AUTOMATA_DFA_H_

#include <vector>

#include "automata/alphabet.h"
#include "automata/nfa.h"
#include "util/status.h"

namespace ecrpq {

/// A complete deterministic finite automaton.
class Dfa {
 public:
  /// Creates a DFA over symbols [0, num_symbols) with `num_states` states,
  /// all transitions initially pointing at state 0.
  Dfa(int num_symbols, int num_states);

  int num_states() const { return static_cast<int>(accepting_.size()); }
  int num_symbols() const { return num_symbols_; }

  StateId initial() const { return initial_; }
  void set_initial(StateId s) { initial_ = s; }

  bool IsAccepting(StateId s) const { return accepting_[s]; }
  void SetAccepting(StateId s, bool accepting = true) {
    accepting_[s] = accepting;
  }

  StateId Next(StateId s, Symbol symbol) const {
    return table_[static_cast<size_t>(s) * num_symbols_ + symbol];
  }
  void SetNext(StateId s, Symbol symbol, StateId to) {
    table_[static_cast<size_t>(s) * num_symbols_ + symbol] = to;
  }

  bool Accepts(const Word& word) const;

  /// Flips accepting states in place (valid because the DFA is complete).
  void ComplementInPlace();

  /// View as an Nfa (used to re-enter the generic operation pipeline).
  Nfa ToNfa() const;

 private:
  int num_symbols_;
  StateId initial_ = 0;
  std::vector<StateId> table_;
  std::vector<bool> accepting_;
};

}  // namespace ecrpq

#endif  // ECRPQ_AUTOMATA_DFA_H_
