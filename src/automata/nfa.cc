#include "automata/nfa.h"

#include <algorithm>

namespace ecrpq {

Nfa::Nfa(int num_symbols) : num_symbols_(num_symbols) {
  ECRPQ_DCHECK(num_symbols >= 0);
}

StateId Nfa::AddState() {
  arcs_.emplace_back();
  initial_.push_back(false);
  accepting_.push_back(false);
  return static_cast<StateId>(arcs_.size() - 1);
}

StateId Nfa::AddStates(int count) {
  ECRPQ_DCHECK(count >= 0);
  StateId first = static_cast<StateId>(arcs_.size());
  for (int i = 0; i < count; ++i) AddState();
  return first;
}

void Nfa::AddTransition(StateId from, Symbol symbol, StateId to) {
  ECRPQ_DCHECK(from >= 0 && from < num_states());
  ECRPQ_DCHECK(to >= 0 && to < num_states());
  ECRPQ_DCHECK(symbol == kEpsilon || (symbol >= 0 && symbol < num_symbols_));
  arcs_[from].emplace_back(symbol, to);
  ++num_transitions_;
  if (symbol == kEpsilon) ++num_epsilon_arcs_;
}

void Nfa::SetInitial(StateId state, bool initial) {
  ECRPQ_DCHECK(state >= 0 && state < num_states());
  initial_[state] = initial;
}

void Nfa::SetAccepting(StateId state, bool accepting) {
  ECRPQ_DCHECK(state >= 0 && state < num_states());
  accepting_[state] = accepting;
}

std::vector<StateId> Nfa::InitialStates() const {
  std::vector<StateId> out;
  for (StateId s = 0; s < num_states(); ++s) {
    if (initial_[s]) out.push_back(s);
  }
  return out;
}

std::vector<StateId> Nfa::AcceptingStates() const {
  std::vector<StateId> out;
  for (StateId s = 0; s < num_states(); ++s) {
    if (accepting_[s]) out.push_back(s);
  }
  return out;
}

std::vector<StateId> Nfa::EpsilonClosure(std::vector<StateId> states) const {
  if (!HasEpsilonArcs()) {
    std::sort(states.begin(), states.end());
    states.erase(std::unique(states.begin(), states.end()), states.end());
    return states;
  }
  std::vector<bool> seen(num_states(), false);
  std::vector<StateId> stack;
  for (StateId s : states) {
    if (!seen[s]) {
      seen[s] = true;
      stack.push_back(s);
    }
  }
  std::vector<StateId> out = stack;
  while (!stack.empty()) {
    StateId s = stack.back();
    stack.pop_back();
    for (const Arc& arc : arcs_[s]) {
      if (arc.first == kEpsilon && !seen[arc.second]) {
        seen[arc.second] = true;
        stack.push_back(arc.second);
        out.push_back(arc.second);
      }
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool Nfa::Accepts(const Word& word) const {
  std::vector<StateId> current = EpsilonClosure(InitialStates());
  std::vector<bool> mark(num_states(), false);
  for (Symbol symbol : word) {
    ECRPQ_DCHECK(symbol >= 0 && symbol < num_symbols_);
    std::vector<StateId> next;
    std::fill(mark.begin(), mark.end(), false);
    for (StateId s : current) {
      for (const Arc& arc : arcs_[s]) {
        if (arc.first == symbol && !mark[arc.second]) {
          mark[arc.second] = true;
          next.push_back(arc.second);
        }
      }
    }
    current = EpsilonClosure(std::move(next));
    if (current.empty()) return false;
  }
  for (StateId s : current) {
    if (accepting_[s]) return true;
  }
  return false;
}

bool Nfa::AcceptsEmptyWord() const {
  for (StateId s : EpsilonClosure(InitialStates())) {
    if (accepting_[s]) return true;
  }
  return false;
}

}  // namespace ecrpq
