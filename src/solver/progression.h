// Arithmetic progressions and one-dimensional semilinear sets.
//
// Used by the Qlen evaluation engine (Section 6.3 of the paper): sets of path
// lengths between graph nodes are unions of at most quadratically many
// arithmetic progressions (Chrobak 1986, fixed by To 2009), and the NP
// algorithm of Theorem 6.7 manipulates these progressions symbolically.

#ifndef ECRPQ_SOLVER_PROGRESSION_H_
#define ECRPQ_SOLVER_PROGRESSION_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ecrpq {

/// The set { base + period * k : k >= 0 }. period == 0 denotes {base}.
struct Progression {
  int64_t base = 0;
  int64_t period = 0;

  bool Contains(int64_t value) const {
    if (value < base) return false;
    if (period == 0) return value == base;
    return (value - base) % period == 0;
  }

  bool operator==(const Progression& other) const = default;
};

/// A finite union of arithmetic progressions over the naturals.
class SemilinearSet1D {
 public:
  SemilinearSet1D() = default;
  explicit SemilinearSet1D(std::vector<Progression> progressions)
      : progressions_(std::move(progressions)) {}

  static SemilinearSet1D Empty() { return SemilinearSet1D(); }
  static SemilinearSet1D Singleton(int64_t v) {
    return SemilinearSet1D({{v, 0}});
  }
  static SemilinearSet1D All() { return SemilinearSet1D({{0, 1}}); }

  void Add(Progression p) { progressions_.push_back(p); }

  bool Contains(int64_t value) const;
  bool IsEmpty() const { return progressions_.empty(); }

  /// Smallest element, or nullopt if empty.
  std::optional<int64_t> Min() const;

  /// Smallest element >= bound, or nullopt if none.
  std::optional<int64_t> MinAtLeast(int64_t bound) const;

  /// True if the set is infinite (some progression has period > 0).
  bool IsInfinite() const;

  /// Removes duplicate/subsumed progressions (p subsumed by q when
  /// q.period > 0, q.period divides p.period (or p is a singleton) and
  /// p.base >= q.base with p.base ≡ q.base mod q.period).
  void Normalize();

  const std::vector<Progression>& progressions() const {
    return progressions_;
  }

  std::string ToString() const;

 private:
  std::vector<Progression> progressions_;
};

}  // namespace ecrpq

#endif  // ECRPQ_SOLVER_PROGRESSION_H_
