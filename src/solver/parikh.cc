#include "solver/parikh.h"

#include <functional>
#include <map>
#include <tuple>

#include "automata/operations.h"

namespace ecrpq {

Status ParikhConstraintBuilder::AddCountedGraph(
    int num_states, const std::vector<int>& initial,
    const std::vector<int>& accepting,
    const std::vector<std::tuple<int, int,
                                 std::vector<std::pair<int, int64_t>>>>&
        arcs_in) {
  if (initial.empty() || accepting.empty()) {
    return Status::InvalidArgument(
        "Parikh encoding: flow graph needs initial and accepting states");
  }
  FlowGraph fg;
  fg.source = num_states;
  fg.sink = num_states + 1;
  fg.num_states = num_states + 2;
  const int64_t big_flow = options_.max_flow_per_transition;

  // Arcs: the automaton's, plus source->initial and accepting->sink.
  std::vector<std::vector<std::pair<int, int64_t>>> contribs;
  for (const auto& [from, to, contrib] : arcs_in) {
    fg.arc_from.push_back(from);
    fg.arc_to.push_back(to);
    contribs.push_back(contrib);
  }
  for (int s : initial) {
    fg.arc_from.push_back(fg.source);
    fg.arc_to.push_back(s);
    contribs.emplace_back();
  }
  for (int s : accepting) {
    fg.arc_from.push_back(s);
    fg.arc_to.push_back(fg.sink);
    contribs.emplace_back();
  }
  const int num_arcs = static_cast<int>(fg.arc_from.size());
  for (int t = 0; t < num_arcs; ++t) {
    fg.arc_flow_var.push_back(problem_.AddVariable(0, big_flow));
  }

  // Flow conservation.
  for (int q = 0; q < fg.num_states; ++q) {
    LinearConstraint c;
    for (int t = 0; t < num_arcs; ++t) {
      if (fg.arc_from[t] == q) c.terms.emplace_back(fg.arc_flow_var[t], 1);
      if (fg.arc_to[t] == q) c.terms.emplace_back(fg.arc_flow_var[t], -1);
    }
    c.cmp = Cmp::kEq;
    c.rhs = (q == fg.source) ? 1 : (q == fg.sink ? -1 : 0);
    problem_.AddConstraint(std::move(c));
  }

  // Counter contributions: counter = Σ weight · f over contributing arcs.
  std::map<int, std::vector<std::pair<int, int64_t>>> per_counter;
  for (int t = 0; t < num_arcs; ++t) {
    for (const auto& [counter, weight] : contribs[t]) {
      per_counter[counter].emplace_back(fg.arc_flow_var[t], -weight);
    }
  }
  for (auto& [counter, terms] : per_counter) {
    LinearConstraint c;
    c.terms.emplace_back(counter, 1);
    for (auto& term : terms) c.terms.push_back(term);
    c.cmp = Cmp::kEq;
    c.rhs = 0;
    problem_.AddConstraint(std::move(c));
  }
  // Counters with no contributing arcs in this graph are NOT forced to 0
  // here (they may belong to other graphs); ExistsWordWithCounts and the
  // counting engine zero unconstrained counters explicitly.
  graphs_.push_back(std::move(fg));
  return Status::OK();
}

Result<std::vector<int>> ParikhConstraintBuilder::AddAutomaton(
    const Nfa& nfa_in) {
  const Nfa nfa = Trim(nfa_in);
  if (nfa.num_states() == 0) {
    return Status::InvalidArgument(
        "Parikh encoding: automaton accepts nothing");
  }
  const int64_t big_flow = options_.max_flow_per_transition;
  std::vector<int> x(nfa.num_symbols());
  for (Symbol a = 0; a < nfa.num_symbols(); ++a) {
    x[a] = problem_.AddVariable(
        0, big_flow * std::max(nfa.num_transitions(), 1));
  }
  std::vector<std::tuple<int, int, std::vector<std::pair<int, int64_t>>>>
      arcs;
  std::vector<bool> letter_used(nfa.num_symbols(), false);
  for (StateId s = 0; s < nfa.num_states(); ++s) {
    for (const Nfa::Arc& arc : nfa.ArcsFrom(s)) {
      std::vector<std::pair<int, int64_t>> contribs;
      if (arc.first != kEpsilon) {
        contribs.emplace_back(x[arc.first], 1);
        letter_used[arc.first] = true;
      }
      arcs.emplace_back(s, arc.second, std::move(contribs));
    }
  }
  std::vector<int> initial, accepting;
  for (StateId s : nfa.InitialStates()) initial.push_back(s);
  for (StateId s : nfa.AcceptingStates()) accepting.push_back(s);
  Status st = AddCountedGraph(nfa.num_states(), initial, accepting, arcs);
  if (!st.ok()) return st;
  // Letters with no transition are always 0.
  for (Symbol a = 0; a < nfa.num_symbols(); ++a) {
    if (!letter_used[a]) problem_.AddEq(x[a], 0);
  }
  return x;
}

void ParikhConstraintBuilder::AddConstraint(LinearConstraint constraint) {
  problem_.AddConstraint(std::move(constraint));
}

int ParikhConstraintBuilder::AddVariable(int64_t lower, int64_t upper) {
  return problem_.AddVariable(lower, upper);
}

Result<IlpSolution> ParikhConstraintBuilder::Solve() {
  // Lazy connectivity cuts: with flow conservation in force, a genuine run
  // exists iff every arc with positive flow is weakly connected to the
  // source through the positive-flow support (Euler-run condition; the
  // sink is tied back to the source by the unit of s->t flow).
  for (int round = 0; round < options_.max_cut_rounds; ++round) {
    auto solution = SolveIlp(problem_, options_.ilp);
    if (!solution.ok()) return solution;
    if (!solution.value().feasible) return solution;
    const std::vector<int64_t>& values = solution.value().values;

    bool all_connected = true;
    for (const FlowGraph& fg : graphs_) {
      // Union-find over states joined by positive-flow arcs; the sink is
      // joined to the source (the run ends there).
      std::vector<int> parent(fg.num_states);
      for (int i = 0; i < fg.num_states; ++i) parent[i] = i;
      std::function<int(int)> find = [&](int a) {
        while (parent[a] != a) {
          parent[a] = parent[parent[a]];
          a = parent[a];
        }
        return a;
      };
      auto unite = [&](int a, int b) { parent[find(a)] = find(b); };
      unite(fg.sink, fg.source);
      for (size_t t = 0; t < fg.arc_from.size(); ++t) {
        if (values[fg.arc_flow_var[t]] > 0) {
          unite(fg.arc_from[t], fg.arc_to[t]);
        }
      }
      // Any positive-flow arc outside the source's component witnesses a
      // disconnected circulation; cut its component K.
      int source_root = find(fg.source);
      int bad_root = -1;
      for (size_t t = 0; t < fg.arc_from.size() && bad_root < 0; ++t) {
        if (values[fg.arc_flow_var[t]] > 0 &&
            find(fg.arc_from[t]) != source_root) {
          bad_root = find(fg.arc_from[t]);
        }
      }
      if (bad_root < 0) continue;
      all_connected = false;

      // K = states in bad_root's component. Cut:
      //   B·|arcs(K)| · Σ_{t entering K from outside} f_t
      //     >= Σ_{t inside K} f_t.
      std::vector<bool> in_k(fg.num_states, false);
      for (int q = 0; q < fg.num_states; ++q) {
        in_k[q] = (find(q) == bad_root);
      }
      LinearConstraint cut;
      int64_t inside_arcs = 0;
      for (size_t t = 0; t < fg.arc_from.size(); ++t) {
        if (in_k[fg.arc_from[t]] && in_k[fg.arc_to[t]]) ++inside_arcs;
      }
      const int64_t big = options_.max_flow_per_transition *
                          std::max<int64_t>(inside_arcs, 1);
      for (size_t t = 0; t < fg.arc_from.size(); ++t) {
        bool from_in = in_k[fg.arc_from[t]];
        bool to_in = in_k[fg.arc_to[t]];
        if (!from_in && to_in) {
          cut.terms.emplace_back(fg.arc_flow_var[t], big);
        } else if (from_in && to_in) {
          cut.terms.emplace_back(fg.arc_flow_var[t], -1);
        }
      }
      cut.cmp = Cmp::kGe;
      cut.rhs = 0;
      problem_.AddConstraint(std::move(cut));
    }
    if (all_connected) return solution;
  }
  return Status::ResourceExhausted(
      "Parikh connectivity cuts did not converge within " +
      std::to_string(options_.max_cut_rounds) + " rounds");
}

Result<std::optional<std::vector<int64_t>>> ExistsWordWithCounts(
    const Nfa& nfa, const std::vector<LinearConstraint>& constraints,
    const ParikhOptions& options) {
  ParikhConstraintBuilder builder(options);
  auto x = builder.AddAutomaton(nfa);
  if (!x.ok()) {
    // Empty automaton: no word at all.
    if (x.status().code() == StatusCode::kInvalidArgument) {
      return std::optional<std::vector<int64_t>>(std::nullopt);
    }
    return x.status();
  }
  const std::vector<int>& vars = x.value();
  for (LinearConstraint c : constraints) {
    // Remap letter-count variable indices to the builder's variables.
    for (auto& [var, coef] : c.terms) {
      ECRPQ_DCHECK(var >= 0 && var < static_cast<int>(vars.size()));
      var = vars[var];
    }
    builder.AddConstraint(std::move(c));
  }
  auto solution = builder.Solve();
  if (!solution.ok()) return solution.status();
  if (!solution.value().feasible) {
    return std::optional<std::vector<int64_t>>(std::nullopt);
  }
  std::vector<int64_t> counts(vars.size());
  for (size_t a = 0; a < vars.size(); ++a) {
    counts[a] = solution.value().values[vars[a]];
  }
  return std::optional<std::vector<int64_t>>(std::move(counts));
}

}  // namespace ecrpq
