// Integer linear programming by branch & bound over the exact simplex.
//
// The ECRPQ extensions of Sections 6.3 and 8.2 reduce query evaluation to
// satisfiability of existential Presburger formulas; after guessing
// disjuncts those are integer programs. Variables carry finite bounds
// (completeness bounds come from the small-model lemmas cited in the paper,
// e.g. Lemma 8.6 / Papadimitriou); the solver is exact within those bounds.

#ifndef ECRPQ_SOLVER_ILP_H_
#define ECRPQ_SOLVER_ILP_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "solver/rational.h"
#include "util/status.h"

namespace ecrpq {

/// Comparison operator of a linear constraint.
enum class Cmp { kLe, kGe, kEq };

/// Σ coef_i · var_i  (cmp)  rhs.
struct LinearConstraint {
  std::vector<std::pair<int, int64_t>> terms;  // (variable index, coefficient)
  Cmp cmp = Cmp::kLe;
  int64_t rhs = 0;
};

/// An ILP feasibility/optimization problem over bounded integer variables.
class IlpProblem {
 public:
  /// Adds a variable with inclusive bounds [lower, upper]; returns its index.
  int AddVariable(int64_t lower, int64_t upper);

  void AddConstraint(LinearConstraint constraint);

  /// Convenience: single-term shortcuts.
  void AddLe(int var, int64_t bound);
  void AddGe(int var, int64_t bound);
  void AddEq(int var, int64_t value);

  int num_variables() const { return static_cast<int>(lower_.size()); }
  const std::vector<LinearConstraint>& constraints() const {
    return constraints_;
  }
  int64_t lower(int var) const { return lower_[var]; }
  int64_t upper(int var) const { return upper_[var]; }

 private:
  std::vector<int64_t> lower_;
  std::vector<int64_t> upper_;
  std::vector<LinearConstraint> constraints_;
};

struct IlpOptions {
  /// Branch & bound node budget; exceeding it returns ResourceExhausted.
  int64_t max_nodes = 200000;
};

struct IlpSolution {
  bool feasible = false;
  std::vector<int64_t> values;
};

/// Decides feasibility; returns a witness assignment when feasible.
Result<IlpSolution> SolveIlp(const IlpProblem& problem,
                             const IlpOptions& options = {});

/// Minimizes `objective`·x over the feasible set (empty objective = pure
/// feasibility). Returns infeasible solution when the program is empty.
Result<IlpSolution> MinimizeIlp(const IlpProblem& problem,
                                const std::vector<int64_t>& objective,
                                const IlpOptions& options = {});

}  // namespace ecrpq

#endif  // ECRPQ_SOLVER_ILP_H_
