#include "solver/ilp.h"

#include <algorithm>
#include <cmath>

#include "solver/simplex.h"

namespace ecrpq {

int IlpProblem::AddVariable(int64_t lower, int64_t upper) {
  ECRPQ_DCHECK(lower <= upper);
  lower_.push_back(lower);
  upper_.push_back(upper);
  return static_cast<int>(lower_.size() - 1);
}

void IlpProblem::AddConstraint(LinearConstraint constraint) {
  constraints_.push_back(std::move(constraint));
}

void IlpProblem::AddLe(int var, int64_t bound) {
  AddConstraint({{{var, 1}}, Cmp::kLe, bound});
}
void IlpProblem::AddGe(int var, int64_t bound) {
  AddConstraint({{{var, 1}}, Cmp::kGe, bound});
}
void IlpProblem::AddEq(int var, int64_t value) {
  AddConstraint({{{var, 1}}, Cmp::kEq, value});
}

namespace {

// Search node: per-variable bounds, refined by branching and propagation.
struct Node {
  std::vector<int64_t> lo;
  std::vector<int64_t> hi;
};

// Integer bound propagation to a fixpoint. Returns false on conflict.
// Exact (__int128 intermediates).
bool Propagate(const IlpProblem& problem, Node* node) {
  bool changed = true;
  int rounds = 0;
  while (changed && rounds < 64) {
    changed = false;
    ++rounds;
    for (const LinearConstraint& c : problem.constraints()) {
      for (int pass = 0; pass < 2; ++pass) {
        bool le_pass = (pass == 0);
        if (le_pass && c.cmp == Cmp::kGe) continue;
        if (!le_pass && c.cmp == Cmp::kLe) continue;
        // Canonical form: sum(coef * x) <= rhs  (flip for >=).
        int64_t rhs = le_pass ? c.rhs : -c.rhs;
        __int128 min_lhs = 0;
        for (const auto& [var, coef0] : c.terms) {
          int64_t coef = le_pass ? coef0 : -coef0;
          min_lhs += static_cast<__int128>(coef) *
                     (coef >= 0 ? node->lo[var] : node->hi[var]);
        }
        if (min_lhs > rhs) return false;  // conflict
        for (const auto& [var, coef0] : c.terms) {
          int64_t coef = le_pass ? coef0 : -coef0;
          if (coef == 0) continue;
          __int128 others =
              min_lhs - static_cast<__int128>(coef) *
                            (coef >= 0 ? node->lo[var] : node->hi[var]);
          __int128 budget = static_cast<__int128>(rhs) - others;
          if (coef > 0) {
            __int128 limit = budget >= 0 ? budget / coef
                                         : -((-budget + coef - 1) / coef);
            if (limit < node->hi[var]) {
              if (limit < node->lo[var]) return false;
              node->hi[var] = static_cast<int64_t>(limit);
              changed = true;
            }
          } else {
            __int128 pos = -coef;
            __int128 limit = budget >= 0 ? -(budget / pos)
                                         : ((-budget + pos - 1) / pos);
            if (limit > node->lo[var]) {
              if (limit > node->hi[var]) return false;
              node->lo[var] = static_cast<int64_t>(limit);
              changed = true;
            }
          }
        }
      }
    }
  }
  return true;
}

// LP relaxation in "A x' <= b, x' >= 0" form with x' = x - lo, solved in
// floating point. Integer candidates are verified exactly by the caller.
struct Relaxation {
  bool feasible = false;
  std::optional<int> branch_var;
  std::vector<double> values;  // in original variable space
};

Relaxation SolveRelaxation(const IlpProblem& problem, const Node& node,
                           const std::vector<int64_t>* objective) {
  const int n = problem.num_variables();
  std::vector<std::vector<double>> a;
  std::vector<double> b;
  for (int v = 0; v < n; ++v) {
    std::vector<double> row(n, 0.0);
    row[v] = 1.0;
    a.push_back(std::move(row));
    b.push_back(static_cast<double>(node.hi[v] - node.lo[v]));
  }
  for (const LinearConstraint& c : problem.constraints()) {
    __int128 shift = 0;
    std::vector<double> row(n, 0.0);
    for (const auto& [var, coef] : c.terms) {
      row[var] += static_cast<double>(coef);
      shift += static_cast<__int128>(coef) * node.lo[var];
    }
    double rhs = static_cast<double>(c.rhs) -
                 static_cast<double>(static_cast<int64_t>(shift));
    if (c.cmp == Cmp::kLe || c.cmp == Cmp::kEq) {
      a.push_back(row);
      b.push_back(rhs);
    }
    if (c.cmp == Cmp::kGe || c.cmp == Cmp::kEq) {
      std::vector<double> neg(n);
      for (int v = 0; v < n; ++v) neg[v] = -row[v];
      a.push_back(std::move(neg));
      b.push_back(-rhs);
    }
  }
  std::vector<double> c_vec(n, 0.0);
  if (objective != nullptr) {
    for (int v = 0; v < n; ++v) {
      c_vec[v] = -static_cast<double>((*objective)[v]);
    }
  } else {
    // Feasibility mode: steer the LP toward small values — vertices of
    // flow-like polytopes at minimal Σx are usually integral, so the first
    // relaxation already yields the (exactly verified) witness.
    for (int v = 0; v < n; ++v) c_vec[v] = -1.0;
  }
  LpResult lp = SolveLpMax(a, b, c_vec);
  Relaxation out;
  if (lp.status == LpStatus::kInfeasible) return out;
  out.feasible = true;
  out.values.resize(n);
  double worst_frac = 1e-6;
  for (int v = 0; v < n; ++v) {
    out.values[v] = lp.values[v] + static_cast<double>(node.lo[v]);
    double frac = std::fabs(out.values[v] - std::round(out.values[v]));
    if (frac > worst_frac) {
      worst_frac = frac;
      out.branch_var = v;
    }
  }
  return out;
}

// Exact feasibility check of a full assignment.
bool SatisfiesAll(const IlpProblem& problem,
                  const std::vector<int64_t>& values) {
  for (const LinearConstraint& c : problem.constraints()) {
    __int128 lhs = 0;
    for (const auto& [var, coef] : c.terms) {
      lhs += static_cast<__int128>(coef) * values[var];
    }
    switch (c.cmp) {
      case Cmp::kLe:
        if (lhs > c.rhs) return false;
        break;
      case Cmp::kGe:
        if (lhs < c.rhs) return false;
        break;
      case Cmp::kEq:
        if (lhs != c.rhs) return false;
        break;
    }
  }
  return true;
}

}  // namespace

Result<IlpSolution> MinimizeIlp(const IlpProblem& problem,
                                const std::vector<int64_t>& objective,
                                const IlpOptions& options) {
  const int n = problem.num_variables();
  const std::vector<int64_t>* obj = objective.empty() ? nullptr : &objective;
  ECRPQ_DCHECK(objective.empty() ||
               static_cast<int>(objective.size()) == n);

  Node root;
  root.lo.resize(n);
  root.hi.resize(n);
  for (int v = 0; v < n; ++v) {
    root.lo[v] = problem.lower(v);
    root.hi[v] = problem.upper(v);
  }

  IlpSolution best;
  __int128 best_obj = 0;
  std::vector<Node> stack = {std::move(root)};
  int64_t nodes = 0;
  while (!stack.empty()) {
    if (++nodes > options.max_nodes) {
      return Status::ResourceExhausted(
          "ILP branch & bound exceeded node budget (" +
          std::to_string(options.max_nodes) + ")");
    }
    Node node = std::move(stack.back());
    stack.pop_back();
    if (!Propagate(problem, &node)) continue;
    Relaxation relax = SolveRelaxation(problem, node, obj);
    if (!relax.feasible) continue;
    if (obj != nullptr && best.feasible) {
      double lp_obj = 0;
      for (int v = 0; v < n; ++v) {
        lp_obj += static_cast<double>((*obj)[v]) * relax.values[v];
      }
      // Integral objective: cannot strictly beat the incumbent.
      if (lp_obj >= static_cast<double>(best_obj) - 1e-6) continue;
    }
    if (!relax.branch_var.has_value()) {
      // LP solution is (numerically) integral: round, clamp, verify
      // exactly.
      std::vector<int64_t> values(n);
      for (int v = 0; v < n; ++v) {
        int64_t rounded =
            static_cast<int64_t>(std::llround(relax.values[v]));
        values[v] = std::clamp(rounded, node.lo[v], node.hi[v]);
      }
      if (SatisfiesAll(problem, values)) {
        if (obj == nullptr) {
          return IlpSolution{true, std::move(values)};
        }
        __int128 val = 0;
        for (int v = 0; v < n; ++v) {
          val += static_cast<__int128>((*obj)[v]) * values[v];
        }
        if (!best.feasible || val < best_obj) {
          best.feasible = true;
          best.values = std::move(values);
          best_obj = val;
        }
        continue;
      }
      // Numerically integral but exactly infeasible: branch on some
      // unfixed variable; a fully fixed node is exactly decided above.
      int split_var = -1;
      for (int v = 0; v < n; ++v) {
        if (node.lo[v] < node.hi[v]) {
          split_var = v;
          break;
        }
      }
      if (split_var < 0) continue;  // fully fixed and infeasible
      int64_t mid = node.lo[split_var] +
                    (node.hi[split_var] - node.lo[split_var]) / 2;
      Node left = node;
      left.hi[split_var] = mid;
      Node right = std::move(node);
      right.lo[split_var] = mid + 1;
      stack.push_back(std::move(right));
      stack.push_back(std::move(left));
      continue;
    }
    int bv = *relax.branch_var;
    int64_t split = static_cast<int64_t>(std::floor(relax.values[bv]));
    split = std::clamp(split, node.lo[bv], node.hi[bv] - 1);
    Node left = node;
    left.hi[bv] = split;
    Node right = std::move(node);
    right.lo[bv] = split + 1;
    // LIFO: push the upward branch first so small values (the small-model
    // witnesses) are explored first.
    stack.push_back(std::move(right));
    stack.push_back(std::move(left));
  }
  return best;
}

Result<IlpSolution> SolveIlp(const IlpProblem& problem,
                             const IlpOptions& options) {
  return MinimizeIlp(problem, {}, options);
}

}  // namespace ecrpq
