// Exact rational arithmetic on int64 with __int128 intermediates.
//
// The LP/ILP layer never uses floating point: pivots and bound checks are
// exact, so the Presburger-style procedures of Sections 6.3 and 8.2 are
// decision procedures, not approximations. Overflow is checked in debug
// builds; library workloads stay far below the 63-bit range.

#ifndef ECRPQ_SOLVER_RATIONAL_H_
#define ECRPQ_SOLVER_RATIONAL_H_

#include <cstdint>
#include <string>

namespace ecrpq {

/// An exact rational number num/den with den > 0, always normalized.
class Rational {
 public:
  Rational() : num_(0), den_(1) {}
  Rational(int64_t value) : num_(value), den_(1) {}  // NOLINT(implicit)
  Rational(int64_t num, int64_t den);

  int64_t num() const { return num_; }
  int64_t den() const { return den_; }

  bool IsZero() const { return num_ == 0; }
  bool IsInteger() const { return den_ == 1; }

  /// Largest integer <= this / smallest integer >= this.
  int64_t Floor() const;
  int64_t Ceil() const;

  Rational operator-() const { return Rational(-num_, den_); }
  Rational operator+(const Rational& o) const;
  Rational operator-(const Rational& o) const;
  Rational operator*(const Rational& o) const;
  Rational operator/(const Rational& o) const;

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  bool operator==(const Rational& o) const {
    return num_ == o.num_ && den_ == o.den_;
  }
  bool operator!=(const Rational& o) const { return !(*this == o); }
  bool operator<(const Rational& o) const;
  bool operator<=(const Rational& o) const { return !(o < *this); }
  bool operator>(const Rational& o) const { return o < *this; }
  bool operator>=(const Rational& o) const { return !(*this < o); }

  std::string ToString() const;

 private:
  int64_t num_;
  int64_t den_;
};

}  // namespace ecrpq

#endif  // ECRPQ_SOLVER_RATIONAL_H_
