// Two-phase simplex over doubles with Bland's anti-cycling rule.
//
// Used as the *relaxation oracle* inside branch & bound: LP results guide
// branching and pruning, while every integer candidate is re-verified with
// exact 128-bit integer arithmetic in solver/ilp.cc (the standard MIP
// architecture). Tolerances are conservative: a node is pruned as
// infeasible only when the phase-1 residual is clearly positive.

#ifndef ECRPQ_SOLVER_SIMPLEX_H_
#define ECRPQ_SOLVER_SIMPLEX_H_

#include <vector>

namespace ecrpq {

enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
};

struct LpResult {
  LpStatus status = LpStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> values;  // one per variable, when kOptimal
};

/// Maximizes c·x subject to A x <= b, x >= 0 (A: rows of coefficients,
/// one row per constraint; b may be negative — phase 1 handles it).
LpResult SolveLpMax(const std::vector<std::vector<double>>& a,
                    const std::vector<double>& b,
                    const std::vector<double>& c);

/// Feasibility of A x <= b, x >= 0 (phase 1 only).
bool LpFeasible(const std::vector<std::vector<double>>& a,
                const std::vector<double>& b);

}  // namespace ecrpq

#endif  // ECRPQ_SOLVER_SIMPLEX_H_
