#include "solver/simplex.h"

#include <cmath>

#include "util/status.h"

namespace ecrpq {

namespace {

constexpr double kEps = 1e-9;

// Dense tableau simplex with Bland's rule.
//
// Layout: rows = constraints (basic variables), columns = all variables
// (structural + slack + artificial), plus rhs column. `basis[r]` is the
// variable basic in row r. The objective row is kept separately with the
// convention obj[rhs] == -(current objective value).
class Tableau {
 public:
  Tableau(const std::vector<std::vector<double>>& a,
          const std::vector<double>& b)
      : rows_(static_cast<int>(a.size())),
        structural_(a.empty() ? 0 : static_cast<int>(a[0].size())) {
    cols_ = structural_ + rows_ + rows_;
    tab_.assign(rows_, std::vector<double>(cols_ + 1, 0.0));
    basis_.assign(rows_, -1);
    scale_ = 1.0;
    for (int r = 0; r < rows_; ++r) {
      for (int j = 0; j < structural_; ++j) tab_[r][j] = a[r][j];
      tab_[r][structural_ + r] = 1.0;  // slack
      tab_[r][cols_] = b[r];
      scale_ = std::max(scale_, std::fabs(b[r]));
      if (tab_[r][cols_] < 0) {
        for (int j = 0; j <= cols_; ++j) tab_[r][j] = -tab_[r][j];
      }
      tab_[r][structural_ + rows_ + r] = 1.0;  // artificial
      basis_[r] = structural_ + rows_ + r;
    }
  }

  // Phase 1: minimize the sum of artificials. True iff feasible.
  bool Phase1() {
    obj_.assign(cols_ + 1, 0.0);
    for (int r = 0; r < rows_; ++r) obj_[structural_ + rows_ + r] = -1.0;
    for (int r = 0; r < rows_; ++r) AddRowToObjective(r, 1.0);
    RunSimplex(/*artificial_allowed=*/true);
    // obj_[cols_] == -(objective) == sum of artificials at optimum.
    // Scale-aware tolerance: residues grow with the data magnitude.
    if (obj_[cols_] > 1e-7 * scale_ + 1e-9) return false;
    // Drive remaining artificials out of the basis.
    for (int r = 0; r < rows_; ++r) {
      if (basis_[r] >= structural_ + rows_) {
        int pivot_col = -1;
        for (int j = 0; j < structural_ + rows_; ++j) {
          if (std::fabs(tab_[r][j]) > kEps) {
            pivot_col = j;
            break;
          }
        }
        if (pivot_col >= 0) Pivot(r, pivot_col);
      }
    }
    return true;
  }

  // Phase 2: maximize c·x. False iff unbounded.
  bool Phase2(const std::vector<double>& c) {
    obj_.assign(cols_ + 1, 0.0);
    for (int j = 0; j < structural_; ++j) obj_[j] = c[j];
    for (int r = 0; r < rows_; ++r) {
      if (std::fabs(obj_[basis_[r]]) > kEps) {
        AddRowToObjective(r, -obj_[basis_[r]]);
      }
    }
    return RunSimplex(/*artificial_allowed=*/false);
  }

  double ObjectiveValue() const { return -obj_[cols_]; }

  std::vector<double> StructuralValues() const {
    std::vector<double> values(structural_, 0.0);
    for (int r = 0; r < rows_; ++r) {
      if (basis_[r] < structural_) values[basis_[r]] = tab_[r][cols_];
    }
    return values;
  }

 private:
  void AddRowToObjective(int row, double factor) {
    for (int j = 0; j <= cols_; ++j) obj_[j] += factor * tab_[row][j];
  }

  void Pivot(int row, int col) {
    double inv = 1.0 / tab_[row][col];
    for (int j = 0; j <= cols_; ++j) tab_[row][j] *= inv;
    tab_[row][col] = 1.0;  // kill rounding residue
    for (int r = 0; r < rows_; ++r) {
      if (r == row) continue;
      double factor = tab_[r][col];
      if (std::fabs(factor) <= kEps) continue;
      for (int j = 0; j <= cols_; ++j) tab_[r][j] -= factor * tab_[row][j];
      tab_[r][col] = 0.0;
    }
    double factor = obj_[col];
    if (std::fabs(factor) > kEps) {
      for (int j = 0; j <= cols_; ++j) obj_[j] -= factor * tab_[row][j];
      obj_[col] = 0.0;
    }
    basis_[row] = col;
  }

  // Bland's rule; bounded iteration count as a numerical backstop.
  bool RunSimplex(bool artificial_allowed) {
    const int usable_cols = artificial_allowed ? cols_ : structural_ + rows_;
    const long max_iters = 2000L + 50L * static_cast<long>(cols_);
    for (long iter = 0; iter < max_iters; ++iter) {
      int enter = -1;
      for (int j = 0; j < usable_cols; ++j) {
        if (obj_[j] > 1e-8) {
          enter = j;
          break;
        }
      }
      if (enter < 0) return true;  // optimal
      int leave = -1;
      double best_ratio = 0.0;
      for (int r = 0; r < rows_; ++r) {
        if (tab_[r][enter] > kEps) {
          double ratio = tab_[r][cols_] / tab_[r][enter];
          if (leave < 0 || ratio < best_ratio - kEps ||
              (ratio < best_ratio + kEps && basis_[r] < basis_[leave])) {
            leave = r;
            best_ratio = ratio;
          }
        }
      }
      if (leave < 0) return false;  // unbounded
      Pivot(leave, enter);
    }
    return true;  // iteration cap: treat as optimal (conservative)
  }

  int rows_;
  int structural_;
  int cols_;
  double scale_ = 1.0;
  std::vector<std::vector<double>> tab_;
  std::vector<double> obj_;
  std::vector<int> basis_;
};

}  // namespace

LpResult SolveLpMax(const std::vector<std::vector<double>>& a,
                    const std::vector<double>& b,
                    const std::vector<double>& c) {
  ECRPQ_DCHECK(a.size() == b.size());
  LpResult result;
  if (a.empty()) {
    for (double coef : c) {
      if (coef > 0) {
        result.status = LpStatus::kUnbounded;
        return result;
      }
    }
    result.status = LpStatus::kOptimal;
    result.objective = 0.0;
    result.values.assign(c.size(), 0.0);
    return result;
  }
  Tableau tableau(a, b);
  if (!tableau.Phase1()) {
    result.status = LpStatus::kInfeasible;
    return result;
  }
  if (!tableau.Phase2(c)) {
    result.status = LpStatus::kUnbounded;
    return result;
  }
  result.status = LpStatus::kOptimal;
  result.objective = tableau.ObjectiveValue();
  result.values = tableau.StructuralValues();
  return result;
}

bool LpFeasible(const std::vector<std::vector<double>>& a,
                const std::vector<double>& b) {
  if (a.empty()) return true;
  Tableau tableau(a, b);
  return tableau.Phase1();
}

}  // namespace ecrpq
