// Parikh images of NFAs via flow encodings (Section 8.2 of the paper).
//
// Theorem 8.5 evaluates queries with linear constraints on occurrence counts
// by translating each atom's product automaton into an existential
// Presburger formula for its Parikh image (the linear-time translation of
// Verma, Seidl & Schwentick cited by the paper) and conjoining the user's
// constraints. We realize the translation as an ILP over transition flows:
//
//   f_t >= 0                    uses per transition
//   flow conservation           out(q) - in(q) = [q = source] - [q = sink]
//   x_a = Σ_{t labeled a} f_t   letter counts
//
// Flow conservation alone admits "phantom circulation" on cycles
// disconnected from the run. Instead of the big-M spanning-tree encoding
// (whose LP relaxation branches terribly), connectivity is enforced by
// lazy cutting planes: solve, check that the support of f is weakly
// connected to the source (with conservation this is exactly the Euler-run
// condition), and when a disconnected component K carries flow, add the
// valid cut  B·|K| · Σ_{t entering K} f_t >= Σ_{t inside K} f_t  and
// re-solve. Completeness within the per-transition flow bound follows from
// ILP small-model bounds; callers stay far below the default.

#ifndef ECRPQ_SOLVER_PARIKH_H_
#define ECRPQ_SOLVER_PARIKH_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "automata/nfa.h"
#include "solver/ilp.h"
#include "util/status.h"

namespace ecrpq {

struct ParikhOptions {
  /// Bound on each transition's use count (small-model bound).
  int64_t max_flow_per_transition = 100000;
  /// Cap on connectivity-cut rounds before giving up.
  int max_cut_rounds = 200;
  IlpOptions ilp;
};

/// Builder that embeds the Parikh-image constraints of one or more NFAs
/// into a shared IlpProblem, so cross-automaton linear constraints (the
/// paper's A·ℓ̄ >= b over several path variables) live in one program.
class ParikhConstraintBuilder {
 public:
  explicit ParikhConstraintBuilder(ParikhOptions options = {})
      : options_(options) {}

  /// Embeds `nfa`, using its initial and accepting states (a super-source
  /// and super-sink are added internally; ε-arcs are allowed and simply
  /// carry no letter). Returns the indices of the letter-count variables
  /// x_0..x_{k-1} (k = nfa.num_symbols()). Fails if the automaton accepts
  /// nothing.
  Result<std::vector<int>> AddAutomaton(const Nfa& nfa);

  /// Lower-level form: a flow graph whose arcs each contribute weighted
  /// amounts to caller-supplied counter variables (used for the product
  /// automata of ECRPQs with constraints, where one arc advances several
  /// path variables at once). `arcs[i]` = (from, to, contributions), with
  /// contributions = (counter variable, weight) pairs.
  Status AddCountedGraph(
      int num_states, const std::vector<int>& initial,
      const std::vector<int>& accepting,
      const std::vector<std::tuple<int, int,
                                   std::vector<std::pair<int, int64_t>>>>&
          arcs);

  /// Adds an arbitrary linear constraint over previously returned
  /// variables.
  void AddConstraint(LinearConstraint constraint);

  /// Introduces a fresh bounded helper variable.
  int AddVariable(int64_t lower, int64_t upper);

  /// Solves with lazy connectivity cuts.
  Result<IlpSolution> Solve();

  const IlpProblem& problem() const { return problem_; }

 private:
  struct FlowGraph {
    int num_states = 0;  // includes super source/sink
    int source = 0;
    int sink = 0;
    std::vector<int> arc_from;
    std::vector<int> arc_to;
    std::vector<int> arc_flow_var;
  };

  ParikhOptions options_;
  IlpProblem problem_;
  std::vector<FlowGraph> graphs_;
};

/// Is there a word accepted by `nfa` whose letter counts satisfy all of
/// `constraints` (variables 0..num_symbols-1 are the letter counts)?
/// Returns the witness counts if so.
Result<std::optional<std::vector<int64_t>>> ExistsWordWithCounts(
    const Nfa& nfa, const std::vector<LinearConstraint>& constraints,
    const ParikhOptions& options = {});

}  // namespace ecrpq

#endif  // ECRPQ_SOLVER_PARIKH_H_
