#include "solver/progression.h"

#include <algorithm>

namespace ecrpq {

bool SemilinearSet1D::Contains(int64_t value) const {
  for (const Progression& p : progressions_) {
    if (p.Contains(value)) return true;
  }
  return false;
}

std::optional<int64_t> SemilinearSet1D::Min() const {
  std::optional<int64_t> best;
  for (const Progression& p : progressions_) {
    if (!best.has_value() || p.base < *best) best = p.base;
  }
  return best;
}

std::optional<int64_t> SemilinearSet1D::MinAtLeast(int64_t bound) const {
  std::optional<int64_t> best;
  for (const Progression& p : progressions_) {
    int64_t candidate;
    if (p.base >= bound) {
      candidate = p.base;
    } else if (p.period > 0) {
      int64_t k = (bound - p.base + p.period - 1) / p.period;
      candidate = p.base + k * p.period;
    } else {
      continue;
    }
    if (!best.has_value() || candidate < *best) best = candidate;
  }
  return best;
}

bool SemilinearSet1D::IsInfinite() const {
  for (const Progression& p : progressions_) {
    if (p.period > 0) return true;
  }
  return false;
}

void SemilinearSet1D::Normalize() {
  // Deduplicate exactly equal progressions first.
  std::sort(progressions_.begin(), progressions_.end(),
            [](const Progression& a, const Progression& b) {
              if (a.period != b.period) return a.period < b.period;
              return a.base < b.base;
            });
  progressions_.erase(
      std::unique(progressions_.begin(), progressions_.end()),
      progressions_.end());
  // Drop p when some distinct q subsumes it: q.period > 0, q.period
  // divides p.period (singletons have period 0, divisible by anything),
  // p.base >= q.base and p.base ≡ q.base (mod q.period). After
  // deduplication, subsumption between distinct progressions is a strict
  // partial order, so checking against all others is safe.
  std::vector<Progression> kept;
  for (size_t i = 0; i < progressions_.size(); ++i) {
    const Progression& p = progressions_[i];
    bool subsumed = false;
    for (size_t j = 0; j < progressions_.size() && !subsumed; ++j) {
      if (i == j) continue;
      const Progression& q = progressions_[j];
      if (q.period > 0 && p.base >= q.base &&
          (p.base - q.base) % q.period == 0 &&
          (p.period % q.period == 0)) {
        subsumed = true;
      }
    }
    if (!subsumed) kept.push_back(p);
  }
  progressions_ = std::move(kept);
}

std::string SemilinearSet1D::ToString() const {
  if (progressions_.empty()) return "{}";
  std::string out;
  for (size_t i = 0; i < progressions_.size(); ++i) {
    if (i > 0) out += " ∪ ";
    const Progression& p = progressions_[i];
    if (p.period == 0) {
      out += "{" + std::to_string(p.base) + "}";
    } else {
      out += std::to_string(p.base) + "+" + std::to_string(p.period) + "ℕ";
    }
  }
  return out;
}

}  // namespace ecrpq
