#include "solver/rational.h"

#include <numeric>

#include "util/status.h"

namespace ecrpq {

namespace {
int64_t Checked(__int128 value) {
  ECRPQ_DCHECK(value <= INT64_MAX && value >= INT64_MIN);
  return static_cast<int64_t>(value);
}
}  // namespace

Rational::Rational(int64_t num, int64_t den) {
  ECRPQ_DCHECK(den != 0);
  if (den < 0) {
    num = -num;
    den = -den;
  }
  int64_t g = std::gcd(num < 0 ? -num : num, den);
  if (g > 1) {
    num /= g;
    den /= g;
  }
  num_ = num;
  den_ = den;
}

int64_t Rational::Floor() const {
  if (num_ >= 0) return num_ / den_;
  return -((-num_ + den_ - 1) / den_);
}

int64_t Rational::Ceil() const {
  if (num_ >= 0) return (num_ + den_ - 1) / den_;
  return -((-num_) / den_);
}

Rational Rational::operator+(const Rational& o) const {
  __int128 num = static_cast<__int128>(num_) * o.den_ +
                 static_cast<__int128>(o.num_) * den_;
  __int128 den = static_cast<__int128>(den_) * o.den_;
  // Reduce before narrowing to limit overflow risk.
  __int128 a = num < 0 ? -num : num;
  __int128 b = den;
  while (b != 0) {
    __int128 t = a % b;
    a = b;
    b = t;
  }
  if (a > 1) {
    num /= a;
    den /= a;
  }
  return Rational(Checked(num), Checked(den));
}

Rational Rational::operator-(const Rational& o) const { return *this + (-o); }

Rational Rational::operator*(const Rational& o) const {
  // Cross-reduce to keep intermediates small.
  int64_t a = num_, b = den_, c = o.num_, d = o.den_;
  int64_t g1 = std::gcd(a < 0 ? -a : a, d);
  if (g1 > 1) {
    a /= g1;
    d /= g1;
  }
  int64_t g2 = std::gcd(c < 0 ? -c : c, b);
  if (g2 > 1) {
    c /= g2;
    b /= g2;
  }
  __int128 num = static_cast<__int128>(a) * c;
  __int128 den = static_cast<__int128>(b) * d;
  return Rational(Checked(num), Checked(den));
}

Rational Rational::operator/(const Rational& o) const {
  ECRPQ_DCHECK(!o.IsZero());
  return *this * Rational(o.den_, o.num_);
}

bool Rational::operator<(const Rational& o) const {
  return static_cast<__int128>(num_) * o.den_ <
         static_cast<__int128>(o.num_) * den_;
}

std::string Rational::ToString() const {
  if (den_ == 1) return std::to_string(num_);
  return std::to_string(num_) + "/" + std::to_string(den_);
}

}  // namespace ecrpq
