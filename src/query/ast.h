// Abstract syntax for CRPQs and ECRPQs (Sections 2, 3 and 8.2).
//
// A query is
//
//   Ans(z̄, χ̄) <- ⋀ (x_i, π_i, y_i), ⋀ R_j(ω̄_j), A·ℓ̄ >= b
//
// where the relational part lists path atoms, each R_j is a regular relation
// applied to a tuple of path variables, and the optional linear atoms
// constrain path lengths or label-occurrence counts (Section 8.2). CRPQs are
// the fragment whose relations are all unary; repetitions of path variables
// (Proposition 6.8) are representable and flagged by analysis rather than
// rejected.

#ifndef ECRPQ_QUERY_AST_H_
#define ECRPQ_QUERY_AST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "relations/relation.h"
#include "solver/ilp.h"
#include "util/status.h"

namespace ecrpq {

/// A node position in a path atom: a variable, a constant node name, or a
/// `$name` parameter placeholder bound to a concrete node before
/// evaluation (PreparedQuery::Execute substitutes parameters; evaluating a
/// query with unbound parameters is a FailedPrecondition error).
struct NodeTerm {
  bool is_constant = false;
  std::string name;
  bool is_parameter = false;

  static NodeTerm Var(std::string name) {
    return {false, std::move(name), false};
  }
  static NodeTerm Const(std::string name) {
    return {true, std::move(name), false};
  }
  static NodeTerm Param(std::string name) {
    return {false, std::move(name), true};
  }

  /// True for plain node variables (not constants, not parameters).
  bool IsVariable() const { return !is_constant && !is_parameter; }

  bool operator==(const NodeTerm& other) const = default;
};

/// (x, π, y): path variable π connects x to y.
struct PathAtom {
  NodeTerm from;
  std::string path;
  NodeTerm to;
};

/// R(ω̄): a regular relation applied to path variables (arity = |paths|).
/// Unary atoms are language constraints L(π).
struct RelationAtom {
  std::string name;  // display name ("el", "eq", a regex, ...)
  std::shared_ptr<const RegularRelation> relation;
  std::vector<std::string> paths;
};

/// One summand of a linear atom: coef * len(π) (symbol < 0) or
/// coef * occ(π, symbol).
struct LinearTerm {
  int64_t coef = 1;
  std::string path;
  Symbol symbol = -1;  // -1 encodes len(π)
};

/// Σ terms  (cmp)  rhs — one row of the paper's A·ℓ̄ >= b.
struct LinearAtom {
  std::vector<LinearTerm> terms;
  Cmp cmp = Cmp::kGe;
  int64_t rhs = 0;
};

/// A validated ECRPQ. Construct through QueryBuilder or ParseQuery.
class Query {
 public:
  const std::vector<NodeTerm>& head_nodes() const { return head_nodes_; }
  const std::vector<std::string>& head_paths() const { return head_paths_; }
  const std::vector<PathAtom>& path_atoms() const { return path_atoms_; }
  const std::vector<RelationAtom>& relation_atoms() const {
    return relation_atoms_;
  }
  const std::vector<LinearAtom>& linear_atoms() const {
    return linear_atoms_;
  }

  bool IsBoolean() const {
    return head_nodes_.empty() && head_paths_.empty();
  }

  /// Distinct node variable names in order of first occurrence.
  const std::vector<std::string>& node_variables() const {
    return node_variables_;
  }
  /// Distinct path variable names in order of first occurrence in the
  /// relational part.
  const std::vector<std::string>& path_variables() const {
    return path_variables_;
  }

  /// Distinct `$name` parameter names in order of first occurrence.
  /// Non-empty queries must have all parameters substituted (see
  /// NodeTerm::Param) before evaluation.
  const std::vector<std::string>& parameter_names() const {
    return parameter_names_;
  }
  bool has_parameters() const { return !parameter_names_.empty(); }

  /// Index of a path variable in path_variables(), -1 if absent.
  int PathVarIndex(const std::string& name) const;
  /// Index of a node variable in node_variables(), -1 if absent.
  int NodeVarIndex(const std::string& name) const;

  /// Path atoms binding each path variable (indices into path_atoms()).
  /// Usually one atom per variable; repetitions (Prop 6.8) give several.
  const std::vector<std::vector<int>>& atoms_of_path() const {
    return atoms_of_path_;
  }

  std::string ToString() const;

 private:
  friend class QueryBuilder;
  Query() = default;

  std::vector<NodeTerm> head_nodes_;
  std::vector<std::string> head_paths_;
  std::vector<PathAtom> path_atoms_;
  std::vector<RelationAtom> relation_atoms_;
  std::vector<LinearAtom> linear_atoms_;
  std::vector<std::string> node_variables_;
  std::vector<std::string> path_variables_;
  std::vector<std::string> parameter_names_;
  std::vector<std::vector<int>> atoms_of_path_;
};

}  // namespace ecrpq

#endif  // ECRPQ_QUERY_AST_H_
