// Structural analysis of queries: the classifications Figure 1 is indexed
// by (CRPQ vs ECRPQ, acyclic or not, repetitions, linear constraints) plus
// the synchronization-component decomposition the evaluator exploits.

#ifndef ECRPQ_QUERY_ANALYSIS_H_
#define ECRPQ_QUERY_ANALYSIS_H_

#include <string>
#include <vector>

#include "query/ast.h"

namespace ecrpq {

struct QueryAnalysis {
  /// All relation atoms are unary (languages) — the paper's CRPQ fragment.
  bool is_crpq = false;

  /// Some path variable occurs in two path atoms (relational repetition,
  /// Proposition 6.8).
  bool has_relational_repetition = false;

  /// Some path variable occurs twice in one relation atom's tuple, or two
  /// relation atoms constrain identical tuples (regular repetition,
  /// Proposition 6.8).
  bool has_regular_repetition = false;

  bool has_linear_atoms = false;

  /// Only length terms (no occ terms) in linear atoms.
  bool linear_atoms_lengths_only = true;

  /// The graph H_Q over node variables with an edge per path atom is a
  /// forest (paper's acyclicity; Section 6.3). Constants count as fresh
  /// vertices.
  bool is_acyclic = false;

  /// Synchronization components: path atoms grouped by "share a >=2-ary
  /// relation atom or a multi-path linear atom"; each inner vector lists
  /// path-atom indices. Components can be evaluated independently and
  /// joined on node variables.
  std::vector<std::vector<int>> components;

  std::string Describe() const;
};

QueryAnalysis Analyze(const Query& query);

}  // namespace ecrpq

#endif  // ECRPQ_QUERY_ANALYSIS_H_
