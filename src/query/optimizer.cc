#include "query/optimizer.h"

#include <map>

#include "automata/operations.h"
#include "query/builder.h"

namespace ecrpq {

std::string OptimizerReport::Describe() const {
  std::string out = "fused=" + std::to_string(fused_language_atoms) +
                    " dropped=" + std::to_string(dropped_universal) +
                    (proven_empty ? " EMPTY" : "");
  for (const std::string& note : notes) out += "; " + note;
  return out;
}

namespace {

// A relation is universal iff its complement (within valid convolutions)
// is empty. Cheap for the sizes the optimizer sees; skipped for automata
// above a size cutoff (determinization cost).
bool IsUniversalRelation(const RegularRelation& rel) {
  constexpr int kCutoffStates = 64;
  if (rel.nfa().num_states() > kCutoffStates) return false;
  return rel.Complement().IsEmpty();
}

}  // namespace

Result<OptimizedQuery> OptimizeQuery(const Query& query) {
  OptimizerReport report;

  // Group unary atoms per path variable; keep others as-is.
  std::map<std::string, std::vector<const RelationAtom*>> unary_by_path;
  std::vector<const RelationAtom*> multiary;
  for (const RelationAtom& atom : query.relation_atoms()) {
    if (atom.relation->arity() == 1) {
      unary_by_path[atom.paths[0]].push_back(&atom);
    } else {
      multiary.push_back(&atom);
    }
  }

  QueryBuilder builder;
  for (const PathAtom& atom : query.path_atoms()) {
    builder.Atom(atom.from, atom.path, atom.to);
  }

  // Fuse unary languages per path variable.
  for (const auto& [path, atoms] : unary_by_path) {
    // Drop universal unary atoms first.
    std::vector<const RelationAtom*> kept;
    for (const RelationAtom* atom : atoms) {
      if (IsUniversalRelation(*atom->relation)) {
        ++report.dropped_universal;
        report.notes.push_back("dropped universal '" + atom->name +
                                   "' on " + path);
      } else {
        kept.push_back(atom);
      }
    }
    if (kept.empty()) continue;
    if (kept.size() == 1) {
      builder.Relation(kept[0]->relation, kept[0]->paths, kept[0]->name);
      continue;
    }
    // Intersect all languages into one automaton.
    auto lang = kept[0]->relation->ToLanguageNfa();
    if (!lang.ok()) return lang.status();
    Nfa fused = std::move(lang).value();
    std::string name = kept[0]->name;
    for (size_t i = 1; i < kept.size(); ++i) {
      auto next = kept[i]->relation->ToLanguageNfa();
      if (!next.ok()) return next.status();
      fused = Trim(IntersectNfa(fused, next.value()));
      name += "&" + kept[i]->name;
      ++report.fused_language_atoms;
    }
    if (IsEmpty(fused)) {
      report.proven_empty = true;
      report.notes.push_back("language intersection on " + path +
                                 " is empty");
    }
    builder.Relation(
        std::make_shared<RegularRelation>(RegularRelation::FromLanguage(
            kept[0]->relation->base_size(), fused)),
        {path}, name);
  }

  for (const RelationAtom* atom : multiary) {
    if (IsUniversalRelation(*atom->relation)) {
      ++report.dropped_universal;
      report.notes.push_back("dropped universal '" + atom->name + "'");
      continue;
    }
    if (atom->relation->IsEmpty()) {
      report.proven_empty = true;
      report.notes.push_back("relation '" + atom->name + "' is empty");
    }
    builder.Relation(atom->relation, atom->paths, atom->name);
  }

  for (const LinearAtom& atom : query.linear_atoms()) {
    builder.Linear(atom);
  }

  std::vector<std::string> head_nodes;
  for (const NodeTerm& term : query.head_nodes()) {
    head_nodes.push_back(term.name);
  }
  builder.Head(std::move(head_nodes), query.head_paths());
  auto rebuilt = builder.Build();
  if (!rebuilt.ok()) return rebuilt.status();
  return OptimizedQuery{std::move(rebuilt).value(), std::move(report)};
}

}  // namespace ecrpq
