#include "query/parser.h"

#include <cctype>

#include "automata/regex.h"
#include "query/builder.h"
#include "relations/builtin.h"
#include "relations/tuple_regex.h"

namespace ecrpq {

RelationRegistry::RelationRegistry(const RelationRegistry& other) {
  std::lock_guard<std::mutex> lock(other.cache_mu_);
  factories_ = other.factories_;
  cache_ = other.cache_;
}

RelationRegistry& RelationRegistry::operator=(const RelationRegistry& other) {
  if (this == &other) return *this;
  std::scoped_lock lock(cache_mu_, other.cache_mu_);
  factories_ = other.factories_;
  cache_ = other.cache_;
  return *this;
}

const RelationRegistry& RelationRegistry::Builtins() {
  // Shared, lazily-initialized singleton. Factories are registered once;
  // instantiations are memoized inside (mutex-guarded) and shared by
  // every copy taken via Default().
  static const RelationRegistry* builtins = [] {
    auto* registry = new RelationRegistry();
    registry->Register("eq", [](int n) {
      return std::make_shared<RegularRelation>(EqualityRelation(n));
    });
    registry->Register("el", [](int n) {
      return std::make_shared<RegularRelation>(EqualLengthRelation(n));
    });
    registry->Register("equal_length", [](int n) {
      return std::make_shared<RegularRelation>(EqualLengthRelation(n));
    });
    registry->Register("prefix", [](int n) {
      return std::make_shared<RegularRelation>(PrefixRelation(n));
    });
    registry->Register("strict_prefix", [](int n) {
      return std::make_shared<RegularRelation>(StrictPrefixRelation(n));
    });
    registry->Register("shorter", [](int n) {
      return std::make_shared<RegularRelation>(ShorterRelation(n));
    });
    registry->Register("shorter_eq", [](int n) {
      return std::make_shared<RegularRelation>(ShorterOrEqualRelation(n));
    });
    for (int k = 1; k <= 3; ++k) {
      registry->Register("edit" + std::to_string(k), [k](int n) {
        return std::make_shared<RegularRelation>(
            EditDistanceAtMostRelation(n, k));
      });
      registry->Register("hamming" + std::to_string(k), [k](int n) {
        return std::make_shared<RegularRelation>(
            HammingDistanceAtMostRelation(n, k));
      });
    }
    return registry;
  }();
  return *builtins;
}

RelationRegistry RelationRegistry::Default() { return Builtins(); }

void RelationRegistry::Register(std::string name, Factory factory) {
  // Drop stale memoized instantiations so a re-registered name resolves
  // to the new relation, not the old cache entry.
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    for (auto it = cache_.begin(); it != cache_.end();) {
      if (it->first.first == name) {
        it = cache_.erase(it);
      } else {
        ++it;
      }
    }
  }
  factories_[std::move(name)] = std::move(factory);
}

void RelationRegistry::Register(
    std::string name, std::shared_ptr<const RegularRelation> relation) {
  // Delegate to the Factory overload so the stale-cache purge runs.
  Register(std::move(name),
           [relation](
               int base_size) -> std::shared_ptr<const RegularRelation> {
             if (relation->base_size() != base_size) return nullptr;
             return relation;
           });
}

std::shared_ptr<const RegularRelation> RelationRegistry::Resolve(
    const std::string& name, int base_size) const {
  auto it = factories_.find(name);
  if (it == factories_.end()) return nullptr;
  auto key = std::make_pair(name, base_size);
  {
    std::lock_guard<std::mutex> lock(cache_mu_);
    auto cached = cache_.find(key);
    if (cached != cache_.end()) return cached->second;
  }
  // Build outside the lock (factories can be expensive); racing builders
  // agree on the result, first insert wins.
  auto relation = it->second(base_size);
  std::lock_guard<std::mutex> lock(cache_mu_);
  return cache_.emplace(std::move(key), relation).first->second;
}

namespace {

class QueryParser {
 public:
  QueryParser(std::string_view text, const Alphabet& alphabet,
              const RelationRegistry& registry)
      : text_(text), alphabet_(alphabet), registry_(registry) {}

  Result<Query> Parse() {
    SkipSpace();
    if (!ConsumeWord("Ans")) {
      return Status::InvalidArgument("query must start with 'Ans'");
    }
    {
      Status st = ParseHead();
      if (!st.ok()) return st;
    }
    SkipSpace();
    if (!Consume("<-") && !Consume(":-")) {
      return Status::InvalidArgument("expected '<-' after query head");
    }
    while (true) {
      Status st = ParseAtom();
      if (!st.ok()) return st;
      SkipSpace();
      if (!Consume(",")) break;
    }
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::InvalidArgument("trailing input at offset " +
                                     std::to_string(pos_));
    }
    SplitHead();
    return BuildQuery();
  }

 private:
  Result<Query> BuildQuery() {
    QueryBuilder builder;
    for (const PathAtom& atom : pending_path_atoms_) {
      builder.Atom(atom.from, atom.path, atom.to);
    }
    for (const RelationAtom& atom : pending_relation_atoms_) {
      builder.Relation(atom.relation, atom.paths, atom.name);
    }
    for (const LinearAtom& atom : pending_linear_atoms_) {
      builder.Linear(atom);
    }
    std::vector<std::string> node_vars;
    for (const NodeTerm& term : head_node_terms_) {
      node_vars.push_back(term.name);
    }
    builder.Head(std::move(node_vars), head_paths_);
    return builder.Build();
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(std::string_view token) {
    SkipSpace();
    if (text_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    SkipSpace();
    if (text_.substr(pos_, word.size()) != word) return false;
    size_t end = pos_ + word.size();
    if (end < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[end])) ||
         text_[end] == '_')) {
      return false;
    }
    pos_ = end;
    return true;
  }

  std::string ParseIdent() {
    SkipSpace();
    std::string out;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      out.push_back(text_[pos_++]);
    }
    return out;
  }

  Result<NodeTerm> ParseNodeTerm() {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '"') {
      size_t end = text_.find('"', pos_ + 1);
      if (end == std::string_view::npos) {
        return Status::InvalidArgument("unterminated node constant");
      }
      std::string name(text_.substr(pos_ + 1, end - pos_ - 1));
      pos_ = end + 1;
      return NodeTerm::Const(std::move(name));
    }
    if (pos_ < text_.size() && text_[pos_] == '$') {
      ++pos_;
      std::string name = ParseIdent();
      if (name.empty()) {
        return Status::InvalidArgument("expected parameter name after '$'");
      }
      return NodeTerm::Param(std::move(name));
    }
    std::string ident = ParseIdent();
    if (ident.empty()) {
      return Status::InvalidArgument("expected node term at offset " +
                                     std::to_string(pos_));
    }
    return NodeTerm::Var(std::move(ident));
  }

  Status ParseHead() {
    SkipSpace();
    if (!Consume("(")) {
      return Status::InvalidArgument("expected '(' after 'Ans'");
    }
    SkipSpace();
    if (Consume(")")) return Status::OK();
    while (true) {
      std::string ident = ParseIdent();
      if (ident.empty()) {
        return Status::InvalidArgument("expected head variable");
      }
      head_terms_raw_.push_back(ident);
      SkipSpace();
      if (Consume(",")) continue;
      if (Consume(")")) break;
      return Status::InvalidArgument("expected ',' or ')' in head");
    }
    return Status::OK();
  }

  // Classify raw head identifiers once path variables are known.
  void SplitHead() {
    for (const std::string& ident : head_terms_raw_) {
      bool is_path = false;
      for (const PathAtom& atom : pending_path_atoms_) {
        if (atom.path == ident) {
          is_path = true;
          break;
        }
      }
      if (is_path) {
        head_paths_.push_back(ident);
      } else {
        head_node_terms_.push_back(NodeTerm::Var(ident));
      }
    }
  }

  Status ParseAtom() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::InvalidArgument("expected an atom");
    }
    if (text_[pos_] == '(') {
      // Could be a path atom or a parenthesized regex relation atom
      // (e.g. "(ab)*(p)"); try the path atom first and fall back.
      size_t save = pos_;
      size_t atoms_before = pending_path_atoms_.size();
      Status st = ParsePathAtom();
      if (st.ok()) return st;
      pos_ = save;
      pending_path_atoms_.resize(atoms_before);
      return ParseRelationAtom();
    }
    // Linear atoms start with 'len', 'occ', an integer or '-'.
    size_t save = pos_;
    if (StartsLinearAtom()) {
      Status st = ParseLinearAtom();
      if (st.ok()) return st;
      pos_ = save;  // fall through to relation parse
    }
    return ParseRelationAtom();
  }

  bool StartsLinearAtom() {
    size_t save = pos_;
    SkipSpace();
    bool yes = false;
    if (pos_ < text_.size() &&
        (text_[pos_] == '-' ||
         std::isdigit(static_cast<unsigned char>(text_[pos_])))) {
      yes = true;
    } else {
      size_t p = pos_;
      std::string word = ParseIdent();
      pos_ = p;
      yes = (word == "len" || word == "occ");
    }
    pos_ = save;
    return yes;
  }

  Status ParsePathAtom() {
    if (!Consume("(")) {
      return Status::InvalidArgument("expected '('");
    }
    auto from = ParseNodeTerm();
    if (!from.ok()) return from.status();
    if (!Consume(",")) {
      return Status::InvalidArgument("expected ',' in path atom");
    }
    std::string path = ParseIdent();
    if (path.empty()) {
      return Status::InvalidArgument("expected path variable in path atom");
    }
    if (!Consume(",")) {
      return Status::InvalidArgument("expected ',' in path atom");
    }
    auto to = ParseNodeTerm();
    if (!to.ok()) return to.status();
    if (!Consume(")")) {
      return Status::InvalidArgument("expected ')' closing path atom");
    }
    pending_path_atoms_.push_back(
        {std::move(from).value(), std::move(path), std::move(to).value()});
    return Status::OK();
  }

  Status ParseRelationAtom() {
    // The relation spec runs until the '(' that starts the argument list.
    // Regexes may contain parentheses, so scan for the *last* '(' whose
    // matching ')' is followed by ',' or end — simpler: find the argument
    // list by scanning from the end of the atom. An atom ends at a top-level
    // ',' or end of input. First, find the atom's extent.
    SkipSpace();
    size_t start = pos_;
    int depth = 0;
    size_t end = text_.size();
    for (size_t i = pos_; i < text_.size(); ++i) {
      char c = text_[i];
      if (c == '(' || c == '[') ++depth;
      if (c == ')' || c == ']') --depth;
      if (c == ',' && depth == 0) {
        end = i;
        break;
      }
    }
    std::string_view atom = text_.substr(start, end - start);
    // Trim trailing spaces.
    size_t atom_len = atom.size();
    while (atom_len > 0 &&
           std::isspace(static_cast<unsigned char>(atom[atom_len - 1]))) {
      --atom_len;
    }
    atom = atom.substr(0, atom_len);
    if (atom.empty() || atom.back() != ')') {
      return Status::InvalidArgument("malformed relation atom: '" +
                                     std::string(atom) + "'");
    }
    // Find the matching '(' of the final ')'.
    int d = 0;
    size_t open = std::string_view::npos;
    for (size_t i = atom.size(); i-- > 0;) {
      if (atom[i] == ')') ++d;
      if (atom[i] == '(') {
        --d;
        if (d == 0) {
          open = i;
          break;
        }
      }
    }
    if (open == std::string_view::npos) {
      return Status::InvalidArgument("unbalanced relation atom: '" +
                                     std::string(atom) + "'");
    }
    std::string_view spec = atom.substr(0, open);
    std::string_view args = atom.substr(open + 1, atom.size() - open - 2);
    // Trim spec.
    while (!spec.empty() &&
           std::isspace(static_cast<unsigned char>(spec.back()))) {
      spec.remove_suffix(1);
    }
    if (spec.empty()) {
      return Status::InvalidArgument("relation atom without a relation: '" +
                                     std::string(atom) + "'");
    }
    // Parse argument list (path variables).
    std::vector<std::string> paths;
    {
      std::string current;
      for (char c : args) {
        if (c == ',') {
          if (!current.empty()) paths.push_back(current);
          current.clear();
        } else if (!std::isspace(static_cast<unsigned char>(c))) {
          current.push_back(c);
        }
      }
      if (!current.empty()) paths.push_back(current);
    }
    if (paths.empty()) {
      return Status::InvalidArgument("relation atom needs path arguments: '" +
                                     std::string(atom) + "'");
    }
    // Resolve the spec: registry name, tuple regex, or base regex.
    std::shared_ptr<const RegularRelation> relation;
    std::string spec_str(spec);
    if (registry_.Contains(spec_str)) {
      relation = registry_.Resolve(spec_str, alphabet_.size());
      if (relation == nullptr) {
        return Status::InvalidArgument("relation '" + spec_str +
                                       "' unavailable for this alphabet");
      }
    } else if (spec.find('[') != std::string_view::npos) {
      auto parsed = ParseTupleRegex(spec, alphabet_,
                                    static_cast<int>(paths.size()));
      if (!parsed.ok()) return parsed.status();
      relation = std::make_shared<RegularRelation>(std::move(parsed).value());
    } else {
      auto parsed = ParseRegexStrict(spec, alphabet_);
      if (!parsed.ok()) return parsed.status();
      Nfa nfa = parsed.value()->ToNfa(alphabet_.size());
      relation = std::make_shared<RegularRelation>(
          RegularRelation::FromLanguage(alphabet_.size(), nfa));
    }
    if (relation->arity() != static_cast<int>(paths.size())) {
      return Status::InvalidArgument(
          "relation '" + spec_str + "' has arity " +
          std::to_string(relation->arity()) + " but got " +
          std::to_string(paths.size()) + " arguments");
    }
    pending_relation_atoms_.push_back(
        {spec_str, std::move(relation), std::move(paths)});
    pos_ = end;
    return Status::OK();
  }

  Result<int64_t> ParseInteger() {
    SkipSpace();
    bool negative = false;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      negative = true;
      ++pos_;
    }
    SkipSpace();
    if (pos_ >= text_.size() ||
        !std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      return Status::InvalidArgument("expected integer at offset " +
                                     std::to_string(pos_));
    }
    int64_t value = 0;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      value = value * 10 + (text_[pos_++] - '0');
    }
    return negative ? -value : value;
  }

  Status ParseLinearAtom() {
    LinearAtom atom;
    bool first = true;
    while (true) {
      SkipSpace();
      int64_t sign = 1;
      if (Consume("-")) {
        sign = -1;
      } else if (!first) {
        if (!Consume("+")) break;
      }
      first = false;
      SkipSpace();
      int64_t coef = 1;
      if (pos_ < text_.size() &&
          std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        auto value = ParseInteger();
        if (!value.ok()) return value.status();
        coef = value.value();
        Consume("*");
      }
      SkipSpace();
      if (ConsumeWord("len")) {
        if (!Consume("(")) {
          return Status::InvalidArgument("expected '(' after len");
        }
        std::string path = ParseIdent();
        if (!Consume(")")) {
          return Status::InvalidArgument("expected ')' after len(...)");
        }
        atom.terms.push_back({sign * coef, std::move(path), -1});
      } else if (ConsumeWord("occ")) {
        if (!Consume("(")) {
          return Status::InvalidArgument("expected '(' after occ");
        }
        std::string path = ParseIdent();
        if (!Consume(",")) {
          return Status::InvalidArgument("expected ',' in occ(...)");
        }
        SkipSpace();
        std::string label;
        if (pos_ < text_.size() && text_[pos_] == '\'') {
          size_t close = text_.find('\'', pos_ + 1);
          if (close == std::string_view::npos) {
            return Status::InvalidArgument("unterminated label in occ()");
          }
          label = std::string(text_.substr(pos_ + 1, close - pos_ - 1));
          pos_ = close + 1;
        } else {
          label = ParseIdent();
        }
        auto symbol = alphabet_.Find(label);
        if (!symbol.has_value()) {
          return Status::NotFound("occ() label '" + label +
                                  "' not in alphabet");
        }
        if (!Consume(")")) {
          return Status::InvalidArgument("expected ')' after occ(...)");
        }
        atom.terms.push_back({sign * coef, std::move(path), *symbol});
      } else {
        return Status::InvalidArgument(
            "expected len(...) or occ(...) in linear atom");
      }
    }
    SkipSpace();
    if (Consume(">=")) {
      atom.cmp = Cmp::kGe;
    } else if (Consume("<=")) {
      atom.cmp = Cmp::kLe;
    } else if (Consume("=")) {
      atom.cmp = Cmp::kEq;
    } else {
      return Status::InvalidArgument("expected comparator in linear atom");
    }
    auto rhs = ParseInteger();
    if (!rhs.ok()) return rhs.status();
    atom.rhs = rhs.value();
    pending_linear_atoms_.push_back(std::move(atom));
    return Status::OK();
  }

  std::string_view text_;
  const Alphabet& alphabet_;
  const RelationRegistry& registry_;
  size_t pos_ = 0;

  std::vector<std::string> head_terms_raw_;
  std::vector<NodeTerm> head_node_terms_;
  std::vector<std::string> head_paths_;
  std::vector<PathAtom> pending_path_atoms_;
  std::vector<RelationAtom> pending_relation_atoms_;
  std::vector<LinearAtom> pending_linear_atoms_;
};

}  // namespace

Result<Query> ParseQuery(std::string_view text, const Alphabet& alphabet,
                         const RelationRegistry& registry) {
  QueryParser parser(text, alphabet, registry);
  auto result = parser.Parse();
  return result;
}

}  // namespace ecrpq
