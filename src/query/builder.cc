#include "query/builder.h"

#include <algorithm>

namespace ecrpq {

QueryBuilder& QueryBuilder::Atom(std::string from, std::string path,
                                 std::string to) {
  return Atom(NodeTerm::Var(std::move(from)), std::move(path),
              NodeTerm::Var(std::move(to)));
}

QueryBuilder& QueryBuilder::Atom(NodeTerm from, std::string path,
                                 NodeTerm to) {
  path_atoms_.push_back({std::move(from), std::move(path), std::move(to)});
  return *this;
}

QueryBuilder& QueryBuilder::Relation(
    std::shared_ptr<const RegularRelation> relation,
    std::vector<std::string> paths, std::string name) {
  if (relation == nullptr) {
    if (error_.ok()) error_ = Status::InvalidArgument("null relation");
    return *this;
  }
  if (name.empty()) name = "R" + std::to_string(relation_atoms_.size());
  relation_atoms_.push_back(
      {std::move(name), std::move(relation), std::move(paths)});
  return *this;
}

QueryBuilder& QueryBuilder::Language(std::string_view regex,
                                     const Alphabet& alphabet,
                                     std::string path) {
  auto parsed = ParseRegexStrict(regex, alphabet);
  if (!parsed.ok()) {
    if (error_.ok()) error_ = parsed.status();
    return *this;
  }
  Nfa nfa = parsed.value()->ToNfa(alphabet.size());
  auto relation = std::make_shared<RegularRelation>(
      RegularRelation::FromLanguage(alphabet.size(), nfa));
  relation_atoms_.push_back(
      {std::string(regex), std::move(relation), {std::move(path)}});
  return *this;
}

QueryBuilder& QueryBuilder::Language(const Nfa& nfa, int base_size,
                                     std::string path) {
  auto relation = std::make_shared<RegularRelation>(
      RegularRelation::FromLanguage(base_size, nfa));
  relation_atoms_.push_back(
      {"L" + std::to_string(relation_atoms_.size()), std::move(relation),
       {std::move(path)}});
  return *this;
}

QueryBuilder& QueryBuilder::Linear(LinearAtom atom) {
  linear_atoms_.push_back(std::move(atom));
  return *this;
}

QueryBuilder& QueryBuilder::LengthConstraint(std::string path, Cmp cmp,
                                             int64_t rhs) {
  LinearAtom atom;
  atom.terms.push_back({1, std::move(path), -1});
  atom.cmp = cmp;
  atom.rhs = rhs;
  return Linear(std::move(atom));
}

QueryBuilder& QueryBuilder::Head(std::vector<std::string> node_vars,
                                 std::vector<std::string> path_vars) {
  head_nodes_.clear();
  for (std::string& v : node_vars) {
    head_nodes_.push_back(NodeTerm::Var(std::move(v)));
  }
  head_paths_ = std::move(path_vars);
  head_set_ = true;
  return *this;
}

Result<Query> QueryBuilder::Build() {
  if (!error_.ok()) return error_;
  if (path_atoms_.empty()) {
    return Status::InvalidArgument(
        "a query needs at least one path atom (m > 0 in Definition 3.1)");
  }

  Query query;
  query.path_atoms_ = path_atoms_;
  query.relation_atoms_ = relation_atoms_;
  query.linear_atoms_ = linear_atoms_;
  query.head_nodes_ = head_nodes_;
  query.head_paths_ = head_paths_;

  // Collect variables in order of first occurrence. Parameters are not
  // node variables: they stand for constants bound before evaluation.
  auto add_node_var = [&](const NodeTerm& term) {
    if (term.is_parameter) {
      if (std::find(query.parameter_names_.begin(),
                    query.parameter_names_.end(),
                    term.name) == query.parameter_names_.end()) {
        query.parameter_names_.push_back(term.name);
      }
      return;
    }
    if (term.is_constant) return;
    if (std::find(query.node_variables_.begin(), query.node_variables_.end(),
                  term.name) == query.node_variables_.end()) {
      query.node_variables_.push_back(term.name);
    }
  };
  for (const PathAtom& atom : path_atoms_) {
    add_node_var(atom.from);
    add_node_var(atom.to);
    if (std::find(query.path_variables_.begin(), query.path_variables_.end(),
                  atom.path) == query.path_variables_.end()) {
      query.path_variables_.push_back(atom.path);
    }
  }
  query.atoms_of_path_.resize(query.path_variables_.size());
  for (size_t i = 0; i < path_atoms_.size(); ++i) {
    int idx = query.PathVarIndex(path_atoms_[i].path);
    query.atoms_of_path_[idx].push_back(static_cast<int>(i));
  }

  // Head terms must occur in the relational part.
  for (const NodeTerm& term : head_nodes_) {
    if (!term.is_constant && query.NodeVarIndex(term.name) < 0) {
      return Status::InvalidArgument("head node variable '" + term.name +
                                     "' does not occur in any path atom");
    }
  }
  for (const std::string& p : head_paths_) {
    if (query.PathVarIndex(p) < 0) {
      return Status::InvalidArgument("head path variable '" + p +
                                     "' does not occur in any path atom");
    }
  }

  // Relation atoms: arity matches, paths bound, consistent base size.
  int base_size = -1;
  for (const RelationAtom& atom : relation_atoms_) {
    if (static_cast<int>(atom.paths.size()) != atom.relation->arity()) {
      return Status::InvalidArgument(
          "relation '" + atom.name + "' has arity " +
          std::to_string(atom.relation->arity()) + " but is applied to " +
          std::to_string(atom.paths.size()) + " path variables");
    }
    for (const std::string& p : atom.paths) {
      if (query.PathVarIndex(p) < 0) {
        return Status::InvalidArgument("relation '" + atom.name +
                                       "' uses unbound path variable '" + p +
                                       "'");
      }
    }
    if (base_size < 0) {
      base_size = atom.relation->base_size();
    } else if (base_size != atom.relation->base_size()) {
      return Status::InvalidArgument(
          "relations use different base alphabet sizes (" +
          std::to_string(base_size) + " vs " +
          std::to_string(atom.relation->base_size()) + ")");
    }
  }

  // Linear atoms: paths bound, symbols in range when base size known.
  for (const LinearAtom& atom : linear_atoms_) {
    for (const LinearTerm& term : atom.terms) {
      if (query.PathVarIndex(term.path) < 0) {
        return Status::InvalidArgument(
            "linear constraint uses unbound path variable '" + term.path +
            "'");
      }
      if (term.symbol >= 0 && base_size >= 0 && term.symbol >= base_size) {
        return Status::InvalidArgument(
            "linear constraint references symbol id " +
            std::to_string(term.symbol) + " outside the base alphabet");
      }
    }
  }
  return query;
}

}  // namespace ecrpq
