// Query rewriting: the static optimizations the paper's containment
// section motivates ("checking query containment is crucial for problems
// such as query optimization", Section 7), specialized to rewrites that are
// sound for every graph:
//
//   * fuse multiple unary language atoms on one path variable into a single
//     intersection automaton (fewer relation atoms, smaller products);
//   * drop relation atoms that are universal (impose no constraint);
//   * detect empty relations / empty language intersections and mark the
//     query unsatisfiable (evaluates to ∅ on every graph);
//   * canonicalize binary equality chains eq(p,q), eq(q,r) into a star
//     around one representative (smaller synchronization components when
//     combined with unary fusion).
//
// Rewrites preserve Q(G) for every G; `OptimizeQuery` returns the rewritten
// query plus a report of what fired.

#ifndef ECRPQ_QUERY_OPTIMIZER_H_
#define ECRPQ_QUERY_OPTIMIZER_H_

#include <string>
#include <vector>

#include "query/ast.h"
#include "util/status.h"

namespace ecrpq {

struct OptimizerReport {
  int fused_language_atoms = 0;   ///< unary atoms merged away
  int dropped_universal = 0;      ///< no-op relation atoms removed
  bool proven_empty = false;      ///< query is unsatisfiable on every graph
  std::vector<std::string> notes;

  std::string Describe() const;
};

struct OptimizedQuery {
  Query query;
  OptimizerReport report;
};

/// Applies all rewrites. When `report.proven_empty` is set the returned
/// query still parses/evaluates (to ∅) but callers can skip evaluation.
Result<OptimizedQuery> OptimizeQuery(const Query& query);

}  // namespace ecrpq

#endif  // ECRPQ_QUERY_OPTIMIZER_H_
