// Text syntax for (E)CRPQs.
//
//   query     := 'Ans' '(' head-terms? ')' '<-' atom (',' atom)*
//   atom      := path-atom | relation-atom | linear-atom
//   path-atom := '(' node-term ',' ident ',' node-term ')'
//   node-term := ident | '"' node-name '"' | '$' ident
//   relation-atom := rel-spec '(' ident (',' ident)* ')'
//   rel-spec  := registered relation name | base regex | tuple regex
//   linear-atom := lin-expr ('>=' | '<=' | '=') integer
//   lin-expr  := lin-term (('+' | '-') lin-term)*
//   lin-term  := (integer '*')? ('len' '(' ident ')'
//                               | 'occ' '(' ident ',' label ')')
//
// Examples:
//   Ans(x, y) <- (x, pi1, z), (z, pi2, y), eq(pi1, pi2)
//   Ans(x, y) <- (x, p, y), a*b+(p)
//   Ans()     <- (x, p, y), ([a,a]|[b,b])*(p, q)      -- tuple regex
//   Ans(x)    <- (x, p, y), occ(p, a) - 4*occ(p, b) >= 0
//   Ans(y)    <- ($start, p, y), a*(p)                -- $parameter
//
// `$name` terms are node-constant parameters: the query parses and
// validates once, and each PreparedQuery execution binds them to concrete
// nodes (see api/prepared_query.h).
//
// Relation names are resolved against a RelationRegistry; unresolved
// relation specs are parsed as (tuple) regexes over the supplied alphabet.

#ifndef ECRPQ_QUERY_PARSER_H_
#define ECRPQ_QUERY_PARSER_H_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "query/ast.h"
#include "util/status.h"

namespace ecrpq {

/// Named relations available to the query parser. Built-ins preregistered
/// by Default(): eq, el (equal_length), prefix, strict_prefix, shorter,
/// shorter_eq, edit1, edit2, edit3.
class RelationRegistry {
 public:
  using Factory =
      std::function<std::shared_ptr<const RegularRelation>(int base_size)>;

  /// The shared registry of the paper's built-in relations, lazily
  /// initialized once per process. Instantiations resolved through it (or
  /// through copies taken via Default()) are memoized in one place, so
  /// repeated parses do not rebuild the built-in automata.
  static const RelationRegistry& Builtins();

  /// A mutable copy of Builtins(), for callers that register their own
  /// relations. The memoization cache is shared at copy time.
  static RelationRegistry Default();

  void Register(std::string name, Factory factory);
  void Register(std::string name,
                std::shared_ptr<const RegularRelation> relation);

  /// Resolves `name` for the given base alphabet size; null if unknown.
  std::shared_ptr<const RegularRelation> Resolve(const std::string& name,
                                                 int base_size) const;

  bool Contains(const std::string& name) const {
    return factories_.count(name) > 0;
  }

  // Copies share the source's factories and memoized instantiations at
  // copy time (the shared_ptr relations themselves are never duplicated).
  RelationRegistry() = default;
  RelationRegistry(const RelationRegistry& other);
  RelationRegistry& operator=(const RelationRegistry& other);

 private:
  std::map<std::string, Factory> factories_;
  // Memoized instantiations keyed by (name, base size). Guarded by
  // cache_mu_ so the shared Builtins() singleton (the default registry of
  // every ParseQuery call) is safe under concurrent Resolve.
  mutable std::mutex cache_mu_;
  mutable std::map<std::pair<std::string, int>,
                   std::shared_ptr<const RegularRelation>>
      cache_;
};

/// Parses a query; letters in regexes must be interned in `alphabet`.
Result<Query> ParseQuery(std::string_view text, const Alphabet& alphabet,
                         const RelationRegistry& registry =
                             RelationRegistry::Builtins());

}  // namespace ecrpq

#endif  // ECRPQ_QUERY_PARSER_H_
