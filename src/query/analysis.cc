#include "query/analysis.h"

#include <algorithm>
#include <numeric>
#include <set>

namespace ecrpq {

namespace {

// Union-find over path-atom indices.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Merge(int a, int b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int> parent_;
};

}  // namespace

QueryAnalysis Analyze(const Query& query) {
  QueryAnalysis out;

  out.is_crpq = true;
  for (const RelationAtom& atom : query.relation_atoms()) {
    if (atom.relation->arity() >= 2) out.is_crpq = false;
  }

  for (const auto& atoms : query.atoms_of_path()) {
    if (atoms.size() >= 2) out.has_relational_repetition = true;
  }

  std::set<std::vector<std::string>> seen_tuples;
  for (const RelationAtom& atom : query.relation_atoms()) {
    std::set<std::string> distinct(atom.paths.begin(), atom.paths.end());
    if (distinct.size() != atom.paths.size()) {
      out.has_regular_repetition = true;
    }
    if (!seen_tuples.insert(atom.paths).second) {
      out.has_regular_repetition = true;
    }
  }

  out.has_linear_atoms = !query.linear_atoms().empty();
  for (const LinearAtom& atom : query.linear_atoms()) {
    for (const LinearTerm& term : atom.terms) {
      if (term.symbol >= 0) out.linear_atoms_lengths_only = false;
    }
  }

  // Acyclicity of H_Q: union-find over node variables; adding an edge
  // within one component closes a cycle. Constants are fresh vertices; a
  // self-loop (x, π, x) is a cycle.
  {
    int num_vars = static_cast<int>(query.node_variables().size());
    int num_vertices = num_vars;
    // Pre-count constant (and parameter: a constant-to-be) occurrences as
    // fresh vertices.
    for (const PathAtom& atom : query.path_atoms()) {
      if (!atom.from.IsVariable()) ++num_vertices;
      if (!atom.to.IsVariable()) ++num_vertices;
    }
    UnionFind uf(num_vertices);
    int next_const = num_vars;
    out.is_acyclic = true;
    for (const PathAtom& atom : query.path_atoms()) {
      int u = !atom.from.IsVariable() ? next_const++
                                      : query.NodeVarIndex(atom.from.name);
      int v = !atom.to.IsVariable() ? next_const++
                                    : query.NodeVarIndex(atom.to.name);
      if (u == v || uf.Find(u) == uf.Find(v)) {
        out.is_acyclic = false;
      } else {
        uf.Merge(u, v);
      }
    }
  }

  // Synchronization components over path atoms.
  {
    const int m = static_cast<int>(query.path_atoms().size());
    UnionFind uf(m);
    auto merge_paths = [&](const std::vector<std::string>& paths) {
      std::vector<int> atom_indices;
      for (const std::string& p : paths) {
        int pv = query.PathVarIndex(p);
        for (int atom : query.atoms_of_path()[pv]) {
          atom_indices.push_back(atom);
        }
      }
      for (size_t i = 1; i < atom_indices.size(); ++i) {
        uf.Merge(atom_indices[0], atom_indices[i]);
      }
    };
    for (const RelationAtom& atom : query.relation_atoms()) {
      if (atom.relation->arity() >= 2) merge_paths(atom.paths);
    }
    for (const LinearAtom& atom : query.linear_atoms()) {
      std::vector<std::string> paths;
      for (const LinearTerm& term : atom.terms) paths.push_back(term.path);
      if (paths.size() >= 2) merge_paths(paths);
    }
    // Repeated path variables also tie their atoms together.
    for (const auto& atoms : query.atoms_of_path()) {
      for (size_t i = 1; i < atoms.size(); ++i) uf.Merge(atoms[0], atoms[i]);
    }
    std::vector<std::vector<int>> groups(m);
    for (int i = 0; i < m; ++i) groups[uf.Find(i)].push_back(i);
    for (auto& g : groups) {
      if (!g.empty()) out.components.push_back(std::move(g));
    }
  }
  return out;
}

std::string QueryAnalysis::Describe() const {
  std::string out = is_crpq ? "CRPQ" : "ECRPQ";
  if (is_acyclic) out += ", acyclic";
  if (has_relational_repetition) out += ", relational-repetition";
  if (has_regular_repetition) out += ", regular-repetition";
  if (has_linear_atoms) {
    out += linear_atoms_lengths_only ? ", length-constraints"
                                     : ", occurrence-constraints";
  }
  out += ", components=" + std::to_string(components.size());
  return out;
}

}  // namespace ecrpq
