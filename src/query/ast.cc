#include "query/ast.h"

#include <algorithm>

namespace ecrpq {

int Query::PathVarIndex(const std::string& name) const {
  auto it = std::find(path_variables_.begin(), path_variables_.end(), name);
  if (it == path_variables_.end()) return -1;
  return static_cast<int>(it - path_variables_.begin());
}

int Query::NodeVarIndex(const std::string& name) const {
  auto it = std::find(node_variables_.begin(), node_variables_.end(), name);
  if (it == node_variables_.end()) return -1;
  return static_cast<int>(it - node_variables_.begin());
}

namespace {
std::string TermToString(const NodeTerm& term) {
  if (term.is_constant) return "\"" + term.name + "\"";
  if (term.is_parameter) return "$" + term.name;
  return term.name;
}

const char* CmpToString(Cmp cmp) {
  switch (cmp) {
    case Cmp::kLe:
      return "<=";
    case Cmp::kGe:
      return ">=";
    case Cmp::kEq:
      return "=";
  }
  return "?";
}
}  // namespace

std::string Query::ToString() const {
  std::string out = "Ans(";
  bool first = true;
  for (const NodeTerm& t : head_nodes_) {
    if (!first) out += ", ";
    out += TermToString(t);
    first = false;
  }
  for (const std::string& p : head_paths_) {
    if (!first) out += ", ";
    out += p;
    first = false;
  }
  out += ") <- ";
  first = true;
  for (const PathAtom& atom : path_atoms_) {
    if (!first) out += ", ";
    out += "(" + TermToString(atom.from) + ", " + atom.path + ", " +
           TermToString(atom.to) + ")";
    first = false;
  }
  for (const RelationAtom& atom : relation_atoms_) {
    if (!first) out += ", ";
    out += atom.name + "(";
    for (size_t i = 0; i < atom.paths.size(); ++i) {
      if (i > 0) out += ", ";
      out += atom.paths[i];
    }
    out += ")";
    first = false;
  }
  for (const LinearAtom& atom : linear_atoms_) {
    if (!first) out += ", ";
    for (size_t i = 0; i < atom.terms.size(); ++i) {
      const LinearTerm& term = atom.terms[i];
      if (i > 0) out += " + ";
      if (term.coef != 1) out += std::to_string(term.coef) + "*";
      if (term.symbol < 0) {
        out += "len(" + term.path + ")";
      } else {
        out += "occ(" + term.path + ", #" + std::to_string(term.symbol) + ")";
      }
    }
    out += std::string(" ") + CmpToString(atom.cmp) + " " +
           std::to_string(atom.rhs);
    first = false;
  }
  return out;
}

}  // namespace ecrpq
