// Fluent construction and validation of Query objects.
//
// QueryBuilder enforces the well-formedness conditions of Definition 3.1 at
// Build() time: relation arities match their variable tuples, every path
// variable used in a relation/linear atom or the head is bound by a path
// atom, head node terms occur in the relational part, and all relations
// share one base alphabet size. Path-variable repetitions in the relational
// part are permitted (Proposition 6.8 territory) — analysis flags them.

#ifndef ECRPQ_QUERY_BUILDER_H_
#define ECRPQ_QUERY_BUILDER_H_

#include <memory>
#include <string>
#include <vector>

#include "automata/regex.h"
#include "query/ast.h"
#include "util/status.h"

namespace ecrpq {

/// Step-by-step Query construction.
class QueryBuilder {
 public:
  /// Adds (from, path, to) with node variables.
  QueryBuilder& Atom(std::string from, std::string path, std::string to);

  /// Adds a path atom with explicit terms (constants allowed).
  QueryBuilder& Atom(NodeTerm from, std::string path, NodeTerm to);

  /// Applies a relation to path variables (arity checked at Build).
  QueryBuilder& Relation(std::shared_ptr<const RegularRelation> relation,
                         std::vector<std::string> paths,
                         std::string name = "");

  /// Applies a unary language constraint given as a regex over `alphabet`.
  QueryBuilder& Language(std::string_view regex, const Alphabet& alphabet,
                         std::string path);

  /// Applies a unary language constraint from an NFA over the base alphabet.
  QueryBuilder& Language(const Nfa& nfa, int base_size, std::string path);

  /// Adds a linear atom (lengths / occurrence counts).
  QueryBuilder& Linear(LinearAtom atom);

  /// Convenience: len(path) cmp rhs.
  QueryBuilder& LengthConstraint(std::string path, Cmp cmp, int64_t rhs);

  /// Head Ans(nodes..., paths...). Variables only; for constants use
  /// HeadTerms.
  QueryBuilder& Head(std::vector<std::string> node_vars,
                     std::vector<std::string> path_vars = {});

  /// Validates and produces the Query.
  Result<Query> Build();

 private:
  Status error_;  // first deferred construction error
  std::vector<PathAtom> path_atoms_;
  std::vector<RelationAtom> relation_atoms_;
  std::vector<LinearAtom> linear_atoms_;
  std::vector<NodeTerm> head_nodes_;
  std::vector<std::string> head_paths_;
  bool head_set_ = false;
};

}  // namespace ecrpq

#endif  // ECRPQ_QUERY_BUILDER_H_
