#include "util/random.h"

#include "util/status.h"

namespace ecrpq {

namespace {
uint64_t SplitMix64(uint64_t* x) {
  uint64_t z = (*x += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& part : state_) part = SplitMix64(&s);
}

uint64_t Rng::Next() {
  // xoshiro256**
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::Below(uint64_t bound) {
  ECRPQ_DCHECK(bound > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = -bound % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::Range(int64_t lo, int64_t hi) {
  ECRPQ_DCHECK(lo <= hi);
  return lo + static_cast<int64_t>(Below(static_cast<uint64_t>(hi - lo + 1)));
}

bool Rng::Chance(double p) {
  if (p <= 0) return false;
  if (p >= 1) return true;
  return (Next() >> 11) * 0x1.0p-53 < p;
}

}  // namespace ecrpq
