// Work-stealing thread pool shared by every parallel execution.
//
// The execution layer (core/parallel.h) is morsel-driven: an operator
// splits its input (seed nodes, seed rows, frontier batches) into small
// morsels and N lanes pull morsels from a shared atomic cursor until none
// remain. The pool's job is only to supply the lanes: RunOnWorkers(n, fn)
// runs fn(lane) on the calling thread (lane 0) plus up to n-1 pool
// threads, and blocks until every lane returned. Because morsels are
// claimed dynamically, a lane that starts late (the pool is busy serving
// another query) or runs slow simply claims fewer morsels — there is no
// static partition to unbalance.
//
// Tasks are distributed over per-worker deques; an idle worker steals
// from the back of its siblings' deques before sleeping, so concurrent
// queries (inter-query parallelism through a shared Database) interleave
// fairly instead of queueing behind one another.
//
// Deadlock-freedom rule: a lane may only block on progress its OWN lane
// group is guaranteed to make (e.g. the shared-frontier lanes of
// core/parallel.h wait for batches another lane of the same search is
// still producing), never on acquiring a pool slot — lane 0 always runs
// on the caller, so every group drives itself even when the pool is
// saturated by other queries. After the caller's own lane finishes, it
// reclaims its still-queued lane tasks and runs them inline, so a query
// whose morsels are drained never waits on another query's backlog.

#ifndef ECRPQ_UTIL_THREAD_POOL_H_
#define ECRPQ_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace ecrpq {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (>= 0; 0 = a pool that never runs
  /// anything, every lane collapses onto the caller).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// The process default degree of parallelism: ECRPQ_THREADS when it
  /// parses to a positive integer, else hardware concurrency, clamped to
  /// [1, 256]. The single source of truth — the shared pool is sized to
  /// it (minus the calling lane) and core/parallel.h's ResolveNumThreads
  /// resolves EvalOptions::num_threads = 0 through it.
  static int DefaultParallelism();

  /// The process-wide pool, sized to DefaultParallelism() - 1 (the
  /// caller is always lane 0). Constructed on first use, so strictly
  /// single-threaded processes (num_threads = 1 everywhere) never spawn
  /// a thread.
  static ThreadPool& Shared();

  int num_threads() const { return static_cast<int>(threads_.size()); }

  /// Runs fn(0) .. fn(lanes-1): lane 0 on the calling thread, the rest as
  /// pool tasks (capped at num_threads()). Blocks until every lane
  /// finished. `fn` must not submit nested RunOnWorkers waits from inside
  /// a lane and must not throw.
  void RunOnWorkers(int lanes, const std::function<void(int)>& fn);

 private:
  struct Worker {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void Submit(std::function<void()> task);
  bool TryRunOne(int self);
  void WorkerLoop(int self);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  // Sleep/wake protocol: pending_ counts queued-but-unclaimed tasks.
  std::mutex sleep_mutex_;
  std::condition_variable wake_cv_;
  int pending_ = 0;
  bool stop_ = false;

  std::size_t next_ = 0;  // round-robin submit cursor (under sleep_mutex_)
};

}  // namespace ecrpq

#endif  // ECRPQ_UTIL_THREAD_POOL_H_
