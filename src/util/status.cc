#include "util/status.h"

namespace ecrpq {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace ecrpq
