// Deterministic pseudo-random generator used by graph/query generators and
// property tests. A thin splitmix64/xoshiro wrapper so test seeds reproduce
// across platforms (std::mt19937 distributions are not portable).

#ifndef ECRPQ_UTIL_RANDOM_H_
#define ECRPQ_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

namespace ecrpq {

/// Deterministic 64-bit PRNG with convenience sampling helpers.
class Rng {
 public:
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t Below(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Range(int64_t lo, int64_t hi);

  /// True with probability p (0 <= p <= 1).
  bool Chance(double p);

  /// Uniformly chosen index into a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[Below(v.size())];
  }

 private:
  uint64_t state_[4];
};

}  // namespace ecrpq

#endif  // ECRPQ_UTIL_RANDOM_H_
