#include "util/io.h"

#include <dirent.h>
#include <fcntl.h>
#include <string.h>
#include <sys/file.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

namespace ecrpq {

namespace {

Status ErrnoStatus(const std::string& op, const std::string& path) {
  return Status(StatusCode::kUnavailable,
                op + " " + path + ": " + strerror(errno));
}

class PosixWritableFile : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(const void* data, size_t n) override {
    const char* p = static_cast<const char*>(data);
    while (n > 0) {
      ssize_t w = ::write(fd_, p, n);
      if (w < 0) {
        if (errno == EINTR) continue;
        return ErrnoStatus("write", path_);
      }
      p += w;
      n -= static_cast<size_t>(w);
    }
    return Status::OK();
  }

  Status Sync() override {
    if (::fsync(fd_) != 0) return ErrnoStatus("fsync", path_);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return ErrnoStatus("close", path_);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixFileSystemImpl : public FileSystem {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override {
    int flags = O_WRONLY | O_CREAT | O_CLOEXEC | (truncate ? O_TRUNC : 0);
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return ErrnoStatus("open", path);
    if (!truncate && ::lseek(fd, 0, SEEK_END) < 0) {
      ::close(fd);
      return ErrnoStatus("lseek", path);
    }
    return std::unique_ptr<WritableFile>(new PosixWritableFile(fd, path));
  }

  Status ReadFile(const std::string& path, std::string* out) override {
    int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) return ErrnoStatus("open", path);
    out->clear();
    char buf[1 << 16];
    for (;;) {
      ssize_t r = ::read(fd, buf, sizeof buf);
      if (r < 0) {
        if (errno == EINTR) continue;
        ::close(fd);
        return ErrnoStatus("read", path);
      }
      if (r == 0) break;
      out->append(buf, static_cast<size_t>(r));
    }
    ::close(fd);
    return Status::OK();
  }

  Status Rename(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return ErrnoStatus("rename", from);
    }
    return Status::OK();
  }

  Status Remove(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) return ErrnoStatus("unlink", path);
    return Status::OK();
  }

  Status Truncate(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return ErrnoStatus("truncate", path);
    }
    return Status::OK();
  }

  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return ErrnoStatus("opendir", dir);
    std::vector<std::string> names;
    while (struct dirent* entry = ::readdir(d)) {
      std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      names.push_back(std::move(name));
    }
    ::closedir(d);
    return names;
  }

  Status CreateDir(const std::string& dir) override {
    if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
      return ErrnoStatus("mkdir", dir);
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& dir) override {
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
    if (fd < 0) return ErrnoStatus("open", dir);
    Status st = Status::OK();
    if (::fsync(fd) != 0) st = ErrnoStatus("fsync", dir);
    ::close(fd);
    return st;
  }

  bool FileExists(const std::string& path) override {
    struct stat sb;
    return ::stat(path.c_str(), &sb) == 0;
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    struct stat sb;
    if (::stat(path.c_str(), &sb) != 0) return ErrnoStatus("stat", path);
    return static_cast<uint64_t>(sb.st_size);
  }

  Result<int> LockFile(const std::string& path) override {
    int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd < 0) return ErrnoStatus("open", path);
    if (::flock(fd, LOCK_EX | LOCK_NB) != 0) {
      ::close(fd);
      return Status::FailedPrecondition(
          "data dir is locked by another process (flock " + path +
          "): " + strerror(errno));
    }
    return fd;
  }

  void ReleaseLock(int fd) override {
    if (fd >= 0) {
      ::flock(fd, LOCK_UN);
      ::close(fd);
    }
  }
};

Status InjectedFault(const std::string& op) {
  return Status(StatusCode::kUnavailable,
                op + ": injected fault (No space left on device)");
}

}  // namespace

FileSystem* PosixFileSystem() {
  static PosixFileSystemImpl* fs = new PosixFileSystemImpl();
  return fs;
}

// ---- fault injection ----

namespace {

class FaultInjectingFile : public WritableFile {
 public:
  FaultInjectingFile(std::unique_ptr<WritableFile> base,
                     FaultInjectingFileSystem* fs)
      : base_(std::move(base)), fs_(fs) {}

  Status Append(const void* data, size_t n) override {
    int torn = 0;
    if (fs_->ShouldFail(&FaultPlan::fail_append_after, &torn)) {
      // Model a torn write: part of the record reaches the disk, then
      // the write fails. torn < 0 = all but the last byte.
      size_t keep = torn < 0 ? (n > 0 ? n - 1 : 0)
                             : std::min(n, static_cast<size_t>(torn));
      if (keep > 0) base_->Append(data, keep);  // best effort
      return InjectedFault("write");
    }
    return base_->Append(data, n);
  }

  Status Sync() override {
    if (fs_->ShouldFail(&FaultPlan::fail_sync_after, nullptr)) {
      return InjectedFault("fsync");
    }
    return base_->Sync();
  }

  Status Close() override { return base_->Close(); }

 private:
  std::unique_ptr<WritableFile> base_;
  FaultInjectingFileSystem* fs_;
};

}  // namespace

bool FaultInjectingFileSystem::ShouldFail(int FaultPlan::* counter,
                                          int* torn_out) {
  std::lock_guard<std::mutex> lock(plan_->mutex);
  ++plan_->ops_seen;
  if (plan_->tripped) return true;  // sticky: the disk stays sick
  int& remaining = (*plan_).*counter;
  if (remaining <= 0) return false;
  if (--remaining == 0) {
    plan_->tripped = true;
    if (torn_out != nullptr) *torn_out = plan_->torn_bytes;
    return true;
  }
  return false;
}

Result<std::unique_ptr<WritableFile>>
FaultInjectingFileSystem::NewWritableFile(const std::string& path,
                                          bool truncate) {
  auto base = base_->NewWritableFile(path, truncate);
  if (!base.ok()) return base.status();
  return std::unique_ptr<WritableFile>(
      new FaultInjectingFile(std::move(base).value(), this));
}

Status FaultInjectingFileSystem::Rename(const std::string& from,
                                        const std::string& to) {
  if (ShouldFail(&FaultPlan::fail_rename_after, nullptr)) {
    return InjectedFault("rename");
  }
  return base_->Rename(from, to);
}

Status FaultInjectingFileSystem::Remove(const std::string& path) {
  if (ShouldFail(&FaultPlan::fail_remove_after, nullptr)) {
    return InjectedFault("unlink");
  }
  return base_->Remove(path);
}

Status FaultInjectingFileSystem::SyncDir(const std::string& dir) {
  if (ShouldFail(&FaultPlan::fail_sync_after, nullptr)) {
    return InjectedFault("fsync");
  }
  return base_->SyncDir(dir);
}

}  // namespace ecrpq
