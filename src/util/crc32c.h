// CRC32C (Castagnoli) checksums for on-disk record integrity.
//
// Software slicing-by-4 implementation — no hardware intrinsic
// dependency, deterministic across platforms. Used by the write-ahead
// log (src/wal/) to detect torn and corrupted records on recovery.
// Checksums are stored "masked" (RocksDB/LevelDB idiom) so that a CRC
// computed over bytes that themselves embed a CRC does not degenerate.

#ifndef ECRPQ_UTIL_CRC32C_H_
#define ECRPQ_UTIL_CRC32C_H_

#include <cstddef>
#include <cstdint>

namespace ecrpq {
namespace crc32c {

/// CRC32C of data[0, n), continuing from `init` (pass 0 for a fresh
/// checksum).
uint32_t Extend(uint32_t init, const void* data, size_t n);

inline uint32_t Value(const void* data, size_t n) {
  return Extend(0, data, n);
}

/// Bijective masking applied before storing a CRC inside checksummed
/// payloads: rotate and add a constant so crc(data ++ crc(data)) stays
/// discriminating.
inline uint32_t Mask(uint32_t crc) {
  static constexpr uint32_t kMaskDelta = 0xa282ead8u;
  return ((crc >> 15) | (crc << 17)) + kMaskDelta;
}

inline uint32_t Unmask(uint32_t masked) {
  static constexpr uint32_t kMaskDelta = 0xa282ead8u;
  uint32_t rot = masked - kMaskDelta;
  return (rot >> 17) | (rot << 15);
}

}  // namespace crc32c
}  // namespace ecrpq

#endif  // ECRPQ_UTIL_CRC32C_H_
