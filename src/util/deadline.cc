#include "util/deadline.h"

namespace ecrpq {

DeadlineMonitor& DeadlineMonitor::Shared() {
  // Leaked on purpose: executions may still be armed during static
  // destruction (detached serving threads), and the monitor thread must
  // not race a destructor. Reachable through the static pointer, so leak
  // checkers stay quiet.
  static DeadlineMonitor* monitor = new DeadlineMonitor();
  return *monitor;
}

uint64_t DeadlineMonitor::Arm(std::shared_ptr<CancellationToken> token,
                              Clock::time_point deadline) {
  std::unique_lock<std::mutex> lock(mutex_);
  if (!started_) {
    started_ = true;
    thread_ = std::thread([this] { Loop(); });
  }
  uint64_t id = next_id_++;
  heap_.push(Entry{deadline, id, token});
  armed_.insert(id);
  lock.unlock();
  cv_.notify_one();  // the new deadline may be the earliest
  return id;
}

void DeadlineMonitor::Disarm(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Tombstone only ids still sitting in the heap: a deadline that
  // already fired was popped by Loop (which erased it from armed_), and
  // inserting a tombstone for it would never be cleaned up again.
  if (armed_.erase(id) > 0) disarmed_.insert(id);
}

size_t DeadlineMonitor::pending_tombstones() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return disarmed_.size();
}

void DeadlineMonitor::Loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (!stop_) {
    // Drop tombstoned and expired entries at the top, tripping live
    // tokens whose time has come.
    while (!heap_.empty()) {
      const Entry& top = heap_.top();
      if (disarmed_.erase(top.id) > 0) {
        heap_.pop();
        continue;
      }
      if (top.deadline > Clock::now()) break;
      std::shared_ptr<CancellationToken> token = top.token.lock();
      armed_.erase(top.id);  // fired: a later Disarm must be a no-op
      heap_.pop();
      if (token != nullptr) token->Cancel();
    }
    if (heap_.empty()) {
      cv_.wait(lock, [this] { return stop_ || !heap_.empty(); });
    } else {
      // Copy, don't reference: wait_until re-reads the time_point after
      // reacquiring the lock, and an Arm() during the wait may have
      // reallocated the heap's storage out from under a reference.
      const Clock::time_point next = heap_.top().deadline;
      cv_.wait_until(lock, next);
    }
  }
}

DeadlineMonitor::~DeadlineMonitor() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

}  // namespace ecrpq
