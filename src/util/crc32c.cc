#include "util/crc32c.h"

#include <array>

namespace ecrpq {
namespace crc32c {

namespace {

// Reflected CRC32C polynomial.
constexpr uint32_t kPoly = 0x82f63b78u;

struct Tables {
  // table[k][b]: slicing-by-4 lookup tables.
  uint32_t t[4][256];
};

Tables BuildTables() {
  Tables tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int j = 0; j < 8; ++j) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    tables.t[0][i] = crc;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    tables.t[1][i] = (tables.t[0][i] >> 8) ^ tables.t[0][tables.t[0][i] & 0xff];
    tables.t[2][i] = (tables.t[1][i] >> 8) ^ tables.t[0][tables.t[1][i] & 0xff];
    tables.t[3][i] = (tables.t[2][i] >> 8) ^ tables.t[0][tables.t[2][i] & 0xff];
  }
  return tables;
}

const Tables& GetTables() {
  static const Tables tables = BuildTables();
  return tables;
}

}  // namespace

uint32_t Extend(uint32_t init, const void* data, size_t n) {
  const Tables& tb = GetTables();
  const uint8_t* p = static_cast<const uint8_t*>(data);
  uint32_t crc = init ^ 0xffffffffu;

  // Align to 4 bytes.
  while (n > 0 && (reinterpret_cast<uintptr_t>(p) & 3u) != 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xff];
    --n;
  }
  // Slice 4 bytes at a time (little-endian word loads; big-endian
  // builds take the bytewise tail loop below for everything).
#if !defined(__BYTE_ORDER__) || __BYTE_ORDER__ == __ORDER_LITTLE_ENDIAN__
  while (n >= 4) {
    uint32_t word;
    __builtin_memcpy(&word, p, 4);  // little-endian assumed (x86/arm64)
    crc ^= word;
    crc = tb.t[3][crc & 0xff] ^ tb.t[2][(crc >> 8) & 0xff] ^
          tb.t[1][(crc >> 16) & 0xff] ^ tb.t[0][(crc >> 24) & 0xff];
    p += 4;
    n -= 4;
  }
#endif
  while (n > 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xff];
    --n;
  }
  return crc ^ 0xffffffffu;
}

}  // namespace crc32c
}  // namespace ecrpq
