#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

namespace ecrpq {

int ThreadPool::DefaultParallelism() {
  static const int resolved = [] {
    int threads = 0;
    if (const char* env = std::getenv("ECRPQ_THREADS")) {
      threads = std::atoi(env);
    }
    if (threads <= 0) {
      threads = static_cast<int>(std::thread::hardware_concurrency());
    }
    return std::clamp(threads, 1, 256);
  }();
  return resolved;
}

ThreadPool::ThreadPool(int num_threads) {
  num_threads = std::max(num_threads, 0);
  workers_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(num_threads);
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

ThreadPool& ThreadPool::Shared() {
  static ThreadPool* pool = new ThreadPool(DefaultParallelism() - 1);
  return *pool;
}

void ThreadPool::Submit(std::function<void()> task) {
  std::size_t slot;
  {
    std::lock_guard<std::mutex> lock(sleep_mutex_);
    slot = next_++ % workers_.size();
    ++pending_;
  }
  {
    std::lock_guard<std::mutex> lock(workers_[slot]->mutex);
    workers_[slot]->tasks.push_back(std::move(task));
  }
  wake_cv_.notify_one();
}

bool ThreadPool::TryRunOne(int self) {
  // Own queue front first (LIFO locality does not matter at lane
  // granularity; FIFO keeps queries fair), then steal from the back of
  // the siblings' queues.
  const int n = static_cast<int>(workers_.size());
  for (int k = 0; k < n; ++k) {
    Worker& w = *workers_[(self + k) % n];
    std::function<void()> task;
    {
      std::lock_guard<std::mutex> lock(w.mutex);
      if (w.tasks.empty()) continue;
      if (k == 0) {
        task = std::move(w.tasks.front());
        w.tasks.pop_front();
      } else {
        task = std::move(w.tasks.back());
        w.tasks.pop_back();
      }
    }
    {
      std::lock_guard<std::mutex> lock(sleep_mutex_);
      --pending_;
    }
    task();
    return true;
  }
  return false;
}

void ThreadPool::WorkerLoop(int self) {
  while (true) {
    if (TryRunOne(self)) continue;
    std::unique_lock<std::mutex> lock(sleep_mutex_);
    wake_cv_.wait(lock, [this] { return stop_ || pending_ > 0; });
    if (stop_ && pending_ == 0) return;
  }
}

void ThreadPool::RunOnWorkers(int lanes, const std::function<void(int)>& fn) {
  const int extra =
      std::min(std::max(lanes - 1, 0), static_cast<int>(threads_.size()));
  if (extra == 0) {
    fn(0);
    return;
  }
  // Lane claim protocol. Each queued lane task is claimed exactly once:
  // by the worker that pops it (kWorker) or by the caller after its own
  // lane returns (kCaller — the caller "reclaims" lanes still stuck in
  // the queue behind other queries' tasks and runs them inline, where
  // they immediately drain whatever morsels remain). The caller then
  // waits only for worker-claimed lanes, so a query whose work is done
  // never blocks on pool backlog it does not own. A worker that pops a
  // reclaimed task finds the claim taken and returns without touching
  // `state` beyond the shared_ptr — safe even after the caller left.
  constexpr int kQueued = 0, kWorker = 1, kCaller = 2;
  struct RunState {
    std::function<void(int)> fn;
    std::vector<std::unique_ptr<std::atomic<int>>> claims;
    std::mutex mutex;
    std::condition_variable cv;
    int worker_done = 0;
  };
  auto state = std::make_shared<RunState>();
  state->fn = fn;  // copies the callable; its captured refs outlive the wait
  for (int i = 0; i < extra; ++i) {
    state->claims.push_back(std::make_unique<std::atomic<int>>(kQueued));
  }
  for (int lane = 1; lane <= extra; ++lane) {
    Submit([state, lane] {
      int expected = kQueued;
      if (!state->claims[lane - 1]->compare_exchange_strong(expected,
                                                            kWorker)) {
        return;  // reclaimed by the caller; the run may already be over
      }
      state->fn(lane);
      // Notify under the mutex: the waiter cannot wake, observe the
      // count, and finish before this lane releases the lock.
      std::lock_guard<std::mutex> lock(state->mutex);
      ++state->worker_done;
      state->cv.notify_one();
    });
  }
  fn(0);
  int worker_claimed = 0;
  for (int i = 0; i < extra; ++i) {
    int expected = kQueued;
    if (state->claims[i]->compare_exchange_strong(expected, kCaller)) {
      state->fn(i + 1);  // run the reclaimed lane inline
    } else {
      ++worker_claimed;
    }
  }
  std::unique_lock<std::mutex> lock(state->mutex);
  state->cv.wait(lock, [&state, worker_claimed] {
    return state->worker_done == worker_claimed;
  });
}

}  // namespace ecrpq
