// Cooperative cancellation for query executions.
//
// One CancellationToken is shared per execution (EvalOptions::cancellation
// / ExecuteOptions::cancellation). Engine workers poll cancelled() at
// morsel/config granularity and unwind promptly once any party — an
// external killer, a worker hitting an error or the max_configs budget,
// or the result emitter after a sink-requested stop (limit / exists) —
// calls Cancel(). A tripped token stays tripped: use a fresh one per
// execution.

#ifndef ECRPQ_UTIL_CANCELLATION_H_
#define ECRPQ_UTIL_CANCELLATION_H_

#include <atomic>

namespace ecrpq {

class CancellationToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

}  // namespace ecrpq

#endif  // ECRPQ_UTIL_CANCELLATION_H_
