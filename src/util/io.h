// File-system abstraction for the durable write path (src/wal/).
//
// The WAL and checkpoint writers never touch POSIX directly: every
// append, fsync, rename, and unlink goes through a FileSystem*. The
// production implementation (PosixFileSystem) is a thin syscall
// wrapper; tests swap in FaultInjectingFileSystem, which fails,
// short-writes, or tears exactly the Nth operation of a plan — the
// deterministic crash-point harness behind tests/durability_test.cc.
//
// Error model: Status (util/status.h). I/O failures map to
// StatusCode::kUnavailable with the errno text in the message, so the
// serving layer can distinguish "disk is sick" (degraded mode) from
// logical errors.

#ifndef ECRPQ_UTIL_IO_H_
#define ECRPQ_UTIL_IO_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/status.h"

namespace ecrpq {

/// An append-only file handle. Not thread-safe; callers serialize.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends all of `data` or fails. A failure may leave a PARTIAL
  /// prefix of `data` on disk (torn write) — exactly what recovery
  /// must tolerate.
  virtual Status Append(const void* data, size_t n) = 0;

  /// fsync: blocks until everything appended so far is durable.
  virtual Status Sync() = 0;

  virtual Status Close() = 0;
};

/// Minimal file-system surface used by WAL + checkpoint code.
class FileSystem {
 public:
  virtual ~FileSystem() = default;

  /// Opens `path` for appending, creating it if missing. `truncate`
  /// discards existing content first.
  virtual Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) = 0;

  /// Reads the whole file into `out`.
  virtual Status ReadFile(const std::string& path, std::string* out) = 0;

  /// Atomic rename (the checkpoint publish step).
  virtual Status Rename(const std::string& from, const std::string& to) = 0;

  virtual Status Remove(const std::string& path) = 0;

  /// Truncates `path` to `size` bytes (recovery chops torn WAL tails).
  virtual Status Truncate(const std::string& path, uint64_t size) = 0;

  /// Names (not paths) of directory entries, unsorted; "." and ".."
  /// excluded.
  virtual Result<std::vector<std::string>> ListDir(const std::string& dir) = 0;

  /// mkdir -p for one level; ok if the directory already exists.
  virtual Status CreateDir(const std::string& dir) = 0;

  /// fsyncs the directory itself so renames/creates/unlinks in it are
  /// durable.
  virtual Status SyncDir(const std::string& dir) = 0;

  virtual bool FileExists(const std::string& path) = 0;

  virtual Result<uint64_t> FileSize(const std::string& path) = 0;

  /// Takes an exclusive advisory lock (flock LOCK_EX | LOCK_NB) on
  /// `path`, creating the file if needed. Fails with
  /// kFailedPrecondition when another process holds it. The returned
  /// fd stays locked until ReleaseLock.
  virtual Result<int> LockFile(const std::string& path) = 0;
  virtual void ReleaseLock(int fd) = 0;
};

/// The real thing. Stateless; use the shared instance.
FileSystem* PosixFileSystem();

/// Deterministic fault plan shared between a test and the
/// FaultInjectingFileSystem it injected. Counters tick down on each
/// matching operation; when one hits zero the operation fails — and
/// KEEPS failing (sticky, like a full disk) until Reset(). A torn
/// write persists `torn_bytes` of the failing append before erroring.
struct FaultPlan {
  std::mutex mutex;

  /// Fail the Nth append from now (1 = next). 0 = disabled.
  int fail_append_after = 0;
  /// Bytes of the failing append that still reach the file (torn
  /// write). Negative = persist all but one byte (short write).
  int torn_bytes = 0;

  int fail_sync_after = 0;    // Nth Sync (file or dir) from now
  int fail_rename_after = 0;  // Nth Rename from now
  int fail_remove_after = 0;  // Nth Remove from now

  /// Counts every append/sync/rename/remove that went through while
  /// the plan was attached (for building crash-point matrices: run
  /// once cleanly to count ops, then iterate failing each one).
  int ops_seen = 0;

  bool tripped = false;  // a fault fired and is now sticky

  void Reset() {
    std::lock_guard<std::mutex> lock(mutex);
    fail_append_after = 0;
    torn_bytes = 0;
    fail_sync_after = 0;
    fail_rename_after = 0;
    fail_remove_after = 0;
    tripped = false;
  }
};

/// Wraps a base FileSystem and injects failures per a shared
/// FaultPlan. Reads, listings, and locks pass through untouched —
/// faults model the write path of a sick disk.
class FaultInjectingFileSystem : public FileSystem {
 public:
  FaultInjectingFileSystem(FileSystem* base, std::shared_ptr<FaultPlan> plan)
      : base_(base), plan_(std::move(plan)) {}

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, bool truncate) override;
  Status ReadFile(const std::string& path, std::string* out) override {
    return base_->ReadFile(path, out);
  }
  Status Rename(const std::string& from, const std::string& to) override;
  Status Remove(const std::string& path) override;
  Status Truncate(const std::string& path, uint64_t size) override {
    return base_->Truncate(path, size);
  }
  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    return base_->ListDir(dir);
  }
  Status CreateDir(const std::string& dir) override {
    return base_->CreateDir(dir);
  }
  Status SyncDir(const std::string& dir) override;
  bool FileExists(const std::string& path) override {
    return base_->FileExists(path);
  }
  Result<uint64_t> FileSize(const std::string& path) override {
    return base_->FileSize(path);
  }
  Result<int> LockFile(const std::string& path) override {
    return base_->LockFile(path);
  }
  void ReleaseLock(int fd) override { base_->ReleaseLock(fd); }

  /// Returns true when this operation should fail (decrements the
  /// matching countdown; sticky after tripping). `torn_out` receives
  /// the torn-bytes setting for appends. Public for the wrapped file
  /// handles (implementation detail, not an API).
  bool ShouldFail(int FaultPlan::* counter, int* torn_out);

 private:
  FileSystem* base_;
  std::shared_ptr<FaultPlan> plan_;
};

}  // namespace ecrpq

#endif  // ECRPQ_UTIL_IO_H_
