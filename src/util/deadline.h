// Deadline enforcement for query executions.
//
// Engines already stop promptly when their CancellationToken trips (see
// util/cancellation.h); what a deadline needs is someone to trip the
// token when the clock runs out. DeadlineMonitor is that someone: one
// shared background thread sleeping until the earliest armed deadline,
// tripping expired tokens, and going back to sleep. Arming is O(log n)
// and the thread is only started on first use, so executions without
// deadlines (the whole pre-serving library) never pay for it.
//
//   auto token = std::make_shared<CancellationToken>();
//   {
//     DeadlineGuard guard(token, Clock::now() + 50ms);
//     ... run the engine; it returns Status::Cancelled if the token
//         tripped mid-search ...
//   }  // disarmed; a finished execution never trips a recycled slot
//
// Tokens are held weakly: an execution that finishes (and drops its
// token) before the deadline costs the monitor nothing but a stale heap
// entry that is discarded on expiry.

#ifndef ECRPQ_UTIL_DEADLINE_H_
#define ECRPQ_UTIL_DEADLINE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <unordered_set>
#include <vector>

#include "util/cancellation.h"

namespace ecrpq {

class DeadlineMonitor {
 public:
  using Clock = std::chrono::steady_clock;

  /// The process-wide monitor (lazily constructed; its thread starts on
  /// the first Arm).
  static DeadlineMonitor& Shared();

  /// Trips `token` at `deadline` unless disarmed first. Returns an id
  /// for Disarm. Thread-safe.
  uint64_t Arm(std::shared_ptr<CancellationToken> token,
               Clock::time_point deadline);

  /// Cancels a pending Arm. Safe to call after the deadline fired (no-op)
  /// and with an id the monitor already discarded.
  void Disarm(uint64_t id);

  /// Tombstones awaiting lazy removal from the heap (tests: bounded by
  /// the disarmed-but-not-yet-popped count, never by fired deadlines).
  size_t pending_tombstones() const;

  ~DeadlineMonitor();

 private:
  DeadlineMonitor() = default;
  void Loop();

  struct Entry {
    Clock::time_point deadline;
    uint64_t id;
    std::weak_ptr<CancellationToken> token;
    bool operator>(const Entry& other) const {
      return deadline > other.deadline;
    }
  };

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap_;
  std::unordered_set<uint64_t> armed_;     // ids currently in heap_
  std::unordered_set<uint64_t> disarmed_;  // lazily removed from heap_
  uint64_t next_id_ = 1;
  bool stop_ = false;
  bool started_ = false;
  std::thread thread_;
};

/// RAII arm/disarm around one execution. A null token or an unset
/// deadline arms nothing.
class DeadlineGuard {
 public:
  DeadlineGuard() = default;
  DeadlineGuard(std::shared_ptr<CancellationToken> token,
                DeadlineMonitor::Clock::time_point deadline) {
    if (token != nullptr) {
      id_ = DeadlineMonitor::Shared().Arm(std::move(token), deadline);
    }
  }
  ~DeadlineGuard() { Disarm(); }
  DeadlineGuard(const DeadlineGuard&) = delete;
  DeadlineGuard& operator=(const DeadlineGuard&) = delete;
  DeadlineGuard(DeadlineGuard&& other) noexcept : id_(other.id_) {
    other.id_ = 0;
  }
  DeadlineGuard& operator=(DeadlineGuard&& other) noexcept {
    if (this != &other) {
      Disarm();
      id_ = other.id_;
      other.id_ = 0;
    }
    return *this;
  }

 private:
  void Disarm() {
    if (id_ != 0) DeadlineMonitor::Shared().Disarm(id_);
    id_ = 0;
  }

  uint64_t id_ = 0;
};

}  // namespace ecrpq

#endif  // ECRPQ_UTIL_DEADLINE_H_
