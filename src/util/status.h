// Status / Result error model for the ecrpq library.
//
// Public APIs that can fail return Status or Result<T> instead of throwing
// exceptions (Google C++ style; RocksDB idiom). Internal invariant violations
// use ECRPQ_DCHECK and abort in debug builds.

#ifndef ECRPQ_UTIL_STATUS_H_
#define ECRPQ_UTIL_STATUS_H_

#include <cassert>
#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>
#include <utility>

namespace ecrpq {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   ///< malformed input (parse errors, arity mismatches)
  kNotFound,          ///< unknown label / node / variable
  kFailedPrecondition,///< API misuse (e.g. evaluating an unvalidated query)
  kResourceExhausted, ///< configured search/size limit exceeded
  kUnimplemented,     ///< feature outside the decidable/implemented fragment
  kInternal,          ///< invariant violation escaped a release build
  kCancelled,         ///< execution stopped via a CancellationToken
  kUnavailable,       ///< transient infrastructure failure (I/O error,
                      ///< degraded durability, connect refused) — retryable
};

/// A cheap, value-semantic success-or-error carrier.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string m) {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status NotFound(std::string m) {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status FailedPrecondition(std::string m) {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status ResourceExhausted(std::string m) {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status Unimplemented(std::string m) {
    return Status(StatusCode::kUnimplemented, std::move(m));
  }
  static Status Internal(std::string m) {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status Cancelled(std::string m) {
    return Status(StatusCode::kCancelled, std::move(m));
  }
  static Status Unavailable(std::string m) {
    return Status(StatusCode::kUnavailable, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Human-readable one-line rendering, e.g. "InvalidArgument: bad regex".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Use `ok()` before `value()`.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}          // NOLINT(implicit)
  Result(Status status) : status_(std::move(status)) {}  // NOLINT(implicit)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  /// value() if ok, else aborts with the status message. For tests/examples.
  const T& ValueOrDie() const& {
    if (!ok()) {
      std::cerr << "Result::ValueOrDie on error: " << status_.ToString()
                << std::endl;
      std::abort();
    }
    return *value_;
  }
  T&& ValueOrDie() && {
    if (!ok()) {
      std::cerr << "Result::ValueOrDie on error: " << status_.ToString()
                << std::endl;
      std::abort();
    }
    return std::move(*value_);
  }

 private:
  std::optional<T> value_;
  Status status_;
};

/// Propagate a non-ok Status out of the current function.
#define ECRPQ_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::ecrpq::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

/// Assign from a Result<T>, propagating errors.
#define ECRPQ_ASSIGN_OR_RETURN(lhs, rexpr)     \
  auto _res_##__LINE__ = (rexpr);              \
  if (!_res_##__LINE__.ok()) return _res_##__LINE__.status(); \
  lhs = std::move(_res_##__LINE__).value();

#ifndef NDEBUG
#define ECRPQ_DCHECK(cond)                                                   \
  do {                                                                       \
    if (!(cond)) {                                                           \
      std::cerr << "ECRPQ_DCHECK failed at " << __FILE__ << ":" << __LINE__  \
                << ": " #cond << std::endl;                                  \
      std::abort();                                                          \
    }                                                                        \
  } while (0)
#else
#define ECRPQ_DCHECK(cond) \
  do {                     \
  } while (0)
#endif

}  // namespace ecrpq

#endif  // ECRPQ_UTIL_STATUS_H_
