// Admission control for the serving layer: a bounded in-flight query
// semaphore with a bounded wait queue and explicit load-shedding.
//
// Every EXECUTE passes TryAdmit() on the I/O thread before it is
// dispatched: up to `max_in_flight` admitted queries may run on executor
// threads and up to `max_queue` more may sit admitted-but-waiting behind
// them. A request beyond both bounds is rejected *immediately* with an
// OVERLOADED reply — the server never queues unboundedly and never drops
// a request silently. Release() frees the slot when the execution
// finishes (success, error, cancel, or deadline all release).

#ifndef ECRPQ_SERVER_ADMISSION_H_
#define ECRPQ_SERVER_ADMISSION_H_

#include <algorithm>
#include <atomic>
#include <cstdint>

namespace ecrpq {

class AdmissionController {
 public:
  AdmissionController(int max_in_flight, int max_queue)
      : capacity_(std::max(1, max_in_flight) + std::max(0, max_queue)),
        max_in_flight_(std::max(1, max_in_flight)),
        max_queue_(std::max(0, max_queue)) {}

  /// Claims a slot; false = shed this request (reply OVERLOADED).
  bool TryAdmit() {
    int current = admitted_.load(std::memory_order_relaxed);
    while (true) {
      if (current >= capacity_) {
        rejected_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      if (admitted_.compare_exchange_weak(current, current + 1,
                                          std::memory_order_acq_rel)) {
        total_admitted_.fetch_add(1, std::memory_order_relaxed);
        int peak = peak_.load(std::memory_order_relaxed);
        while (current + 1 > peak &&
               !peak_.compare_exchange_weak(peak, current + 1,
                                            std::memory_order_relaxed)) {
        }
        return true;
      }
    }
  }

  void Release() { admitted_.fetch_sub(1, std::memory_order_acq_rel); }

  int admitted() const { return admitted_.load(std::memory_order_relaxed); }
  int capacity() const { return capacity_; }
  int max_in_flight() const { return max_in_flight_; }
  int max_queue() const { return max_queue_; }
  uint64_t total_admitted() const {
    return total_admitted_.load(std::memory_order_relaxed);
  }
  uint64_t total_rejected() const {
    return rejected_.load(std::memory_order_relaxed);
  }
  int peak() const { return peak_.load(std::memory_order_relaxed); }

 private:
  const int capacity_;  // max_in_flight + max_queue
  const int max_in_flight_;
  const int max_queue_;
  std::atomic<int> admitted_{0};
  std::atomic<int> peak_{0};
  std::atomic<uint64_t> total_admitted_{0};
  std::atomic<uint64_t> rejected_{0};
};

}  // namespace ecrpq

#endif  // ECRPQ_SERVER_ADMISSION_H_
