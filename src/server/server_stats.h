// Serving-layer observability: lock-free request counters and a
// log-bucketed latency histogram cheap enough to record on every request.
//
// Counters are plain relaxed atomics — they are monotonic tallies, not
// synchronization. The histogram keeps one bucket per power of two of
// nanoseconds (64 buckets cover any latency), so recording is an
// increment and percentile queries walk 64 slots; the geometric-midpoint
// estimate is within ~41% of the true value, plenty for p50/p99 tail
// tracking across PRs. Rendered by the STATS request handler and the
// periodic server log line.

#ifndef ECRPQ_SERVER_SERVER_STATS_H_
#define ECRPQ_SERVER_SERVER_STATS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace ecrpq {

class LatencyHistogram {
 public:
  void Record(uint64_t nanos) {
    int bucket = nanos == 0 ? 0 : 64 - __builtin_clzll(nanos);
    if (bucket > 63) bucket = 63;
    buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
    total_ns_.fetch_add(nanos, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }

  /// Mean latency in nanoseconds (0 when empty).
  double MeanNs() const {
    uint64_t n = count();
    return n == 0 ? 0.0
                  : static_cast<double>(
                        total_ns_.load(std::memory_order_relaxed)) /
                        static_cast<double>(n);
  }

  /// Approximate percentile (p in [0, 100]) as the geometric midpoint of
  /// the bucket containing the p-th sample.
  double PercentileNs(double p) const;

 private:
  std::array<std::atomic<uint64_t>, 64> buckets_{};
  std::atomic<uint64_t> total_ns_{0};
  std::atomic<uint64_t> count_{0};
};

/// One process-wide tally of everything the server did. All fields are
/// safe to read while the server runs.
struct ServerStats {
  std::atomic<uint64_t> connections_accepted{0};
  std::atomic<uint64_t> connections_active{0};
  std::atomic<uint64_t> frames_received{0};
  std::atomic<uint64_t> frames_malformed{0};
  std::atomic<uint64_t> prepares{0};
  std::atomic<uint64_t> executes_ok{0};
  std::atomic<uint64_t> executes_error{0};
  std::atomic<uint64_t> executes_cancelled{0};   ///< token / CANCEL request
  std::atomic<uint64_t> executes_deadline{0};    ///< cancelled by deadline
  std::atomic<uint64_t> executes_overloaded{0};  ///< shed by admission
  std::atomic<uint64_t> fetches{0};
  std::atomic<uint64_t> mutations{0};
  std::atomic<uint64_t> mutations_rejected{0};  ///< durable write path down
  std::atomic<uint64_t> cancels{0};
  std::atomic<uint64_t> rows_returned{0};

  LatencyHistogram execute_latency;  ///< receipt → reply enqueued, ns
};

}  // namespace ecrpq

#endif  // ECRPQ_SERVER_SERVER_STATS_H_
