// Wire protocol of ecrpq-serverd: length-prefixed binary frames over TCP.
//
// Frame layout (all integers little-endian, fixed width):
//
//   u32 body_len | u8 type | u32 request_id | payload[body_len - 5]
//
// body_len counts everything after the length prefix and must lie in
// [kMinFrameBody, kMaxFrameBody]; a length outside that range is a
// protocol violation and the server closes the connection (an attacker
// lying about the length must not make the server buffer 4 GiB). A
// *decodable* frame with an unknown type or a malformed payload is
// answered with an ERROR reply and the connection survives — only
// unframeable byte streams are fatal.
//
// request_id is chosen by the client and echoed verbatim in the reply, so
// clients may pipeline requests and send out-of-band CANCELs while an
// EXECUTE is in flight. The conversation starts with a versioned
// handshake: the first frame must be HELLO carrying the protocol magic
// and version; anything else (or a version mismatch) is rejected and the
// connection closed.
//
// Strings are u32 length + raw bytes. Node values travel as node *names*
// (the client does not share the server's NodeId space).

#ifndef ECRPQ_SERVER_PROTOCOL_H_
#define ECRPQ_SERVER_PROTOCOL_H_

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace ecrpq {

// ---- framing constants ------------------------------------------------------

inline constexpr uint32_t kProtocolMagic = 0x45435251;  // "ECRQ"
inline constexpr uint16_t kProtocolVersion = 1;
inline constexpr uint32_t kMinFrameBody = 5;  // type + request_id
inline constexpr uint32_t kMaxFrameBody = 16u * 1024 * 1024;

enum class MsgType : uint8_t {
  // requests (client → server)
  kHello = 0x01,
  kPrepare = 0x02,
  kExecute = 0x03,
  kFetch = 0x04,
  kCancel = 0x05,
  kMutate = 0x06,
  kStats = 0x07,
  kCloseStmt = 0x08,
  kCloseCursor = 0x09,
  // replies (server → client)
  kHelloOk = 0x81,
  kPrepareOk = 0x82,
  kRows = 0x83,
  kError = 0x84,
  kOverloaded = 0x85,
  kStatsOk = 0x86,
  kMutateOk = 0x87,
  kOk = 0x88,
};

/// True for type values this protocol version defines.
bool IsKnownMsgType(uint8_t type);

/// One decoded frame: type, correlation id, and the raw payload bytes.
struct Frame {
  MsgType type = MsgType::kError;
  uint32_t request_id = 0;
  std::vector<uint8_t> payload;
};

/// Appends the full wire encoding of `frame` (length prefix included).
void EncodeFrame(const Frame& frame, std::vector<uint8_t>* out);

/// Attempts to extract one frame from buffer[offset...]. Returns:
///   kOk                 — frame filled, *offset advanced past it
///   kResourceExhausted  — body_len outside [kMin,kMax]: fatal, close
///   kFailedPrecondition — incomplete; read more bytes and retry
Status DecodeFrame(const std::vector<uint8_t>& buffer, size_t* offset,
                   Frame* frame);

// ---- payload primitives -----------------------------------------------------
//
// Writer appends to a byte vector; Reader consumes with bounds checking
// and reports malformed payloads (truncation, oversized strings) as one
// sticky error the message decoder surfaces.

class WireWriter {
 public:
  explicit WireWriter(std::vector<uint8_t>* out) : out_(out) {}
  void U8(uint8_t v) { out_->push_back(v); }
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  void Str(const std::string& s);

 private:
  std::vector<uint8_t>* out_;
};

class WireReader {
 public:
  WireReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  uint8_t U8();
  uint16_t U16();
  uint32_t U32();
  uint64_t U64();
  std::string Str();

  /// True once every byte was consumed and no read ran past the end.
  bool Complete() const { return ok_ && pos_ == size_; }
  bool ok() const { return ok_; }

 private:
  bool Need(size_t n);
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// ---- typed messages ---------------------------------------------------------

struct HelloRequest {
  uint32_t magic = kProtocolMagic;
  uint16_t version = kProtocolVersion;
};

struct PrepareRequest {
  std::string text;
};

struct ExecuteRequest {
  uint32_t stmt_id = 0;
  uint32_t deadline_ms = 0;  ///< 0 = no deadline
  uint64_t row_limit = 0;    ///< 0 = unlimited (row budget)
  uint32_t page_size = 0;    ///< rows per ROWS page; 0 = server default
  uint8_t flags = 0;         ///< kExecFlagBypassCache
  std::vector<std::pair<std::string, std::string>> params;
};
inline constexpr uint8_t kExecFlagBypassCache = 0x01;

struct FetchRequest {
  uint64_t cursor_id = 0;
  uint32_t max_rows = 0;  ///< 0 = server default page size
};

struct CancelRequest {
  uint32_t target_request_id = 0;  ///< 0 = every in-flight execute
};

struct MutateRequest {
  /// Edges to append: (from, label, to) node/label names. Unknown node
  /// names are created.
  std::vector<std::array<std::string, 3>> edges;
};

struct HelloReply {
  uint16_t version = kProtocolVersion;
  std::string server;
};

struct PrepareReply {
  uint32_t stmt_id = 0;
  std::vector<std::string> param_names;
};

struct RowsReply {
  uint64_t cursor_id = 0;  ///< 0 = no cursor (result fit in this page)
  uint8_t flags = 0;       ///< kRowsFlag* bits
  uint16_t arity = 0;
  std::vector<std::vector<std::string>> rows;
};
inline constexpr uint8_t kRowsFlagDone = 0x01;
inline constexpr uint8_t kRowsFlagFromCache = 0x02;
/// The server's max_result_rows ceiling stopped the execution: the rows
/// streamed through this cursor are a prefix of the full answer set.
inline constexpr uint8_t kRowsFlagTruncated = 0x04;

struct ErrorReply {
  uint32_t code = 0;  ///< StatusCode
  std::string message;
};

struct OverloadedReply {
  uint32_t in_flight = 0;
  uint32_t capacity = 0;
  std::string message;
};

struct StatsReply {
  std::string text;  ///< key=value lines
};

struct MutateReply {
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
};

// Encode fills a payload byte vector; Decode parses one and returns
// InvalidArgument on truncated/trailing/oversized payloads.
void Encode(const HelloRequest& m, std::vector<uint8_t>* out);
void Encode(const PrepareRequest& m, std::vector<uint8_t>* out);
void Encode(const ExecuteRequest& m, std::vector<uint8_t>* out);
void Encode(const FetchRequest& m, std::vector<uint8_t>* out);
void Encode(const CancelRequest& m, std::vector<uint8_t>* out);
void Encode(const MutateRequest& m, std::vector<uint8_t>* out);
void Encode(const HelloReply& m, std::vector<uint8_t>* out);
void Encode(const PrepareReply& m, std::vector<uint8_t>* out);
void Encode(const RowsReply& m, std::vector<uint8_t>* out);
void Encode(const ErrorReply& m, std::vector<uint8_t>* out);
void Encode(const OverloadedReply& m, std::vector<uint8_t>* out);
void Encode(const StatsReply& m, std::vector<uint8_t>* out);
void Encode(const MutateReply& m, std::vector<uint8_t>* out);

Status Decode(const std::vector<uint8_t>& payload, HelloRequest* m);
Status Decode(const std::vector<uint8_t>& payload, PrepareRequest* m);
Status Decode(const std::vector<uint8_t>& payload, ExecuteRequest* m);
Status Decode(const std::vector<uint8_t>& payload, FetchRequest* m);
Status Decode(const std::vector<uint8_t>& payload, CancelRequest* m);
Status Decode(const std::vector<uint8_t>& payload, MutateRequest* m);
Status Decode(const std::vector<uint8_t>& payload, HelloReply* m);
Status Decode(const std::vector<uint8_t>& payload, PrepareReply* m);
Status Decode(const std::vector<uint8_t>& payload, RowsReply* m);
Status Decode(const std::vector<uint8_t>& payload, ErrorReply* m);
Status Decode(const std::vector<uint8_t>& payload, OverloadedReply* m);
Status Decode(const std::vector<uint8_t>& payload, StatsReply* m);
Status Decode(const std::vector<uint8_t>& payload, MutateReply* m);

/// Builds a ready-to-send frame from a typed message.
template <typename Msg>
Frame MakeFrame(MsgType type, uint32_t request_id, const Msg& msg) {
  Frame frame;
  frame.type = type;
  frame.request_id = request_id;
  Encode(msg, &frame.payload);
  return frame;
}

}  // namespace ecrpq

#endif  // ECRPQ_SERVER_PROTOCOL_H_
