#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace ecrpq {

bool Client::IsOverloaded(const Status& status) {
  return status.code() == StatusCode::kResourceExhausted &&
         status.message().rfind("OVERLOADED", 0) == 0;
}

void Client::BackoffSleep(int attempt) {
  int64_t delay = retry_policy_.base_backoff_ms;
  for (int i = 0; i < attempt && delay < retry_policy_.max_backoff_ms; ++i) {
    delay *= 2;
  }
  if (delay > retry_policy_.max_backoff_ms) delay = retry_policy_.max_backoff_ms;
  // Deterministic jitter in [0, delay/2]: a plain LCG so clients with
  // different seeds decorrelate without touching a global RNG.
  jitter_state_ = jitter_state_ * 6364136223846793005ull + 1442695040888963407ull;
  int64_t jitter = delay > 1 ? static_cast<int64_t>(jitter_state_ >> 33) %
                                   (delay / 2 + 1)
                             : 0;
  std::this_thread::sleep_for(std::chrono::milliseconds(delay + jitter));
}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) close(fd_);
  fd_ = -1;
  in_.clear();
  in_offset_ = 0;
  pending_.clear();
}

Status Client::ConnectRaw(const std::string& host, int port) {
  if (fd_ >= 0) return Status::FailedPrecondition("already connected");
  fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) return Status::Internal("socket: " + std::string(strerror(errno)));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad host address " + host);
  }
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    // Unavailable, not Internal: the server simply isn't there (yet),
    // which is the retryable case — e.g. a client racing serverd
    // startup or restart-after-crash.
    Status status =
        Status::Unavailable("connect: " + std::string(strerror(errno)));
    Close();
    return status;
  }
  int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

Status Client::Connect(const std::string& host, int port) {
  Status status;
  for (int attempt = 0;; ++attempt) {
    status = ConnectRaw(host, port);
    if (status.ok()) break;
    if (status.code() != StatusCode::kUnavailable ||
        attempt >= retry_policy_.retries) {
      return status;
    }
    BackoffSleep(attempt);
  }
  uint32_t id = NextRequestId();
  ECRPQ_RETURN_IF_ERROR(
      SendFrame(MakeFrame(MsgType::kHello, id, HelloRequest{})));
  Frame reply;
  ECRPQ_RETURN_IF_ERROR(WaitReply(id, &reply));
  ECRPQ_RETURN_IF_ERROR(ExpectType(reply, MsgType::kHelloOk));
  HelloReply hello;
  return Decode(reply.payload, &hello);
}

// ---- raw I/O ----------------------------------------------------------------

Status Client::SendRaw(const void* data, size_t size) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  const uint8_t* p = static_cast<const uint8_t*>(data);
  while (size > 0) {
    ssize_t n = send(fd_, p, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("send: " + std::string(strerror(errno)));
    }
    p += n;
    size -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status Client::SendFrame(const Frame& frame) {
  std::vector<uint8_t> wire;
  EncodeFrame(frame, &wire);
  return SendRaw(wire.data(), wire.size());
}

Status Client::ReadFrame(Frame* frame) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  while (true) {
    Status status = DecodeFrame(in_, &in_offset_, frame);
    if (status.ok()) {
      if (in_offset_ == in_.size()) {
        in_.clear();
        in_offset_ = 0;
      }
      return status;
    }
    if (status.code() != StatusCode::kFailedPrecondition) return status;
    uint8_t buf[65536];
    ssize_t n = recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) return Status::Internal("connection closed by server");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal("recv: " + std::string(strerror(errno)));
    }
    in_.insert(in_.end(), buf, buf + n);
  }
}

Status Client::WaitReply(uint32_t request_id, Frame* frame) {
  auto it = pending_.find(request_id);
  if (it != pending_.end()) {
    *frame = std::move(it->second);
    pending_.erase(it);
    return Status::OK();
  }
  while (true) {
    Frame next;
    ECRPQ_RETURN_IF_ERROR(ReadFrame(&next));
    if (next.request_id == request_id) {
      *frame = std::move(next);
      return Status::OK();
    }
    pending_[next.request_id] = std::move(next);
  }
}

Status Client::ExpectType(const Frame& frame, MsgType expected) const {
  if (frame.type == expected) return Status::OK();
  if (frame.type == MsgType::kError) {
    ErrorReply err;
    Status decode = Decode(frame.payload, &err);
    if (!decode.ok()) return decode;
    return Status(static_cast<StatusCode>(err.code), err.message);
  }
  if (frame.type == MsgType::kOverloaded) {
    OverloadedReply shed;
    Status decode = Decode(frame.payload, &shed);
    if (!decode.ok()) return decode;
    return Status::ResourceExhausted("OVERLOADED: " + shed.message);
  }
  return Status::Internal("unexpected reply type " +
                          std::to_string(static_cast<int>(frame.type)));
}

// ---- requests ---------------------------------------------------------------

Status Client::Prepare(const std::string& text, uint32_t* stmt_id) {
  uint32_t id = NextRequestId();
  PrepareRequest req;
  req.text = text;
  ECRPQ_RETURN_IF_ERROR(SendFrame(MakeFrame(MsgType::kPrepare, id, req)));
  Frame reply;
  ECRPQ_RETURN_IF_ERROR(WaitReply(id, &reply));
  ECRPQ_RETURN_IF_ERROR(ExpectType(reply, MsgType::kPrepareOk));
  PrepareReply ok;
  ECRPQ_RETURN_IF_ERROR(Decode(reply.payload, &ok));
  *stmt_id = ok.stmt_id;
  return Status::OK();
}

Status Client::SendExecute(uint32_t stmt_id, const ExecuteSpec& spec,
                           uint32_t* request_id) {
  uint32_t id = NextRequestId();
  ExecuteRequest req;
  req.stmt_id = stmt_id;
  req.deadline_ms = spec.deadline_ms;
  req.row_limit = spec.row_limit;
  req.page_size = spec.page_size;
  req.flags = spec.bypass_cache ? kExecFlagBypassCache : 0;
  req.params = spec.params;
  ECRPQ_RETURN_IF_ERROR(SendFrame(MakeFrame(MsgType::kExecute, id, req)));
  *request_id = id;
  return Status::OK();
}

Status Client::DecodeRows(const Frame& frame, RowsPage* page) const {
  RowsReply rows;
  ECRPQ_RETURN_IF_ERROR(Decode(frame.payload, &rows));
  page->cursor_id = rows.cursor_id;
  page->done = (rows.flags & kRowsFlagDone) != 0;
  page->from_cache = (rows.flags & kRowsFlagFromCache) != 0;
  page->truncated = (rows.flags & kRowsFlagTruncated) != 0;
  page->arity = rows.arity;
  page->rows = std::move(rows.rows);
  return Status::OK();
}

Status Client::AwaitRows(uint32_t request_id, RowsPage* page) {
  Frame reply;
  ECRPQ_RETURN_IF_ERROR(WaitReply(request_id, &reply));
  ECRPQ_RETURN_IF_ERROR(ExpectType(reply, MsgType::kRows));
  return DecodeRows(reply, page);
}

Status Client::Execute(uint32_t stmt_id, const ExecuteSpec& spec,
                       RowsPage* page) {
  // OVERLOADED is shed by admission control before any execution
  // starts, so resending is always safe; other errors are terminal.
  for (int attempt = 0;; ++attempt) {
    uint32_t id = 0;
    ECRPQ_RETURN_IF_ERROR(SendExecute(stmt_id, spec, &id));
    Status status = AwaitRows(id, page);
    if (!IsOverloaded(status) || attempt >= retry_policy_.retries) {
      return status;
    }
    BackoffSleep(attempt);
  }
}

Status Client::Fetch(uint64_t cursor_id, uint32_t max_rows, RowsPage* page) {
  uint32_t id = NextRequestId();
  FetchRequest req;
  req.cursor_id = cursor_id;
  req.max_rows = max_rows;
  ECRPQ_RETURN_IF_ERROR(SendFrame(MakeFrame(MsgType::kFetch, id, req)));
  Frame reply;
  ECRPQ_RETURN_IF_ERROR(WaitReply(id, &reply));
  ECRPQ_RETURN_IF_ERROR(ExpectType(reply, MsgType::kRows));
  return DecodeRows(reply, page);
}

Status Client::Cancel(uint32_t target_request_id) {
  uint32_t id = NextRequestId();
  CancelRequest req;
  req.target_request_id = target_request_id;
  ECRPQ_RETURN_IF_ERROR(SendFrame(MakeFrame(MsgType::kCancel, id, req)));
  Frame reply;
  ECRPQ_RETURN_IF_ERROR(WaitReply(id, &reply));
  return ExpectType(reply, MsgType::kOk);
}

Status Client::Mutate(const std::vector<std::array<std::string, 3>>& edges,
                      uint64_t* num_nodes, uint64_t* num_edges) {
  for (int attempt = 0;; ++attempt) {
    uint32_t id = NextRequestId();
    MutateRequest req;
    req.edges = edges;
    ECRPQ_RETURN_IF_ERROR(SendFrame(MakeFrame(MsgType::kMutate, id, req)));
    Frame reply;
    ECRPQ_RETURN_IF_ERROR(WaitReply(id, &reply));
    Status status = ExpectType(reply, MsgType::kMutateOk);
    if (status.ok()) {
      MutateReply ok;
      ECRPQ_RETURN_IF_ERROR(Decode(reply.payload, &ok));
      if (num_nodes != nullptr) *num_nodes = ok.num_nodes;
      if (num_edges != nullptr) *num_edges = ok.num_edges;
      return Status::OK();
    }
    // Only OVERLOADED sheds are retried: they are rejected before the
    // commit path runs. A DEGRADED (Unavailable) reply is NOT resent —
    // the WAL is down and hammering it is pointless.
    if (!IsOverloaded(status) || attempt >= retry_policy_.retries) {
      return status;
    }
    BackoffSleep(attempt);
  }
}

Status Client::Stats(std::string* text) {
  uint32_t id = NextRequestId();
  Frame frame;
  frame.type = MsgType::kStats;
  frame.request_id = id;
  ECRPQ_RETURN_IF_ERROR(SendFrame(frame));
  Frame reply;
  ECRPQ_RETURN_IF_ERROR(WaitReply(id, &reply));
  ECRPQ_RETURN_IF_ERROR(ExpectType(reply, MsgType::kStatsOk));
  StatsReply ok;
  ECRPQ_RETURN_IF_ERROR(Decode(reply.payload, &ok));
  *text = std::move(ok.text);
  return Status::OK();
}

Status Client::CloseStmt(uint32_t stmt_id) {
  uint32_t id = NextRequestId();
  Frame frame;
  frame.type = MsgType::kCloseStmt;
  frame.request_id = id;
  WireWriter writer(&frame.payload);
  writer.U32(stmt_id);
  ECRPQ_RETURN_IF_ERROR(SendFrame(frame));
  Frame reply;
  ECRPQ_RETURN_IF_ERROR(WaitReply(id, &reply));
  return ExpectType(reply, MsgType::kOk);
}

Status Client::CloseCursor(uint64_t cursor_id) {
  uint32_t id = NextRequestId();
  Frame frame;
  frame.type = MsgType::kCloseCursor;
  frame.request_id = id;
  WireWriter writer(&frame.payload);
  writer.U64(cursor_id);
  ECRPQ_RETURN_IF_ERROR(SendFrame(frame));
  Frame reply;
  ECRPQ_RETURN_IF_ERROR(WaitReply(id, &reply));
  return ExpectType(reply, MsgType::kOk);
}

}  // namespace ecrpq
