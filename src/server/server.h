// ecrpq-serverd: the TCP transport of the serving subsystem.
//
// One I/O thread multiplexes every connection through poll(): it
// accepts, reads and frames bytes, sheds EXECUTE load at receipt
// (Session::PreadmitExecute — an OVERLOADED reply costs no executor
// time), and writes queued replies. Decoded frames are dispatched to a
// small executor pool actor-style: each connection owns a FIFO of
// pending frames and is runnable on at most one executor thread at a
// time, so one connection's requests are answered in order while
// thousands of connections proceed concurrently. CANCEL and HELLO are
// handled inline on the I/O thread — a cancel must overtake the very
// execute it targets, never queue behind it.
//
// Disconnect duty: when a client drops mid-query, the I/O thread trips
// every in-flight CancellationToken of that session (Session::Close), so
// the engine unwinds promptly instead of computing an answer nobody will
// read; replies to a closed session are discarded. Stop() does the same
// for every connection, which makes shutdown bounded by the engines'
// cancellation poll granularity, not by their remaining work.

#ifndef ECRPQ_SERVER_SERVER_H_
#define ECRPQ_SERVER_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "api/api.h"
#include "server/admission.h"
#include "server/protocol.h"
#include "server/result_cache.h"
#include "server/server_stats.h"
#include "server/session.h"

namespace ecrpq {

class Server {
 public:
  /// `db` must outlive the server; several servers may share one.
  explicit Server(Database* db, ServingOptions options = {});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds, listens, and spawns the I/O + executor (+ stats) threads.
  Status Start();

  /// Drains and joins everything; idempotent. In-flight queries are
  /// cancelled through their tokens.
  void Stop();

  /// The bound TCP port (after Start; meaningful with options.port = 0).
  int port() const { return port_; }

  const ServerStats& stats() const { return stats_; }
  const ResultCache& cache() const { return cache_; }
  const AdmissionController& admission() const { return *admission_; }
  const ServingOptions& options() const { return options_; }

 private:
  struct Connection {
    int fd = -1;
    std::shared_ptr<Session> session;

    // I/O-thread-only read state.
    std::vector<uint8_t> in;
    size_t in_offset = 0;

    // Cross-thread state (executors append replies / tasks finish).
    std::mutex mutex;
    std::vector<uint8_t> out;
    size_t out_offset = 0;
    std::deque<Frame> tasks;
    bool scheduled = false;  // on the runnable queue or being processed
    bool closing = false;    // flush out, then close
    bool dead = false;       // fd closed; drop replies
  };
  using ConnPtr = std::shared_ptr<Connection>;

  void IoLoop();
  void ExecutorLoop();
  void StatsLoop();

  void AcceptNew();
  void ReadFrom(const ConnPtr& conn);
  void DispatchFrame(const ConnPtr& conn, Frame frame);
  void EnqueueTask(const ConnPtr& conn, Frame frame);
  void SendReplies(const ConnPtr& conn, const std::vector<Frame>& replies,
                   bool then_close);
  void FlushTo(const ConnPtr& conn);
  void CloseConn(const ConnPtr& conn);
  void WakeIo();

  Database* db_;
  ServingOptions options_;
  ServerStats stats_;
  ResultCache cache_;
  std::unique_ptr<AdmissionController> admission_;

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  int port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_{false};

  std::thread io_thread_;
  std::vector<std::thread> executors_;
  std::thread stats_thread_;

  // I/O-thread-only connection table.
  std::unordered_map<int, ConnPtr> conns_;
  uint64_t next_session_id_ = 1;

  // Runnable queue feeding the executor pool.
  std::mutex run_mutex_;
  std::condition_variable run_cv_;
  std::deque<ConnPtr> runnable_;
};

}  // namespace ecrpq

#endif  // ECRPQ_SERVER_SERVER_H_
