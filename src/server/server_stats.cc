#include "server/server_stats.h"

namespace ecrpq {

double LatencyHistogram::PercentileNs(double p) const {
  uint64_t n = count();
  if (n == 0) return 0.0;
  uint64_t rank = static_cast<uint64_t>(p / 100.0 * static_cast<double>(n));
  if (rank >= n) rank = n - 1;
  uint64_t seen = 0;
  for (int b = 0; b < 64; ++b) {
    uint64_t c = buckets_[b].load(std::memory_order_relaxed);
    if (c == 0) continue;
    seen += c;
    if (seen > rank) {
      // Bucket b holds values in [2^(b-1), 2^b); geometric midpoint.
      double lo = b == 0 ? 0.0 : static_cast<double>(1ull << (b - 1));
      double hi = static_cast<double>(b >= 63 ? ~0ull : (1ull << b));
      return (lo + hi) / 2.0;
    }
  }
  return 0.0;
}

}  // namespace ecrpq
