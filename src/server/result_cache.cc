#include "server/result_cache.h"

#include <algorithm>

namespace ecrpq {

namespace {

/// Appends a u32 length prefix, then the bytes. Param values are
/// client-supplied node names that may contain ANY byte, so no joiner
/// character can delimit components unambiguously — only an explicit
/// length can.
void AppendLengthPrefixed(const std::string& s, std::string* out) {
  const uint32_t n = static_cast<uint32_t>(s.size());
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((n >> (8 * i)) & 0xff));
  }
  out->append(s);
}

}  // namespace

std::string ResultCache::Key(
    const std::string& text,
    const std::vector<std::pair<std::string, std::string>>& params) {
  // Canonical form: length-prefixed text, then length-prefixed
  // name/value pairs sorted by name. Two distinct (text, params)
  // bindings can never build the same key, so a shared cross-session
  // cache can never serve rows computed for a different binding.
  std::vector<std::pair<std::string, std::string>> sorted = params;
  std::sort(sorted.begin(), sorted.end());
  std::string key;
  key.reserve(text.size() + 4 * (1 + 2 * sorted.size()));
  AppendLengthPrefixed(text, &key);
  for (const auto& [name, value] : sorted) {
    AppendLengthPrefixed(name, &key);
    AppendLengthPrefixed(value, &key);
  }
  return key;
}

CachedResultPtr ResultCache::Lookup(const std::string& key,
                                    const GraphIndexPtr& index) {
  if (index == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  if (it->second.snapshot.lock() != index) {
    // The graph mutated since this entry was computed: the Database
    // swapped its index snapshot, so the weak_ptr no longer locks to the
    // current one. Evict; serving a stale answer is never an option.
    ++invalidations_;
    ++misses_;
    lru_.erase(it->second.lru_it);
    map_.erase(it);
    return nullptr;
  }
  ++hits_;
  Touch(it->second, key);
  return it->second.result;
}

void ResultCache::Insert(const std::string& key, const GraphIndexPtr& index,
                         CachedResultPtr result) {
  if (capacity_ == 0 || index == nullptr || result == nullptr ||
      result->truncated || result->rows.size() > max_rows_) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second.snapshot = index;
    it->second.result = std::move(result);
    Touch(it->second, key);
    ++insertions_;
    return;
  }
  while (map_.size() >= capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(key);
  map_.emplace(key, Entry{index, std::move(result), lru_.begin()});
  ++insertions_;
}

void ResultCache::Touch(Entry& entry, const std::string& key) {
  lru_.erase(entry.lru_it);
  lru_.push_front(key);
  entry.lru_it = lru_.begin();
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  map_.clear();
  lru_.clear();
}

uint64_t ResultCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}
uint64_t ResultCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}
uint64_t ResultCache::insertions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return insertions_;
}
uint64_t ResultCache::invalidations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return invalidations_;
}
size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

}  // namespace ecrpq
