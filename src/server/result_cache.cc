#include "server/result_cache.h"

#include <algorithm>

namespace ecrpq {

std::string ResultCache::Key(
    const std::string& text,
    const std::vector<std::pair<std::string, std::string>>& params) {
  // Canonical form: text, then name=value pairs sorted by name, joined
  // with unit separators (0x1f cannot appear in parsed query text and is
  // vanishingly unlikely in node names; a collision would only conflate
  // two keys of the same text, not corrupt results across texts).
  std::vector<std::pair<std::string, std::string>> sorted = params;
  std::sort(sorted.begin(), sorted.end());
  std::string key = text;
  for (const auto& [name, value] : sorted) {
    key += '\x1f';
    key += name;
    key += '\x1e';
    key += value;
  }
  return key;
}

CachedResultPtr ResultCache::Lookup(const std::string& key,
                                    const GraphIndexPtr& index) {
  if (index == nullptr) return nullptr;
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  if (it->second.snapshot.lock() != index) {
    // The graph mutated since this entry was computed: the Database
    // swapped its index snapshot, so the weak_ptr no longer locks to the
    // current one. Evict; serving a stale answer is never an option.
    ++invalidations_;
    ++misses_;
    lru_.erase(it->second.lru_it);
    map_.erase(it);
    return nullptr;
  }
  ++hits_;
  Touch(it->second, key);
  return it->second.result;
}

void ResultCache::Insert(const std::string& key, const GraphIndexPtr& index,
                         CachedResultPtr result) {
  if (capacity_ == 0 || index == nullptr || result == nullptr ||
      result->rows.size() > max_rows_) {
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = map_.find(key);
  if (it != map_.end()) {
    it->second.snapshot = index;
    it->second.result = std::move(result);
    Touch(it->second, key);
    ++insertions_;
    return;
  }
  while (map_.size() >= capacity_) {
    map_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(key);
  map_.emplace(key, Entry{index, std::move(result), lru_.begin()});
  ++insertions_;
}

void ResultCache::Touch(Entry& entry, const std::string& key) {
  lru_.erase(entry.lru_it);
  lru_.push_front(key);
  entry.lru_it = lru_.begin();
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  map_.clear();
  lru_.clear();
}

uint64_t ResultCache::hits() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return hits_;
}
uint64_t ResultCache::misses() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return misses_;
}
uint64_t ResultCache::insertions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return insertions_;
}
uint64_t ResultCache::invalidations() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return invalidations_;
}
size_t ResultCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return map_.size();
}

}  // namespace ecrpq
