#include "server/protocol.h"

#include <cassert>
#include <cstring>

namespace ecrpq {

namespace {

// Per-string sanity bound: a single name/text inside a payload can never
// exceed the frame bound anyway; rejecting earlier keeps the reader from
// attempting huge allocations on lying length fields.
constexpr uint32_t kMaxStringLen = kMaxFrameBody;

}  // namespace

bool IsKnownMsgType(uint8_t type) {
  switch (static_cast<MsgType>(type)) {
    case MsgType::kHello:
    case MsgType::kPrepare:
    case MsgType::kExecute:
    case MsgType::kFetch:
    case MsgType::kCancel:
    case MsgType::kMutate:
    case MsgType::kStats:
    case MsgType::kCloseStmt:
    case MsgType::kCloseCursor:
    case MsgType::kHelloOk:
    case MsgType::kPrepareOk:
    case MsgType::kRows:
    case MsgType::kError:
    case MsgType::kOverloaded:
    case MsgType::kStatsOk:
    case MsgType::kMutateOk:
    case MsgType::kOk:
      return true;
  }
  return false;
}

// ---- framing ----------------------------------------------------------------

void EncodeFrame(const Frame& frame, std::vector<uint8_t>* out) {
  // Oversized payloads must be caught where the frame is built (the
  // session byte-caps ROWS pages); encoding one anyway would overflow
  // the u32 length prefix and desynchronize the stream for the peer.
  assert(frame.payload.size() <= kMaxFrameBody - kMinFrameBody);
  const uint32_t body_len =
      static_cast<uint32_t>(kMinFrameBody + frame.payload.size());
  WireWriter w(out);
  w.U32(body_len);
  w.U8(static_cast<uint8_t>(frame.type));
  w.U32(frame.request_id);
  out->insert(out->end(), frame.payload.begin(), frame.payload.end());
}

Status DecodeFrame(const std::vector<uint8_t>& buffer, size_t* offset,
                   Frame* frame) {
  const size_t available = buffer.size() - *offset;
  if (available < 4) {
    return Status::FailedPrecondition("incomplete length prefix");
  }
  uint32_t body_len;
  std::memcpy(&body_len, buffer.data() + *offset, 4);
  if (body_len < kMinFrameBody || body_len > kMaxFrameBody) {
    return Status::ResourceExhausted(
        "frame body length " + std::to_string(body_len) +
        " outside [" + std::to_string(kMinFrameBody) + ", " +
        std::to_string(kMaxFrameBody) + "]");
  }
  if (available < 4 + static_cast<size_t>(body_len)) {
    return Status::FailedPrecondition("incomplete frame body");
  }
  const uint8_t* body = buffer.data() + *offset + 4;
  frame->type = static_cast<MsgType>(body[0]);
  std::memcpy(&frame->request_id, body + 1, 4);
  frame->payload.assign(body + 5, body + body_len);
  *offset += 4 + body_len;
  return Status::OK();
}

// ---- primitives -------------------------------------------------------------

void WireWriter::U16(uint16_t v) {
  out_->push_back(static_cast<uint8_t>(v));
  out_->push_back(static_cast<uint8_t>(v >> 8));
}

void WireWriter::U32(uint32_t v) {
  for (int i = 0; i < 4; ++i) out_->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void WireWriter::U64(uint64_t v) {
  for (int i = 0; i < 8; ++i) out_->push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void WireWriter::Str(const std::string& s) {
  U32(static_cast<uint32_t>(s.size()));
  out_->insert(out_->end(), s.begin(), s.end());
}

bool WireReader::Need(size_t n) {
  if (!ok_ || size_ - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

uint8_t WireReader::U8() {
  if (!Need(1)) return 0;
  return data_[pos_++];
}

uint16_t WireReader::U16() {
  if (!Need(2)) return 0;
  uint16_t v = static_cast<uint16_t>(data_[pos_]) |
               static_cast<uint16_t>(data_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

uint32_t WireReader::U32() {
  if (!Need(4)) return 0;
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

uint64_t WireReader::U64() {
  if (!Need(8)) return 0;
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

std::string WireReader::Str() {
  uint32_t len = U32();
  if (len > kMaxStringLen || !Need(len)) {
    ok_ = false;
    return std::string();
  }
  std::string s(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return s;
}

// ---- typed messages ---------------------------------------------------------

namespace {

Status Malformed(const char* what) {
  return Status::InvalidArgument(std::string("malformed payload: ") + what);
}

Status Finish(const WireReader& r, const char* what) {
  if (!r.Complete()) return Malformed(what);
  return Status::OK();
}

}  // namespace

void Encode(const HelloRequest& m, std::vector<uint8_t>* out) {
  WireWriter w(out);
  w.U32(m.magic);
  w.U16(m.version);
}

Status Decode(const std::vector<uint8_t>& payload, HelloRequest* m) {
  WireReader r(payload.data(), payload.size());
  m->magic = r.U32();
  m->version = r.U16();
  return Finish(r, "hello");
}

void Encode(const PrepareRequest& m, std::vector<uint8_t>* out) {
  WireWriter w(out);
  w.Str(m.text);
}

Status Decode(const std::vector<uint8_t>& payload, PrepareRequest* m) {
  WireReader r(payload.data(), payload.size());
  m->text = r.Str();
  return Finish(r, "prepare");
}

void Encode(const ExecuteRequest& m, std::vector<uint8_t>* out) {
  WireWriter w(out);
  w.U32(m.stmt_id);
  w.U32(m.deadline_ms);
  w.U64(m.row_limit);
  w.U32(m.page_size);
  w.U8(m.flags);
  w.U16(static_cast<uint16_t>(m.params.size()));
  for (const auto& [name, value] : m.params) {
    w.Str(name);
    w.Str(value);
  }
}

Status Decode(const std::vector<uint8_t>& payload, ExecuteRequest* m) {
  WireReader r(payload.data(), payload.size());
  m->stmt_id = r.U32();
  m->deadline_ms = r.U32();
  m->row_limit = r.U64();
  m->page_size = r.U32();
  m->flags = r.U8();
  uint16_t n = r.U16();
  m->params.clear();
  for (uint16_t i = 0; i < n && r.ok(); ++i) {
    std::string name = r.Str();
    std::string value = r.Str();
    m->params.emplace_back(std::move(name), std::move(value));
  }
  return Finish(r, "execute");
}

void Encode(const FetchRequest& m, std::vector<uint8_t>* out) {
  WireWriter w(out);
  w.U64(m.cursor_id);
  w.U32(m.max_rows);
}

Status Decode(const std::vector<uint8_t>& payload, FetchRequest* m) {
  WireReader r(payload.data(), payload.size());
  m->cursor_id = r.U64();
  m->max_rows = r.U32();
  return Finish(r, "fetch");
}

void Encode(const CancelRequest& m, std::vector<uint8_t>* out) {
  WireWriter w(out);
  w.U32(m.target_request_id);
}

Status Decode(const std::vector<uint8_t>& payload, CancelRequest* m) {
  WireReader r(payload.data(), payload.size());
  m->target_request_id = r.U32();
  return Finish(r, "cancel");
}

void Encode(const MutateRequest& m, std::vector<uint8_t>* out) {
  WireWriter w(out);
  w.U32(static_cast<uint32_t>(m.edges.size()));
  for (const auto& edge : m.edges) {
    w.Str(edge[0]);
    w.Str(edge[1]);
    w.Str(edge[2]);
  }
}

Status Decode(const std::vector<uint8_t>& payload, MutateRequest* m) {
  WireReader r(payload.data(), payload.size());
  uint32_t n = r.U32();
  m->edges.clear();
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    std::array<std::string, 3> edge;
    edge[0] = r.Str();
    edge[1] = r.Str();
    edge[2] = r.Str();
    m->edges.push_back(std::move(edge));
  }
  return Finish(r, "mutate");
}

void Encode(const HelloReply& m, std::vector<uint8_t>* out) {
  WireWriter w(out);
  w.U16(m.version);
  w.Str(m.server);
}

Status Decode(const std::vector<uint8_t>& payload, HelloReply* m) {
  WireReader r(payload.data(), payload.size());
  m->version = r.U16();
  m->server = r.Str();
  return Finish(r, "hello-ok");
}

void Encode(const PrepareReply& m, std::vector<uint8_t>* out) {
  WireWriter w(out);
  w.U32(m.stmt_id);
  w.U16(static_cast<uint16_t>(m.param_names.size()));
  for (const std::string& name : m.param_names) w.Str(name);
}

Status Decode(const std::vector<uint8_t>& payload, PrepareReply* m) {
  WireReader r(payload.data(), payload.size());
  m->stmt_id = r.U32();
  uint16_t n = r.U16();
  m->param_names.clear();
  for (uint16_t i = 0; i < n && r.ok(); ++i) m->param_names.push_back(r.Str());
  return Finish(r, "prepare-ok");
}

void Encode(const RowsReply& m, std::vector<uint8_t>* out) {
  WireWriter w(out);
  w.U64(m.cursor_id);
  w.U8(m.flags);
  w.U16(m.arity);
  w.U32(static_cast<uint32_t>(m.rows.size()));
  for (const auto& row : m.rows) {
    for (const std::string& value : row) w.Str(value);
  }
}

Status Decode(const std::vector<uint8_t>& payload, RowsReply* m) {
  WireReader r(payload.data(), payload.size());
  m->cursor_id = r.U64();
  m->flags = r.U8();
  m->arity = r.U16();
  uint32_t n = r.U32();
  m->rows.clear();
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    std::vector<std::string> row;
    row.reserve(m->arity);
    for (uint16_t k = 0; k < m->arity && r.ok(); ++k) row.push_back(r.Str());
    m->rows.push_back(std::move(row));
  }
  return Finish(r, "rows");
}

void Encode(const ErrorReply& m, std::vector<uint8_t>* out) {
  WireWriter w(out);
  w.U32(m.code);
  w.Str(m.message);
}

Status Decode(const std::vector<uint8_t>& payload, ErrorReply* m) {
  WireReader r(payload.data(), payload.size());
  m->code = r.U32();
  m->message = r.Str();
  return Finish(r, "error");
}

void Encode(const OverloadedReply& m, std::vector<uint8_t>* out) {
  WireWriter w(out);
  w.U32(m.in_flight);
  w.U32(m.capacity);
  w.Str(m.message);
}

Status Decode(const std::vector<uint8_t>& payload, OverloadedReply* m) {
  WireReader r(payload.data(), payload.size());
  m->in_flight = r.U32();
  m->capacity = r.U32();
  m->message = r.Str();
  return Finish(r, "overloaded");
}

void Encode(const StatsReply& m, std::vector<uint8_t>* out) {
  WireWriter w(out);
  w.Str(m.text);
}

Status Decode(const std::vector<uint8_t>& payload, StatsReply* m) {
  WireReader r(payload.data(), payload.size());
  m->text = r.Str();
  return Finish(r, "stats-ok");
}

void Encode(const MutateReply& m, std::vector<uint8_t>* out) {
  WireWriter w(out);
  w.U64(m.num_nodes);
  w.U64(m.num_edges);
}

Status Decode(const std::vector<uint8_t>& payload, MutateReply* m) {
  WireReader r(payload.data(), payload.size());
  m->num_nodes = r.U64();
  m->num_edges = r.U64();
  return Finish(r, "mutate-ok");
}

}  // namespace ecrpq
