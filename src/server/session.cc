#include "server/session.h"

#include <algorithm>
#include <utility>

#include "wal/durable.h"

namespace ecrpq {

namespace {

constexpr uint32_t kMaxPageSize = 65536;

// Encoded-byte budget for the rows of one ROWS page: the frame body may
// not exceed kMaxFrameBody, and the reply's fixed fields (cursor_id,
// flags, arity, row count) plus the frame header need headroom.
constexpr size_t kPageByteBudget = kMaxFrameBody - 64;

/// A bare acknowledgment (CANCEL / CLOSE-*): type + echoed id, no payload.
Frame OkFrame(uint32_t request_id) {
  Frame frame;
  frame.type = MsgType::kOk;
  frame.request_id = request_id;
  return frame;
}

/// One ROWS page worth of rows out of a rendered result, capped both by
/// row count and by encoded byte size so the page always fits in one
/// frame (row count alone doesn't bound it: names are arbitrary-length).
/// Sets *status only when the next row alone exceeds the frame limit and
/// therefore can never be sent.
RowsReply BuildPage(const CachedResultPtr& result, size_t offset,
                    uint32_t count, Status* status) {
  RowsReply reply;
  reply.arity = result->arity;
  if (result->truncated) reply.flags |= kRowsFlagTruncated;
  const size_t end = std::min(result->rows.size(), offset + count);
  size_t budget = kPageByteBudget;
  for (size_t i = offset; i < end; ++i) {
    const std::vector<std::string>& row = result->rows[i];
    size_t encoded = 0;
    for (const std::string& value : row) encoded += 4 + value.size();
    if (encoded > budget) {
      if (reply.rows.empty()) {
        *status = Status::ResourceExhausted(
            "result row encodes to " + std::to_string(encoded) +
            " bytes, beyond the " + std::to_string(kMaxFrameBody) +
            "-byte frame limit");
      }
      return reply;  // never kRowsFlagDone: rows (the big one) remain
    }
    budget -= encoded;
    reply.rows.push_back(row);
  }
  if (offset + reply.rows.size() >= result->rows.size()) {
    reply.flags |= kRowsFlagDone;
  }
  return reply;
}

}  // namespace

Frame Session::ErrorFrame(uint32_t request_id, const Status& status) const {
  ErrorReply reply;
  reply.code = static_cast<uint32_t>(status.code());
  reply.message = status.message();
  return MakeFrame(MsgType::kError, request_id, reply);
}

std::optional<Frame> Session::PreadmitExecute(const Frame& frame) {
  const Status duplicate = Status::InvalidArgument(
      "request id " + std::to_string(frame.request_id) +
      " already has an execute in flight");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) {
      return ErrorFrame(frame.request_id,
                        Status::FailedPrecondition("session closed"));
    }
    // Reject duplicates before touching the admission counter so the
    // answer is a deterministic ERROR even when the server is saturated.
    if (in_flight_.count(frame.request_id) > 0) {
      stats_->executes_error.fetch_add(1, std::memory_order_relaxed);
      return ErrorFrame(frame.request_id, duplicate);
    }
  }
  if (!admission_->TryAdmit()) {
    stats_->executes_overloaded.fetch_add(1, std::memory_order_relaxed);
    OverloadedReply reply;
    reply.in_flight = static_cast<uint32_t>(admission_->admitted());
    reply.capacity = static_cast<uint32_t>(admission_->capacity());
    reply.message = "execute shed by admission control (in-flight " +
                    std::to_string(reply.in_flight) + " >= capacity " +
                    std::to_string(reply.capacity) + ")";
    return MakeFrame(MsgType::kOverloaded, frame.request_id, reply);
  }
  // Register the token now, on the I/O thread: an out-of-band CANCEL (or
  // a disconnect) must reach an execute that is still waiting for an
  // executor thread, not only one that already started.
  {
    std::lock_guard<std::mutex> lock(mutex_);
    bool inserted =
        in_flight_
            .emplace(frame.request_id, std::make_shared<CancellationToken>())
            .second;
    if (inserted) return std::nullopt;
  }
  // A duplicate raced in between the check above and the admit (only
  // possible for direct Handle() callers — the I/O thread serializes a
  // connection's frames). Overwriting the registration would make two
  // admissions share one in_flight_ entry — its single erase would
  // release one slot and leak the other permanently — so reject the
  // duplicate and give its slot back.
  admission_->Release();
  stats_->executes_error.fetch_add(1, std::memory_order_relaxed);
  return ErrorFrame(frame.request_id, duplicate);
}

Session::HandleResult Session::Handle(const Frame& frame) {
  HandleResult out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_) {
      // The connection died while this frame sat in the queue. An
      // admitted execute still owns an admission slot — give it back.
      if (frame.type == MsgType::kExecute) {
        auto it = in_flight_.find(frame.request_id);
        if (it != in_flight_.end()) {
          in_flight_.erase(it);
          admission_->Release();
        }
      }
      return out;
    }
    if (!hello_done_ && frame.type != MsgType::kHello) {
      out.replies.push_back(ErrorFrame(
          frame.request_id,
          Status::FailedPrecondition("handshake required before " +
                                     std::to_string(static_cast<int>(
                                         frame.type)))));
      out.close_connection = true;
      return out;
    }
  }
  switch (frame.type) {
    case MsgType::kHello:
      out.replies.push_back(HandleHello(frame, &out.close_connection));
      break;
    case MsgType::kPrepare:
      out.replies.push_back(HandlePrepare(frame));
      break;
    case MsgType::kExecute:
      out.replies.push_back(HandleExecute(frame));
      break;
    case MsgType::kFetch:
      out.replies.push_back(HandleFetch(frame));
      break;
    case MsgType::kCancel:
      out.replies.push_back(HandleCancel(frame));
      break;
    case MsgType::kMutate:
      out.replies.push_back(HandleMutate(frame));
      break;
    case MsgType::kStats:
      out.replies.push_back(HandleStats(frame));
      break;
    case MsgType::kCloseStmt:
      out.replies.push_back(HandleCloseStmt(frame));
      break;
    case MsgType::kCloseCursor:
      out.replies.push_back(HandleCloseCursor(frame));
      break;
    default:
      stats_->frames_malformed.fetch_add(1, std::memory_order_relaxed);
      out.replies.push_back(ErrorFrame(
          frame.request_id,
          Status::InvalidArgument(
              "unknown message type " +
              std::to_string(static_cast<int>(frame.type)))));
      break;
  }
  return out;
}

Frame Session::HandleHello(const Frame& frame, bool* close_connection) {
  HelloRequest req;
  Status decoded = Decode(frame.payload, &req);
  if (!decoded.ok() || req.magic != kProtocolMagic) {
    stats_->frames_malformed.fetch_add(1, std::memory_order_relaxed);
    *close_connection = true;
    return ErrorFrame(frame.request_id,
                      Status::InvalidArgument("bad handshake magic"));
  }
  if (req.version != kProtocolVersion) {
    *close_connection = true;
    return ErrorFrame(
        frame.request_id,
        Status::InvalidArgument(
            "unsupported protocol version " + std::to_string(req.version) +
            " (server speaks " + std::to_string(kProtocolVersion) + ")"));
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    hello_done_ = true;
  }
  HelloReply reply;
  reply.server = "ecrpq-serverd/1";
  return MakeFrame(MsgType::kHelloOk, frame.request_id, reply);
}

Frame Session::HandlePrepare(const Frame& frame) {
  PrepareRequest req;
  Status decoded = Decode(frame.payload, &req);
  if (!decoded.ok()) {
    stats_->frames_malformed.fetch_add(1, std::memory_order_relaxed);
    return ErrorFrame(frame.request_id, decoded);
  }
  stats_->prepares.fetch_add(1, std::memory_order_relaxed);
  auto prepared = db_->Prepare(req.text);  // hits the shared plan cache
  if (!prepared.ok()) return ErrorFrame(frame.request_id, prepared.status());
  PrepareReply reply;
  reply.param_names = prepared.value().parameter_names();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    reply.stmt_id = next_stmt_id_++;
    stmts_.emplace(reply.stmt_id, std::move(prepared).value());
  }
  return MakeFrame(MsgType::kPrepareOk, frame.request_id, reply);
}

Frame Session::HandleExecute(const Frame& frame) {
  const auto started = std::chrono::steady_clock::now();
  // Admission: normally done by PreadmitExecute on the I/O thread; a
  // direct call (tests, in-process use) admits here.
  std::shared_ptr<CancellationToken> token;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = in_flight_.find(frame.request_id);
    if (it != in_flight_.end()) token = it->second;
  }
  if (token == nullptr) {
    std::optional<Frame> shed = PreadmitExecute(frame);
    if (shed.has_value()) return *shed;
    std::lock_guard<std::mutex> lock(mutex_);
    token = in_flight_[frame.request_id];
  }
  auto finish = [&](Frame reply, bool ok_rows, uint64_t rows) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      in_flight_.erase(frame.request_id);
    }
    admission_->Release();
    const auto elapsed = std::chrono::steady_clock::now() - started;
    stats_->execute_latency.Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
            .count()));
    if (ok_rows) {
      stats_->executes_ok.fetch_add(1, std::memory_order_relaxed);
      stats_->rows_returned.fetch_add(rows, std::memory_order_relaxed);
    }
    return reply;
  };

  ExecuteRequest req;
  Status decoded = Decode(frame.payload, &req);
  if (!decoded.ok()) {
    stats_->frames_malformed.fetch_add(1, std::memory_order_relaxed);
    return finish(ErrorFrame(frame.request_id, decoded), false, 0);
  }
  PreparedQuery stmt;
  bool stmt_found = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = stmts_.find(req.stmt_id);
    if (it != stmts_.end()) {
      stmt = it->second;  // cheap handle: shares the compiled plan
      stmt_found = true;
    }
  }  // finish() relocks mutex_, so error out only after unlocking
  if (!stmt_found) {
    stats_->executes_error.fetch_add(1, std::memory_order_relaxed);
    return finish(ErrorFrame(frame.request_id,
                             Status::NotFound("unknown statement id " +
                                              std::to_string(req.stmt_id))),
                  false, 0);
  }
  const uint32_t page_size =
      std::min(req.page_size == 0 ? options_->default_page_size
                                  : req.page_size,
               kMaxPageSize);
  std::optional<std::chrono::steady_clock::time_point> deadline;
  if (req.deadline_ms > 0) {
    deadline = started + std::chrono::milliseconds(req.deadline_ms);
  }

  // ---- result cache probe -------------------------------------------------
  const bool bypass_cache = (req.flags & kExecFlagBypassCache) != 0 ||
                            req.row_limit > 0;
  const std::string cache_key = ResultCache::Key(stmt.text(), req.params);
  GraphIndexPtr snapshot = db_->graph_index();
  if (!bypass_cache) {
    if (CachedResultPtr hit = cache_->Lookup(cache_key, snapshot)) {
      Frame page = RowsPage(frame.request_id, hit, 0, page_size,
                            /*from_cache=*/true);
      const bool sent_rows = page.type == MsgType::kRows;
      return finish(std::move(page), sent_rows,
                    sent_rows ? hit->rows.size() : 0);
    }
  }

  // ---- engine run ---------------------------------------------------------
  // Server-side ceiling on materialized rows: with row_limit=0 a single
  // pathological query must not buffer an unbounded result set here, so
  // the weaker of (client limit, max_result_rows) bounds the run and a
  // capped result is flagged truncated.
  const uint64_t row_cap = options_->max_result_rows;
  const bool server_capped =
      row_cap > 0 && (req.row_limit == 0 || req.row_limit > row_cap);
  ExecuteOptions exec;
  exec.limit = server_capped ? row_cap : req.row_limit;
  exec.deadline = deadline;
  exec.cancellation = token;
  exec.build_path_answers = false;  // the wire carries node tuples only
  if (options_->query_threads > 0) exec.num_threads = options_->query_threads;
  Params params;
  for (const auto& [name, value] : req.params) params.Set(name, value);
  auto cursor = stmt.Execute(params, exec);
  if (!cursor.ok()) {
    stats_->executes_error.fetch_add(1, std::memory_order_relaxed);
    return finish(ErrorFrame(frame.request_id, cursor.status()), false, 0);
  }
  std::vector<std::vector<NodeId>> tuples;
  while (cursor.value().Next()) tuples.push_back(cursor.value().tuple());
  const Status& run_status = cursor.value().status();
  if (!run_status.ok()) {
    if (run_status.code() == StatusCode::kCancelled) {
      if (deadline.has_value() &&
          std::chrono::steady_clock::now() >= *deadline) {
        stats_->executes_deadline.fetch_add(1, std::memory_order_relaxed);
      } else {
        stats_->executes_cancelled.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      stats_->executes_error.fetch_add(1, std::memory_order_relaxed);
    }
    return finish(ErrorFrame(frame.request_id, run_status), false, 0);
  }

  // Render NodeIds to names under the shared graph guard: a MutateGraph
  // writer may be appending nodes concurrently, and the name table must
  // be stable while we read it. Node ids are append-only, so ids from the
  // finished execution stay valid.
  auto rendered = std::make_shared<CachedResult>();
  rendered->arity =
      static_cast<uint16_t>(stmt.query().head_nodes().size());
  rendered->truncated = server_capped && tuples.size() >= row_cap;
  {
    auto guard = db_->SharedReadGuard();
    const GraphDb& graph = db_->graph();
    rendered->rows.reserve(tuples.size());
    for (const auto& tuple : tuples) {
      std::vector<std::string> row;
      row.reserve(tuple.size());
      for (NodeId node : tuple) row.push_back(graph.NodeName(node));
      rendered->rows.push_back(std::move(row));
    }
  }
  CachedResultPtr result = rendered;

  // Memoize complete results, but only when no MutateGraph raced the run:
  // the entry is keyed to the snapshot we probed with, and a mutation in
  // between means the engine may have run against a newer one.
  if (!bypass_cache && db_->graph_index() == snapshot) {
    cache_->Insert(cache_key, snapshot, result);  // refuses truncated
  }
  Frame page = RowsPage(frame.request_id, result, 0, page_size,
                        /*from_cache=*/false);
  const bool sent_rows = page.type == MsgType::kRows;
  return finish(std::move(page), sent_rows,
                sent_rows ? result->rows.size() : 0);
}

Frame Session::RowsPage(uint32_t request_id, CachedResultPtr result,
                        size_t offset, uint32_t page_size, bool from_cache) {
  Status page_status = Status::OK();
  RowsReply reply = BuildPage(result, offset, page_size, &page_status);
  if (!page_status.ok()) {
    stats_->executes_error.fetch_add(1, std::memory_order_relaxed);
    return ErrorFrame(request_id, page_status);
  }
  if (from_cache) reply.flags |= kRowsFlagFromCache;
  if ((reply.flags & kRowsFlagDone) == 0) {
    std::lock_guard<std::mutex> lock(mutex_);
    uint64_t cursor_id = next_cursor_id_++;
    cursors_[cursor_id] =
        CursorState{std::move(result), offset + reply.rows.size()};
    reply.cursor_id = cursor_id;
  }
  return MakeFrame(MsgType::kRows, request_id, reply);
}

Frame Session::HandleFetch(const Frame& frame) {
  FetchRequest req;
  Status decoded = Decode(frame.payload, &req);
  if (!decoded.ok()) {
    stats_->frames_malformed.fetch_add(1, std::memory_order_relaxed);
    return ErrorFrame(frame.request_id, decoded);
  }
  stats_->fetches.fetch_add(1, std::memory_order_relaxed);
  const uint32_t page_size =
      std::min(req.max_rows == 0 ? options_->default_page_size : req.max_rows,
               kMaxPageSize);
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = cursors_.find(req.cursor_id);
  if (it == cursors_.end()) {
    return ErrorFrame(frame.request_id,
                      Status::NotFound("unknown cursor id " +
                                       std::to_string(req.cursor_id)));
  }
  Status page_status = Status::OK();
  RowsReply reply =
      BuildPage(it->second.result, it->second.offset, page_size, &page_status);
  if (!page_status.ok()) {
    // An unsendable row blocks this cursor for good: drop it so the
    // client isn't invited to re-fetch into the same error forever.
    cursors_.erase(it);
    return ErrorFrame(frame.request_id, page_status);
  }
  stats_->rows_returned.fetch_add(reply.rows.size(),
                                  std::memory_order_relaxed);
  if (reply.flags & kRowsFlagDone) {
    cursors_.erase(it);
  } else {
    it->second.offset += reply.rows.size();
    reply.cursor_id = req.cursor_id;
  }
  return MakeFrame(MsgType::kRows, frame.request_id, reply);
}

Frame Session::HandleCancel(const Frame& frame) {
  CancelRequest req;
  Status decoded = Decode(frame.payload, &req);
  if (!decoded.ok()) {
    stats_->frames_malformed.fetch_add(1, std::memory_order_relaxed);
    return ErrorFrame(frame.request_id, decoded);
  }
  stats_->cancels.fetch_add(1, std::memory_order_relaxed);
  CancelInFlight(req.target_request_id);
  return OkFrame(frame.request_id);
}

void Session::CancelInFlight(uint32_t target_request_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [request_id, token] : in_flight_) {
    if (target_request_id == 0 || request_id == target_request_id) {
      token->Cancel();
    }
  }
}

Frame Session::HandleMutate(const Frame& frame) {
  MutateRequest req;
  Status decoded = Decode(frame.payload, &req);
  if (!decoded.ok()) {
    stats_->frames_malformed.fetch_add(1, std::memory_order_relaxed);
    return ErrorFrame(frame.request_id, decoded);
  }
  stats_->mutations.fetch_add(1, std::memory_order_relaxed);
  // The O(delta) write path: in-flight executions drain, the batch is
  // applied, and the index snapshot advances via a delta segment instead
  // of being discarded — the writer no longer stalls the next reader
  // behind a full O(V+E) rebuild. The new snapshot is a distinct
  // GraphIndexPtr, so result-cache entries keyed on the old one miss
  // naturally; cached plans survive unless the batch grew the alphabet.
  GraphMutation mutation;
  mutation.add_edges.reserve(req.edges.size());
  for (const auto& edge : req.edges) {
    mutation.add_edges.push_back(EdgeSpec{edge[0], edge[1], edge[2]});
  }
  auto committed = db_->CommitDelta(mutation);
  if (!committed.ok()) {
    // Durable write path rejected the batch — typically "DEGRADED:
    // ..." with kUnavailable when the WAL can't accept appends. The
    // graph is untouched; reads keep serving. The throttled probe
    // inside the log (plus the server's periodic ProbeDurability)
    // clears the state once the disk recovers.
    stats_->mutations_rejected.fetch_add(1, std::memory_order_relaxed);
    return ErrorFrame(frame.request_id, committed.status());
  }
  const MutationSummary& summary = committed.value();
  MutateReply reply;
  reply.num_nodes = static_cast<uint64_t>(summary.num_nodes);
  reply.num_edges = static_cast<uint64_t>(summary.num_edges);
  return MakeFrame(MsgType::kMutateOk, frame.request_id, reply);
}

Frame Session::HandleStats(const Frame& frame) {
  StatsReply reply;
  auto add = [&](const std::string& key, uint64_t value) {
    reply.text += key + "=" + std::to_string(value) + "\n";
  };
  const ServerStats& s = *stats_;
  add("server.connections_accepted", s.connections_accepted.load());
  add("server.connections_active", s.connections_active.load());
  add("server.frames_received", s.frames_received.load());
  add("server.frames_malformed", s.frames_malformed.load());
  add("server.prepares", s.prepares.load());
  add("server.executes_ok", s.executes_ok.load());
  add("server.executes_error", s.executes_error.load());
  add("server.executes_cancelled", s.executes_cancelled.load());
  add("server.executes_deadline", s.executes_deadline.load());
  add("server.executes_overloaded", s.executes_overloaded.load());
  add("server.fetches", s.fetches.load());
  add("server.mutations", s.mutations.load());
  add("server.cancels", s.cancels.load());
  add("server.rows_returned", s.rows_returned.load());
  add("latency.count", s.execute_latency.count());
  add("latency.mean_us",
      static_cast<uint64_t>(s.execute_latency.MeanNs() / 1000.0));
  add("latency.p50_us",
      static_cast<uint64_t>(s.execute_latency.PercentileNs(50) / 1000.0));
  add("latency.p99_us",
      static_cast<uint64_t>(s.execute_latency.PercentileNs(99) / 1000.0));
  add("admission.in_flight", static_cast<uint64_t>(admission_->admitted()));
  add("admission.capacity", static_cast<uint64_t>(admission_->capacity()));
  add("admission.peak", static_cast<uint64_t>(admission_->peak()));
  add("admission.total_admitted", admission_->total_admitted());
  add("admission.total_rejected", admission_->total_rejected());
  add("cache.hits", cache_->hits());
  add("cache.misses", cache_->misses());
  add("cache.insertions", cache_->insertions());
  add("cache.invalidations", cache_->invalidations());
  add("cache.size", cache_->size());
  add("db.plan_cache_size", db_->plan_cache_size());
  add("db.plan_cache_hits", db_->plan_cache_hits());
  add("db.plan_cache_misses", db_->plan_cache_misses());
  {
    auto guard = db_->SharedReadGuard();
    add("db.nodes", static_cast<uint64_t>(db_->graph().num_nodes()));
    add("db.edges", static_cast<uint64_t>(db_->graph().num_edges()));
  }
  add("server.mutations_rejected", s.mutations_rejected.load());
  if (const DurableLog* log = db_->durable_log()) {
    const WalStats wal = log->stats();
    add("wal.enabled", 1);
    add("wal.degraded", db_->write_degraded() ? 1 : 0);
    add("wal.last_lsn", wal.last_lsn);
    add("wal.durable_lsn", wal.durable_lsn);
    add("wal.checkpoint_lsn", wal.checkpoint_lsn);
    add("wal.appends", wal.appends);
    add("wal.append_failures", wal.append_failures);
    add("wal.syncs", wal.syncs);
    add("wal.sync_failures", wal.sync_failures);
    add("wal.checkpoints", wal.checkpoints);
    add("wal.checkpoint_failures", wal.checkpoint_failures);
    add("wal.probes", wal.probes);
    add("wal.appended_bytes", wal.appended_bytes);
  } else {
    add("wal.enabled", 0);
  }
  return MakeFrame(MsgType::kStatsOk, frame.request_id, reply);
}

Frame Session::HandleCloseStmt(const Frame& frame) {
  WireReader r(frame.payload.data(), frame.payload.size());
  uint32_t stmt_id = r.U32();
  if (!r.Complete()) {
    stats_->frames_malformed.fetch_add(1, std::memory_order_relaxed);
    return ErrorFrame(frame.request_id,
                      Status::InvalidArgument("malformed payload: close-stmt"));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  stmts_.erase(stmt_id);
  return OkFrame(frame.request_id);
}

Frame Session::HandleCloseCursor(const Frame& frame) {
  WireReader r(frame.payload.data(), frame.payload.size());
  uint64_t cursor_id = r.U64();
  if (!r.Complete()) {
    stats_->frames_malformed.fetch_add(1, std::memory_order_relaxed);
    return ErrorFrame(
        frame.request_id,
        Status::InvalidArgument("malformed payload: close-cursor"));
  }
  std::lock_guard<std::mutex> lock(mutex_);
  cursors_.erase(cursor_id);
  return OkFrame(frame.request_id);
}

void Session::Close() {
  std::lock_guard<std::mutex> lock(mutex_);
  closed_ = true;
  for (auto& [request_id, token] : in_flight_) {
    (void)request_id;
    token->Cancel();
  }
  cursors_.clear();
  stmts_.clear();
}

}  // namespace ecrpq
