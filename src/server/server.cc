#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>

#include "util/thread_pool.h"

namespace ecrpq {

namespace {

bool SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  return flags >= 0 && fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

}  // namespace

Server::Server(Database* db, ServingOptions options)
    : db_(db),
      options_(options),
      cache_(options.cache_capacity, options.cache_max_rows) {
  if (options_.executor_threads <= 0) {
    options_.executor_threads = ThreadPool::DefaultParallelism();
  }
  if (options_.max_in_flight < 0) {
    options_.max_in_flight = options_.executor_threads;
  }
  if (options_.max_queue < 0) {
    options_.max_queue = 4 * options_.max_in_flight;
  }
  admission_ = std::make_unique<AdmissionController>(options_.max_in_flight,
                                                     options_.max_queue);
}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_.load()) return Status::FailedPrecondition("already started");
  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal("socket: " + std::string(strerror(errno)));
  }
  int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) != 1) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address " +
                                   options_.bind_address);
  }
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      listen(listen_fd_, 511) != 0) {
    Status status = Status::Internal("bind/listen: " +
                                     std::string(strerror(errno)));
    close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  socklen_t len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (pipe(wake_pipe_) != 0 || !SetNonBlocking(wake_pipe_[0]) ||
      !SetNonBlocking(wake_pipe_[1]) || !SetNonBlocking(listen_fd_)) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal("pipe/nonblock setup failed");
  }
  stop_.store(false);
  running_.store(true);
  io_thread_ = std::thread([this] { IoLoop(); });
  executors_.reserve(options_.executor_threads);
  for (int i = 0; i < options_.executor_threads; ++i) {
    executors_.emplace_back([this] { ExecutorLoop(); });
  }
  if (options_.stats_interval_sec > 0) {
    stats_thread_ = std::thread([this] { StatsLoop(); });
  }
  return Status::OK();
}

void Server::Stop() {
  if (!running_.exchange(false)) return;
  stop_.store(true);
  WakeIo();
  run_cv_.notify_all();
  if (io_thread_.joinable()) io_thread_.join();
  run_cv_.notify_all();
  for (std::thread& t : executors_) {
    if (t.joinable()) t.join();
  }
  executors_.clear();
  if (stats_thread_.joinable()) stats_thread_.join();
  if (listen_fd_ >= 0) close(listen_fd_);
  listen_fd_ = -1;
  for (int i = 0; i < 2; ++i) {
    if (wake_pipe_[i] >= 0) close(wake_pipe_[i]);
    wake_pipe_[i] = -1;
  }
}

void Server::WakeIo() {
  if (wake_pipe_[1] >= 0) {
    uint8_t byte = 1;
    ssize_t ignored = write(wake_pipe_[1], &byte, 1);
    (void)ignored;  // pipe full = a wake-up is already pending
  }
}

// ---- I/O thread -------------------------------------------------------------

void Server::IoLoop() {
  std::vector<pollfd> fds;
  std::vector<ConnPtr> polled;
  while (!stop_.load(std::memory_order_acquire)) {
    fds.clear();
    polled.clear();
    fds.push_back({listen_fd_, POLLIN, 0});
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    for (auto& [fd, conn] : conns_) {
      short events = POLLIN;
      {
        std::lock_guard<std::mutex> lock(conn->mutex);
        if (conn->out.size() > conn->out_offset) events |= POLLOUT;
        if (conn->closing && conn->out.size() <= conn->out_offset) {
          events = POLLOUT;  // nothing left to say; close below
        }
      }
      fds.push_back({fd, events, 0});
      polled.push_back(conn);
    }
    int ready = poll(fds.data(), fds.size(), 200);
    if (stop_.load(std::memory_order_acquire)) break;
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (fds[1].revents & POLLIN) {
      uint8_t buf[256];
      while (read(wake_pipe_[0], buf, sizeof(buf)) > 0) {
      }
    }
    if (fds[0].revents & POLLIN) AcceptNew();
    std::vector<ConnPtr> to_close;
    for (size_t i = 0; i < polled.size(); ++i) {
      const pollfd& pfd = fds[i + 2];
      const ConnPtr& conn = polled[i];
      if (pfd.revents & (POLLERR | POLLHUP | POLLNVAL)) {
        to_close.push_back(conn);
        continue;
      }
      if (pfd.revents & POLLOUT) FlushTo(conn);
      bool done = false;
      {
        std::lock_guard<std::mutex> lock(conn->mutex);
        done = conn->closing && conn->out.size() <= conn->out_offset;
      }
      if (done) {
        to_close.push_back(conn);
        continue;
      }
      if (pfd.revents & POLLIN) ReadFrom(conn);
      {
        std::lock_guard<std::mutex> lock(conn->mutex);
        if (conn->dead) to_close.push_back(conn);
      }
    }
    for (const ConnPtr& conn : to_close) CloseConn(conn);
  }
  // Teardown: every open connection is closed and its in-flight work
  // cancelled; queued executes release their admission slots when the
  // executors drain them against the closed sessions.
  std::vector<ConnPtr> remaining;
  for (auto& [fd, conn] : conns_) remaining.push_back(conn);
  for (const ConnPtr& conn : remaining) CloseConn(conn);
}

void Server::AcceptNew() {
  while (true) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) break;  // EAGAIN / transient
    if (!SetNonBlocking(fd)) {
      close(fd);
      continue;
    }
    int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    conn->session = std::make_shared<Session>(db_, &cache_, admission_.get(),
                                              &stats_, &options_,
                                              next_session_id_++);
    conns_.emplace(fd, std::move(conn));
    stats_.connections_accepted.fetch_add(1, std::memory_order_relaxed);
    stats_.connections_active.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::ReadFrom(const ConnPtr& conn) {
  uint8_t buf[65536];
  while (true) {
    ssize_t n = recv(conn->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn->in.insert(conn->in.end(), buf, buf + n);
      continue;
    }
    if (n == 0) {  // orderly EOF: peer is gone
      std::lock_guard<std::mutex> lock(conn->mutex);
      conn->dead = true;
      return;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->dead = true;
    return;
  }
  // Extract every complete frame.
  while (true) {
    Frame frame;
    Status status = DecodeFrame(conn->in, &conn->in_offset, &frame);
    if (status.code() == StatusCode::kFailedPrecondition) break;  // partial
    if (!status.ok()) {
      // Unframeable stream (length lies outside the protocol bounds):
      // tell the client why, then hang up — resynchronizing with a liar
      // is not possible.
      stats_.frames_malformed.fetch_add(1, std::memory_order_relaxed);
      ErrorReply reply;
      reply.code = static_cast<uint32_t>(status.code());
      reply.message = status.message();
      SendReplies(conn, {MakeFrame(MsgType::kError, 0, reply)},
                  /*then_close=*/true);
      return;
    }
    stats_.frames_received.fetch_add(1, std::memory_order_relaxed);
    DispatchFrame(conn, std::move(frame));
  }
  // Compact the consumed prefix of the read buffer.
  if (conn->in_offset > 0) {
    if (conn->in_offset == conn->in.size()) {
      conn->in.clear();
    } else if (conn->in_offset > 16384) {
      conn->in.erase(conn->in.begin(),
                     conn->in.begin() +
                         static_cast<ptrdiff_t>(conn->in_offset));
    } else {
      return;
    }
    conn->in_offset = 0;
  }
}

void Server::DispatchFrame(const ConnPtr& conn, Frame frame) {
  switch (frame.type) {
    case MsgType::kHello:
    case MsgType::kCancel: {
      // Inline on the I/O thread: the handshake gates everything behind
      // it, and a CANCEL must overtake the execute it targets instead of
      // queueing behind it.
      Session::HandleResult result = conn->session->Handle(frame);
      SendReplies(conn, result.replies, result.close_connection);
      return;
    }
    case MsgType::kExecute: {
      std::optional<Frame> shed = conn->session->PreadmitExecute(frame);
      if (shed.has_value()) {
        SendReplies(conn, {*shed}, /*then_close=*/false);
        return;
      }
      EnqueueTask(conn, std::move(frame));
      return;
    }
    default:
      EnqueueTask(conn, std::move(frame));
      return;
  }
}

void Server::EnqueueTask(const ConnPtr& conn, Frame frame) {
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->tasks.push_back(std::move(frame));
    if (!conn->scheduled) {
      conn->scheduled = true;
      schedule = true;
    }
  }
  if (schedule) {
    {
      std::lock_guard<std::mutex> lock(run_mutex_);
      runnable_.push_back(conn);
    }
    run_cv_.notify_one();
  }
}

void Server::SendReplies(const ConnPtr& conn,
                         const std::vector<Frame>& replies, bool then_close) {
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    if (conn->dead) return;  // the peer is gone; drop the rendering
    for (const Frame& reply : replies) EncodeFrame(reply, &conn->out);
    if (then_close) conn->closing = true;
  }
  WakeIo();  // the I/O thread owns the fd; ask it to flush
}

void Server::FlushTo(const ConnPtr& conn) {
  std::lock_guard<std::mutex> lock(conn->mutex);
  while (conn->out_offset < conn->out.size()) {
    ssize_t n = send(conn->fd, conn->out.data() + conn->out_offset,
                     conn->out.size() - conn->out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      conn->out_offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    if (n < 0 && errno == EINTR) continue;
    conn->dead = true;
    return;
  }
  if (conn->out_offset == conn->out.size()) {
    conn->out.clear();
    conn->out_offset = 0;
  }
}

void Server::CloseConn(const ConnPtr& conn) {
  if (conns_.erase(conn->fd) == 0) return;  // already closed this round
  // Cancel in-flight work first: a disconnected client's query must stop
  // consuming executor time mid-search.
  conn->session->Close();
  {
    std::lock_guard<std::mutex> lock(conn->mutex);
    conn->dead = true;
    close(conn->fd);
  }
  stats_.connections_active.fetch_sub(1, std::memory_order_relaxed);
}

// ---- executor pool ----------------------------------------------------------

void Server::ExecutorLoop() {
  while (true) {
    ConnPtr conn;
    {
      std::unique_lock<std::mutex> lock(run_mutex_);
      run_cv_.wait(lock, [this] {
        return stop_.load(std::memory_order_acquire) || !runnable_.empty();
      });
      if (runnable_.empty()) {
        if (stop_.load(std::memory_order_acquire)) return;
        continue;
      }
      conn = std::move(runnable_.front());
      runnable_.pop_front();
    }
    Frame frame;
    {
      std::lock_guard<std::mutex> lock(conn->mutex);
      if (conn->tasks.empty()) {
        conn->scheduled = false;
        continue;
      }
      frame = std::move(conn->tasks.front());
      conn->tasks.pop_front();
    }
    Session::HandleResult result = conn->session->Handle(frame);
    SendReplies(conn, result.replies, result.close_connection);
    // One frame per turn: requeue if more is pending, so long queries on
    // one connection cannot starve the rest of the pool's fairness.
    bool more = false;
    {
      std::lock_guard<std::mutex> lock(conn->mutex);
      if (conn->tasks.empty()) {
        conn->scheduled = false;
      } else {
        more = true;
      }
    }
    if (more) {
      {
        std::lock_guard<std::mutex> lock(run_mutex_);
        runnable_.push_back(conn);
      }
      run_cv_.notify_one();
    }
  }
}

// ---- periodic serving log line ----------------------------------------------

void Server::StatsLoop() {
  uint64_t last_ok = 0;
  uint64_t last_rows = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    for (int i = 0; i < options_.stats_interval_sec * 10 &&
                    !stop_.load(std::memory_order_acquire);
         ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    if (stop_.load(std::memory_order_acquire)) return;
    uint64_t ok = stats_.executes_ok.load(std::memory_order_relaxed);
    uint64_t rows = stats_.rows_returned.load(std::memory_order_relaxed);
    double interval = static_cast<double>(options_.stats_interval_sec);
    std::fprintf(
        stderr,
        "[ecrpq-serverd] qps=%.1f rows/s=%.1f p50=%.0fus p99=%.0fus "
        "in_flight=%d/%d shed=%llu cancelled=%llu deadline=%llu "
        "cache_hit=%llu/%llu sessions=%llu\n",
        static_cast<double>(ok - last_ok) / interval,
        static_cast<double>(rows - last_rows) / interval,
        stats_.execute_latency.PercentileNs(50) / 1000.0,
        stats_.execute_latency.PercentileNs(99) / 1000.0,
        admission_->admitted(), admission_->capacity(),
        static_cast<unsigned long long>(
            stats_.executes_overloaded.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            stats_.executes_cancelled.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(
            stats_.executes_deadline.load(std::memory_order_relaxed)),
        static_cast<unsigned long long>(cache_.hits()),
        static_cast<unsigned long long>(cache_.misses()),
        static_cast<unsigned long long>(
            stats_.connections_active.load(std::memory_order_relaxed)));
    last_ok = ok;
    last_rows = rows;
  }
}

}  // namespace ecrpq
