// Snapshot-keyed result cache of the serving layer.
//
// Repeated anchored queries (hot prepared statements executed with the
// same parameters) dominate read-heavy serving traffic; their full
// answer sets are small and cheap to keep. The cache memoizes the
// *rendered* result — node-name rows, detached from the graph — keyed by
//
//   (query text, canonical parameter bindings, GraphIndex snapshot)
//
// The snapshot is held as a weak_ptr to the immutable CSR index the
// execution pinned. Database::MutateGraph swaps that snapshot (the old
// one dies with its last execution), so after any mutation every cached
// entry's weak_ptr no longer locks to the current index and the lookup
// treats it as a miss and evicts it: invalidation is a *consequence of
// the snapshot protocol*, not a separate bookkeeping channel that could
// miss a write path. Entries are LRU-evicted beyond `capacity`, and only
// complete, untruncated, OK results of bounded size are inserted.

#ifndef ECRPQ_SERVER_RESULT_CACHE_H_
#define ECRPQ_SERVER_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "graph/index.h"

namespace ecrpq {

/// A memoized, rendered result: node-name rows plus the arity. Shared
/// (immutable) between the cache and in-flight replies.
struct CachedResult {
  uint16_t arity = 0;
  /// The server's max_result_rows ceiling stopped the execution early;
  /// rows is a prefix of the full answer set. Never cached.
  bool truncated = false;
  std::vector<std::vector<std::string>> rows;
};
using CachedResultPtr = std::shared_ptr<const CachedResult>;

class ResultCache {
 public:
  explicit ResultCache(size_t capacity = 1024, size_t max_rows = 4096)
      : capacity_(capacity), max_rows_(max_rows) {}

  /// Builds the canonical key for (text, sorted params).
  static std::string Key(
      const std::string& text,
      const std::vector<std::pair<std::string, std::string>>& params);

  /// Returns the cached result when `key` was inserted against exactly
  /// the snapshot `index`; a stale entry (any other / dead snapshot) is
  /// evicted and counted as a miss.
  CachedResultPtr Lookup(const std::string& key, const GraphIndexPtr& index);

  /// Inserts a result computed against `index`. Oversized results and
  /// null snapshots are ignored (the caller need not pre-filter).
  void Insert(const std::string& key, const GraphIndexPtr& index,
              CachedResultPtr result);

  /// Drops every entry (serving shutdown / tests).
  void Clear();

  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t insertions() const;
  uint64_t invalidations() const;  ///< stale-snapshot evictions
  size_t size() const;

 private:
  struct Entry {
    std::weak_ptr<const GraphIndex> snapshot;
    CachedResultPtr result;
    std::list<std::string>::iterator lru_it;
  };

  void Touch(Entry& entry, const std::string& key);

  const size_t capacity_;
  const size_t max_rows_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> map_;
  std::list<std::string> lru_;  // front = most recently used
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
  uint64_t insertions_ = 0;
  uint64_t invalidations_ = 0;
};

}  // namespace ecrpq

#endif  // ECRPQ_SERVER_RESULT_CACHE_H_
