// Per-connection session state of ecrpq-serverd, independent of sockets.
//
// A Session owns one connection's protocol conversation: the versioned
// handshake, a prepared-statement table (statements reuse the Database
// plan cache and are re-executed across requests), a cursor table for
// paged result streaming, and the registry of in-flight executions that
// out-of-band CANCEL frames (handled on the I/O thread) trip through
// their CancellationTokens. Handle() is a pure frame → replies function
// run on an executor thread, which makes the whole request surface —
// malformed payloads, admission, deadlines, caching — testable without a
// TCP server in the loop.
//
// Division of labor with the transport (server.h):
//   I/O thread    PreadmitExecute (admission at receipt — load is shed
//                 *before* anything queues), CancelRequest, Close
//   executor      Handle (everything else, including engine runs)
// Internal state is mutex-guarded; the transport additionally serializes
// Handle calls per session (actor-style), so one connection's requests
// are answered in order while different connections proceed in parallel.

#ifndef ECRPQ_SERVER_SESSION_H_
#define ECRPQ_SERVER_SESSION_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "api/api.h"
#include "server/admission.h"
#include "server/protocol.h"
#include "server/result_cache.h"
#include "server/server_stats.h"

namespace ecrpq {

/// Knobs shared by the server and its sessions.
struct ServingOptions {
  /// TCP port to bind (0 = ephemeral; Server::port() reports the choice).
  int port = 0;
  std::string bind_address = "127.0.0.1";

  /// Executor threads running query requests (0 = hardware default).
  int executor_threads = 0;

  /// Admission control: at most max_in_flight executes run concurrently
  /// and at most max_queue more wait behind them; beyond that EXECUTE is
  /// answered OVERLOADED immediately. Negative = derive from
  /// executor_threads (in-flight = executors, queue = 4x in-flight);
  /// max_queue = 0 is meaningful and sheds as soon as every slot is busy.
  int max_in_flight = -1;
  int max_queue = -1;

  /// Result cache sizing (entries / max rows memoized per entry;
  /// cache_capacity 0 disables caching).
  size_t cache_capacity = 1024;
  size_t cache_max_rows = 4096;

  /// Rows per ROWS page when the client does not ask otherwise.
  uint32_t default_page_size = 1024;

  /// Ceiling on rows materialized per execute (0 = unlimited). A result
  /// that hits it is truncated, flagged kRowsFlagTruncated, and never
  /// cached — bounding server memory even for row_limit=0 requests.
  uint64_t max_result_rows = 1u << 20;

  /// Worker lanes per query execution (EvalOptions::num_threads).
  /// Serving defaults to 1: under concurrent load, inter-query
  /// parallelism across executor threads beats intra-query fan-out.
  int query_threads = 1;

  /// Period of the serving log line (qps, p50/p99, cache, admission);
  /// 0 disables it.
  int stats_interval_sec = 0;
};

class Session {
 public:
  Session(Database* db, ResultCache* cache, AdmissionController* admission,
          ServerStats* stats, const ServingOptions* options, uint64_t id)
      : db_(db),
        cache_(cache),
        admission_(admission),
        stats_(stats),
        options_(options),
        id_(id) {}

  struct HandleResult {
    std::vector<Frame> replies;
    /// Protocol violation (bad handshake, unframeable stream): the
    /// transport sends the replies, then closes the connection.
    bool close_connection = false;
  };

  /// Admission + in-flight registration for an EXECUTE frame, run on the
  /// I/O thread at receipt. Returns the OVERLOADED reply when the request
  /// was shed, or an ERROR reply when request_id already has an execute
  /// in flight (a duplicate must not double-register one id: its two
  /// finishes would release one admission slot, leaking the other
  /// forever); nullopt when admitted — the frame must then be passed to
  /// Handle(), which releases the slot when done.
  std::optional<Frame> PreadmitExecute(const Frame& frame);

  /// Processes one decoded frame and returns the replies. EXECUTE frames
  /// not seen by PreadmitExecute are admitted here (direct-call tests).
  HandleResult Handle(const Frame& frame);

  /// Trips the CancellationToken of an in-flight (or still-queued)
  /// execute; 0 trips all. Safe from any thread.
  void CancelInFlight(uint32_t target_request_id);

  /// Connection teardown: cancels every in-flight execute and marks the
  /// session closed; queued Handle calls become cheap no-ops and the
  /// transport drops their replies.
  void Close();
  bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  uint64_t id() const { return id_; }

 private:
  Frame HandleHello(const Frame& frame, bool* close_connection);
  Frame HandlePrepare(const Frame& frame);
  Frame HandleExecute(const Frame& frame);
  Frame HandleFetch(const Frame& frame);
  Frame HandleCancel(const Frame& frame);
  Frame HandleMutate(const Frame& frame);
  Frame HandleStats(const Frame& frame);
  Frame HandleCloseStmt(const Frame& frame);
  Frame HandleCloseCursor(const Frame& frame);

  Frame ErrorFrame(uint32_t request_id, const Status& status) const;

  /// Serves `result` starting at `offset` as one ROWS page, registering a
  /// cursor when rows remain. Caller holds no locks.
  Frame RowsPage(uint32_t request_id, CachedResultPtr result, size_t offset,
                 uint32_t page_size, bool from_cache);

  struct CursorState {
    CachedResultPtr result;  // rendered rows (fresh or cached)
    size_t offset = 0;
  };

  Database* db_;
  ResultCache* cache_;
  AdmissionController* admission_;
  ServerStats* stats_;
  const ServingOptions* options_;
  const uint64_t id_;

  mutable std::mutex mutex_;
  bool hello_done_ = false;
  bool closed_ = false;
  uint32_t next_stmt_id_ = 1;
  uint64_t next_cursor_id_ = 1;
  std::map<uint32_t, PreparedQuery> stmts_;
  std::map<uint64_t, CursorState> cursors_;
  /// request_id → token of an admitted, not-yet-finished execute.
  std::map<uint32_t, std::shared_ptr<CancellationToken>> in_flight_;
};

}  // namespace ecrpq

#endif  // ECRPQ_SERVER_SESSION_H_
