// Synchronous client library for ecrpq-serverd.
//
// One Client owns one TCP connection and performs the versioned
// handshake on Connect(). Requests are correlated by request_id, so the
// library supports the split SendExecute()/AwaitRows() form: fire an
// execute, do other work (send an out-of-band Cancel targeting it), then
// collect the reply. Replies arriving for *other* request_ids while one
// is awaited are buffered, never dropped — a CANCEL acknowledgment can
// legally overtake the terminal reply of the execute it killed.
//
// Server-side errors come back as ERROR frames carrying a StatusCode;
// the library reconstructs the Status so callers see the same error
// surface as the embedded API (e.g. Status::Cancelled for a deadline).
// OVERLOADED load-shed replies map to StatusCode::kResourceExhausted
// with an "OVERLOADED" message prefix so callers can tell shed load from
// an ordinary failure and retry with backoff.
//
// Thread-compatibility: a Client is NOT thread-safe; use one per thread
// (bench_serving opens hundreds).

#ifndef ECRPQ_SERVER_CLIENT_H_
#define ECRPQ_SERVER_CLIENT_H_

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "server/protocol.h"
#include "util/status.h"

namespace ecrpq {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Retry behaviour for Connect() and for requests shed with
  /// OVERLOADED. Default: no retries, preserving the fail-fast
  /// behaviour protocol tests depend on. Only *pre-execution*
  /// rejections are retried (connect refused, admission shed) — those
  /// are guaranteed to have had no effect on the server, so a resend
  /// can never double-apply.
  struct RetryPolicy {
    int retries = 0;           ///< extra attempts after the first
    int base_backoff_ms = 50;  ///< first retry delay
    int max_backoff_ms = 2000; ///< cap for the exponential growth
    uint64_t jitter_seed = 1;  ///< deterministic jitter stream
  };

  void set_retry_policy(const RetryPolicy& policy) {
    retry_policy_ = policy;
    jitter_state_ = policy.jitter_seed;
  }

  /// Connects and performs the HELLO handshake. With a retry policy,
  /// connect-refused (Unavailable) is retried with capped exponential
  /// backoff + jitter.
  Status Connect(const std::string& host, int port);

  /// TCP connect only, no handshake — for protocol tests that probe the
  /// server's handling of pre-handshake and malformed traffic.
  Status ConnectRaw(const std::string& host, int port);
  void Close();
  bool connected() const { return fd_ >= 0; }

  /// Knobs for one execute request.
  struct ExecuteSpec {
    uint32_t deadline_ms = 0;  ///< 0 = no deadline
    uint64_t row_limit = 0;    ///< 0 = unlimited
    uint32_t page_size = 0;    ///< 0 = server default
    bool bypass_cache = false;
    std::vector<std::pair<std::string, std::string>> params;
  };

  /// One ROWS page (the shape of execute and fetch replies).
  struct RowsPage {
    uint64_t cursor_id = 0;  ///< 0 = complete, nothing to fetch
    bool done = false;
    bool from_cache = false;
    /// The server's max_result_rows ceiling cut the result: the rows are
    /// a prefix of the full answer set.
    bool truncated = false;
    uint16_t arity = 0;
    std::vector<std::vector<std::string>> rows;
  };

  Status Prepare(const std::string& text, uint32_t* stmt_id);

  /// Execute and wait for the first page.
  Status Execute(uint32_t stmt_id, const ExecuteSpec& spec, RowsPage* page);

  /// Pipelined form: send the execute and return without reading the
  /// reply; `request_id` identifies it for Cancel() and AwaitRows().
  Status SendExecute(uint32_t stmt_id, const ExecuteSpec& spec,
                     uint32_t* request_id);
  Status AwaitRows(uint32_t request_id, RowsPage* page);

  /// Next page of a paged result.
  Status Fetch(uint64_t cursor_id, uint32_t max_rows, RowsPage* page);

  /// Cancels the execute sent as `target_request_id` (0 = all in-flight
  /// on this connection) and waits for the server's acknowledgment.
  Status Cancel(uint32_t target_request_id);

  /// Appends edges (node/label names; unknown nodes created). On success
  /// reports the post-mutation graph size.
  Status Mutate(const std::vector<std::array<std::string, 3>>& edges,
                uint64_t* num_nodes, uint64_t* num_edges);

  Status Stats(std::string* text);
  Status CloseStmt(uint32_t stmt_id);
  Status CloseCursor(uint64_t cursor_id);

  // -- low-level access (protocol tests and the CLI's malformed mode) --

  /// Writes raw bytes to the socket, bypassing framing entirely.
  Status SendRaw(const void* data, size_t size);
  Status SendFrame(const Frame& frame);
  /// Reads the next frame regardless of its request_id.
  Status ReadFrame(Frame* frame);

 private:
  uint32_t NextRequestId() { return next_request_id_++; }

  /// True when `status` is a pre-execution shed (OVERLOADED reply) the
  /// policy allows retrying.
  static bool IsOverloaded(const Status& status);

  /// Sleeps for the capped-exponential backoff of `attempt` (0-based)
  /// plus deterministic jitter.
  void BackoffSleep(int attempt);

  /// Reads frames until one carries `request_id`, buffering the rest.
  Status WaitReply(uint32_t request_id, Frame* frame);

  /// Decodes a reply frame that should be `expected`; ERROR/OVERLOADED
  /// frames become the corresponding Status.
  Status ExpectType(const Frame& frame, MsgType expected) const;

  Status DecodeRows(const Frame& frame, RowsPage* page) const;

  int fd_ = -1;
  uint32_t next_request_id_ = 1;
  RetryPolicy retry_policy_;
  uint64_t jitter_state_ = 1;
  std::vector<uint8_t> in_;
  size_t in_offset_ = 0;
  /// Replies read while waiting for a different request_id.
  std::map<uint32_t, Frame> pending_;
};

}  // namespace ecrpq

#endif  // ECRPQ_SERVER_CLIENT_H_
