// Query containment (Section 7).
//
// The paper's landscape:
//   * CRPQ ⊆ CRPQ          decidable, EXPSPACE-complete (Calvanese et al.)
//   * ECRPQ ⊆ CRPQ         decidable, EXPSPACE-complete (Theorem 7.2)
//   * ECRPQ ⊆ ECRPQ        undecidable (Theorem 7.1, via pattern languages)
//   * CRPQ ⊆ ECRPQ         undecidable (Freydenberger & Schweikardt)
//
// We implement: (a) exact single-atom cases, which reduce to regular
// language inclusion; (b) a bounded canonical-database counterexample
// search, sound for refuting containment and exhaustive up to the bound
// (the canonical-graph characterization of Claim 7.2.1); (c) the pattern
// encoder of Theorem 7.1 / Section 4, so the undecidability frontier is a
// runnable construction.

#ifndef ECRPQ_CORE_CONTAINMENT_H_
#define ECRPQ_CORE_CONTAINMENT_H_

#include <string_view>

#include "core/evaluator.h"
#include "query/ast.h"

namespace ecrpq {

enum class Containment {
  kContained,         ///< proven contained (exact procedures only)
  kNotContained,      ///< counterexample graph found
  kUnknownUpToBound,  ///< no counterexample within the search bound
};

struct ContainmentResult {
  Containment verdict = Containment::kUnknownUpToBound;
  /// A witness graph with Q(G) ⊄ Q'(G), when kNotContained.
  std::optional<GraphDb> counterexample;
};

/// Exact containment for single-atom queries whose head is (x, y) — both
/// queries of the shape Ans(x,y) <- (x,π,y), L1(π), ..., Lt(π). Decides
/// L(Q) ⊆ L(Q') by regular language inclusion.
Result<bool> SingleAtomContained(const Query& q1, const Query& q2);

struct ContainmentOptions {
  /// Maximum convolution length of canonical path labels to enumerate.
  int max_word_length = 6;
  /// Maximum number of canonical databases to test.
  int max_candidates = 5000;
  EvalOptions eval;
};

/// Bounded canonical-database search for Q ⊆ Q' (node-head or Boolean
/// queries). kNotContained is definitive; kUnknownUpToBound means no
/// canonical counterexample exists within the bound.
Result<ContainmentResult> CheckContainmentBounded(
    const Query& q, const Query& q_prime,
    const ContainmentOptions& options = {});

/// The pattern query Q_α of Section 4 / Theorem 7.1: Ans(x,y) holds iff x,y
/// are connected by a path whose label is in the pattern language L_Σ(α).
/// `pattern` mixes terminal letters (lower case, must be in `alphabet`) and
/// variables (upper case). Example: "aXbX".
Result<Query> PatternQuery(std::string_view pattern, const Alphabet& alphabet);

}  // namespace ecrpq

#endif  // ECRPQ_CORE_CONTAINMENT_H_
