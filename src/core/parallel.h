// Morsel-driven parallel execution support for the operator layer.
//
// The leaves of a physical plan are embarrassingly parallel over their
// seed sets: a ReachabilityScan runs one independent BFS per source node,
// and a ProductExpand runs one independent product search per start
// assignment (Thm 5.1's enumeration). This header provides the machinery
// the operators in core/ops.cc use to exploit that:
//
//   ResolveNumThreads    EvalOptions::num_threads -> a concrete lane count
//                        (0 = ECRPQ_THREADS env, else hardware concurrency)
//   ParallelMorsels      N lanes pulling [begin, end) morsels off a shared
//                        atomic cursor (ThreadPool::Shared supplies lanes)
//   SharedSubsetPool     thread-safe relation state-subset interning for
//                        searches whose frontier is expanded by many lanes
//   ShardedVisitedTable  the open-addressing config visited table of
//                        ops.cc, sharded by structural config hash with a
//                        striped lock per shard, for shared-frontier
//                        expansion of a single product search
//   FrontierQueue        the shared work queue + termination detection for
//                        that expansion
//
// Everything here is engine-internal; the public surface of parallelism
// is EvalOptions::num_threads / ::deterministic / ::cancellation (the
// token itself lives in util/cancellation.h) and the api layer's
// snapshot protocol (api/database.h).

#ifndef ECRPQ_CORE_PARALLEL_H_
#define ECRPQ_CORE_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <utility>
#include <vector>

#include "core/ops.h"
#include "util/cancellation.h"
#include "util/thread_pool.h"

namespace ecrpq {

/// Resolves EvalOptions::num_threads: values >= 1 are taken literally
/// (1 = the exact legacy single-threaded path); 0 and negatives resolve
/// to the ECRPQ_THREADS environment variable when it parses to a positive
/// integer, else std::thread::hardware_concurrency. Clamped to [1, 256].
int ResolveNumThreads(int requested);

/// Runs `body(begin, end, lane)` over `count` items split into morsels of
/// `grain` items, on `lanes` lanes (capped by the shared pool + caller).
/// Lanes claim morsels from a shared atomic cursor until none remain —
/// late or slow lanes simply claim fewer. Blocks until every lane is done.
/// With lanes <= 1 or count == 0 the body runs inline on the caller.
void ParallelMorsels(int lanes, size_t count, size_t grain,
                     const std::function<void(size_t, size_t, int)>& body);

/// Thread-safe variant of ops.cc's relation state-subset interner, shared
/// by every lane of one shared-frontier product search. Intern ids are
/// dense and stable. Get is on the expansion hot path: the shared lock
/// only guards the store_ vector's growth — the returned reference
/// targets a std::map node (pointer-stable, immutable after insert), so
/// it stays valid after the lock is released. The serial engine keeps its
/// lock-free pool.
class SharedSubsetPool {
 public:
  int Intern(std::vector<StateId> subset) {
    {
      std::shared_lock<std::shared_mutex> lock(mutex_);
      auto it = ids_.find(subset);
      if (it != ids_.end()) return it->second;
    }
    std::unique_lock<std::shared_mutex> lock(mutex_);
    auto [it, inserted] = ids_.emplace(std::move(subset), 0);
    if (inserted) {
      it->second = static_cast<int>(store_.size());
      store_.push_back(&it->first);
    }
    return it->second;
  }

  const std::vector<StateId>& Get(int id) const {
    std::shared_lock<std::shared_mutex> lock(mutex_);
    return *store_[id];
  }

 private:
  mutable std::shared_mutex mutex_;
  std::map<std::vector<StateId>, int> ids_;
  // Pointers into ids_ keys: stable across map growth (node-based).
  std::vector<const std::vector<StateId>*> store_;
};

/// Structural FNV-1a hash of a product configuration (padmask, per-track
/// nodes, per-relation interned subset ids). Shard selection and the
/// generic probing mode of the visited tables both key on it.
uint64_t HashProductConfig(const ProductConfig& c);

/// splitmix64 finalizer, used to spread packed config codes over slots.
uint64_t MixHash64(uint64_t x);

/// Word-packing of product configurations (see ops.cc's VisitedTable):
/// padmask + per-track node ids + per-relation subset ids in one uint64
/// when the shape fits. Subset ids are assigned dynamically, so TryPack
/// can fail mid-search once an id outgrows its bit field — tables then
/// fall back to structural hashing.
struct ConfigCodec {
  int tracks = 0;
  int relations = 0;
  int node_bits = 0;
  int subset_bits = 0;
  bool packable = false;  ///< the shape fits 64 bits at all

  ConfigCodec() = default;
  ConfigCodec(int tracks, int relations, int num_nodes);

  bool TryPack(const ProductConfig& c, uint64_t* out) const;

  /// Exact inverse of TryPack: rebuilds the configuration a code encodes.
  /// Only valid for codes TryPack produced under this codec. Resizes
  /// `out`'s vectors, so a reused scratch config never reallocates.
  void Unpack(uint64_t code, ProductConfig* out) const;
};

/// Outcome of a concurrent visited-table insert.
enum class VisitedInsert {
  kNew,       ///< not seen before; the caller owns expanding this config
  kPresent,   ///< already claimed (here or by another lane)
  kDeferred,  ///< table at its occupancy gate; retry after the next barrier
};

/// Lock-free open-addressing set of packed config codes — the contended
/// hot path of level-synchronous parallel expansion. One relaxed CAS per
/// novel config, one relaxed load per duplicate; no locks, no per-insert
/// allocation. Codes are stored as `code + 1` so 0 can mark an empty
/// slot; the all-ones code (whose increment wraps to 0) gets a dedicated
/// one-bit side table, because ConfigCodec can legally use all 64 bits.
///
/// Growth is cooperative, not concurrent: Insert never resizes. Past the
/// occupancy gate (3/4 of capacity) it returns kDeferred and the caller
/// parks the config until the level barrier, where a single thread calls
/// Grow() and re-inserts the parked configs. The gate keeps probe chains
/// bounded under concurrency: capacity is at least 1024, so the slack
/// above the gate (capacity / 4 >= 256) covers every lane that can pass
/// the gate check simultaneously (lane counts are clamped to 256).
class EpochVisitedSet {
 public:
  explicit EpochVisitedSet(size_t initial_capacity = 1024);

  /// Thread-safe. kNew exactly once per distinct code across all lanes.
  VisitedInsert Insert(uint64_t code);

  /// True when `pending` more inserts would push the load factor past
  /// ~1/2 — the barrier-phase growth trigger.
  bool ShouldGrow(uint64_t pending) const;

  /// Doubles capacity and rehashes. Single-threaded use only (call at a
  /// level barrier, never while any lane may Insert).
  void Grow();

  /// Exact at quiescence.
  uint64_t size() const;

 private:
  std::unique_ptr<std::atomic<uint64_t>[]> slots_;
  size_t capacity_ = 0;  // power of two
  size_t limit_ = 0;     // occupancy gate (capacity - capacity / 4)
  std::atomic<uint64_t> size_{0};
  std::atomic<bool> all_ones_claimed_{false};
};

/// Morsel size for splitting a frontier of `count` configs over `lanes`:
/// below the serial threshold the whole frontier is one morsel (so
/// ParallelMorsels runs it inline — tiny levels never pay the pool
/// hand-off), above it each lane gets ~4 contiguous ranges for locality
/// with enough morsels to absorb skew.
size_t AdaptiveGrain(size_t count, int lanes);

/// The visited/dedup table of a shared-frontier product search: one
/// open-addressing table per shard, shard chosen by structural config
/// hash, each shard guarded by its own mutex (striped locking). Shards
/// start in packed mode when the config shape fits one word and migrate
/// independently to structural hashing when an interned subset id
/// outgrows its bit field. Insert-only; ids are not exposed (the parallel
/// search carries configs in its work items instead of indexing a global
/// discovery array).
class ShardedVisitedTable {
 public:
  /// `shards` is rounded up to a power of two.
  ShardedVisitedTable(const ConfigCodec& codec, int shards);

  /// True when `c` was not present (the caller owns expanding it).
  bool Insert(const ProductConfig& c);

  /// Total configurations across shards (exact only at quiescence).
  uint64_t size() const;

 private:
  struct Shard {
    std::mutex mutex;
    bool packed = false;
    size_t size = 0;
    std::vector<int32_t> slots;  // index into configs, or -1
    std::vector<uint64_t> keys;  // packed codes (packed mode only)
    std::vector<ProductConfig> configs;
    std::vector<uint64_t> hashes;  // structural hashes, parallel to configs
  };

  void InsertSlotPacked(Shard& s, uint64_t code, int32_t id);
  void InsertSlotGeneric(Shard& s, uint64_t hash, int32_t id);
  void GrowOrMigrate(Shard& s, bool migrate);

  ConfigCodec codec_;
  std::vector<std::unique_ptr<Shard>> shards_;
  uint64_t shard_mask_ = 0;
};

/// The visited table of level-synchronous parallel product search: packed
/// configs dedup through the lock-free EpochVisitedSet, configs whose
/// subset ids outgrew the codec's bit fields fall back to the striped-
/// lock ShardedVisitedTable. Subset ids are interned once per distinct
/// state set, so within one run a given config is deterministically
/// packable or not — every lane routes it to the same sub-table and
/// exactly-once claiming holds across the split.
class HybridVisitedTable {
 public:
  HybridVisitedTable(const ConfigCodec& codec, int lanes);

  /// Thread-safe. kDeferred only on the packed path (the fallback locks).
  VisitedInsert Insert(const ProductConfig& c);

  /// As Insert for a code the caller already packed under the same codec.
  VisitedInsert InsertPacked(uint64_t code) { return packed_.Insert(code); }

  /// Barrier-phase maintenance: grows the packed set until `pending`
  /// deferred re-inserts fit under the load target. Single-threaded use
  /// only; guarantees the re-inserts cannot defer again.
  void MaintainAtBarrier(uint64_t pending);

  uint64_t size() const;
  const ConfigCodec& codec() const { return codec_; }

 private:
  ConfigCodec codec_;
  EpochVisitedSet packed_;
  ShardedVisitedTable generic_;
};

/// Shared frontier of one parallel product search: lanes pop batches of
/// configurations, expand them, and push newly discovered ones. Built-in
/// termination detection (empty queue + no lane mid-batch = done) and a
/// poison flag for cancellation/budget aborts.
class FrontierQueue {
 public:
  /// Pops up to `max_batch` configs. Returns false when the search is
  /// finished (or aborted) and no work remains; blocks while other lanes
  /// are still expanding (their output may refill the queue).
  bool PopBatch(size_t max_batch, std::vector<ProductConfig>* out);

  /// Pushes a lane's newly discovered configs; `last_batch_done` must be
  /// true when the lane is done expanding its current batch (pairs with
  /// the PopBatch that handed the batch out).
  void PushBatch(std::vector<ProductConfig>&& batch, bool last_batch_done);

  /// Wakes every lane and makes further PopBatch calls return false.
  void Abort();

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<ProductConfig> queue_;
  int active_ = 0;  // lanes between PopBatch and PushBatch(last=true)
  bool done_ = false;
};

}  // namespace ecrpq

#endif  // ECRPQ_CORE_PARALLEL_H_
