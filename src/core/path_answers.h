// Compact representation of path-tuple answers (Proposition 5.2).
//
// For a fixed tuple of head nodes v̄, the set { χ̄ : (v̄, χ̄) ∈ Q(G) } of
// output path tuples is a regular relation; the paper represents it by an
// automaton over V^k ∪ (Σ⊥)^k whose accepted words alternate node tuples and
// letter tuples. PathAnswerSet is that automaton: states carry the node
// tuple, arcs carry the letter tuple, so an accepting state-path spells the
// representation word exactly as in the paper. It answers the question the
// paper raises in the introduction — "what should an output be if there are
// infinitely many paths between nodes?" — with emptiness/infinity tests,
// counting, bounded enumeration, and membership.

#ifndef ECRPQ_CORE_PATH_ANSWERS_H_
#define ECRPQ_CORE_PATH_ANSWERS_H_

#include <cstdint>
#include <vector>

#include "graph/path.h"
#include "relations/convolution.h"
#include "util/status.h"

namespace ecrpq {

/// A tuple of paths, one per head path variable.
using PathTuple = std::vector<Path>;

/// The Prop 5.2 answer automaton for one head-node binding.
class PathAnswerSet {
 public:
  /// `num_tracks` = number of head path variables; `base_size` = |Σ|.
  PathAnswerSet(int num_tracks, int base_size);

  // ---- construction (used by evaluation engines) ----

  /// Adds a state annotated with the current node per track.
  int AddState(std::vector<NodeId> nodes, bool initial, bool accepting);

  /// Adds an arc labeled with a letter per track (kPad allowed; the node
  /// annotation of `to` must repeat `from`'s node on padded tracks).
  void AddArc(int from, const TupleLetter& letter, int to);

  void SetAccepting(int state, bool accepting = true);

  // ---- queries ----

  int num_states() const { return static_cast<int>(nodes_.size()); }
  int num_tracks() const { return num_tracks_; }

  /// No answer tuples at all.
  bool IsEmpty() const;

  /// Infinitely many distinct answer tuples.
  bool IsInfinite() const;

  /// Number of distinct answer tuples with convolution length <= max_len
  /// (saturating at UINT64_MAX).
  uint64_t CountTuples(int max_len) const;

  /// Up to `max_count` distinct answer tuples with convolution length
  /// <= max_len, in length order.
  std::vector<PathTuple> Enumerate(int max_count, int max_len) const;

  /// Membership of a concrete path tuple.
  bool Contains(const PathTuple& tuple) const;

 private:
  /// Internal NFA over interned (letter, target-nodes) pairs, built lazily
  /// for distinct counting/enumeration. The word encoding is
  /// (init, v̄0) (a̅1, v̄1) (a̅2, v̄2) ... which is in bijection with the
  /// paper's representation words v̄0 a̅1 v̄1 a̅2 v̄2 ...
  struct Arc {
    Symbol letter;  // tuple-letter id over TupleAlphabet(base, tracks)
    int target;
  };

  int num_tracks_;
  TupleAlphabet letters_;
  std::vector<std::vector<NodeId>> nodes_;
  std::vector<std::vector<Arc>> arcs_;
  std::vector<bool> initial_;
  std::vector<bool> accepting_;
};

}  // namespace ecrpq

#endif  // ECRPQ_CORE_PATH_ANSWERS_H_
