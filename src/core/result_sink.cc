#include "core/result_sink.h"

#include <algorithm>
#include <numeric>
#include <utility>

namespace ecrpq {

bool MaterializingSink::Emit(const std::vector<NodeId>& tuple,
                             PathAnswerSet* paths) {
  tuples.push_back(tuple);
  if (paths != nullptr) path_answers.push_back(std::move(*paths));
  if (limit_ > 0 && tuples.size() >= limit_) {
    limit_reached_ = true;
    return false;
  }
  return true;
}

void MaterializingSink::SortRows() {
  std::vector<size_t> order(tuples.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return tuples[a] < tuples[b];
  });
  std::vector<std::vector<NodeId>> sorted_tuples;
  sorted_tuples.reserve(tuples.size());
  for (size_t i : order) sorted_tuples.push_back(std::move(tuples[i]));
  tuples = std::move(sorted_tuples);
  if (!path_answers.empty()) {
    std::vector<PathAnswerSet> sorted_paths;
    sorted_paths.reserve(path_answers.size());
    for (size_t i : order) sorted_paths.push_back(std::move(path_answers[i]));
    path_answers = std::move(sorted_paths);
  }
}

}  // namespace ecrpq
