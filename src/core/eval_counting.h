// Evaluation with linear constraints on occurrence counts / path lengths
// (Theorem 8.5).
//
// Following the paper's proof: guess the node assignment σ, build the
// per-component product automaton (with σ fixing endpoints), translate its
// Parikh image into an existential Presburger formula (here: the flow ILP
// of solver/parikh.h), conjoin the query's A·ℓ̄ >= b rows over the
// per-path-variable letter counters, and decide satisfiability. One ILP per
// σ; occurrence counters are shared across components so cross-variable
// constraints are sound.

#ifndef ECRPQ_CORE_EVAL_COUNTING_H_
#define ECRPQ_CORE_EVAL_COUNTING_H_

#include "core/evaluator.h"

namespace ecrpq {

/// Evaluates an (E)CRPQ with linear atoms, streaming distinct tuples into
/// `sink`. Queries without linear atoms are accepted too (the constraints
/// set is just empty). Head path variables are unsupported
/// (FailedPrecondition). Early termination stops the σ-enumeration, so
/// exists()-style checks decide after the first feasible ILP.
Status EvaluateCounting(const GraphDb& graph, const Query& query,
                        const EvalOptions& options, ResultSink& sink,
                        EvalStats& stats, CompiledQueryPtr compiled = nullptr,
                        GraphIndexPtr index = nullptr);

/// Materializing convenience wrapper (sorted tuples).
Result<QueryResult> EvaluateCounting(const GraphDb& graph, const Query& query,
                                     const EvalOptions& options);

}  // namespace ecrpq

#endif  // ECRPQ_CORE_EVAL_COUNTING_H_
