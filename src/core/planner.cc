#include "core/planner.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "core/parallel.h"

namespace ecrpq {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kReachabilityScan:
      return "ReachabilityScan";
    case OpKind::kProductExpand:
      return "ProductExpand";
    case OpKind::kHashJoin:
      return "HashJoin";
    case OpKind::kSemiJoinFilter:
      return "SemiJoinFilter";
    case OpKind::kLinearConstraintCheck:
      return "LinearConstraintCheck";
  }
  return "?";
}

namespace {

// Variable roles of one component, computed from the query text alone
// (planning must work before constants are resolved against a graph, so
// this mirrors ops.cc's BuildComponentSpec without a ResolvedQuery).
struct ComponentVars {
  std::vector<int> vars;
  std::vector<int> start_vars;
  std::vector<int> tracks;        // global path-var ids
  int const_endpoints = 0;        // constant/parameter atom endpoints
};

ComponentVars CollectComponentVars(const Query& query,
                                   const std::vector<int>& atom_indices) {
  ComponentVars out;
  auto add_var = [&](const NodeTerm& term, bool is_start) {
    if (!term.IsVariable()) {
      ++out.const_endpoints;
      return;
    }
    int var = query.NodeVarIndex(term.name);
    if (std::find(out.vars.begin(), out.vars.end(), var) == out.vars.end()) {
      out.vars.push_back(var);
    }
    if (is_start && std::find(out.start_vars.begin(), out.start_vars.end(),
                              var) == out.start_vars.end()) {
      out.start_vars.push_back(var);
    }
  };
  for (int idx : atom_indices) {
    const PathAtom& atom = query.path_atoms()[idx];
    int path = query.PathVarIndex(atom.path);
    if (std::find(out.tracks.begin(), out.tracks.end(), path) ==
        out.tracks.end()) {
      out.tracks.push_back(path);
    }
    add_var(atom.from, /*is_start=*/true);
    add_var(atom.to, /*is_start=*/false);
  }
  return out;
}

// Relations (indices into compiled.relations) reading any track of the
// component; a relation's paths either all belong or none do.
std::vector<int> ComponentRelations(const CompiledQuery& compiled,
                                    const std::vector<int>& tracks) {
  std::vector<int> out;
  for (size_t r = 0; r < compiled.relations.size(); ++r) {
    const ResolvedRelation& rel = compiled.relations[r];
    if (!rel.paths.empty() &&
        std::find(tracks.begin(), tracks.end(), rel.paths[0]) !=
            tracks.end()) {
      out.push_back(static_cast<int>(r));
    }
  }
  return out;
}

OpKind LeafKind(const Query& query, const CompiledQuery& compiled,
                const std::vector<int>& atom_indices,
                const std::vector<int>& tracks) {
  (void)query;
  if (atom_indices.size() != 1 || tracks.size() != 1) {
    return OpKind::kProductExpand;
  }
  for (int r : ComponentRelations(compiled, tracks)) {
    if (compiled.relations[r].relation->arity() != 1) {
      return OpKind::kProductExpand;
    }
  }
  return OpKind::kReachabilityScan;
}

// Per-track statistics under the live first-letter mask: the letters the
// relations' initial state-sets can read on this track.
struct TrackStats {
  double live_edges = 0;
  double live_sources = 0;
  double live_targets = 0;
  double states = 1;         // product of relation automaton sizes
  bool accepts_empty = true; // every relation accepts ε on this track
};

TrackStats ComputeTrackStats(const CompiledQuery& compiled, int track,
                             const GraphIndex& index) {
  TrackStats out;
  const int num_labels = index.num_labels();
  uint64_t mask = ~0ULL;
  bool constrained = false;
  for (const ResolvedRelation& rel : compiled.relations) {
    bool reads = false;
    for (size_t tape = 0; tape < rel.paths.size(); ++tape) {
      if (rel.paths[tape] != track) continue;
      reads = true;
      uint64_t m = 0;
      for (StateId s : rel.initial) m |= rel.tape_masks[s][tape];
      mask &= m;
      constrained = true;
    }
    if (reads) {
      out.states *= std::max(1, rel.nfa.num_states());
      bool rel_accepts_empty = false;
      for (StateId s : rel.initial) {
        if (rel.accepting[s]) rel_accepts_empty = true;
      }
      out.accepts_empty = out.accepts_empty && rel_accepts_empty;
    }
  }
  const double V = std::max(1, index.num_nodes());
  if (!constrained || num_labels > 64) {
    out.live_edges = index.num_edges();
    out.live_sources = V;
    out.live_targets = V;
    return out;
  }
  for (Symbol l = 0; l < num_labels && l < 64; ++l) {
    if (((mask >> l) & 1) == 0) continue;
    out.live_edges += static_cast<double>(index.LabelCount(l));
    out.live_sources += static_cast<double>(index.LabelSourceCount(l));
    out.live_targets += static_cast<double>(index.LabelTargetCount(l));
  }
  out.live_sources = std::min(out.live_sources, V);
  out.live_targets = std::min(out.live_targets, V);
  return out;
}

}  // namespace

namespace {

// One pass over the component's tracks, producing both the cardinality
// estimate and the full-seeding expansion-work proxy (est_cost's factor).
void EstimateComponent(const CompiledQuery& compiled,
                       const ComponentVars& cv, const GraphIndex& index,
                       double* card_out, double* expand_work_out) {
  const double V = std::max(1, index.num_nodes());
  double card = 1.0;
  double expand_work = 1.0;
  for (int track : cv.tracks) {
    TrackStats ts = ComputeTrackStats(compiled, track, index);
    // Reachable (start, end) pair estimate for this track: bounded by the
    // distinct live sources × targets, and by the live edge volume scaled
    // with automaton size (a shallow-path proxy). Both bounds grow with
    // per-label edge counts, so the estimate is monotone in them.
    double pairs = std::min(ts.live_sources * std::max(ts.live_targets, 1.0),
                            ts.live_edges * std::min(ts.states, 64.0));
    if (ts.accepts_empty) pairs = std::max(pairs, V);  // ε: all (v, v)
    card *= std::max(pairs, 1.0);
    expand_work += ts.live_edges * std::min(ts.states, 64.0);
  }
  // Constant/parameter endpoints anchor the search: each divides the
  // surviving assignment space by the node count.
  for (int i = 0; i < cv.const_endpoints; ++i) card /= V;
  const double ceiling =
      std::pow(V, static_cast<double>(std::max<size_t>(cv.vars.size(), 0)));
  *card_out = std::min(std::max(card, 0.0), ceiling);
  *expand_work_out = expand_work;
}

}  // namespace

double EstimateComponentCardinality(const Query& query,
                                    const CompiledQuery& compiled,
                                    const std::vector<int>& atom_indices,
                                    const GraphIndex& index) {
  ComponentVars cv = CollectComponentVars(query, atom_indices);
  double card = 0.0, expand_work = 0.0;
  EstimateComponent(compiled, cv, index, &card, &expand_work);
  return card;
}

PhysicalPlan PlanQuery(const Query& query, const CompiledQuery& compiled,
                       const GraphIndex* index, const EvalOptions& options) {
  PhysicalPlan plan;
  plan.engine = SelectEngine(query, compiled.analysis, options.engine);
  plan.costed = (index != nullptr);
  plan.linear_check = !query.linear_atoms().empty();

  // The conjunct groups the leaves evaluate over:
  //   crpq      one leaf per path atom (per-atom reachability + join);
  //   product / counting / qlen
  //             one leaf per synchronization component, or one monolithic
  //             group when decomposition is forbidden;
  //   brute force
  //             no operator structure (reference enumeration).
  std::vector<std::vector<int>> groups;
  if (plan.engine == Engine::kBruteForce) {
    plan.decomposed = false;
    return plan;
  }
  if (plan.engine == Engine::kCrpq) {
    for (size_t i = 0; i < query.path_atoms().size(); ++i) {
      groups.push_back({static_cast<int>(i)});
    }
  } else if (options.use_components) {
    groups = compiled.analysis.components;
  } else {
    std::vector<int> all(query.path_atoms().size());
    std::iota(all.begin(), all.end(), 0);
    if (!all.empty()) groups.push_back(std::move(all));
  }
  plan.decomposed = groups.size() > 1;
  plan.num_threads = ResolveNumThreads(options.num_threads);

  const double V = (index != nullptr) ? std::max(1, index->num_nodes()) : 1.0;
  for (const std::vector<int>& group : groups) {
    PlannedComponent pc;
    pc.atom_indices = group;
    ComponentVars cv = CollectComponentVars(query, group);
    pc.vars = cv.vars;
    pc.start_vars = cv.start_vars;
    pc.leaf = LeafKind(query, compiled, group, cv.tracks);
    if (index != nullptr) {
      double expand_work = 0.0;
      EstimateComponent(compiled, cv, *index, &pc.est_rows,
                        &expand_work);
      pc.est_cost =
          std::pow(V, static_cast<double>(pc.start_vars.size())) *
          expand_work;
    }
    // Chosen parallelism: the resolved lane count, demoted to serial when
    // the cost estimate says the leaf cannot amortize lane startup (a
    // distinct flag, so a serial-session plan is not mistaken for a
    // demotion by later num_threads overrides). The product executor
    // honors the demotion per leaf; the crpq executor applies the
    // resolved count to every scan.
    pc.demoted_serial = plan.engine == Engine::kProduct && plan.costed &&
                        pc.est_cost >= 0.0 && pc.est_cost < 20000.0;
    pc.threads = pc.demoted_serial ? 1 : plan.num_threads;
    plan.components.push_back(std::move(pc));
  }

  // Ordering and sideways seeding describe what the PRODUCT executor
  // will do with this plan; the other engines (crpq's dynamic most-bound
  // join, counting/qlen's σ-enumeration) choose their own orders and
  // ignore these annotations, so claiming them in the plan would make
  // Explain misrepresent execution.
  if (plan.engine != Engine::kProduct) return plan;

  // Cheapest-first ordering (stable: analysis order breaks ties), only
  // when statistics are available and the planner is enabled; the legacy
  // path keeps the analysis order.
  if (plan.costed && options.use_planner && plan.components.size() > 1) {
    std::stable_sort(plan.components.begin(), plan.components.end(),
                     [](const PlannedComponent& a, const PlannedComponent& b) {
                       if (a.est_rows != b.est_rows) {
                         return a.est_rows < b.est_rows;
                       }
                       return a.est_cost < b.est_cost;
                     });
  }

  // Sideways information passing: a component whose start variables (or,
  // for scan leaves, any variables) were bound by earlier components is
  // seeded from the accumulated bindings instead of fully enumerated. The
  // executor still applies a runtime guard (seed rows vs. full seeding).
  if (options.use_planner) {
    std::set<int> bound;
    for (PlannedComponent& pc : plan.components) {
      for (int v : pc.vars) {
        if (bound.count(v)) pc.shared_vars.push_back(v);
      }
      bool shares_start = false;
      for (int v : pc.shared_vars) {
        if (std::find(pc.start_vars.begin(), pc.start_vars.end(), v) !=
            pc.start_vars.end()) {
          shares_start = true;
        }
      }
      pc.sideways = !pc.shared_vars.empty() &&
                    (shares_start || pc.leaf == OpKind::kReachabilityScan);
      for (int v : pc.vars) bound.insert(v);
    }
  }
  return plan;
}

std::string PhysicalPlan::Describe(const Query& query) const {
  auto var_names = [&](const std::vector<int>& vars) {
    std::string out = "{";
    for (size_t i = 0; i < vars.size(); ++i) {
      if (i > 0) out += ",";
      out += query.node_variables()[vars[i]];
    }
    return out + "}";
  };
  auto fmt = [](double v) {
    if (v < 0) return std::string("?");
    if (v >= 1e15) return std::string(">=1e15");
    return std::to_string(static_cast<long long>(v + 0.5));
  };

  std::string out = "engine: ";
  out += EngineName(engine);
  out += costed ? " (cost-based plan)" : " (uncosted plan)";
  if (num_threads > 1) {
    out += " threads=" + std::to_string(num_threads);
  }
  out += "\n";
  if (components.empty()) {
    out += "  monolithic enumeration (no operator structure)\n";
  }
  for (size_t i = 0; i < components.size(); ++i) {
    const PlannedComponent& pc = components[i];
    if (i > 0) {
      out += "  HashJoin on " + var_names(pc.shared_vars) + "\n";
    }
    out += "  [" + std::to_string(i) + "] ";
    out += OpKindName(pc.leaf);
    out += " atoms{";
    for (size_t a = 0; a < pc.atom_indices.size(); ++a) {
      if (a > 0) out += ",";
      out += std::to_string(pc.atom_indices[a]);
    }
    out += "} vars" + var_names(pc.vars);
    if (pc.sideways) {
      out += " seeded" + var_names(pc.shared_vars);
    }
    out += " est_rows=" + fmt(pc.est_rows);
    out += " est_cost=" + fmt(pc.est_cost);
    if (pc.threads > 0) {
      out += " parallelism=" + std::to_string(pc.threads);
    }
    out += "\n";
  }
  if (engine == Engine::kCrpq) {
    out +=
        "  SemiJoinFilter to fixpoint, then backtracking HashJoin\n"
        "  (leaves listed in atom order; the join picks the most-bound "
        "atom dynamically)\n";
  }
  if (linear_check) {
    out += "  LinearConstraintCheck (Parikh/ILP over " +
           std::to_string(query.linear_atoms().size()) + " linear atoms)\n";
  }
  return out;
}

}  // namespace ecrpq
