#include "core/planner.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "core/parallel.h"

namespace ecrpq {

const char* OpKindName(OpKind kind) {
  switch (kind) {
    case OpKind::kReachabilityScan:
      return "ReachabilityScan";
    case OpKind::kProductExpand:
      return "ProductExpand";
    case OpKind::kHashJoin:
      return "HashJoin";
    case OpKind::kSemiJoinFilter:
      return "SemiJoinFilter";
    case OpKind::kLinearConstraintCheck:
      return "LinearConstraintCheck";
  }
  return "?";
}

namespace {

// Variable roles of one component, computed from the query text alone
// (planning must work before constants are resolved against a graph, so
// this mirrors ops.cc's BuildComponentSpec without a ResolvedQuery).
struct ComponentVars {
  std::vector<int> vars;
  std::vector<int> start_vars;
  std::vector<int> end_vars;
  std::vector<int> tracks;        // global path-var ids
  int const_endpoints = 0;        // constant/parameter atom endpoints
};

ComponentVars CollectComponentVars(const Query& query,
                                   const std::vector<int>& atom_indices) {
  ComponentVars out;
  auto add_var = [&](const NodeTerm& term, bool is_start) {
    if (!term.IsVariable()) {
      ++out.const_endpoints;
      return;
    }
    int var = query.NodeVarIndex(term.name);
    if (std::find(out.vars.begin(), out.vars.end(), var) == out.vars.end()) {
      out.vars.push_back(var);
    }
    std::vector<int>& side = is_start ? out.start_vars : out.end_vars;
    if (std::find(side.begin(), side.end(), var) == side.end()) {
      side.push_back(var);
    }
  };
  for (int idx : atom_indices) {
    const PathAtom& atom = query.path_atoms()[idx];
    int path = query.PathVarIndex(atom.path);
    if (std::find(out.tracks.begin(), out.tracks.end(), path) ==
        out.tracks.end()) {
      out.tracks.push_back(path);
    }
    add_var(atom.from, /*is_start=*/true);
    add_var(atom.to, /*is_start=*/false);
  }
  return out;
}

// Relations (indices into compiled.relations) reading any track of the
// component; a relation's paths either all belong or none do.
std::vector<int> ComponentRelations(const CompiledQuery& compiled,
                                    const std::vector<int>& tracks) {
  std::vector<int> out;
  for (size_t r = 0; r < compiled.relations.size(); ++r) {
    const ResolvedRelation& rel = compiled.relations[r];
    if (!rel.paths.empty() &&
        std::find(tracks.begin(), tracks.end(), rel.paths[0]) !=
            tracks.end()) {
      out.push_back(static_cast<int>(r));
    }
  }
  return out;
}

OpKind LeafKind(const Query& query, const CompiledQuery& compiled,
                const std::vector<int>& atom_indices,
                const std::vector<int>& tracks) {
  (void)query;
  if (atom_indices.size() != 1 || tracks.size() != 1) {
    return OpKind::kProductExpand;
  }
  for (int r : ComponentRelations(compiled, tracks)) {
    if (compiled.relations[r].relation->arity() != 1) {
      return OpKind::kProductExpand;
    }
  }
  return OpKind::kReachabilityScan;
}

// Per-track statistics under the live first-letter masks: the letters
// the relations' initial state-sets can read on this track (forward),
// and — for the backward mirror — the letters their accepting states can
// be reached by (rev_tape_masks of the reversed tape's initial states,
// i.e. the LAST letters of the track's words).
struct TrackStats {
  double live_edges = 0;
  double live_sources = 0;
  double live_targets = 0;
  double bwd_live_edges = 0;
  double bwd_live_sources = 0;
  double bwd_live_targets = 0;
  double states = 1;         // product of relation automaton sizes
  bool accepts_empty = true; // every relation accepts ε on this track
};

TrackStats ComputeTrackStats(const CompiledQuery& compiled, int track,
                             const GraphIndex& index) {
  TrackStats out;
  const int num_labels = index.num_labels();
  uint64_t mask = ~0ULL;
  uint64_t bwd_mask = ~0ULL;
  bool constrained = false;
  for (const ResolvedRelation& rel : compiled.relations) {
    bool reads = false;
    for (size_t tape = 0; tape < rel.paths.size(); ++tape) {
      if (rel.paths[tape] != track) continue;
      reads = true;
      uint64_t m = 0;
      for (StateId s : rel.initial) m |= rel.tape_masks[s][tape];
      mask &= m;
      uint64_t bm = 0;
      for (StateId s : rel.rev_initial) bm |= rel.rev_tape_masks[s][tape];
      bwd_mask &= bm;
      constrained = true;
    }
    if (reads) {
      out.states *= std::max(1, rel.nfa.num_states());
      bool rel_accepts_empty = false;
      for (StateId s : rel.initial) {
        if (rel.accepting[s]) rel_accepts_empty = true;
      }
      out.accepts_empty = out.accepts_empty && rel_accepts_empty;
    }
  }
  const double V = std::max(1, index.num_nodes());
  if (!constrained || num_labels > 64) {
    out.live_edges = out.bwd_live_edges = index.num_edges();
    out.live_sources = out.bwd_live_sources = V;
    out.live_targets = out.bwd_live_targets = V;
    return out;
  }
  for (Symbol l = 0; l < num_labels && l < 64; ++l) {
    if ((mask >> l) & 1) {
      out.live_edges += static_cast<double>(index.LabelCount(l));
      out.live_sources += static_cast<double>(index.LabelSourceCount(l));
      out.live_targets += static_cast<double>(index.LabelTargetCount(l));
    }
    if ((bwd_mask >> l) & 1) {
      out.bwd_live_edges += static_cast<double>(index.LabelCount(l));
      out.bwd_live_sources +=
          static_cast<double>(index.LabelSourceCount(l));
      out.bwd_live_targets +=
          static_cast<double>(index.LabelTargetCount(l));
    }
  }
  out.live_sources = std::min(out.live_sources, V);
  out.live_targets = std::min(out.live_targets, V);
  out.bwd_live_sources = std::min(out.bwd_live_sources, V);
  out.bwd_live_targets = std::min(out.bwd_live_targets, V);
  return out;
}

}  // namespace

namespace {

// One pass over the component's tracks, producing the cardinality
// estimate and the per-direction full-seeding expansion-work proxies
// (est_cost / est_cost_bwd factors). The directional work sums live edge
// volume scaled with automaton size plus the average degree along the
// direction's first live letter set — live_edges / live_sources is the
// mean out-fanout a forward frontier step pays, live edges over targets
// the mean in-fanout of a backward step.
void EstimateComponent(const CompiledQuery& compiled,
                       const ComponentVars& cv, const GraphIndex& index,
                       double* card_out, double* expand_work_out,
                       double* bwd_expand_work_out) {
  const double V = std::max(1, index.num_nodes());
  double card = 1.0;
  double expand_work = 1.0;
  double bwd_expand_work = 1.0;
  for (int track : cv.tracks) {
    TrackStats ts = ComputeTrackStats(compiled, track, index);
    // Reachable (start, end) pair estimate for this track: bounded by the
    // distinct live sources × targets, and by the live edge volume scaled
    // with automaton size (a shallow-path proxy). Both bounds grow with
    // per-label edge counts, so the estimate is monotone in them.
    double pairs = std::min(ts.live_sources * std::max(ts.live_targets, 1.0),
                            ts.live_edges * std::min(ts.states, 64.0));
    if (ts.accepts_empty) pairs = std::max(pairs, V);  // ε: all (v, v)
    card *= std::max(pairs, 1.0);
    expand_work += ts.live_edges * std::min(ts.states, 64.0) +
                   ts.live_edges / std::max(ts.live_sources, 1.0);
    bwd_expand_work += ts.bwd_live_edges * std::min(ts.states, 64.0) +
                       ts.bwd_live_edges / std::max(ts.bwd_live_targets, 1.0);
  }
  // Constant/parameter endpoints anchor the search: each divides the
  // surviving assignment space by the node count.
  for (int i = 0; i < cv.const_endpoints; ++i) card /= V;
  const double ceiling =
      std::pow(V, static_cast<double>(std::max<size_t>(cv.vars.size(), 0)));
  *card_out = std::min(std::max(card, 0.0), ceiling);
  *expand_work_out = expand_work;
  if (bwd_expand_work_out != nullptr) {
    *bwd_expand_work_out = bwd_expand_work;
  }
}

}  // namespace

double EstimateComponentCardinality(const Query& query,
                                    const CompiledQuery& compiled,
                                    const std::vector<int>& atom_indices,
                                    const GraphIndex& index) {
  ComponentVars cv = CollectComponentVars(query, atom_indices);
  double card = 0.0, expand_work = 0.0;
  EstimateComponent(compiled, cv, index, &card, &expand_work, nullptr);
  return card;
}

PhysicalPlan PlanQuery(const Query& query, const CompiledQuery& compiled,
                       const GraphIndex* index, const EvalOptions& options) {
  PhysicalPlan plan;
  plan.engine = SelectEngine(query, compiled.analysis, options.engine);
  plan.costed = (index != nullptr);
  plan.linear_check = !query.linear_atoms().empty();

  // The conjunct groups the leaves evaluate over:
  //   crpq      one leaf per path atom (per-atom reachability + join);
  //   product / counting / qlen
  //             one leaf per synchronization component, or one monolithic
  //             group when decomposition is forbidden;
  //   brute force
  //             no operator structure (reference enumeration).
  std::vector<std::vector<int>> groups;
  if (plan.engine == Engine::kBruteForce) {
    plan.decomposed = false;
    return plan;
  }
  if (plan.engine == Engine::kCrpq) {
    for (size_t i = 0; i < query.path_atoms().size(); ++i) {
      groups.push_back({static_cast<int>(i)});
    }
  } else if (options.use_components) {
    groups = compiled.analysis.components;
  } else {
    std::vector<int> all(query.path_atoms().size());
    std::iota(all.begin(), all.end(), 0);
    if (!all.empty()) groups.push_back(std::move(all));
  }
  plan.decomposed = groups.size() > 1;
  plan.num_threads = ResolveNumThreads(options.num_threads);

  const double V = (index != nullptr) ? std::max(1, index->num_nodes()) : 1.0;
  // Per-component expansion-work proxies, parallel to plan.components
  // until the cheapest-first reorder (carried inside the component via
  // est_cost / est_cost_bwd afterwards).
  for (const std::vector<int>& group : groups) {
    PlannedComponent pc;
    pc.atom_indices = group;
    ComponentVars cv = CollectComponentVars(query, group);
    pc.vars = cv.vars;
    pc.start_vars = cv.start_vars;
    pc.end_vars = cv.end_vars;
    pc.leaf = LeafKind(query, compiled, group, cv.tracks);
    if (index != nullptr) {
      double expand_work = 0.0;
      double bwd_expand_work = 0.0;
      EstimateComponent(compiled, cv, *index, &pc.est_rows, &expand_work,
                        &bwd_expand_work);
      pc.est_cost =
          std::pow(V, static_cast<double>(pc.start_vars.size())) *
          expand_work;
      pc.est_cost_bwd =
          std::pow(V, static_cast<double>(pc.end_vars.size())) *
          bwd_expand_work;
    }
    // Chosen parallelism: the resolved lane count, demoted to serial when
    // the cost estimate says the leaf cannot amortize lane startup (a
    // distinct flag, so a serial-session plan is not mistaken for a
    // demotion by later num_threads overrides). The product executor
    // honors the demotion per leaf; the crpq executor applies the
    // resolved count to every scan.
    pc.demoted_serial = plan.engine == Engine::kProduct && plan.costed &&
                        pc.est_cost >= 0.0 && pc.est_cost < 20000.0;
    pc.threads = pc.demoted_serial ? 1 : plan.num_threads;
    plan.components.push_back(std::move(pc));
  }

  // Ordering and sideways seeding describe what the PRODUCT executor
  // will do with this plan; the other engines (crpq's dynamic most-bound
  // join, counting/qlen's σ-enumeration) choose their own orders and
  // ignore these annotations, so claiming them in the plan would make
  // Explain misrepresent execution. Search direction IS annotated for
  // crpq leaves too: EvaluateCrpq applies the same constant-anchoring
  // rule per atom, so the plan stays faithful.
  if (plan.engine == Engine::kCrpq && options.use_planner) {
    for (PlannedComponent& pc : plan.components) {
      const PathAtom& atom = query.path_atoms()[pc.atom_indices[0]];
      const bool from_anchored = !atom.from.IsVariable();
      const bool to_anchored = !atom.to.IsVariable();
      if (from_anchored && to_anchored) {
        pc.direction = SearchDirection::kBidirectional;
      } else if (to_anchored) {
        pc.direction = SearchDirection::kBackward;
      }
    }
  }
  if (plan.engine != Engine::kProduct) {
    if (plan.engine == Engine::kCrpq && plan.components.size() > 1) {
      // The crpq executor's semi-join fixpoint filters morsel-parallel
      // above a runtime pair threshold; annotate the session lane count
      // so Explain reports the parallelism the fixpoint will run at.
      plan.semijoin_threads = plan.num_threads;
    }
    return plan;
  }

  // Cheapest-first ordering (stable: analysis order breaks ties), only
  // when statistics are available and the planner is enabled; the legacy
  // path keeps the analysis order.
  if (plan.costed && options.use_planner && plan.components.size() > 1) {
    std::stable_sort(plan.components.begin(), plan.components.end(),
                     [](const PlannedComponent& a, const PlannedComponent& b) {
                       if (a.est_rows != b.est_rows) {
                         return a.est_rows < b.est_rows;
                       }
                       return a.est_cost < b.est_cost;
                     });
  }

  // Sideways information passing and per-leaf direction. A component
  // whose anchor-side variables (or, for scan leaves, any variables)
  // were bound by earlier components is seeded from the accumulated
  // bindings instead of fully enumerated; the executor still applies a
  // runtime guard (seed rows vs. full seeding). The direction choice
  // uses the same sharing information: a side counts as anchored when
  // every one of its variables is shared with earlier components
  // (constants contribute no variables, so fully constant sides are
  // anchored for free). Both sides anchored → bidirectional
  // (meet-in-the-middle on the unique per-row assignment); otherwise the
  // per-direction cost — node-count to the power of the side's FREE
  // variables times the direction's expansion-work proxy — picks forward
  // or backward, with a margin biasing ties to the classical forward
  // search.
  if (options.use_planner) {
    std::set<int> bound;
    for (PlannedComponent& pc : plan.components) {
      for (int v : pc.vars) {
        if (bound.count(v)) pc.shared_vars.push_back(v);
      }
      auto shared = [&](int v) {
        return std::find(pc.shared_vars.begin(), pc.shared_vars.end(), v) !=
               pc.shared_vars.end();
      };
      bool shares_start = false;
      bool shares_end = false;
      size_t free_starts = 0, free_ends = 0;
      for (int v : pc.start_vars) {
        if (shared(v)) {
          shares_start = true;
        } else {
          ++free_starts;
        }
      }
      for (int v : pc.end_vars) {
        if (shared(v)) {
          shares_end = true;
        } else {
          ++free_ends;
        }
      }
      if (plan.costed) {
        if (free_starts == 0 && free_ends == 0) {
          pc.direction = SearchDirection::kBidirectional;
        } else {
          // Recover the directional work proxies from the stored full
          // costs and re-scale by the free (unseeded) variable counts.
          const double fwd_work =
              pc.est_cost /
              std::pow(V, static_cast<double>(pc.start_vars.size()));
          const double bwd_work =
              pc.est_cost_bwd /
              std::pow(V, static_cast<double>(pc.end_vars.size()));
          const double cost_fwd =
              std::pow(V, static_cast<double>(free_starts)) * fwd_work;
          const double cost_bwd =
              std::pow(V, static_cast<double>(free_ends)) * bwd_work;
          if (cost_bwd * 1.25 < cost_fwd) {
            pc.direction = SearchDirection::kBackward;
          }
        }
        // Re-evaluate the serial demotion for the chosen direction: the
        // initial decision used the forward cost, but a leaf flipped to
        // backward (or bidirectional, bounded by the cheaper cone)
        // should amortize lanes against the search it actually runs.
        if (pc.direction != SearchDirection::kForward) {
          const double dir_cost =
              pc.direction == SearchDirection::kBackward
                  ? pc.est_cost_bwd
                  : std::min(pc.est_cost, pc.est_cost_bwd);
          pc.demoted_serial = dir_cost >= 0.0 && dir_cost < 20000.0;
          pc.threads = pc.demoted_serial ? 1 : plan.num_threads;
        }
      }
      const bool shares_anchor =
          pc.direction == SearchDirection::kBidirectional
              ? (shares_start || shares_end)
              : (pc.direction == SearchDirection::kBackward ? shares_end
                                                            : shares_start);
      pc.sideways = !pc.shared_vars.empty() &&
                    (shares_anchor || pc.leaf == OpKind::kReachabilityScan);
      for (int v : pc.vars) bound.insert(v);
    }
  }

  // Per-operator parallelism of the cross-component join pipeline: a
  // merge join (or the semijoin reduction) whose estimated input is
  // below the partitioned-join threshold stays inline-serial on the
  // calling thread — the pipeline mirror of AdaptiveGrain keeping tiny
  // item counts inline. Eligibility is a pure function of the
  // cardinality estimates (never the thread count), so the executor's
  // pipeline shape — and with it every reported counter — is identical
  // at any session parallelism.
  if (plan.costed && options.use_planner && plan.components.size() > 1) {
    constexpr double kJoinInlineRowsEstimate = 4096.0;  // kParallelJoinRows
    double acc = std::max(plan.components[0].est_rows, 0.0);
    double total = acc;
    for (size_t i = 1; i < plan.components.size(); ++i) {
      PlannedComponent& pc = plan.components[i];
      const double est = std::max(pc.est_rows, 0.0);
      pc.join_parallel_ok = acc + est >= kJoinInlineRowsEstimate;
      pc.join_threads = pc.join_parallel_ok && plan.num_threads > 1
                            ? plan.num_threads
                            : 1;
      // The accumulated join output is bounded above by the input
      // product; the overestimate can only promote a later merge to the
      // partitioned path, where the runtime row-count guard still
      // applies.
      acc = std::min(acc * std::max(est, 1.0), 1e18);
      total += est;
    }
    plan.semijoin_parallel_ok = total >= kJoinInlineRowsEstimate;
    plan.semijoin_threads = plan.semijoin_parallel_ok && plan.num_threads > 1
                                ? plan.num_threads
                                : 1;
  }
  return plan;
}

std::string PhysicalPlan::Describe(const Query& query) const {
  auto var_names = [&](const std::vector<int>& vars) {
    std::string out = "{";
    for (size_t i = 0; i < vars.size(); ++i) {
      if (i > 0) out += ",";
      out += query.node_variables()[vars[i]];
    }
    return out + "}";
  };
  auto fmt = [](double v) {
    if (v < 0) return std::string("?");
    if (v >= 1e15) return std::string(">=1e15");
    return std::to_string(static_cast<long long>(v + 0.5));
  };

  std::string out = "engine: ";
  out += EngineName(engine);
  out += costed ? " (cost-based plan)" : " (uncosted plan)";
  if (num_threads > 1) {
    out += " threads=" + std::to_string(num_threads);
  }
  out += "\n";
  if (components.empty()) {
    out += "  monolithic enumeration (no operator structure)\n";
  }
  for (size_t i = 0; i < components.size(); ++i) {
    const PlannedComponent& pc = components[i];
    if (i > 0) {
      out += "  HashJoin on " + var_names(pc.shared_vars);
      if (pc.join_threads > 0) {
        out += " parallelism=" + std::to_string(pc.join_threads);
      }
      out += "\n";
    }
    out += "  [" + std::to_string(i) + "] ";
    out += OpKindName(pc.leaf);
    out += " atoms{";
    for (size_t a = 0; a < pc.atom_indices.size(); ++a) {
      if (a > 0) out += ",";
      out += std::to_string(pc.atom_indices[a]);
    }
    out += "} vars" + var_names(pc.vars);
    if (pc.sideways) {
      out += " seeded" + var_names(pc.shared_vars);
    }
    if (engine == Engine::kProduct || engine == Engine::kCrpq) {
      out += std::string(" direction=") + SearchDirectionName(pc.direction);
    }
    out += " est_rows=" + fmt(pc.est_rows);
    out += " est_cost=" + fmt(pc.est_cost);
    if (pc.threads > 0) {
      out += " parallelism=" + std::to_string(pc.threads);
    }
    out += "\n";
  }
  if (engine == Engine::kProduct && components.size() > 1) {
    out += "  SemiJoinFilter to fixpoint";
    if (semijoin_threads > 0) {
      out += " parallelism=" + std::to_string(semijoin_threads);
    }
    out += "\n";
  }
  if (engine == Engine::kCrpq) {
    out += "  SemiJoinFilter to fixpoint";
    if (semijoin_threads > 0) {
      out += " parallelism=" + std::to_string(semijoin_threads);
    }
    out +=
        ", then backtracking HashJoin\n"
        "  (leaves listed in atom order; the join picks the most-bound "
        "atom dynamically)\n";
  }
  if (linear_check) {
    out += "  LinearConstraintCheck (Parikh/ILP over " +
           std::to_string(query.linear_atoms().size()) + " linear atoms)\n";
  }
  return out;
}

}  // namespace ecrpq
