// Brute-force reference semantics: enumerate all path assignments up to a
// length bound and check the query definition literally (Definition 3.1
// plus the linear-atom semantics of Section 8.2).
//
// Exponential; used as ground truth by property tests and for tiny
// examples. Results are exactly Q(G) restricted to assignments where every
// path has length <= max_len.

#ifndef ECRPQ_CORE_EVAL_BRUTEFORCE_H_
#define ECRPQ_CORE_EVAL_BRUTEFORCE_H_

#include "core/evaluator.h"

namespace ecrpq {

/// One ground answer: head node binding plus head path binding.
struct GroundAnswer {
  std::vector<NodeId> nodes;
  PathTuple paths;
};

/// All ground answers with every assigned path of length <= max_len.
/// Deduplicated, deterministic order. `compiled` (optional) reuses a
/// prior CompileQuery result instead of recompiling inside ResolveQuery.
Result<std::vector<GroundAnswer>> BruteForceAnswers(
    const GraphDb& graph, const Query& query, int max_len,
    CompiledQueryPtr compiled = nullptr);

/// Streaming view over BruteForceAnswers (node tuples only; path answers
/// omitted).
Status EvaluateBruteForce(const GraphDb& graph, const Query& query,
                          const EvalOptions& options, ResultSink& sink,
                          EvalStats& stats,
                          CompiledQueryPtr compiled = nullptr);

/// Materializing convenience wrapper (sorted tuples).
Result<QueryResult> EvaluateBruteForce(const GraphDb& graph,
                                       const Query& query,
                                       const EvalOptions& options);

}  // namespace ecrpq

#endif  // ECRPQ_CORE_EVAL_BRUTEFORCE_H_
