// Cost-based conjunct planner: the layer between the static optimizer and
// the evaluation engines.
//
// The paper evaluates an ECRPQ as one monolithic product over all relation
// atoms (Thm 5.1), but its own complexity analysis locates tractability in
// *decomposition*: acyclic CRPQs join per-atom reachability relations
// (Thm 6.5), and synchronization components can be evaluated independently
// and joined on node variables (the Prop 6.2-style argument the engines
// already exploit structurally). What no layer did before this one exists
// is *choose an order*: which component to evaluate first, and which later
// components should be seeded by the bindings earlier ones produced
// (sideways information passing) instead of enumerating every node.
//
// PlanQuery reads GraphIndex statistics — per-label edge counts, distinct
// source/target counts, automaton sizes — to estimate each component's
// result cardinality, orders components cheapest-first, and marks
// components whose start variables are bound by earlier components for
// seeded execution. The result is a PhysicalPlan: a small operator DAG
// over the operators of core/ops.h (ReachabilityScan / ProductExpand
// leaves, HashJoin between components, SemiJoinFilter reductions,
// LinearConstraintCheck for counting queries).
//
// Planning is a pure function of (query, compiled relations, index
// statistics, options): it never touches the graph's edges, so a plan can
// be cached per query text and re-costed only when the index snapshot
// changes (api::Database does exactly this through PreparedQuery).

#ifndef ECRPQ_CORE_PLANNER_H_
#define ECRPQ_CORE_PLANNER_H_

#include <memory>
#include <string>
#include <vector>

#include "core/eval_product.h"
#include "core/evaluator.h"
#include "graph/index.h"

namespace ecrpq {

enum class OpKind {
  kReachabilityScan,
  kProductExpand,
  kHashJoin,
  kSemiJoinFilter,
  kLinearConstraintCheck,
};

const char* OpKindName(OpKind kind);

/// One planned component leaf plus how it connects to the components
/// executed before it.
struct PlannedComponent {
  std::vector<int> atom_indices;  ///< path-atom indices of this component
  OpKind leaf = OpKind::kProductExpand;
  std::vector<int> vars;         ///< node vars this component binds
  std::vector<int> start_vars;   ///< vars in from-positions
  std::vector<int> end_vars;     ///< vars in to-positions
  std::vector<int> shared_vars;  ///< vars bound by earlier components
  /// Seed this component's execution from the accumulated bindings
  /// (sideways information passing) instead of full node enumeration.
  bool sideways = false;
  double est_rows = -1.0;  ///< cardinality estimate (-1: no statistics)
  double est_cost = -1.0;  ///< full-seeding work estimate
  /// Worker lanes the planner chose for this leaf (morsel-driven
  /// execution, core/parallel.h): the plan's resolved num_threads, or 1
  /// when the cost estimate says the leaf is too small to amortize lane
  /// startup. 0 = unplanned (executor resolves EvalOptions::num_threads).
  int threads = 0;
  /// True when `threads == 1` is a cost-based demotion (est_cost too
  /// small to amortize lanes) rather than a serial session default — the
  /// executor keeps demoted leaves serial even under a larger
  /// per-execution num_threads override.
  bool demoted_serial = false;
  /// Search direction the leaf should run (Explain: `direction=`).
  /// Forward is the classical evaluation; the planner picks backward
  /// when the end side is better anchored / cheaper to expand (distinct
  /// live source/target counts, per-label edge counts, and average
  /// in/out degree along the first live letter sets), and bidirectional
  /// when both sides are fully anchored (constants or sideways seeds).
  /// The executor re-checks feasibility at runtime and degrades when the
  /// seeding assumption fell through; EvalOptions::direction overrides.
  SearchDirection direction = SearchDirection::kForward;
  /// Backward mirror of est_cost (end-side enumeration × reversed-tape
  /// expansion work); -1 without statistics.
  double est_cost_bwd = -1.0;
  /// Worker lanes for the HashJoin that merges this component's table
  /// into the accumulated join pipeline (Explain: the `parallelism=` of
  /// the HashJoin line above this leaf). 0 = no merge join (the first
  /// component in plan order, or an unplanned/uncosted plan); 1 =
  /// inline-serial, the estimated join input is below the partitioned
  /// threshold (mirroring AdaptiveGrain's stay-inline rule for small
  /// item counts); >= 2 = the radix-partitioned parallel join. Like
  /// `threads`, the executor re-resolves the lane count at run time —
  /// the decision that survives num_threads overrides is
  /// join_parallel_ok.
  int join_threads = 0;
  /// Estimate-based eligibility behind join_threads. Independent of the
  /// session's thread count, so the executor's streamed-vs-partitioned
  /// pipeline choice (and with it every reported counter) stays
  /// thread-count independent.
  bool join_parallel_ok = false;
};

struct PhysicalPlan {
  Engine engine = Engine::kProduct;
  /// Components in execution order (cheapest-first when statistics were
  /// available). Size 1 with every atom = monolithic evaluation.
  std::vector<PlannedComponent> components;
  /// Whether the conjunction was decomposed at all.
  bool decomposed = false;
  /// A LinearConstraintCheck operator gates emission (counting engine).
  bool linear_check = false;
  /// True when GraphIndex statistics informed ordering/estimates.
  bool costed = false;
  /// The parallelism EvalOptions::num_threads resolved to at plan time
  /// (ECRPQ_THREADS / hardware concurrency); per-leaf choices are in
  /// PlannedComponent::threads and rendered by Describe/Explain.
  int num_threads = 1;
  /// Worker lanes for the cross-component SemiJoinFilter fixpoint
  /// (Explain: `parallelism=` on the SemiJoinFilter line). 0 = not
  /// applicable (fewer than two components, or an uncosted plan); 1 =
  /// inline-serial (total estimated table volume below the partitioned
  /// threshold); >= 2 = partitioned parallel reduction. The eligibility
  /// that survives num_threads overrides is semijoin_parallel_ok.
  int semijoin_threads = 0;
  /// Estimate-based eligibility behind semijoin_threads.
  bool semijoin_parallel_ok = false;

  /// Multi-line operator-tree rendering (Explain output).
  std::string Describe(const Query& query) const;
};

using PhysicalPlanPtr = std::shared_ptr<const PhysicalPlan>;

/// Estimates the number of distinct node-variable assignments satisfying
/// one synchronization component (the atoms listed in `atom_indices`),
/// from the index's label statistics and the compiled relation automata.
/// Monotone in per-label edge counts. Exposed for tests.
double EstimateComponentCardinality(const Query& query,
                                    const CompiledQuery& compiled,
                                    const std::vector<int>& atom_indices,
                                    const GraphIndex& index);

/// Builds the physical plan for `query`: resolves kAuto against the
/// analysis, decomposes into synchronization components (unless
/// options.use_components is off), costs and orders them, and marks
/// sideways-seeded components. `index` may be null (no statistics: the
/// analysis order is kept and estimates stay at -1).
PhysicalPlan PlanQuery(const Query& query, const CompiledQuery& compiled,
                       const GraphIndex* index, const EvalOptions& options);

}  // namespace ecrpq

#endif  // ECRPQ_CORE_PLANNER_H_
