#include "core/parallel.h"

#include <algorithm>
#include <bit>

namespace ecrpq {

int ResolveNumThreads(int requested) {
  if (requested >= 1) return std::min(requested, 256);
  return ThreadPool::DefaultParallelism();
}

void ParallelMorsels(int lanes, size_t count, size_t grain,
                     const std::function<void(size_t, size_t, int)>& body) {
  if (count == 0) return;
  grain = std::max<size_t>(grain, 1);
  const size_t num_morsels = (count + grain - 1) / grain;
  lanes = std::min<int>(lanes, static_cast<int>(num_morsels));
  if (lanes <= 1) {
    body(0, count, 0);
    return;
  }
  std::atomic<size_t> cursor{0};
  ThreadPool::Shared().RunOnWorkers(lanes, [&](int lane) {
    for (;;) {
      const size_t m = cursor.fetch_add(1, std::memory_order_relaxed);
      if (m >= num_morsels) return;
      const size_t begin = m * grain;
      body(begin, std::min(count, begin + grain), lane);
    }
  });
}

uint64_t MixHash64(uint64_t x) {
  // splitmix64 finalizer.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashProductConfig(const ProductConfig& c) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a
  auto feed = [&h](uint32_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  feed(c.padmask);
  for (NodeId v : c.nodes) feed(static_cast<uint32_t>(v));
  for (int s : c.subset_ids) feed(static_cast<uint32_t>(s));
  return h;
}

ConfigCodec::ConfigCodec(int tracks, int relations, int num_nodes)
    : tracks(tracks), relations(relations) {
  node_bits = std::bit_width(static_cast<uint32_t>(
      std::max(num_nodes - 1, 1)));
  const int used = tracks + tracks * node_bits;
  if (used <= 64 && relations > 0) {
    subset_bits = std::min<int>(31, (64 - used) / relations);
  } else {
    subset_bits = 0;
  }
  packable = (used + relations * subset_bits <= 64) &&
             (relations == 0 || subset_bits >= 1);
}

bool ConfigCodec::TryPack(const ProductConfig& c, uint64_t* out) const {
  uint64_t code = c.padmask;
  int shift = tracks;
  for (NodeId v : c.nodes) {
    code |= static_cast<uint64_t>(static_cast<uint32_t>(v)) << shift;
    shift += node_bits;
  }
  for (int s : c.subset_ids) {
    if (static_cast<int64_t>(s) >= (int64_t{1} << subset_bits)) return false;
    code |= static_cast<uint64_t>(s) << shift;
    shift += subset_bits;
  }
  *out = code;
  return true;
}

void ConfigCodec::Unpack(uint64_t code, ProductConfig* out) const {
  out->padmask =
      static_cast<uint32_t>(code & ((uint64_t{1} << tracks) - 1));
  out->nodes.resize(tracks);
  const uint64_t node_mask = (uint64_t{1} << node_bits) - 1;
  int shift = tracks;
  for (int t = 0; t < tracks; ++t) {
    out->nodes[t] = static_cast<NodeId>((code >> shift) & node_mask);
    shift += node_bits;
  }
  out->subset_ids.resize(relations);
  const uint64_t subset_mask = (uint64_t{1} << subset_bits) - 1;
  for (int r = 0; r < relations; ++r) {
    out->subset_ids[r] = static_cast<int>((code >> shift) & subset_mask);
    shift += subset_bits;
  }
}

EpochVisitedSet::EpochVisitedSet(size_t initial_capacity) {
  capacity_ = std::bit_ceil(std::max<size_t>(initial_capacity, 1024));
  limit_ = capacity_ - capacity_ / 4;
  slots_.reset(new std::atomic<uint64_t>[capacity_]);
  for (size_t i = 0; i < capacity_; ++i) {
    slots_[i].store(0, std::memory_order_relaxed);
  }
}

VisitedInsert EpochVisitedSet::Insert(uint64_t code) {
  if (code == ~uint64_t{0}) {
    return all_ones_claimed_.exchange(true, std::memory_order_relaxed)
               ? VisitedInsert::kPresent
               : VisitedInsert::kNew;
  }
  if (size_.load(std::memory_order_relaxed) >= limit_) {
    return VisitedInsert::kDeferred;
  }
  const uint64_t stored = code + 1;
  size_t i = MixHash64(code) & (capacity_ - 1);
  for (;;) {
    uint64_t cur = slots_[i].load(std::memory_order_relaxed);
    if (cur == stored) return VisitedInsert::kPresent;
    if (cur == 0) {
      if (slots_[i].compare_exchange_strong(cur, stored,
                                            std::memory_order_relaxed)) {
        size_.fetch_add(1, std::memory_order_relaxed);
        return VisitedInsert::kNew;
      }
      // CAS loaded the winner into `cur`: it may be our own code (another
      // lane claimed it first) or a different one (keep probing).
      if (cur == stored) return VisitedInsert::kPresent;
    }
    i = (i + 1) & (capacity_ - 1);
  }
}

bool EpochVisitedSet::ShouldGrow(uint64_t pending) const {
  return (size_.load(std::memory_order_relaxed) + pending) * 2 >= capacity_;
}

void EpochVisitedSet::Grow() {
  const size_t new_cap = capacity_ * 2;
  auto fresh =
      std::unique_ptr<std::atomic<uint64_t>[]>(new std::atomic<uint64_t>[new_cap]);
  for (size_t i = 0; i < new_cap; ++i) {
    fresh[i].store(0, std::memory_order_relaxed);
  }
  for (size_t i = 0; i < capacity_; ++i) {
    const uint64_t stored = slots_[i].load(std::memory_order_relaxed);
    if (stored == 0) continue;
    size_t j = MixHash64(stored - 1) & (new_cap - 1);
    while (fresh[j].load(std::memory_order_relaxed) != 0) {
      j = (j + 1) & (new_cap - 1);
    }
    fresh[j].store(stored, std::memory_order_relaxed);
  }
  slots_ = std::move(fresh);
  capacity_ = new_cap;
  limit_ = new_cap - new_cap / 4;
}

uint64_t EpochVisitedSet::size() const {
  return size_.load(std::memory_order_relaxed) +
         (all_ones_claimed_.load(std::memory_order_relaxed) ? 1 : 0);
}

HybridVisitedTable::HybridVisitedTable(const ConfigCodec& codec, int lanes)
    : codec_(codec), generic_(codec, std::max(lanes, 1) * 4) {}

VisitedInsert HybridVisitedTable::Insert(const ProductConfig& c) {
  if (codec_.packable) {
    uint64_t code;
    if (codec_.TryPack(c, &code)) return packed_.Insert(code);
  }
  return generic_.Insert(c) ? VisitedInsert::kNew : VisitedInsert::kPresent;
}

void HybridVisitedTable::MaintainAtBarrier(uint64_t pending) {
  while (packed_.ShouldGrow(pending)) packed_.Grow();
}

uint64_t HybridVisitedTable::size() const {
  return packed_.size() + generic_.size();
}

size_t AdaptiveGrain(size_t count, int lanes) {
  constexpr size_t kSerialBelow = 192;
  constexpr size_t kMinMorsel = 64;
  if (count < kSerialBelow || lanes <= 1) return std::max<size_t>(count, 1);
  return std::max(kMinMorsel,
                  count / (static_cast<size_t>(lanes) * 4));
}

ShardedVisitedTable::ShardedVisitedTable(const ConfigCodec& codec, int shards)
    : codec_(codec) {
  const size_t n =
      std::bit_ceil(static_cast<size_t>(std::max(shards, 1)));
  shard_mask_ = n - 1;
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    auto s = std::make_unique<Shard>();
    s->packed = codec_.packable;
    s->slots.assign(64, -1);
    if (s->packed) s->keys.assign(64, 0);
    shards_.push_back(std::move(s));
  }
}

void ShardedVisitedTable::InsertSlotPacked(Shard& s, uint64_t code,
                                           int32_t id) {
  size_t i = MixHash64(code) & (s.slots.size() - 1);
  while (s.slots[i] >= 0) i = (i + 1) & (s.slots.size() - 1);
  s.slots[i] = id;
  s.keys[i] = code;
}

void ShardedVisitedTable::InsertSlotGeneric(Shard& s, uint64_t hash,
                                            int32_t id) {
  size_t i = hash & (s.slots.size() - 1);
  while (s.slots[i] >= 0) i = (i + 1) & (s.slots.size() - 1);
  s.slots[i] = id;
}

void ShardedVisitedTable::GrowOrMigrate(Shard& s, bool migrate) {
  const size_t capacity = migrate ? s.slots.size() : s.slots.size() * 2;
  s.slots.assign(capacity, -1);
  if (migrate) {
    s.packed = false;
    s.keys.clear();
    s.keys.shrink_to_fit();
  }
  if (s.packed) {
    s.keys.assign(capacity, 0);
    for (size_t id = 0; id < s.configs.size(); ++id) {
      uint64_t code = 0;
      [[maybe_unused]] bool ok = codec_.TryPack(s.configs[id], &code);
      InsertSlotPacked(s, code, static_cast<int32_t>(id));
    }
  } else {
    for (size_t id = 0; id < s.configs.size(); ++id) {
      InsertSlotGeneric(s, s.hashes[id], static_cast<int32_t>(id));
    }
  }
}

bool ShardedVisitedTable::Insert(const ProductConfig& c) {
  const uint64_t hash = HashProductConfig(c);
  Shard& s = *shards_[(hash >> 32) & shard_mask_];
  std::lock_guard<std::mutex> lock(s.mutex);
  if (s.packed) {
    uint64_t code;
    if (codec_.TryPack(c, &code)) {
      if ((s.size + 1) * 10 >= s.slots.size() * 7) {
        GrowOrMigrate(s, /*migrate=*/false);
      }
      size_t i = MixHash64(code) & (s.slots.size() - 1);
      while (s.slots[i] >= 0) {
        if (s.keys[i] == code) return false;
        i = (i + 1) & (s.slots.size() - 1);
      }
      s.slots[i] = static_cast<int32_t>(s.configs.size());
      s.keys[i] = code;
      s.configs.push_back(c);
      s.hashes.push_back(hash);
      ++s.size;
      return true;
    }
    // A subset id outgrew its bit field: this shard (only) falls back to
    // structural hashing; other shards migrate when they hit the same.
    GrowOrMigrate(s, /*migrate=*/true);
  }
  if ((s.size + 1) * 10 >= s.slots.size() * 7) {
    GrowOrMigrate(s, /*migrate=*/false);
  }
  size_t i = hash & (s.slots.size() - 1);
  while (s.slots[i] >= 0) {
    if (s.hashes[s.slots[i]] == hash && s.configs[s.slots[i]] == c) {
      return false;
    }
    i = (i + 1) & (s.slots.size() - 1);
  }
  s.slots[i] = static_cast<int32_t>(s.configs.size());
  s.configs.push_back(c);
  s.hashes.push_back(hash);
  ++s.size;
  return true;
}

uint64_t ShardedVisitedTable::size() const {
  uint64_t total = 0;
  for (const auto& s : shards_) {
    std::lock_guard<std::mutex> lock(s->mutex);
    total += s->size;
  }
  return total;
}

bool FrontierQueue::PopBatch(size_t max_batch,
                             std::vector<ProductConfig>* out) {
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    if (done_) return false;
    if (!queue_.empty()) {
      out->clear();
      while (!queue_.empty() && out->size() < max_batch) {
        out->push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      ++active_;
      return true;
    }
    if (active_ == 0) {
      done_ = true;
      cv_.notify_all();
      return false;
    }
    cv_.wait(lock);
  }
}

void FrontierQueue::PushBatch(std::vector<ProductConfig>&& batch,
                              bool last_batch_done) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (ProductConfig& c : batch) queue_.push_back(std::move(c));
  if (last_batch_done) --active_;
  if (queue_.empty() && active_ == 0) {
    done_ = true;
    cv_.notify_all();
    return;
  }
  if (!queue_.empty()) cv_.notify_all();
}

void FrontierQueue::Abort() {
  std::lock_guard<std::mutex> lock(mutex_);
  done_ = true;
  queue_.clear();
  cv_.notify_all();
}

}  // namespace ecrpq
