// Physical operator layer: the executable pieces a PhysicalPlan
// (core/planner.h) is made of.
//
// The paper's tractability results all hinge on *decomposing* the
// conjunction: Theorem 6.5 joins per-atom reachability relations, and the
// synchronization-component argument behind Prop 6.2 evaluates each
// component's product independently. This layer turns those two shapes
// into reusable operators over a common currency — the BindingTable, a
// materialized relation over node variables:
//
//   ReachabilityScan   one path atom, all-unary languages: the (u, v)
//                      pair relation via one intersected-NFA BFS
//   ProductExpand      one synchronization component: the on-the-fly
//                      convolution product search (Thm 6.1)
//   HashJoin           natural join of two binding tables on shared vars
//   SemiJoinFilter     reduce a table to rows matched by another
//   LinearConstraintCheck  the counting engine's per-assignment ILP
//                      (recorded as operator stats; see eval_counting.cc)
//
// Leaves support *sideways information passing*: a seed table of bindings
// produced by earlier operators restricts the leaf's start-variable
// enumeration (ProductExpand runs once per seed row; ReachabilityScan
// BFSes only from seeded sources) instead of the full degree-ordered
// seeding over every node. The planner decides when seeding pays off.
//
// Leaves are *direction-aware* (core/planner.h picks per leaf): forward
// expands out-edges from start anchors; backward runs the mirror search
// over GraphIndex::In() slices through the compiled reversed automata
// (ResolvedRelation::rev_*), turning a bound-end/free-start leaf from
// |V| forward searches into one backward search; bidirectional runs both
// half-searches of a fully anchored leaf, always expanding the smaller
// frontier, and stops at the first meet — a forward and a backward
// configuration on the same nodes whose state-subsets intersect for
// every relation (meet-in-the-middle).
//
// Execution is morsel-driven parallel (core/parallel.h) when the caller
// passes num_threads > 1: leaves partition their seed sets (scan sources,
// seed rows, start assignments) into morsels pulled by worker lanes, a
// single fully-anchored product search expands its frontier cooperatively
// against a sharded visited table, and large joins build partitioned
// tables and probe morsel-wise. Workers accumulate into private stats and
// result sets merged at the operator barrier in canonical lane order, so
// results and counters are thread-count-independent; num_threads == 1 is
// the exact legacy single-threaded path.
//
// Every operator appends one OperatorStats entry (rows in/out, frontier
// expansions, visited-table occupancy, worker lanes) to
// EvalStats::operators.

#ifndef ECRPQ_CORE_OPS_H_
#define ECRPQ_CORE_OPS_H_

#include <set>
#include <utility>
#include <vector>

#include "core/eval_product.h"
#include "core/evaluator.h"

namespace ecrpq {

/// A materialized relation over node variables: column i holds bindings
/// of global node-variable `vars[i]`; rows are distinct.
struct BindingTable {
  std::vector<int> vars;
  std::vector<std::vector<NodeId>> rows;

  /// Column index of `var`, or -1 when absent.
  int ColumnOf(int var) const {
    for (size_t i = 0; i < vars.size(); ++i) {
      if (vars[i] == var) return static_cast<int>(i);
    }
    return -1;
  }

  /// The table with no columns and one (empty) row — the join identity.
  static BindingTable Unit() {
    BindingTable t;
    t.rows.push_back({});
    return t;
  }

  /// Size-then-fill bulk append (the GraphDb::FromEdges idiom): grows the
  /// table by `n` empty row slots in one exact reservation and returns
  /// the index of the first, so parallel writers can fill disjoint
  /// slices without reallocation races or per-row push_back churn.
  size_t AppendRowSlots(size_t n) {
    const size_t first = rows.size();
    rows.resize(first + n);
    return first;
  }
};

/// Distinct projection of `table` onto `vars` (each must be a column).
BindingTable ProjectDistinct(const BindingTable& table,
                             const std::vector<int>& vars);

/// A synchronization component prepared for execution: its atoms, local
/// track order, participating relations, and variable roles.
struct ComponentSpec {
  std::vector<int> atom_indices;   // into ResolvedQuery::atoms
  std::vector<int> tracks;         // global path-var ids, local order
  std::vector<int> track_of_path;  // global path id -> local track or -1
  std::vector<int> relation_indices;
  std::vector<int> vars;        // global node-var ids appearing here
  std::vector<int> start_vars;  // vars in from-positions
  std::vector<int> end_vars;    // vars in to-positions
};

ComponentSpec BuildComponentSpec(const ResolvedQuery& rq,
                                 const std::vector<int>& atom_indices);

/// True when the component is a single path atom whose relations are all
/// unary — evaluable by the CRPQ-style intersected-NFA reachability scan
/// instead of the subset-tracking product search.
bool IsReachabilityScanComponent(const ResolvedQuery& rq,
                                 const ComponentSpec& comp);

/// One recorded product configuration (per-track nodes + interned relation
/// state-subset ids); the product graph of a component search, used for
/// Prop 5.2 path answers and the counting engine's flow encodings.
struct ProductConfig {
  uint32_t padmask = 0;
  std::vector<NodeId> nodes;    // per local track
  std::vector<int> subset_ids;  // per component relation

  bool operator==(const ProductConfig& other) const = default;
};

struct ProductGraphSink {
  // state ids parallel to discovery order of configs
  std::vector<ProductConfig> configs;
  std::vector<std::vector<std::pair<std::vector<Symbol>, int>>> arcs;
  std::vector<bool> initial;
  std::vector<bool> accepting;
};

/// Executes one component leaf (ReachabilityScan or ProductExpand,
/// dispatched by shape). `fixed` pins global node variables (-1 = free).
/// When `seeds` is non-null (sideways information passing) the leaf is
/// restricted to assignments compatible with at least one seed row:
/// ProductExpand runs once per seed row with the row overlaid on `fixed`;
/// ReachabilityScan BFSes only from seeded source nodes and filters ends.
/// Satisfying component assignments (parallel to comp.vars) accumulate in
/// `results`; the product graph is recorded into `graph_sink` when
/// non-null (graph recording forces the ProductExpand path, serial
/// execution, and the forward direction). `direction` is the planner's
/// per-leaf choice (kAuto = forward); EvalOptions::direction overrides
/// it, and infeasible requests degrade (bidirectional needs every
/// endpoint bound by fixed/seeds/constants, else it falls back to
/// backward when the end side is bound, else forward). `num_threads` is
/// the leaf's worker-lane count (1 = exact legacy serial execution;
/// callers resolve EvalOptions::num_threads via ResolveNumThreads
/// first). Appends one OperatorStats entry with the given planner
/// estimate (`est_rows` < 0 when unplanned), the executed direction, and
/// — for bidirectional leaves — the meet-probe count.
Status ExecuteComponentOp(const ResolvedQuery& rq, const ComponentSpec& comp,
                          const EvalOptions& options,
                          const std::vector<NodeId>& fixed,
                          const BindingTable* seeds, double est_rows,
                          SearchDirection direction, int num_threads,
                          EvalStats& stats,
                          std::set<std::vector<NodeId>>* results,
                          ProductGraphSink* graph_sink);

/// Natural hash join on shared variables, materialized; output columns
/// are left.vars followed by right's non-shared vars. Rows stay distinct.
/// Appends a HashJoin OperatorStats entry (with build/probe row counts
/// merged from the per-lane counters). (The product engine streams its
/// final multi-way join for limit/exists pushdown on small plans and
/// folds large-estimate plans through this operator pairwise; see
/// eval_product.cc.) With num_threads > 1 and enough rows the join runs
/// radix-partitioned: per-morsel partition counters size one exact
/// reservation, lanes scatter build rows into per-partition slices and
/// build each partition's hash table independently, and the probe runs
/// morsel-wise in two passes (match, then size-then-fill into the
/// reserved output). The partition count depends only on the input
/// sizes — never the lane count — and probe matches concatenate in
/// canonical partition/morsel order, so the output rows (and their
/// order, identical to the serial probe's) are thread-count independent.
BindingTable HashJoinOp(const BindingTable& left, const BindingTable& right,
                        EvalStats& stats, int num_threads = 1);

/// Keeps rows of `target` matched by some row of `filter` on their shared
/// variables (no-op without shared variables). Appends a SemiJoinFilter
/// entry when rows were actually removed. Returns true when `target`
/// shrank. Parallel (partitioned build, morsel-wise probe, order
/// preserved) under the same conditions as HashJoinOp.
bool SemiJoinFilterOp(BindingTable* target, const BindingTable& filter,
                      EvalStats& stats, int num_threads = 1);

}  // namespace ecrpq

#endif  // ECRPQ_CORE_OPS_H_
