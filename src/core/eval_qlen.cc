#include "core/eval_qlen.h"

#include <algorithm>
#include <functional>
#include <map>
#include <numeric>
#include <set>

#include "automata/operations.h"
#include "automata/unary.h"
#include "core/eval_product.h"
#include "query/builder.h"
#include "relations/builtin.h"

namespace ecrpq {

namespace {

// Distinct successors of `v` with labels ignored (ascending): the unary
// abstraction of a node's out-neighbourhood, shared by the product
// fallback's graph construction and the arithmetic path's skeleton NFA.
void DistinctSuccessors(const GraphDb& graph, const GraphIndex* index,
                        NodeId v, std::vector<NodeId>* targets) {
  targets->clear();
  if (index != nullptr) {
    auto slice = index->OutTargets(v);
    targets->assign(slice.begin(), slice.end());
  } else {
    for (const auto& [label, to] : graph.Out(v)) {
      (void)label;
      targets->push_back(to);
    }
  }
  std::sort(targets->begin(), targets->end());
  targets->erase(std::unique(targets->begin(), targets->end()),
                 targets->end());
}

// Relabels a length-abstracted relation onto a one-letter base alphabet:
// every non-pad component becomes letter 0. Used by the product-based
// fallback for non-equal-length length relations.
RegularRelation RelabelToUnary(const RegularRelation& rel) {
  const TupleAlphabet& src_ta = rel.tuple_alphabet();
  TupleAlphabet dst_ta(1, rel.arity());
  const Nfa& src = rel.nfa();
  Nfa out(dst_ta.num_symbols());
  out.AddStates(src.num_states());
  for (StateId s = 0; s < src.num_states(); ++s) {
    if (src.IsInitial(s)) out.SetInitial(s);
    if (src.IsAccepting(s)) out.SetAccepting(s);
    std::vector<std::pair<Symbol, StateId>> seen;
    for (const Nfa::Arc& arc : src.ArcsFrom(s)) {
      if (arc.first == kEpsilon) {
        out.AddTransition(s, kEpsilon, arc.second);
        continue;
      }
      TupleLetter letter = src_ta.Decode(arc.first);
      for (Symbol& c : letter) {
        if (c != kPad) c = 0;
      }
      Symbol id = dst_ta.Encode(letter);
      std::pair<Symbol, StateId> key{id, arc.second};
      if (std::find(seen.begin(), seen.end(), key) != seen.end()) continue;
      seen.push_back(key);
      out.AddTransition(s, id, arc.second);
    }
  }
  return RegularRelation(1, rel.arity(), std::move(out),
                         /*trusted_valid=*/true);
}

// True iff the relation's length abstraction is exactly "all components
// have equal length" (the el-like class the arithmetic fast path handles).
bool IsEqualLengthLike(const RegularRelation& rel) {
  constexpr int kCutoffStates = 128;
  if (rel.nfa().num_states() > kCutoffStates) return false;
  RegularRelation abstracted = rel.LengthAbstraction();
  RegularRelation el = AllEqualLengthRelation(rel.base_size(), rel.arity());
  return IsSubsetOf(abstracted.nfa(), el.nfa()) &&
         IsSubsetOf(el.nfa(), abstracted.nfa());
}

// Product-based fallback (general length relations): erase edge labels and
// replace every relation by its unary-relabeled length abstraction, then
// run the product engine.
Status EvaluateQlenProduct(const GraphDb& graph, const Query& query,
                           const EvalOptions& options, ResultSink& sink,
                           EvalStats& stats, const GraphIndex* index) {
  auto unary_alphabet = Alphabet::FromLabels({"."});
  GraphDb named_unary(unary_alphabet);
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    named_unary.AddNode(graph.NodeName(v));
  }
  std::vector<NodeId> targets;
  for (NodeId v = 0; v < graph.num_nodes(); ++v) {
    DistinctSuccessors(graph, index, v, &targets);
    for (NodeId to : targets) named_unary.AddEdge(v, Symbol{0}, to);
  }

  QueryBuilder builder;
  for (const PathAtom& atom : query.path_atoms()) {
    builder.Atom(atom.from, atom.path, atom.to);
  }
  for (const RelationAtom& atom : query.relation_atoms()) {
    auto abstracted = std::make_shared<RegularRelation>(
        RelabelToUnary(atom.relation->LengthAbstraction()));
    builder.Relation(std::move(abstracted), atom.paths, atom.name + "_len");
  }
  std::vector<std::string> head_nodes;
  for (const NodeTerm& term : query.head_nodes()) {
    head_nodes.push_back(term.name);
  }
  builder.Head(std::move(head_nodes), {});
  auto qlen_query = builder.Build();
  if (!qlen_query.ok()) return qlen_query.status();

  Status st =
      EvaluateProduct(named_unary, qlen_query.value(), options, sink, stats);
  stats.engine = "qlen-product";
  if (options.cancellation != nullptr &&
      options.cancellation->cancelled()) {
    return Status::Cancelled("query execution cancelled");
  }

  return st;
}

// Reusable unary length skeleton of a graph: states are the graph nodes,
// one unlabeled arc per distinct (source, target) successor pair, built
// once. The pinned-assignment loop of the arithmetic fast path previously
// rebuilt the full labeled graph NFA (O(V + E)) for every atom of every
// assignment only to erase its labels again; this view swaps the endpoint
// flags in O(|starts| + |ends|) and shares the transition structure.
class UnaryGraphView {
 public:
  UnaryGraphView(const GraphDb& graph, const GraphIndex* index) : nfa_(1) {
    nfa_.AddStates(graph.num_nodes());
    std::vector<NodeId> targets;
    for (NodeId v = 0; v < graph.num_nodes(); ++v) {
      DistinctSuccessors(graph, index, v, &targets);
      for (NodeId to : targets) nfa_.AddTransition(v, 0, to);
    }
  }

  /// The skeleton with exactly `starts` initial and `ends` accepting.
  const Nfa& WithEndpoints(const std::vector<NodeId>& starts,
                           const std::vector<NodeId>& ends) {
    for (NodeId v : flagged_initial_) nfa_.SetInitial(v, false);
    for (NodeId v : flagged_accepting_) nfa_.SetAccepting(v, false);
    flagged_initial_ = starts;
    flagged_accepting_ = ends;
    for (NodeId v : starts) nfa_.SetInitial(v);
    for (NodeId v : ends) nfa_.SetAccepting(v);
    return nfa_;
  }

 private:
  Nfa nfa_;
  std::vector<NodeId> flagged_initial_, flagged_accepting_;
};

// Union-find over track (path-variable) indices.
class UnionFind {
 public:
  explicit UnionFind(int n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  int Find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Merge(int a, int b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<int> parent_;
};

}  // namespace

Status EvaluateQlen(const GraphDb& graph, const Query& query,
                    const EvalOptions& options, ResultSink& sink,
                    EvalStats& stats, CompiledQueryPtr compiled,
                    GraphIndexPtr index) {
  if (!query.head_paths().empty()) {
    return Status::Unimplemented(
        "Q_len abstracts paths to lengths; path outputs are undefined "
        "under the abstraction");
  }
  if (!query.linear_atoms().empty()) {
    return Status::FailedPrecondition(
        "linear atoms belong to the counting engine, not Q_len");
  }

  auto resolved_or =
      ResolveQuery(graph, query, std::move(compiled), std::move(index));
  if (!resolved_or.ok()) return resolved_or.status();
  ResolvedQuery& rq = resolved_or.value();

  // Arithmetic fast path (the progression machinery of Claim 6.7.1/2):
  // applicable when every >=2-ary relation abstracts to equal-length.
  // The index is built only once an engine path is committed.
  for (const ResolvedRelation& rel : rq.relations()) {
    if (rel.relation->arity() >= 2 && !IsEqualLengthLike(*rel.relation)) {
      return EvaluateQlenProduct(graph, query, options, sink, stats,
                                 rq.index.get());
    }
  }

  stats.engine = "qlen";
  if (options.cancellation != nullptr &&
      options.cancellation->cancelled()) {
    return Status::Cancelled("query execution cancelled");
  }

  if (options.use_graph_index && rq.index == nullptr) {
    rq.index = GraphIndex::Build(graph);
  }
  UnaryGraphView length_view(graph, rq.index.get());

  const int num_tracks = static_cast<int>(query.path_variables().size());
  const int num_vars = static_cast<int>(query.node_variables().size());

  // Length-equality classes over tracks.
  UnionFind classes(num_tracks);
  for (const ResolvedRelation& rel : rq.relations()) {
    if (rel.relation->arity() < 2) continue;
    for (size_t i = 1; i < rel.paths.size(); ++i) {
      classes.Merge(rel.paths[0], rel.paths[i]);
    }
  }

  // Per-track unary language length automata (lengths of words in L).
  std::vector<std::vector<Nfa>> track_length_langs(num_tracks);
  for (const ResolvedRelation& rel : rq.relations()) {
    if (rel.relation->arity() != 1) continue;
    auto lang = rel.relation->ToLanguageNfa();
    if (!lang.ok()) return lang.status();
    track_length_langs[rel.paths[0]].push_back(
        LengthAutomaton(lang.value()));
  }

  // Pinned variables: head vars plus vars with >= 2 endpoint occurrences.
  std::vector<int> occurrences(num_vars, 0);
  for (const ResolvedAtom& atom : rq.atoms) {
    if (!atom.from.is_const) ++occurrences[atom.from.var];
    if (!atom.to.is_const) ++occurrences[atom.to.var];
  }
  std::vector<bool> pinned(num_vars, false);
  for (const NodeTerm& term : query.head_nodes()) {
    pinned[query.NodeVarIndex(term.name)] = true;
  }
  for (int v = 0; v < num_vars; ++v) {
    if (occurrences[v] >= 2) pinned[v] = true;
  }
  // Repeated path variables bind one path to several endpoint pairs; the
  // per-atom intersection below is only exact when those endpoints are
  // concrete, so pin all of them.
  for (const auto& atoms : query.atoms_of_path()) {
    if (atoms.size() < 2) continue;
    for (int idx : atoms) {
      if (!rq.atoms[idx].from.is_const) pinned[rq.atoms[idx].from.var] = true;
      if (!rq.atoms[idx].to.is_const) pinned[rq.atoms[idx].to.var] = true;
    }
  }
  std::vector<int> pinned_vars;
  for (int v = 0; v < num_vars; ++v) {
    if (pinned[v]) pinned_vars.push_back(v);
  }

  // Evaluate one pinned assignment: per class, intersect member tracks'
  // length sets; unpinned endpoints union over all nodes (sound because
  // they occur nowhere else).
  HeadTupleEmitter emitter(rq, options, sink);
  std::vector<NodeId> binding(num_vars, -1);

  auto endpoint_states = [&](const ResolvedTerm& term,
                             std::vector<NodeId>* out) {
    if (term.is_const) {
      out->push_back(term.node);
    } else if (binding[term.var] >= 0) {
      out->push_back(binding[term.var]);
    } else {
      for (NodeId v = 0; v < graph.num_nodes(); ++v) out->push_back(v);
    }
  };

  auto check_assignment = [&]() -> bool {
    // Group tracks by class representative.
    std::map<int, std::vector<int>> members;
    for (int t = 0; t < num_tracks; ++t) {
      members[classes.Find(t)].push_back(t);
    }
    for (const auto& [rep, tracks] : members) {
      (void)rep;
      std::optional<SemilinearSet1D> class_set;
      for (int t : tracks) {
        // Track automaton: graph as a unary NFA between the track's
        // endpoint candidates; repeated path variables intersect by
        // running each atom's endpoints as separate automata.
        std::optional<SemilinearSet1D> track_set;
        for (size_t a = 0; a < rq.atoms.size(); ++a) {
          if (rq.atoms[a].path != t) continue;
          std::vector<NodeId> starts, ends;
          endpoint_states(rq.atoms[a].from, &starts);
          endpoint_states(rq.atoms[a].to, &ends);
          // Shared unary skeleton; only the endpoint flags change per
          // assignment (lengths ignore labels, so nothing else does).
          const Nfa& base = length_view.WithEndpoints(starts, ends);
          SemilinearSet1D lengths;
          if (track_length_langs[t].empty()) {
            lengths = AcceptedLengths(base);
          } else {
            Nfa nfa = IntersectNfa(base, track_length_langs[t][0]);
            for (size_t li = 1; li < track_length_langs[t].size(); ++li) {
              nfa = IntersectNfa(nfa, track_length_langs[t][li]);
            }
            lengths = AcceptedLengths(nfa);
          }
          track_set = track_set.has_value()
                          ? IntersectSemilinear(*track_set, lengths)
                          : lengths;
        }
        if (!track_set.has_value()) continue;  // unused track: impossible
        class_set = class_set.has_value()
                        ? IntersectSemilinear(*class_set, *track_set)
                        : *track_set;
        if (class_set->IsEmpty()) return false;
      }
      if (class_set.has_value() && class_set->IsEmpty()) return false;
    }
    return true;
  };

  // The plan's LinearConstraintCheck operator in its length-abstraction
  // form: one arithmetic-progression feasibility check per assignment.
  OperatorStats check_op;
  check_op.op = "LinearConstraintCheck";
  check_op.detail = "length abstraction";

  bool stop = false;
  std::function<void(size_t)> enumerate = [&](size_t i) {
    if (stop) return;
    if (i == pinned_vars.size()) {
      ++stats.start_assignments;
      ++check_op.rows_in;
      if (check_assignment()) {
        ++check_op.rows_out;
        std::vector<NodeId> head;
        for (const NodeTerm& term : query.head_nodes()) {
          head.push_back(binding[query.NodeVarIndex(term.name)]);
        }
        if (!emitter.Emit(head)) stop = true;
      }
      return;
    }
    int var = pinned_vars[i];
    for (NodeId v = 0; v < graph.num_nodes() && !stop; ++v) {
      binding[var] = v;
      enumerate(i + 1);
    }
    binding[var] = -1;
  };
  enumerate(0);
  stats.operators.push_back(std::move(check_op));
  return emitter.status();
}

Result<QueryResult> EvaluateQlen(const GraphDb& graph, const Query& query,
                                 const EvalOptions& options) {
  return MaterializeResult([&](ResultSink& sink, EvalStats& stats) {
    return EvaluateQlen(graph, query, options, sink, stats);
  });
}

SemilinearSet1D PathLengthSet(const GraphDb& graph, NodeId from, NodeId to,
                              const RegularRelation* language) {
  Nfa nfa = graph.ToNfa({from}, {to});
  if (language != nullptr) {
    ECRPQ_DCHECK(language->arity() == 1);
    auto lang_nfa = language->ToLanguageNfa();
    ECRPQ_DCHECK(lang_nfa.ok());
    nfa = IntersectNfa(nfa, lang_nfa.value());
  }
  return AcceptedLengths(nfa);
}

namespace {
// (a + bN) ∩ (c + dN) as a progression, or nullopt.
std::optional<Progression> IntersectProgressions(const Progression& p,
                                                 const Progression& q) {
  if (p.period == 0 && q.period == 0) {
    if (p.base == q.base) return p;
    return std::nullopt;
  }
  if (p.period == 0) {
    if (q.Contains(p.base)) return p;
    return std::nullopt;
  }
  if (q.period == 0) {
    if (p.Contains(q.base)) return q;
    return std::nullopt;
  }
  // Solve p.base + p.period*i == q.base + q.period*j, i,j >= 0.
  int64_t g = std::gcd(p.period, q.period);
  if ((q.base - p.base) % g != 0) return std::nullopt;
  int64_t lcm = p.period / g * q.period;
  // Find the smallest common value >= max(p.base, q.base) by stepping the
  // larger-based progression (bounded by lcm / step count).
  int64_t start = std::max(p.base, q.base);
  // Align start to p's progression.
  int64_t v = p.base + ((start - p.base + p.period - 1) / p.period) * p.period;
  for (int64_t step = 0; step <= lcm / p.period + 1; ++step) {
    if (q.Contains(v) && p.Contains(v)) return Progression{v, lcm};
    v += p.period;
  }
  return std::nullopt;
}
}  // namespace

SemilinearSet1D IntersectSemilinear(const SemilinearSet1D& a,
                                    const SemilinearSet1D& b) {
  SemilinearSet1D out;
  for (const Progression& p : a.progressions()) {
    for (const Progression& q : b.progressions()) {
      auto r = IntersectProgressions(p, q);
      if (r.has_value()) out.Add(*r);
    }
  }
  out.Normalize();
  return out;
}

}  // namespace ecrpq
