#include "core/containment.h"

#include <cctype>
#include <map>
#include <numeric>

#include "automata/operations.h"
#include "core/eval_product.h"
#include "query/analysis.h"
#include "query/builder.h"
#include "relations/builtin.h"

namespace ecrpq {

namespace {

// Extracts the single-atom shape: Ans(x,y) <- (x,π,y), L1(π)...Lt(π).
// Returns the intersection language NFA, or an error.
Result<Nfa> SingleAtomLanguage(const Query& q) {
  if (q.path_atoms().size() != 1 || !q.linear_atoms().empty()) {
    return Status::InvalidArgument("query is not single-atom");
  }
  const PathAtom& atom = q.path_atoms()[0];
  if (atom.from.is_constant || atom.to.is_constant) {
    return Status::InvalidArgument("single-atom check requires variables");
  }
  if (q.head_nodes().size() != 2 || !q.head_paths().empty() ||
      q.head_nodes()[0].name != atom.from.name ||
      q.head_nodes()[1].name != atom.to.name ||
      atom.from.name == atom.to.name) {
    return Status::InvalidArgument(
        "single-atom check requires head Ans(x, y) with distinct x, y");
  }
  int base = -1;
  for (const RelationAtom& rel : q.relation_atoms()) {
    if (rel.relation->arity() != 1) {
      return Status::InvalidArgument("single-atom check requires unary "
                                     "relations");
    }
    base = rel.relation->base_size();
  }
  if (base < 0) {
    return Status::InvalidArgument(
        "single-atom check requires at least one language atom (to fix the "
        "alphabet)");
  }
  Nfa lang = UniverseNfa(base);
  for (const RelationAtom& rel : q.relation_atoms()) {
    auto nfa = rel.relation->ToLanguageNfa();
    if (!nfa.ok()) return nfa.status();
    lang = IntersectNfa(lang, nfa.value());
  }
  return lang;
}

}  // namespace

Result<bool> SingleAtomContained(const Query& q1, const Query& q2) {
  auto l1 = SingleAtomLanguage(q1);
  if (!l1.ok()) return l1.status();
  auto l2 = SingleAtomLanguage(q2);
  if (!l2.ok()) return l2.status();
  if (l1.value().num_symbols() != l2.value().num_symbols()) {
    return Status::InvalidArgument("queries use different alphabets");
  }
  return IsSubsetOf(l1.value(), l2.value());
}

Result<ContainmentResult> CheckContainmentBounded(
    const Query& q, const Query& q_prime, const ContainmentOptions& options) {
  QueryAnalysis analysis = Analyze(q);
  if (analysis.has_relational_repetition) {
    return Status::Unimplemented(
        "bounded containment search does not support repeated path "
        "variables in the left query");
  }
  if (!q.head_paths().empty() || !q_prime.head_paths().empty()) {
    return Status::Unimplemented(
        "bounded containment search supports node heads only");
  }
  if (!q.linear_atoms().empty() || !q_prime.linear_atoms().empty()) {
    return Status::Unimplemented(
        "bounded containment search does not support linear atoms");
  }
  if (q.head_nodes().size() != q_prime.head_nodes().size()) {
    return Status::InvalidArgument("queries have different head arities");
  }

  // Base alphabet size: from any relation of either query.
  int base = -1;
  for (const RelationAtom& rel : q.relation_atoms()) {
    base = rel.relation->base_size();
  }
  for (const RelationAtom& rel : q_prime.relation_atoms()) {
    if (base >= 0 && rel.relation->base_size() != base) {
      return Status::InvalidArgument("queries use different alphabets");
    }
    if (base < 0) base = rel.relation->base_size();
  }
  if (base < 0) {
    return Status::InvalidArgument(
        "cannot infer the alphabet (no relation atoms)");
  }

  const int m = static_cast<int>(q.path_variables().size());
  // Joined relation S_Q over the m path variables.
  RegularRelation joined = UniversalRelation(base, m);
  for (const RelationAtom& rel : q.relation_atoms()) {
    std::vector<int> positions;
    for (const std::string& p : rel.paths) {
      positions.push_back(q.PathVarIndex(p));
    }
    auto lifted = rel.relation->Cylindrify(m, positions);
    if (!lifted.ok()) {
      // Repeated variables within one atom tuple: handle by intersecting
      // with equality first.
      return Status::Unimplemented(
          "bounded containment with repeated variables inside a relation "
          "tuple is not supported");
    }
    auto next = RegularRelation::Intersect(joined, lifted.value());
    if (!next.ok()) return next.status();
    joined = std::move(next).value();
  }

  // Candidate canonical label tuples.
  std::vector<std::vector<Word>> candidates = joined.EnumerateMembers(
      options.max_candidates, options.max_word_length);

  // Shared alphabet for canonical graphs: labels "l0", "l1", ... — but the
  // queries' relations are keyed by symbol id, so the canonical graph must
  // use an alphabet of exactly `base` symbols. Build it once.
  auto alphabet = std::make_shared<Alphabet>();
  for (Symbol a = 0; a < base; ++a) {
    alphabet->Intern("s" + std::to_string(a));
  }

  ContainmentResult result;
  for (const auto& words : candidates) {
    // Build the σ-canonical graph: one fresh simple path per atom,
    // endpoints identified according to shared node variables (distinct
    // variables map to distinct nodes).
    GraphDb graph(alphabet);
    std::map<std::string, NodeId> var_node;
    auto endpoint = [&](const NodeTerm& term) -> NodeId {
      const std::string key =
          term.is_constant ? ("const:" + term.name) : ("var:" + term.name);
      auto it = var_node.find(key);
      if (it != var_node.end()) return it->second;
      NodeId v = term.is_constant ? graph.AddNode(term.name) : graph.AddNode();
      var_node.emplace(key, v);
      return v;
    };
    for (size_t i = 0; i < q.path_atoms().size(); ++i) {
      const PathAtom& atom = q.path_atoms()[i];
      const Word& label = words[q.PathVarIndex(atom.path)];
      NodeId at = endpoint(atom.from);
      NodeId end = endpoint(atom.to);
      if (label.empty()) {
        // Empty path: endpoints coincide; skip graphs where the
        // identification is inconsistent with distinct variables.
        if (at != end) goto next_candidate;
        continue;
      }
      for (size_t j = 0; j < label.size(); ++j) {
        NodeId next = (j + 1 == label.size()) ? end : graph.AddNode();
        graph.AddEdge(at, label[j], next);
        at = next;
      }
    }
    {
      // Head tuple under σ.
      std::vector<NodeId> head;
      for (const NodeTerm& term : q.head_nodes()) {
        head.push_back(var_node.at("var:" + term.name));
      }
      // Q holds on the canonical graph by construction; check Q'.
      Evaluator evaluator(&graph, options.eval);
      auto rhs = evaluator.Evaluate(q_prime);
      if (!rhs.ok()) return rhs.status();
      bool found = false;
      for (const auto& tuple : rhs.value().tuples()) {
        if (tuple == head) {
          found = true;
          break;
        }
      }
      if (!found) {
        result.verdict = Containment::kNotContained;
        result.counterexample = std::move(graph);
        return result;
      }
    }
  next_candidate:;
  }
  result.verdict = Containment::kUnknownUpToBound;
  return result;
}

Result<Query> PatternQuery(std::string_view pattern,
                           const Alphabet& alphabet) {
  if (pattern.empty()) {
    return Status::InvalidArgument("empty pattern");
  }
  QueryBuilder builder;
  auto equality = std::make_shared<RegularRelation>(
      EqualityRelation(alphabet.size()));
  std::map<char, std::vector<std::string>> variable_paths;
  std::vector<std::string> letter_paths;  // (path, letter) atoms
  std::vector<std::pair<std::string, Symbol>> letter_atoms;

  for (size_t i = 0; i < pattern.size(); ++i) {
    char c = pattern[i];
    std::string from = "x" + std::to_string(i);
    std::string to = "x" + std::to_string(i + 1);
    std::string path = "pi" + std::to_string(i);
    builder.Atom(from, path, to);
    if (std::isupper(static_cast<unsigned char>(c))) {
      variable_paths[c].push_back(path);
    } else {
      auto sym = alphabet.Find(std::string_view(&c, 1));
      if (!sym.has_value()) {
        return Status::NotFound(std::string("pattern letter '") + c +
                                "' not in alphabet");
      }
      letter_atoms.emplace_back(path, *sym);
    }
  }
  // Terminal letters: single-word languages.
  for (const auto& [path, sym] : letter_atoms) {
    Nfa nfa(alphabet.size());
    StateId s0 = nfa.AddState();
    StateId s1 = nfa.AddState();
    nfa.SetInitial(s0);
    nfa.SetAccepting(s1);
    nfa.AddTransition(s0, sym, s1);
    builder.Language(nfa, alphabet.size(), path);
  }
  // Repeated variables: equality chains.
  for (const auto& [var, paths] : variable_paths) {
    (void)var;
    for (size_t i = 1; i < paths.size(); ++i) {
      builder.Relation(equality, {paths[0], paths[i]}, "eq");
    }
  }
  builder.Head({"x0", "x" + std::to_string(pattern.size())});
  return builder.Build();
}

}  // namespace ecrpq
