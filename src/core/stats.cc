#include "core/stats.h"

namespace ecrpq {

std::string OperatorStats::Describe() const {
  std::string out = op;
  if (!detail.empty()) out += "(" + detail + ")";
  out += " rows_in=" + std::to_string(rows_in) +
         " rows_out=" + std::to_string(rows_out);
  if (frontier_expansions > 0) {
    out += " frontier=" + std::to_string(frontier_expansions);
  }
  if (visited_configs > 0) {
    out += " visited=" + std::to_string(visited_configs);
  }
  if (meet_checks > 0) {
    out += " meet_checks=" + std::to_string(meet_checks);
  }
  if (build_rows > 0) out += " build=" + std::to_string(build_rows);
  if (probe_rows > 0) out += " probe=" + std::to_string(probe_rows);
  if (!direction.empty()) out += " direction=" + direction;
  if (est_rows >= 0.0) {
    out += " est_rows=" + std::to_string(static_cast<long long>(est_rows));
  }
  if (threads > 1) out += " threads=" + std::to_string(threads);
  return out;
}

}  // namespace ecrpq
