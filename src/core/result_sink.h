// Streaming result delivery for the evaluation engines.
//
// Engines emit each distinct answer tuple through a ResultSink as soon as
// it is discovered, instead of materializing the whole answer set. A sink
// can stop evaluation early by returning false from Emit — this is how
// cursor `limit` and `exists()` push termination down into the engines
// (the search stops, remaining path-answer automata are never built).
//
// Tuples arrive in discovery order, deduplicated. Callers that need the
// canonical sorted order (the QueryResult contract) sort after the run —
// see MaterializingSink::SortRows.
//
// Ordering contract under parallelism
// -----------------------------------
// Sinks are always driven from ONE thread: engines run their parallel
// work inside operator leaves, merge per-worker results at barrier
// points, and only then stream head tuples through the (serial) join into
// the sink. Sink implementations therefore need no internal locking.
// With EvalOptions::deterministic set (the default), those barrier merges
// fold worker outputs in canonical seed order, so the emission sequence —
// and hence which k tuples an early-terminating sink keeps — is
// independent of EvalOptions::num_threads. With deterministic off,
// operator leaves may fold worker outputs in completion order: the tuple
// SET is unchanged, but the emission order (and a limit's cut) may vary
// between runs.
//
// Early termination and cancellation: returning false from Emit stops the
// engine as before; when the execution carries a CancellationToken
// (EvalOptions::cancellation), the engine also trips it so that any
// workers still running unwind promptly.

#ifndef ECRPQ_CORE_RESULT_SINK_H_
#define ECRPQ_CORE_RESULT_SINK_H_

#include <cstdint>
#include <vector>

#include "core/path_answers.h"
#include "graph/graph.h"

namespace ecrpq {

/// Consumer of answer tuples produced by an evaluation engine.
class ResultSink {
 public:
  virtual ~ResultSink() = default;

  /// One distinct head-node binding. `paths` is the Prop 5.2 answer
  /// automaton for the tuple when the query head has path variables and
  /// path answers were requested, else null; the sink may move from it
  /// (the engine builds one per tuple and does not reuse it). Returns
  /// false to request early termination: the engine stops searching and
  /// returns OK.
  virtual bool Emit(const std::vector<NodeId>& tuple,
                    PathAnswerSet* paths) = 0;
};

/// A sink that materializes rows, optionally stopping after `limit` rows.
class MaterializingSink : public ResultSink {
 public:
  /// `limit` = 0 means unlimited.
  explicit MaterializingSink(uint64_t limit = 0) : limit_(limit) {}

  bool Emit(const std::vector<NodeId>& tuple, PathAnswerSet* paths) override;

  /// True if Emit stopped the engine because `limit` was reached.
  bool limit_reached() const { return limit_reached_; }

  /// Restores the canonical sorted-by-tuple order (engines emit in
  /// discovery order); keeps path_answers parallel to tuples.
  void SortRows();

  std::vector<std::vector<NodeId>> tuples;
  /// Empty, or parallel to `tuples`.
  std::vector<PathAnswerSet> path_answers;

 private:
  uint64_t limit_;
  bool limit_reached_ = false;
};

}  // namespace ecrpq

#endif  // ECRPQ_CORE_RESULT_SINK_H_
