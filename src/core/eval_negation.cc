#include "core/eval_negation.h"

#include <algorithm>
#include <functional>
#include <set>

#include "automata/operations.h"

namespace ecrpq {

// ---------------------------------------------------------------------------
// Formula construction
// ---------------------------------------------------------------------------

namespace {
FormulaPtr Make(Formula&& f) {
  return std::make_shared<const Formula>(std::move(f));
}
}  // namespace

FormulaPtr Formula::PathAtom(std::string x, std::string pi, std::string y) {
  Formula f;
  f.kind_ = Kind::kPathAtom;
  f.name1_ = std::move(x);
  f.name2_ = std::move(pi);
  f.name3_ = std::move(y);
  return Make(std::move(f));
}
FormulaPtr Formula::NodeEq(std::string x, std::string y) {
  Formula f;
  f.kind_ = Kind::kNodeEq;
  f.name1_ = std::move(x);
  f.name2_ = std::move(y);
  return Make(std::move(f));
}
FormulaPtr Formula::PathEq(std::string pi1, std::string pi2) {
  Formula f;
  f.kind_ = Kind::kPathEq;
  f.name1_ = std::move(pi1);
  f.name2_ = std::move(pi2);
  return Make(std::move(f));
}
FormulaPtr Formula::Relation(std::shared_ptr<const RegularRelation> rel,
                             std::vector<std::string> paths) {
  Formula f;
  f.kind_ = Kind::kRelation;
  f.relation_ = std::move(rel);
  f.paths_ = std::move(paths);
  return Make(std::move(f));
}
FormulaPtr Formula::Not(FormulaPtr sub) {
  Formula f;
  f.kind_ = Kind::kNot;
  f.left_ = std::move(sub);
  return Make(std::move(f));
}
FormulaPtr Formula::And(FormulaPtr a, FormulaPtr b) {
  Formula f;
  f.kind_ = Kind::kAnd;
  f.left_ = std::move(a);
  f.right_ = std::move(b);
  return Make(std::move(f));
}
FormulaPtr Formula::Or(FormulaPtr a, FormulaPtr b) {
  Formula f;
  f.kind_ = Kind::kOr;
  f.left_ = std::move(a);
  f.right_ = std::move(b);
  return Make(std::move(f));
}
FormulaPtr Formula::ExistsNode(std::string x, FormulaPtr sub) {
  Formula f;
  f.kind_ = Kind::kExistsNode;
  f.name1_ = std::move(x);
  f.left_ = std::move(sub);
  return Make(std::move(f));
}
FormulaPtr Formula::ExistsPath(std::string pi, FormulaPtr sub) {
  Formula f;
  f.kind_ = Kind::kExistsPath;
  f.name1_ = std::move(pi);
  f.left_ = std::move(sub);
  return Make(std::move(f));
}
FormulaPtr Formula::ForallNode(std::string x, FormulaPtr f) {
  return Not(ExistsNode(std::move(x), Not(std::move(f))));
}
FormulaPtr Formula::ForallPath(std::string pi, FormulaPtr f) {
  return Not(ExistsPath(std::move(pi), Not(std::move(f))));
}

namespace {
void CollectFree(const Formula& f, std::set<std::string>* nodes,
                 std::set<std::string>* paths) {
  switch (f.kind()) {
    case Formula::Kind::kPathAtom:
      nodes->insert(f.name1());
      nodes->insert(f.name3());
      paths->insert(f.name2());
      return;
    case Formula::Kind::kNodeEq:
      nodes->insert(f.name1());
      nodes->insert(f.name2());
      return;
    case Formula::Kind::kPathEq:
      paths->insert(f.name1());
      paths->insert(f.name2());
      return;
    case Formula::Kind::kRelation:
      for (const std::string& p : f.paths()) paths->insert(p);
      return;
    case Formula::Kind::kNot:
      CollectFree(*f.left(), nodes, paths);
      return;
    case Formula::Kind::kAnd:
    case Formula::Kind::kOr:
      CollectFree(*f.left(), nodes, paths);
      CollectFree(*f.right(), nodes, paths);
      return;
    case Formula::Kind::kExistsNode: {
      std::set<std::string> n2, p2;
      CollectFree(*f.left(), &n2, &p2);
      n2.erase(f.name1());
      nodes->insert(n2.begin(), n2.end());
      paths->insert(p2.begin(), p2.end());
      return;
    }
    case Formula::Kind::kExistsPath: {
      std::set<std::string> n2, p2;
      CollectFree(*f.left(), &n2, &p2);
      p2.erase(f.name1());
      nodes->insert(n2.begin(), n2.end());
      paths->insert(p2.begin(), p2.end());
      return;
    }
  }
}
}  // namespace

std::vector<std::string> Formula::FreeNodeVars() const {
  std::set<std::string> nodes, paths;
  CollectFree(*this, &nodes, &paths);
  return {nodes.begin(), nodes.end()};
}
std::vector<std::string> Formula::FreePathVars() const {
  std::set<std::string> nodes, paths;
  CollectFree(*this, &nodes, &paths);
  return {paths.begin(), paths.end()};
}

std::string Formula::ToString() const {
  switch (kind_) {
    case Kind::kPathAtom:
      return "(" + name1_ + "," + name2_ + "," + name3_ + ")";
    case Kind::kNodeEq:
      return name1_ + "=" + name2_;
    case Kind::kPathEq:
      return name1_ + "=" + name2_;
    case Kind::kRelation: {
      std::string out = "R(";
      for (size_t i = 0; i < paths_.size(); ++i) {
        if (i > 0) out += ",";
        out += paths_[i];
      }
      return out + ")";
    }
    case Kind::kNot:
      return "¬(" + left_->ToString() + ")";
    case Kind::kAnd:
      return "(" + left_->ToString() + " ∧ " + right_->ToString() + ")";
    case Kind::kOr:
      return "(" + left_->ToString() + " ∨ " + right_->ToString() + ")";
    case Kind::kExistsNode:
      return "∃" + name1_ + " " + left_->ToString();
    case Kind::kExistsPath:
      return "∃" + name1_ + " " + left_->ToString();
  }
  return "?";
}

// ---------------------------------------------------------------------------
// Claim 8.1.3 evaluation
// ---------------------------------------------------------------------------

namespace {

// Representation-word symbol arithmetic for a track set of size k over a
// graph with n nodes and base alphabet Σ:
//   init symbols  [0, n^k):              node-tuple index
//   letter symbols n^k + L*n^k + N:      L in [0, (|Σ|+1)^k - 1), N in [0,n^k)
// (the all-pad letter id (|Σ|+1)^k - 1 is excluded).
class RepContext {
 public:
  RepContext(const GraphDb& graph, int k)
      : graph_(graph),
        k_(k),
        ta_(graph.alphabet().size(), std::max(k, 1)),
        universe_(0) {
    node_pow_ = 1;
    for (int i = 0; i < k_; ++i) node_pow_ *= graph.num_nodes();
    num_letters_ = ta_.num_symbols() - 1;  // exclude all-pad
    num_symbols_ = node_pow_ * (1 + num_letters_);
    universe_ = BuildUniverse();
  }

  int num_symbols() const { return num_symbols_; }
  const Nfa& universe() const { return universe_; }
  int k() const { return k_; }

  int64_t EncodeNodes(const std::vector<NodeId>& nodes) const {
    int64_t idx = 0;
    for (int t = 0; t < k_; ++t) idx = idx * graph_.num_nodes() + nodes[t];
    return idx;
  }
  std::vector<NodeId> DecodeNodes(int64_t idx) const {
    std::vector<NodeId> nodes(k_);
    for (int t = k_ - 1; t >= 0; --t) {
      nodes[t] = static_cast<NodeId>(idx % graph_.num_nodes());
      idx /= graph_.num_nodes();
    }
    return nodes;
  }

  Symbol InitSymbol(const std::vector<NodeId>& nodes) const {
    return static_cast<Symbol>(EncodeNodes(nodes));
  }
  Symbol LetterSymbol(const TupleLetter& letter,
                      const std::vector<NodeId>& nodes) const {
    Symbol l = ta_.Encode(letter);
    ECRPQ_DCHECK(l != ta_.AllPadId());
    return static_cast<Symbol>(node_pow_ + static_cast<int64_t>(l) * node_pow_ +
                               EncodeNodes(nodes));
  }
  bool IsInit(Symbol s) const { return s < node_pow_; }
  std::vector<NodeId> NodesOf(Symbol s) const {
    return DecodeNodes(IsInit(s) ? s : (s - node_pow_) % node_pow_);
  }
  TupleLetter LetterOf(Symbol s) const {
    ECRPQ_DCHECK(!IsInit(s));
    return ta_.Decode(static_cast<Symbol>((s - node_pow_) / node_pow_));
  }

 private:
  // Universe: all valid representation words of k-tuples of paths in G.
  Nfa BuildUniverse() const {
    // States: 0 = start; then (node-tuple, padmask) -> 1 + idx*2^k + mask.
    const int masks = 1 << k_;
    Nfa nfa(num_symbols_);
    nfa.AddStates(1 + static_cast<int>(node_pow_) * masks);
    nfa.SetInitial(0);
    auto state_of = [&](int64_t nodes_idx, int mask) {
      return static_cast<StateId>(1 + nodes_idx * masks + mask);
    };
    for (int64_t idx = 0; idx < node_pow_; ++idx) {
      nfa.AddTransition(0, static_cast<Symbol>(idx), state_of(idx, 0));
      for (int mask = 0; mask < masks; ++mask) {
        nfa.SetAccepting(state_of(idx, mask));
      }
    }
    // Letter transitions.
    for (int64_t from_idx = 0; from_idx < node_pow_; ++from_idx) {
      std::vector<NodeId> from_nodes = DecodeNodes(from_idx);
      // Enumerate per-track moves: pad (stay) or an edge.
      std::vector<std::pair<Symbol, NodeId>> choices;  // flattened below
      std::vector<std::vector<std::pair<Symbol, NodeId>>> per_track(k_);
      for (int t = 0; t < k_; ++t) {
        per_track[t].push_back({kPad, from_nodes[t]});
        for (const auto& [label, to] : graph_.Out(from_nodes[t])) {
          per_track[t].push_back({label, to});
        }
      }
      TupleLetter letter(k_);
      std::vector<NodeId> to_nodes(k_);
      std::function<void(int)> rec = [&](int t) {
        if (t == k_) {
          int pad_mask = 0;
          bool all_pad = true;
          for (int i = 0; i < k_; ++i) {
            if (letter[i] == kPad) {
              pad_mask |= 1 << i;
            } else {
              all_pad = false;
            }
          }
          if (all_pad) return;
          Symbol sym = LetterSymbol(letter, to_nodes);
          int64_t to_idx = EncodeNodes(to_nodes);
          for (int mask = 0; mask < masks; ++mask) {
            // Monotone pads: previously padded tracks must stay padded.
            if ((mask & pad_mask) != mask) continue;
            nfa.AddTransition(state_of(from_idx, mask), sym,
                              state_of(to_idx, pad_mask));
          }
          return;
        }
        for (const auto& [label, to] : per_track[t]) {
          letter[t] = label;
          to_nodes[t] = to;
          rec(t + 1);
        }
      };
      rec(0);
    }
    return nfa;
  }

  const GraphDb& graph_;
  int k_;
  TupleAlphabet ta_;
  int64_t node_pow_;
  int num_letters_;
  int num_symbols_;
  Nfa universe_;
};

struct Rep {
  std::vector<std::string> tracks;  // sorted
  Nfa nfa;

  Rep() : nfa(0) {}
};

class NegationEvaluator {
 public:
  NegationEvaluator(const GraphDb& graph, NegationStats* stats)
      : graph_(graph), stats_(stats) {}

  Result<bool> EvalBool(const Formula& f,
                        std::map<std::string, NodeId>* env) {
    switch (f.kind()) {
      case Formula::Kind::kNodeEq: {
        auto a = Lookup(f.name1(), *env);
        if (!a.ok()) return a.status();
        auto b = Lookup(f.name2(), *env);
        if (!b.ok()) return b.status();
        return a.value() == b.value();
      }
      case Formula::Kind::kNot: {
        auto sub = EvalBool(*f.left(), env);
        if (!sub.ok()) return sub;
        return !sub.value();
      }
      case Formula::Kind::kAnd: {
        auto a = EvalBool(*f.left(), env);
        if (!a.ok()) return a;
        if (!a.value()) return false;
        return EvalBool(*f.right(), env);
      }
      case Formula::Kind::kOr: {
        auto a = EvalBool(*f.left(), env);
        if (!a.ok()) return a;
        if (a.value()) return true;
        return EvalBool(*f.right(), env);
      }
      case Formula::Kind::kExistsNode: {
        for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
          (*env)[f.name1()] = v;
          auto sub = EvalBool(*f.left(), env);
          env->erase(f.name1());
          if (!sub.ok()) return sub;
          if (sub.value()) return true;
        }
        return false;
      }
      case Formula::Kind::kExistsPath: {
        if (graph_.num_nodes() == 0) return false;
        std::set<std::string> n2, p2;
        CollectFree(*f.left(), &n2, &p2);
        p2.erase("");
        if (p2.count(f.name1()) == 0) {
          // π unused; any graph with a node has the empty path.
          return EvalBool(*f.left(), env);
        }
        if (p2.size() == 1) {
          auto rep = EvalRep(*f.left(), env);
          if (!rep.ok()) return rep.status();
          return !IsEmpty(rep.value().nfa);
        }
        return Status::InvalidArgument(
            "EvalBool reached a formula with free path variables: " +
            f.ToString());
      }
      default:
        return Status::InvalidArgument(
            "sentence evaluation reached a formula with free path "
            "variables: " +
            f.ToString());
    }
  }

  Result<Rep> EvalRep(const Formula& f, std::map<std::string, NodeId>* env) {
    switch (f.kind()) {
      case Formula::Kind::kPathAtom:
        return RepPathAtom(f, *env);
      case Formula::Kind::kPathEq:
        return RepPathEq(f);
      case Formula::Kind::kRelation:
        return RepRelation(f);
      case Formula::Kind::kNot: {
        auto sub = EvalRep(*f.left(), env);
        if (!sub.ok()) return sub;
        return Complement(std::move(sub).value());
      }
      case Formula::Kind::kAnd:
      case Formula::Kind::kOr:
        return RepBinary(f, env);
      case Formula::Kind::kExistsNode: {
        Rep out;
        bool first = true;
        for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
          (*env)[f.name1()] = v;
          auto sub = EvalRep(*f.left(), env);
          env->erase(f.name1());
          if (!sub.ok()) return sub;
          if (first) {
            out = std::move(sub).value();
            first = false;
          } else {
            Rep rhs = std::move(sub).value();
            ECRPQ_DCHECK(rhs.tracks == out.tracks);
            out.nfa = UnionNfa(out.nfa, rhs.nfa);
          }
        }
        Note(out.nfa);
        return out;
      }
      case Formula::Kind::kExistsPath: {
        auto sub = EvalRep(*f.left(), env);
        if (!sub.ok()) return sub;
        Rep rep = std::move(sub).value();
        auto it = std::find(rep.tracks.begin(), rep.tracks.end(), f.name1());
        if (it == rep.tracks.end()) return rep;  // π unused
        return Project(std::move(rep),
                       static_cast<int>(it - rep.tracks.begin()));
      }
      case Formula::Kind::kNodeEq:
        return Status::InvalidArgument(
            "EvalRep on a formula without free path variables: " +
            f.ToString());
    }
    return Status::Internal("unreachable");
  }

  RepContext& GetContext(const std::vector<std::string>& tracks) {
    auto it = contexts_.find(tracks);
    if (it == contexts_.end()) {
      it = contexts_
               .emplace(tracks,
                        std::make_unique<RepContext>(
                            graph_, static_cast<int>(tracks.size())))
               .first;
    }
    return *it->second;
  }

  /// Representation word of a concrete path tuple (for membership tests).
  Word RepresentationWord(const RepContext& ctx, const PathTuple& paths) {
    const int k = ctx.k();
    size_t max_len = 0;
    for (const Path& p : paths) {
      max_len = std::max(max_len, static_cast<size_t>(p.length()));
    }
    Word word;
    std::vector<NodeId> nodes(k);
    for (int t = 0; t < k; ++t) nodes[t] = paths[t].start();
    word.push_back(ctx.InitSymbol(nodes));
    for (size_t i = 0; i < max_len; ++i) {
      TupleLetter letter(k);
      for (int t = 0; t < k; ++t) {
        if (i < static_cast<size_t>(paths[t].length())) {
          letter[t] = paths[t].steps()[i].first;
          nodes[t] = paths[t].steps()[i].second;
        } else {
          letter[t] = kPad;
        }
      }
      word.push_back(ctx.LetterSymbol(letter, nodes));
    }
    return word;
  }

 private:
  void Note(const Nfa& nfa) {
    if (stats_ == nullptr) return;
    ++stats_->automata_built;
    stats_->max_states =
        std::max<uint64_t>(stats_->max_states, nfa.num_states());
  }

  Result<NodeId> Lookup(const std::string& name,
                        const std::map<std::string, NodeId>& env) {
    auto it = env.find(name);
    if (it == env.end()) {
      return Status::InvalidArgument("unbound node variable '" + name + "'");
    }
    return it->second;
  }

  Result<Rep> RepPathAtom(const Formula& f,
                          const std::map<std::string, NodeId>& env) {
    auto from = Lookup(f.name1(), env);
    if (!from.ok()) return from.status();
    auto to = Lookup(f.name3(), env);
    if (!to.ok()) return to.status();
    Rep rep;
    rep.tracks = {f.name2()};
    RepContext& ctx = GetContext(rep.tracks);
    // States: 0 = start, 1 + v = "current node v".
    Nfa nfa(ctx.num_symbols());
    nfa.AddStates(1 + graph_.num_nodes());
    nfa.SetInitial(0);
    nfa.AddTransition(0, ctx.InitSymbol({from.value()}),
                      1 + from.value());
    for (NodeId v = 0; v < graph_.num_nodes(); ++v) {
      for (const auto& [label, w] : graph_.Out(v)) {
        nfa.AddTransition(1 + v, ctx.LetterSymbol({label}, {w}), 1 + w);
      }
    }
    nfa.SetAccepting(1 + to.value());
    rep.nfa = std::move(nfa);
    Note(rep.nfa);
    return rep;
  }

  Result<Rep> RepPathEq(const Formula& f) {
    if (f.name1() == f.name2()) {
      Rep rep;
      rep.tracks = {f.name1()};
      rep.nfa = GetContext(rep.tracks).universe();
      return rep;
    }
    Rep rep;
    rep.tracks = {f.name1(), f.name2()};
    std::sort(rep.tracks.begin(), rep.tracks.end());
    RepContext& ctx = GetContext(rep.tracks);
    // Filter the universe to diagonal symbols.
    const Nfa& u = ctx.universe();
    Nfa nfa(ctx.num_symbols());
    nfa.AddStates(u.num_states());
    for (StateId s = 0; s < u.num_states(); ++s) {
      if (u.IsInitial(s)) nfa.SetInitial(s);
      if (u.IsAccepting(s)) nfa.SetAccepting(s);
      for (const Nfa::Arc& arc : u.ArcsFrom(s)) {
        std::vector<NodeId> nodes = ctx.NodesOf(arc.first);
        bool diag = (nodes[0] == nodes[1]);
        if (diag && !ctx.IsInit(arc.first)) {
          TupleLetter letter = ctx.LetterOf(arc.first);
          diag = (letter[0] == letter[1]);
        }
        if (diag) nfa.AddTransition(s, arc.first, arc.second);
      }
    }
    rep.nfa = Trim(nfa);
    Note(rep.nfa);
    return rep;
  }

  Result<Rep> RepRelation(const Formula& f) {
    const RegularRelation& rel = *f.relation();
    if (rel.base_size() != graph_.alphabet().size()) {
      return Status::InvalidArgument(
          "relation alphabet does not match the graph");
    }
    if (static_cast<int>(f.paths().size()) != rel.arity()) {
      return Status::InvalidArgument("relation arity mismatch");
    }
    Rep rep;
    std::set<std::string> distinct(f.paths().begin(), f.paths().end());
    rep.tracks = {distinct.begin(), distinct.end()};
    RepContext& ctx = GetContext(rep.tracks);
    // Tape t of the relation reads track index of f.paths()[t].
    std::vector<int> tape_track;
    for (const std::string& p : f.paths()) {
      auto it = std::find(rep.tracks.begin(), rep.tracks.end(), p);
      tape_track.push_back(static_cast<int>(it - rep.tracks.begin()));
    }
    const Nfa rel_nfa = RemoveEpsilons(rel.nfa());
    const TupleAlphabet& rel_ta = rel.tuple_alphabet();

    // Product of the universe with the relation automaton.
    const Nfa& u = ctx.universe();
    const int un = u.num_states();
    Nfa nfa(ctx.num_symbols());
    nfa.AddStates(un * rel_nfa.num_states());
    auto state_of = [&](StateId us, StateId rs) {
      return static_cast<StateId>(rs * un + us);
    };
    for (StateId us = 0; us < un; ++us) {
      for (StateId rs = 0; rs < rel_nfa.num_states(); ++rs) {
        if (u.IsInitial(us) && rel_nfa.IsInitial(rs)) {
          nfa.SetInitial(state_of(us, rs));
        }
        if (u.IsAccepting(us) && rel_nfa.IsAccepting(rs)) {
          nfa.SetAccepting(state_of(us, rs));
        }
      }
    }
    for (StateId us = 0; us < un; ++us) {
      for (const Nfa::Arc& arc : u.ArcsFrom(us)) {
        if (ctx.IsInit(arc.first)) {
          // Init symbols do not advance the relation.
          for (StateId rs = 0; rs < rel_nfa.num_states(); ++rs) {
            nfa.AddTransition(state_of(us, rs), arc.first,
                              state_of(arc.second, rs));
          }
          continue;
        }
        TupleLetter letter = ctx.LetterOf(arc.first);
        TupleLetter proj(tape_track.size());
        for (size_t tape = 0; tape < tape_track.size(); ++tape) {
          proj[tape] = letter[tape_track[tape]];
        }
        Symbol rel_letter = rel_ta.Encode(proj);
        for (StateId rs = 0; rs < rel_nfa.num_states(); ++rs) {
          for (const Nfa::Arc& rarc : rel_nfa.ArcsFrom(rs)) {
            if (rarc.first == rel_letter) {
              nfa.AddTransition(state_of(us, rs), arc.first,
                                state_of(arc.second, rarc.second));
            }
          }
        }
      }
    }
    rep.nfa = Trim(nfa);
    Note(rep.nfa);
    return rep;
  }

  Result<Rep> RepBinary(const Formula& f,
                        std::map<std::string, NodeId>* env) {
    std::set<std::string> ln, lp, rn, rp;
    CollectFree(*f.left(), &ln, &lp);
    CollectFree(*f.right(), &rn, &rp);
    const bool is_and = (f.kind() == Formula::Kind::kAnd);

    // Sides without free path variables evaluate to booleans.
    if (lp.empty() && rp.empty()) {
      return Status::InvalidArgument(
          "EvalRep on a formula without free path variables");
    }
    if (lp.empty() || rp.empty()) {
      const Formula& bool_side = lp.empty() ? *f.left() : *f.right();
      const Formula& rep_side = lp.empty() ? *f.right() : *f.left();
      auto b = EvalBool(bool_side, env);
      if (!b.ok()) return b.status();
      auto rep = EvalRep(rep_side, env);
      if (!rep.ok()) return rep;
      if (is_and) {
        if (b.value()) return rep;
        Rep empty;
        empty.tracks = rep.value().tracks;
        empty.nfa = EmptyNfa(GetContext(empty.tracks).num_symbols());
        return empty;
      }
      if (!b.value()) return rep;
      Rep all;
      all.tracks = rep.value().tracks;
      all.nfa = GetContext(all.tracks).universe();
      return all;
    }

    auto left = EvalRep(*f.left(), env);
    if (!left.ok()) return left;
    auto right = EvalRep(*f.right(), env);
    if (!right.ok()) return right;

    // Lift both to the union track set.
    std::vector<std::string> tracks;
    std::set_union(left.value().tracks.begin(), left.value().tracks.end(),
                   right.value().tracks.begin(), right.value().tracks.end(),
                   std::back_inserter(tracks));
    Rep l = Lift(std::move(left).value(), tracks);
    Rep r = Lift(std::move(right).value(), tracks);
    Rep out;
    out.tracks = tracks;
    out.nfa = is_and ? IntersectNfa(l.nfa, r.nfa) : UnionNfa(l.nfa, r.nfa);
    if (!is_and) {
      // Union may leave invalid words (none: both operands are subsets of
      // the universe) — no extra intersection needed.
    }
    Note(out.nfa);
    return out;
  }

  // Lifts a representation automaton to a superset of tracks.
  Rep Lift(Rep rep, const std::vector<std::string>& to_tracks) {
    if (rep.tracks == to_tracks) return rep;
    RepContext& src_ctx = GetContext(rep.tracks);
    RepContext& dst_ctx = GetContext(to_tracks);
    // Position of each source track within the destination tracks.
    std::vector<int> src_pos;
    for (const std::string& t : rep.tracks) {
      auto it = std::find(to_tracks.begin(), to_tracks.end(), t);
      ECRPQ_DCHECK(it != to_tracks.end());
      src_pos.push_back(static_cast<int>(it - to_tracks.begin()));
    }
    const int sk = static_cast<int>(rep.tracks.size());

    const Nfa src = RemoveEpsilons(rep.nfa);
    // States: src states + done.
    Nfa out(dst_ctx.num_symbols());
    out.AddStates(src.num_states() + 1);
    const StateId done = src.num_states();
    out.SetAccepting(done);
    for (StateId s = 0; s < src.num_states(); ++s) {
      if (src.IsInitial(s)) out.SetInitial(s);
      if (src.IsAccepting(s)) {
        out.SetAccepting(s);
        out.AddTransition(s, kEpsilon, done);
      }
    }
    // Translate arcs: every destination symbol whose source projection
    // matches. Iterate over destination symbols once.
    // Build a map from source symbol -> arcs.
    std::map<Symbol, std::vector<std::pair<StateId, StateId>>> arcs_by_symbol;
    for (StateId s = 0; s < src.num_states(); ++s) {
      for (const Nfa::Arc& arc : src.ArcsFrom(s)) {
        arcs_by_symbol[arc.first].push_back({s, arc.second});
      }
    }
    for (Symbol sym = 0; sym < dst_ctx.num_symbols(); ++sym) {
      std::vector<NodeId> nodes = dst_ctx.NodesOf(sym);
      std::vector<NodeId> src_nodes(sk);
      for (int t = 0; t < sk; ++t) src_nodes[t] = nodes[src_pos[t]];
      if (dst_ctx.IsInit(sym)) {
        Symbol src_sym = src_ctx.InitSymbol(src_nodes);
        auto it = arcs_by_symbol.find(src_sym);
        if (it != arcs_by_symbol.end()) {
          for (const auto& [from, to] : it->second) {
            out.AddTransition(from, sym, to);
          }
        }
        continue;
      }
      TupleLetter letter = dst_ctx.LetterOf(sym);
      TupleLetter src_letter(sk);
      bool src_all_pad = true;
      for (int t = 0; t < sk; ++t) {
        src_letter[t] = letter[src_pos[t]];
        if (src_letter[t] != kPad) src_all_pad = false;
      }
      if (src_all_pad) {
        // Extension beyond the source word: only from done.
        out.AddTransition(done, sym, done);
        continue;
      }
      Symbol src_sym = src_ctx.LetterSymbol(src_letter, src_nodes);
      auto it = arcs_by_symbol.find(src_sym);
      if (it != arcs_by_symbol.end()) {
        for (const auto& [from, to] : it->second) {
          out.AddTransition(from, sym, to);
        }
      }
    }
    Rep lifted;
    lifted.tracks = to_tracks;
    lifted.nfa =
        Trim(IntersectNfa(RemoveEpsilons(out), dst_ctx.universe()));
    Note(lifted.nfa);
    return lifted;
  }

  Rep Complement(Rep rep) {
    RepContext& ctx = GetContext(rep.tracks);
    if (stats_ != nullptr) ++stats_->determinizations;
    Nfa comp = ComplementNfa(rep.nfa);
    rep.nfa = Trim(IntersectNfa(comp, ctx.universe()));
    Note(rep.nfa);
    return rep;
  }

  Result<Rep> Project(Rep rep, int track) {
    RepContext& src_ctx = GetContext(rep.tracks);
    std::vector<std::string> to_tracks = rep.tracks;
    to_tracks.erase(to_tracks.begin() + track);
    if (to_tracks.empty()) {
      return Status::InvalidArgument(
          "projection would remove the last track (handle with EvalBool)");
    }
    RepContext& dst_ctx = GetContext(to_tracks);
    const int sk = static_cast<int>(rep.tracks.size());
    const Nfa src = RemoveEpsilons(rep.nfa);
    Nfa out(dst_ctx.num_symbols());
    out.AddStates(src.num_states());
    for (StateId s = 0; s < src.num_states(); ++s) {
      if (src.IsInitial(s)) out.SetInitial(s);
      if (src.IsAccepting(s)) out.SetAccepting(s);
      for (const Nfa::Arc& arc : src.ArcsFrom(s)) {
        std::vector<NodeId> nodes = src_ctx.NodesOf(arc.first);
        std::vector<NodeId> kept_nodes;
        for (int t = 0; t < sk; ++t) {
          if (t != track) kept_nodes.push_back(nodes[t]);
        }
        if (src_ctx.IsInit(arc.first)) {
          out.AddTransition(s, dst_ctx.InitSymbol(kept_nodes), arc.second);
          continue;
        }
        TupleLetter letter = src_ctx.LetterOf(arc.first);
        TupleLetter kept_letter;
        bool all_pad = true;
        for (int t = 0; t < sk; ++t) {
          if (t == track) continue;
          kept_letter.push_back(letter[t]);
          if (letter[t] != kPad) all_pad = false;
        }
        if (all_pad) {
          out.AddTransition(s, kEpsilon, arc.second);
        } else {
          out.AddTransition(s, dst_ctx.LetterSymbol(kept_letter, kept_nodes),
                            arc.second);
        }
      }
    }
    Rep projected;
    projected.tracks = to_tracks;
    projected.nfa =
        Trim(IntersectNfa(RemoveEpsilons(out), dst_ctx.universe()));
    Note(projected.nfa);
    return projected;
  }

  const GraphDb& graph_;
  NegationStats* stats_;
  std::map<std::vector<std::string>, std::unique_ptr<RepContext>> contexts_;
};

}  // namespace

Result<bool> EvaluateSentence(const GraphDb& graph, const FormulaPtr& formula,
                              NegationStats* stats) {
  if (!formula->FreeNodeVars().empty() ||
      !formula->FreePathVars().empty()) {
    return Status::InvalidArgument(
        "EvaluateSentence requires a closed formula; free variables: " +
        formula->ToString());
  }
  NegationEvaluator evaluator(graph, stats);
  std::map<std::string, NodeId> env;
  return evaluator.EvalBool(*formula, &env);
}

Result<bool> EvaluateFormula(const GraphDb& graph, const FormulaPtr& formula,
                             const std::map<std::string, NodeId>& sigma,
                             const std::map<std::string, Path>& mu,
                             NegationStats* stats) {
  // Check bindings cover the free variables.
  for (const std::string& x : formula->FreeNodeVars()) {
    if (sigma.find(x) == sigma.end()) {
      return Status::InvalidArgument("free node variable '" + x +
                                     "' unbound");
    }
  }
  std::vector<std::string> free_paths = formula->FreePathVars();
  for (const std::string& p : free_paths) {
    if (mu.find(p) == mu.end()) {
      return Status::InvalidArgument("free path variable '" + p +
                                     "' unbound");
    }
  }
  NegationEvaluator evaluator(graph, stats);
  std::map<std::string, NodeId> env = sigma;
  if (free_paths.empty()) {
    return evaluator.EvalBool(*formula, &env);
  }
  auto rep = evaluator.EvalRep(*formula, &env);
  if (!rep.ok()) return rep.status();
  // Membership of the bound path tuple (tracks are sorted free paths).
  PathTuple tuple;
  for (const std::string& p : rep.value().tracks) {
    tuple.push_back(mu.at(p));
  }
  Word word = evaluator.RepresentationWord(
      evaluator.GetContext(rep.value().tracks), tuple);
  return rep.value().nfa.Accepts(word);
}

}  // namespace ecrpq
