// ECRPQ¬ / CRPQ¬: queries with negation and quantification (Section 8.1).
//
// The formula grammar of the paper:
//
//   atom := π1 = π2 | x = y | (x, π, y) | R(π1..πn)
//   φ    := atom | ¬φ | φ ∧ ψ | φ ∨ ψ | ∃x φ | ∃π φ
//
// Evaluation follows Claim 8.1.3: for a graph G and an assignment of the
// free node variables, construct an automaton over representation words
// (alternating node tuples and (Σ⊥)^k letters) accepting exactly the free-
// path-variable answers; complement is taken relative to the universe of
// valid representations, ∃π is projection, ∃x is a union over V. The
// construction is effective but non-elementary in the alternation depth
// (Theorem 8.2) — callers use small graphs. CRPQ¬ formulas (no ≥2-ary
// relations, no π-equality) go through the same construction.

#ifndef ECRPQ_CORE_EVAL_NEGATION_H_
#define ECRPQ_CORE_EVAL_NEGATION_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "relations/relation.h"

namespace ecrpq {

class Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

/// An ECRPQ¬ formula.
class Formula {
 public:
  enum class Kind {
    kPathAtom,   // (x, π, y)
    kNodeEq,     // x = y
    kPathEq,     // π1 = π2
    kRelation,   // R(π̄)
    kNot,
    kAnd,
    kOr,
    kExistsNode,
    kExistsPath,
  };

  static FormulaPtr PathAtom(std::string x, std::string pi, std::string y);
  static FormulaPtr NodeEq(std::string x, std::string y);
  static FormulaPtr PathEq(std::string pi1, std::string pi2);
  static FormulaPtr Relation(std::shared_ptr<const RegularRelation> rel,
                             std::vector<std::string> paths);
  static FormulaPtr Not(FormulaPtr f);
  static FormulaPtr And(FormulaPtr a, FormulaPtr b);
  static FormulaPtr Or(FormulaPtr a, FormulaPtr b);
  static FormulaPtr ExistsNode(std::string x, FormulaPtr f);
  static FormulaPtr ExistsPath(std::string pi, FormulaPtr f);
  /// ∀ = ¬∃¬, for readability.
  static FormulaPtr ForallNode(std::string x, FormulaPtr f);
  static FormulaPtr ForallPath(std::string pi, FormulaPtr f);

  Kind kind() const { return kind_; }
  const std::string& name1() const { return name1_; }
  const std::string& name2() const { return name2_; }
  const std::string& name3() const { return name3_; }
  const std::shared_ptr<const RegularRelation>& relation() const {
    return relation_;
  }
  const std::vector<std::string>& paths() const { return paths_; }
  const FormulaPtr& left() const { return left_; }
  const FormulaPtr& right() const { return right_; }

  /// Free node / path variables, sorted.
  std::vector<std::string> FreeNodeVars() const;
  std::vector<std::string> FreePathVars() const;

  std::string ToString() const;

 private:
  Formula() = default;
  Kind kind_ = Kind::kPathAtom;
  std::string name1_, name2_, name3_;
  std::shared_ptr<const RegularRelation> relation_;
  std::vector<std::string> paths_;
  FormulaPtr left_, right_;
};

struct NegationStats {
  uint64_t automata_built = 0;
  uint64_t max_states = 0;       ///< largest intermediate automaton
  uint64_t determinizations = 0; ///< complements performed
};

/// Evaluates a sentence (no free variables) on `graph`.
Result<bool> EvaluateSentence(const GraphDb& graph, const FormulaPtr& formula,
                              NegationStats* stats = nullptr);

/// Evaluates a formula whose free node variables are bound by `sigma`
/// (name -> node) and free path variables by `mu` (name -> path).
Result<bool> EvaluateFormula(const GraphDb& graph, const FormulaPtr& formula,
                             const std::map<std::string, NodeId>& sigma,
                             const std::map<std::string, Path>& mu,
                             NegationStats* stats = nullptr);

}  // namespace ecrpq

#endif  // ECRPQ_CORE_EVAL_NEGATION_H_
