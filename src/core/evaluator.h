// Public query-evaluation API.
//
// Evaluator dispatches a validated Query over a GraphDb to one of the
// engines the paper's complexity analysis distinguishes:
//
//   kProduct     the general on-the-fly convolution engine (Thm 5.1/6.1/6.3);
//                handles every ECRPQ, PSPACE-complete combined complexity
//   kCrpq        per-atom product reachability + join (the folklore CRPQ
//                algorithm and the acyclic PTIME algorithm of Thm 6.5);
//                requires all relations unary and no repeated path variables
//   kCounting    Parikh/ILP engine for linear constraints on occurrence
//                counts or path lengths (Thm 8.5)
//   kQlen        length-abstraction engine (Lemma 6.6 / Thm 6.7): relations
//                are replaced by R_len and solved via arithmetic
//                progressions
//   kBruteForce  bounded path enumeration; reference semantics for tests
//
// kAuto picks kCrpq when applicable, kCounting for queries with linear
// atoms, and kProduct otherwise.
//
// Engines stream distinct answer tuples through a ResultSink (see
// core/result_sink.h); the sink can stop evaluation early. The
// Result<QueryResult> overloads materialize the full sorted answer set.
//
// The compile-once / stream-many session API (prepared plans, parameter
// binding, cursors, plan caching) lives in api/ — prefer
// api::Database/PreparedQuery for application code; Evaluator is the
// engine-level entry point underneath it.

#ifndef ECRPQ_CORE_EVALUATOR_H_
#define ECRPQ_CORE_EVALUATOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "core/path_answers.h"
#include "core/result_sink.h"
#include "core/stats.h"
#include "graph/graph.h"
#include "graph/index.h"
#include "query/analysis.h"
#include "query/ast.h"
#include "solver/parikh.h"
#include "util/cancellation.h"
#include "util/status.h"

namespace ecrpq {

// Graph-independent compiled form of a query (eval_product.h).
struct CompiledQuery;
using CompiledQueryPtr = std::shared_ptr<const CompiledQuery>;

// Cost-based operator DAG for a query (core/planner.h).
struct PhysicalPlan;

enum class Engine {
  kAuto,
  kProduct,
  kCrpq,
  kCounting,
  kQlen,
  kBruteForce,
};

/// Direction of a component leaf's search (ReachabilityScan /
/// ProductExpand). Forward expands out-edges from start anchors (the
/// classical evaluation); backward expands in-edges from end anchors
/// through the compiled reversed automata; bidirectional runs both
/// half-searches on a fully anchored leaf, always stepping the smaller
/// frontier, and stops at the first meet (meet-in-the-middle). The
/// planner picks a direction per leaf from index statistics; kAuto defers
/// to that choice, any other value forces every leaf (infeasible
/// requests degrade: bidirectional needs both endpoints anchored and
/// falls back to backward/forward; graph recording pins forward).
enum class SearchDirection {
  kAuto,
  kForward,
  kBackward,
  kBidirectional,
};

/// Short display name ("auto", "fwd", "bwd", "bidir") — the `direction=`
/// field of Explain and operator stats.
const char* SearchDirectionName(SearchDirection direction);

/// Default for EvalOptions::use_planner: true unless the ECRPQ_NO_PLANNER
/// environment variable is set to a non-empty, non-"0" value (the CI
/// ablation hook — the whole suite runs once with the planner and once
/// on the legacy path).
bool DefaultUsePlanner();

struct EvalOptions {
  Engine engine = Engine::kAuto;

  /// Evaluate synchronization components independently and join (kProduct).
  /// Off = forbid decomposition: the whole conjunction runs as ONE
  /// monolithic product (the paper's Thm 5.1 evaluation, exponential in
  /// the number of components) — the baseline the planner is measured
  /// against (bench_planner_join).
  bool use_components = true;

  /// Cost-based conjunct planning (core/planner.h): order components
  /// cheapest-first by GraphIndex cardinality estimates and seed later
  /// components from earlier bindings (sideways information passing).
  /// Off = the legacy path: components in analysis order, each solved by
  /// full degree-ordered seeding, then joined. Defaults to on; the
  /// ECRPQ_NO_PLANNER environment variable flips the default off.
  bool use_planner = DefaultUsePlanner();

  /// Semi-join reduction before enumeration on acyclic queries (kCrpq).
  bool use_semijoin_reduction = true;

  /// Search direction of component leaves. kAuto lets the planner choose
  /// per leaf (forward unless statistics or anchoring favor backward /
  /// bidirectional; requires use_planner and an index — the legacy path
  /// stays forward-only). Any other value forces that direction on every
  /// leaf where it is feasible (benchmark / ablation hook).
  SearchDirection direction = SearchDirection::kAuto;

  /// Evaluate against a CSR GraphIndex (label-sliced frontier expansion,
  /// degree-ordered seeding). Engines build one per run when the caller
  /// supplies none; Database shares a cached index across executions.
  /// Off = the pre-index adjacency-scan path (benchmark baseline).
  bool use_graph_index = true;

  /// Build Prop 5.2 answer automata for head path variables.
  bool build_path_answers = true;

  /// Degree of intra-query parallelism. Operator leaves partition their
  /// degree-ordered seed sets (start assignments, seed rows, scan
  /// sources) into morsels executed on the shared work-stealing pool;
  /// large joins build partitioned tables and probe morsel-wise; a single
  /// fully-anchored product search expands its frontier cooperatively
  /// against a sharded visited table. 0 = auto (the ECRPQ_THREADS
  /// environment variable when set, else hardware concurrency); 1 = the
  /// exact legacy single-threaded path (no pool involvement).
  int num_threads = 0;

  /// Thread-count-independent results (default on): parallel leaves merge
  /// per-worker outputs at barrier points in canonical seed order, so the
  /// emitted tuple sequence — and therefore which k tuples a `limit`
  /// keeps — does not depend on num_threads. Off lets leaves fold worker
  /// outputs in completion order (same tuple set, order may vary). See
  /// the ordering contract in core/result_sink.h.
  bool deterministic = true;

  /// Optional cooperative cancellation. The product and crpq engines —
  /// the paths parallel execution runs on — poll the token at
  /// morsel/config granularity and return Status::Cancelled once it
  /// trips; it also fans early termination (limit / exists, worker
  /// errors, budget exhaustion) out to all workers of the execution.
  /// The counting/qlen/bruteforce engines (serial; num_threads is a
  /// no-op there) currently check only at entry, so a mid-run cancel
  /// takes effect at their next engine-level boundary. Use one token per
  /// execution — a tripped token stays tripped.
  std::shared_ptr<CancellationToken> cancellation;

  /// Product-configuration budget (kProduct); exceeding returns
  /// ResourceExhausted.
  uint64_t max_configs = 2000000;

  /// Path-length bound for the brute-force engine.
  int bruteforce_max_len = 8;

  /// Parikh/ILP options (kCounting).
  ParikhOptions parikh;
};

/// Resolves Engine::kAuto against a query's structural analysis; returns
/// `requested` unchanged otherwise.
Engine SelectEngine(const Query& query, const QueryAnalysis& analysis,
                    Engine requested);

/// Lower-case display name of an engine ("product", "crpq", ...).
const char* EngineName(Engine engine);

/// Materialized evaluation output: Q(G) with node tuples sorted and path
/// answers represented by Prop 5.2 automata. This is a thin value type
/// filled from an engine run; engines themselves write to a ResultSink.
class QueryResult {
 public:
  QueryResult() = default;
  QueryResult(std::vector<std::vector<NodeId>> tuples,
              std::vector<PathAnswerSet> path_answers, EvalStats stats)
      : tuples_(std::move(tuples)),
        path_answers_(std::move(path_answers)),
        stats_(std::move(stats)) {}

  /// For Boolean queries: was the body satisfiable? (Non-Boolean: any
  /// answer tuple exists.)
  bool AsBool() const { return !tuples_.empty(); }

  /// Distinct head-node bindings, sorted. For Boolean queries this is
  /// {()} when true and {} when false.
  const std::vector<std::vector<NodeId>>& tuples() const { return tuples_; }

  /// Answer automata, parallel to tuples(); present when the query head
  /// has path variables and path answers were requested.
  bool has_path_answers() const { return !path_answers_.empty(); }
  const PathAnswerSet& path_answers(size_t tuple_index) const {
    return path_answers_[tuple_index];
  }

  const EvalStats& stats() const { return stats_; }

 private:
  std::vector<std::vector<NodeId>> tuples_;
  std::vector<PathAnswerSet> path_answers_;
  EvalStats stats_;
};

/// Runs a streaming engine invocation to completion and materializes the
/// canonical sorted QueryResult — the one place the sink/sort/wrap
/// contract lives. `run` fills the sink and stats.
Result<QueryResult> MaterializeResult(
    const std::function<Status(ResultSink&, EvalStats&)>& run);

/// Facade: binds a graph and options, dispatches queries to engines.
class Evaluator {
 public:
  explicit Evaluator(const GraphDb* graph, EvalOptions options = {})
      : graph_(graph), options_(options) {}

  /// Attaches a prebuilt CSR index for `graph` (api::Database shares its
  /// cached one this way). Without it, the evaluator builds one lazily on
  /// the first Evaluate call when options().use_graph_index is set and
  /// reuses it afterwards; a snapshot whose node/edge/label counters no
  /// longer match the graph is rebuilt automatically (GraphDb is
  /// append-only, so the counters detect every mutation). Not
  /// thread-safe: concurrent Evaluate calls on one Evaluator race on the
  /// cached index.
  void set_graph_index(GraphIndexPtr index) { index_ = std::move(index); }
  const GraphIndexPtr& graph_index() const { return index_; }

  /// Materializing evaluation: full sorted answer set.
  Result<QueryResult> Evaluate(const Query& query) const;

  /// Streaming evaluation: distinct tuples are pushed into `sink` in
  /// discovery order; `stats` receives engine counters. When `compiled`
  /// is non-null it must be the CompileQuery output for `query` (reused
  /// automata + analysis; see eval_product.h) — prepared-query executions
  /// pass it to skip recompilation. When it is null, the query is
  /// compiled here once and the compiled analysis is shared between
  /// engine selection and the engine itself (one Analyze pass, not two).
  /// `plan` (optional) is a cached PhysicalPlan for this query
  /// (core/planner.h); engines plan on the fly when absent.
  Status Evaluate(const Query& query, ResultSink& sink, EvalStats& stats,
                  CompiledQueryPtr compiled = nullptr,
                  const PhysicalPlan* plan = nullptr) const;

  const EvalOptions& options() const { return options_; }

 private:
  const GraphDb* graph_;
  EvalOptions options_;
  mutable GraphIndexPtr index_;  // lazily built snapshot, see above
};

}  // namespace ecrpq

#endif  // ECRPQ_CORE_EVALUATOR_H_
