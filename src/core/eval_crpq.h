// CRPQ fast path (Theorem 6.5 and the folklore CRPQ algorithm).
//
// When every relation atom is unary and no path variable repeats, each path
// atom (x, L(π), y) reduces independently to the binary reachability
// relation r = { (u, v) : some path u→v has label in L }, computed by a
// product of the graph with L's NFA. The query then becomes a relational
// conjunctive query over the r_i, evaluated by backtracking join; for
// acyclic queries a semi-join (Yannakakis) reduction runs first, giving the
// PTIME combined complexity of Theorem 6.5.

#ifndef ECRPQ_CORE_EVAL_CRPQ_H_
#define ECRPQ_CORE_EVAL_CRPQ_H_

#include "core/evaluator.h"

namespace ecrpq {

/// True if this query is in the fast-path fragment: unary relations only,
/// no repeated path variables, no linear atoms.
bool CrpqFastPathApplies(const Query& query);

/// Same, against an already-computed analysis (no re-analysis).
bool CrpqFastPathApplies(const Query& query, const QueryAnalysis& analysis);

/// Evaluates a fast-path CRPQ, streaming distinct tuples into `sink`.
/// FailedPrecondition outside the fragment.
Status EvaluateCrpq(const GraphDb& graph, const Query& query,
                    const EvalOptions& options, ResultSink& sink,
                    EvalStats& stats, CompiledQueryPtr compiled = nullptr,
                    GraphIndexPtr index = nullptr);

/// Materializing convenience wrapper (sorted tuples).
Result<QueryResult> EvaluateCrpq(const GraphDb& graph, const Query& query,
                                 const EvalOptions& options);

/// Counters of one reachability scan (the ReachabilityScan operator's
/// share of EvalStats::operators).
struct ReachabilityScanStats {
  uint64_t frontier_expansions = 0;  ///< (state, node) frontier pushes
  uint64_t visited_states = 0;       ///< distinct (state, node) pairs
};

/// The per-atom reachability relation: all (u, v) pairs connected by a path
/// whose label lies in every language of `languages` (an intersection; the
/// empty list means Σ*). Exposed for tests and benches. The overload with
/// `index` expands the (language state, node) frontier through CSR label
/// slices — only edges carrying a letter some language arc reads — instead
/// of scanning full adjacency lists per arc; null falls back to the scan.
/// `sources` (when non-null) restricts the scan to paths starting at the
/// listed nodes — the sideways-seeded form the planner emits; null scans
/// from every node. `scan_stats` (optional) receives frontier counters.
///
/// With num_threads > 1 the per-source BFSes run morsel-parallel: lanes
/// claim source morsels off a shared cursor and write each source's end
/// set into its own slot. With `deterministic` (the default) slots are
/// concatenated in source order, making the output identical to the
/// serial scan's; otherwise lanes append finished morsels in completion
/// order (same pair set, order may vary). `cancel` (optional) stops all
/// lanes promptly; the caller must treat the result as partial once the
/// token has tripped.
std::vector<std::pair<NodeId, NodeId>> ReachabilityPairs(
    const GraphDb& graph, const std::vector<const RegularRelation*>& languages);
std::vector<std::pair<NodeId, NodeId>> ReachabilityPairs(
    const GraphDb& graph, const std::vector<const RegularRelation*>& languages,
    const GraphIndex* index);
std::vector<std::pair<NodeId, NodeId>> ReachabilityPairs(
    const GraphDb& graph, const std::vector<const RegularRelation*>& languages,
    const GraphIndex* index, const std::vector<NodeId>* sources,
    ReachabilityScanStats* scan_stats);
std::vector<std::pair<NodeId, NodeId>> ReachabilityPairs(
    const GraphDb& graph, const std::vector<const RegularRelation*>& languages,
    const GraphIndex* index, const std::vector<NodeId>* sources,
    ReachabilityScanStats* scan_stats, int num_threads,
    CancellationToken* cancel, bool deterministic);

/// Direction-aware reachability scan (the ReachabilityScan leaf's
/// executable). kForward is exactly the overload above (per-source BFS;
/// `targets` is ignored — callers filter ends). kBackward mirrors it: one
/// BFS per TARGET over the reversed intersection NFA and the graph's
/// in-edges (GraphIndex::In slices when indexed), emitting every
/// (source, target) pair whose path label lies in the intersection — one
/// backward BFS replaces |V| forward BFSes when only the target side is
/// anchored. kBidirectional (requires both `sources` and `targets`) runs
/// one meet-in-the-middle probe per (source, target) pair over
/// (NFA state, node) configurations, alternating on the smaller frontier
/// and stopping at the first meet; `meet_checks` (optional) counts the
/// opposite-side probes. Bidirectional probes run serially per pair
/// (anchored pairs are few); forward/backward sweeps honor
/// `num_threads`/`deterministic` as documented above.
std::vector<std::pair<NodeId, NodeId>> ReachabilityPairsDirected(
    const GraphDb& graph, const std::vector<const RegularRelation*>& languages,
    const GraphIndex* index, const std::vector<NodeId>* sources,
    const std::vector<NodeId>* targets, SearchDirection direction,
    ReachabilityScanStats* scan_stats, uint64_t* meet_checks,
    int num_threads, CancellationToken* cancel, bool deterministic);

}  // namespace ecrpq

#endif  // ECRPQ_CORE_EVAL_CRPQ_H_
