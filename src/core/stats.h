// Evaluation statistics, exposed for benchmarks and ablations.

#ifndef ECRPQ_CORE_STATS_H_
#define ECRPQ_CORE_STATS_H_

#include <cstdint>
#include <string>

namespace ecrpq {

struct EvalStats {
  std::string engine;               ///< which engine produced the result
  uint64_t configs_explored = 0;    ///< product configurations visited
  uint64_t arcs_explored = 0;       ///< product transitions generated
  uint64_t start_assignments = 0;   ///< anchored start tuples enumerated
  uint64_t join_tuples = 0;         ///< intermediate join results
  uint64_t ilp_variables = 0;       ///< ILP size (counting engines)
  uint64_t ilp_constraints = 0;

  void Accumulate(const EvalStats& other) {
    configs_explored += other.configs_explored;
    arcs_explored += other.arcs_explored;
    start_assignments += other.start_assignments;
    join_tuples += other.join_tuples;
    ilp_variables += other.ilp_variables;
    ilp_constraints += other.ilp_constraints;
  }
};

}  // namespace ecrpq

#endif  // ECRPQ_CORE_STATS_H_
