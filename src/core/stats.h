// Evaluation statistics, exposed for benchmarks and ablations.

#ifndef ECRPQ_CORE_STATS_H_
#define ECRPQ_CORE_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ecrpq {

/// Counters of one executed physical operator (see core/ops.h). The
/// operator layer appends one entry per operator invocation, in execution
/// order, so a run's EvalStats reads like a profile of its plan:
///
///   ReachabilityScan(c0)  rows_out=12  frontier=340  visited=97
///   ProductExpand(c1)     rows_in=5 rows_out=3 frontier=88 visited=41
///   HashJoin              rows_in=15 rows_out=4
///
/// rows_in is the number of tuples the operator consumed (seed rows for
/// sideways-seeded leaves, probe+build rows for joins); rows_out the
/// number it produced. frontier_expansions counts product arcs generated;
/// visited_configs the occupancy of the visited/intern table.
struct OperatorStats {
  std::string op;      ///< operator kind ("ProductExpand", "HashJoin", ...)
  std::string detail;  ///< operand summary (component atoms, join vars)
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  uint64_t frontier_expansions = 0;
  uint64_t visited_configs = 0;
  /// Meet probes of a bidirectional leaf: candidate configurations of the
  /// opposite half-search tested for a (node, state)-compatible meet.
  /// Zero for forward/backward leaves and non-leaf operators.
  uint64_t meet_checks = 0;
  /// Join-pipeline row counters: rows hashed into the (partitioned) build
  /// side and rows probed against it. Each worker lane counts privately
  /// and the totals are merged in canonical lane order at the operator
  /// barrier, so they are identical at any thread count. Zero for
  /// operators that neither build nor probe (leaves).
  uint64_t build_rows = 0;
  uint64_t probe_rows = 0;
  double est_rows = -1.0;  ///< planner estimate, -1 when unplanned
  int threads = 1;  ///< worker lanes that executed this operator
  /// Search direction the leaf actually ran ("fwd", "bwd", "bidir");
  /// empty for operators without a direction (joins, filters).
  std::string direction;

  std::string Describe() const;
};

struct EvalStats {
  std::string engine;               ///< which engine produced the result
  uint64_t configs_explored = 0;    ///< product configurations visited
  uint64_t arcs_explored = 0;       ///< product transitions generated
  uint64_t start_assignments = 0;   ///< anchored start tuples enumerated
  uint64_t join_tuples = 0;         ///< intermediate join results
  uint64_t ilp_variables = 0;       ///< ILP size (counting engines)
  uint64_t ilp_constraints = 0;

  /// Per-operator profile in execution order, populated by the operator
  /// layer (core/ops.h). Empty for engines that bypass it (brute force).
  std::vector<OperatorStats> operators;

  /// Merges another run's (or another worker's) counters into this one:
  /// numeric counters add, operator profiles append in call order, and the
  /// engine tag is adopted when unset. Merge is the barrier-point
  /// primitive of parallel execution — every worker accumulates into a
  /// private EvalStats and lanes merge in canonical lane order, so a
  /// sequential run (num_threads = 1) reports exactly the same numbers it
  /// did before the parallel refactor, and a parallel run reports the
  /// same totals as the sequential one whenever it explored the same
  /// space (no early termination).
  void Merge(const EvalStats& other) {
    if (engine.empty()) engine = other.engine;
    configs_explored += other.configs_explored;
    arcs_explored += other.arcs_explored;
    start_assignments += other.start_assignments;
    join_tuples += other.join_tuples;
    ilp_variables += other.ilp_variables;
    ilp_constraints += other.ilp_constraints;
    operators.insert(operators.end(), other.operators.begin(),
                     other.operators.end());
  }

  /// Back-compat alias for Merge (kept for callers that predate it).
  void Accumulate(const EvalStats& other) { Merge(other); }
};

}  // namespace ecrpq

#endif  // ECRPQ_CORE_STATS_H_
