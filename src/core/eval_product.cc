#include "core/eval_product.h"

#include <algorithm>
#include <bit>
#include <functional>
#include <map>
#include <queue>
#include <set>
#include <span>

#include "automata/operations.h"

namespace ecrpq {

Result<CompiledQueryPtr> CompileQuery(const Query& query, int base_size) {
  auto out = std::make_shared<CompiledQuery>();
  out->base_size = base_size;
  for (const RelationAtom& atom : query.relation_atoms()) {
    if (atom.relation->base_size() != base_size) {
      return Status::InvalidArgument(
          "relation '" + atom.name + "' is over a base alphabet of size " +
          std::to_string(atom.relation->base_size()) +
          " but the graph alphabet has size " + std::to_string(base_size));
    }
    ResolvedRelation rr;
    rr.relation = atom.relation.get();
    rr.nfa = RemoveEpsilons(atom.relation->nfa());
    rr.transitions.resize(rr.nfa.num_states());
    for (StateId s = 0; s < rr.nfa.num_states(); ++s) {
      for (const Nfa::Arc& arc : rr.nfa.ArcsFrom(s)) {
        rr.transitions[s][arc.first].push_back(arc.second);
      }
    }
    const TupleAlphabet& ta = atom.relation->tuple_alphabet();
    const int arity = atom.relation->arity();
    rr.tape_masks.assign(rr.nfa.num_states(),
                         std::vector<uint64_t>(arity, 0));
    if (base_size > 64) {
      for (auto& masks : rr.tape_masks) {
        for (uint64_t& m : masks) m = ~0ULL;
      }
    } else {
      for (StateId s = 0; s < rr.nfa.num_states(); ++s) {
        for (const Nfa::Arc& arc : rr.nfa.ArcsFrom(s)) {
          TupleLetter letter = ta.Decode(arc.first);
          for (int tape = 0; tape < arity; ++tape) {
            if (letter[tape] != kPad) {
              rr.tape_masks[s][tape] |= 1ULL << letter[tape];
            }
          }
        }
      }
    }
    rr.initial = rr.nfa.InitialStates();
    rr.accepting.resize(rr.nfa.num_states());
    for (StateId s = 0; s < rr.nfa.num_states(); ++s) {
      rr.accepting[s] = rr.nfa.IsAccepting(s);
    }
    for (const std::string& p : atom.paths) {
      rr.paths.push_back(query.PathVarIndex(p));
    }
    out->relations.push_back(std::move(rr));
  }
  out->analysis = Analyze(query);
  return CompiledQueryPtr(std::move(out));
}

Result<ResolvedQuery> ResolveQuery(const GraphDb& graph, const Query& query,
                                   CompiledQueryPtr compiled,
                                   GraphIndexPtr index) {
  ResolvedQuery out;
  out.graph = &graph;
  out.query = &query;
  out.index = std::move(index);

  auto resolve_term = [&](const NodeTerm& term) -> Result<ResolvedTerm> {
    ResolvedTerm r;
    if (term.is_parameter) {
      return Status::FailedPrecondition(
          "parameter '$" + term.name +
          "' is unbound; bind it before evaluation (Params)");
    }
    if (term.is_constant) {
      auto node = graph.FindNode(term.name);
      if (!node.has_value()) {
        return Status::NotFound("constant node '" + term.name +
                                "' not in graph");
      }
      r.is_const = true;
      r.node = *node;
    } else {
      r.var = query.NodeVarIndex(term.name);
      ECRPQ_DCHECK(r.var >= 0);
    }
    return r;
  };

  for (const PathAtom& atom : query.path_atoms()) {
    ResolvedAtom r;
    auto from = resolve_term(atom.from);
    if (!from.ok()) return from.status();
    auto to = resolve_term(atom.to);
    if (!to.ok()) return to.status();
    r.from = from.value();
    r.to = to.value();
    r.path = query.PathVarIndex(atom.path);
    out.atoms.push_back(r);
  }

  if (compiled != nullptr) {
    if (compiled->base_size != graph.alphabet().size()) {
      return Status::InvalidArgument(
          "compiled plan targets a base alphabet of size " +
          std::to_string(compiled->base_size) +
          " but the graph alphabet has size " +
          std::to_string(graph.alphabet().size()));
    }
    out.compiled = std::move(compiled);
  } else {
    auto built = CompileQuery(query, graph.alphabet().size());
    if (!built.ok()) return built.status();
    out.compiled = std::move(built).value();
  }
  return out;
}

namespace {

// A synchronization component prepared for product search.
struct Component {
  std::vector<int> atom_indices;   // into ResolvedQuery::atoms
  std::vector<int> tracks;         // global path-var ids, local order
  std::vector<int> track_of_path;  // global path id -> local track or -1
  std::vector<int> relation_indices;
  std::vector<int> vars;        // global node-var ids appearing here
  std::vector<int> start_vars;  // vars in from-positions
};

Component BuildComponent(const ResolvedQuery& rq,
                         const std::vector<int>& atom_indices) {
  Component comp;
  comp.atom_indices = atom_indices;
  comp.track_of_path.assign(rq.query->path_variables().size(), -1);
  auto add_var = [&](const ResolvedTerm& term, bool is_start) {
    if (term.is_const) return;
    if (std::find(comp.vars.begin(), comp.vars.end(), term.var) ==
        comp.vars.end()) {
      comp.vars.push_back(term.var);
    }
    if (is_start &&
        std::find(comp.start_vars.begin(), comp.start_vars.end(),
                  term.var) == comp.start_vars.end()) {
      comp.start_vars.push_back(term.var);
    }
  };
  for (int idx : atom_indices) {
    const ResolvedAtom& atom = rq.atoms[idx];
    if (comp.track_of_path[atom.path] < 0) {
      comp.track_of_path[atom.path] = static_cast<int>(comp.tracks.size());
      comp.tracks.push_back(atom.path);
    }
    add_var(atom.from, /*is_start=*/true);
    add_var(atom.to, /*is_start=*/false);
  }
  for (size_t r = 0; r < rq.relations().size(); ++r) {
    // A relation belongs to the component holding its first path's track
    // (components contain either all or none of a relation's paths).
    if (comp.track_of_path[rq.relations()[r].paths[0]] >= 0) {
      comp.relation_indices.push_back(static_cast<int>(r));
    }
  }
  return comp;
}

// Interns relation state subsets.
class SubsetPool {
 public:
  int Intern(std::vector<StateId> subset) {
    auto [it, inserted] = ids_.emplace(std::move(subset), 0);
    if (inserted) {
      it->second = static_cast<int>(store_.size());
      store_.push_back(it->first);
    }
    return it->second;
  }
  const std::vector<StateId>& Get(int id) const { return store_[id]; }

 private:
  std::map<std::vector<StateId>, int> ids_;
  std::vector<std::vector<StateId>> store_;
};

// One product configuration.
struct Config {
  uint32_t padmask = 0;
  std::vector<NodeId> nodes;    // per local track
  std::vector<int> subset_ids;  // per component relation

  bool operator==(const Config& other) const = default;
};

uint64_t Mix64(uint64_t x) {
  // splitmix64 finalizer.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashConfig(const Config& c) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a
  auto feed = [&h](uint32_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  feed(c.padmask);
  for (NodeId v : c.nodes) feed(static_cast<uint32_t>(v));
  for (int s : c.subset_ids) feed(static_cast<uint32_t>(s));
  return h;
}

// Open-addressing visited/intern table over product configurations.
//
// When padmask + per-track node ids + per-relation subset ids fit one
// word, configurations are keyed by a packed uint64 code and probes
// compare single words — no per-configuration allocation, no vector
// hashing. Subset-interning ids are assigned dynamically, so a search
// whose subset count outgrows its bit field migrates once to the generic
// path (hash of the config, structural equality against the discovery
// array) and keeps going; searches whose shape never fits start there.
class VisitedTable {
 public:
  VisitedTable(int tracks, int relations, int num_nodes)
      : tracks_(tracks), relations_(relations) {
    node_bits_ = std::bit_width(
        static_cast<uint32_t>(std::max(num_nodes - 1, 1)));
    int used = tracks_ + tracks_ * node_bits_;
    if (used <= 64 && relations_ > 0) {
      subset_bits_ = std::min<int>(31, (64 - used) / relations_);
    } else {
      subset_bits_ = 0;
    }
    packed_ = (used + relations_ * subset_bits_ <= 64) &&
              (relations_ == 0 || subset_bits_ >= 1);
    Rehash(1024);
  }

  // Returns (config id, inserted). A new config is appended to `order`.
  std::pair<int, bool> FindOrInsert(Config&& c, std::vector<Config>& order) {
    if (packed_) {
      uint64_t code;
      if (!TryPack(c, &code)) {
        MigrateToGeneric(order);
      } else {
        if ((size_ + 1) * 10 >= slots_.size() * 7) RehashPacked(order);
        size_t i = Mix64(code) & (slots_.size() - 1);
        while (slots_[i] >= 0) {
          if (keys_[i] == code) return {slots_[i], false};
          i = (i + 1) & (slots_.size() - 1);
        }
        int id = static_cast<int>(order.size());
        order.push_back(std::move(c));
        slots_[i] = id;
        keys_[i] = code;
        ++size_;
        return {id, true};
      }
    }
    if ((size_ + 1) * 10 >= slots_.size() * 7) RehashGeneric(order);
    size_t i = HashConfig(c) & (slots_.size() - 1);
    while (slots_[i] >= 0) {
      if (order[slots_[i]] == c) return {slots_[i], false};
      i = (i + 1) & (slots_.size() - 1);
    }
    int id = static_cast<int>(order.size());
    order.push_back(std::move(c));
    slots_[i] = id;
    ++size_;
    return {id, true};
  }

 private:
  bool TryPack(const Config& c, uint64_t* out) const {
    uint64_t code = c.padmask;
    int shift = tracks_;
    for (NodeId v : c.nodes) {
      code |= static_cast<uint64_t>(static_cast<uint32_t>(v)) << shift;
      shift += node_bits_;
    }
    for (int s : c.subset_ids) {
      if (static_cast<int64_t>(s) >= (int64_t{1} << subset_bits_)) {
        return false;
      }
      code |= static_cast<uint64_t>(s) << shift;
      shift += subset_bits_;
    }
    *out = code;
    return true;
  }

  void Rehash(size_t capacity) {
    slots_.assign(capacity, -1);
    if (packed_) keys_.assign(capacity, 0);
  }

  void RehashPacked(const std::vector<Config>& order) {
    (void)order;  // packed slots carry their own keys
    std::vector<int32_t> old_slots = std::move(slots_);
    std::vector<uint64_t> old_keys = std::move(keys_);
    Rehash(old_slots.size() * 2);
    for (size_t j = 0; j < old_slots.size(); ++j) {
      if (old_slots[j] < 0) continue;
      size_t i = Mix64(old_keys[j]) & (slots_.size() - 1);
      while (slots_[i] >= 0) i = (i + 1) & (slots_.size() - 1);
      slots_[i] = old_slots[j];
      keys_[i] = old_keys[j];
    }
  }

  // Clears the table to `capacity` slots and re-inserts every config of
  // `order` by structural hash (generic mode's rebuild).
  void RebuildGeneric(size_t capacity, const std::vector<Config>& order) {
    slots_.assign(capacity, -1);
    for (size_t id = 0; id < order.size(); ++id) {
      size_t i = HashConfig(order[id]) & (capacity - 1);
      while (slots_[i] >= 0) i = (i + 1) & (capacity - 1);
      slots_[i] = static_cast<int32_t>(id);
    }
  }

  void RehashGeneric(const std::vector<Config>& order) {
    RebuildGeneric(slots_.size() * 2, order);
  }

  void MigrateToGeneric(const std::vector<Config>& order) {
    packed_ = false;
    keys_.clear();
    keys_.shrink_to_fit();
    RebuildGeneric(slots_.size(), order);
  }

  int tracks_;
  int relations_;
  int node_bits_ = 0;
  int subset_bits_ = 0;
  bool packed_ = false;
  size_t size_ = 0;
  std::vector<int32_t> slots_;  // config id or -1
  std::vector<uint64_t> keys_;  // packed code per occupied slot
};

// Callbacks for recording the product graph (path-answer construction).
struct ProductGraphSink {
  // state ids parallel to discovery order of configs
  std::vector<Config> configs;
  std::vector<std::vector<std::pair<std::vector<Symbol>, int>>> arcs;
  std::vector<bool> initial;
  std::vector<bool> accepting;
};

// Product search over one component for one start assignment.
class ComponentSearch {
 public:
  ComponentSearch(const ResolvedQuery& rq, const Component& comp,
                  const EvalOptions& options, EvalStats* stats)
      : rq_(rq),
        comp_(comp),
        options_(options),
        stats_(stats),
        index_(rq.index.get()),
        use_masks_(rq.graph->alphabet().size() <= 64) {
    // Per-relation tuple alphabets and local track lists.
    for (int r : comp_.relation_indices) {
      const ResolvedRelation& rel = rq_.relations()[r];
      std::vector<int> local;
      for (int p : rel.paths) local.push_back(comp_.track_of_path[p]);
      rel_local_tracks_.push_back(std::move(local));
      rel_alphabets_.emplace_back(rel.relation->tuple_alphabet());
    }
    subset_masks_.resize(comp_.relation_indices.size());
  }

  // Runs BFS from one start-node-per-track assignment; reports satisfying
  // (full component assignment) tuples into `results`. `fixed` holds
  // pre-bound global vars (or -1). If `sink` is non-null the product graph
  // is recorded there.
  Status Run(const std::vector<NodeId>& start_nodes,
             const std::vector<NodeId>& fixed,
             std::set<std::vector<NodeId>>* results,
             ProductGraphSink* sink) {
    const int T = static_cast<int>(comp_.tracks.size());
    const GraphDb& graph = *rq_.graph;

    // Start binding of start vars (from the caller's enumeration).
    // Initial relation subsets.
    Config init;
    init.nodes = start_nodes;
    init.padmask = 0;
    for (size_t i = 0; i < comp_.relation_indices.size(); ++i) {
      const ResolvedRelation& rel =
          rq_.relations()[comp_.relation_indices[i]];
      std::vector<StateId> subset = rel.initial;
      std::sort(subset.begin(), subset.end());
      if (subset.empty()) return Status::OK();  // relation unsatisfiable
      init.subset_ids.push_back(pool_.Intern(std::move(subset)));
    }

    // The sink may already hold configs from previous start assignments;
    // all sink indices are offset by its current size.
    const int sink_base =
        (sink != nullptr) ? static_cast<int>(sink->configs.size()) : 0;
    VisitedTable visited(T, static_cast<int>(comp_.relation_indices.size()),
                         graph.num_nodes());
    std::vector<Config> order;
    std::queue<int> work;
    auto intern_config = [&](Config c) -> std::pair<int, bool> {
      auto [id, inserted] = visited.FindOrInsert(std::move(c), order);
      if (inserted) {
        work.push(id);
        if (sink != nullptr) {
          sink->configs.push_back(order.back());
          sink->arcs.emplace_back();
          sink->initial.push_back(false);
          sink->accepting.push_back(false);
        }
      }
      return {id, inserted};
    };

    auto [init_id, fresh] = intern_config(std::move(init));
    (void)fresh;
    if (sink != nullptr) sink->initial[sink_base + init_id] = true;

    while (!work.empty()) {
      int config_id = work.front();
      work.pop();
      if (++stats_->configs_explored > options_.max_configs) {
        return Status::ResourceExhausted(
            "product search exceeded max_configs=" +
            std::to_string(options_.max_configs));
      }
      Config current = order[config_id];  // copy: order grows during expand

      // Acceptance: every relation subset intersects its accepting set,
      // and end constraints are consistent.
      if (Accepting(current)) {
        std::vector<NodeId> assignment;
        if (EndConsistent(current, start_nodes, fixed, &assignment)) {
          if (results != nullptr) results->insert(assignment);
          if (sink != nullptr) sink->accepting[sink_base + config_id] = true;
        }
      }

      // Expand successors: per track choose pad or an edge, pulling only
      // the label slices the live relation state-sets can read.
      ComputeLiveMasks(current);
      std::vector<Symbol> letter(T);
      std::vector<NodeId> next_nodes(T);
      ExpandRec(0, T, current, &letter, &next_nodes, graph,
                [&](Config next, const std::vector<Symbol>& letters) {
                  ++stats_->arcs_explored;
                  auto [next_id, unused] = intern_config(std::move(next));
                  (void)unused;
                  if (sink != nullptr) {
                    sink->arcs[sink_base + config_id].push_back(
                        {letters, sink_base + next_id});
                  }
                });
    }
    return Status::OK();
  }

  const Component& component() const { return comp_; }

 private:
  bool Accepting(const Config& c) const {
    for (size_t i = 0; i < comp_.relation_indices.size(); ++i) {
      const ResolvedRelation& rel =
          rq_.relations()[comp_.relation_indices[i]];
      bool ok = false;
      for (StateId s : pool_.Get(c.subset_ids[i])) {
        if (rel.accepting[s]) {
          ok = true;
          break;
        }
      }
      if (!ok) return false;
    }
    return true;
  }

  // Checks end-node constraints; produces the component assignment
  // (parallel to comp_.vars) on success.
  bool EndConsistent(const Config& c, const std::vector<NodeId>& start_nodes,
                     const std::vector<NodeId>& fixed,
                     std::vector<NodeId>* assignment) const {
    std::vector<NodeId> binding(rq_.query->node_variables().size(), -1);
    // Seed with fixed bindings and start assignments.
    for (size_t v = 0; v < fixed.size(); ++v) binding[v] = fixed[v];
    for (int idx : comp_.atom_indices) {
      const ResolvedAtom& atom = rq_.atoms[idx];
      int track = comp_.track_of_path[atom.path];
      NodeId start = start_nodes[track];
      NodeId end = c.nodes[track];
      // From-term: already consistent by construction of start_nodes, but
      // fixed vars must agree too.
      if (atom.from.is_const) {
        if (atom.from.node != start) return false;
      } else {
        if (binding[atom.from.var] >= 0 && binding[atom.from.var] != start) {
          return false;
        }
        binding[atom.from.var] = start;
      }
      if (atom.to.is_const) {
        if (atom.to.node != end) return false;
      } else {
        if (binding[atom.to.var] >= 0 && binding[atom.to.var] != end) {
          return false;
        }
        binding[atom.to.var] = end;
      }
    }
    assignment->clear();
    for (int v : comp_.vars) assignment->push_back(binding[v]);
    return true;
  }

  // Per-tape letter masks of one relation's current subset, OR of the
  // compiled per-state tape_masks; cached per interned subset id.
  const std::vector<uint64_t>& SubsetMasks(size_t i, int subset_id) {
    auto& cache = subset_masks_[i];
    if (subset_id >= static_cast<int>(cache.size())) {
      cache.resize(subset_id + 1);
    }
    std::vector<uint64_t>& entry = cache[subset_id];
    if (entry.empty()) {
      const ResolvedRelation& rel =
          rq_.relations()[comp_.relation_indices[i]];
      entry.assign(rel_local_tracks_[i].size(), 0);
      for (StateId s : pool_.Get(subset_id)) {
        for (size_t tape = 0; tape < entry.size(); ++tape) {
          entry[tape] |= rel.tape_masks[s][tape];
        }
      }
    }
    return entry;
  }

  // live_[t]: base letters track t may read without killing a relation —
  // the intersection, over relations reading t, of the letters their
  // current state-sets accept on that tape (Thm 6.1's restriction).
  void ComputeLiveMasks(const Config& current) {
    live_.assign(comp_.tracks.size(), ~0ULL);
    if (index_ == nullptr || !use_masks_) return;
    for (size_t i = 0; i < comp_.relation_indices.size(); ++i) {
      const std::vector<uint64_t>& masks =
          SubsetMasks(i, current.subset_ids[i]);
      const std::vector<int>& local = rel_local_tracks_[i];
      for (size_t tape = 0; tape < local.size(); ++tape) {
        live_[local[tape]] &= masks[tape];
      }
    }
  }

  template <typename Callback>
  void ExpandRec(int t, int total, const Config& current,
                 std::vector<Symbol>* letter, std::vector<NodeId>* next_nodes,
                 const GraphDb& graph, const Callback& emit) {
    if (t == total) {
      uint32_t new_padmask = 0;
      bool all_pad = true;
      for (int i = 0; i < total; ++i) {
        if ((*letter)[i] == kPad) {
          new_padmask |= (1u << i);
        } else {
          all_pad = false;
        }
      }
      if (all_pad) return;
      // Advance relations on their projected letters.
      Config next;
      next.padmask = new_padmask;
      next.nodes = *next_nodes;
      next.subset_ids.resize(comp_.relation_indices.size());
      for (size_t i = 0; i < comp_.relation_indices.size(); ++i) {
        const ResolvedRelation& rel =
            rq_.relations()[comp_.relation_indices[i]];
        const std::vector<int>& local = rel_local_tracks_[i];
        TupleLetter proj(local.size());
        bool rel_all_pad = true;
        for (size_t tape = 0; tape < local.size(); ++tape) {
          proj[tape] = (*letter)[local[tape]];
          if (proj[tape] != kPad) rel_all_pad = false;
        }
        if (rel_all_pad) {
          // The relation's word has ended; its subset is frozen.
          next.subset_ids[i] = current.subset_ids[i];
          continue;
        }
        Symbol id = rel_alphabets_[i].Encode(proj);
        std::vector<StateId> advanced;
        for (StateId s : pool_.Get(current.subset_ids[i])) {
          auto it = rel.transitions[s].find(id);
          if (it != rel.transitions[s].end()) {
            advanced.insert(advanced.end(), it->second.begin(),
                            it->second.end());
          }
        }
        if (advanced.empty()) return;  // prune
        std::sort(advanced.begin(), advanced.end());
        advanced.erase(std::unique(advanced.begin(), advanced.end()),
                       advanced.end());
        next.subset_ids[i] = pool_.Intern(std::move(advanced));
      }
      emit(std::move(next), *letter);
      return;
    }
    // Option 1: pad (always allowed; forced when already padded).
    (*letter)[t] = kPad;
    (*next_nodes)[t] = current.nodes[t];
    ExpandRec(t + 1, total, current, letter, next_nodes, graph, emit);
    // Option 2: follow an edge (only when not padded).
    if (!(current.padmask & (1u << t))) {
      const NodeId v = current.nodes[t];
      if (index_ != nullptr && use_masks_) {
        // Indexed path: visit only the letters live for this track and
        // present at the node (one AND against the node's label mask).
        // Small adjacency rows are filtered linearly (a binary search per
        // label costs more than reading a handful of edges); large rows
        // jump straight to the per-label slices.
        const uint64_t mask = live_[t] & index_->OutLabelMask(v);
        if (mask == 0) {
          // No live letter at this node: the track can only pad.
        } else if (index_->out_degree(v) <= 16) {
          std::span<const Symbol> labels = index_->OutLabels(v);
          std::span<const NodeId> targets = index_->OutTargets(v);
          for (size_t i = 0; i < labels.size(); ++i) {
            if (((mask >> std::min<Symbol>(labels[i], 63)) & 1) == 0) {
              continue;
            }
            (*letter)[t] = labels[i];
            (*next_nodes)[t] = targets[i];
            ExpandRec(t + 1, total, current, letter, next_nodes, graph,
                      emit);
          }
        } else {
          uint64_t bits = mask;
          while (bits != 0) {
            Symbol label = static_cast<Symbol>(std::countr_zero(bits));
            bits &= bits - 1;
            for (NodeId to : index_->Out(v, label)) {
              (*letter)[t] = label;
              (*next_nodes)[t] = to;
              ExpandRec(t + 1, total, current, letter, next_nodes, graph,
                        emit);
            }
          }
        }
      } else if (index_ != nullptr) {
        std::span<const Symbol> labels = index_->OutLabels(v);
        std::span<const NodeId> targets = index_->OutTargets(v);
        for (size_t i = 0; i < labels.size(); ++i) {
          (*letter)[t] = labels[i];
          (*next_nodes)[t] = targets[i];
          ExpandRec(t + 1, total, current, letter, next_nodes, graph, emit);
        }
      } else {
        for (const auto& [label, to] : graph.Out(v)) {
          (*letter)[t] = label;
          (*next_nodes)[t] = to;
          ExpandRec(t + 1, total, current, letter, next_nodes, graph, emit);
        }
      }
    }
  }

  const ResolvedQuery& rq_;
  const Component& comp_;
  const EvalOptions& options_;
  EvalStats* stats_;
  const GraphIndex* index_;  // null = scan GraphDb adjacency (legacy path)
  bool use_masks_;           // base alphabet fits the 64-bit letter masks
  SubsetPool pool_;
  std::vector<std::vector<int>> rel_local_tracks_;
  std::vector<TupleAlphabet> rel_alphabets_;
  // Per component relation: per-tape letter masks keyed by subset id.
  std::vector<std::vector<std::vector<uint64_t>>> subset_masks_;
  std::vector<uint64_t> live_;  // per-track live letters, per expansion
};

// Enumerates start assignments for a component and accumulates results.
Status SolveComponent(const ResolvedQuery& rq, const Component& comp,
                      const EvalOptions& options,
                      const std::vector<NodeId>& fixed, EvalStats* stats,
                      std::set<std::vector<NodeId>>* results,
                      ProductGraphSink* sink) {
  const GraphDb& graph = *rq.graph;
  ComponentSearch search(rq, comp, options, stats);

  // Enumerate assignments to start vars (respecting `fixed`), derive the
  // start node per track, and run one BFS per assignment.
  std::vector<NodeId> binding(rq.query->node_variables().size(), -1);
  for (size_t v = 0; v < fixed.size(); ++v) binding[v] = fixed[v];

  std::vector<int> start_vars = comp.start_vars;
  Status status = Status::OK();

  std::function<Status(size_t)> enumerate = [&](size_t i) -> Status {
    if (i == start_vars.size()) {
      // Derive start node per track; all from-terms of a track must agree.
      std::vector<NodeId> start_nodes(comp.tracks.size(), -1);
      for (int idx : comp.atom_indices) {
        const ResolvedAtom& atom = rq.atoms[idx];
        int track = comp.track_of_path[atom.path];
        NodeId v = atom.from.is_const ? atom.from.node
                                      : binding[atom.from.var];
        if (start_nodes[track] < 0) {
          start_nodes[track] = v;
        } else if (start_nodes[track] != v) {
          return Status::OK();  // inconsistent repetition start
        }
      }
      ++stats->start_assignments;
      return search.Run(start_nodes, binding, results, sink);
    }
    int var = start_vars[i];
    if (binding[var] >= 0) return enumerate(i + 1);
    // Seed from high-degree nodes first (GraphIndex permutation): under
    // early termination the densest frontiers reach answers soonest. The
    // answer set is order-independent (results is a set).
    if (rq.index != nullptr) {
      for (NodeId v : rq.index->NodesByDegree()) {
        binding[var] = v;
        Status st = enumerate(i + 1);
        if (!st.ok()) return st;
      }
    } else {
      for (NodeId v = 0; v < graph.num_nodes(); ++v) {
        binding[var] = v;
        Status st = enumerate(i + 1);
        if (!st.ok()) return st;
      }
    }
    binding[var] = -1;
    return Status::OK();
  };
  status = enumerate(0);
  return status;
}

}  // namespace

HeadTupleEmitter::HeadTupleEmitter(const ResolvedQuery& rq,
                                   const EvalOptions& options,
                                   ResultSink& sink)
    : rq_(rq),
      options_(options),
      sink_(sink),
      with_paths_(!rq.query->head_paths().empty() &&
                  options.build_path_answers) {}

bool HeadTupleEmitter::Emit(const std::vector<NodeId>& head) {
  if (!seen_.insert(head).second) return true;  // duplicate projection
  if (with_paths_) {
    auto answers = BuildPathAnswerSet(*rq_.graph, *rq_.query, options_, head,
                                      rq_.compiled, rq_.index);
    if (!answers.ok()) {
      status_ = answers.status();
      return false;
    }
    return sink_.Emit(head, &answers.value());
  }
  return sink_.Emit(head, nullptr);
}

Status EvaluateProduct(const GraphDb& graph, const Query& query,
                       const EvalOptions& options, ResultSink& sink,
                       EvalStats& stats, CompiledQueryPtr compiled,
                       GraphIndexPtr index) {
  if (!query.linear_atoms().empty()) {
    return Status::FailedPrecondition(
        "the product engine does not handle linear atoms; use the counting "
        "engine (Engine::kCounting)");
  }
  auto resolved_or =
      ResolveQuery(graph, query, std::move(compiled), std::move(index));
  if (!resolved_or.ok()) return resolved_or.status();
  ResolvedQuery& rq = resolved_or.value();
  if (options.use_graph_index && rq.index == nullptr) {
    rq.index = GraphIndex::Build(graph);
  }

  stats.engine = "product";

  // Component decomposition (or a single joint component).
  std::vector<std::vector<int>> groups;
  if (options.use_components) {
    groups = rq.analysis().components;
  } else {
    std::vector<int> all(rq.atoms.size());
    for (size_t i = 0; i < all.size(); ++i) all[i] = static_cast<int>(i);
    groups.push_back(std::move(all));
  }

  std::vector<Component> components;
  std::vector<std::set<std::vector<NodeId>>> comp_results;
  std::vector<NodeId> fixed(query.node_variables().size(), -1);
  for (const auto& group : groups) {
    components.push_back(BuildComponent(rq, group));
    comp_results.emplace_back();
    Status st = SolveComponent(rq, components.back(), options, fixed, &stats,
                               &comp_results.back(), nullptr);
    if (!st.ok()) return st;
    if (comp_results.back().empty()) {
      return Status::OK();  // empty answer
    }
  }

  // Join component results on shared node variables, streaming each new
  // head projection into the sink as soon as it is found. Path answers
  // (when requested) are built per emitted tuple, so early termination
  // also skips their construction.
  HeadTupleEmitter emitter(rq, options, sink);
  std::vector<NodeId> global(query.node_variables().size(), -1);
  bool stop = false;
  std::function<void(size_t)> join = [&](size_t i) {
    if (stop) return;
    if (i == components.size()) {
      std::vector<NodeId> head;
      for (const NodeTerm& term : query.head_nodes()) {
        ECRPQ_DCHECK(!term.is_constant);
        int v = query.NodeVarIndex(term.name);
        head.push_back(global[v]);
      }
      ++stats.join_tuples;
      if (!emitter.Emit(head)) stop = true;
      return;
    }
    const Component& comp = components[i];
    for (const std::vector<NodeId>& tuple : comp_results[i]) {
      if (stop) return;
      bool ok = true;
      std::vector<std::pair<int, NodeId>> bound;
      for (size_t k = 0; k < comp.vars.size() && ok; ++k) {
        int v = comp.vars[k];
        if (global[v] >= 0) {
          ok = (global[v] == tuple[k]);
        } else {
          global[v] = tuple[k];
          bound.emplace_back(v, tuple[k]);
        }
      }
      if (ok) join(i + 1);
      for (const auto& [v, node] : bound) {
        (void)node;
        global[v] = -1;
      }
    }
  };
  join(0);
  return emitter.status();
}

Result<QueryResult> EvaluateProduct(const GraphDb& graph, const Query& query,
                                    const EvalOptions& options) {
  return MaterializeResult([&](ResultSink& sink, EvalStats& stats) {
    return EvaluateProduct(graph, query, options, sink, stats);
  });
}

Result<std::vector<ComponentProductGraph>> BuildComponentProducts(
    const GraphDb& graph, const Query& query, const EvalOptions& options,
    const std::vector<NodeId>& assignment, CompiledQueryPtr compiled,
    GraphIndexPtr index) {
  auto resolved_or =
      ResolveQuery(graph, query, std::move(compiled), std::move(index));
  if (!resolved_or.ok()) return resolved_or.status();
  ResolvedQuery& rq = resolved_or.value();
  if (options.use_graph_index && rq.index == nullptr) {
    rq.index = GraphIndex::Build(graph);
  }
  if (assignment.size() != query.node_variables().size()) {
    return Status::InvalidArgument(
        "assignment arity does not match node variable count");
  }
  for (NodeId v : assignment) {
    if (v < 0 || v >= graph.num_nodes()) {
      return Status::InvalidArgument("assignment binds a non-node");
    }
  }

  std::vector<ComponentProductGraph> out;
  EvalStats stats;
  for (const auto& group : rq.analysis().components) {
    Component comp = BuildComponent(rq, group);
    ProductGraphSink sink;
    Status st = SolveComponent(rq, comp, options, assignment, &stats,
                               /*results=*/nullptr, &sink);
    if (!st.ok()) return st;
    ComponentProductGraph cpg;
    cpg.tracks = comp.tracks;
    cpg.num_states = static_cast<int>(sink.configs.size());
    cpg.initial = sink.initial;
    cpg.accepting = sink.accepting;
    for (int s = 0; s < cpg.num_states; ++s) {
      for (const auto& [letters, target] : sink.arcs[s]) {
        cpg.arcs.emplace_back(s, target, letters);
      }
    }
    out.push_back(std::move(cpg));
  }
  return out;
}

Result<PathAnswerSet> BuildPathAnswerSet(
    const GraphDb& graph, const Query& query, const EvalOptions& options,
    const std::vector<NodeId>& head_nodes, CompiledQueryPtr compiled,
    GraphIndexPtr index) {
  auto resolved_or =
      ResolveQuery(graph, query, std::move(compiled), std::move(index));
  if (!resolved_or.ok()) return resolved_or.status();
  ResolvedQuery& rq = resolved_or.value();
  if (options.use_graph_index && rq.index == nullptr) {
    rq.index = GraphIndex::Build(graph);
  }

  if (head_nodes.size() != query.head_nodes().size()) {
    return Status::InvalidArgument(
        "head binding arity does not match query head");
  }

  // Fix head node variables.
  std::vector<NodeId> fixed(query.node_variables().size(), -1);
  for (size_t i = 0; i < query.head_nodes().size(); ++i) {
    const NodeTerm& term = query.head_nodes()[i];
    int v = query.NodeVarIndex(term.name);
    if (fixed[v] >= 0 && fixed[v] != head_nodes[i]) {
      return Status::InvalidArgument("inconsistent head binding");
    }
    fixed[v] = head_nodes[i];
  }

  // Split the query: the atoms of components containing a head path
  // variable are searched jointly with arc recording; the remaining
  // components only constrain node variables, so they are solved node-only
  // and their satisfying assignments anchor the head search.
  std::vector<int> head_path_ids;
  for (const std::string& p : query.head_paths()) {
    head_path_ids.push_back(query.PathVarIndex(p));
  }
  std::vector<int> head_atoms;
  std::vector<Component> other_components;
  for (const auto& group : rq.analysis().components) {
    bool has_head = false;
    for (int idx : group) {
      for (int hp : head_path_ids) {
        if (rq.atoms[idx].path == hp) has_head = true;
      }
    }
    if (has_head) {
      head_atoms.insert(head_atoms.end(), group.begin(), group.end());
    } else {
      other_components.push_back(BuildComponent(rq, group));
    }
  }
  std::sort(head_atoms.begin(), head_atoms.end());
  if (head_atoms.empty()) {
    return Status::InvalidArgument("query head has no path variables");
  }
  Component comp = BuildComponent(rq, head_atoms);

  EvalStats stats;

  // Anchor assignments: satisfying bindings of the other components,
  // projected to the variables they share with the head component (and
  // joined among themselves on their own shared variables).
  std::vector<std::vector<NodeId>> anchors;  // full-var partial bindings
  {
    std::vector<std::set<std::vector<NodeId>>> other_results;
    for (const Component& other : other_components) {
      other_results.emplace_back();
      Status st = SolveComponent(rq, other, options, fixed, &stats,
                                 &other_results.back(), nullptr);
      if (!st.ok()) return st;
      if (other_results.back().empty()) {
        // Unsatisfiable side condition: the answer set is empty.
        return PathAnswerSet(
            std::max<int>(static_cast<int>(head_path_ids.size()), 1),
            graph.alphabet().size());
      }
    }
    std::set<std::vector<NodeId>> anchor_set;
    std::vector<NodeId> global = fixed;
    std::function<void(size_t)> join = [&](size_t i) {
      if (i == other_components.size()) {
        // Keep only variables the head component shares.
        std::vector<NodeId> anchor = fixed;
        for (int v : comp.vars) anchor[v] = global[v];
        anchor_set.insert(anchor);
        return;
      }
      const Component& other = other_components[i];
      for (const std::vector<NodeId>& tuple : other_results[i]) {
        bool ok = true;
        std::vector<int> bound;
        for (size_t k = 0; k < other.vars.size() && ok; ++k) {
          int v = other.vars[k];
          if (global[v] >= 0) {
            ok = (global[v] == tuple[k]);
          } else {
            global[v] = tuple[k];
            bound.push_back(v);
          }
        }
        if (ok) join(i + 1);
        for (int v : bound) global[v] = -1;
      }
    };
    join(0);
    anchors.assign(anchor_set.begin(), anchor_set.end());
  }
  if (anchors.empty()) anchors.push_back(fixed);

  ProductGraphSink sink;
  for (const std::vector<NodeId>& anchor : anchors) {
    Status st = SolveComponent(rq, comp, options, anchor, &stats,
                               /*results=*/nullptr, &sink);
    if (!st.ok()) return st;
  }

  // Head track selection (indices into comp.tracks).
  std::vector<int> head_tracks;
  for (const std::string& p : query.head_paths()) {
    head_tracks.push_back(comp.track_of_path[query.PathVarIndex(p)]);
  }
  const int k = static_cast<int>(head_tracks.size());

  // ε-closure over arcs whose head projection is all-pad, so that the
  // answer automaton counts head-projections exactly.
  const int n = static_cast<int>(sink.configs.size());
  auto head_all_pad = [&](const std::vector<Symbol>& letters) {
    for (int t : head_tracks) {
      if (letters[t] != kPad) return false;
    }
    return true;
  };
  // closure[s] = states reachable from s via head-all-pad arcs.
  std::vector<std::vector<int>> closure(n);
  for (int s = 0; s < n; ++s) {
    std::vector<bool> seen(n, false);
    std::vector<int> stack = {s};
    seen[s] = true;
    while (!stack.empty()) {
      int u = stack.back();
      stack.pop_back();
      closure[s].push_back(u);
      for (const auto& [letters, target] : sink.arcs[u]) {
        if (head_all_pad(letters) && !seen[target]) {
          seen[target] = true;
          stack.push_back(target);
        }
      }
    }
  }

  PathAnswerSet answers(std::max(k, 1), graph.alphabet().size());
  std::vector<int> remap(n);
  for (int s = 0; s < n; ++s) {
    std::vector<NodeId> head_node_tuple;
    for (int t : head_tracks) {
      head_node_tuple.push_back(sink.configs[s].nodes[t]);
    }
    bool accepting = false;
    for (int c : closure[s]) accepting = accepting || sink.accepting[c];
    remap[s] = answers.AddState(std::move(head_node_tuple), sink.initial[s],
                                accepting);
  }
  for (int s = 0; s < n; ++s) {
    for (int c : closure[s]) {
      for (const auto& [letters, target] : sink.arcs[c]) {
        if (head_all_pad(letters)) continue;
        TupleLetter head_letter;
        for (int t : head_tracks) head_letter.push_back(letters[t]);
        answers.AddArc(remap[s], head_letter, remap[target]);
      }
    }
  }
  return answers;
}

}  // namespace ecrpq
