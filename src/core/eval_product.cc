#include "core/eval_product.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <map>
#include <set>

#include "automata/operations.h"
#include "core/ops.h"
#include "core/parallel.h"
#include "core/planner.h"

namespace ecrpq {

Result<CompiledQueryPtr> CompileQuery(const Query& query, int base_size) {
  auto out = std::make_shared<CompiledQuery>();
  out->base_size = base_size;
  for (const RelationAtom& atom : query.relation_atoms()) {
    if (atom.relation->base_size() != base_size) {
      return Status::InvalidArgument(
          "relation '" + atom.name + "' is over a base alphabet of size " +
          std::to_string(atom.relation->base_size()) +
          " but the graph alphabet has size " + std::to_string(base_size));
    }
    ResolvedRelation rr;
    rr.relation = atom.relation.get();
    rr.nfa = RemoveEpsilons(atom.relation->nfa());
    rr.transitions.resize(rr.nfa.num_states());
    for (StateId s = 0; s < rr.nfa.num_states(); ++s) {
      for (const Nfa::Arc& arc : rr.nfa.ArcsFrom(s)) {
        rr.transitions[s][arc.first].push_back(arc.second);
      }
    }
    const TupleAlphabet& ta = atom.relation->tuple_alphabet();
    const int arity = atom.relation->arity();
    rr.tape_masks.assign(rr.nfa.num_states(),
                         std::vector<uint64_t>(arity, 0));
    if (base_size > 64) {
      for (auto& masks : rr.tape_masks) {
        for (uint64_t& m : masks) m = ~0ULL;
      }
    } else {
      for (StateId s = 0; s < rr.nfa.num_states(); ++s) {
        for (const Nfa::Arc& arc : rr.nfa.ArcsFrom(s)) {
          TupleLetter letter = ta.Decode(arc.first);
          for (int tape = 0; tape < arity; ++tape) {
            if (letter[tape] != kPad) {
              rr.tape_masks[s][tape] |= 1ULL << letter[tape];
            }
          }
        }
      }
    }
    rr.initial = rr.nfa.InitialStates();
    rr.accepting.resize(rr.nfa.num_states());
    for (StateId s = 0; s < rr.nfa.num_states(); ++s) {
      rr.accepting[s] = rr.nfa.IsAccepting(s);
    }
    // Reversed tape: Reverse preserves state ids, so the reversed
    // transition maps, masks, and endpoint sets index the same states as
    // the forward ones (backward subsets intersect forward subsets at
    // bidirectional meets without any remapping).
    Nfa rev = Reverse(rr.nfa);
    rr.rev_transitions.resize(rev.num_states());
    rr.rev_tape_masks.assign(rev.num_states(),
                             std::vector<uint64_t>(arity, 0));
    for (StateId s = 0; s < rev.num_states(); ++s) {
      for (const Nfa::Arc& arc : rev.ArcsFrom(s)) {
        rr.rev_transitions[s][arc.first].push_back(arc.second);
        if (base_size > 64) continue;
        TupleLetter letter = ta.Decode(arc.first);
        for (int tape = 0; tape < arity; ++tape) {
          if (letter[tape] != kPad) {
            rr.rev_tape_masks[s][tape] |= 1ULL << letter[tape];
          }
        }
      }
    }
    if (base_size > 64) {
      for (auto& masks : rr.rev_tape_masks) {
        for (uint64_t& m : masks) m = ~0ULL;
      }
    }
    rr.rev_initial = rev.InitialStates();
    std::sort(rr.rev_initial.begin(), rr.rev_initial.end());
    rr.rev_accepting.resize(rev.num_states());
    for (StateId s = 0; s < rev.num_states(); ++s) {
      rr.rev_accepting[s] = rev.IsAccepting(s);
    }
    for (const std::string& p : atom.paths) {
      rr.paths.push_back(query.PathVarIndex(p));
    }
    out->relations.push_back(std::move(rr));
  }
  out->analysis = Analyze(query);
  return CompiledQueryPtr(std::move(out));
}

Result<ResolvedQuery> ResolveQuery(const GraphDb& graph, const Query& query,
                                   CompiledQueryPtr compiled,
                                   GraphIndexPtr index) {
  ResolvedQuery out;
  out.graph = &graph;
  out.query = &query;
  out.index = std::move(index);

  auto resolve_term = [&](const NodeTerm& term) -> Result<ResolvedTerm> {
    ResolvedTerm r;
    if (term.is_parameter) {
      return Status::FailedPrecondition(
          "parameter '$" + term.name +
          "' is unbound; bind it before evaluation (Params)");
    }
    if (term.is_constant) {
      auto node = graph.FindNode(term.name);
      if (!node.has_value()) {
        return Status::NotFound("constant node '" + term.name +
                                "' not in graph");
      }
      r.is_const = true;
      r.node = *node;
    } else {
      r.var = query.NodeVarIndex(term.name);
      ECRPQ_DCHECK(r.var >= 0);
    }
    return r;
  };

  for (const PathAtom& atom : query.path_atoms()) {
    ResolvedAtom r;
    auto from = resolve_term(atom.from);
    if (!from.ok()) return from.status();
    auto to = resolve_term(atom.to);
    if (!to.ok()) return to.status();
    r.from = from.value();
    r.to = to.value();
    r.path = query.PathVarIndex(atom.path);
    out.atoms.push_back(r);
  }

  if (compiled != nullptr) {
    if (compiled->base_size != graph.alphabet().size()) {
      return Status::InvalidArgument(
          "compiled plan targets a base alphabet of size " +
          std::to_string(compiled->base_size) +
          " but the graph alphabet has size " +
          std::to_string(graph.alphabet().size()));
    }
    out.compiled = std::move(compiled);
  } else {
    auto built = CompileQuery(query, graph.alphabet().size());
    if (!built.ok()) return built.status();
    out.compiled = std::move(built).value();
  }
  return out;
}

HeadTupleEmitter::HeadTupleEmitter(const ResolvedQuery& rq,
                                   const EvalOptions& options,
                                   ResultSink& sink)
    : rq_(rq),
      options_(options),
      sink_(sink),
      with_paths_(!rq.query->head_paths().empty() &&
                  options.build_path_answers) {}

bool HeadTupleEmitter::Emit(const std::vector<NodeId>& head) {
  if (!seen_.insert(head).second) return true;  // duplicate projection
  bool keep_going;
  if (with_paths_) {
    auto answers = BuildPathAnswerSet(*rq_.graph, *rq_.query, options_, head,
                                      rq_.compiled, rq_.index);
    if (!answers.ok()) {
      status_ = answers.status();
      if (options_.cancellation != nullptr) options_.cancellation->Cancel();
      return false;
    }
    keep_going = sink_.Emit(head, &answers.value());
  } else {
    keep_going = sink_.Emit(head, nullptr);
  }
  if (!keep_going) {
    // Limit / exists pushdown: fan the stop out to every worker.
    stopped_by_sink_ = true;
    if (options_.cancellation != nullptr) options_.cancellation->Cancel();
  }
  return keep_going;
}

Status EvaluateProduct(const GraphDb& graph, const Query& query,
                       const EvalOptions& options, ResultSink& sink,
                       EvalStats& stats, CompiledQueryPtr compiled,
                       GraphIndexPtr index, const PhysicalPlan* plan) {
  if (!query.linear_atoms().empty()) {
    return Status::FailedPrecondition(
        "the product engine does not handle linear atoms; use the counting "
        "engine (Engine::kCounting)");
  }
  auto resolved_or =
      ResolveQuery(graph, query, std::move(compiled), std::move(index));
  if (!resolved_or.ok()) return resolved_or.status();
  ResolvedQuery& rq = resolved_or.value();
  if (options.use_graph_index && rq.index == nullptr) {
    rq.index = GraphIndex::Build(graph);
  }

  stats.engine = "product";

  // Obtain the physical plan. A caller-supplied plan (the prepared-query
  // path) is used as-is when it targets this engine; otherwise plan here,
  // forcing the product shape — direct EvaluateProduct calls on queries
  // whose auto-selected engine would differ must still get product-style
  // component groups.
  PhysicalPlan local_plan;
  if (plan == nullptr || plan->engine != Engine::kProduct) {
    EvalOptions planning = options;
    planning.engine = Engine::kProduct;
    local_plan = PlanQuery(query, *rq.compiled, rq.index.get(), planning);
    plan = &local_plan;
  }

  // Execute component leaves in plan order, keeping one binding table per
  // component. Sideways information passing: when the planner marked a
  // component, its shared variables are seeded from the prior tables that
  // bind them (exact when one table binds them all; a sound superset of
  // the join projection otherwise — the final join re-enforces equality).
  // A runtime guard keeps ProductExpand re-runs (one search per seed row)
  // cheaper than one full-seeded search; scan leaves filter in a single
  // pass, so seeding them never hurts. Each leaf runs morsel-parallel on
  // the lanes the planner recorded for it (capped by the session's
  // resolved num_threads; 1 = the legacy serial path).
  const int num_threads = ResolveNumThreads(options.num_threads);
  const double V = std::max(1, graph.num_nodes());
  constexpr size_t kMaxSeedRows = 1 << 16;
  std::vector<BindingTable> tables;
  const std::vector<NodeId> fixed(query.node_variables().size(), -1);
  for (const PlannedComponent& pc : plan->components) {
    ComponentSpec comp = BuildComponentSpec(rq, pc.atom_indices);
    BindingTable seeds;
    const BindingTable* seeds_ptr = nullptr;
    if (pc.sideways && options.use_planner && !pc.shared_vars.empty()) {
      // Group the shared vars by the earliest prior table binding them;
      // project each group, then cross the groups (usually there is one).
      std::map<size_t, std::vector<int>> groups;
      for (int v : pc.shared_vars) {
        for (size_t j = 0; j < tables.size(); ++j) {
          if (tables[j].ColumnOf(v) >= 0) {
            groups[j].push_back(v);
            break;
          }
        }
      }
      seeds = BindingTable::Unit();
      bool usable = true;
      for (const auto& [j, vars] : groups) {
        BindingTable proj = ProjectDistinct(tables[j], vars);
        if (seeds.vars.empty()) {
          seeds = std::move(proj);
        } else {
          BindingTable crossed;
          crossed.vars = seeds.vars;
          crossed.vars.insert(crossed.vars.end(), proj.vars.begin(),
                              proj.vars.end());
          for (const std::vector<NodeId>& a : seeds.rows) {
            for (const std::vector<NodeId>& b : proj.rows) {
              std::vector<NodeId> row = a;
              row.insert(row.end(), b.begin(), b.end());
              crossed.rows.push_back(std::move(row));
            }
            if (crossed.rows.size() > kMaxSeedRows) break;
          }
          seeds = std::move(crossed);
        }
        if (seeds.rows.size() > kMaxSeedRows) {
          usable = false;  // seeding would cost more than it prunes
          break;
        }
      }
      if (usable && !seeds.vars.empty()) {
        if (IsReachabilityScanComponent(rq, comp)) {
          seeds_ptr = &seeds;
        } else {
          // Count seeded coverage of the vars the leaf's direction
          // anchors (start vars forward, end vars backward, both for a
          // bidirectional leaf): seeding pays when replaying the rows is
          // cheaper than enumerating the covered anchors.
          std::set<int> anchor_vars;
          if (pc.direction != SearchDirection::kBackward) {
            anchor_vars.insert(comp.start_vars.begin(),
                               comp.start_vars.end());
          }
          if (pc.direction == SearchDirection::kBackward ||
              pc.direction == SearchDirection::kBidirectional) {
            anchor_vars.insert(comp.end_vars.begin(), comp.end_vars.end());
          }
          int covered = 0;
          for (int v : anchor_vars) {
            if (seeds.ColumnOf(v) >= 0) ++covered;
          }
          if (covered > 0 &&
              static_cast<double>(seeds.rows.size()) <
                  std::pow(V, covered)) {
            seeds_ptr = &seeds;
          }
        }
      }
    }
    // The runtime-resolved lane count wins (a per-execution num_threads
    // override must be honored even against a plan memoized at a lower
    // session parallelism); the plan only contributes its cost-based
    // demotion of leaves too small to amortize lanes.
    const int leaf_threads = pc.demoted_serial ? 1 : num_threads;
    std::set<std::vector<NodeId>> results;
    Status st = ExecuteComponentOp(rq, comp, options, fixed, seeds_ptr,
                                   pc.est_rows, pc.direction, leaf_threads,
                                   stats, &results, /*graph_sink=*/nullptr);
    if (!st.ok()) return st;
    if (results.empty()) return Status::OK();  // empty answer
    BindingTable table;
    table.vars = comp.vars;
    table.rows.assign(results.begin(), results.end());
    tables.push_back(std::move(table));
  }

  // Semi-join reduction between the component tables before the join:
  // rows with no partner on a shared variable can never contribute, and
  // dropping them shrinks the streamed join's search space (Yannakakis'
  // first phase, at component granularity).
  if (tables.size() > 1) {
    // A costed plan demotes the reduction to inline-serial when the total
    // estimated table volume is too small to amortize lanes; the decision
    // lives in the plan (not the thread count), so the executed pipeline
    // is identical at any session parallelism.
    const int semijoin_threads =
        (options.use_planner && plan->costed && !plan->semijoin_parallel_ok)
            ? 1
            : num_threads;
    bool changed = true;
    int rounds = 0;
    while (changed && rounds < static_cast<int>(tables.size()) + 2) {
      changed = false;
      ++rounds;
      for (size_t i = 0; i < tables.size(); ++i) {
        for (size_t j = 0; j < tables.size(); ++j) {
          if (i == j) continue;
          if (SemiJoinFilterOp(&tables[i], tables[j], stats,
                               semijoin_threads)) {
            changed = true;
          }
          if (tables[i].rows.empty()) return Status::OK();  // empty answer
        }
      }
    }
  }

  // Large-estimate plans fold the component tables pairwise through the
  // (radix-partitioned) HashJoinOp in plan order and emit head projections
  // from the folded table. The pairwise fold produces rows in exactly the
  // streamed recursion's nested left-row-major order (each probe preserves
  // its left input's row order and lists right matches by ascending row
  // id), so the emitted tuple sequence — and any limit cut point — is the
  // same as the streamed path's. Whether to fold depends only on the
  // plan's cardinality estimates, never the thread count.
  bool fold_join = false;
  if (options.use_planner && plan->costed && tables.size() > 1 &&
      plan->components.size() == tables.size()) {
    for (const PlannedComponent& pc : plan->components) {
      if (pc.join_parallel_ok) fold_join = true;
    }
  }
  if (fold_join) {
    CancellationToken* cancel = options.cancellation.get();
    BindingTable joined = std::move(tables[0]);
    for (size_t i = 1; i < tables.size(); ++i) {
      const int join_threads =
          plan->components[i].join_parallel_ok ? num_threads : 1;
      joined = HashJoinOp(joined, tables[i], stats, join_threads);
      if (cancel != nullptr && cancel->cancelled()) {
        return Status::Cancelled("query execution cancelled");
      }
      if (joined.rows.empty()) return Status::OK();  // empty answer
    }
    HeadTupleEmitter emitter(rq, options, sink);
    std::vector<int> head_cols;
    for (const NodeTerm& term : query.head_nodes()) {
      ECRPQ_DCHECK(!term.is_constant);
      head_cols.push_back(joined.ColumnOf(query.NodeVarIndex(term.name)));
    }
    std::vector<NodeId> head(head_cols.size());
    for (const std::vector<NodeId>& row : joined.rows) {
      if (cancel != nullptr && cancel->cancelled() &&
          !emitter.stopped_by_sink()) {
        return Status::Cancelled("query execution cancelled");
      }
      for (size_t k = 0; k < head_cols.size(); ++k) {
        head[k] = row[head_cols[k]];
      }
      if (!emitter.Emit(head)) break;
    }
    if (emitter.status().ok() && cancel != nullptr && cancel->cancelled() &&
        !emitter.stopped_by_sink()) {
      return Status::Cancelled("query execution cancelled");
    }
    return emitter.status();
  }

  // Small-estimate (and uncosted / planner-off) plans stream the
  // multi-way join instead: each new head projection goes to the sink as
  // soon as it is found — early termination (limit / exists) stops the
  // join itself, and path answers (when requested) are built per emitted
  // tuple only. One HashJoin operator entry profiles the streamed join.
  HeadTupleEmitter emitter(rq, options, sink);
  OperatorStats join_op;
  join_op.op = "HashJoin";
  join_op.detail = "streamed over " + std::to_string(tables.size()) +
                   " components";
  for (const BindingTable& t : tables) join_op.rows_in += t.rows.size();
  std::vector<NodeId> global(query.node_variables().size(), -1);
  CancellationToken* cancel = options.cancellation.get();
  bool stop = false;
  std::function<void(size_t)> join = [&](size_t i) {
    if (stop) return;
    if (cancel != nullptr && cancel->cancelled() &&
        !emitter.stopped_by_sink()) {
      stop = true;  // external kill mid-join
      return;
    }
    if (i == tables.size()) {
      std::vector<NodeId> head;
      for (const NodeTerm& term : query.head_nodes()) {
        ECRPQ_DCHECK(!term.is_constant);
        head.push_back(global[query.NodeVarIndex(term.name)]);
      }
      ++stats.join_tuples;
      ++join_op.rows_out;
      if (!emitter.Emit(head)) stop = true;
      return;
    }
    const BindingTable& t = tables[i];
    for (const std::vector<NodeId>& row : t.rows) {
      if (stop) return;
      bool ok = true;
      std::vector<int> bound;
      for (size_t k = 0; k < t.vars.size() && ok; ++k) {
        int v = t.vars[k];
        if (global[v] >= 0) {
          ok = (global[v] == row[k]);
        } else {
          global[v] = row[k];
          bound.push_back(v);
        }
      }
      if (ok) join(i + 1);
      for (int v : bound) global[v] = -1;
    }
  };
  join(0);
  stats.operators.push_back(std::move(join_op));
  if (emitter.status().ok() && cancel != nullptr && cancel->cancelled() &&
      !emitter.stopped_by_sink()) {
    return Status::Cancelled("query execution cancelled");
  }
  return emitter.status();
}

Result<QueryResult> EvaluateProduct(const GraphDb& graph, const Query& query,
                                    const EvalOptions& options) {
  return MaterializeResult([&](ResultSink& sink, EvalStats& stats) {
    return EvaluateProduct(graph, query, options, sink, stats);
  });
}

Result<std::vector<ComponentProductGraph>> BuildComponentProducts(
    const GraphDb& graph, const Query& query, const EvalOptions& options,
    const std::vector<NodeId>& assignment, CompiledQueryPtr compiled,
    GraphIndexPtr index) {
  auto resolved_or =
      ResolveQuery(graph, query, std::move(compiled), std::move(index));
  if (!resolved_or.ok()) return resolved_or.status();
  ResolvedQuery& rq = resolved_or.value();
  if (options.use_graph_index && rq.index == nullptr) {
    rq.index = GraphIndex::Build(graph);
  }
  if (assignment.size() != query.node_variables().size()) {
    return Status::InvalidArgument(
        "assignment arity does not match node variable count");
  }
  for (NodeId v : assignment) {
    if (v < 0 || v >= graph.num_nodes()) {
      return Status::InvalidArgument("assignment binds a non-node");
    }
  }

  std::vector<ComponentProductGraph> out;
  EvalStats stats;
  for (const auto& group : rq.analysis().components) {
    ComponentSpec comp = BuildComponentSpec(rq, group);
    ProductGraphSink sink;
    Status st = ExecuteComponentOp(rq, comp, options, assignment,
                                   /*seeds=*/nullptr, /*est_rows=*/-1.0,
                                   SearchDirection::kForward,
                                   /*num_threads=*/1, stats,
                                   /*results=*/nullptr, &sink);
    if (!st.ok()) return st;
    ComponentProductGraph cpg;
    cpg.tracks = comp.tracks;
    cpg.num_states = static_cast<int>(sink.configs.size());
    cpg.initial = sink.initial;
    cpg.accepting = sink.accepting;
    for (int s = 0; s < cpg.num_states; ++s) {
      for (const auto& [letters, target] : sink.arcs[s]) {
        cpg.arcs.emplace_back(s, target, letters);
      }
    }
    out.push_back(std::move(cpg));
  }
  return out;
}

Result<PathAnswerSet> BuildPathAnswerSet(
    const GraphDb& graph, const Query& query, const EvalOptions& options,
    const std::vector<NodeId>& head_nodes, CompiledQueryPtr compiled,
    GraphIndexPtr index) {
  auto resolved_or =
      ResolveQuery(graph, query, std::move(compiled), std::move(index));
  if (!resolved_or.ok()) return resolved_or.status();
  ResolvedQuery& rq = resolved_or.value();
  if (options.use_graph_index && rq.index == nullptr) {
    rq.index = GraphIndex::Build(graph);
  }

  if (head_nodes.size() != query.head_nodes().size()) {
    return Status::InvalidArgument(
        "head binding arity does not match query head");
  }

  // Fix head node variables.
  std::vector<NodeId> fixed(query.node_variables().size(), -1);
  for (size_t i = 0; i < query.head_nodes().size(); ++i) {
    const NodeTerm& term = query.head_nodes()[i];
    int v = query.NodeVarIndex(term.name);
    if (fixed[v] >= 0 && fixed[v] != head_nodes[i]) {
      return Status::InvalidArgument("inconsistent head binding");
    }
    fixed[v] = head_nodes[i];
  }

  // Split the query: the atoms of components containing a head path
  // variable are searched jointly with arc recording; the remaining
  // components only constrain node variables, so they are solved node-only
  // and their satisfying assignments anchor the head search.
  std::vector<int> head_path_ids;
  for (const std::string& p : query.head_paths()) {
    head_path_ids.push_back(query.PathVarIndex(p));
  }
  std::vector<int> head_atoms;
  std::vector<ComponentSpec> other_components;
  for (const auto& group : rq.analysis().components) {
    bool has_head = false;
    for (int idx : group) {
      for (int hp : head_path_ids) {
        if (rq.atoms[idx].path == hp) has_head = true;
      }
    }
    if (has_head) {
      head_atoms.insert(head_atoms.end(), group.begin(), group.end());
    } else {
      other_components.push_back(BuildComponentSpec(rq, group));
    }
  }
  std::sort(head_atoms.begin(), head_atoms.end());
  if (head_atoms.empty()) {
    return Status::InvalidArgument("query head has no path variables");
  }
  ComponentSpec comp = BuildComponentSpec(rq, head_atoms);

  EvalStats stats;

  // Anchor assignments: satisfying bindings of the other components,
  // projected to the variables they share with the head component (and
  // joined among themselves on their own shared variables).
  std::vector<std::vector<NodeId>> anchors;  // full-var partial bindings
  {
    std::vector<std::set<std::vector<NodeId>>> other_results;
    for (const ComponentSpec& other : other_components) {
      other_results.emplace_back();
      Status st = ExecuteComponentOp(rq, other, options, fixed,
                                     /*seeds=*/nullptr, /*est_rows=*/-1.0,
                                     SearchDirection::kAuto,
                                     /*num_threads=*/1, stats,
                                     &other_results.back(),
                                     /*graph_sink=*/nullptr);
      if (!st.ok()) return st;
      if (other_results.back().empty()) {
        // Unsatisfiable side condition: the answer set is empty.
        return PathAnswerSet(
            std::max<int>(static_cast<int>(head_path_ids.size()), 1),
            graph.alphabet().size());
      }
    }
    std::set<std::vector<NodeId>> anchor_set;
    std::vector<NodeId> global = fixed;
    std::function<void(size_t)> join = [&](size_t i) {
      if (i == other_components.size()) {
        // Keep only variables the head component shares.
        std::vector<NodeId> anchor = fixed;
        for (int v : comp.vars) anchor[v] = global[v];
        anchor_set.insert(anchor);
        return;
      }
      const ComponentSpec& other = other_components[i];
      for (const std::vector<NodeId>& tuple : other_results[i]) {
        bool ok = true;
        std::vector<int> bound;
        for (size_t k = 0; k < other.vars.size() && ok; ++k) {
          int v = other.vars[k];
          if (global[v] >= 0) {
            ok = (global[v] == tuple[k]);
          } else {
            global[v] = tuple[k];
            bound.push_back(v);
          }
        }
        if (ok) join(i + 1);
        for (int v : bound) global[v] = -1;
      }
    };
    join(0);
    anchors.assign(anchor_set.begin(), anchor_set.end());
  }
  if (anchors.empty()) anchors.push_back(fixed);

  ProductGraphSink sink;
  for (const std::vector<NodeId>& anchor : anchors) {
    Status st = ExecuteComponentOp(rq, comp, options, anchor,
                                   /*seeds=*/nullptr, /*est_rows=*/-1.0,
                                   SearchDirection::kForward,
                                   /*num_threads=*/1, stats,
                                   /*results=*/nullptr, &sink);
    if (!st.ok()) return st;
  }

  // Head track selection (indices into comp.tracks).
  std::vector<int> head_tracks;
  for (const std::string& p : query.head_paths()) {
    head_tracks.push_back(comp.track_of_path[query.PathVarIndex(p)]);
  }
  const int k = static_cast<int>(head_tracks.size());

  // ε-closure over arcs whose head projection is all-pad, so that the
  // answer automaton counts head-projections exactly.
  const int n = static_cast<int>(sink.configs.size());
  auto head_all_pad = [&](const std::vector<Symbol>& letters) {
    for (int t : head_tracks) {
      if (letters[t] != kPad) return false;
    }
    return true;
  };
  // closure[s] = states reachable from s via head-all-pad arcs.
  std::vector<std::vector<int>> closure(n);
  for (int s = 0; s < n; ++s) {
    std::vector<bool> seen(n, false);
    std::vector<int> stack = {s};
    seen[s] = true;
    while (!stack.empty()) {
      int u = stack.back();
      stack.pop_back();
      closure[s].push_back(u);
      for (const auto& [letters, target] : sink.arcs[u]) {
        if (head_all_pad(letters) && !seen[target]) {
          seen[target] = true;
          stack.push_back(target);
        }
      }
    }
  }

  PathAnswerSet answers(std::max(k, 1), graph.alphabet().size());
  std::vector<int> remap(n);
  for (int s = 0; s < n; ++s) {
    std::vector<NodeId> head_node_tuple;
    for (int t : head_tracks) {
      head_node_tuple.push_back(sink.configs[s].nodes[t]);
    }
    bool accepting = false;
    for (int c : closure[s]) accepting = accepting || sink.accepting[c];
    remap[s] = answers.AddState(std::move(head_node_tuple), sink.initial[s],
                                accepting);
  }
  for (int s = 0; s < n; ++s) {
    for (int c : closure[s]) {
      for (const auto& [letters, target] : sink.arcs[c]) {
        if (head_all_pad(letters)) continue;
        TupleLetter head_letter;
        for (int t : head_tracks) head_letter.push_back(letters[t]);
        answers.AddArc(remap[s], head_letter, remap[target]);
      }
    }
  }
  return answers;
}

}  // namespace ecrpq
