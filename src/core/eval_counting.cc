#include "core/eval_counting.h"

#include <functional>
#include <map>
#include <set>

#include "core/eval_product.h"
#include "solver/parikh.h"

namespace ecrpq {

Status EvaluateCounting(const GraphDb& graph, const Query& query,
                        const EvalOptions& options, ResultSink& sink,
                        EvalStats& stats, CompiledQueryPtr compiled,
                        GraphIndexPtr index) {
  if (!query.head_paths().empty()) {
    return Status::FailedPrecondition(
        "the counting engine does not produce path outputs");
  }
  auto resolved_or =
      ResolveQuery(graph, query, std::move(compiled), std::move(index));
  if (!resolved_or.ok()) return resolved_or.status();
  if (options.use_graph_index && resolved_or.value().index == nullptr) {
    resolved_or.value().index = GraphIndex::Build(graph);
  }
  // Reuse the compiled relations and the CSR index across every σ below.
  CompiledQueryPtr shared = resolved_or.value().compiled;
  GraphIndexPtr shared_index = resolved_or.value().index;

  stats.engine = "counting";
  if (options.cancellation != nullptr &&
      options.cancellation->cancelled()) {
    return Status::Cancelled("query execution cancelled");
  }


  const int num_vars = static_cast<int>(query.node_variables().size());
  const int base = graph.alphabet().size();

  // Letter counters per (path variable, symbol) are indices into each ILP;
  // they are created per σ-attempt below.
  HeadTupleEmitter emitter(resolved_or.value(), options, sink);

  std::vector<NodeId> assignment(num_vars, -1);
  Status failure = Status::OK();
  bool stop = false;

  // The plan's LinearConstraintCheck operator: one ILP feasibility check
  // per enumerated node assignment σ; its counters are recorded once the
  // enumeration finishes.
  OperatorStats check_op;
  check_op.op = "LinearConstraintCheck";
  check_op.detail = std::to_string(query.linear_atoms().size()) +
                    " linear atoms";

  std::function<void(int)> enumerate = [&](int var) {
    if (!failure.ok() || stop) return;
    if (var < num_vars) {
      for (NodeId v = 0; v < graph.num_nodes(); ++v) {
        assignment[var] = v;
        enumerate(var + 1);
        if (!failure.ok() || stop) break;
      }
      assignment[var] = -1;
      return;
    }
    ++stats.start_assignments;

    // Build per-component product automata under σ.
    auto products_or = BuildComponentProducts(graph, query, options,
                                              assignment, shared,
                                              shared_index);
    if (!products_or.ok()) {
      failure = products_or.status();
      return;
    }

    // One shared ILP: counters c_{p,a} plus one flow encoding per
    // component.
    ParikhConstraintBuilder builder(options.parikh);
    const int64_t count_bound =
        options.parikh.max_flow_per_transition *
        std::max<int64_t>(1, graph.num_edges());
    std::vector<std::vector<int>> counter(query.path_variables().size());
    for (size_t p = 0; p < counter.size(); ++p) {
      counter[p].resize(base);
      for (Symbol a = 0; a < base; ++a) {
        counter[p][a] = builder.AddVariable(0, count_bound);
      }
    }
    // Counters that receive no arc contribution anywhere must be pinned to
    // zero, or the ILP could use them as free slack.
    std::vector<std::vector<bool>> counter_used(
        counter.size(), std::vector<bool>(base, false));
    for (const ComponentProductGraph& cpg : products_or.value()) {
      bool any_accepting = false;
      for (bool acc : cpg.accepting) any_accepting = any_accepting || acc;
      if (!any_accepting || cpg.num_states == 0) return;  // σ infeasible
      std::vector<int> initial, accepting;
      for (int s = 0; s < cpg.num_states; ++s) {
        if (cpg.initial[s]) initial.push_back(s);
        if (cpg.accepting[s]) accepting.push_back(s);
      }
      std::vector<
          std::tuple<int, int, std::vector<std::pair<int, int64_t>>>>
          arcs;
      arcs.reserve(cpg.arcs.size());
      for (const auto& [from, to, letters] : cpg.arcs) {
        std::vector<std::pair<int, int64_t>> contribs;
        for (size_t t = 0; t < letters.size(); ++t) {
          if (letters[t] == kPad) continue;
          contribs.emplace_back(counter[cpg.tracks[t]][letters[t]], 1);
          counter_used[cpg.tracks[t]][letters[t]] = true;
        }
        arcs.emplace_back(from, to, std::move(contribs));
      }
      Status st =
          builder.AddCountedGraph(cpg.num_states, initial, accepting, arcs);
      if (!st.ok()) {
        failure = st;
        return;
      }
    }
    for (size_t p = 0; p < counter.size(); ++p) {
      for (Symbol a = 0; a < base; ++a) {
        if (!counter_used[p][a]) {
          builder.AddConstraint({{{counter[p][a], 1}}, Cmp::kEq, 0});
        }
      }
    }
    // The query's linear rows: occ(p, a) -> c_{p,a}; len(p) -> Σ_a c_{p,a}.
    for (const LinearAtom& atom : query.linear_atoms()) {
      LinearConstraint c;
      for (const LinearTerm& term : atom.terms) {
        int p = query.PathVarIndex(term.path);
        if (term.symbol >= 0) {
          c.terms.emplace_back(counter[p][term.symbol], term.coef);
        } else {
          for (Symbol a = 0; a < base; ++a) {
            c.terms.emplace_back(counter[p][a], term.coef);
          }
        }
      }
      c.cmp = atom.cmp;
      c.rhs = atom.rhs;
      builder.AddConstraint(std::move(c));
    }
    stats.ilp_variables = builder.problem().num_variables();
    stats.ilp_constraints = builder.problem().constraints().size();

    ++check_op.rows_in;
    auto solution = builder.Solve();
    if (!solution.ok()) {
      failure = solution.status();
      return;
    }
    if (!solution.value().feasible) return;
    ++check_op.rows_out;

    std::vector<NodeId> head;
    for (const NodeTerm& term : query.head_nodes()) {
      head.push_back(assignment[query.NodeVarIndex(term.name)]);
    }
    if (!emitter.Emit(head)) stop = true;
  };
  enumerate(0);
  stats.operators.push_back(std::move(check_op));
  if (!failure.ok()) return failure;
  return emitter.status();
}

Result<QueryResult> EvaluateCounting(const GraphDb& graph, const Query& query,
                                     const EvalOptions& options) {
  return MaterializeResult([&](ResultSink& sink, EvalStats& stats) {
    return EvaluateCounting(graph, query, options, sink, stats);
  });
}

}  // namespace ecrpq
