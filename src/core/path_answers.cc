#include "core/path_answers.h"

#include <algorithm>
#include <map>
#include <queue>
#include <set>

#include "automata/nfa.h"
#include "automata/operations.h"

namespace ecrpq {

PathAnswerSet::PathAnswerSet(int num_tracks, int base_size)
    : num_tracks_(num_tracks), letters_(base_size, std::max(num_tracks, 1)) {
  ECRPQ_DCHECK(num_tracks >= 1);
}

int PathAnswerSet::AddState(std::vector<NodeId> nodes, bool initial,
                            bool accepting) {
  ECRPQ_DCHECK(static_cast<int>(nodes.size()) == num_tracks_);
  nodes_.push_back(std::move(nodes));
  arcs_.emplace_back();
  initial_.push_back(initial);
  accepting_.push_back(accepting);
  return static_cast<int>(nodes_.size() - 1);
}

void PathAnswerSet::AddArc(int from, const TupleLetter& letter, int to) {
  ECRPQ_DCHECK(from >= 0 && from < num_states());
  ECRPQ_DCHECK(to >= 0 && to < num_states());
#ifndef NDEBUG
  for (int t = 0; t < num_tracks_; ++t) {
    if (letter[t] == kPad) {
      ECRPQ_DCHECK(nodes_[from][t] == nodes_[to][t]);
    }
  }
#endif
  arcs_[from].push_back({letters_.Encode(letter), to});
}

void PathAnswerSet::SetAccepting(int state, bool accepting) {
  accepting_[state] = accepting;
}

namespace {
// Trims to states reachable from an initial and co-reachable from an
// accepting state; returns per-state liveness.
std::vector<bool> LiveStates(const std::vector<bool>& initial,
                             const std::vector<bool>& accepting,
                             const std::vector<std::vector<std::pair<int, int>>>&
                                 fwd_arcs) {
  const int n = static_cast<int>(initial.size());
  std::vector<bool> reach(n, false), coreach(n, false);
  std::vector<int> stack;
  for (int s = 0; s < n; ++s) {
    if (initial[s]) {
      reach[s] = true;
      stack.push_back(s);
    }
  }
  while (!stack.empty()) {
    int s = stack.back();
    stack.pop_back();
    for (const auto& [letter, t] : fwd_arcs[s]) {
      (void)letter;
      if (!reach[t]) {
        reach[t] = true;
        stack.push_back(t);
      }
    }
  }
  std::vector<std::vector<int>> rev(n);
  for (int s = 0; s < n; ++s) {
    for (const auto& [letter, t] : fwd_arcs[s]) {
      (void)letter;
      rev[t].push_back(s);
    }
  }
  for (int s = 0; s < n; ++s) {
    if (accepting[s]) {
      coreach[s] = true;
      stack.push_back(s);
    }
  }
  while (!stack.empty()) {
    int s = stack.back();
    stack.pop_back();
    for (int p : rev[s]) {
      if (!coreach[p]) {
        coreach[p] = true;
        stack.push_back(p);
      }
    }
  }
  std::vector<bool> live(n);
  for (int s = 0; s < n; ++s) live[s] = reach[s] && coreach[s];
  return live;
}
}  // namespace

bool PathAnswerSet::IsEmpty() const {
  std::vector<std::vector<std::pair<int, int>>> fwd(num_states());
  for (int s = 0; s < num_states(); ++s) {
    for (const Arc& arc : arcs_[s]) fwd[s].push_back({arc.letter, arc.target});
  }
  std::vector<bool> live = LiveStates(initial_, accepting_, fwd);
  for (int s = 0; s < num_states(); ++s) {
    if (live[s] && initial_[s]) return false;
  }
  return true;
}

bool PathAnswerSet::IsInfinite() const {
  // Distinct tuples are in bijection with accepted representation words,
  // and each word corresponds to at least one state-path; infinitely many
  // words require a cycle among live states. Conversely a live cycle
  // pumps arbitrarily long representation words, and distinct words encode
  // distinct tuples. So: infinite iff the live sub-graph has a cycle.
  std::vector<std::vector<std::pair<int, int>>> fwd(num_states());
  for (int s = 0; s < num_states(); ++s) {
    for (const Arc& arc : arcs_[s]) fwd[s].push_back({arc.letter, arc.target});
  }
  std::vector<bool> live = LiveStates(initial_, accepting_, fwd);
  std::vector<int> color(num_states(), 0);
  for (int root = 0; root < num_states(); ++root) {
    if (!live[root] || color[root] != 0) continue;
    std::vector<std::pair<int, size_t>> stack = {{root, 0}};
    color[root] = 1;
    while (!stack.empty()) {
      auto& [s, idx] = stack.back();
      if (idx < arcs_[s].size()) {
        int t = arcs_[s][idx++].target;
        if (!live[t]) continue;
        if (color[t] == 1) return true;
        if (color[t] == 0) {
          color[t] = 1;
          stack.emplace_back(t, 0);
        }
      } else {
        color[s] = 2;
        stack.pop_back();
      }
    }
  }
  return false;
}

namespace {
// Interned alphabet of (letter-or-init, node-tuple) pairs for distinct
// counting/enumeration.
class PairInterner {
 public:
  int Intern(int letter, const std::vector<NodeId>& nodes) {
    auto [it, inserted] =
        ids_.emplace(std::make_pair(letter, nodes), next_);
    if (inserted) ++next_;
    return it->second;
  }
  int size() const { return next_; }

 private:
  std::map<std::pair<int, std::vector<NodeId>>, int> ids_;
  int next_ = 0;
};
}  // namespace

uint64_t PathAnswerSet::CountTuples(int max_len) const {
  // Build the word NFA: super-initial --(init, v̄0)--> states; arcs become
  // (letter, v̄_target). Distinct words are counted by the subset-based
  // counter in automata/operations.
  PairInterner interner;
  constexpr int kInit = -7;
  std::vector<std::tuple<int, int, int>> arcs;  // (from+1, symbol, to+1)
  for (int s = 0; s < num_states(); ++s) {
    if (initial_[s]) {
      arcs.emplace_back(0, interner.Intern(kInit, nodes_[s]), s + 1);
    }
    for (const Arc& arc : arcs_[s]) {
      arcs.emplace_back(s + 1, interner.Intern(arc.letter, nodes_[arc.target]),
                        arc.target + 1);
    }
  }
  Nfa nfa(interner.size());
  nfa.AddStates(num_states() + 1);
  nfa.SetInitial(0);
  for (int s = 0; s < num_states(); ++s) {
    if (accepting_[s]) nfa.SetAccepting(s + 1);
  }
  for (const auto& [from, symbol, to] : arcs) {
    nfa.AddTransition(from, symbol, to);
  }
  // Representation word length = 1 (init) + convolution length.
  uint64_t total = 0;
  for (int l = 1; l <= max_len + 1; ++l) {
    uint64_t c = CountWordsOfLength(nfa, l);
    total = (total + c < total) ? UINT64_MAX : total + c;
  }
  return total;
}

std::vector<PathTuple> PathAnswerSet::Enumerate(int max_count,
                                                int max_len) const {
  std::vector<PathTuple> out;
  if (max_count <= 0) return out;
  // BFS over (start state, current state, representation word so far),
  // deduplicating emitted tuples by their canonical representation word
  // (distinct state-paths can spell the same word).
  std::set<std::vector<int>> emitted;
  auto canonical = [&](int start, const std::vector<std::pair<TupleLetter, int>>&
                                      word) {
    std::vector<int> code;
    for (NodeId v : nodes_[start]) code.push_back(v);
    for (const auto& [letter, target] : word) {
      code.push_back(-1);
      code.push_back(letters_.Encode(letter));
      for (NodeId v : nodes_[target]) code.push_back(v);
    }
    return code;
  };
  struct Frame {
    int start;
    int state;
    std::vector<std::pair<TupleLetter, int>> word;
  };
  std::queue<Frame> frames;
  for (int s = 0; s < num_states(); ++s) {
    if (initial_[s]) frames.push({s, s, {}});
  }
  while (!frames.empty() && static_cast<int>(out.size()) < max_count) {
    Frame frame = std::move(frames.front());
    frames.pop();
    if (accepting_[frame.state]) {
      std::vector<int> code = canonical(frame.start, frame.word);
      if (emitted.insert(code).second) {
        // Decode into a PathTuple.
        PathTuple tuple;
        tuple.reserve(num_tracks_);
        for (int t = 0; t < num_tracks_; ++t) {
          Path path(nodes_[frame.start][t]);
          for (const auto& [letter, target] : frame.word) {
            if (letter[t] != kPad) {
              path.Append(letter[t], nodes_[target][t]);
            }
          }
          tuple.push_back(std::move(path));
        }
        out.push_back(std::move(tuple));
      }
    }
    if (static_cast<int>(frame.word.size()) >= max_len) continue;
    for (const Arc& arc : arcs_[frame.state]) {
      Frame next = frame;
      next.word.emplace_back(letters_.Decode(arc.letter), arc.target);
      next.state = arc.target;
      frames.push(std::move(next));
    }
  }
  return out;
}

bool PathAnswerSet::Contains(const PathTuple& tuple) const {
  ECRPQ_DCHECK(static_cast<int>(tuple.size()) == num_tracks_);
  // The representation word of the tuple is unique; simulate it.
  size_t max_len = 0;
  for (const Path& p : tuple) {
    max_len = std::max(max_len, static_cast<size_t>(p.length()));
  }
  // Current states consistent so far.
  std::vector<int> current;
  for (int s = 0; s < num_states(); ++s) {
    if (!initial_[s]) continue;
    bool ok = true;
    for (int t = 0; t < num_tracks_ && ok; ++t) {
      ok = (nodes_[s][t] == tuple[t].start());
    }
    if (ok) current.push_back(s);
  }
  for (size_t i = 0; i < max_len; ++i) {
    TupleLetter letter(num_tracks_);
    std::vector<NodeId> expect(num_tracks_);
    for (int t = 0; t < num_tracks_; ++t) {
      if (i < static_cast<size_t>(tuple[t].length())) {
        letter[t] = tuple[t].steps()[i].first;
        expect[t] = tuple[t].steps()[i].second;
      } else {
        letter[t] = kPad;
        expect[t] = tuple[t].end();
      }
    }
    Symbol letter_id = letters_.Encode(letter);
    std::vector<int> next;
    for (int s : current) {
      for (const Arc& arc : arcs_[s]) {
        if (arc.letter == letter_id && nodes_[arc.target] == expect) {
          next.push_back(arc.target);
        }
      }
    }
    std::sort(next.begin(), next.end());
    next.erase(std::unique(next.begin(), next.end()), next.end());
    current = std::move(next);
    if (current.empty()) return false;
  }
  for (int s : current) {
    if (accepting_[s]) return true;
  }
  return false;
}

}  // namespace ecrpq
