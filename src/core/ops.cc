#include "core/ops.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <functional>
#include <map>
#include <memory>
#include <numeric>
#include <queue>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "core/eval_crpq.h"
#include "core/parallel.h"

namespace ecrpq {

BindingTable ProjectDistinct(const BindingTable& table,
                             const std::vector<int>& vars) {
  BindingTable out;
  out.vars = vars;
  std::vector<int> cols;
  for (int v : vars) {
    int c = table.ColumnOf(v);
    ECRPQ_DCHECK(c >= 0);
    cols.push_back(c);
  }
  std::set<std::vector<NodeId>> seen;
  for (const std::vector<NodeId>& row : table.rows) {
    std::vector<NodeId> projected;
    projected.reserve(cols.size());
    for (int c : cols) projected.push_back(row[c]);
    if (seen.insert(projected).second) out.rows.push_back(std::move(projected));
  }
  return out;
}

ComponentSpec BuildComponentSpec(const ResolvedQuery& rq,
                                 const std::vector<int>& atom_indices) {
  ComponentSpec comp;
  comp.atom_indices = atom_indices;
  comp.track_of_path.assign(rq.query->path_variables().size(), -1);
  auto add_var = [&](const ResolvedTerm& term, bool is_start) {
    if (term.is_const) return;
    if (std::find(comp.vars.begin(), comp.vars.end(), term.var) ==
        comp.vars.end()) {
      comp.vars.push_back(term.var);
    }
    if (is_start &&
        std::find(comp.start_vars.begin(), comp.start_vars.end(),
                  term.var) == comp.start_vars.end()) {
      comp.start_vars.push_back(term.var);
    }
  };
  for (int idx : atom_indices) {
    const ResolvedAtom& atom = rq.atoms[idx];
    if (comp.track_of_path[atom.path] < 0) {
      comp.track_of_path[atom.path] = static_cast<int>(comp.tracks.size());
      comp.tracks.push_back(atom.path);
    }
    add_var(atom.from, /*is_start=*/true);
    add_var(atom.to, /*is_start=*/false);
  }
  for (size_t r = 0; r < rq.relations().size(); ++r) {
    // A relation belongs to the component holding its first path's track
    // (components contain either all or none of a relation's paths).
    if (comp.track_of_path[rq.relations()[r].paths[0]] >= 0) {
      comp.relation_indices.push_back(static_cast<int>(r));
    }
  }
  return comp;
}

bool IsReachabilityScanComponent(const ResolvedQuery& rq,
                                 const ComponentSpec& comp) {
  if (comp.atom_indices.size() != 1 || comp.tracks.size() != 1) return false;
  for (int r : comp.relation_indices) {
    if (rq.relations()[r].relation->arity() != 1) return false;
  }
  return true;
}

namespace {

constexpr const char* kCancelledMessage = "query execution cancelled";

// Interns relation state subsets (serial searches; one pool per search).
// The shared-frontier parallel search uses SharedSubsetPool
// (core/parallel.h) instead.
class SubsetPool {
 public:
  int Intern(std::vector<StateId> subset) {
    auto [it, inserted] = ids_.emplace(std::move(subset), 0);
    if (inserted) {
      it->second = static_cast<int>(store_.size());
      store_.push_back(it->first);
    }
    return it->second;
  }
  const std::vector<StateId>& Get(int id) const { return store_[id]; }

 private:
  std::map<std::vector<StateId>, int> ids_;
  std::vector<std::vector<StateId>> store_;
};

// Open-addressing visited/intern table over product configurations
// (serial searches; the parallel search shards this structure — see
// ShardedVisitedTable in core/parallel.h).
//
// When padmask + per-track node ids + per-relation subset ids fit one
// word (ConfigCodec), configurations are keyed by a packed uint64 code
// and probes compare single words — no per-configuration allocation, no
// vector hashing. Subset-interning ids are assigned dynamically, so a
// search whose subset count outgrows its bit field migrates once to the
// generic path (structural hash, equality against the discovery array)
// and keeps going; searches whose shape never fits start there.
class VisitedTable {
 public:
  VisitedTable(int tracks, int relations, int num_nodes)
      : codec_(tracks, relations, num_nodes), packed_(codec_.packable) {
    Rehash(1024);
  }

  // Returns (config id, inserted). A new config is appended to `order`.
  std::pair<int, bool> FindOrInsert(ProductConfig&& c,
                                    std::vector<ProductConfig>& order) {
    if (packed_) {
      uint64_t code;
      if (!codec_.TryPack(c, &code)) {
        MigrateToGeneric(order);
      } else {
        if ((size_ + 1) * 10 >= slots_.size() * 7) RehashPacked(order);
        size_t i = MixHash64(code) & (slots_.size() - 1);
        while (slots_[i] >= 0) {
          if (keys_[i] == code) return {slots_[i], false};
          i = (i + 1) & (slots_.size() - 1);
        }
        int id = static_cast<int>(order.size());
        order.push_back(std::move(c));
        slots_[i] = id;
        keys_[i] = code;
        ++size_;
        return {id, true};
      }
    }
    if ((size_ + 1) * 10 >= slots_.size() * 7) RehashGeneric(order);
    size_t i = HashProductConfig(c) & (slots_.size() - 1);
    while (slots_[i] >= 0) {
      if (order[slots_[i]] == c) return {slots_[i], false};
      i = (i + 1) & (slots_.size() - 1);
    }
    int id = static_cast<int>(order.size());
    order.push_back(std::move(c));
    slots_[i] = id;
    ++size_;
    return {id, true};
  }

 private:
  void Rehash(size_t capacity) {
    slots_.assign(capacity, -1);
    if (packed_) keys_.assign(capacity, 0);
  }

  void RehashPacked(const std::vector<ProductConfig>& order) {
    (void)order;  // packed slots carry their own keys
    std::vector<int32_t> old_slots = std::move(slots_);
    std::vector<uint64_t> old_keys = std::move(keys_);
    Rehash(old_slots.size() * 2);
    for (size_t j = 0; j < old_slots.size(); ++j) {
      if (old_slots[j] < 0) continue;
      size_t i = MixHash64(old_keys[j]) & (slots_.size() - 1);
      while (slots_[i] >= 0) i = (i + 1) & (slots_.size() - 1);
      slots_[i] = old_slots[j];
      keys_[i] = old_keys[j];
    }
  }

  // Clears the table to `capacity` slots and re-inserts every config of
  // `order` by structural hash (generic mode's rebuild).
  void RebuildGeneric(size_t capacity,
                      const std::vector<ProductConfig>& order) {
    slots_.assign(capacity, -1);
    for (size_t id = 0; id < order.size(); ++id) {
      size_t i = HashProductConfig(order[id]) & (capacity - 1);
      while (slots_[i] >= 0) i = (i + 1) & (capacity - 1);
      slots_[i] = static_cast<int32_t>(id);
    }
  }

  void RehashGeneric(const std::vector<ProductConfig>& order) {
    RebuildGeneric(slots_.size() * 2, order);
  }

  void MigrateToGeneric(const std::vector<ProductConfig>& order) {
    packed_ = false;
    keys_.clear();
    keys_.shrink_to_fit();
    RebuildGeneric(slots_.size(), order);
  }

  ConfigCodec codec_;
  bool packed_ = false;
  size_t size_ = 0;
  std::vector<int32_t> slots_;  // config id or -1
  std::vector<uint64_t> keys_;  // packed code per occupied slot
};

// Product search over one component. Templated on the state-subset pool:
// SubsetPool for serial searches (one pool per search, lock-free) and
// SharedSubsetPool for shared-frontier parallel searches (one pool shared
// by every lane; each lane owns a ComponentSearchT as its expansion
// context — the per-subset mask caches stay lane-private).
template <typename Pool>
class ComponentSearchT {
 public:
  ComponentSearchT(const ResolvedQuery& rq, const ComponentSpec& comp,
                   const EvalOptions& options, Pool* pool)
      : rq_(rq),
        comp_(comp),
        options_(options),
        pool_(pool),
        index_(rq.index.get()),
        use_masks_(rq.graph->alphabet().size() <= 64) {
    // Per-relation tuple alphabets and local track lists.
    for (int r : comp_.relation_indices) {
      const ResolvedRelation& rel = rq_.relations()[r];
      std::vector<int> local;
      for (int p : rel.paths) local.push_back(comp_.track_of_path[p]);
      rel_local_tracks_.push_back(std::move(local));
      rel_alphabets_.emplace_back(rel.relation->tuple_alphabet());
    }
    subset_masks_.resize(comp_.relation_indices.size());
  }

  // Builds the initial configuration for one start assignment; false when
  // some relation has no initial state (unsatisfiable — no search runs).
  bool MakeInitialConfig(const std::vector<NodeId>& start_nodes,
                         ProductConfig* out) {
    out->padmask = 0;
    out->nodes = start_nodes;
    out->subset_ids.clear();
    for (int r : comp_.relation_indices) {
      const ResolvedRelation& rel = rq_.relations()[r];
      std::vector<StateId> subset = rel.initial;
      std::sort(subset.begin(), subset.end());
      if (subset.empty()) return false;  // relation unsatisfiable
      out->subset_ids.push_back(pool_->Intern(std::move(subset)));
    }
    return true;
  }

  // One configuration step: acceptance (+ end-consistency filtering into
  // `results`) and successor expansion. `emit(ProductConfig&&, letters)`
  // receives every generated successor; the caller owns dedup/queueing.
  // Both the serial BFS (Run) and the shared-frontier lanes drive this.
  template <typename Emit>
  void ProcessConfig(const ProductConfig& current,
                     const std::vector<NodeId>& start_nodes,
                     const std::vector<NodeId>& fixed,
                     std::set<std::vector<NodeId>>* results, bool* accepted,
                     Emit&& emit) {
    *accepted = false;
    if (Accepting(current)) {
      std::vector<NodeId> assignment;
      if (EndConsistent(current, start_nodes, fixed, &assignment)) {
        if (results != nullptr) results->insert(std::move(assignment));
        *accepted = true;
      }
    }
    const int T = static_cast<int>(comp_.tracks.size());
    ComputeLiveMasks(current);
    scratch_letter_.assign(T, kPad);
    scratch_next_nodes_.assign(T, -1);
    auto counted = [&](ProductConfig next,
                       const std::vector<Symbol>& letters) {
      ++arcs_explored_;
      ++frontier_expansions_;
      emit(std::move(next), letters);
    };
    ExpandRec(0, T, current, &scratch_letter_, &scratch_next_nodes_,
              *rq_.graph, counted);
  }

  // Serial BFS from one start-node-per-track assignment; reports
  // satisfying component assignments into `results` and records the
  // product graph into `sink` when non-null. `configs_budget` is the
  // execution-wide popped-configuration counter checked against
  // max_configs; `cancel` (optional) stops the search cooperatively.
  Status Run(const std::vector<NodeId>& start_nodes,
             const std::vector<NodeId>& fixed,
             std::set<std::vector<NodeId>>* results, ProductGraphSink* sink,
             std::atomic<uint64_t>* configs_budget,
             CancellationToken* cancel) {
    const GraphDb& graph = *rq_.graph;
    ProductConfig init;
    if (!MakeInitialConfig(start_nodes, &init)) return Status::OK();

    // The sink may already hold configs from previous start assignments;
    // all sink indices are offset by its current size.
    const int sink_base =
        (sink != nullptr) ? static_cast<int>(sink->configs.size()) : 0;
    VisitedTable visited(static_cast<int>(comp_.tracks.size()),
                         static_cast<int>(comp_.relation_indices.size()),
                         graph.num_nodes());
    std::vector<ProductConfig> order;
    std::queue<int> work;
    auto intern_config = [&](ProductConfig c) -> std::pair<int, bool> {
      auto [id, inserted] = visited.FindOrInsert(std::move(c), order);
      if (inserted) {
        work.push(id);
        ++visited_configs_;
        if (sink != nullptr) {
          sink->configs.push_back(order.back());
          sink->arcs.emplace_back();
          sink->initial.push_back(false);
          sink->accepting.push_back(false);
        }
      }
      return {id, inserted};
    };

    auto [init_id, fresh] = intern_config(std::move(init));
    (void)fresh;
    if (sink != nullptr) sink->initial[sink_base + init_id] = true;

    while (!work.empty()) {
      int config_id = work.front();
      work.pop();
      if (cancel != nullptr && cancel->cancelled()) {
        return Status::Cancelled(kCancelledMessage);
      }
      if (configs_budget->fetch_add(1, std::memory_order_relaxed) + 1 >
          options_.max_configs) {
        return Status::ResourceExhausted(
            "product search exceeded max_configs=" +
            std::to_string(options_.max_configs));
      }
      ProductConfig current = order[config_id];  // copy: order grows below
      bool accepted = false;
      ProcessConfig(current, start_nodes, fixed, results, &accepted,
                    [&](ProductConfig next,
                        const std::vector<Symbol>& letters) {
                      auto [next_id, unused] =
                          intern_config(std::move(next));
                      (void)unused;
                      if (sink != nullptr) {
                        sink->arcs[sink_base + config_id].push_back(
                            {letters, sink_base + next_id});
                      }
                    });
      if (accepted && sink != nullptr) {
        sink->accepting[sink_base + config_id] = true;
      }
    }
    return Status::OK();
  }

  const ComponentSpec& component() const { return comp_; }
  uint64_t visited_configs() const { return visited_configs_; }
  uint64_t frontier_expansions() const { return frontier_expansions_; }
  uint64_t arcs_explored() const { return arcs_explored_; }

 private:
  bool Accepting(const ProductConfig& c) const {
    for (size_t i = 0; i < comp_.relation_indices.size(); ++i) {
      const ResolvedRelation& rel =
          rq_.relations()[comp_.relation_indices[i]];
      bool ok = false;
      auto&& subset = pool_->Get(c.subset_ids[i]);
      for (StateId s : subset) {
        if (rel.accepting[s]) {
          ok = true;
          break;
        }
      }
      if (!ok) return false;
    }
    return true;
  }

  // Checks end-node constraints; produces the component assignment
  // (parallel to comp_.vars) on success.
  bool EndConsistent(const ProductConfig& c,
                     const std::vector<NodeId>& start_nodes,
                     const std::vector<NodeId>& fixed,
                     std::vector<NodeId>* assignment) const {
    std::vector<NodeId> binding(rq_.query->node_variables().size(), -1);
    // Seed with fixed bindings and start assignments.
    for (size_t v = 0; v < fixed.size(); ++v) binding[v] = fixed[v];
    for (int idx : comp_.atom_indices) {
      const ResolvedAtom& atom = rq_.atoms[idx];
      int track = comp_.track_of_path[atom.path];
      NodeId start = start_nodes[track];
      NodeId end = c.nodes[track];
      // From-term: already consistent by construction of start_nodes, but
      // fixed vars must agree too.
      if (atom.from.is_const) {
        if (atom.from.node != start) return false;
      } else {
        if (binding[atom.from.var] >= 0 && binding[atom.from.var] != start) {
          return false;
        }
        binding[atom.from.var] = start;
      }
      if (atom.to.is_const) {
        if (atom.to.node != end) return false;
      } else {
        if (binding[atom.to.var] >= 0 && binding[atom.to.var] != end) {
          return false;
        }
        binding[atom.to.var] = end;
      }
    }
    assignment->clear();
    for (int v : comp_.vars) assignment->push_back(binding[v]);
    return true;
  }

  // Per-tape letter masks of one relation's current subset, OR of the
  // compiled per-state tape_masks; cached per interned subset id. The
  // cache is lane-private even when the pool is shared (ids are global,
  // mask values are a pure function of the id, so lanes agree).
  const std::vector<uint64_t>& SubsetMasks(size_t i, int subset_id) {
    auto& cache = subset_masks_[i];
    if (subset_id >= static_cast<int>(cache.size())) {
      cache.resize(subset_id + 1);
    }
    std::vector<uint64_t>& entry = cache[subset_id];
    if (entry.empty()) {
      const ResolvedRelation& rel =
          rq_.relations()[comp_.relation_indices[i]];
      entry.assign(rel_local_tracks_[i].size(), 0);
      auto&& subset = pool_->Get(subset_id);
      for (StateId s : subset) {
        for (size_t tape = 0; tape < entry.size(); ++tape) {
          entry[tape] |= rel.tape_masks[s][tape];
        }
      }
    }
    return entry;
  }

  // live_[t]: base letters track t may read without killing a relation —
  // the intersection, over relations reading t, of the letters their
  // current state-sets accept on that tape (Thm 6.1's restriction).
  void ComputeLiveMasks(const ProductConfig& current) {
    live_.assign(comp_.tracks.size(), ~0ULL);
    if (index_ == nullptr || !use_masks_) return;
    for (size_t i = 0; i < comp_.relation_indices.size(); ++i) {
      const std::vector<uint64_t>& masks =
          SubsetMasks(i, current.subset_ids[i]);
      const std::vector<int>& local = rel_local_tracks_[i];
      for (size_t tape = 0; tape < local.size(); ++tape) {
        live_[local[tape]] &= masks[tape];
      }
    }
  }

  template <typename Callback>
  void ExpandRec(int t, int total, const ProductConfig& current,
                 std::vector<Symbol>* letter, std::vector<NodeId>* next_nodes,
                 const GraphDb& graph, const Callback& emit) {
    if (t == total) {
      uint32_t new_padmask = 0;
      bool all_pad = true;
      for (int i = 0; i < total; ++i) {
        if ((*letter)[i] == kPad) {
          new_padmask |= (1u << i);
        } else {
          all_pad = false;
        }
      }
      if (all_pad) return;
      // Advance relations on their projected letters.
      ProductConfig next;
      next.padmask = new_padmask;
      next.nodes = *next_nodes;
      next.subset_ids.resize(comp_.relation_indices.size());
      for (size_t i = 0; i < comp_.relation_indices.size(); ++i) {
        const ResolvedRelation& rel =
            rq_.relations()[comp_.relation_indices[i]];
        const std::vector<int>& local = rel_local_tracks_[i];
        TupleLetter proj(local.size());
        bool rel_all_pad = true;
        for (size_t tape = 0; tape < local.size(); ++tape) {
          proj[tape] = (*letter)[local[tape]];
          if (proj[tape] != kPad) rel_all_pad = false;
        }
        if (rel_all_pad) {
          // The relation's word has ended; its subset is frozen.
          next.subset_ids[i] = current.subset_ids[i];
          continue;
        }
        Symbol id = rel_alphabets_[i].Encode(proj);
        std::vector<StateId> advanced;
        {
          auto&& subset = pool_->Get(current.subset_ids[i]);
          for (StateId s : subset) {
            auto it = rel.transitions[s].find(id);
            if (it != rel.transitions[s].end()) {
              advanced.insert(advanced.end(), it->second.begin(),
                              it->second.end());
            }
          }
        }
        if (advanced.empty()) return;  // prune
        std::sort(advanced.begin(), advanced.end());
        advanced.erase(std::unique(advanced.begin(), advanced.end()),
                       advanced.end());
        next.subset_ids[i] = pool_->Intern(std::move(advanced));
      }
      emit(std::move(next), *letter);
      return;
    }
    // Option 1: pad (always allowed; forced when already padded).
    (*letter)[t] = kPad;
    (*next_nodes)[t] = current.nodes[t];
    ExpandRec(t + 1, total, current, letter, next_nodes, graph, emit);
    // Option 2: follow an edge (only when not padded).
    if (!(current.padmask & (1u << t))) {
      const NodeId v = current.nodes[t];
      if (index_ != nullptr && use_masks_) {
        // Indexed path: visit only the letters live for this track and
        // present at the node (one AND against the node's label mask).
        // Small adjacency rows are filtered linearly (a binary search per
        // label costs more than reading a handful of edges); large rows
        // jump straight to the per-label slices.
        const uint64_t mask = live_[t] & index_->OutLabelMask(v);
        if (mask == 0) {
          // No live letter at this node: the track can only pad.
        } else if (index_->out_degree(v) <= 16) {
          std::span<const Symbol> labels = index_->OutLabels(v);
          std::span<const NodeId> targets = index_->OutTargets(v);
          for (size_t i = 0; i < labels.size(); ++i) {
            if (((mask >> std::min<Symbol>(labels[i], 63)) & 1) == 0) {
              continue;
            }
            (*letter)[t] = labels[i];
            (*next_nodes)[t] = targets[i];
            ExpandRec(t + 1, total, current, letter, next_nodes, graph,
                      emit);
          }
        } else {
          uint64_t bits = mask;
          while (bits != 0) {
            Symbol label = static_cast<Symbol>(std::countr_zero(bits));
            bits &= bits - 1;
            for (NodeId to : index_->Out(v, label)) {
              (*letter)[t] = label;
              (*next_nodes)[t] = to;
              ExpandRec(t + 1, total, current, letter, next_nodes, graph,
                        emit);
            }
          }
        }
      } else if (index_ != nullptr) {
        std::span<const Symbol> labels = index_->OutLabels(v);
        std::span<const NodeId> targets = index_->OutTargets(v);
        for (size_t i = 0; i < labels.size(); ++i) {
          (*letter)[t] = labels[i];
          (*next_nodes)[t] = targets[i];
          ExpandRec(t + 1, total, current, letter, next_nodes, graph, emit);
        }
      } else {
        for (const auto& [label, to] : graph.Out(v)) {
          (*letter)[t] = label;
          (*next_nodes)[t] = to;
          ExpandRec(t + 1, total, current, letter, next_nodes, graph, emit);
        }
      }
    }
  }

  const ResolvedQuery& rq_;
  const ComponentSpec& comp_;
  const EvalOptions& options_;
  Pool* pool_;
  const GraphIndex* index_;  // null = scan GraphDb adjacency (legacy path)
  bool use_masks_;           // base alphabet fits the 64-bit letter masks
  std::vector<std::vector<int>> rel_local_tracks_;
  std::vector<TupleAlphabet> rel_alphabets_;
  // Per component relation: per-tape letter masks keyed by subset id.
  std::vector<std::vector<std::vector<uint64_t>>> subset_masks_;
  std::vector<uint64_t> live_;  // per-track live letters, per expansion
  // Per-expansion scratch (hoisted out of the per-config hot loop).
  std::vector<Symbol> scratch_letter_;
  std::vector<NodeId> scratch_next_nodes_;
  uint64_t visited_configs_ = 0;
  uint64_t frontier_expansions_ = 0;
  uint64_t arcs_explored_ = 0;
};

using ComponentSearch = ComponentSearchT<SubsetPool>;

// Derives one start node per track from `binding`; false when repeated
// tracks have disagreeing from-terms (no search needed).
bool DeriveStartNodes(const ResolvedQuery& rq, const ComponentSpec& comp,
                      const std::vector<NodeId>& binding,
                      std::vector<NodeId>* start_nodes) {
  start_nodes->assign(comp.tracks.size(), -1);
  for (int idx : comp.atom_indices) {
    const ResolvedAtom& atom = rq.atoms[idx];
    int track = comp.track_of_path[atom.path];
    NodeId v = atom.from.is_const ? atom.from.node : binding[atom.from.var];
    if ((*start_nodes)[track] < 0) {
      (*start_nodes)[track] = v;
    } else if ((*start_nodes)[track] != v) {
      return false;  // inconsistent repetition start
    }
  }
  return true;
}

// Enumerates start assignments (respecting the bound vars of `fixed`) and
// runs one serial product BFS per assignment — the ProductExpand body for
// one overlay of fixed bindings. `start_assignments` counts enumerated
// assignments (merged into EvalStats at the operator barrier).
Status EnumerateAndRun(const ResolvedQuery& rq, ComponentSearch& search,
                       const std::vector<NodeId>& fixed,
                       uint64_t* start_assignments,
                       std::set<std::vector<NodeId>>* results,
                       ProductGraphSink* sink,
                       std::atomic<uint64_t>* configs_budget,
                       CancellationToken* cancel) {
  const ComponentSpec& comp = search.component();
  const GraphDb& graph = *rq.graph;

  std::vector<NodeId> binding(rq.query->node_variables().size(), -1);
  for (size_t v = 0; v < fixed.size(); ++v) binding[v] = fixed[v];

  const std::vector<int>& start_vars = comp.start_vars;

  std::function<Status(size_t)> enumerate = [&](size_t i) -> Status {
    if (cancel != nullptr && cancel->cancelled()) {
      return Status::Cancelled(kCancelledMessage);
    }
    if (i == start_vars.size()) {
      std::vector<NodeId> start_nodes;
      if (!DeriveStartNodes(rq, comp, binding, &start_nodes)) {
        return Status::OK();
      }
      ++*start_assignments;
      return search.Run(start_nodes, binding, results, sink, configs_budget,
                        cancel);
    }
    int var = start_vars[i];
    if (binding[var] >= 0) return enumerate(i + 1);
    // Seed from high-degree nodes first (GraphIndex permutation): under
    // early termination the densest frontiers reach answers soonest. The
    // answer set is order-independent (results is a set).
    if (rq.index != nullptr) {
      for (NodeId v : rq.index->NodesByDegree()) {
        binding[var] = v;
        Status st = enumerate(i + 1);
        if (!st.ok()) return st;
      }
    } else {
      for (NodeId v = 0; v < graph.num_nodes(); ++v) {
        binding[var] = v;
        Status st = enumerate(i + 1);
        if (!st.ok()) return st;
      }
    }
    binding[var] = -1;
    return Status::OK();
  };
  return enumerate(0);
}

// Prefers hard errors over the Cancelled echoes other lanes report after
// one of them tripped the shared token.
Status CombineLaneStatuses(const std::vector<Status>& statuses) {
  for (const Status& s : statuses) {
    if (!s.ok() && s.code() != StatusCode::kCancelled) return s;
  }
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

// Per-lane state of the morsel-driven ProductExpand drivers.
struct ExpandLane {
  std::unique_ptr<SubsetPool> pool;
  std::unique_ptr<ComponentSearch> search;
  std::set<std::vector<NodeId>> results;
  uint64_t start_assignments = 0;
  Status status;

  ComponentSearch& Search(const ResolvedQuery& rq, const ComponentSpec& comp,
                          const EvalOptions& options) {
    if (search == nullptr) {
      pool = std::make_unique<SubsetPool>();
      search = std::make_unique<ComponentSearch>(rq, comp, options,
                                                 pool.get());
    }
    return *search;
  }
};

// Barrier-point merge of the morsel drivers: lane results fold into the
// global set in canonical lane order, counters sum into the operator
// entry, and the first hard lane error (or a Cancelled echo) wins. Lanes
// that merely OBSERVED the tripped token exit without recording a
// status, so an externally killed run whose lanes all bailed that way
// still reports Cancelled instead of an empty success.
Status MergeExpandLanes(std::vector<ExpandLane>& lanes,
                        const CancellationToken* cancel, EvalStats& stats,
                        OperatorStats& op,
                        std::set<std::vector<NodeId>>* results) {
  std::vector<Status> statuses;
  for (ExpandLane& lane : lanes) {
    statuses.push_back(lane.status);
    stats.start_assignments += lane.start_assignments;
    if (lane.search != nullptr) {
      op.visited_configs += lane.search->visited_configs();
      op.frontier_expansions += lane.search->frontier_expansions();
      stats.arcs_explored += lane.search->arcs_explored();
    }
    if (results != nullptr) {
      results->insert(lane.results.begin(), lane.results.end());
    }
  }
  Status combined = CombineLaneStatuses(statuses);
  if (combined.ok() && cancel != nullptr && cancel->cancelled()) {
    return Status::Cancelled(kCancelledMessage);
  }
  return combined;
}

// Applies one seed row on top of `fixed`; false when they disagree.
bool OverlaySeedRow(const BindingTable& seeds, size_t row,
                    std::vector<NodeId>* overlay) {
  for (size_t i = 0; i < seeds.vars.size(); ++i) {
    int var = seeds.vars[i];
    NodeId v = seeds.rows[row][i];
    if ((*overlay)[var] >= 0 && (*overlay)[var] != v) return false;
    (*overlay)[var] = v;
  }
  return true;
}

// Morsel-parallel ProductExpand over seed rows: lanes claim row morsels
// and run one serial seeded search per row (each lane reuses one search —
// warm subset pools and mask caches across its rows).
Status MorselSeedRowsExpand(const ResolvedQuery& rq,
                            const ComponentSpec& comp,
                            const EvalOptions& options, int num_lanes,
                            const std::vector<NodeId>& fixed,
                            const BindingTable& seeds,
                            std::atomic<uint64_t>* configs_budget,
                            CancellationToken* cancel, EvalStats& stats,
                            OperatorStats& op,
                            std::set<std::vector<NodeId>>* results) {
  std::vector<ExpandLane> lanes(num_lanes);
  std::atomic<bool> failed{false};
  const size_t grain =
      std::max<size_t>(1, seeds.rows.size() / (num_lanes * 8));
  ParallelMorsels(num_lanes, seeds.rows.size(), grain,
                  [&](size_t begin, size_t end, int lane_id) {
                    ExpandLane& lane = lanes[lane_id];
                    ComponentSearch& search = lane.Search(rq, comp, options);
                    std::vector<NodeId> overlay;
                    for (size_t r = begin; r < end; ++r) {
                      if (failed.load(std::memory_order_relaxed) ||
                          cancel->cancelled()) {
                        return;
                      }
                      overlay = fixed;
                      if (!OverlaySeedRow(seeds, r, &overlay)) continue;
                      Status st = EnumerateAndRun(
                          rq, search, overlay, &lane.start_assignments,
                          &lane.results, nullptr, configs_budget, cancel);
                      if (!st.ok()) {
                        lane.status = st;
                        failed.store(true, std::memory_order_relaxed);
                        cancel->Cancel();
                        return;
                      }
                    }
                  });
  return MergeExpandLanes(lanes, cancel, stats, op, results);
}

// Morsel-parallel ProductExpand over the first unbound start variable:
// the degree-ordered node list is split into morsels, and each lane pins
// the variable to its claimed nodes, serially enumerating any remaining
// start variables per pin.
Status MorselStartNodesExpand(const ResolvedQuery& rq,
                              const ComponentSpec& comp,
                              const EvalOptions& options, int num_lanes,
                              const std::vector<NodeId>& overlay, int var,
                              std::atomic<uint64_t>* configs_budget,
                              CancellationToken* cancel, EvalStats& stats,
                              OperatorStats& op,
                              std::set<std::vector<NodeId>>* results) {
  std::vector<NodeId> order;
  if (rq.index != nullptr) {
    order = rq.index->NodesByDegree();
  } else {
    order.resize(rq.graph->num_nodes());
    std::iota(order.begin(), order.end(), 0);
  }
  std::vector<ExpandLane> lanes(num_lanes);
  std::atomic<bool> failed{false};
  const size_t grain = std::max<size_t>(1, order.size() / (num_lanes * 8));
  ParallelMorsels(num_lanes, order.size(), grain,
                  [&](size_t begin, size_t end, int lane_id) {
                    ExpandLane& lane = lanes[lane_id];
                    ComponentSearch& search = lane.Search(rq, comp, options);
                    std::vector<NodeId> pinned;
                    for (size_t i = begin; i < end; ++i) {
                      if (failed.load(std::memory_order_relaxed) ||
                          cancel->cancelled()) {
                        return;
                      }
                      pinned = overlay;
                      pinned[var] = order[i];
                      Status st = EnumerateAndRun(
                          rq, search, pinned, &lane.start_assignments,
                          &lane.results, nullptr, configs_budget, cancel);
                      if (!st.ok()) {
                        lane.status = st;
                        failed.store(true, std::memory_order_relaxed);
                        cancel->Cancel();
                        return;
                      }
                    }
                  });
  return MergeExpandLanes(lanes, cancel, stats, op, results);
}

// Shared-frontier parallel expansion of ONE fully anchored product
// search: every lane pops config batches off a shared frontier queue,
// expands them through its private ComponentSearchT context, and inserts
// successors into the sharded visited table (striped per-shard locks);
// only the inserting lane enqueues a config, so each configuration is
// processed exactly once. Termination: empty queue + no lane mid-batch.
Status SharedFrontierExpand(const ResolvedQuery& rq,
                            const ComponentSpec& comp,
                            const EvalOptions& options, int num_lanes,
                            const std::vector<NodeId>& start_nodes,
                            const std::vector<NodeId>& fixed,
                            std::atomic<uint64_t>* configs_budget,
                            CancellationToken* cancel, EvalStats& stats,
                            OperatorStats& op,
                            std::set<std::vector<NodeId>>* results) {
  SharedSubsetPool pool;
  ComponentSearchT<SharedSubsetPool> init_ctx(rq, comp, options, &pool);
  ProductConfig init;
  if (!init_ctx.MakeInitialConfig(start_nodes, &init)) return Status::OK();

  ConfigCodec codec(static_cast<int>(comp.tracks.size()),
                    static_cast<int>(comp.relation_indices.size()),
                    rq.graph->num_nodes());
  ShardedVisitedTable visited(codec, num_lanes * 4);
  FrontierQueue frontier;
  visited.Insert(init);
  {
    std::vector<ProductConfig> seed;
    seed.push_back(std::move(init));
    frontier.PushBatch(std::move(seed), /*last_batch_done=*/false);
  }
  ++stats.start_assignments;

  struct FrontierLane {
    std::set<std::vector<NodeId>> results;
    uint64_t frontier_expansions = 0;
    uint64_t arcs_explored = 0;
    Status status;
  };
  std::vector<FrontierLane> lanes(num_lanes);
  std::mutex shared_results_mutex;  // !deterministic completion-order fold
  constexpr size_t kBatch = 16;

  ThreadPool::Shared().RunOnWorkers(num_lanes, [&](int lane_id) {
    FrontierLane& lane = lanes[lane_id];
    ComponentSearchT<SharedSubsetPool> ctx(rq, comp, options, &pool);
    std::vector<ProductConfig> batch;
    std::vector<ProductConfig> outbox;
    std::set<std::vector<NodeId>>* lane_results =
        options.deterministic ? &lane.results : nullptr;
    std::set<std::vector<NodeId>> scratch;  // completion-order mode
    while (frontier.PopBatch(kBatch, &batch)) {
      outbox.clear();
      bool abort = false;
      for (const ProductConfig& config : batch) {
        if (cancel->cancelled()) {
          lane.status = Status::Cancelled(kCancelledMessage);
          abort = true;
          break;
        }
        if (configs_budget->fetch_add(1, std::memory_order_relaxed) + 1 >
            options.max_configs) {
          lane.status = Status::ResourceExhausted(
              "product search exceeded max_configs=" +
              std::to_string(options.max_configs));
          cancel->Cancel();
          abort = true;
          break;
        }
        bool accepted = false;
        ctx.ProcessConfig(
            config, start_nodes, fixed,
            lane_results != nullptr ? lane_results : &scratch, &accepted,
            [&](ProductConfig next, const std::vector<Symbol>& letters) {
              (void)letters;
              if (visited.Insert(next)) outbox.push_back(std::move(next));
            });
        (void)accepted;
        if (lane_results == nullptr && !scratch.empty()) {
          std::lock_guard<std::mutex> lock(shared_results_mutex);
          if (results != nullptr) {
            results->insert(scratch.begin(), scratch.end());
          }
          scratch.clear();
        }
      }
      if (abort) {
        frontier.Abort();
        frontier.PushBatch({}, /*last_batch_done=*/true);
        break;
      }
      frontier.PushBatch(std::move(outbox), /*last_batch_done=*/true);
    }
    lane.frontier_expansions = ctx.frontier_expansions();
    lane.arcs_explored = ctx.arcs_explored();
  });

  std::vector<Status> statuses;
  for (FrontierLane& lane : lanes) {
    statuses.push_back(lane.status);
    op.frontier_expansions += lane.frontier_expansions;
    stats.arcs_explored += lane.arcs_explored;
    if (options.deterministic && results != nullptr) {
      results->insert(lane.results.begin(), lane.results.end());
    }
  }
  op.visited_configs += visited.size();
  return CombineLaneStatuses(statuses);
}

// ReachabilityScan leaf: single path atom, all-unary languages. One
// intersected-NFA BFS per source (restricted to seeded sources when
// available) instead of the subset-tracking product search; the per-source
// BFSes run morsel-parallel on `num_threads` lanes.
Status ScanComponentOp(const ResolvedQuery& rq, const ComponentSpec& comp,
                       const EvalOptions& options,
                       const std::vector<NodeId>& fixed,
                       const BindingTable* seeds, int num_threads,
                       CancellationToken* cancel, EvalStats& stats,
                       OperatorStats& op,
                       std::set<std::vector<NodeId>>* results) {
  const ResolvedAtom& atom = rq.atoms[comp.atom_indices[0]];
  std::vector<const RegularRelation*> languages;
  for (int r : comp.relation_indices) {
    languages.push_back(rq.relations()[r].relation);
  }

  // Source restriction: constant > fixed > seeded column > all nodes.
  auto bound_of = [&](const ResolvedTerm& term) -> NodeId {
    if (term.is_const) return term.node;
    return fixed[term.var];
  };
  NodeId from_bound = bound_of(atom.from);

  std::vector<NodeId> sources;
  const std::vector<NodeId>* source_ptr = nullptr;
  int seed_from_col =
      (seeds != nullptr && !atom.from.is_const && fixed[atom.from.var] < 0)
          ? seeds->ColumnOf(atom.from.var)
          : -1;
  if (from_bound >= 0) {
    sources.push_back(from_bound);
    source_ptr = &sources;
  } else if (seed_from_col >= 0) {
    std::set<NodeId> distinct;
    for (const std::vector<NodeId>& row : seeds->rows) {
      distinct.insert(row[seed_from_col]);
    }
    sources.assign(distinct.begin(), distinct.end());
    source_ptr = &sources;
  }

  ReachabilityScanStats scan_stats;
  std::vector<std::pair<NodeId, NodeId>> pairs = ReachabilityPairs(
      *rq.graph, languages, rq.index.get(), source_ptr, &scan_stats,
      num_threads, cancel, options.deterministic);
  if (cancel != nullptr && cancel->cancelled()) {
    return Status::Cancelled(kCancelledMessage);
  }
  op.frontier_expansions += scan_stats.frontier_expansions;
  op.visited_configs += scan_stats.visited_states;
  stats.arcs_explored += scan_stats.frontier_expansions;
  stats.start_assignments +=
      source_ptr != nullptr ? sources.size() : rq.graph->num_nodes();
  // Charge visited (language state, node) pairs to the product budget —
  // the same states a product search over this component would have
  // interned — so the ReachabilityScan routing preserves the caller's
  // max_configs resource guard. (The scan itself is polynomial, so the
  // check after the fact bounds the query, not an explosion.)
  stats.configs_explored += scan_stats.visited_states;
  if (stats.configs_explored > options.max_configs) {
    return Status::ResourceExhausted(
        "product search exceeded max_configs=" +
        std::to_string(options.max_configs));
  }

  // Seed-row compatibility set (projection of seed rows onto comp.vars).
  std::set<std::vector<NodeId>> seed_set;
  std::vector<int> seed_cols;
  if (seeds != nullptr) {
    for (int v : seeds->vars) seed_cols.push_back(v);
    for (const std::vector<NodeId>& row : seeds->rows) seed_set.insert(row);
  }

  for (const auto& [u, v] : pairs) {
    if (atom.from.is_const && u != atom.from.node) continue;
    if (atom.to.is_const && v != atom.to.node) continue;
    std::vector<NodeId> binding(rq.query->node_variables().size(), -1);
    for (size_t i = 0; i < fixed.size(); ++i) binding[i] = fixed[i];
    bool ok = true;
    if (!atom.from.is_const) {
      if (binding[atom.from.var] >= 0 && binding[atom.from.var] != u) {
        ok = false;
      }
      binding[atom.from.var] = u;
    }
    if (ok && !atom.to.is_const) {
      if (binding[atom.to.var] >= 0 && binding[atom.to.var] != v) ok = false;
      if (ok) binding[atom.to.var] = v;
    }
    if (!ok) continue;
    std::vector<NodeId> assignment;
    for (int var : comp.vars) assignment.push_back(binding[var]);
    if (seeds != nullptr) {
      std::vector<NodeId> key;
      for (int var : seed_cols) key.push_back(binding[var]);
      if (seed_set.find(key) == seed_set.end()) continue;
    }
    results->insert(std::move(assignment));
  }
  return Status::OK();
}

std::string ComponentDetail(const ComponentSpec& comp) {
  std::string detail = "atoms";
  for (int idx : comp.atom_indices) detail += " " + std::to_string(idx);
  return detail;
}

}  // namespace

Status ExecuteComponentOp(const ResolvedQuery& rq, const ComponentSpec& comp,
                          const EvalOptions& options,
                          const std::vector<NodeId>& fixed,
                          const BindingTable* seeds, double est_rows,
                          int num_threads, EvalStats& stats,
                          std::set<std::vector<NodeId>>* results,
                          ProductGraphSink* graph_sink) {
  OperatorStats op;
  op.detail = ComponentDetail(comp);
  op.est_rows = est_rows;
  op.rows_in = (seeds != nullptr) ? seeds->rows.size() : 0;
  const size_t before = (results != nullptr) ? results->size() : 0;

  // Graph recording is single-consumer (the sink indexes a global
  // discovery array), so it pins the serial path.
  int lanes = std::max(num_threads, 1);
  if (graph_sink != nullptr) lanes = 1;

  // One cancellation token per operator run: the caller's (so external
  // kills and sink early-termination fan out to every lane), or a local
  // one so lane errors still cancel their siblings.
  CancellationToken local_cancel;
  CancellationToken* cancel = options.cancellation.get();
  if (cancel == nullptr && lanes > 1) cancel = &local_cancel;

  // The execution-wide popped-configuration budget: seeded from the
  // stats accumulated so far (scans charge it too), written back after.
  std::atomic<uint64_t> configs_budget{stats.configs_explored};

  Status status;
  if (results != nullptr && graph_sink == nullptr &&
      IsReachabilityScanComponent(rq, comp)) {
    op.op = "ReachabilityScan";
    op.threads = lanes;
    status = ScanComponentOp(rq, comp, options, fixed, seeds, lanes, cancel,
                             stats, op, results);
  } else {
    op.op = "ProductExpand";
    const bool seeded = seeds != nullptr && !seeds->vars.empty();
    if (lanes <= 1) {
      // Exact legacy single-threaded path.
      op.threads = 1;
      SubsetPool pool;
      ComponentSearch search(rq, comp, options, &pool);
      uint64_t start_assignments = 0;
      if (seeded) {
        // Sideways information passing: one seeded expansion per row.
        std::vector<NodeId> overlay;
        for (size_t r = 0; r < seeds->rows.size(); ++r) {
          overlay = fixed;
          if (!OverlaySeedRow(*seeds, r, &overlay)) continue;
          status = EnumerateAndRun(rq, search, overlay, &start_assignments,
                                   results, graph_sink, &configs_budget,
                                   cancel);
          if (!status.ok()) break;
        }
      } else {
        status = EnumerateAndRun(rq, search, fixed, &start_assignments,
                                 results, graph_sink, &configs_budget,
                                 cancel);
      }
      stats.start_assignments += start_assignments;
      stats.arcs_explored += search.arcs_explored();
      op.visited_configs = search.visited_configs();
      op.frontier_expansions = search.frontier_expansions();
    } else if (seeded && seeds->rows.size() >= 2) {
      op.threads = lanes;
      status = MorselSeedRowsExpand(rq, comp, options, lanes, fixed, *seeds,
                                    &configs_budget, cancel, stats, op,
                                    results);
    } else {
      // Single overlay: `fixed`, or `fixed` plus the lone seed row.
      std::vector<NodeId> overlay = fixed;
      bool feasible = true;
      if (seeded) {
        feasible = !seeds->rows.empty() &&
                   OverlaySeedRow(*seeds, 0, &overlay);
      }
      if (feasible) {
        int first_unbound = -1;
        for (int v : comp.start_vars) {
          if (overlay[v] < 0) {
            first_unbound = v;
            break;
          }
        }
        if (first_unbound >= 0) {
          op.threads = lanes;
          status = MorselStartNodesExpand(rq, comp, options, lanes, overlay,
                                          first_unbound, &configs_budget,
                                          cancel, stats, op, results);
        } else {
          // Every start variable anchored: ONE product search, expanded
          // cooperatively against the sharded visited table.
          std::vector<NodeId> start_nodes;
          if (DeriveStartNodes(rq, comp, overlay, &start_nodes)) {
            op.threads = lanes;
            status = SharedFrontierExpand(rq, comp, options, lanes,
                                          start_nodes, overlay,
                                          &configs_budget, cancel, stats,
                                          op, results);
          }
        }
      }
    }
  }

  stats.configs_explored =
      std::max(stats.configs_explored,
               configs_budget.load(std::memory_order_relaxed));
  op.rows_out = (results != nullptr) ? results->size() - before : 0;
  if (graph_sink != nullptr) op.rows_out = graph_sink->configs.size();
  stats.operators.push_back(std::move(op));
  return status;
}

namespace {

// FNV-1a over a row's key columns (partitioned joins).
uint64_t HashKey(const std::vector<NodeId>& key) {
  uint64_t h = 1469598103934665603ULL;
  for (NodeId v : key) {
    h ^= static_cast<uint32_t>(v);
    h *= 1099511628211ULL;
  }
  return h;
}

// Rows below this skip the parallel join paths (partitioning overhead
// would dominate).
constexpr size_t kParallelJoinRows = 4096;

}  // namespace

BindingTable HashJoinOp(const BindingTable& left, const BindingTable& right,
                        EvalStats& stats, int num_threads) {
  OperatorStats op;
  op.op = "HashJoin";
  op.rows_in = left.rows.size() + right.rows.size();

  // Shared variables and output layout: left columns, then right's
  // non-shared columns.
  std::vector<std::pair<int, int>> shared;  // (left col, right col)
  std::vector<int> right_extra;             // right cols not shared
  for (size_t rc = 0; rc < right.vars.size(); ++rc) {
    int lc = left.ColumnOf(right.vars[rc]);
    if (lc >= 0) {
      shared.emplace_back(lc, static_cast<int>(rc));
    } else {
      right_extra.push_back(static_cast<int>(rc));
    }
  }
  for (const auto& [lc, rc] : shared) {
    op.detail += (op.detail.empty() ? "on" : ",");
    (void)lc;
    op.detail += " v" + std::to_string(right.vars[rc]);
  }
  if (shared.empty()) op.detail = "cross";

  BindingTable out;
  out.vars = left.vars;
  for (int rc : right_extra) out.vars.push_back(right.vars[rc]);

  auto right_key = [&](size_t r) {
    std::vector<NodeId> key;
    key.reserve(shared.size());
    for (const auto& [lc, rc] : shared) {
      (void)lc;
      key.push_back(right.rows[r][rc]);
    }
    return key;
  };
  auto left_key = [&](const std::vector<NodeId>& lrow) {
    std::vector<NodeId> key;
    key.reserve(shared.size());
    for (const auto& [lc, rc] : shared) {
      (void)rc;
      key.push_back(lrow[lc]);
    }
    return key;
  };
  auto emit_row = [&](const std::vector<NodeId>& lrow, size_t r,
                      std::vector<std::vector<NodeId>>* rows) {
    std::vector<NodeId> row = lrow;
    for (int rc : right_extra) row.push_back(right.rows[r][rc]);
    rows->push_back(std::move(row));
  };

  const int lanes = std::max(num_threads, 1);
  if (lanes > 1 && left.rows.size() + right.rows.size() >= kParallelJoinRows) {
    op.threads = lanes;
    // Partitioned build: lanes claim morsels of the right rows and bucket
    // (row id) pairs per key-hash partition; a second morsel pass builds
    // each partition's hash table independently. Row ids are sorted per
    // partition so per-key probe order matches the serial build.
    const size_t P = std::bit_ceil(static_cast<size_t>(lanes) * 4);
    std::vector<std::vector<std::vector<int>>> lane_buckets(
        lanes, std::vector<std::vector<int>>(P));
    ParallelMorsels(lanes, right.rows.size(), 2048,
                    [&](size_t begin, size_t end, int lane_id) {
                      auto& buckets = lane_buckets[lane_id];
                      for (size_t r = begin; r < end; ++r) {
                        const uint64_t h =
                            MixHash64(HashKey(right_key(r)));
                        buckets[h & (P - 1)].push_back(
                            static_cast<int>(r));
                      }
                    });
    std::vector<std::unordered_map<uint64_t, std::vector<int>>> partitions(
        P);
    ParallelMorsels(lanes, P, 1, [&](size_t begin, size_t end, int lane_id) {
      (void)lane_id;
      for (size_t p = begin; p < end; ++p) {
        std::vector<int> ids;
        for (int l = 0; l < lanes; ++l) {
          ids.insert(ids.end(), lane_buckets[l][p].begin(),
                     lane_buckets[l][p].end());
        }
        std::sort(ids.begin(), ids.end());
        for (int r : ids) {
          partitions[p][MixHash64(HashKey(right_key(r)))].push_back(r);
        }
      }
    });

    // Morsel-wise probe into per-morsel output slots, concatenated in
    // morsel order — identical row order to the serial probe. Hash
    // collisions across distinct keys are resolved by re-checking the
    // key columns.
    const size_t grain = 1024;
    const size_t num_morsels = (left.rows.size() + grain - 1) / grain;
    std::vector<std::vector<std::vector<NodeId>>> slots(num_morsels);
    std::atomic<uint64_t> join_tuples{0};
    ParallelMorsels(
        lanes, left.rows.size(), grain,
        [&](size_t begin, size_t end, int lane_id) {
          (void)lane_id;
          std::vector<std::vector<NodeId>>& slot = slots[begin / grain];
          for (size_t i = begin; i < end; ++i) {
            const std::vector<NodeId>& lrow = left.rows[i];
            std::vector<NodeId> key = left_key(lrow);
            const uint64_t h = MixHash64(HashKey(key));
            auto it = partitions[h & (P - 1)].find(h);
            if (it == partitions[h & (P - 1)].end()) continue;
            for (int r : it->second) {
              if (right_key(r) != key) continue;
              join_tuples.fetch_add(1, std::memory_order_relaxed);
              emit_row(lrow, r, &slot);
            }
          }
        });
    for (std::vector<std::vector<NodeId>>& slot : slots) {
      for (std::vector<NodeId>& row : slot) {
        out.rows.push_back(std::move(row));
      }
    }
    stats.join_tuples += join_tuples.load(std::memory_order_relaxed);
  } else {
    // Build on the right, keyed by the shared columns; probe with the
    // left.
    std::map<std::vector<NodeId>, std::vector<int>> build;
    for (size_t r = 0; r < right.rows.size(); ++r) {
      build[right_key(r)].push_back(static_cast<int>(r));
    }
    // Output rows are distinct by construction: both inputs hold distinct
    // rows, and an output is its left row (prefix) plus the right row's
    // non-key columns — two equal outputs would need two equal right
    // rows.
    for (const std::vector<NodeId>& lrow : left.rows) {
      auto it = build.find(left_key(lrow));
      if (it == build.end()) continue;
      for (int r : it->second) {
        ++stats.join_tuples;
        emit_row(lrow, r, &out.rows);
      }
    }
  }

  op.rows_out = out.rows.size();
  stats.operators.push_back(std::move(op));
  return out;
}

bool SemiJoinFilterOp(BindingTable* target, const BindingTable& filter,
                      EvalStats& stats, int num_threads) {
  std::vector<std::pair<int, int>> shared;  // (target col, filter col)
  for (size_t fc = 0; fc < filter.vars.size(); ++fc) {
    int tc = target->ColumnOf(filter.vars[fc]);
    if (tc >= 0) shared.emplace_back(tc, static_cast<int>(fc));
  }
  if (shared.empty()) return false;

  OperatorStats op;
  op.op = "SemiJoinFilter";
  op.rows_in = target->rows.size();
  for (const auto& [tc, fc] : shared) {
    (void)fc;
    op.detail += (op.detail.empty() ? "on v" : ",v") +
                 std::to_string(target->vars[tc]);
  }

  auto filter_key = [&](const std::vector<NodeId>& frow) {
    std::vector<NodeId> key;
    key.reserve(shared.size());
    for (const auto& [tc, fc] : shared) {
      (void)tc;
      key.push_back(frow[fc]);
    }
    return key;
  };
  auto target_key = [&](const std::vector<NodeId>& trow) {
    std::vector<NodeId> key;
    key.reserve(shared.size());
    for (const auto& [tc, fc] : shared) {
      (void)fc;
      key.push_back(trow[tc]);
    }
    return key;
  };

  const int lanes = std::max(num_threads, 1);
  std::vector<std::vector<NodeId>> kept;
  kept.reserve(target->rows.size());
  if (lanes > 1 &&
      target->rows.size() + filter.rows.size() >= kParallelJoinRows) {
    op.threads = lanes;
    // Partitioned build of the filter-key set, then a morsel-wise probe
    // into per-morsel slots concatenated in order (the kept rows keep
    // their original relative order, as in the serial pass).
    const size_t P = std::bit_ceil(static_cast<size_t>(lanes) * 4);
    std::vector<std::vector<std::vector<std::vector<NodeId>>>> lane_buckets(
        lanes,
        std::vector<std::vector<std::vector<NodeId>>>(P));
    ParallelMorsels(lanes, filter.rows.size(), 2048,
                    [&](size_t begin, size_t end, int lane_id) {
                      auto& buckets = lane_buckets[lane_id];
                      for (size_t r = begin; r < end; ++r) {
                        std::vector<NodeId> key = filter_key(filter.rows[r]);
                        const size_t p = MixHash64(HashKey(key)) & (P - 1);
                        buckets[p].push_back(std::move(key));
                      }
                    });
    std::vector<std::set<std::vector<NodeId>>> partitions(P);
    ParallelMorsels(lanes, P, 1, [&](size_t begin, size_t end, int lane_id) {
      (void)lane_id;
      for (size_t p = begin; p < end; ++p) {
        for (int l = 0; l < lanes; ++l) {
          for (std::vector<NodeId>& key : lane_buckets[l][p]) {
            partitions[p].insert(std::move(key));
          }
        }
      }
    });
    const size_t grain = 1024;
    const size_t num_morsels = (target->rows.size() + grain - 1) / grain;
    std::vector<std::vector<std::vector<NodeId>>> slots(num_morsels);
    ParallelMorsels(lanes, target->rows.size(), grain,
                    [&](size_t begin, size_t end, int lane_id) {
                      (void)lane_id;
                      auto& slot = slots[begin / grain];
                      for (size_t i = begin; i < end; ++i) {
                        std::vector<NodeId> key = target_key(target->rows[i]);
                        if (partitions[MixHash64(HashKey(key)) & (P - 1)]
                                .count(key)) {
                          slot.push_back(std::move(target->rows[i]));
                        }
                      }
                    });
    for (std::vector<std::vector<NodeId>>& slot : slots) {
      for (std::vector<NodeId>& row : slot) kept.push_back(std::move(row));
    }
  } else {
    std::set<std::vector<NodeId>> keys;
    for (const std::vector<NodeId>& frow : filter.rows) {
      keys.insert(filter_key(frow));
    }
    for (std::vector<NodeId>& trow : target->rows) {
      if (keys.count(target_key(trow))) kept.push_back(std::move(trow));
    }
  }
  bool shrank = kept.size() < target->rows.size();
  target->rows = std::move(kept);

  // Only filtering passes are profiled — the fixpoint driver calls this
  // repeatedly, and no-op passes would drown the operator profile.
  if (shrank) {
    op.rows_out = target->rows.size();
    stats.operators.push_back(std::move(op));
  }
  return shrank;
}

}  // namespace ecrpq
