#include "core/ops.h"

#include <algorithm>
#include <bit>
#include <functional>
#include <map>
#include <queue>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "core/eval_crpq.h"

namespace ecrpq {

BindingTable ProjectDistinct(const BindingTable& table,
                             const std::vector<int>& vars) {
  BindingTable out;
  out.vars = vars;
  std::vector<int> cols;
  for (int v : vars) {
    int c = table.ColumnOf(v);
    ECRPQ_DCHECK(c >= 0);
    cols.push_back(c);
  }
  std::set<std::vector<NodeId>> seen;
  for (const std::vector<NodeId>& row : table.rows) {
    std::vector<NodeId> projected;
    projected.reserve(cols.size());
    for (int c : cols) projected.push_back(row[c]);
    if (seen.insert(projected).second) out.rows.push_back(std::move(projected));
  }
  return out;
}

ComponentSpec BuildComponentSpec(const ResolvedQuery& rq,
                                 const std::vector<int>& atom_indices) {
  ComponentSpec comp;
  comp.atom_indices = atom_indices;
  comp.track_of_path.assign(rq.query->path_variables().size(), -1);
  auto add_var = [&](const ResolvedTerm& term, bool is_start) {
    if (term.is_const) return;
    if (std::find(comp.vars.begin(), comp.vars.end(), term.var) ==
        comp.vars.end()) {
      comp.vars.push_back(term.var);
    }
    if (is_start &&
        std::find(comp.start_vars.begin(), comp.start_vars.end(),
                  term.var) == comp.start_vars.end()) {
      comp.start_vars.push_back(term.var);
    }
  };
  for (int idx : atom_indices) {
    const ResolvedAtom& atom = rq.atoms[idx];
    if (comp.track_of_path[atom.path] < 0) {
      comp.track_of_path[atom.path] = static_cast<int>(comp.tracks.size());
      comp.tracks.push_back(atom.path);
    }
    add_var(atom.from, /*is_start=*/true);
    add_var(atom.to, /*is_start=*/false);
  }
  for (size_t r = 0; r < rq.relations().size(); ++r) {
    // A relation belongs to the component holding its first path's track
    // (components contain either all or none of a relation's paths).
    if (comp.track_of_path[rq.relations()[r].paths[0]] >= 0) {
      comp.relation_indices.push_back(static_cast<int>(r));
    }
  }
  return comp;
}

bool IsReachabilityScanComponent(const ResolvedQuery& rq,
                                 const ComponentSpec& comp) {
  if (comp.atom_indices.size() != 1 || comp.tracks.size() != 1) return false;
  for (int r : comp.relation_indices) {
    if (rq.relations()[r].relation->arity() != 1) return false;
  }
  return true;
}

namespace {

// Interns relation state subsets.
class SubsetPool {
 public:
  int Intern(std::vector<StateId> subset) {
    auto [it, inserted] = ids_.emplace(std::move(subset), 0);
    if (inserted) {
      it->second = static_cast<int>(store_.size());
      store_.push_back(it->first);
    }
    return it->second;
  }
  const std::vector<StateId>& Get(int id) const { return store_[id]; }

 private:
  std::map<std::vector<StateId>, int> ids_;
  std::vector<std::vector<StateId>> store_;
};

uint64_t Mix64(uint64_t x) {
  // splitmix64 finalizer.
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t HashConfig(const ProductConfig& c) {
  uint64_t h = 1469598103934665603ULL;  // FNV-1a
  auto feed = [&h](uint32_t v) {
    h ^= v;
    h *= 1099511628211ULL;
  };
  feed(c.padmask);
  for (NodeId v : c.nodes) feed(static_cast<uint32_t>(v));
  for (int s : c.subset_ids) feed(static_cast<uint32_t>(s));
  return h;
}

// Open-addressing visited/intern table over product configurations.
//
// When padmask + per-track node ids + per-relation subset ids fit one
// word, configurations are keyed by a packed uint64 code and probes
// compare single words — no per-configuration allocation, no vector
// hashing. Subset-interning ids are assigned dynamically, so a search
// whose subset count outgrows its bit field migrates once to the generic
// path (hash of the config, structural equality against the discovery
// array) and keeps going; searches whose shape never fits start there.
class VisitedTable {
 public:
  VisitedTable(int tracks, int relations, int num_nodes)
      : tracks_(tracks), relations_(relations) {
    node_bits_ = std::bit_width(
        static_cast<uint32_t>(std::max(num_nodes - 1, 1)));
    int used = tracks_ + tracks_ * node_bits_;
    if (used <= 64 && relations_ > 0) {
      subset_bits_ = std::min<int>(31, (64 - used) / relations_);
    } else {
      subset_bits_ = 0;
    }
    packed_ = (used + relations_ * subset_bits_ <= 64) &&
              (relations_ == 0 || subset_bits_ >= 1);
    Rehash(1024);
  }

  // Returns (config id, inserted). A new config is appended to `order`.
  std::pair<int, bool> FindOrInsert(ProductConfig&& c,
                                    std::vector<ProductConfig>& order) {
    if (packed_) {
      uint64_t code;
      if (!TryPack(c, &code)) {
        MigrateToGeneric(order);
      } else {
        if ((size_ + 1) * 10 >= slots_.size() * 7) RehashPacked(order);
        size_t i = Mix64(code) & (slots_.size() - 1);
        while (slots_[i] >= 0) {
          if (keys_[i] == code) return {slots_[i], false};
          i = (i + 1) & (slots_.size() - 1);
        }
        int id = static_cast<int>(order.size());
        order.push_back(std::move(c));
        slots_[i] = id;
        keys_[i] = code;
        ++size_;
        return {id, true};
      }
    }
    if ((size_ + 1) * 10 >= slots_.size() * 7) RehashGeneric(order);
    size_t i = HashConfig(c) & (slots_.size() - 1);
    while (slots_[i] >= 0) {
      if (order[slots_[i]] == c) return {slots_[i], false};
      i = (i + 1) & (slots_.size() - 1);
    }
    int id = static_cast<int>(order.size());
    order.push_back(std::move(c));
    slots_[i] = id;
    ++size_;
    return {id, true};
  }

 private:
  bool TryPack(const ProductConfig& c, uint64_t* out) const {
    uint64_t code = c.padmask;
    int shift = tracks_;
    for (NodeId v : c.nodes) {
      code |= static_cast<uint64_t>(static_cast<uint32_t>(v)) << shift;
      shift += node_bits_;
    }
    for (int s : c.subset_ids) {
      if (static_cast<int64_t>(s) >= (int64_t{1} << subset_bits_)) {
        return false;
      }
      code |= static_cast<uint64_t>(s) << shift;
      shift += subset_bits_;
    }
    *out = code;
    return true;
  }

  void Rehash(size_t capacity) {
    slots_.assign(capacity, -1);
    if (packed_) keys_.assign(capacity, 0);
  }

  void RehashPacked(const std::vector<ProductConfig>& order) {
    (void)order;  // packed slots carry their own keys
    std::vector<int32_t> old_slots = std::move(slots_);
    std::vector<uint64_t> old_keys = std::move(keys_);
    Rehash(old_slots.size() * 2);
    for (size_t j = 0; j < old_slots.size(); ++j) {
      if (old_slots[j] < 0) continue;
      size_t i = Mix64(old_keys[j]) & (slots_.size() - 1);
      while (slots_[i] >= 0) i = (i + 1) & (slots_.size() - 1);
      slots_[i] = old_slots[j];
      keys_[i] = old_keys[j];
    }
  }

  // Clears the table to `capacity` slots and re-inserts every config of
  // `order` by structural hash (generic mode's rebuild).
  void RebuildGeneric(size_t capacity,
                      const std::vector<ProductConfig>& order) {
    slots_.assign(capacity, -1);
    for (size_t id = 0; id < order.size(); ++id) {
      size_t i = HashConfig(order[id]) & (capacity - 1);
      while (slots_[i] >= 0) i = (i + 1) & (capacity - 1);
      slots_[i] = static_cast<int32_t>(id);
    }
  }

  void RehashGeneric(const std::vector<ProductConfig>& order) {
    RebuildGeneric(slots_.size() * 2, order);
  }

  void MigrateToGeneric(const std::vector<ProductConfig>& order) {
    packed_ = false;
    keys_.clear();
    keys_.shrink_to_fit();
    RebuildGeneric(slots_.size(), order);
  }

  int tracks_;
  int relations_;
  int node_bits_ = 0;
  int subset_bits_ = 0;
  bool packed_ = false;
  size_t size_ = 0;
  std::vector<int32_t> slots_;  // config id or -1
  std::vector<uint64_t> keys_;  // packed code per occupied slot
};

// Product search over one component for one start assignment.
class ComponentSearch {
 public:
  ComponentSearch(const ResolvedQuery& rq, const ComponentSpec& comp,
                  const EvalOptions& options, EvalStats* stats)
      : rq_(rq),
        comp_(comp),
        options_(options),
        stats_(stats),
        index_(rq.index.get()),
        use_masks_(rq.graph->alphabet().size() <= 64) {
    // Per-relation tuple alphabets and local track lists.
    for (int r : comp_.relation_indices) {
      const ResolvedRelation& rel = rq_.relations()[r];
      std::vector<int> local;
      for (int p : rel.paths) local.push_back(comp_.track_of_path[p]);
      rel_local_tracks_.push_back(std::move(local));
      rel_alphabets_.emplace_back(rel.relation->tuple_alphabet());
    }
    subset_masks_.resize(comp_.relation_indices.size());
  }

  // Runs BFS from one start-node-per-track assignment; reports satisfying
  // (full component assignment) tuples into `results`. `fixed` holds
  // pre-bound global vars (or -1). If `sink` is non-null the product graph
  // is recorded there.
  Status Run(const std::vector<NodeId>& start_nodes,
             const std::vector<NodeId>& fixed,
             std::set<std::vector<NodeId>>* results,
             ProductGraphSink* sink) {
    const int T = static_cast<int>(comp_.tracks.size());
    const GraphDb& graph = *rq_.graph;

    // Start binding of start vars (from the caller's enumeration).
    // Initial relation subsets.
    ProductConfig init;
    init.nodes = start_nodes;
    init.padmask = 0;
    for (size_t i = 0; i < comp_.relation_indices.size(); ++i) {
      const ResolvedRelation& rel =
          rq_.relations()[comp_.relation_indices[i]];
      std::vector<StateId> subset = rel.initial;
      std::sort(subset.begin(), subset.end());
      if (subset.empty()) return Status::OK();  // relation unsatisfiable
      init.subset_ids.push_back(pool_.Intern(std::move(subset)));
    }

    // The sink may already hold configs from previous start assignments;
    // all sink indices are offset by its current size.
    const int sink_base =
        (sink != nullptr) ? static_cast<int>(sink->configs.size()) : 0;
    VisitedTable visited(T, static_cast<int>(comp_.relation_indices.size()),
                         graph.num_nodes());
    std::vector<ProductConfig> order;
    std::queue<int> work;
    auto intern_config = [&](ProductConfig c) -> std::pair<int, bool> {
      auto [id, inserted] = visited.FindOrInsert(std::move(c), order);
      if (inserted) {
        work.push(id);
        ++visited_configs_;
        if (sink != nullptr) {
          sink->configs.push_back(order.back());
          sink->arcs.emplace_back();
          sink->initial.push_back(false);
          sink->accepting.push_back(false);
        }
      }
      return {id, inserted};
    };

    auto [init_id, fresh] = intern_config(std::move(init));
    (void)fresh;
    if (sink != nullptr) sink->initial[sink_base + init_id] = true;

    while (!work.empty()) {
      int config_id = work.front();
      work.pop();
      if (++stats_->configs_explored > options_.max_configs) {
        return Status::ResourceExhausted(
            "product search exceeded max_configs=" +
            std::to_string(options_.max_configs));
      }
      ProductConfig current = order[config_id];  // copy: order grows below

      // Acceptance: every relation subset intersects its accepting set,
      // and end constraints are consistent.
      if (Accepting(current)) {
        std::vector<NodeId> assignment;
        if (EndConsistent(current, start_nodes, fixed, &assignment)) {
          if (results != nullptr) results->insert(assignment);
          if (sink != nullptr) sink->accepting[sink_base + config_id] = true;
        }
      }

      // Expand successors: per track choose pad or an edge, pulling only
      // the label slices the live relation state-sets can read.
      ComputeLiveMasks(current);
      std::vector<Symbol> letter(T);
      std::vector<NodeId> next_nodes(T);
      ExpandRec(0, T, current, &letter, &next_nodes, graph,
                [&](ProductConfig next, const std::vector<Symbol>& letters) {
                  ++stats_->arcs_explored;
                  ++frontier_expansions_;
                  auto [next_id, unused] = intern_config(std::move(next));
                  (void)unused;
                  if (sink != nullptr) {
                    sink->arcs[sink_base + config_id].push_back(
                        {letters, sink_base + next_id});
                  }
                });
    }
    return Status::OK();
  }

  const ComponentSpec& component() const { return comp_; }
  uint64_t visited_configs() const { return visited_configs_; }
  uint64_t frontier_expansions() const { return frontier_expansions_; }

 private:
  bool Accepting(const ProductConfig& c) const {
    for (size_t i = 0; i < comp_.relation_indices.size(); ++i) {
      const ResolvedRelation& rel =
          rq_.relations()[comp_.relation_indices[i]];
      bool ok = false;
      for (StateId s : pool_.Get(c.subset_ids[i])) {
        if (rel.accepting[s]) {
          ok = true;
          break;
        }
      }
      if (!ok) return false;
    }
    return true;
  }

  // Checks end-node constraints; produces the component assignment
  // (parallel to comp_.vars) on success.
  bool EndConsistent(const ProductConfig& c,
                     const std::vector<NodeId>& start_nodes,
                     const std::vector<NodeId>& fixed,
                     std::vector<NodeId>* assignment) const {
    std::vector<NodeId> binding(rq_.query->node_variables().size(), -1);
    // Seed with fixed bindings and start assignments.
    for (size_t v = 0; v < fixed.size(); ++v) binding[v] = fixed[v];
    for (int idx : comp_.atom_indices) {
      const ResolvedAtom& atom = rq_.atoms[idx];
      int track = comp_.track_of_path[atom.path];
      NodeId start = start_nodes[track];
      NodeId end = c.nodes[track];
      // From-term: already consistent by construction of start_nodes, but
      // fixed vars must agree too.
      if (atom.from.is_const) {
        if (atom.from.node != start) return false;
      } else {
        if (binding[atom.from.var] >= 0 && binding[atom.from.var] != start) {
          return false;
        }
        binding[atom.from.var] = start;
      }
      if (atom.to.is_const) {
        if (atom.to.node != end) return false;
      } else {
        if (binding[atom.to.var] >= 0 && binding[atom.to.var] != end) {
          return false;
        }
        binding[atom.to.var] = end;
      }
    }
    assignment->clear();
    for (int v : comp_.vars) assignment->push_back(binding[v]);
    return true;
  }

  // Per-tape letter masks of one relation's current subset, OR of the
  // compiled per-state tape_masks; cached per interned subset id.
  const std::vector<uint64_t>& SubsetMasks(size_t i, int subset_id) {
    auto& cache = subset_masks_[i];
    if (subset_id >= static_cast<int>(cache.size())) {
      cache.resize(subset_id + 1);
    }
    std::vector<uint64_t>& entry = cache[subset_id];
    if (entry.empty()) {
      const ResolvedRelation& rel =
          rq_.relations()[comp_.relation_indices[i]];
      entry.assign(rel_local_tracks_[i].size(), 0);
      for (StateId s : pool_.Get(subset_id)) {
        for (size_t tape = 0; tape < entry.size(); ++tape) {
          entry[tape] |= rel.tape_masks[s][tape];
        }
      }
    }
    return entry;
  }

  // live_[t]: base letters track t may read without killing a relation —
  // the intersection, over relations reading t, of the letters their
  // current state-sets accept on that tape (Thm 6.1's restriction).
  void ComputeLiveMasks(const ProductConfig& current) {
    live_.assign(comp_.tracks.size(), ~0ULL);
    if (index_ == nullptr || !use_masks_) return;
    for (size_t i = 0; i < comp_.relation_indices.size(); ++i) {
      const std::vector<uint64_t>& masks =
          SubsetMasks(i, current.subset_ids[i]);
      const std::vector<int>& local = rel_local_tracks_[i];
      for (size_t tape = 0; tape < local.size(); ++tape) {
        live_[local[tape]] &= masks[tape];
      }
    }
  }

  template <typename Callback>
  void ExpandRec(int t, int total, const ProductConfig& current,
                 std::vector<Symbol>* letter, std::vector<NodeId>* next_nodes,
                 const GraphDb& graph, const Callback& emit) {
    if (t == total) {
      uint32_t new_padmask = 0;
      bool all_pad = true;
      for (int i = 0; i < total; ++i) {
        if ((*letter)[i] == kPad) {
          new_padmask |= (1u << i);
        } else {
          all_pad = false;
        }
      }
      if (all_pad) return;
      // Advance relations on their projected letters.
      ProductConfig next;
      next.padmask = new_padmask;
      next.nodes = *next_nodes;
      next.subset_ids.resize(comp_.relation_indices.size());
      for (size_t i = 0; i < comp_.relation_indices.size(); ++i) {
        const ResolvedRelation& rel =
            rq_.relations()[comp_.relation_indices[i]];
        const std::vector<int>& local = rel_local_tracks_[i];
        TupleLetter proj(local.size());
        bool rel_all_pad = true;
        for (size_t tape = 0; tape < local.size(); ++tape) {
          proj[tape] = (*letter)[local[tape]];
          if (proj[tape] != kPad) rel_all_pad = false;
        }
        if (rel_all_pad) {
          // The relation's word has ended; its subset is frozen.
          next.subset_ids[i] = current.subset_ids[i];
          continue;
        }
        Symbol id = rel_alphabets_[i].Encode(proj);
        std::vector<StateId> advanced;
        for (StateId s : pool_.Get(current.subset_ids[i])) {
          auto it = rel.transitions[s].find(id);
          if (it != rel.transitions[s].end()) {
            advanced.insert(advanced.end(), it->second.begin(),
                            it->second.end());
          }
        }
        if (advanced.empty()) return;  // prune
        std::sort(advanced.begin(), advanced.end());
        advanced.erase(std::unique(advanced.begin(), advanced.end()),
                       advanced.end());
        next.subset_ids[i] = pool_.Intern(std::move(advanced));
      }
      emit(std::move(next), *letter);
      return;
    }
    // Option 1: pad (always allowed; forced when already padded).
    (*letter)[t] = kPad;
    (*next_nodes)[t] = current.nodes[t];
    ExpandRec(t + 1, total, current, letter, next_nodes, graph, emit);
    // Option 2: follow an edge (only when not padded).
    if (!(current.padmask & (1u << t))) {
      const NodeId v = current.nodes[t];
      if (index_ != nullptr && use_masks_) {
        // Indexed path: visit only the letters live for this track and
        // present at the node (one AND against the node's label mask).
        // Small adjacency rows are filtered linearly (a binary search per
        // label costs more than reading a handful of edges); large rows
        // jump straight to the per-label slices.
        const uint64_t mask = live_[t] & index_->OutLabelMask(v);
        if (mask == 0) {
          // No live letter at this node: the track can only pad.
        } else if (index_->out_degree(v) <= 16) {
          std::span<const Symbol> labels = index_->OutLabels(v);
          std::span<const NodeId> targets = index_->OutTargets(v);
          for (size_t i = 0; i < labels.size(); ++i) {
            if (((mask >> std::min<Symbol>(labels[i], 63)) & 1) == 0) {
              continue;
            }
            (*letter)[t] = labels[i];
            (*next_nodes)[t] = targets[i];
            ExpandRec(t + 1, total, current, letter, next_nodes, graph,
                      emit);
          }
        } else {
          uint64_t bits = mask;
          while (bits != 0) {
            Symbol label = static_cast<Symbol>(std::countr_zero(bits));
            bits &= bits - 1;
            for (NodeId to : index_->Out(v, label)) {
              (*letter)[t] = label;
              (*next_nodes)[t] = to;
              ExpandRec(t + 1, total, current, letter, next_nodes, graph,
                        emit);
            }
          }
        }
      } else if (index_ != nullptr) {
        std::span<const Symbol> labels = index_->OutLabels(v);
        std::span<const NodeId> targets = index_->OutTargets(v);
        for (size_t i = 0; i < labels.size(); ++i) {
          (*letter)[t] = labels[i];
          (*next_nodes)[t] = targets[i];
          ExpandRec(t + 1, total, current, letter, next_nodes, graph, emit);
        }
      } else {
        for (const auto& [label, to] : graph.Out(v)) {
          (*letter)[t] = label;
          (*next_nodes)[t] = to;
          ExpandRec(t + 1, total, current, letter, next_nodes, graph, emit);
        }
      }
    }
  }

  const ResolvedQuery& rq_;
  const ComponentSpec& comp_;
  const EvalOptions& options_;
  EvalStats* stats_;
  const GraphIndex* index_;  // null = scan GraphDb adjacency (legacy path)
  bool use_masks_;           // base alphabet fits the 64-bit letter masks
  SubsetPool pool_;
  std::vector<std::vector<int>> rel_local_tracks_;
  std::vector<TupleAlphabet> rel_alphabets_;
  // Per component relation: per-tape letter masks keyed by subset id.
  std::vector<std::vector<std::vector<uint64_t>>> subset_masks_;
  std::vector<uint64_t> live_;  // per-track live letters, per expansion
  uint64_t visited_configs_ = 0;
  uint64_t frontier_expansions_ = 0;
};

// Enumerates start assignments (respecting `fixed`) and runs one product
// BFS per assignment — the ProductExpand body for one overlay of fixed
// bindings.
Status ExpandWithSeeding(const ResolvedQuery& rq, ComponentSearch& search,
                         const std::vector<NodeId>& fixed, EvalStats* stats,
                         std::set<std::vector<NodeId>>* results,
                         ProductGraphSink* sink) {
  const ComponentSpec& comp = search.component();
  const GraphDb& graph = *rq.graph;

  std::vector<NodeId> binding(rq.query->node_variables().size(), -1);
  for (size_t v = 0; v < fixed.size(); ++v) binding[v] = fixed[v];

  const std::vector<int>& start_vars = comp.start_vars;

  std::function<Status(size_t)> enumerate = [&](size_t i) -> Status {
    if (i == start_vars.size()) {
      // Derive start node per track; all from-terms of a track must agree.
      std::vector<NodeId> start_nodes(comp.tracks.size(), -1);
      for (int idx : comp.atom_indices) {
        const ResolvedAtom& atom = rq.atoms[idx];
        int track = comp.track_of_path[atom.path];
        NodeId v = atom.from.is_const ? atom.from.node
                                      : binding[atom.from.var];
        if (start_nodes[track] < 0) {
          start_nodes[track] = v;
        } else if (start_nodes[track] != v) {
          return Status::OK();  // inconsistent repetition start
        }
      }
      ++stats->start_assignments;
      return search.Run(start_nodes, binding, results, sink);
    }
    int var = start_vars[i];
    if (binding[var] >= 0) return enumerate(i + 1);
    // Seed from high-degree nodes first (GraphIndex permutation): under
    // early termination the densest frontiers reach answers soonest. The
    // answer set is order-independent (results is a set).
    if (rq.index != nullptr) {
      for (NodeId v : rq.index->NodesByDegree()) {
        binding[var] = v;
        Status st = enumerate(i + 1);
        if (!st.ok()) return st;
      }
    } else {
      for (NodeId v = 0; v < graph.num_nodes(); ++v) {
        binding[var] = v;
        Status st = enumerate(i + 1);
        if (!st.ok()) return st;
      }
    }
    binding[var] = -1;
    return Status::OK();
  };
  return enumerate(0);
}

// ReachabilityScan leaf: single path atom, all-unary languages. One
// intersected-NFA BFS (restricted to seeded sources when available)
// instead of the subset-tracking product search.
Status ScanComponentOp(const ResolvedQuery& rq, const ComponentSpec& comp,
                       const EvalOptions& options,
                       const std::vector<NodeId>& fixed,
                       const BindingTable* seeds, EvalStats& stats,
                       OperatorStats& op,
                       std::set<std::vector<NodeId>>* results) {
  const ResolvedAtom& atom = rq.atoms[comp.atom_indices[0]];
  std::vector<const RegularRelation*> languages;
  for (int r : comp.relation_indices) {
    languages.push_back(rq.relations()[r].relation);
  }

  // Source restriction: constant > fixed > seeded column > all nodes.
  auto bound_of = [&](const ResolvedTerm& term) -> NodeId {
    if (term.is_const) return term.node;
    return fixed[term.var];
  };
  NodeId from_bound = bound_of(atom.from);

  std::vector<NodeId> sources;
  const std::vector<NodeId>* source_ptr = nullptr;
  int seed_from_col =
      (seeds != nullptr && !atom.from.is_const && fixed[atom.from.var] < 0)
          ? seeds->ColumnOf(atom.from.var)
          : -1;
  if (from_bound >= 0) {
    sources.push_back(from_bound);
    source_ptr = &sources;
  } else if (seed_from_col >= 0) {
    std::set<NodeId> distinct;
    for (const std::vector<NodeId>& row : seeds->rows) {
      distinct.insert(row[seed_from_col]);
    }
    sources.assign(distinct.begin(), distinct.end());
    source_ptr = &sources;
  }

  ReachabilityScanStats scan_stats;
  std::vector<std::pair<NodeId, NodeId>> pairs = ReachabilityPairs(
      *rq.graph, languages, rq.index.get(), source_ptr, &scan_stats);
  op.frontier_expansions += scan_stats.frontier_expansions;
  op.visited_configs += scan_stats.visited_states;
  stats.arcs_explored += scan_stats.frontier_expansions;
  stats.start_assignments +=
      source_ptr != nullptr ? sources.size() : rq.graph->num_nodes();
  // Charge visited (language state, node) pairs to the product budget —
  // the same states a product search over this component would have
  // interned — so the ReachabilityScan routing preserves the caller's
  // max_configs resource guard. (The scan itself is polynomial, so the
  // check after the fact bounds the query, not an explosion.)
  stats.configs_explored += scan_stats.visited_states;
  if (stats.configs_explored > options.max_configs) {
    return Status::ResourceExhausted(
        "product search exceeded max_configs=" +
        std::to_string(options.max_configs));
  }

  // Seed-row compatibility set (projection of seed rows onto comp.vars).
  std::set<std::vector<NodeId>> seed_set;
  std::vector<int> seed_cols;
  if (seeds != nullptr) {
    for (int v : seeds->vars) seed_cols.push_back(v);
    for (const std::vector<NodeId>& row : seeds->rows) seed_set.insert(row);
  }

  for (const auto& [u, v] : pairs) {
    if (atom.from.is_const && u != atom.from.node) continue;
    if (atom.to.is_const && v != atom.to.node) continue;
    std::vector<NodeId> binding(rq.query->node_variables().size(), -1);
    for (size_t i = 0; i < fixed.size(); ++i) binding[i] = fixed[i];
    bool ok = true;
    if (!atom.from.is_const) {
      if (binding[atom.from.var] >= 0 && binding[atom.from.var] != u) {
        ok = false;
      }
      binding[atom.from.var] = u;
    }
    if (ok && !atom.to.is_const) {
      if (binding[atom.to.var] >= 0 && binding[atom.to.var] != v) ok = false;
      if (ok) binding[atom.to.var] = v;
    }
    if (!ok) continue;
    std::vector<NodeId> assignment;
    for (int var : comp.vars) assignment.push_back(binding[var]);
    if (seeds != nullptr) {
      std::vector<NodeId> key;
      for (int var : seed_cols) key.push_back(binding[var]);
      if (seed_set.find(key) == seed_set.end()) continue;
    }
    results->insert(std::move(assignment));
  }
  return Status::OK();
}

std::string ComponentDetail(const ComponentSpec& comp) {
  std::string detail = "atoms";
  for (int idx : comp.atom_indices) detail += " " + std::to_string(idx);
  return detail;
}

}  // namespace

Status ExecuteComponentOp(const ResolvedQuery& rq, const ComponentSpec& comp,
                          const EvalOptions& options,
                          const std::vector<NodeId>& fixed,
                          const BindingTable* seeds, double est_rows,
                          EvalStats& stats,
                          std::set<std::vector<NodeId>>* results,
                          ProductGraphSink* graph_sink) {
  OperatorStats op;
  op.detail = ComponentDetail(comp);
  op.est_rows = est_rows;
  op.rows_in = (seeds != nullptr) ? seeds->rows.size() : 0;
  const size_t before = (results != nullptr) ? results->size() : 0;

  Status status;
  if (results != nullptr && graph_sink == nullptr &&
      IsReachabilityScanComponent(rq, comp)) {
    op.op = "ReachabilityScan";
    status = ScanComponentOp(rq, comp, options, fixed, seeds, stats, op,
                             results);
  } else {
    op.op = "ProductExpand";
    ComponentSearch search(rq, comp, options, &stats);
    if (seeds != nullptr && !seeds->vars.empty()) {
      // Sideways information passing: one seeded expansion per seed row.
      std::vector<NodeId> overlay;
      for (const std::vector<NodeId>& row : seeds->rows) {
        overlay = fixed;
        bool consistent = true;
        for (size_t i = 0; i < seeds->vars.size(); ++i) {
          int var = seeds->vars[i];
          if (overlay[var] >= 0 && overlay[var] != row[i]) {
            consistent = false;
            break;
          }
          overlay[var] = row[i];
        }
        if (!consistent) continue;
        status = ExpandWithSeeding(rq, search, overlay, &stats, results,
                                   graph_sink);
        if (!status.ok()) break;
      }
    } else {
      status = ExpandWithSeeding(rq, search, fixed, &stats, results,
                                 graph_sink);
    }
    op.visited_configs = search.visited_configs();
    op.frontier_expansions = search.frontier_expansions();
  }

  op.rows_out = (results != nullptr) ? results->size() - before : 0;
  if (graph_sink != nullptr) op.rows_out = graph_sink->configs.size();
  stats.operators.push_back(std::move(op));
  return status;
}

BindingTable HashJoinOp(const BindingTable& left, const BindingTable& right,
                        EvalStats& stats) {
  OperatorStats op;
  op.op = "HashJoin";
  op.rows_in = left.rows.size() + right.rows.size();

  // Shared variables and output layout: left columns, then right's
  // non-shared columns.
  std::vector<std::pair<int, int>> shared;  // (left col, right col)
  std::vector<int> right_extra;             // right cols not shared
  for (size_t rc = 0; rc < right.vars.size(); ++rc) {
    int lc = left.ColumnOf(right.vars[rc]);
    if (lc >= 0) {
      shared.emplace_back(lc, static_cast<int>(rc));
    } else {
      right_extra.push_back(static_cast<int>(rc));
    }
  }
  for (const auto& [lc, rc] : shared) {
    op.detail += (op.detail.empty() ? "on" : ",");
    (void)lc;
    op.detail += " v" + std::to_string(right.vars[rc]);
  }
  if (shared.empty()) op.detail = "cross";

  BindingTable out;
  out.vars = left.vars;
  for (int rc : right_extra) out.vars.push_back(right.vars[rc]);

  // Build on the right, keyed by the shared columns; probe with the left.
  std::map<std::vector<NodeId>, std::vector<int>> build;
  for (size_t r = 0; r < right.rows.size(); ++r) {
    std::vector<NodeId> key;
    key.reserve(shared.size());
    for (const auto& [lc, rc] : shared) {
      (void)lc;
      key.push_back(right.rows[r][rc]);
    }
    build[std::move(key)].push_back(static_cast<int>(r));
  }

  // Output rows are distinct by construction: both inputs hold distinct
  // rows, and an output is its left row (prefix) plus the right row's
  // non-key columns — two equal outputs would need two equal right rows.
  for (const std::vector<NodeId>& lrow : left.rows) {
    std::vector<NodeId> key;
    key.reserve(shared.size());
    for (const auto& [lc, rc] : shared) {
      (void)rc;
      key.push_back(lrow[lc]);
    }
    auto it = build.find(key);
    if (it == build.end()) continue;
    for (int r : it->second) {
      std::vector<NodeId> row = lrow;
      for (int rc : right_extra) row.push_back(right.rows[r][rc]);
      ++stats.join_tuples;
      out.rows.push_back(std::move(row));
    }
  }

  op.rows_out = out.rows.size();
  stats.operators.push_back(std::move(op));
  return out;
}

bool SemiJoinFilterOp(BindingTable* target, const BindingTable& filter,
                      EvalStats& stats) {
  std::vector<std::pair<int, int>> shared;  // (target col, filter col)
  for (size_t fc = 0; fc < filter.vars.size(); ++fc) {
    int tc = target->ColumnOf(filter.vars[fc]);
    if (tc >= 0) shared.emplace_back(tc, static_cast<int>(fc));
  }
  if (shared.empty()) return false;

  OperatorStats op;
  op.op = "SemiJoinFilter";
  op.rows_in = target->rows.size();
  for (const auto& [tc, fc] : shared) {
    (void)fc;
    op.detail += (op.detail.empty() ? "on v" : ",v") +
                 std::to_string(target->vars[tc]);
  }

  std::set<std::vector<NodeId>> keys;
  for (const std::vector<NodeId>& frow : filter.rows) {
    std::vector<NodeId> key;
    key.reserve(shared.size());
    for (const auto& [tc, fc] : shared) {
      (void)tc;
      key.push_back(frow[fc]);
    }
    keys.insert(std::move(key));
  }

  std::vector<std::vector<NodeId>> kept;
  kept.reserve(target->rows.size());
  for (std::vector<NodeId>& trow : target->rows) {
    std::vector<NodeId> key;
    key.reserve(shared.size());
    for (const auto& [tc, fc] : shared) {
      (void)fc;
      key.push_back(trow[tc]);
    }
    if (keys.count(key)) kept.push_back(std::move(trow));
  }
  bool shrank = kept.size() < target->rows.size();
  target->rows = std::move(kept);

  // Only filtering passes are profiled — the fixpoint driver calls this
  // repeatedly, and no-op passes would drown the operator profile.
  if (shrank) {
    op.rows_out = target->rows.size();
    stats.operators.push_back(std::move(op));
  }
  return shrank;
}

}  // namespace ecrpq
