#include "core/ops.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <functional>
#include <map>
#include <memory>
#include <numeric>
#include <queue>
#include <span>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "core/eval_crpq.h"
#include "core/parallel.h"

namespace ecrpq {

BindingTable ProjectDistinct(const BindingTable& table,
                             const std::vector<int>& vars) {
  BindingTable out;
  out.vars = vars;
  std::vector<int> cols;
  for (int v : vars) {
    int c = table.ColumnOf(v);
    ECRPQ_DCHECK(c >= 0);
    cols.push_back(c);
  }
  std::set<std::vector<NodeId>> seen;
  for (const std::vector<NodeId>& row : table.rows) {
    std::vector<NodeId> projected;
    projected.reserve(cols.size());
    for (int c : cols) projected.push_back(row[c]);
    if (seen.insert(projected).second) out.rows.push_back(std::move(projected));
  }
  return out;
}

ComponentSpec BuildComponentSpec(const ResolvedQuery& rq,
                                 const std::vector<int>& atom_indices) {
  ComponentSpec comp;
  comp.atom_indices = atom_indices;
  comp.track_of_path.assign(rq.query->path_variables().size(), -1);
  auto add_var = [&](const ResolvedTerm& term, bool is_start) {
    if (term.is_const) return;
    if (std::find(comp.vars.begin(), comp.vars.end(), term.var) ==
        comp.vars.end()) {
      comp.vars.push_back(term.var);
    }
    std::vector<int>& side = is_start ? comp.start_vars : comp.end_vars;
    if (std::find(side.begin(), side.end(), term.var) == side.end()) {
      side.push_back(term.var);
    }
  };
  for (int idx : atom_indices) {
    const ResolvedAtom& atom = rq.atoms[idx];
    if (comp.track_of_path[atom.path] < 0) {
      comp.track_of_path[atom.path] = static_cast<int>(comp.tracks.size());
      comp.tracks.push_back(atom.path);
    }
    add_var(atom.from, /*is_start=*/true);
    add_var(atom.to, /*is_start=*/false);
  }
  for (size_t r = 0; r < rq.relations().size(); ++r) {
    // A relation belongs to the component holding its first path's track
    // (components contain either all or none of a relation's paths).
    if (comp.track_of_path[rq.relations()[r].paths[0]] >= 0) {
      comp.relation_indices.push_back(static_cast<int>(r));
    }
  }
  return comp;
}

bool IsReachabilityScanComponent(const ResolvedQuery& rq,
                                 const ComponentSpec& comp) {
  if (comp.atom_indices.size() != 1 || comp.tracks.size() != 1) return false;
  for (int r : comp.relation_indices) {
    if (rq.relations()[r].relation->arity() != 1) return false;
  }
  return true;
}

namespace {

constexpr const char* kCancelledMessage = "query execution cancelled";

// Interns relation state subsets (serial searches; one pool per search).
// The shared-frontier parallel search uses SharedSubsetPool
// (core/parallel.h) instead.
class SubsetPool {
 public:
  int Intern(std::vector<StateId> subset) {
    auto [it, inserted] = ids_.emplace(std::move(subset), 0);
    if (inserted) {
      it->second = static_cast<int>(store_.size());
      store_.push_back(it->first);
    }
    return it->second;
  }
  const std::vector<StateId>& Get(int id) const { return store_[id]; }

 private:
  std::map<std::vector<StateId>, int> ids_;
  std::vector<std::vector<StateId>> store_;
};

// Open-addressing visited/intern table over product configurations
// (serial searches; the parallel search shards this structure — see
// ShardedVisitedTable in core/parallel.h).
//
// When padmask + per-track node ids + per-relation subset ids fit one
// word (ConfigCodec), configurations are keyed by a packed uint64 code
// and probes compare single words — no per-configuration allocation, no
// vector hashing. Subset-interning ids are assigned dynamically, so a
// search whose subset count outgrows its bit field migrates once to the
// generic path (structural hash, equality against the discovery array)
// and keeps going; searches whose shape never fits start there.
class VisitedTable {
 public:
  VisitedTable(int tracks, int relations, int num_nodes)
      : codec_(tracks, relations, num_nodes), packed_(codec_.packable) {
    Rehash(1024);
  }

  // Returns (config id, inserted). A new config is appended to `order`.
  std::pair<int, bool> FindOrInsert(ProductConfig&& c,
                                    std::vector<ProductConfig>& order) {
    if (packed_) {
      uint64_t code;
      if (!codec_.TryPack(c, &code)) {
        MigrateToGeneric(order);
      } else {
        if ((size_ + 1) * 10 >= slots_.size() * 7) RehashPacked(order);
        size_t i = MixHash64(code) & (slots_.size() - 1);
        while (slots_[i] >= 0) {
          if (keys_[i] == code) return {slots_[i], false};
          i = (i + 1) & (slots_.size() - 1);
        }
        int id = static_cast<int>(order.size());
        order.push_back(std::move(c));
        slots_[i] = id;
        keys_[i] = code;
        ++size_;
        return {id, true};
      }
    }
    if ((size_ + 1) * 10 >= slots_.size() * 7) RehashGeneric(order);
    size_t i = HashProductConfig(c) & (slots_.size() - 1);
    while (slots_[i] >= 0) {
      if (order[slots_[i]] == c) return {slots_[i], false};
      i = (i + 1) & (slots_.size() - 1);
    }
    int id = static_cast<int>(order.size());
    order.push_back(std::move(c));
    slots_[i] = id;
    ++size_;
    return {id, true};
  }

 private:
  void Rehash(size_t capacity) {
    slots_.assign(capacity, -1);
    if (packed_) keys_.assign(capacity, 0);
  }

  void RehashPacked(const std::vector<ProductConfig>& order) {
    (void)order;  // packed slots carry their own keys
    std::vector<int32_t> old_slots = std::move(slots_);
    std::vector<uint64_t> old_keys = std::move(keys_);
    Rehash(old_slots.size() * 2);
    for (size_t j = 0; j < old_slots.size(); ++j) {
      if (old_slots[j] < 0) continue;
      size_t i = MixHash64(old_keys[j]) & (slots_.size() - 1);
      while (slots_[i] >= 0) i = (i + 1) & (slots_.size() - 1);
      slots_[i] = old_slots[j];
      keys_[i] = old_keys[j];
    }
  }

  // Clears the table to `capacity` slots and re-inserts every config of
  // `order` by structural hash (generic mode's rebuild).
  void RebuildGeneric(size_t capacity,
                      const std::vector<ProductConfig>& order) {
    slots_.assign(capacity, -1);
    for (size_t id = 0; id < order.size(); ++id) {
      size_t i = HashProductConfig(order[id]) & (capacity - 1);
      while (slots_[i] >= 0) i = (i + 1) & (capacity - 1);
      slots_[i] = static_cast<int32_t>(id);
    }
  }

  void RehashGeneric(const std::vector<ProductConfig>& order) {
    RebuildGeneric(slots_.size() * 2, order);
  }

  void MigrateToGeneric(const std::vector<ProductConfig>& order) {
    packed_ = false;
    keys_.clear();
    keys_.shrink_to_fit();
    RebuildGeneric(slots_.size(), order);
  }

  ConfigCodec codec_;
  bool packed_ = false;
  size_t size_ = 0;
  std::vector<int32_t> slots_;  // config id or -1
  std::vector<uint64_t> keys_;  // packed code per occupied slot
};

// Product search over one component. Templated on the state-subset pool:
// SubsetPool for serial searches (one pool per search, lock-free) and
// SharedSubsetPool for shared-frontier parallel searches (one pool shared
// by every lane; each lane owns a ComponentSearchT as its expansion
// context — the per-subset mask caches stay lane-private).
//
// A context is built for one direction. Forward contexts run the classic
// search: configurations advance on out-edges, state-subsets advance on
// the forward transition maps, acceptance needs an accepting state per
// relation, and the padmask marks tracks whose word has ENDED (pads are a
// monotone suffix: a padded track may only keep padding). Backward
// contexts run the exact mirror over the compiled reversed tape
// (ResolvedRelation::rev_*): configurations advance on in-edges gated by
// InLabelMask, subsets advance on rev_transitions (so a backward subset
// holds the forward states from which an accepting state is reachable via
// the consumed suffix), acceptance needs a forward-INITIAL state per
// relation, and the padmask marks tracks that have STARTED consuming (a
// track may pad only while still inside its trailing-pad region — the
// mirror monotonicity, keeping pads a suffix of every track word). Both
// searches intern subsets in the same pool over the same state id space,
// which is what lets a bidirectional meet test S_fwd ∩ S_bwd per
// relation directly.
template <typename Pool>
class ComponentSearchT {
 public:
  ComponentSearchT(const ResolvedQuery& rq, const ComponentSpec& comp,
                   const EvalOptions& options, Pool* pool,
                   bool backward = false)
      : rq_(rq),
        comp_(comp),
        options_(options),
        pool_(pool),
        index_(rq.index.get()),
        use_masks_(rq.graph->alphabet().size() <= 64),
        backward_(backward) {
    // Per-relation tuple alphabets, local track lists, and the
    // direction's view of the compiled automaton (forward or reversed
    // tape — same state ids either way).
    for (int r : comp_.relation_indices) {
      const ResolvedRelation& rel = rq_.relations()[r];
      std::vector<int> local;
      for (int p : rel.paths) local.push_back(comp_.track_of_path[p]);
      rel_local_tracks_.push_back(std::move(local));
      rel_alphabets_.emplace_back(rel.relation->tuple_alphabet());
      RelView view;
      view.transitions = backward_ ? &rel.rev_transitions : &rel.transitions;
      view.initial = backward_ ? &rel.rev_initial : &rel.initial;
      view.accepting = backward_ ? &rel.rev_accepting : &rel.accepting;
      view.tape_masks = backward_ ? &rel.rev_tape_masks : &rel.tape_masks;
      views_.push_back(view);
    }
    subset_masks_.resize(comp_.relation_indices.size());
  }

  bool backward() const { return backward_; }

  // Builds the initial configuration for one anchor assignment (start
  // nodes forward, end nodes backward); false when some relation has no
  // initial state in this direction (unsatisfiable — no search runs).
  bool MakeInitialConfig(const std::vector<NodeId>& anchor_nodes,
                         ProductConfig* out) {
    out->padmask = 0;
    out->nodes = anchor_nodes;
    out->subset_ids.clear();
    for (size_t i = 0; i < comp_.relation_indices.size(); ++i) {
      std::vector<StateId> subset = *views_[i].initial;
      std::sort(subset.begin(), subset.end());
      if (subset.empty()) return false;  // relation unsatisfiable
      out->subset_ids.push_back(pool_->Intern(std::move(subset)));
    }
    return true;
  }

  // One configuration step: acceptance (+ endpoint-consistency filtering
  // into `results`) and successor expansion. `anchor_nodes` holds the
  // per-track anchors of this search — start nodes forward, end nodes
  // backward. `emit(ProductConfig&&, letters)` receives every generated
  // successor; the caller owns dedup/queueing. The serial BFS (Run), the
  // shared-frontier lanes, and the bidirectional half-searches all drive
  // this.
  template <typename Emit>
  void ProcessConfig(const ProductConfig& current,
                     const std::vector<NodeId>& anchor_nodes,
                     const std::vector<NodeId>& fixed,
                     std::set<std::vector<NodeId>>* results, bool* accepted,
                     Emit&& emit) {
    *accepted = false;
    if (Accepting(current)) {
      std::vector<NodeId> assignment;
      const std::vector<NodeId>& starts =
          backward_ ? current.nodes : anchor_nodes;
      const std::vector<NodeId>& ends =
          backward_ ? anchor_nodes : current.nodes;
      if (ConsistentAssignment(starts, ends, fixed, &assignment)) {
        if (results != nullptr) results->insert(std::move(assignment));
        *accepted = true;
      }
    }
    const int T = static_cast<int>(comp_.tracks.size());
    ComputeLiveMasks(current);
    scratch_cands_.resize(T);
    for (int t = 0; t < T; ++t) GatherCandidates(t, current, *rq_.graph);
    scratch_letter_.assign(T, kPad);
    scratch_next_nodes_.assign(T, -1);
    auto counted = [&](ProductConfig next,
                       const std::vector<Symbol>& letters) {
      ++arcs_explored_;
      ++frontier_expansions_;
      emit(std::move(next), letters);
    };
    ExpandRec(0, T, current, &scratch_letter_, &scratch_next_nodes_,
              *rq_.graph, counted);
  }

  // Serial BFS from one anchor-node-per-track assignment (start nodes
  // forward, end nodes backward); reports satisfying component
  // assignments into `results` and records the product graph into `sink`
  // when non-null (forward contexts only — callers pin graph recording to
  // the forward direction). `configs_budget` is the execution-wide
  // popped-configuration counter checked against max_configs; `cancel`
  // (optional) stops the search cooperatively.
  Status Run(const std::vector<NodeId>& anchor_nodes,
             const std::vector<NodeId>& fixed,
             std::set<std::vector<NodeId>>* results, ProductGraphSink* sink,
             std::atomic<uint64_t>* configs_budget,
             CancellationToken* cancel) {
    const GraphDb& graph = *rq_.graph;
    ProductConfig init;
    if (!MakeInitialConfig(anchor_nodes, &init)) return Status::OK();

    // The sink may already hold configs from previous start assignments;
    // all sink indices are offset by its current size.
    const int sink_base =
        (sink != nullptr) ? static_cast<int>(sink->configs.size()) : 0;
    VisitedTable visited(static_cast<int>(comp_.tracks.size()),
                         static_cast<int>(comp_.relation_indices.size()),
                         graph.num_nodes());
    std::vector<ProductConfig> order;
    std::queue<int> work;
    auto intern_config = [&](ProductConfig c) -> std::pair<int, bool> {
      auto [id, inserted] = visited.FindOrInsert(std::move(c), order);
      if (inserted) {
        work.push(id);
        ++visited_configs_;
        if (sink != nullptr) {
          sink->configs.push_back(order.back());
          sink->arcs.emplace_back();
          sink->initial.push_back(false);
          sink->accepting.push_back(false);
        }
      }
      return {id, inserted};
    };

    auto [init_id, fresh] = intern_config(std::move(init));
    (void)fresh;
    if (sink != nullptr) sink->initial[sink_base + init_id] = true;

    while (!work.empty()) {
      int config_id = work.front();
      work.pop();
      if (cancel != nullptr && cancel->cancelled()) {
        return Status::Cancelled(kCancelledMessage);
      }
      if (configs_budget->fetch_add(1, std::memory_order_relaxed) + 1 >
          options_.max_configs) {
        return Status::ResourceExhausted(
            "product search exceeded max_configs=" +
            std::to_string(options_.max_configs));
      }
      ProductConfig current = order[config_id];  // copy: order grows below
      bool accepted = false;
      ProcessConfig(current, anchor_nodes, fixed, results, &accepted,
                    [&](ProductConfig next,
                        const std::vector<Symbol>& letters) {
                      auto [next_id, unused] =
                          intern_config(std::move(next));
                      (void)unused;
                      if (sink != nullptr) {
                        sink->arcs[sink_base + config_id].push_back(
                            {letters, sink_base + next_id});
                      }
                    });
      if (accepted && sink != nullptr) {
        sink->accepting[sink_base + config_id] = true;
      }
    }
    return Status::OK();
  }

  const ComponentSpec& component() const { return comp_; }
  uint64_t visited_configs() const { return visited_configs_; }
  uint64_t frontier_expansions() const { return frontier_expansions_; }
  uint64_t arcs_explored() const { return arcs_explored_; }

  // Checks per-atom endpoint constraints of one full (start, end) node
  // assignment per track; produces the component assignment (parallel to
  // comp_.vars) on success. Shared by all directions: forward passes
  // (anchors, config nodes), backward (config nodes, anchors), and the
  // bidirectional driver (start anchors, end anchors).
  bool ConsistentAssignment(const std::vector<NodeId>& start_nodes,
                            const std::vector<NodeId>& end_nodes,
                            const std::vector<NodeId>& fixed,
                            std::vector<NodeId>* assignment) const {
    std::vector<NodeId> binding(rq_.query->node_variables().size(), -1);
    // Seed with fixed bindings and anchor assignments.
    for (size_t v = 0; v < fixed.size(); ++v) binding[v] = fixed[v];
    for (int idx : comp_.atom_indices) {
      const ResolvedAtom& atom = rq_.atoms[idx];
      int track = comp_.track_of_path[atom.path];
      NodeId start = start_nodes[track];
      NodeId end = end_nodes[track];
      if (atom.from.is_const) {
        if (atom.from.node != start) return false;
      } else {
        if (binding[atom.from.var] >= 0 && binding[atom.from.var] != start) {
          return false;
        }
        binding[atom.from.var] = start;
      }
      if (atom.to.is_const) {
        if (atom.to.node != end) return false;
      } else {
        if (binding[atom.to.var] >= 0 && binding[atom.to.var] != end) {
          return false;
        }
        binding[atom.to.var] = end;
      }
    }
    assignment->clear();
    for (int v : comp_.vars) assignment->push_back(binding[v]);
    return true;
  }

 private:
  // The direction's view of one compiled relation: forward or reversed
  // transition maps, endpoint sets, and tape masks (state ids coincide).
  struct RelView {
    const std::vector<std::unordered_map<Symbol, std::vector<StateId>>>*
        transitions = nullptr;
    const std::vector<StateId>* initial = nullptr;
    const std::vector<bool>* accepting = nullptr;
    const std::vector<std::vector<uint64_t>>* tape_masks = nullptr;
  };

  bool Accepting(const ProductConfig& c) const {
    for (size_t i = 0; i < comp_.relation_indices.size(); ++i) {
      const std::vector<bool>& accepting = *views_[i].accepting;
      bool ok = false;
      auto&& subset = pool_->Get(c.subset_ids[i]);
      for (StateId s : subset) {
        if (accepting[s]) {
          ok = true;
          break;
        }
      }
      if (!ok) return false;
    }
    return true;
  }

  // Per-tape letter masks of one relation's current subset, OR of the
  // direction's compiled per-state tape masks (out-letters forward,
  // in-letters backward); cached per interned subset id. The cache is
  // lane-private even when the pool is shared (ids are global, mask
  // values are a pure function of the id and direction, so same-direction
  // lanes agree; forward and backward contexts are distinct objects, so
  // the caches never mix directions).
  const std::vector<uint64_t>& SubsetMasks(size_t i, int subset_id) {
    auto& cache = subset_masks_[i];
    if (subset_id >= static_cast<int>(cache.size())) {
      cache.resize(subset_id + 1);
    }
    std::vector<uint64_t>& entry = cache[subset_id];
    if (entry.empty()) {
      const std::vector<std::vector<uint64_t>>& tape_masks =
          *views_[i].tape_masks;
      entry.assign(rel_local_tracks_[i].size(), 0);
      auto&& subset = pool_->Get(subset_id);
      for (StateId s : subset) {
        for (size_t tape = 0; tape < entry.size(); ++tape) {
          entry[tape] |= tape_masks[s][tape];
        }
      }
    }
    return entry;
  }

  // live_[t]: base letters track t may read without killing a relation —
  // the intersection, over relations reading t, of the letters their
  // current state-sets accept on that tape (Thm 6.1's restriction).
  void ComputeLiveMasks(const ProductConfig& current) {
    live_.assign(comp_.tracks.size(), ~0ULL);
    if (index_ == nullptr || !use_masks_) return;
    for (size_t i = 0; i < comp_.relation_indices.size(); ++i) {
      const std::vector<uint64_t>& masks =
          SubsetMasks(i, current.subset_ids[i]);
      const std::vector<int>& local = rel_local_tracks_[i];
      for (size_t tape = 0; tape < local.size(); ++tape) {
        live_[local[tape]] &= masks[tape];
      }
    }
  }

  template <typename Callback>
  void ExpandRec(int t, int total, const ProductConfig& current,
                 std::vector<Symbol>* letter, std::vector<NodeId>* next_nodes,
                 const GraphDb& graph, const Callback& emit) {
    if (t == total) {
      // Successor padmask. Forward, a bit marks a track that PADDED this
      // step (its word ended; only pads may follow). Backward, a bit
      // marks a track that has STARTED consuming (a real letter was read
      // at or after this position; only real letters may precede) — the
      // per-track options below enforce the matching monotonicity, so in
      // both directions the bit is a pure function of this step's letter.
      uint32_t new_padmask = 0;
      bool all_pad = true;
      for (int i = 0; i < total; ++i) {
        const bool padded = (*letter)[i] == kPad;
        if (padded != backward_) new_padmask |= (1u << i);
        if (!padded) all_pad = false;
      }
      if (all_pad) return;
      // Advance relations on their projected letters.
      ProductConfig next;
      next.padmask = new_padmask;
      next.nodes = *next_nodes;
      next.subset_ids.resize(comp_.relation_indices.size());
      for (size_t i = 0; i < comp_.relation_indices.size(); ++i) {
        const auto& transitions = *views_[i].transitions;
        const std::vector<int>& local = rel_local_tracks_[i];
        TupleLetter proj(local.size());
        bool rel_all_pad = true;
        for (size_t tape = 0; tape < local.size(); ++tape) {
          proj[tape] = (*letter)[local[tape]];
          if (proj[tape] != kPad) rel_all_pad = false;
        }
        if (rel_all_pad) {
          // The relation's word does not cover this position (it has
          // ended forward / not yet begun backward); subset frozen.
          next.subset_ids[i] = current.subset_ids[i];
          continue;
        }
        Symbol id = rel_alphabets_[i].Encode(proj);
        std::vector<StateId> advanced;
        {
          auto&& subset = pool_->Get(current.subset_ids[i]);
          for (StateId s : subset) {
            auto it = transitions[s].find(id);
            if (it != transitions[s].end()) {
              advanced.insert(advanced.end(), it->second.begin(),
                              it->second.end());
            }
          }
        }
        if (advanced.empty()) return;  // prune
        std::sort(advanced.begin(), advanced.end());
        advanced.erase(std::unique(advanced.begin(), advanced.end()),
                       advanced.end());
        next.subset_ids[i] = pool_->Intern(std::move(advanced));
      }
      emit(std::move(next), *letter);
      return;
    }
    // Option 1: pad. Forward: always allowed (a track may end anywhere,
    // and must keep padding once padded). Backward: allowed only while
    // the track is still inside its trailing-pad region (bit unset) —
    // once it has consumed a real letter, pads may no longer precede.
    if (!backward_ || !(current.padmask & (1u << t))) {
      (*letter)[t] = kPad;
      (*next_nodes)[t] = current.nodes[t];
      ExpandRec(t + 1, total, current, letter, next_nodes, graph, emit);
    }
    // Option 2: follow an edge — the track's gathered candidates (empty
    // when the configuration forbids edges on this track; the direction
    // rules live in GatherCandidates). A dense flat loop: the inner
    // tracks of the cross-product iterate contiguous pairs instead of
    // re-filtering CSR slices once per outer combination.
    for (const auto& [label, to] : scratch_cands_[t]) {
      (*letter)[t] = label;
      (*next_nodes)[t] = to;
      ExpandRec(t + 1, total, current, letter, next_nodes, graph, emit);
    }
  }

  // Gathers track t's edge options for `current` into scratch_cands_[t],
  // once per configuration: live_[t] and the padmask depend only on the
  // configuration — never on the partial letter assignment — so the
  // (label, target) candidates of every track can be materialized before
  // the cross-track recursion. Edges are allowed forward only while the
  // track has not padded (bit unset); backward always (a started track
  // must keep reading; an unstarted one may start here). Gathering
  // follows the exact iteration order of the former in-place paths, so
  // the emission sequence — and with it sink recording and every
  // counter — is byte-identical:
  //   * masked small rows (degree <= 16): linear filter of the CSR row,
  //     ascending (label, target) — a binary search per label costs more
  //     than reading a handful of edges;
  //   * masked large rows: live letters in ascending label order via
  //     countr_zero, each label's slice ascending by target;
  //   * unmasked index rows: the full CSR row;
  //   * no index: GraphDb adjacency in stored order (legacy path).
  void GatherCandidates(int t, const ProductConfig& current,
                        const GraphDb& graph) {
    std::vector<std::pair<Symbol, NodeId>>& cands = scratch_cands_[t];
    cands.clear();
    if (!backward_ && (current.padmask & (1u << t)) != 0) return;
    const NodeId v = current.nodes[t];
    if (index_ != nullptr && use_masks_) {
      const uint64_t node_mask =
          backward_ ? index_->InLabelMask(v) : index_->OutLabelMask(v);
      const uint64_t mask = live_[t] & node_mask;
      const int degree =
          backward_ ? index_->in_degree(v) : index_->out_degree(v);
      if (mask == 0) {
        // No live letter at this node: the track can only pad.
      } else if (degree <= 16) {
        std::span<const Symbol> labels =
            backward_ ? index_->InLabels(v) : index_->OutLabels(v);
        std::span<const NodeId> targets =
            backward_ ? index_->InSources(v) : index_->OutTargets(v);
        for (size_t i = 0; i < labels.size(); ++i) {
          if (((mask >> std::min<Symbol>(labels[i], 63)) & 1) == 0) {
            continue;
          }
          cands.emplace_back(labels[i], targets[i]);
        }
      } else {
        uint64_t bits = mask;
        while (bits != 0) {
          Symbol label = static_cast<Symbol>(std::countr_zero(bits));
          bits &= bits - 1;
          std::span<const NodeId> slice =
              backward_ ? index_->In(v, label) : index_->Out(v, label);
          for (NodeId to : slice) cands.emplace_back(label, to);
        }
      }
    } else if (index_ != nullptr) {
      std::span<const Symbol> labels =
          backward_ ? index_->InLabels(v) : index_->OutLabels(v);
      std::span<const NodeId> targets =
          backward_ ? index_->InSources(v) : index_->OutTargets(v);
      for (size_t i = 0; i < labels.size(); ++i) {
        cands.emplace_back(labels[i], targets[i]);
      }
    } else {
      const auto& adjacency = backward_ ? graph.In(v) : graph.Out(v);
      for (const auto& [label, to] : adjacency) {
        cands.emplace_back(label, to);
      }
    }
  }

  const ResolvedQuery& rq_;
  const ComponentSpec& comp_;
  const EvalOptions& options_;
  Pool* pool_;
  const GraphIndex* index_;  // null = scan GraphDb adjacency (legacy path)
  bool use_masks_;           // base alphabet fits the 64-bit letter masks
  bool backward_;            // this context runs the reversed-tape mirror
  std::vector<std::vector<int>> rel_local_tracks_;
  std::vector<TupleAlphabet> rel_alphabets_;
  std::vector<RelView> views_;  // per component relation, per direction_
  // Per component relation: per-tape letter masks keyed by subset id.
  std::vector<std::vector<std::vector<uint64_t>>> subset_masks_;
  std::vector<uint64_t> live_;  // per-track live letters, per expansion
  // Per-expansion scratch (hoisted out of the per-config hot loop).
  std::vector<Symbol> scratch_letter_;
  std::vector<NodeId> scratch_next_nodes_;
  // Per-track edge candidates of the configuration being expanded.
  std::vector<std::vector<std::pair<Symbol, NodeId>>> scratch_cands_;
  uint64_t visited_configs_ = 0;
  uint64_t frontier_expansions_ = 0;
  uint64_t arcs_explored_ = 0;
};

using ComponentSearch = ComponentSearchT<SubsetPool>;

// Derives one anchor node per track from `binding` — the from-terms when
// `from_side`, the to-terms otherwise; false when repeated tracks have
// disagreeing terms on that side (no search needed).
bool DeriveAnchorNodes(const ResolvedQuery& rq, const ComponentSpec& comp,
                       const std::vector<NodeId>& binding, bool from_side,
                       std::vector<NodeId>* anchor_nodes) {
  anchor_nodes->assign(comp.tracks.size(), -1);
  for (int idx : comp.atom_indices) {
    const ResolvedAtom& atom = rq.atoms[idx];
    const ResolvedTerm& term = from_side ? atom.from : atom.to;
    int track = comp.track_of_path[atom.path];
    NodeId v = term.is_const ? term.node : binding[term.var];
    if ((*anchor_nodes)[track] < 0) {
      (*anchor_nodes)[track] = v;
    } else if ((*anchor_nodes)[track] != v) {
      return false;  // inconsistent repetition anchor
    }
  }
  return true;
}

bool DeriveStartNodes(const ResolvedQuery& rq, const ComponentSpec& comp,
                      const std::vector<NodeId>& binding,
                      std::vector<NodeId>* start_nodes) {
  return DeriveAnchorNodes(rq, comp, binding, /*from_side=*/true,
                           start_nodes);
}

bool DeriveEndNodes(const ResolvedQuery& rq, const ComponentSpec& comp,
                    const std::vector<NodeId>& binding,
                    std::vector<NodeId>* end_nodes) {
  return DeriveAnchorNodes(rq, comp, binding, /*from_side=*/false,
                           end_nodes);
}

// Enumerates anchor assignments (start vars for forward contexts, end
// vars for backward ones; respecting the bound vars of `fixed`) and runs
// one serial product BFS per assignment — the ProductExpand body for one
// overlay of fixed bindings. `start_assignments` counts enumerated
// assignments (merged into EvalStats at the operator barrier).
Status EnumerateAndRun(const ResolvedQuery& rq, ComponentSearch& search,
                       const std::vector<NodeId>& fixed,
                       uint64_t* start_assignments,
                       std::set<std::vector<NodeId>>* results,
                       ProductGraphSink* sink,
                       std::atomic<uint64_t>* configs_budget,
                       CancellationToken* cancel) {
  const ComponentSpec& comp = search.component();
  const GraphDb& graph = *rq.graph;
  const bool backward = search.backward();

  std::vector<NodeId> binding(rq.query->node_variables().size(), -1);
  for (size_t v = 0; v < fixed.size(); ++v) binding[v] = fixed[v];

  const std::vector<int>& anchor_vars =
      backward ? comp.end_vars : comp.start_vars;

  std::function<Status(size_t)> enumerate = [&](size_t i) -> Status {
    if (cancel != nullptr && cancel->cancelled()) {
      return Status::Cancelled(kCancelledMessage);
    }
    if (i == anchor_vars.size()) {
      std::vector<NodeId> anchor_nodes;
      if (!DeriveAnchorNodes(rq, comp, binding, /*from_side=*/!backward,
                             &anchor_nodes)) {
        return Status::OK();
      }
      ++*start_assignments;
      return search.Run(anchor_nodes, binding, results, sink, configs_budget,
                        cancel);
    }
    int var = anchor_vars[i];
    if (binding[var] >= 0) return enumerate(i + 1);
    // Seed from high-degree nodes first (GraphIndex permutation; the
    // in-degree-descending one for backward searches): under early
    // termination the densest frontiers reach answers soonest. The
    // answer set is order-independent (results is a set).
    if (rq.index != nullptr) {
      const std::vector<NodeId>& order = backward
                                             ? rq.index->NodesByInDegree()
                                             : rq.index->NodesByDegree();
      for (NodeId v : order) {
        binding[var] = v;
        Status st = enumerate(i + 1);
        if (!st.ok()) return st;
      }
    } else {
      for (NodeId v = 0; v < graph.num_nodes(); ++v) {
        binding[var] = v;
        Status st = enumerate(i + 1);
        if (!st.ok()) return st;
      }
    }
    binding[var] = -1;
    return Status::OK();
  };
  return enumerate(0);
}

// Prefers hard errors over the Cancelled echoes other lanes report after
// one of them tripped the shared token.
Status CombineLaneStatuses(const std::vector<Status>& statuses) {
  for (const Status& s : statuses) {
    if (!s.ok() && s.code() != StatusCode::kCancelled) return s;
  }
  for (const Status& s : statuses) {
    if (!s.ok()) return s;
  }
  return Status::OK();
}

// Per-lane state of the morsel-driven ProductExpand drivers.
struct ExpandLane {
  std::unique_ptr<SubsetPool> pool;
  std::unique_ptr<ComponentSearch> search;
  std::set<std::vector<NodeId>> results;
  uint64_t start_assignments = 0;
  uint64_t meet_checks = 0;  // bidirectional rows only
  uint64_t visited_configs = 0;
  uint64_t frontier_expansions = 0;
  uint64_t arcs_explored = 0;
  Status status;

  ComponentSearch& Search(const ResolvedQuery& rq, const ComponentSpec& comp,
                          const EvalOptions& options, bool backward) {
    if (search == nullptr) {
      pool = std::make_unique<SubsetPool>();
      search = std::make_unique<ComponentSearch>(rq, comp, options,
                                                 pool.get(), backward);
    }
    return *search;
  }
};

// Barrier-point merge of the morsel drivers: lane results fold into the
// global set in canonical lane order, counters sum into the operator
// entry, and the first hard lane error (or a Cancelled echo) wins. Lanes
// that merely OBSERVED the tripped token exit without recording a
// status, so an externally killed run whose lanes all bailed that way
// still reports Cancelled instead of an empty success.
Status MergeExpandLanes(std::vector<ExpandLane>& lanes,
                        const CancellationToken* cancel, EvalStats& stats,
                        OperatorStats& op,
                        std::set<std::vector<NodeId>>* results) {
  std::vector<Status> statuses;
  for (ExpandLane& lane : lanes) {
    statuses.push_back(lane.status);
    stats.start_assignments += lane.start_assignments;
    op.meet_checks += lane.meet_checks;
    op.visited_configs += lane.visited_configs;
    op.frontier_expansions += lane.frontier_expansions;
    stats.arcs_explored += lane.arcs_explored;
    if (lane.search != nullptr) {
      op.visited_configs += lane.search->visited_configs();
      op.frontier_expansions += lane.search->frontier_expansions();
      stats.arcs_explored += lane.search->arcs_explored();
    }
    if (results != nullptr) {
      results->insert(lane.results.begin(), lane.results.end());
    }
  }
  Status combined = CombineLaneStatuses(statuses);
  if (combined.ok() && cancel != nullptr && cancel->cancelled()) {
    return Status::Cancelled(kCancelledMessage);
  }
  return combined;
}

// Applies one seed row on top of `fixed`; false when they disagree.
bool OverlaySeedRow(const BindingTable& seeds, size_t row,
                    std::vector<NodeId>* overlay) {
  for (size_t i = 0; i < seeds.vars.size(); ++i) {
    int var = seeds.vars[i];
    NodeId v = seeds.rows[row][i];
    if ((*overlay)[var] >= 0 && (*overlay)[var] != v) return false;
    (*overlay)[var] = v;
  }
  return true;
}

// Counters one bidirectional search reports back to its caller (merged
// into the operator entry at the barrier).
struct BidirCounters {
  uint64_t visited_configs = 0;
  uint64_t frontier_expansions = 0;
  uint64_t arcs_explored = 0;
  uint64_t meet_checks = 0;
};

// Meet-in-the-middle search of ONE fully anchored component: a forward
// half-search from the start anchors and a backward half-search from the
// end anchors run level-synchronously, each step expanding whichever
// side currently has the smaller frontier (frontier-size alternation).
// Every newly discovered configuration probes the opposite side's meet
// table — configurations keyed by their packed node tuple — and a meet
// is a forward/backward pair on the same nodes whose padmasks are
// compatible (no track both ended forward and started backward) and
// whose state-subsets intersect for every relation: the forward prefix
// reaches a state from which the backward suffix accepts. Since the
// component is fully anchored its satisfying assignment is unique, so
// the search stops at the first meet (after finishing the level, keeping
// every counter thread-count-independent); either side exhausting
// without a meet proves the assignment unsatisfiable, because an
// accepting word of length m meets at every split 0..m — including the
// opposite side's initial configuration.
//
// Lanes expand the chosen level's frontier morsel-wise against the
// side's sharded visited table; the opposite side's meet table is frozen
// during the step, so probes are lock-free reads. Both directions intern
// subsets in one shared pool over the same state id space, which is what
// makes the per-relation intersection test meaningful.
Status BidirectionalProductSearch(const ResolvedQuery& rq,
                                  const ComponentSpec& comp,
                                  const EvalOptions& options, int num_lanes,
                                  const std::vector<NodeId>& start_nodes,
                                  const std::vector<NodeId>& end_nodes,
                                  const std::vector<NodeId>& fixed,
                                  std::atomic<uint64_t>* configs_budget,
                                  CancellationToken* cancel,
                                  BidirCounters* counters,
                                  std::set<std::vector<NodeId>>* results) {
  const int lanes = std::max(num_lanes, 1);
  SharedSubsetPool pool;
  using Ctx = ComponentSearchT<SharedSubsetPool>;
  std::vector<std::unique_ptr<Ctx>> fwd_ctxs, bwd_ctxs;
  for (int l = 0; l < lanes; ++l) {
    fwd_ctxs.push_back(
        std::make_unique<Ctx>(rq, comp, options, &pool, /*backward=*/false));
    bwd_ctxs.push_back(
        std::make_unique<Ctx>(rq, comp, options, &pool, /*backward=*/true));
  }

  // The anchored component has exactly one candidate assignment; an
  // inconsistent anchor pair can never bind, so no search runs.
  std::vector<NodeId> assignment;
  if (!fwd_ctxs[0]->ConsistentAssignment(start_nodes, end_nodes, fixed,
                                         &assignment)) {
    return Status::OK();
  }

  ProductConfig fwd_init, bwd_init;
  if (!fwd_ctxs[0]->MakeInitialConfig(start_nodes, &fwd_init) ||
      !bwd_ctxs[0]->MakeInitialConfig(end_nodes, &bwd_init)) {
    return Status::OK();
  }

  ConfigCodec codec(static_cast<int>(comp.tracks.size()),
                    static_cast<int>(comp.relation_indices.size()),
                    rq.graph->num_nodes());
  struct Side {
    HybridVisitedTable visited;
    // Meet table: packed node-tuple hash -> configs discovered here.
    std::unordered_map<uint64_t, std::vector<ProductConfig>> by_nodes;
    std::vector<ProductConfig> frontier;
    Side(const ConfigCodec& codec, int lanes) : visited(codec, lanes) {}
  };
  Side fwd(codec, lanes), bwd(codec, lanes);

  auto node_key = [](const ProductConfig& c) {
    uint64_t h = 1469598103934665603ULL;
    for (NodeId v : c.nodes) {
      h ^= static_cast<uint32_t>(v);
      h *= 1099511628211ULL;
    }
    return h;
  };

  // Forward config `f` and backward config `b` meet iff they sit on the
  // same nodes, no track has both ended (forward pad bit) and started
  // consuming backward (backward bit), and every relation's subsets
  // intersect (sorted two-pointer test over the shared pool's vectors).
  auto meets = [&](const ProductConfig& f, const ProductConfig& b) {
    if (f.nodes != b.nodes) return false;
    if ((f.padmask & b.padmask) != 0) return false;
    for (size_t i = 0; i < f.subset_ids.size(); ++i) {
      auto&& s_fwd = pool.Get(f.subset_ids[i]);
      auto&& s_bwd = pool.Get(b.subset_ids[i]);
      size_t a = 0, b2 = 0;
      bool hit = false;
      while (a < s_fwd.size() && b2 < s_bwd.size()) {
        if (s_fwd[a] < s_bwd[b2]) {
          ++a;
        } else if (s_fwd[a] > s_bwd[b2]) {
          ++b2;
        } else {
          hit = true;
          break;
        }
      }
      if (!hit) return false;
    }
    return true;
  };

  std::atomic<bool> found{false};
  std::atomic<uint64_t> meet_checks{0};

  // Probes one newly discovered config against the OPPOSITE side's meet
  // table (frozen while this side expands). The whole bucket is scanned —
  // no early break — so meet_checks depends only on the level's config
  // set, never on lane scheduling.
  auto probe = [&](const ProductConfig& c, bool c_is_fwd, const Side& other) {
    auto it = other.by_nodes.find(node_key(c));
    if (it == other.by_nodes.end()) return;
    for (const ProductConfig& o : it->second) {
      meet_checks.fetch_add(1, std::memory_order_relaxed);
      const ProductConfig& f = c_is_fwd ? c : o;
      const ProductConfig& b = c_is_fwd ? o : c;
      if (meets(f, b)) found.store(true, std::memory_order_relaxed);
    }
  };

  auto register_config = [&](Side& side, ProductConfig&& c) {
    side.by_nodes[node_key(c)].push_back(c);
    side.frontier.push_back(std::move(c));
  };

  // Seed both sides; the forward init probing the backward init covers
  // the split-at-0 case (all-ε words: start == end anchors and every
  // relation accepting an initial state).
  fwd.visited.Insert(fwd_init);
  bwd.visited.Insert(bwd_init);
  register_config(bwd, std::move(bwd_init));
  probe(fwd_init, /*c_is_fwd=*/true, bwd);
  register_config(fwd, std::move(fwd_init));

  Status status = Status::OK();
  while (!found.load(std::memory_order_relaxed) && !fwd.frontier.empty() &&
         !bwd.frontier.empty()) {
    const bool step_fwd = fwd.frontier.size() <= bwd.frontier.size();
    Side& side = step_fwd ? fwd : bwd;
    Side& other = step_fwd ? bwd : fwd;
    auto& ctxs = step_fwd ? fwd_ctxs : bwd_ctxs;
    const std::vector<NodeId>& anchors = step_fwd ? start_nodes : end_nodes;

    const size_t n = side.frontier.size();
    const size_t grain = AdaptiveGrain(n, lanes);
    std::vector<std::vector<ProductConfig>> slots((n + grain - 1) / grain);
    // Configs the visited table bounced at its occupancy gate; retried in
    // the serial phase after the barrier grows the table.
    std::vector<std::vector<ProductConfig>> deferred(lanes);
    std::atomic<bool> failed{false};
    std::vector<Status> lane_statuses(lanes);
    ParallelMorsels(
        lanes, n, grain, [&](size_t begin, size_t end, int lane_id) {
          Ctx& ctx = *ctxs[lane_id];
          std::vector<ProductConfig>& slot = slots[begin / grain];
          for (size_t i = begin; i < end; ++i) {
            if (failed.load(std::memory_order_relaxed)) return;
            if (cancel != nullptr && cancel->cancelled()) {
              lane_statuses[lane_id] = Status::Cancelled(kCancelledMessage);
              failed.store(true, std::memory_order_relaxed);
              return;
            }
            if (configs_budget->fetch_add(1, std::memory_order_relaxed) + 1 >
                options.max_configs) {
              lane_statuses[lane_id] = Status::ResourceExhausted(
                  "product search exceeded max_configs=" +
                  std::to_string(options.max_configs));
              failed.store(true, std::memory_order_relaxed);
              if (cancel != nullptr) cancel->Cancel();
              return;
            }
            bool accepted = false;
            ctx.ProcessConfig(
                side.frontier[i], anchors, fixed, /*results=*/nullptr,
                &accepted,
                [&](ProductConfig next, const std::vector<Symbol>& letters) {
                  (void)letters;
                  switch (side.visited.Insert(next)) {
                    case VisitedInsert::kNew:
                      probe(next, step_fwd, other);
                      slot.push_back(std::move(next));
                      break;
                    case VisitedInsert::kDeferred:
                      deferred[lane_id].push_back(std::move(next));
                      break;
                    case VisitedInsert::kPresent:
                      break;
                  }
                });
            (void)accepted;
          }
        });
    status = CombineLaneStatuses(lane_statuses);
    if (!status.ok()) break;
    // Serial phase: register the level's discoveries (meet table + next
    // frontier) in slot order, then grow the visited table and retry the
    // deferred configs — a deferral never inserted, so the retry either
    // claims the config (probed and registered exactly like a direct
    // claim; the opposite meet table is still frozen) or finds another
    // lane already claimed it. Exactly-once processing holds either way.
    side.frontier.clear();
    for (std::vector<ProductConfig>& slot : slots) {
      for (ProductConfig& c : slot) register_config(side, std::move(c));
    }
    uint64_t num_deferred = 0;
    for (const auto& d : deferred) num_deferred += d.size();
    side.visited.MaintainAtBarrier(num_deferred);
    for (auto& d : deferred) {
      for (ProductConfig& c : d) {
        if (side.visited.Insert(c) == VisitedInsert::kNew) {
          probe(c, step_fwd, other);
          register_config(side, std::move(c));
        }
      }
    }
  }

  for (int l = 0; l < lanes; ++l) {
    counters->frontier_expansions += fwd_ctxs[l]->frontier_expansions() +
                                     bwd_ctxs[l]->frontier_expansions();
    counters->arcs_explored +=
        fwd_ctxs[l]->arcs_explored() + bwd_ctxs[l]->arcs_explored();
  }
  counters->visited_configs += fwd.visited.size() + bwd.visited.size();
  counters->meet_checks += meet_checks.load(std::memory_order_relaxed);
  if (!status.ok()) return status;
  if (found.load(std::memory_order_relaxed) && results != nullptr) {
    results->insert(assignment);
  }
  return Status::OK();
}

// Morsel-parallel ProductExpand over seed rows: lanes claim row morsels
// and run one serial seeded search per row (each lane reuses one search —
// warm subset pools and mask caches across its rows).
Status MorselSeedRowsExpand(const ResolvedQuery& rq,
                            const ComponentSpec& comp,
                            const EvalOptions& options,
                            SearchDirection direction, int num_lanes,
                            const std::vector<NodeId>& fixed,
                            const BindingTable& seeds,
                            std::atomic<uint64_t>* configs_budget,
                            CancellationToken* cancel, EvalStats& stats,
                            OperatorStats& op,
                            std::set<std::vector<NodeId>>* results) {
  std::vector<ExpandLane> lanes(num_lanes);
  std::atomic<bool> failed{false};
  const size_t grain =
      std::max<size_t>(1, seeds.rows.size() / (num_lanes * 8));
  ParallelMorsels(
      num_lanes, seeds.rows.size(), grain,
      [&](size_t begin, size_t end, int lane_id) {
        ExpandLane& lane = lanes[lane_id];
        std::vector<NodeId> overlay;
        for (size_t r = begin; r < end; ++r) {
          if (failed.load(std::memory_order_relaxed) ||
              cancel->cancelled()) {
            return;
          }
          overlay = fixed;
          if (!OverlaySeedRow(seeds, r, &overlay)) continue;
          Status st;
          if (direction == SearchDirection::kBidirectional) {
            // Every endpoint is bound per row: one serial
            // meet-in-the-middle search per seed row.
            std::vector<NodeId> starts, ends;
            if (!DeriveStartNodes(rq, comp, overlay, &starts) ||
                !DeriveEndNodes(rq, comp, overlay, &ends)) {
              continue;
            }
            ++lane.start_assignments;
            BidirCounters counters;
            st = BidirectionalProductSearch(rq, comp, options,
                                            /*num_lanes=*/1, starts, ends,
                                            overlay, configs_budget, cancel,
                                            &counters, &lane.results);
            lane.visited_configs += counters.visited_configs;
            lane.frontier_expansions += counters.frontier_expansions;
            lane.arcs_explored += counters.arcs_explored;
            lane.meet_checks += counters.meet_checks;
          } else {
            ComponentSearch& search = lane.Search(
                rq, comp, options,
                direction == SearchDirection::kBackward);
            st = EnumerateAndRun(rq, search, overlay,
                                 &lane.start_assignments, &lane.results,
                                 nullptr, configs_budget, cancel);
          }
          if (!st.ok()) {
            lane.status = st;
            failed.store(true, std::memory_order_relaxed);
            cancel->Cancel();
            return;
          }
        }
      });
  return MergeExpandLanes(lanes, cancel, stats, op, results);
}

// Morsel-parallel ProductExpand over the first unbound anchor variable
// (start vars forward, end vars backward): the degree-ordered node list
// (in-degree-descending for backward) is split into morsels, and each
// lane pins the variable to its claimed nodes, serially enumerating any
// remaining anchor variables per pin.
Status MorselStartNodesExpand(const ResolvedQuery& rq,
                              const ComponentSpec& comp,
                              const EvalOptions& options,
                              SearchDirection direction, int num_lanes,
                              const std::vector<NodeId>& overlay, int var,
                              std::atomic<uint64_t>* configs_budget,
                              CancellationToken* cancel, EvalStats& stats,
                              OperatorStats& op,
                              std::set<std::vector<NodeId>>* results) {
  const bool backward = direction == SearchDirection::kBackward;
  std::vector<NodeId> order;
  if (rq.index != nullptr) {
    order = backward ? rq.index->NodesByInDegree()
                     : rq.index->NodesByDegree();
  } else {
    order.resize(rq.graph->num_nodes());
    std::iota(order.begin(), order.end(), 0);
  }
  std::vector<ExpandLane> lanes(num_lanes);
  std::atomic<bool> failed{false};
  const size_t grain = std::max<size_t>(1, order.size() / (num_lanes * 8));
  ParallelMorsels(num_lanes, order.size(), grain,
                  [&](size_t begin, size_t end, int lane_id) {
                    ExpandLane& lane = lanes[lane_id];
                    ComponentSearch& search =
                        lane.Search(rq, comp, options, backward);
                    std::vector<NodeId> pinned;
                    for (size_t i = begin; i < end; ++i) {
                      if (failed.load(std::memory_order_relaxed) ||
                          cancel->cancelled()) {
                        return;
                      }
                      pinned = overlay;
                      pinned[var] = order[i];
                      Status st = EnumerateAndRun(
                          rq, search, pinned, &lane.start_assignments,
                          &lane.results, nullptr, configs_budget, cancel);
                      if (!st.ok()) {
                        lane.status = st;
                        failed.store(true, std::memory_order_relaxed);
                        cancel->Cancel();
                        return;
                      }
                    }
                  });
  return MergeExpandLanes(lanes, cancel, stats, op, results);
}

// Level-synchronous shared-frontier expansion of ONE anchored product
// search (anchored on its direction's side: start nodes forward, end
// nodes backward). Each BFS level's frontier is a flat array — packed
// 8-byte config codes when the shape fits one word (the common case:
// cache-friendly, unpacked into a reusable per-lane scratch config),
// whole configurations otherwise — split into contiguous morsels
// (AdaptiveGrain: tiny levels run inline on the caller, large ones give
// each lane a few cache-local ranges). Lanes dedup successors through
// the lock-free HybridVisitedTable — one relaxed CAS per novel config,
// no locks on the hot path — into per-lane outboxes concatenated at the
// level barrier; configs the table bounced at its occupancy gate are
// parked per lane and retried after the barrier grows the table (a
// deferral never inserts, so the retry preserves exactly-once claiming).
//
// Only the claiming lane forwards a config, so every configuration in
// the closure is processed exactly once — which is all the determinism
// contract needs: results fold into std::sets and every reported counter
// (configs, arcs, frontier expansions, visited size) is a sum over the
// closure, so answer tuples and EvalStats are identical at any lane
// count regardless of morsel scheduling.
Status SharedFrontierExpand(const ResolvedQuery& rq,
                            const ComponentSpec& comp,
                            const EvalOptions& options,
                            SearchDirection direction, int num_lanes,
                            const std::vector<NodeId>& anchor_nodes,
                            const std::vector<NodeId>& fixed,
                            std::atomic<uint64_t>* configs_budget,
                            CancellationToken* cancel, EvalStats& stats,
                            OperatorStats& op,
                            std::set<std::vector<NodeId>>* results) {
  const bool backward = direction == SearchDirection::kBackward;
  const int lanes = std::max(num_lanes, 1);
  SharedSubsetPool pool;
  using Ctx = ComponentSearchT<SharedSubsetPool>;
  std::vector<std::unique_ptr<Ctx>> ctxs;
  ctxs.reserve(lanes);
  for (int l = 0; l < lanes; ++l) {
    ctxs.push_back(std::make_unique<Ctx>(rq, comp, options, &pool, backward));
  }
  ProductConfig init;
  if (!ctxs[0]->MakeInitialConfig(anchor_nodes, &init)) return Status::OK();
  ++stats.start_assignments;

  ConfigCodec codec(static_cast<int>(comp.tracks.size()),
                    static_cast<int>(comp.relation_indices.size()),
                    rq.graph->num_nodes());
  HybridVisitedTable visited(codec, lanes);

  // Current level. Subset ids are interned once per distinct state set,
  // so within one run a config is deterministically packable or not —
  // the two arrays partition the frontier consistently across levels.
  std::vector<uint64_t> frontier_packed;
  std::vector<ProductConfig> frontier_generic;
  {
    uint64_t code;
    if (codec.packable && codec.TryPack(init, &code)) {
      visited.InsertPacked(code);
      frontier_packed.push_back(code);
    } else {
      visited.Insert(init);
      frontier_generic.push_back(std::move(init));
    }
  }

  struct FrontierLane {
    std::vector<uint64_t> out_packed;
    std::vector<ProductConfig> out_generic;
    std::vector<uint64_t> deferred;
    ProductConfig scratch;  // unpack target, reused across morsels
    std::set<std::vector<NodeId>> results;
    Status status;
  };
  std::vector<FrontierLane> lane_state(lanes);

  while (!frontier_packed.empty() || !frontier_generic.empty()) {
    const size_t n_packed = frontier_packed.size();
    const size_t total = n_packed + frontier_generic.size();
    std::atomic<bool> failed{false};
    ParallelMorsels(
        lanes, total, AdaptiveGrain(total, lanes),
        [&](size_t begin, size_t end, int lane_id) {
          FrontierLane& lane = lane_state[lane_id];
          Ctx& ctx = *ctxs[lane_id];
          auto emit = [&](ProductConfig next,
                          const std::vector<Symbol>& letters) {
            (void)letters;
            uint64_t code;
            if (codec.packable && codec.TryPack(next, &code)) {
              switch (visited.InsertPacked(code)) {
                case VisitedInsert::kNew:
                  lane.out_packed.push_back(code);
                  break;
                case VisitedInsert::kDeferred:
                  lane.deferred.push_back(code);
                  break;
                case VisitedInsert::kPresent:
                  break;
              }
            } else if (visited.Insert(next) == VisitedInsert::kNew) {
              lane.out_generic.push_back(std::move(next));
            }
          };
          for (size_t i = begin; i < end; ++i) {
            if (failed.load(std::memory_order_relaxed)) return;
            if (cancel->cancelled()) {
              lane.status = Status::Cancelled(kCancelledMessage);
              failed.store(true, std::memory_order_relaxed);
              return;
            }
            if (configs_budget->fetch_add(1, std::memory_order_relaxed) +
                    1 >
                options.max_configs) {
              lane.status = Status::ResourceExhausted(
                  "product search exceeded max_configs=" +
                  std::to_string(options.max_configs));
              cancel->Cancel();
              failed.store(true, std::memory_order_relaxed);
              return;
            }
            const ProductConfig* current;
            if (i < n_packed) {
              codec.Unpack(frontier_packed[i], &lane.scratch);
              current = &lane.scratch;
            } else {
              current = &frontier_generic[i - n_packed];
            }
            bool accepted = false;
            ctx.ProcessConfig(*current, anchor_nodes, fixed, &lane.results,
                              &accepted, emit);
            (void)accepted;
          }
        });
    if (failed.load(std::memory_order_relaxed)) break;

    // Level barrier (single-threaded): grow the visited table past its
    // load target, retry the deferred codes — guaranteed to not defer
    // again — and concatenate the lane outboxes into the next frontier.
    uint64_t num_deferred = 0;
    for (const FrontierLane& lane : lane_state) {
      num_deferred += lane.deferred.size();
    }
    visited.MaintainAtBarrier(num_deferred);
    frontier_packed.clear();
    frontier_generic.clear();
    for (FrontierLane& lane : lane_state) {
      for (uint64_t code : lane.deferred) {
        if (visited.InsertPacked(code) == VisitedInsert::kNew) {
          lane.out_packed.push_back(code);
        }
      }
      lane.deferred.clear();
      frontier_packed.insert(frontier_packed.end(), lane.out_packed.begin(),
                             lane.out_packed.end());
      lane.out_packed.clear();
      for (ProductConfig& c : lane.out_generic) {
        frontier_generic.push_back(std::move(c));
      }
      lane.out_generic.clear();
    }
  }

  std::vector<Status> statuses;
  for (FrontierLane& lane : lane_state) {
    statuses.push_back(lane.status);
    if (results != nullptr) {
      results->insert(lane.results.begin(), lane.results.end());
    }
  }
  for (int l = 0; l < lanes; ++l) {
    op.frontier_expansions += ctxs[l]->frontier_expansions();
    stats.arcs_explored += ctxs[l]->arcs_explored();
  }
  op.visited_configs += visited.size();
  Status combined = CombineLaneStatuses(statuses);
  if (combined.ok() && cancel->cancelled()) {
    return Status::Cancelled(kCancelledMessage);
  }
  return combined;
}

// ReachabilityScan leaf: single path atom, all-unary languages. One
// intersected-NFA BFS per anchor (restricted to seeded sources/targets
// when available) instead of the subset-tracking product search; the
// per-anchor BFSes run morsel-parallel on `num_threads` lanes. The
// direction decides which side anchors the BFSes: forward scans from
// sources, backward scans from targets through the reversed NFA over
// in-edges, and bidirectional runs one meet-in-the-middle reachability
// probe per (source, target) pair.
Status ScanComponentOp(const ResolvedQuery& rq, const ComponentSpec& comp,
                       const EvalOptions& options,
                       const std::vector<NodeId>& fixed,
                       const BindingTable* seeds, SearchDirection direction,
                       int num_threads, CancellationToken* cancel,
                       EvalStats& stats, OperatorStats& op,
                       std::set<std::vector<NodeId>>* results) {
  const ResolvedAtom& atom = rq.atoms[comp.atom_indices[0]];
  std::vector<const RegularRelation*> languages;
  for (int r : comp.relation_indices) {
    languages.push_back(rq.relations()[r].relation);
  }

  // Endpoint restrictions: constant > fixed > seeded column > all nodes.
  auto bound_of = [&](const ResolvedTerm& term) -> NodeId {
    if (term.is_const) return term.node;
    return fixed[term.var];
  };
  auto collect = [&](const ResolvedTerm& term, std::vector<NodeId>* out) {
    NodeId bound = bound_of(term);
    if (bound >= 0) {
      out->push_back(bound);
      return true;
    }
    int seed_col = (seeds != nullptr && !term.is_const)
                       ? seeds->ColumnOf(term.var)
                       : -1;
    if (seed_col < 0) return false;
    std::set<NodeId> distinct;
    for (const std::vector<NodeId>& row : seeds->rows) {
      distinct.insert(row[seed_col]);
    }
    out->assign(distinct.begin(), distinct.end());
    return true;
  };
  // Only the sides the direction anchors are materialized (a forward
  // scan never reads the target set; distilling it from a large seed
  // table would be pure overhead). A bidirectional request collects
  // both — it may degrade to either side below.
  std::vector<NodeId> sources, targets;
  const std::vector<NodeId>* source_ptr = nullptr;
  const std::vector<NodeId>* target_ptr = nullptr;
  if (direction != SearchDirection::kBackward) {
    source_ptr = collect(atom.from, &sources) ? &sources : nullptr;
  }
  if (direction != SearchDirection::kForward) {
    target_ptr = collect(atom.to, &targets) ? &targets : nullptr;
  }

  // Degrade infeasible or unprofitable requests: bidirectional needs
  // both endpoint sets, and a pairwise meet probe pays a per-pair
  // (state × node) bitmap reset, so it only beats a one-sided sweep
  // when the anchor product is tiny (the constant-anchored case the
  // planner targets). Larger seeded sets run the sweep anchored on the
  // smaller side instead; a backward scan is always feasible (all nodes
  // anchor when no target restriction exists).
  if (direction == SearchDirection::kBidirectional) {
    if (source_ptr == nullptr || target_ptr == nullptr) {
      direction = target_ptr != nullptr ? SearchDirection::kBackward
                                        : SearchDirection::kForward;
    } else if (sources.size() * targets.size() > 4) {
      direction = targets.size() < sources.size()
                      ? SearchDirection::kBackward
                      : SearchDirection::kForward;
    }
  }
  op.direction = SearchDirectionName(direction);

  ReachabilityScanStats scan_stats;
  uint64_t meet_checks = 0;
  std::vector<std::pair<NodeId, NodeId>> pairs = ReachabilityPairsDirected(
      *rq.graph, languages, rq.index.get(), source_ptr, target_ptr,
      direction, &scan_stats, &meet_checks, num_threads, cancel,
      options.deterministic);
  if (cancel != nullptr && cancel->cancelled()) {
    return Status::Cancelled(kCancelledMessage);
  }
  op.frontier_expansions += scan_stats.frontier_expansions;
  op.visited_configs += scan_stats.visited_states;
  op.meet_checks += meet_checks;
  stats.arcs_explored += scan_stats.frontier_expansions;
  switch (direction) {
    case SearchDirection::kBidirectional:
      stats.start_assignments += sources.size() * targets.size();
      break;
    case SearchDirection::kBackward:
      stats.start_assignments +=
          target_ptr != nullptr ? targets.size() : rq.graph->num_nodes();
      break;
    default:
      stats.start_assignments +=
          source_ptr != nullptr ? sources.size() : rq.graph->num_nodes();
      break;
  }
  // Charge visited (language state, node) pairs to the product budget —
  // the same states a product search over this component would have
  // interned — so the ReachabilityScan routing preserves the caller's
  // max_configs resource guard. (The scan itself is polynomial, so the
  // check after the fact bounds the query, not an explosion.)
  stats.configs_explored += scan_stats.visited_states;
  if (stats.configs_explored > options.max_configs) {
    return Status::ResourceExhausted(
        "product search exceeded max_configs=" +
        std::to_string(options.max_configs));
  }

  // Seed-row compatibility set (projection of seed rows onto comp.vars).
  std::set<std::vector<NodeId>> seed_set;
  std::vector<int> seed_cols;
  if (seeds != nullptr) {
    for (int v : seeds->vars) seed_cols.push_back(v);
    for (const std::vector<NodeId>& row : seeds->rows) seed_set.insert(row);
  }

  for (const auto& [u, v] : pairs) {
    if (atom.from.is_const && u != atom.from.node) continue;
    if (atom.to.is_const && v != atom.to.node) continue;
    std::vector<NodeId> binding(rq.query->node_variables().size(), -1);
    for (size_t i = 0; i < fixed.size(); ++i) binding[i] = fixed[i];
    bool ok = true;
    if (!atom.from.is_const) {
      if (binding[atom.from.var] >= 0 && binding[atom.from.var] != u) {
        ok = false;
      }
      binding[atom.from.var] = u;
    }
    if (ok && !atom.to.is_const) {
      if (binding[atom.to.var] >= 0 && binding[atom.to.var] != v) ok = false;
      if (ok) binding[atom.to.var] = v;
    }
    if (!ok) continue;
    std::vector<NodeId> assignment;
    for (int var : comp.vars) assignment.push_back(binding[var]);
    if (seeds != nullptr) {
      std::vector<NodeId> key;
      for (int var : seed_cols) key.push_back(binding[var]);
      if (seed_set.find(key) == seed_set.end()) continue;
    }
    results->insert(std::move(assignment));
  }
  return Status::OK();
}

std::string ComponentDetail(const ComponentSpec& comp) {
  std::string detail = "atoms";
  for (int idx : comp.atom_indices) detail += " " + std::to_string(idx);
  return detail;
}

// True when every variable of `vars` is pinned by the overlay sources a
// leaf execution will see: the fixed bindings, or a seed column.
bool VarsBound(const std::vector<int>& vars, const std::vector<NodeId>& fixed,
               const BindingTable* seeds) {
  for (int v : vars) {
    if (fixed[v] >= 0) continue;
    if (seeds != nullptr && seeds->ColumnOf(v) >= 0) continue;
    return false;
  }
  return true;
}

// Resolves the direction a ProductExpand leaf actually runs: the
// EvalOptions override beats the planner's per-leaf choice, graph
// recording pins forward (the sink's discovery array is a forward
// product automaton), and an infeasible bidirectional request (some
// endpoint unbound) degrades to backward when the end side is bound,
// else forward.
SearchDirection ResolveLeafDirection(SearchDirection planned,
                                     const EvalOptions& options,
                                     const ComponentSpec& comp,
                                     const std::vector<NodeId>& fixed,
                                     const BindingTable* seeds,
                                     bool graph_sink_present) {
  if (graph_sink_present) return SearchDirection::kForward;
  SearchDirection dir = options.direction != SearchDirection::kAuto
                            ? options.direction
                            : planned;
  if (dir == SearchDirection::kAuto) dir = SearchDirection::kForward;
  if (dir == SearchDirection::kBidirectional &&
      !(VarsBound(comp.start_vars, fixed, seeds) &&
        VarsBound(comp.end_vars, fixed, seeds))) {
    dir = VarsBound(comp.end_vars, fixed, seeds)
              ? SearchDirection::kBackward
              : SearchDirection::kForward;
  }
  // A bidirectional run pays per-search setup (shared subset pool, two
  // sharded visited tables, meet tables), and the seeded form replays
  // one run PER ROW; with a large seed table those constants dominate
  // the tiny per-row searches, so degrade to the warm per-lane forward
  // machinery (the ProductExpand mirror of ScanComponentOp's
  // anchor-product degrade).
  if (dir == SearchDirection::kBidirectional && seeds != nullptr &&
      seeds->rows.size() > 128) {
    dir = SearchDirection::kForward;
  }
  return dir;
}

}  // namespace

Status ExecuteComponentOp(const ResolvedQuery& rq, const ComponentSpec& comp,
                          const EvalOptions& options,
                          const std::vector<NodeId>& fixed,
                          const BindingTable* seeds, double est_rows,
                          SearchDirection direction, int num_threads,
                          EvalStats& stats,
                          std::set<std::vector<NodeId>>* results,
                          ProductGraphSink* graph_sink) {
  OperatorStats op;
  op.detail = ComponentDetail(comp);
  op.est_rows = est_rows;
  op.rows_in = (seeds != nullptr) ? seeds->rows.size() : 0;
  const size_t before = (results != nullptr) ? results->size() : 0;

  // Graph recording is single-consumer (the sink indexes a global
  // discovery array), so it pins the serial path.
  int lanes = std::max(num_threads, 1);
  if (graph_sink != nullptr) lanes = 1;

  const SearchDirection dir = ResolveLeafDirection(
      direction, options, comp, fixed, seeds, graph_sink != nullptr);

  // One cancellation token per operator run: the caller's (so external
  // kills and sink early-termination fan out to every lane), or a local
  // one so lane errors still cancel their siblings.
  CancellationToken local_cancel;
  CancellationToken* cancel = options.cancellation.get();
  if (cancel == nullptr && lanes > 1) cancel = &local_cancel;

  // The execution-wide popped-configuration budget: seeded from the
  // stats accumulated so far (scans charge it too), written back after.
  std::atomic<uint64_t> configs_budget{stats.configs_explored};

  Status status;
  if (results != nullptr && graph_sink == nullptr &&
      IsReachabilityScanComponent(rq, comp)) {
    op.op = "ReachabilityScan";
    op.threads = lanes;
    status = ScanComponentOp(rq, comp, options, fixed, seeds, dir, lanes,
                             cancel, stats, op, results);
  } else {
    op.op = "ProductExpand";
    op.direction = SearchDirectionName(dir);
    const bool seeded = seeds != nullptr && !seeds->vars.empty();
    const bool backward = dir == SearchDirection::kBackward;
    if (dir == SearchDirection::kBidirectional && lanes <= 1) {
      // Serial meet-in-the-middle: one anchored bidirectional search per
      // overlay (every endpoint is bound, so each overlay has a unique
      // candidate assignment).
      op.threads = 1;
      uint64_t start_assignments = 0;
      BidirCounters counters;
      auto run_bidir = [&](const std::vector<NodeId>& overlay) -> Status {
        std::vector<NodeId> starts, ends;
        if (!DeriveStartNodes(rq, comp, overlay, &starts) ||
            !DeriveEndNodes(rq, comp, overlay, &ends)) {
          return Status::OK();
        }
        ++start_assignments;
        return BidirectionalProductSearch(rq, comp, options, /*num_lanes=*/1,
                                          starts, ends, overlay,
                                          &configs_budget, cancel, &counters,
                                          results);
      };
      if (seeded) {
        std::vector<NodeId> overlay;
        for (size_t r = 0; r < seeds->rows.size(); ++r) {
          overlay = fixed;
          if (!OverlaySeedRow(*seeds, r, &overlay)) continue;
          status = run_bidir(overlay);
          if (!status.ok()) break;
        }
      } else {
        status = run_bidir(fixed);
      }
      stats.start_assignments += start_assignments;
      stats.arcs_explored += counters.arcs_explored;
      op.visited_configs = counters.visited_configs;
      op.frontier_expansions = counters.frontier_expansions;
      op.meet_checks = counters.meet_checks;
    } else if (lanes <= 1) {
      // Exact legacy single-threaded path (forward), or its backward
      // mirror over the reversed tape.
      op.threads = 1;
      SubsetPool pool;
      ComponentSearch search(rq, comp, options, &pool, backward);
      uint64_t start_assignments = 0;
      if (seeded) {
        // Sideways information passing: one seeded expansion per row.
        std::vector<NodeId> overlay;
        for (size_t r = 0; r < seeds->rows.size(); ++r) {
          overlay = fixed;
          if (!OverlaySeedRow(*seeds, r, &overlay)) continue;
          status = EnumerateAndRun(rq, search, overlay, &start_assignments,
                                   results, graph_sink, &configs_budget,
                                   cancel);
          if (!status.ok()) break;
        }
      } else {
        status = EnumerateAndRun(rq, search, fixed, &start_assignments,
                                 results, graph_sink, &configs_budget,
                                 cancel);
      }
      stats.start_assignments += start_assignments;
      stats.arcs_explored += search.arcs_explored();
      op.visited_configs = search.visited_configs();
      op.frontier_expansions = search.frontier_expansions();
    } else if (seeded && seeds->rows.size() >= 2) {
      // Batched sideways seeding. With fewer seed rows than lanes, the
      // per-row morsel partition leaves most lanes idle while each
      // claimed row's (possibly huge) search runs serially on one lane.
      // When every anchor variable of the direction is bound per row
      // (fixed vars plus seed columns), run the rows sequentially
      // instead and expand each row's single anchored search
      // cooperatively on ALL lanes through the shared frontier — the
      // per-row twin of the single-overlay cooperative path below. Each
      // row's results and counters are identical between the two
      // routings, so the lane-count-dependent choice cannot change what
      // the operator reports.
      const std::vector<int>& anchor_vars =
          backward ? comp.end_vars : comp.start_vars;
      if (dir != SearchDirection::kBidirectional &&
          seeds->rows.size() < static_cast<size_t>(lanes) &&
          VarsBound(anchor_vars, fixed, seeds)) {
        op.threads = lanes;
        std::vector<NodeId> overlay;
        for (size_t r = 0; r < seeds->rows.size() && status.ok(); ++r) {
          overlay = fixed;
          if (!OverlaySeedRow(*seeds, r, &overlay)) continue;
          std::vector<NodeId> anchor_nodes;
          const bool derived =
              backward ? DeriveEndNodes(rq, comp, overlay, &anchor_nodes)
                       : DeriveStartNodes(rq, comp, overlay, &anchor_nodes);
          if (!derived) continue;
          status = SharedFrontierExpand(rq, comp, options, dir, lanes,
                                        anchor_nodes, overlay,
                                        &configs_budget, cancel, stats, op,
                                        results);
        }
      } else {
        op.threads = lanes;
        status = MorselSeedRowsExpand(rq, comp, options, dir, lanes, fixed,
                                      *seeds, &configs_budget, cancel,
                                      stats, op, results);
      }
    } else {
      // Single overlay: `fixed`, or `fixed` plus the lone seed row.
      std::vector<NodeId> overlay = fixed;
      bool feasible = true;
      if (seeded) {
        feasible = !seeds->rows.empty() &&
                   OverlaySeedRow(*seeds, 0, &overlay);
      }
      if (feasible && dir == SearchDirection::kBidirectional) {
        // Fully anchored: both half-searches expand morsel-parallel.
        std::vector<NodeId> starts, ends;
        if (DeriveStartNodes(rq, comp, overlay, &starts) &&
            DeriveEndNodes(rq, comp, overlay, &ends)) {
          op.threads = lanes;
          ++stats.start_assignments;
          BidirCounters counters;
          status = BidirectionalProductSearch(rq, comp, options, lanes,
                                              starts, ends, overlay,
                                              &configs_budget, cancel,
                                              &counters, results);
          stats.arcs_explored += counters.arcs_explored;
          op.visited_configs = counters.visited_configs;
          op.frontier_expansions = counters.frontier_expansions;
          op.meet_checks = counters.meet_checks;
        }
      } else if (feasible) {
        const std::vector<int>& anchor_vars =
            backward ? comp.end_vars : comp.start_vars;
        int first_unbound = -1;
        for (int v : anchor_vars) {
          if (overlay[v] < 0) {
            first_unbound = v;
            break;
          }
        }
        if (first_unbound >= 0) {
          op.threads = lanes;
          status = MorselStartNodesExpand(rq, comp, options, dir, lanes,
                                          overlay, first_unbound,
                                          &configs_budget, cancel, stats,
                                          op, results);
        } else {
          // Every anchor variable of this direction bound: ONE product
          // search, expanded cooperatively against the sharded visited
          // table.
          std::vector<NodeId> anchor_nodes;
          const bool derived =
              backward ? DeriveEndNodes(rq, comp, overlay, &anchor_nodes)
                       : DeriveStartNodes(rq, comp, overlay, &anchor_nodes);
          if (derived) {
            op.threads = lanes;
            status = SharedFrontierExpand(rq, comp, options, dir, lanes,
                                          anchor_nodes, overlay,
                                          &configs_budget, cancel, stats,
                                          op, results);
          }
        }
      }
    }
    if (status.ok() && cancel != nullptr && cancel->cancelled()) {
      status = Status::Cancelled(kCancelledMessage);
    }
  }

  stats.configs_explored =
      std::max(stats.configs_explored,
               configs_budget.load(std::memory_order_relaxed));
  op.rows_out = (results != nullptr) ? results->size() - before : 0;
  if (graph_sink != nullptr) op.rows_out = graph_sink->configs.size();
  stats.operators.push_back(std::move(op));
  return status;
}

namespace {

// FNV-1a over a row's key columns (partitioned joins).
uint64_t HashKey(const std::vector<NodeId>& key) {
  uint64_t h = 1469598103934665603ULL;
  for (NodeId v : key) {
    h ^= static_cast<uint32_t>(v);
    h *= 1099511628211ULL;
  }
  return h;
}

// FNV-1a over selected columns of a row — the parallel paths hash keys
// in place instead of materializing a key vector per row.
uint64_t HashRowKey(const std::vector<NodeId>& row,
                    const std::vector<int>& cols) {
  uint64_t h = 1469598103934665603ULL;
  for (int c : cols) {
    h ^= static_cast<uint32_t>(row[c]);
    h *= 1099511628211ULL;
  }
  return h;
}

bool KeysEqual(const std::vector<NodeId>& a, const std::vector<int>& a_cols,
               const std::vector<NodeId>& b,
               const std::vector<int>& b_cols) {
  for (size_t k = 0; k < a_cols.size(); ++k) {
    if (a[a_cols[k]] != b[b_cols[k]]) return false;
  }
  return true;
}

// Rows below this skip the parallel join paths (partitioning overhead
// would dominate).
constexpr size_t kParallelJoinRows = 4096;

// Morsel sizes of the radix passes. Fixed constants — never derived from
// the lane count — because morsel boundaries define the canonical
// concatenation order of per-morsel results, which must be identical at
// any thread count.
constexpr size_t kJoinBuildGrain = 2048;
constexpr size_t kJoinProbeGrain = 1024;

// Radix partition count for a build side of `n` rows: enough partitions
// to keep per-partition tables cache-resident and every lane busy, as a
// pure function of the input size so partition boundaries (and with
// them the build layout) are thread-count independent.
size_t JoinPartitionCount(size_t n) {
  return std::bit_ceil(
      std::clamp<size_t>(n / kJoinBuildGrain, size_t{16}, size_t{256}));
}

// A radix-partitioned build side: per-morsel partition counters size one
// exact reservation, lanes scatter row ids into per-partition slices
// (morsel order within a partition, row order within a morsel — so ids
// ascend within every partition), and each partition's hash table is
// built independently. Buckets map the mixed key hash to the build row
// ids carrying it, ascending — the same per-key probe order as the
// serial ordered-map build.
struct PartitionedBuild {
  size_t P = 0;
  std::vector<uint64_t> row_hash;    // mixed key hash per build row
  std::vector<uint32_t> part_begin;  // P + 1 partition bounds
  std::vector<uint32_t> part_rows;   // row ids, partition-major
  std::vector<std::unordered_map<uint64_t, std::vector<uint32_t>>> tables;

  // Build row ids whose mixed key hash is `h`, or nullptr.
  const std::vector<uint32_t>* Find(uint64_t h) const {
    const auto& table = tables[h & (P - 1)];
    auto it = table.find(h);
    return it == table.end() ? nullptr : &it->second;
  }
};

PartitionedBuild BuildPartitioned(
    const std::vector<std::vector<NodeId>>& rows,
    const std::vector<int>& key_cols, int lanes,
    std::vector<uint64_t>* lane_rows) {
  PartitionedBuild b;
  const size_t n = rows.size();
  const size_t P = b.P = JoinPartitionCount(n);
  const size_t grain = kJoinBuildGrain;
  const size_t n_morsels = (n + grain - 1) / grain;
  b.row_hash.resize(n);
  std::vector<uint32_t> counts(n_morsels * P, 0);
  ParallelMorsels(lanes, n, grain,
                  [&](size_t begin, size_t end, int lane_id) {
                    uint32_t* c = counts.data() + (begin / grain) * P;
                    for (size_t r = begin; r < end; ++r) {
                      const uint64_t h =
                          MixHash64(HashRowKey(rows[r], key_cols));
                      b.row_hash[r] = h;
                      ++c[h & (P - 1)];
                    }
                    (*lane_rows)[lane_id] += end - begin;
                  });
  // Exclusive scans: partition base offsets, then per-(morsel, partition)
  // write cursors.
  b.part_begin.assign(P + 1, 0);
  for (size_t m = 0; m < n_morsels; ++m) {
    for (size_t p = 0; p < P; ++p) b.part_begin[p + 1] += counts[m * P + p];
  }
  for (size_t p = 0; p < P; ++p) b.part_begin[p + 1] += b.part_begin[p];
  std::vector<uint32_t> offsets(n_morsels * P);
  for (size_t p = 0; p < P; ++p) {
    uint32_t cur = b.part_begin[p];
    for (size_t m = 0; m < n_morsels; ++m) {
      offsets[m * P + p] = cur;
      cur += counts[m * P + p];
    }
  }
  b.part_rows.resize(n);
  ParallelMorsels(lanes, n, grain,
                  [&](size_t begin, size_t end, int lane_id) {
                    (void)lane_id;
                    // Each morsel's cursor cells are touched by exactly
                    // one lane, so the in-place bump is race-free.
                    uint32_t* off = offsets.data() + (begin / grain) * P;
                    for (size_t r = begin; r < end; ++r) {
                      b.part_rows[off[b.row_hash[r] & (P - 1)]++] =
                          static_cast<uint32_t>(r);
                    }
                  });
  b.tables.resize(P);
  ParallelMorsels(lanes, P, 1, [&](size_t begin, size_t end, int lane_id) {
    (void)lane_id;
    for (size_t p = begin; p < end; ++p) {
      auto& table = b.tables[p];
      table.reserve(b.part_begin[p + 1] - b.part_begin[p]);
      for (uint32_t i = b.part_begin[p]; i < b.part_begin[p + 1]; ++i) {
        const uint32_t r = b.part_rows[i];
        table[b.row_hash[r]].push_back(r);
      }
    }
  });
  return b;
}

}  // namespace

BindingTable HashJoinOp(const BindingTable& left, const BindingTable& right,
                        EvalStats& stats, int num_threads) {
  OperatorStats op;
  op.op = "HashJoin";
  op.rows_in = left.rows.size() + right.rows.size();

  // Shared variables and output layout: left columns, then right's
  // non-shared columns.
  std::vector<std::pair<int, int>> shared;  // (left col, right col)
  std::vector<int> right_extra;             // right cols not shared
  for (size_t rc = 0; rc < right.vars.size(); ++rc) {
    int lc = left.ColumnOf(right.vars[rc]);
    if (lc >= 0) {
      shared.emplace_back(lc, static_cast<int>(rc));
    } else {
      right_extra.push_back(static_cast<int>(rc));
    }
  }
  for (const auto& [lc, rc] : shared) {
    op.detail += (op.detail.empty() ? "on" : ",");
    (void)lc;
    op.detail += " v" + std::to_string(right.vars[rc]);
  }
  if (shared.empty()) op.detail = "cross";

  BindingTable out;
  out.vars = left.vars;
  for (int rc : right_extra) out.vars.push_back(right.vars[rc]);

  auto right_key = [&](size_t r) {
    std::vector<NodeId> key;
    key.reserve(shared.size());
    for (const auto& [lc, rc] : shared) {
      (void)lc;
      key.push_back(right.rows[r][rc]);
    }
    return key;
  };
  auto left_key = [&](const std::vector<NodeId>& lrow) {
    std::vector<NodeId> key;
    key.reserve(shared.size());
    for (const auto& [lc, rc] : shared) {
      (void)rc;
      key.push_back(lrow[lc]);
    }
    return key;
  };
  auto emit_row = [&](const std::vector<NodeId>& lrow, size_t r,
                      std::vector<std::vector<NodeId>>* rows) {
    std::vector<NodeId> row = lrow;
    for (int rc : right_extra) row.push_back(right.rows[r][rc]);
    rows->push_back(std::move(row));
  };

  const int lanes = std::max(num_threads, 1);
  if (lanes > 1 && left.rows.size() + right.rows.size() >= kParallelJoinRows) {
    op.threads = lanes;
    std::vector<int> left_cols, right_cols;  // key columns per side
    for (const auto& [lc, rc] : shared) {
      left_cols.push_back(lc);
      right_cols.push_back(rc);
    }
    // Radix-partitioned build of the right side (count -> exact
    // reservation -> scatter -> per-partition tables).
    std::vector<uint64_t> lane_build(lanes, 0), lane_probe(lanes, 0);
    PartitionedBuild build =
        BuildPartitioned(right.rows, right_cols, lanes, &lane_build);

    // Two-pass morsel probe. Pass 1 records the matching (probe row,
    // build row) id pairs per morsel — hash collisions across distinct
    // keys are resolved by re-checking the key columns. Pass 2 sizes the
    // output with ONE exact reservation and materializes each morsel's
    // matches into its disjoint slice, concatenating in morsel order —
    // the serial probe's left-row order, at any thread count.
    const size_t grain = kJoinProbeGrain;
    const size_t num_morsels = (left.rows.size() + grain - 1) / grain;
    std::vector<std::vector<std::pair<uint32_t, uint32_t>>> matches(
        num_morsels);
    ParallelMorsels(
        lanes, left.rows.size(), grain,
        [&](size_t begin, size_t end, int lane_id) {
          std::vector<std::pair<uint32_t, uint32_t>>& found =
              matches[begin / grain];
          for (size_t i = begin; i < end; ++i) {
            const std::vector<NodeId>& lrow = left.rows[i];
            const uint64_t h = MixHash64(HashRowKey(lrow, left_cols));
            const std::vector<uint32_t>* ids = build.Find(h);
            if (ids == nullptr) continue;
            for (uint32_t r : *ids) {
              if (!KeysEqual(lrow, left_cols, right.rows[r], right_cols)) {
                continue;
              }
              found.emplace_back(static_cast<uint32_t>(i), r);
            }
          }
          lane_probe[lane_id] += end - begin;
        });
    std::vector<size_t> out_off(num_morsels + 1, 0);
    for (size_t m = 0; m < num_morsels; ++m) {
      out_off[m + 1] = out_off[m] + matches[m].size();
    }
    out.AppendRowSlots(out_off[num_morsels]);
    ParallelMorsels(
        lanes, num_morsels, 1, [&](size_t begin, size_t end, int lane_id) {
          (void)lane_id;
          for (size_t m = begin; m < end; ++m) {
            size_t o = out_off[m];
            for (const auto& [i, r] : matches[m]) {
              std::vector<NodeId>& row = out.rows[o++];
              row.reserve(left.vars.size() + right_extra.size());
              row.assign(left.rows[i].begin(), left.rows[i].end());
              for (int rc : right_extra) row.push_back(right.rows[r][rc]);
            }
          }
        });
    stats.join_tuples += out.rows.size();
    for (int l = 0; l < lanes; ++l) {
      op.build_rows += lane_build[l];
      op.probe_rows += lane_probe[l];
    }
  } else {
    // Build on the right, keyed by the shared columns; probe with the
    // left.
    std::map<std::vector<NodeId>, std::vector<int>> build;
    for (size_t r = 0; r < right.rows.size(); ++r) {
      build[right_key(r)].push_back(static_cast<int>(r));
    }
    // Output rows are distinct by construction: both inputs hold distinct
    // rows, and an output is its left row (prefix) plus the right row's
    // non-key columns — two equal outputs would need two equal right
    // rows.
    for (const std::vector<NodeId>& lrow : left.rows) {
      auto it = build.find(left_key(lrow));
      if (it == build.end()) continue;
      for (int r : it->second) {
        ++stats.join_tuples;
        emit_row(lrow, r, &out.rows);
      }
    }
    op.build_rows = right.rows.size();
    op.probe_rows = left.rows.size();
  }

  op.rows_out = out.rows.size();
  stats.operators.push_back(std::move(op));
  return out;
}

bool SemiJoinFilterOp(BindingTable* target, const BindingTable& filter,
                      EvalStats& stats, int num_threads) {
  std::vector<std::pair<int, int>> shared;  // (target col, filter col)
  for (size_t fc = 0; fc < filter.vars.size(); ++fc) {
    int tc = target->ColumnOf(filter.vars[fc]);
    if (tc >= 0) shared.emplace_back(tc, static_cast<int>(fc));
  }
  if (shared.empty()) return false;

  OperatorStats op;
  op.op = "SemiJoinFilter";
  op.rows_in = target->rows.size();
  for (const auto& [tc, fc] : shared) {
    (void)fc;
    op.detail += (op.detail.empty() ? "on v" : ",v") +
                 std::to_string(target->vars[tc]);
  }

  auto filter_key = [&](const std::vector<NodeId>& frow) {
    std::vector<NodeId> key;
    key.reserve(shared.size());
    for (const auto& [tc, fc] : shared) {
      (void)tc;
      key.push_back(frow[fc]);
    }
    return key;
  };
  auto target_key = [&](const std::vector<NodeId>& trow) {
    std::vector<NodeId> key;
    key.reserve(shared.size());
    for (const auto& [tc, fc] : shared) {
      (void)fc;
      key.push_back(trow[tc]);
    }
    return key;
  };

  const int lanes = std::max(num_threads, 1);
  std::vector<std::vector<NodeId>> kept;
  kept.reserve(target->rows.size());
  if (lanes > 1 &&
      target->rows.size() + filter.rows.size() >= kParallelJoinRows) {
    op.threads = lanes;
    std::vector<int> target_cols, filter_cols;
    for (const auto& [tc, fc] : shared) {
      target_cols.push_back(tc);
      filter_cols.push_back(fc);
    }
    // Radix-partitioned build of the filter keys, then a two-pass morsel
    // probe: pass 1 flags the surviving target rows and counts them per
    // morsel, pass 2 moves survivors into ONE exactly-reserved output in
    // morsel order — the kept rows keep their original relative order,
    // as in the serial pass, at any thread count.
    std::vector<uint64_t> lane_build(lanes, 0), lane_probe(lanes, 0);
    PartitionedBuild build =
        BuildPartitioned(filter.rows, filter_cols, lanes, &lane_build);
    const size_t grain = kJoinProbeGrain;
    const size_t n = target->rows.size();
    const size_t num_morsels = (n + grain - 1) / grain;
    std::vector<uint8_t> keep(n, 0);
    std::vector<size_t> kept_counts(num_morsels, 0);
    ParallelMorsels(
        lanes, n, grain, [&](size_t begin, size_t end, int lane_id) {
          size_t kc = 0;
          for (size_t i = begin; i < end; ++i) {
            const std::vector<NodeId>& trow = target->rows[i];
            const uint64_t h = MixHash64(HashRowKey(trow, target_cols));
            const std::vector<uint32_t>* ids = build.Find(h);
            bool hit = false;
            if (ids != nullptr) {
              for (uint32_t r : *ids) {
                if (KeysEqual(trow, target_cols, filter.rows[r],
                              filter_cols)) {
                  hit = true;
                  break;
                }
              }
            }
            keep[i] = hit;
            kc += hit;
          }
          kept_counts[begin / grain] = kc;
          lane_probe[lane_id] += end - begin;
        });
    std::vector<size_t> out_off(num_morsels + 1, 0);
    for (size_t m = 0; m < num_morsels; ++m) {
      out_off[m + 1] = out_off[m] + kept_counts[m];
    }
    kept.resize(out_off[num_morsels]);
    ParallelMorsels(
        lanes, num_morsels, 1, [&](size_t begin, size_t end, int lane_id) {
          (void)lane_id;
          for (size_t m = begin; m < end; ++m) {
            size_t o = out_off[m];
            const size_t lo = m * grain;
            const size_t hi = std::min(lo + grain, n);
            for (size_t i = lo; i < hi; ++i) {
              if (keep[i]) kept[o++] = std::move(target->rows[i]);
            }
          }
        });
    for (int l = 0; l < lanes; ++l) {
      op.build_rows += lane_build[l];
      op.probe_rows += lane_probe[l];
    }
  } else {
    std::set<std::vector<NodeId>> keys;
    for (const std::vector<NodeId>& frow : filter.rows) {
      keys.insert(filter_key(frow));
    }
    for (std::vector<NodeId>& trow : target->rows) {
      if (keys.count(target_key(trow))) kept.push_back(std::move(trow));
    }
    op.build_rows = filter.rows.size();
    op.probe_rows = target->rows.size();
  }
  bool shrank = kept.size() < target->rows.size();
  target->rows = std::move(kept);

  // Only filtering passes are profiled — the fixpoint driver calls this
  // repeatedly, and no-op passes would drown the operator profile.
  if (shrank) {
    op.rows_out = target->rows.size();
    stats.operators.push_back(std::move(op));
  }
  return shrank;
}

}  // namespace ecrpq
