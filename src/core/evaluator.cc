#include "core/evaluator.h"

#include "core/eval_bruteforce.h"
#include "core/eval_counting.h"
#include "core/eval_crpq.h"
#include "core/eval_product.h"
#include "core/eval_qlen.h"

namespace ecrpq {

Engine SelectEngine(const Query& query, const QueryAnalysis& analysis,
                    Engine requested) {
  if (requested != Engine::kAuto) return requested;
  if (!query.linear_atoms().empty()) return Engine::kCounting;
  if (CrpqFastPathApplies(query, analysis)) return Engine::kCrpq;
  return Engine::kProduct;
}

Status Evaluator::Evaluate(const Query& query, ResultSink& sink,
                           EvalStats& stats,
                           CompiledQueryPtr compiled) const {
  Engine engine;
  if (options_.engine == Engine::kAuto) {
    // Prefer the prepared analysis; analyze on the fly otherwise.
    engine = (compiled != nullptr)
                 ? SelectEngine(query, compiled->analysis, Engine::kAuto)
                 : SelectEngine(query, Analyze(query), Engine::kAuto);
  } else {
    engine = options_.engine;
  }
  switch (engine) {
    case Engine::kProduct:
      return EvaluateProduct(*graph_, query, options_, sink, stats,
                             std::move(compiled));
    case Engine::kCrpq:
      return EvaluateCrpq(*graph_, query, options_, sink, stats,
                          std::move(compiled));
    case Engine::kCounting:
      return EvaluateCounting(*graph_, query, options_, sink, stats,
                              std::move(compiled));
    case Engine::kQlen:
      return EvaluateQlen(*graph_, query, options_, sink, stats,
                          std::move(compiled));
    case Engine::kBruteForce:
      return EvaluateBruteForce(*graph_, query, options_, sink, stats,
                                std::move(compiled));
    case Engine::kAuto:
      break;
  }
  return Status::Internal("unreachable engine dispatch");
}

Result<QueryResult> MaterializeResult(
    const std::function<Status(ResultSink&, EvalStats&)>& run) {
  MaterializingSink sink;
  EvalStats stats;
  Status st = run(sink, stats);
  if (!st.ok()) return st;
  sink.SortRows();
  return QueryResult(std::move(sink.tuples), std::move(sink.path_answers),
                     std::move(stats));
}

Result<QueryResult> Evaluator::Evaluate(const Query& query) const {
  return MaterializeResult([&](ResultSink& sink, EvalStats& stats) {
    return Evaluate(query, sink, stats);
  });
}

}  // namespace ecrpq
