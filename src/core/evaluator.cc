#include "core/evaluator.h"

#include "core/eval_bruteforce.h"
#include "core/eval_counting.h"
#include "core/eval_crpq.h"
#include "core/eval_product.h"
#include "core/eval_qlen.h"

namespace ecrpq {

Result<QueryResult> Evaluator::Evaluate(const Query& query) const {
  Engine engine = options_.engine;
  if (engine == Engine::kAuto) {
    if (!query.linear_atoms().empty()) {
      engine = Engine::kCounting;
    } else if (CrpqFastPathApplies(query)) {
      engine = Engine::kCrpq;
    } else {
      engine = Engine::kProduct;
    }
  }
  switch (engine) {
    case Engine::kProduct:
      return EvaluateProduct(*graph_, query, options_);
    case Engine::kCrpq:
      return EvaluateCrpq(*graph_, query, options_);
    case Engine::kCounting:
      return EvaluateCounting(*graph_, query, options_);
    case Engine::kQlen:
      return EvaluateQlen(*graph_, query, options_);
    case Engine::kBruteForce:
      return EvaluateBruteForce(*graph_, query, options_);
    case Engine::kAuto:
      break;
  }
  return Status::Internal("unreachable engine dispatch");
}

}  // namespace ecrpq
