#include "core/evaluator.h"

#include <cstdlib>

#include "core/eval_bruteforce.h"
#include "core/eval_counting.h"
#include "core/eval_crpq.h"
#include "core/eval_product.h"
#include "core/eval_qlen.h"
#include "core/planner.h"

namespace ecrpq {

bool DefaultUsePlanner() {
  static const bool enabled = [] {
    const char* env = std::getenv("ECRPQ_NO_PLANNER");
    return env == nullptr || env[0] == '\0' ||
           (env[0] == '0' && env[1] == '\0');
  }();
  return enabled;
}

Engine SelectEngine(const Query& query, const QueryAnalysis& analysis,
                    Engine requested) {
  if (requested != Engine::kAuto) return requested;
  if (!query.linear_atoms().empty()) return Engine::kCounting;
  if (CrpqFastPathApplies(query, analysis)) return Engine::kCrpq;
  return Engine::kProduct;
}

const char* EngineName(Engine engine) {
  switch (engine) {
    case Engine::kAuto:
      return "auto";
    case Engine::kProduct:
      return "product";
    case Engine::kCrpq:
      return "crpq";
    case Engine::kCounting:
      return "counting";
    case Engine::kQlen:
      return "qlen";
    case Engine::kBruteForce:
      return "bruteforce";
  }
  return "?";
}

const char* SearchDirectionName(SearchDirection direction) {
  switch (direction) {
    case SearchDirection::kAuto:
      return "auto";
    case SearchDirection::kForward:
      return "fwd";
    case SearchDirection::kBackward:
      return "bwd";
    case SearchDirection::kBidirectional:
      return "bidir";
  }
  return "?";
}

Status Evaluator::Evaluate(const Query& query, ResultSink& sink,
                           EvalStats& stats, CompiledQueryPtr compiled,
                           const PhysicalPlan* plan) const {
  // Compile once when the caller supplied nothing: the compiled form
  // carries the structural analysis, so engine selection and the engine's
  // own resolution share one Analyze pass instead of each redoing it
  // (prepared executions hand in the plan-cache copy the same way).
  if (compiled == nullptr) {
    auto built = CompileQuery(query, graph_->alphabet().size());
    if (!built.ok()) return built.status();
    compiled = std::move(built).value();
  }
  const Engine engine =
      SelectEngine(query, compiled->analysis, options_.engine);
  // Build (or refresh) the cached index. GraphDb is append-only, so a
  // snapshot is stale iff one of its counters moved — revalidating here
  // keeps a reused Evaluator correct when the graph was grown between
  // Evaluate calls. Brute force never reads the index; skip it there.
  // With use_graph_index off, engines get no index at all (the scan
  // path), even when one was attached externally.
  GraphIndexPtr index;
  if (options_.use_graph_index && engine != Engine::kBruteForce) {
    if (index_ == nullptr || index_->num_nodes() != graph_->num_nodes() ||
        index_->num_edges() != graph_->num_edges() ||
        index_->num_labels() != graph_->alphabet().size()) {
      index_ = GraphIndex::Build(*graph_);
    }
    index = index_;
  }
  switch (engine) {
    case Engine::kProduct:
      return EvaluateProduct(*graph_, query, options_, sink, stats,
                             std::move(compiled), std::move(index), plan);
    case Engine::kCrpq:
      return EvaluateCrpq(*graph_, query, options_, sink, stats,
                          std::move(compiled), std::move(index));
    case Engine::kCounting:
      return EvaluateCounting(*graph_, query, options_, sink, stats,
                              std::move(compiled), std::move(index));
    case Engine::kQlen:
      return EvaluateQlen(*graph_, query, options_, sink, stats,
                          std::move(compiled), std::move(index));
    case Engine::kBruteForce:
      return EvaluateBruteForce(*graph_, query, options_, sink, stats,
                                std::move(compiled));
    case Engine::kAuto:
      break;
  }
  return Status::Internal("unreachable engine dispatch");
}

Result<QueryResult> MaterializeResult(
    const std::function<Status(ResultSink&, EvalStats&)>& run) {
  MaterializingSink sink;
  EvalStats stats;
  Status st = run(sink, stats);
  if (!st.ok()) return st;
  sink.SortRows();
  return QueryResult(std::move(sink.tuples), std::move(sink.path_answers),
                     std::move(stats));
}

Result<QueryResult> Evaluator::Evaluate(const Query& query) const {
  return MaterializeResult([&](ResultSink& sink, EvalStats& stats) {
    return Evaluate(query, sink, stats);
  });
}

}  // namespace ecrpq
