#include "core/evaluator.h"

#include "core/eval_bruteforce.h"
#include "core/eval_counting.h"
#include "core/eval_crpq.h"
#include "core/eval_product.h"
#include "core/eval_qlen.h"

namespace ecrpq {

Engine SelectEngine(const Query& query, const QueryAnalysis& analysis,
                    Engine requested) {
  if (requested != Engine::kAuto) return requested;
  if (!query.linear_atoms().empty()) return Engine::kCounting;
  if (CrpqFastPathApplies(query, analysis)) return Engine::kCrpq;
  return Engine::kProduct;
}

Status Evaluator::Evaluate(const Query& query, ResultSink& sink,
                           EvalStats& stats,
                           CompiledQueryPtr compiled) const {
  Engine engine;
  if (options_.engine == Engine::kAuto) {
    // Prefer the prepared analysis; analyze on the fly otherwise.
    engine = (compiled != nullptr)
                 ? SelectEngine(query, compiled->analysis, Engine::kAuto)
                 : SelectEngine(query, Analyze(query), Engine::kAuto);
  } else {
    engine = options_.engine;
  }
  // Build (or refresh) the cached index. GraphDb is append-only, so a
  // snapshot is stale iff one of its counters moved — revalidating here
  // keeps a reused Evaluator correct when the graph was grown between
  // Evaluate calls. Brute force never reads the index; skip it there.
  // With use_graph_index off, engines get no index at all (the scan
  // path), even when one was attached externally.
  GraphIndexPtr index;
  if (options_.use_graph_index && engine != Engine::kBruteForce) {
    if (index_ == nullptr || index_->num_nodes() != graph_->num_nodes() ||
        index_->num_edges() != graph_->num_edges() ||
        index_->num_labels() != graph_->alphabet().size()) {
      index_ = GraphIndex::Build(*graph_);
    }
    index = index_;
  }
  switch (engine) {
    case Engine::kProduct:
      return EvaluateProduct(*graph_, query, options_, sink, stats,
                             std::move(compiled), std::move(index));
    case Engine::kCrpq:
      return EvaluateCrpq(*graph_, query, options_, sink, stats,
                          std::move(compiled), std::move(index));
    case Engine::kCounting:
      return EvaluateCounting(*graph_, query, options_, sink, stats,
                              std::move(compiled), std::move(index));
    case Engine::kQlen:
      return EvaluateQlen(*graph_, query, options_, sink, stats,
                          std::move(compiled), std::move(index));
    case Engine::kBruteForce:
      return EvaluateBruteForce(*graph_, query, options_, sink, stats,
                                std::move(compiled));
    case Engine::kAuto:
      break;
  }
  return Status::Internal("unreachable engine dispatch");
}

Result<QueryResult> MaterializeResult(
    const std::function<Status(ResultSink&, EvalStats&)>& run) {
  MaterializingSink sink;
  EvalStats stats;
  Status st = run(sink, stats);
  if (!st.ok()) return st;
  sink.SortRows();
  return QueryResult(std::move(sink.tuples), std::move(sink.path_answers),
                     std::move(stats));
}

Result<QueryResult> Evaluator::Evaluate(const Query& query) const {
  return MaterializeResult([&](ResultSink& sink, EvalStats& stats) {
    return Evaluate(query, sink, stats);
  });
}

}  // namespace ecrpq
