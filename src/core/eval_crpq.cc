#include "core/eval_crpq.h"

#include <algorithm>
#include <functional>
#include <map>
#include <queue>
#include <set>
#include <unordered_set>

#include "automata/operations.h"
#include "core/eval_product.h"
#include "core/parallel.h"
#include "query/analysis.h"

namespace ecrpq {

bool CrpqFastPathApplies(const Query& query) {
  return CrpqFastPathApplies(query, Analyze(query));
}

bool CrpqFastPathApplies(const Query& query, const QueryAnalysis& analysis) {
  if (!query.linear_atoms().empty()) return false;
  return analysis.is_crpq && !analysis.has_relational_repetition;
}

std::vector<std::pair<NodeId, NodeId>> ReachabilityPairs(
    const GraphDb& graph,
    const std::vector<const RegularRelation*>& languages) {
  return ReachabilityPairs(graph, languages, /*index=*/nullptr);
}

std::vector<std::pair<NodeId, NodeId>> ReachabilityPairs(
    const GraphDb& graph, const std::vector<const RegularRelation*>& languages,
    const GraphIndex* index) {
  return ReachabilityPairs(graph, languages, index, /*sources=*/nullptr,
                           /*scan_stats=*/nullptr);
}

std::vector<std::pair<NodeId, NodeId>> ReachabilityPairs(
    const GraphDb& graph, const std::vector<const RegularRelation*>& languages,
    const GraphIndex* index, const std::vector<NodeId>* sources,
    ReachabilityScanStats* scan_stats) {
  return ReachabilityPairs(graph, languages, index, sources, scan_stats,
                           /*num_threads=*/1, /*cancel=*/nullptr,
                           /*deterministic=*/true);
}

namespace {

// The intersected, ε-free, trimmed language NFA a scan simulates.
Nfa BuildScanLanguage(const GraphDb& graph,
                      const std::vector<const RegularRelation*>& languages) {
  Nfa lang = UniverseNfa(graph.alphabet().size());
  for (const RegularRelation* rel : languages) {
    ECRPQ_DCHECK(rel->arity() == 1);
    auto nfa = rel->ToLanguageNfa();
    ECRPQ_DCHECK(nfa.ok());
    lang = IntersectNfa(lang, nfa.value());
  }
  return Trim(RemoveEpsilons(lang));
}

// One anchor's BFS over (language state, node); `seen` is a reusable
// ls × |V| bitmap (reset here). Accepting product states yield `ends`.
// With `backward` the traversal walks in-edges (the caller passes the
// REVERSED language NFA, so accepting states are the forward-initial
// ones and `ends` collects path SOURCES). Polls `cancel` every few
// thousand expansions so even a single-anchor scan over a huge graph
// unwinds promptly (the caller treats the partial result as void once
// the token has tripped).
void ScanFromSource(const GraphDb& graph, const GraphIndex* index,
                    const Nfa& lang, const std::vector<StateId>& lang_initial,
                    NodeId start, bool backward, std::vector<bool>* seen,
                    std::set<NodeId>* ends, ReachabilityScanStats* stats,
                    CancellationToken* cancel) {
  seen->assign(static_cast<size_t>(lang.num_states()) * graph.num_nodes(),
               false);
  ends->clear();
  std::queue<std::pair<StateId, NodeId>> work;
  auto push = [&](StateId q, NodeId v) {
    if (stats != nullptr) ++stats->frontier_expansions;
    size_t key = static_cast<size_t>(q) * graph.num_nodes() + v;
    if (!(*seen)[key]) {
      (*seen)[key] = true;
      if (stats != nullptr) ++stats->visited_states;
      work.emplace(q, v);
      if (lang.IsAccepting(q)) ends->insert(v);
    }
  };
  for (StateId q : lang_initial) push(q, start);
  uint32_t since_poll = 0;
  while (!work.empty()) {
    if (cancel != nullptr && ++since_poll >= 2048) {
      since_poll = 0;
      if (cancel->cancelled()) return;
    }
    auto [q, v] = work.front();
    work.pop();
    if (index != nullptr) {
      // CSR label slices: touch only the neighbors carrying exactly
      // the letters the language state can read.
      for (const Nfa::Arc& arc : lang.ArcsFrom(q)) {
        std::span<const NodeId> slice =
            backward ? index->In(v, arc.first) : index->Out(v, arc.first);
        for (NodeId to : slice) push(arc.second, to);
      }
    } else {
      const auto& adjacency = backward ? graph.In(v) : graph.Out(v);
      for (const Nfa::Arc& arc : lang.ArcsFrom(q)) {
        for (const auto& [label, to] : adjacency) {
          if (label == arc.first) push(arc.second, to);
        }
      }
    }
  }
}

// One (source, target) meet-in-the-middle reachability probe over
// (NFA state, node) configurations: a forward half-search over `lang`
// and out-edges, a backward half-search over `rlang` (the reversed NFA —
// same state ids) and in-edges, alternating on the smaller frontier.
// A meet is the same (state, node) configuration discovered by both
// sides: the forward prefix reaches state q at node v, and from (q, v)
// the backward-explored suffix reaches acceptance at the target. Either
// side exhausting first proves unreachability (every accepting run meets
// at all of its splits, including the opposite side's seed). Returns
// true when a path from `s` to `t` matches the language.
bool BidirectionalReachProbe(const GraphDb& graph, const GraphIndex* index,
                             const Nfa& lang, const Nfa& rlang, NodeId s,
                             NodeId t, std::vector<bool>* seen_f,
                             std::vector<bool>* seen_b,
                             ReachabilityScanStats* stats,
                             uint64_t* meet_checks, CancellationToken* cancel) {
  const size_t stride = graph.num_nodes();
  seen_f->assign(static_cast<size_t>(lang.num_states()) * stride, false);
  seen_b->assign(static_cast<size_t>(lang.num_states()) * stride, false);
  std::vector<std::pair<StateId, NodeId>> fr_f, fr_b, next;
  bool met = false;
  auto push = [&](bool fwd_side, StateId q, NodeId v,
                  std::vector<std::pair<StateId, NodeId>>* out) {
    if (stats != nullptr) ++stats->frontier_expansions;
    std::vector<bool>& seen = fwd_side ? *seen_f : *seen_b;
    std::vector<bool>& other = fwd_side ? *seen_b : *seen_f;
    const size_t key = static_cast<size_t>(q) * stride + v;
    if (seen[key]) return;
    seen[key] = true;
    if (stats != nullptr) ++stats->visited_states;
    if (meet_checks != nullptr) ++*meet_checks;
    if (other[key]) met = true;
    out->push_back({q, v});
  };
  for (StateId q : lang.InitialStates()) push(/*fwd_side=*/true, q, s, &fr_f);
  for (StateId q : rlang.InitialStates()) {
    push(/*fwd_side=*/false, q, t, &fr_b);
  }
  while (!met && !fr_f.empty() && !fr_b.empty()) {
    if (cancel != nullptr && cancel->cancelled()) return false;
    const bool step_fwd = fr_f.size() <= fr_b.size();
    std::vector<std::pair<StateId, NodeId>>& frontier =
        step_fwd ? fr_f : fr_b;
    const Nfa& stepper = step_fwd ? lang : rlang;
    next.clear();
    for (const auto& [q, v] : frontier) {
      if (met) break;
      if (index != nullptr) {
        for (const Nfa::Arc& arc : stepper.ArcsFrom(q)) {
          std::span<const NodeId> slice = step_fwd
                                              ? index->Out(v, arc.first)
                                              : index->In(v, arc.first);
          for (NodeId to : slice) push(step_fwd, arc.second, to, &next);
        }
      } else {
        const auto& adjacency = step_fwd ? graph.Out(v) : graph.In(v);
        for (const Nfa::Arc& arc : stepper.ArcsFrom(q)) {
          for (const auto& [label, to] : adjacency) {
            if (label == arc.first) push(step_fwd, arc.second, to, &next);
          }
        }
      }
    }
    frontier.swap(next);
  }
  return met;
}

}  // namespace

std::vector<std::pair<NodeId, NodeId>> ReachabilityPairs(
    const GraphDb& graph, const std::vector<const RegularRelation*>& languages,
    const GraphIndex* index, const std::vector<NodeId>* sources,
    ReachabilityScanStats* scan_stats, int num_threads,
    CancellationToken* cancel, bool deterministic) {
  return ReachabilityPairsDirected(graph, languages, index, sources,
                                   /*targets=*/nullptr,
                                   SearchDirection::kForward, scan_stats,
                                   /*meet_checks=*/nullptr, num_threads,
                                   cancel, deterministic);
}

std::vector<std::pair<NodeId, NodeId>> ReachabilityPairsDirected(
    const GraphDb& graph, const std::vector<const RegularRelation*>& languages,
    const GraphIndex* index, const std::vector<NodeId>* sources,
    const std::vector<NodeId>* targets, SearchDirection direction,
    ReachabilityScanStats* scan_stats, uint64_t* meet_checks,
    int num_threads, CancellationToken* cancel, bool deterministic) {
  // Intersect the language NFAs (over the base alphabet).
  Nfa lang = BuildScanLanguage(graph, languages);

  std::vector<std::pair<NodeId, NodeId>> out;
  if (lang.num_states() == 0) return out;

  // Safety degrade: a bidirectional sweep needs both anchor sets.
  if (direction == SearchDirection::kBidirectional &&
      (sources == nullptr || targets == nullptr)) {
    direction = targets != nullptr ? SearchDirection::kBackward
                                   : SearchDirection::kForward;
  }

  if (direction == SearchDirection::kBidirectional) {
    // One meet-in-the-middle probe per anchored (source, target) pair;
    // pairs are few by construction (the planner degrades large anchor
    // products to a one-sided sweep), so the probes run serially and the
    // output order is the pair enumeration order.
    Nfa rlang = Reverse(lang);
    std::vector<bool> seen_f, seen_b;
    for (NodeId s : *sources) {
      for (NodeId t : *targets) {
        if (cancel != nullptr && cancel->cancelled()) return out;
        if (BidirectionalReachProbe(graph, index, lang, rlang, s, t,
                                    &seen_f, &seen_b, scan_stats,
                                    meet_checks, cancel)) {
          out.emplace_back(s, t);
        }
      }
    }
    return out;
  }

  // One-sided sweep. Forward BFSes over (language state, node) per source
  // node (tagging product states with start nodes would square memory;
  // O(|V| · |lang| · |E|) per-anchor instead); backward runs the mirror
  // per TARGET node over the reversed NFA and in-edges, so a bound
  // target side costs one BFS instead of |V|.
  const bool backward = direction == SearchDirection::kBackward;
  const Nfa scan_lang = backward ? Reverse(lang) : std::move(lang);
  const std::vector<NodeId>* anchors = backward ? targets : sources;
  std::vector<StateId> scan_initial = scan_lang.InitialStates();
  const int num_anchors = (anchors != nullptr)
                              ? static_cast<int>(anchors->size())
                              : graph.num_nodes();
  auto anchor_of = [&](int s) -> NodeId {
    return (anchors != nullptr) ? (*anchors)[s] : s;
  };
  auto emit = [&](NodeId anchor, NodeId reached) {
    if (backward) {
      out.emplace_back(reached, anchor);
    } else {
      out.emplace_back(anchor, reached);
    }
  };

  const int lanes = std::min(std::max(num_threads, 1), num_anchors);
  if (lanes <= 1) {
    std::vector<bool> seen;
    std::set<NodeId> ends;
    for (int s = 0; s < num_anchors; ++s) {
      if (cancel != nullptr && cancel->cancelled()) break;
      ScanFromSource(graph, index, scan_lang, scan_initial, anchor_of(s),
                     backward, &seen, &ends, scan_stats, cancel);
      for (NodeId end : ends) emit(anchor_of(s), end);
    }
    return out;
  }

  // Morsel-parallel: per-anchor end-set slots, per-lane counters and seen
  // bitmaps. Deterministic mode concatenates the slots in anchor order
  // (bit-identical to the serial scan); otherwise lanes append finished
  // morsels in completion order under a lock.
  std::vector<std::set<NodeId>> slots(num_anchors);
  std::vector<ReachabilityScanStats> lane_stats(lanes);
  std::mutex out_mutex;
  const size_t grain =
      std::max<size_t>(1, static_cast<size_t>(num_anchors) / (lanes * 8));
  ParallelMorsels(
      lanes, num_anchors, grain, [&](size_t begin, size_t end, int lane_id) {
        std::vector<bool> seen;
        ReachabilityScanStats* ls =
            (scan_stats != nullptr) ? &lane_stats[lane_id] : nullptr;
        for (size_t s = begin; s < end; ++s) {
          if (cancel != nullptr && cancel->cancelled()) return;
          ScanFromSource(graph, index, scan_lang, scan_initial,
                         anchor_of(static_cast<int>(s)), backward, &seen,
                         &slots[s], ls, cancel);
        }
        if (!deterministic) {
          std::lock_guard<std::mutex> lock(out_mutex);
          for (size_t s = begin; s < end; ++s) {
            for (NodeId e : slots[s]) {
              emit(anchor_of(static_cast<int>(s)), e);
            }
            slots[s].clear();
          }
        }
      });
  if (deterministic) {
    for (int s = 0; s < num_anchors; ++s) {
      for (NodeId e : slots[s]) emit(anchor_of(s), e);
    }
  }
  if (scan_stats != nullptr) {
    for (const ReachabilityScanStats& ls : lane_stats) {
      scan_stats->frontier_expansions += ls.frontier_expansions;
      scan_stats->visited_states += ls.visited_states;
    }
  }
  return out;
}

namespace {

// One binary CQ atom r_i(u, v) with materialized pairs and hash indexes.
struct JoinAtom {
  ResolvedTerm from;
  ResolvedTerm to;
  std::vector<std::pair<NodeId, NodeId>> pairs;
  std::multimap<NodeId, NodeId> by_from;
  std::multimap<NodeId, NodeId> by_to;
  std::set<std::pair<NodeId, NodeId>> pair_set;

  void Reindex() {
    by_from.clear();
    by_to.clear();
    pair_set.clear();
    for (const auto& [u, v] : pairs) {
      by_from.emplace(u, v);
      by_to.emplace(v, u);
      pair_set.emplace(u, v);
    }
  }
};

// Pair count below which the semi-join filter stays inline-serial — the
// same stay-inline rule as the binding-table join pipeline
// (kParallelJoinRows in core/ops.cc).
constexpr size_t kParallelSemiJoinPairs = 4096;

// Semi-join: keep pairs of `a` whose shared-variable value appears in `b`'s
// corresponding column. Returns true if `a` shrank. With num_threads > 1
// and enough pairs the filter runs morsel-parallel in two passes (per-pair
// keep flags, then a compaction preserving pair order), so the surviving
// pair sequence is identical to the serial filter's at any lane count.
bool SemiJoin(JoinAtom* a, const JoinAtom& b, int num_threads = 1) {
  // Determine shared variables between the two atoms' terms.
  auto var_of = [](const ResolvedTerm& t) { return t.is_const ? -1 : t.var; };
  int a_from = var_of(a->from), a_to = var_of(a->to);
  int b_from = var_of(b.from), b_to = var_of(b.to);

  auto b_from_values = [&]() {
    std::unordered_set<NodeId> values;
    for (const auto& [u, v] : b.pairs) {
      (void)v;
      values.insert(u);
    }
    return values;
  };
  auto b_to_values = [&]() {
    std::unordered_set<NodeId> values;
    for (const auto& [u, v] : b.pairs) {
      (void)u;
      values.insert(v);
    }
    return values;
  };

  // For each shared var position combination, filter.
  std::unordered_set<NodeId> bf, bt;
  bool need_bf = (b_from >= 0 && (b_from == a_from || b_from == a_to));
  bool need_bt = (b_to >= 0 && (b_to == a_from || b_to == a_to));
  if (need_bf) bf = b_from_values();
  if (need_bt) bt = b_to_values();
  if (!need_bf && !need_bt) return false;

  auto keeps = [&](const std::pair<NodeId, NodeId>& pair) {
    const auto& [u, v] = pair;
    if (b_from >= 0) {
      if (b_from == a_from && bf.find(u) == bf.end()) return false;
      if (b_from == a_to && bf.find(v) == bf.end()) return false;
    }
    if (b_to >= 0) {
      if (b_to == a_from && bt.find(u) == bt.end()) return false;
      if (b_to == a_to && bt.find(v) == bt.end()) return false;
    }
    return true;
  };

  const size_t n = a->pairs.size();
  std::vector<std::pair<NodeId, NodeId>> kept;
  if (num_threads > 1 && n >= kParallelSemiJoinPairs) {
    // Pass 1: morsel-parallel keep flags plus per-morsel survivor counts
    // (morsel boundaries depend only on n, never the lane count).
    constexpr size_t kGrain = 1024;
    const size_t num_morsels = (n + kGrain - 1) / kGrain;
    std::vector<uint8_t> keep(n, 0);
    std::vector<size_t> morsel_kept(num_morsels, 0);
    ParallelMorsels(num_threads, n, kGrain,
                    [&](size_t begin, size_t end, int /*lane*/) {
                      size_t count = 0;
                      for (size_t i = begin; i < end; ++i) {
                        if (keeps(a->pairs[i])) {
                          keep[i] = 1;
                          ++count;
                        }
                      }
                      morsel_kept[begin / kGrain] += count;
                    });
    // Pass 2: exclusive scan sizes one exact reservation; lanes compact
    // their morsels into disjoint slices, preserving pair order.
    std::vector<size_t> out_off(num_morsels + 1, 0);
    for (size_t m = 0; m < num_morsels; ++m) {
      out_off[m + 1] = out_off[m] + morsel_kept[m];
    }
    kept.resize(out_off[num_morsels]);
    ParallelMorsels(num_threads, num_morsels, 1,
                    [&](size_t mb, size_t me, int /*lane*/) {
                      for (size_t m = mb; m < me; ++m) {
                        const size_t lo = m * kGrain;
                        const size_t hi = std::min(lo + kGrain, n);
                        size_t o = out_off[m];
                        for (size_t i = lo; i < hi; ++i) {
                          if (keep[i]) kept[o++] = a->pairs[i];
                        }
                      }
                    });
  } else {
    kept.reserve(n);
    for (const auto& pair : a->pairs) {
      if (keeps(pair)) kept.push_back(pair);
    }
  }
  bool shrank = kept.size() < a->pairs.size();
  a->pairs = std::move(kept);
  return shrank;
}

}  // namespace

Status EvaluateCrpq(const GraphDb& graph, const Query& query,
                    const EvalOptions& options, ResultSink& sink,
                    EvalStats& stats, CompiledQueryPtr compiled,
                    GraphIndexPtr index) {
  auto resolved_or =
      ResolveQuery(graph, query, std::move(compiled), std::move(index));
  if (!resolved_or.ok()) return resolved_or.status();
  ResolvedQuery& rq = resolved_or.value();
  if (!CrpqFastPathApplies(query, rq.analysis())) {
    return Status::FailedPrecondition(
        "query is outside the CRPQ fast-path fragment (multi-ary relations, "
        "repeated path variables or linear atoms present)");
  }
  if (options.use_graph_index && rq.index == nullptr) {
    rq.index = GraphIndex::Build(graph);
  }

  stats.engine = "crpq";

  const int num_threads = ResolveNumThreads(options.num_threads);
  CancellationToken* cancel = options.cancellation.get();

  // Build one JoinAtom per path atom with its language intersection —
  // the per-atom ReachabilityScan leaves of the physical plan. Each scan
  // runs its per-anchor BFSes morsel-parallel, in the direction the
  // atom's constants favor (the same rule the planner records): both
  // endpoints constant → one bidirectional meet probe; constant target
  // only → one backward BFS from it (instead of |V| forward BFSes);
  // otherwise the classic forward sweep. EvalOptions::direction forces a
  // direction; the auto rule engages only with the planner enabled so
  // the ECRPQ_NO_PLANNER ablation keeps the legacy forward path.
  std::vector<JoinAtom> atoms(rq.atoms.size());
  for (size_t i = 0; i < rq.atoms.size(); ++i) {
    atoms[i].from = rq.atoms[i].from;
    atoms[i].to = rq.atoms[i].to;
    std::vector<const RegularRelation*> languages;
    for (const ResolvedRelation& rel : rq.relations()) {
      if (rel.paths[0] == rq.atoms[i].path) {
        languages.push_back(rel.relation);
      }
    }
    const bool from_const = atoms[i].from.is_const;
    const bool to_const = atoms[i].to.is_const;
    SearchDirection dir = SearchDirection::kForward;
    if (options.direction != SearchDirection::kAuto) {
      dir = options.direction;
    } else if (options.use_planner) {
      if (from_const && to_const) {
        dir = SearchDirection::kBidirectional;
      } else if (to_const) {
        dir = SearchDirection::kBackward;
      }
    }
    std::vector<NodeId> anchor_sources, anchor_targets;
    const std::vector<NodeId>* sources = nullptr;
    const std::vector<NodeId>* targets = nullptr;
    if (dir == SearchDirection::kBidirectional) {
      if (from_const && to_const) {
        anchor_sources.push_back(atoms[i].from.node);
        anchor_targets.push_back(atoms[i].to.node);
        sources = &anchor_sources;
        targets = &anchor_targets;
      } else {
        dir = to_const ? SearchDirection::kBackward
                       : SearchDirection::kForward;
      }
    }
    if (dir == SearchDirection::kBackward && to_const) {
      anchor_targets.assign(1, atoms[i].to.node);
      targets = &anchor_targets;
    }
    if (dir == SearchDirection::kForward && from_const &&
        (options.use_planner || options.direction != SearchDirection::kAuto)) {
      // Constant source: one anchored forward BFS instead of the full
      // |V|-source sweep (the mirror of the constant-target backward
      // case; gated like the auto rule so ECRPQ_NO_PLANNER keeps the
      // legacy sweep).
      anchor_sources.assign(1, atoms[i].from.node);
      sources = &anchor_sources;
    }
    ReachabilityScanStats scan_stats;
    uint64_t meet_checks = 0;
    atoms[i].pairs = ReachabilityPairsDirected(
        graph, languages, rq.index.get(), sources, targets, dir,
        &scan_stats, &meet_checks, num_threads, cancel,
        options.deterministic);
    if (cancel != nullptr && cancel->cancelled()) {
      return Status::Cancelled("query execution cancelled");
    }
    stats.arcs_explored += scan_stats.frontier_expansions;
    // Constants restrict immediately.
    std::vector<std::pair<NodeId, NodeId>> filtered;
    for (const auto& [u, v] : atoms[i].pairs) {
      if (atoms[i].from.is_const && u != atoms[i].from.node) continue;
      if (atoms[i].to.is_const && v != atoms[i].to.node) continue;
      // Same variable on both sides forces a loop pair.
      if (!atoms[i].from.is_const && !atoms[i].to.is_const &&
          atoms[i].from.var == atoms[i].to.var && u != v) {
        continue;
      }
      filtered.emplace_back(u, v);
    }
    atoms[i].pairs = std::move(filtered);
    OperatorStats op;
    op.op = "ReachabilityScan";
    op.detail = "atom " + std::to_string(i);
    op.rows_out = atoms[i].pairs.size();
    op.frontier_expansions = scan_stats.frontier_expansions;
    op.visited_configs = scan_stats.visited_states;
    op.meet_checks = meet_checks;
    op.direction = SearchDirectionName(dir);
    op.threads = num_threads;
    stats.operators.push_back(std::move(op));
    if (atoms[i].pairs.empty()) return Status::OK();  // empty answer
  }

  // Semi-join reduction to a fixpoint (Yannakakis on acyclic queries; a
  // sound filter otherwise) — the plan's SemiJoinFilter pass.
  if (options.use_semijoin_reduction) {
    OperatorStats op;
    op.op = "SemiJoinFilter";
    op.detail = "fixpoint";
    for (const JoinAtom& atom : atoms) op.rows_in += atom.pairs.size();
    bool changed = true;
    int rounds = 0;
    bool emptied = false;
    while (changed && rounds < static_cast<int>(atoms.size()) + 2) {
      changed = false;
      ++rounds;
      for (size_t i = 0; i < atoms.size() && !emptied; ++i) {
        for (size_t j = 0; j < atoms.size(); ++j) {
          if (i == j) continue;
          if (SemiJoin(&atoms[i], atoms[j], num_threads)) changed = true;
          if (atoms[i].pairs.empty()) {
            emptied = true;
            break;
          }
        }
      }
      if (emptied) break;
    }
    for (const JoinAtom& atom : atoms) op.rows_out += atom.pairs.size();
    stats.operators.push_back(std::move(op));
    if (emptied) return Status::OK();
  }

  // Early projection (the Yannakakis step that makes acyclic combined
  // complexity polynomial): a non-head variable occurring in exactly two
  // atom endpoints is eliminated by composing the two atoms; the composed
  // relation is projected (deduplicated) immediately, so intermediate
  // results stay <= |V|² instead of enumerating every embedding.
  if (options.use_semijoin_reduction) {
    std::set<int> head_vars;
    for (const NodeTerm& term : query.head_nodes()) {
      head_vars.insert(query.NodeVarIndex(term.name));
    }
    bool eliminated = true;
    while (eliminated && atoms.size() >= 2) {
      eliminated = false;
      // Occurrence positions of each variable: (atom index, is_from slot).
      std::map<int, std::vector<std::pair<int, bool>>> where;
      for (size_t i = 0; i < atoms.size(); ++i) {
        if (!atoms[i].from.is_const) {
          where[atoms[i].from.var].push_back({static_cast<int>(i), true});
        }
        if (!atoms[i].to.is_const) {
          where[atoms[i].to.var].push_back({static_cast<int>(i), false});
        }
      }
      for (const auto& [var, slots] : where) {
        if (head_vars.count(var) || slots.size() != 2) continue;
        auto [ia, a_is_from] = slots[0];
        auto [ib, b_is_from] = slots[1];
        if (ia == ib) continue;  // both endpoints of one atom: keep
        JoinAtom& a = atoms[ia];
        JoinAtom& b = atoms[ib];
        // Match a's var-slot value with b's; output the other endpoints.
        std::multimap<NodeId, NodeId> b_by_shared;  // shared -> other
        for (const auto& [u, v] : b.pairs) {
          b_by_shared.emplace(b_is_from ? u : v, b_is_from ? v : u);
        }
        std::set<std::pair<NodeId, NodeId>> composed;
        for (const auto& [u, v] : a.pairs) {
          NodeId shared = a_is_from ? u : v;
          NodeId other_a = a_is_from ? v : u;
          auto [lo, hi] = b_by_shared.equal_range(shared);
          for (auto it = lo; it != hi; ++it) {
            composed.insert({other_a, it->second});
          }
        }
        OperatorStats op;
        op.op = "HashJoin";
        op.detail = "eliminate " + query.node_variables()[var];
        op.rows_in = a.pairs.size() + b.pairs.size();
        op.rows_out = composed.size();
        stats.operators.push_back(std::move(op));
        if (composed.empty()) return Status::OK();  // no embeddings at all
        JoinAtom merged;
        merged.from = a_is_from ? a.to : a.from;
        merged.to = b_is_from ? b.to : b.from;
        merged.pairs.assign(composed.begin(), composed.end());
        // Replace atom ia by the composition, drop atom ib.
        atoms[ia] = std::move(merged);
        atoms.erase(atoms.begin() + ib);
        eliminated = true;
        break;  // occurrence map is stale; recompute
      }
    }
  }
  for (JoinAtom& atom : atoms) atom.Reindex();

  // Backtracking join over atoms; prefer atoms with bound variables.
  // Each new head projection streams into the sink immediately; a false
  // return stops the whole search (limit / exists pushdown).
  const int num_vars = static_cast<int>(query.node_variables().size());
  std::vector<NodeId> binding(num_vars, -1);
  std::vector<bool> used(atoms.size(), false);
  HeadTupleEmitter emitter(rq, options, sink);
  bool stop = false;

  auto head_projection = [&]() {
    std::vector<NodeId> head;
    for (const NodeTerm& term : query.head_nodes()) {
      head.push_back(binding[query.NodeVarIndex(term.name)]);
    }
    ++stats.join_tuples;
    if (!emitter.Emit(head)) stop = true;
  };

  std::function<void(int)> recurse = [&](int depth) {
    if (stop) return;
    if (cancel != nullptr && cancel->cancelled()) {
      stop = true;
      return;
    }
    if (depth == static_cast<int>(atoms.size())) {
      head_projection();
      return;
    }
    // Choose the most-bound unused atom.
    int best = -1, best_score = -1;
    for (size_t i = 0; i < atoms.size(); ++i) {
      if (used[i]) continue;
      int score = 0;
      if (atoms[i].from.is_const || binding[atoms[i].from.var] >= 0) ++score;
      if (atoms[i].to.is_const || binding[atoms[i].to.var] >= 0) ++score;
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(i);
      }
    }
    JoinAtom& atom = atoms[best];
    used[best] = true;
    auto from_val = [&]() -> NodeId {
      return atom.from.is_const ? atom.from.node : binding[atom.from.var];
    };
    auto to_val = [&]() -> NodeId {
      return atom.to.is_const ? atom.to.node : binding[atom.to.var];
    };
    NodeId u = from_val(), v = to_val();

    auto try_pair = [&](NodeId pu, NodeId pv) {
      if (stop) return;
      std::vector<std::pair<int, NodeId>> bound;
      bool ok = true;
      if (!atom.from.is_const) {
        if (binding[atom.from.var] < 0) {
          binding[atom.from.var] = pu;
          bound.emplace_back(atom.from.var, pu);
        } else if (binding[atom.from.var] != pu) {
          ok = false;
        }
      }
      if (ok && !atom.to.is_const) {
        if (binding[atom.to.var] < 0) {
          binding[atom.to.var] = pv;
          bound.emplace_back(atom.to.var, pv);
        } else if (binding[atom.to.var] != pv) {
          ok = false;
        }
      }
      if (ok) recurse(depth + 1);
      for (const auto& [var, node] : bound) {
        (void)node;
        binding[var] = -1;
      }
    };

    if (u >= 0 && v >= 0) {
      if (atom.pair_set.count({u, v})) try_pair(u, v);
    } else if (u >= 0) {
      auto [lo, hi] = atom.by_from.equal_range(u);
      for (auto it = lo; it != hi; ++it) try_pair(u, it->second);
    } else if (v >= 0) {
      auto [lo, hi] = atom.by_to.equal_range(v);
      for (auto it = lo; it != hi; ++it) try_pair(it->second, v);
    } else {
      for (const auto& [pu, pv] : atom.pairs) try_pair(pu, pv);
    }
    used[best] = false;
  };
  OperatorStats join_op;
  join_op.op = "HashJoin";
  join_op.detail = "backtracking";
  for (const JoinAtom& atom : atoms) join_op.rows_in += atom.pairs.size();
  const uint64_t joined_before = stats.join_tuples;
  recurse(0);
  join_op.rows_out = stats.join_tuples - joined_before;
  stats.operators.push_back(std::move(join_op));
  if (emitter.status().ok() && cancel != nullptr && cancel->cancelled() &&
      !emitter.stopped_by_sink()) {
    return Status::Cancelled("query execution cancelled");
  }
  return emitter.status();
}

Result<QueryResult> EvaluateCrpq(const GraphDb& graph, const Query& query,
                                 const EvalOptions& options) {
  return MaterializeResult([&](ResultSink& sink, EvalStats& stats) {
    return EvaluateCrpq(graph, query, options, sink, stats);
  });
}

}  // namespace ecrpq
