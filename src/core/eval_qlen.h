// The length-abstraction engine (Lemma 6.6 / Theorem 6.7).
//
// Q_len replaces every relation R of an ECRPQ by R_len — the relation that
// only constrains component *lengths*. Our engine exploits the abstraction
// structurally: edge labels are erased from the graph (every track advances
// a unary automaton) and every relation is replaced by its pad-profile
// automaton over a one-letter base alphabet. The REI-style PSPACE-hard
// instances of Theorem 6.3 collapse to polynomial size under this
// abstraction, reproducing the PSPACE → NP drop of Figure 1(a).
//
// The arithmetic-progression machinery of the paper's proof (Claim 6.7.1/2)
// is also implemented: path-length sets between node pairs decompose into
// Chrobak progressions (automata/unary.h), and the equal-length fragment is
// decided purely arithmetically (progression intersection via CRT).

#ifndef ECRPQ_CORE_EVAL_QLEN_H_
#define ECRPQ_CORE_EVAL_QLEN_H_

#include "core/evaluator.h"
#include "solver/progression.h"

namespace ecrpq {

/// Evaluates Q_len(G): the query with every relation replaced by its
/// length abstraction, streaming distinct tuples into `sink`. Head path
/// variables are not supported (lengths do not determine paths); node
/// heads and Boolean queries are.
Status EvaluateQlen(const GraphDb& graph, const Query& query,
                    const EvalOptions& options, ResultSink& sink,
                    EvalStats& stats, CompiledQueryPtr compiled = nullptr,
                    GraphIndexPtr index = nullptr);

/// Materializing convenience wrapper (sorted tuples).
Result<QueryResult> EvaluateQlen(const GraphDb& graph, const Query& query,
                                 const EvalOptions& options);

/// The set of lengths of paths from `from` to `to` whose label lies in
/// `language` (null = all paths), as arithmetic progressions.
SemilinearSet1D PathLengthSet(const GraphDb& graph, NodeId from, NodeId to,
                              const RegularRelation* language = nullptr);

/// Intersection of two semilinear sets (pairwise progression intersection
/// via gcd/CRT). Exposed for the equal-length decision fragment and tests.
SemilinearSet1D IntersectSemilinear(const SemilinearSet1D& a,
                                    const SemilinearSet1D& b);

}  // namespace ecrpq

#endif  // ECRPQ_CORE_EVAL_QLEN_H_
