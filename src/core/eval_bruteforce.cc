#include "core/eval_bruteforce.h"

#include <algorithm>
#include <functional>
#include <map>
#include <set>

#include "core/eval_product.h"

namespace ecrpq {

Result<std::vector<GroundAnswer>> BruteForceAnswers(const GraphDb& graph,
                                                    const Query& query,
                                                    int max_len,
                                                    CompiledQueryPtr compiled) {
  auto resolved_or = ResolveQuery(graph, query, std::move(compiled));
  if (!resolved_or.ok()) return resolved_or.status();
  const ResolvedQuery& rq = resolved_or.value();

  const std::vector<Path> all_paths = EnumerateAllPaths(graph, max_len);
  const int num_path_vars = static_cast<int>(query.path_variables().size());
  const int num_node_vars = static_cast<int>(query.node_variables().size());

  std::vector<const Path*> assignment(num_path_vars, nullptr);
  std::set<std::pair<std::vector<NodeId>, std::vector<std::vector<int32_t>>>>
      seen;
  std::vector<GroundAnswer> out;

  auto path_code = [](const Path& p) {
    std::vector<int32_t> code;
    code.push_back(p.start());
    for (const auto& [label, to] : p.steps()) {
      code.push_back(label);
      code.push_back(to);
    }
    return code;
  };

  auto check = [&]() {
    // Derive node bindings from atom endpoints.
    std::vector<NodeId> binding(num_node_vars, -1);
    for (const ResolvedAtom& atom : rq.atoms) {
      const Path& p = *assignment[atom.path];
      if (atom.from.is_const) {
        if (atom.from.node != p.start()) return;
      } else {
        if (binding[atom.from.var] >= 0 &&
            binding[atom.from.var] != p.start()) {
          return;
        }
        binding[atom.from.var] = p.start();
      }
      if (atom.to.is_const) {
        if (atom.to.node != p.end()) return;
      } else {
        if (binding[atom.to.var] >= 0 && binding[atom.to.var] != p.end()) {
          return;
        }
        binding[atom.to.var] = p.end();
      }
    }
    // Relations.
    for (const ResolvedRelation& rel : rq.relations()) {
      std::vector<Word> labels;
      for (int p : rel.paths) labels.push_back(assignment[p]->Label());
      if (!rel.relation->Contains(labels)) return;
    }
    // Linear atoms.
    for (const LinearAtom& atom : query.linear_atoms()) {
      int64_t lhs = 0;
      for (const LinearTerm& term : atom.terms) {
        const Path& p = *assignment[query.PathVarIndex(term.path)];
        int64_t value;
        if (term.symbol < 0) {
          value = p.length();
        } else {
          value = 0;
          for (const auto& [label, to] : p.steps()) {
            (void)to;
            if (label == term.symbol) ++value;
          }
        }
        lhs += term.coef * value;
      }
      bool ok = (atom.cmp == Cmp::kLe && lhs <= atom.rhs) ||
                (atom.cmp == Cmp::kGe && lhs >= atom.rhs) ||
                (atom.cmp == Cmp::kEq && lhs == atom.rhs);
      if (!ok) return;
    }
    // Record the head projection.
    GroundAnswer answer;
    for (const NodeTerm& term : query.head_nodes()) {
      answer.nodes.push_back(binding[query.NodeVarIndex(term.name)]);
    }
    std::vector<std::vector<int32_t>> path_codes;
    for (const std::string& p : query.head_paths()) {
      const Path& path = *assignment[query.PathVarIndex(p)];
      answer.paths.push_back(path);
      path_codes.push_back(path_code(path));
    }
    if (seen.insert({answer.nodes, path_codes}).second) {
      out.push_back(std::move(answer));
    }
  };

  std::function<void(int)> recurse = [&](int var) {
    if (var == num_path_vars) {
      check();
      return;
    }
    for (const Path& p : all_paths) {
      assignment[var] = &p;
      recurse(var + 1);
    }
  };
  recurse(0);
  return out;
}

Status EvaluateBruteForce(const GraphDb& graph, const Query& query,
                          const EvalOptions& options, ResultSink& sink,
                          EvalStats& stats, CompiledQueryPtr compiled) {
  auto answers = BruteForceAnswers(graph, query, options.bruteforce_max_len,
                                   std::move(compiled));
  if (!answers.ok()) return answers.status();
  stats.engine = "bruteforce";
  if (options.cancellation != nullptr &&
      options.cancellation->cancelled()) {
    return Status::Cancelled("query execution cancelled");
  }

  std::set<std::vector<NodeId>> tuples;
  for (const GroundAnswer& answer : answers.value()) {
    if (tuples.insert(answer.nodes).second) {
      if (!sink.Emit(answer.nodes, nullptr)) break;
    }
  }
  return Status::OK();
}

Result<QueryResult> EvaluateBruteForce(const GraphDb& graph,
                                       const Query& query,
                                       const EvalOptions& options) {
  return MaterializeResult([&](ResultSink& sink, EvalStats& stats) {
    return EvaluateBruteForce(graph, query, options, sink, stats);
  });
}

}  // namespace ecrpq
