// The general ECRPQ engine: on-the-fly evaluation of the convolution
// product (Theorem 5.1, with the on-the-fly state handling of
// Theorems 6.1/6.3).
//
// The engine never materializes G^m or the joined relation automaton A_Q.
// A configuration is (one NFA state-subset per relation atom, one graph
// node per path variable, a pad mask); successors choose, per track, either
// a graph edge or ⊥ (monotone pads), and advance each relation on the
// projection of the chosen tuple letter. Node-variable equalities anchor
// start tuples (enumerated) and filter accepting configurations.

#ifndef ECRPQ_CORE_EVAL_PRODUCT_H_
#define ECRPQ_CORE_EVAL_PRODUCT_H_

#include <set>
#include <unordered_map>
#include <vector>

#include "core/evaluator.h"
#include "query/analysis.h"

namespace ecrpq {

struct PhysicalPlan;  // core/planner.h

/// A node term resolved against a graph: constant node or variable index.
struct ResolvedTerm {
  bool is_const = false;
  int var = -1;      // index into Query::node_variables() when !is_const
  NodeId node = -1;  // bound node when is_const
};

/// A path atom with resolved terms; `path` indexes Query::path_variables().
struct ResolvedAtom {
  ResolvedTerm from;
  ResolvedTerm to;
  int path = -1;
};

/// A relation atom prepared for simulation: ε-free NFA with per-state
/// transition maps, and the path-variable indices it reads.
struct ResolvedRelation {
  const RegularRelation* relation = nullptr;
  Nfa nfa;  // ε-free
  std::vector<std::unordered_map<Symbol, std::vector<StateId>>> transitions;
  std::vector<StateId> initial;
  std::vector<bool> accepting;
  std::vector<int> paths;  // indices into Query::path_variables()

  /// tape_masks[s][tape]: bitmask of base symbols some transition out of
  /// state `s` can read on `tape` (a non-pad tape component). The product
  /// search intersects these over a configuration's live state-sets to
  /// expand only label slices that can advance every relation — the
  /// restricted-edge access of Thm 6.1. All-ones when the base alphabet
  /// exceeds 64 letters (no pruning).
  std::vector<std::vector<uint64_t>> tape_masks;

  /// The reversed tape, compiled alongside the forward one so backward /
  /// bidirectional half-searches simulate Reverse(nfa) over the SAME
  /// state id space (meet detection intersects forward and backward
  /// state-subsets directly):
  ///   rev_transitions[s][sym] — predecessors of `s` under `sym` (the
  ///       reversed NFA's arcs; state ids coincide with `nfa`'s);
  ///   rev_initial / rev_accepting — the forward accepting / initial
  ///       states (a backward simulation starts at acceptance and
  ///       succeeds on reaching an initial state);
  ///   rev_tape_masks[s][tape] — per-state *in*-letter masks: base
  ///       symbols some transition INTO `s` reads on `tape`. A backward
  ///       expansion intersects these the way the forward search uses
  ///       tape_masks, gating GraphIndex::In() slices by InLabelMask.
  std::vector<std::unordered_map<Symbol, std::vector<StateId>>>
      rev_transitions;
  std::vector<StateId> rev_initial;
  std::vector<bool> rev_accepting;
  std::vector<std::vector<uint64_t>> rev_tape_masks;

  ResolvedRelation() : nfa(0) {}
};

/// The graph-independent compiled form of a query: per-relation ε-free
/// NFAs with transition maps, plus the structural analysis. This is the
/// query-dependent work the paper's complexity split charges to
/// compilation — PreparedQuery builds it once and shares it across
/// executions; ResolveQuery builds it on the fly when absent.
struct CompiledQuery {
  std::vector<ResolvedRelation> relations;
  QueryAnalysis analysis;
  int base_size = 0;  ///< alphabet size the relations were checked against
};

/// Compiles `query`'s relation atoms against a base alphabet of
/// `base_size` letters (InvalidArgument on mismatch) and analyzes it.
Result<CompiledQueryPtr> CompileQuery(const Query& query, int base_size);

/// Query resolved against a graph (constants bound, relations prepared).
struct ResolvedQuery {
  const GraphDb* graph = nullptr;
  const Query* query = nullptr;
  std::vector<ResolvedAtom> atoms;
  CompiledQueryPtr compiled;  ///< never null after ResolveQuery
  GraphIndexPtr index;        ///< CSR view of *graph; null = scan GraphDb

  const std::vector<ResolvedRelation>& relations() const {
    return compiled->relations;
  }
  const QueryAnalysis& analysis() const { return compiled->analysis; }
};

/// Resolves and checks (constants exist, no unbound parameters, relation
/// alphabets match). `compiled` reuses a prior CompileQuery result for
/// this query; when null it is built here. `index` (optional) is a
/// prebuilt CSR view of `graph`; when null and `options.use_graph_index`
/// holds, engines build a per-run index after resolving.
Result<ResolvedQuery> ResolveQuery(const GraphDb& graph, const Query& query,
                                   CompiledQueryPtr compiled = nullptr,
                                   GraphIndexPtr index = nullptr);

/// Shared streaming emission for engines that project head tuples during
/// a join: deduplicates, builds the Prop 5.2 path-answer automaton per
/// new tuple when the query requests it, and pushes into the sink.
/// Emit returns false when the engine should stop searching — either the
/// sink requested early termination or path-answer construction failed
/// (check status()). When the execution carries a CancellationToken
/// (EvalOptions::cancellation), a sink-requested stop trips it, so any
/// workers still running unwind promptly (limit / exists pushdown
/// reaching the whole execution, not just the join loop).
class HeadTupleEmitter {
 public:
  HeadTupleEmitter(const ResolvedQuery& rq, const EvalOptions& options,
                   ResultSink& sink);

  /// False = stop the search. Duplicate tuples are ignored (returns true).
  bool Emit(const std::vector<NodeId>& head);

  const Status& status() const { return status_; }

  /// True when the sink requested early termination (limit reached) —
  /// distinguishes a benign stop from an external cancellation.
  bool stopped_by_sink() const { return stopped_by_sink_; }

 private:
  const ResolvedQuery& rq_;
  const EvalOptions& options_;
  ResultSink& sink_;
  bool with_paths_;
  bool stopped_by_sink_ = false;
  std::set<std::vector<NodeId>> seen_;
  Status status_;
};

/// Evaluates with the product engine, streaming distinct tuples into
/// `sink`. Rejects linear atoms (FailedPrecondition) — those belong to
/// the counting engine. `plan` (optional) is a PhysicalPlan for this
/// query produced by PlanQuery (core/planner.h) — prepared executions
/// pass their cached plan; when null (or planned for another engine) the
/// engine plans on the fly against its index.
Status EvaluateProduct(const GraphDb& graph, const Query& query,
                       const EvalOptions& options, ResultSink& sink,
                       EvalStats& stats, CompiledQueryPtr compiled = nullptr,
                       GraphIndexPtr index = nullptr,
                       const PhysicalPlan* plan = nullptr);

/// Materializing convenience wrapper (sorted tuples).
Result<QueryResult> EvaluateProduct(const GraphDb& graph, const Query& query,
                                    const EvalOptions& options);

/// Builds the Prop 5.2 answer automaton for one head-node binding.
/// `head_nodes` is parallel to query.head_nodes(). All tracks of the query
/// participate; the automaton is projected onto the head path variables
/// (all-pad projections are ε-eliminated so counting stays exact).
Result<PathAnswerSet> BuildPathAnswerSet(
    const GraphDb& graph, const Query& query, const EvalOptions& options,
    const std::vector<NodeId>& head_nodes, CompiledQueryPtr compiled = nullptr,
    GraphIndexPtr index = nullptr);

/// The materialized product automaton of one synchronization component
/// under a full node assignment (used by the counting engine of Thm 8.5).
struct ComponentProductGraph {
  std::vector<int> tracks;  ///< global path-variable id per local track
  int num_states = 0;
  std::vector<bool> initial;
  std::vector<bool> accepting;
  /// (from, to, per-track letters with kPad for ⊥).
  std::vector<std::tuple<int, int, std::vector<Symbol>>> arcs;
};

/// Builds one product graph per synchronization component with every node
/// variable fixed by `assignment` (parallel to query.node_variables()).
Result<std::vector<ComponentProductGraph>> BuildComponentProducts(
    const GraphDb& graph, const Query& query, const EvalOptions& options,
    const std::vector<NodeId>& assignment, CompiledQueryPtr compiled = nullptr,
    GraphIndexPtr index = nullptr);

}  // namespace ecrpq

#endif  // ECRPQ_CORE_EVAL_PRODUCT_H_
