#include "api/prepared_query.h"

#include <algorithm>

#include "api/database.h"
#include "query/builder.h"

namespace ecrpq {

Engine PreparedQuery::engine() const {
  return SelectEngine(plan_->query, plan_->compiled->analysis,
                      db_->eval_options().engine);
}

PhysicalPlanPtr PreparedQuery::PlanForIndex(GraphIndexPtr index) const {
  std::lock_guard<std::mutex> lock(plan_->memo_mutex);
  if (plan_->physical == nullptr || plan_->physical_index.lock() != index) {
    plan_->physical = std::make_shared<PhysicalPlan>(PlanQuery(
        plan_->query, *plan_->compiled, index.get(), db_->eval_options()));
    plan_->physical_index = index;
  }
  return plan_->physical;
}

PhysicalPlanPtr PreparedQuery::plan() const {
  return PlanForIndex(db_->graph_index());  // may lazily (re)build
}

Explanation PreparedQuery::Explain() const {
  Explanation out;
  out.plan = plan();
  out.engine = out.plan->engine;
  out.engine_name = EngineName(out.engine);
  out.analysis = plan_->compiled->analysis.Describe();
  out.plan_text = out.plan->Describe(plan_->query);
  out.optimizer_report = plan_->optimizer_report;
  return out;
}

std::string Explanation::ToString() const {
  std::string out = plan_text;
  out += "analysis: " + analysis + "\n";
  std::string report = optimizer_report.Describe();
  if (!report.empty()) out += "optimizer: " + report + "\n";
  return out;
}

EvalOptions PreparedQuery::EffectiveOptions(const ExecuteOptions& exec) const {
  EvalOptions options = db_->eval_options();
  if (exec.engine.has_value()) options.engine = *exec.engine;
  if (exec.build_path_answers.has_value()) {
    options.build_path_answers = *exec.build_path_answers;
  }
  if (exec.num_threads.has_value()) options.num_threads = *exec.num_threads;
  if (exec.cancellation != nullptr) options.cancellation = exec.cancellation;
  return options;
}

Result<std::shared_ptr<const Query>> PreparedQuery::BindParams(
    const Params& params) const {
  const Query& query = plan_->query;

  // Reject bindings for parameters the query does not have.
  for (const auto& [name, node] : params.bindings()) {
    (void)node;
    const auto& known = query.parameter_names();
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      return Status::InvalidArgument("query has no parameter '$" + name +
                                     "'");
    }
  }
  if (!query.has_parameters()) {
    // Share the plan's query (aliasing: the plan keeps it alive).
    return std::shared_ptr<const Query>(plan_, &plan_->query);
  }

  // Every parameter must be bound, to a node that exists.
  const GraphDb& graph = db_->graph();
  for (const std::string& name : query.parameter_names()) {
    auto it = params.bindings().find(name);
    if (it == params.bindings().end()) {
      return Status::FailedPrecondition("parameter '$" + name +
                                        "' is unbound");
    }
    if (!graph.FindNode(it->second).has_value()) {
      return Status::NotFound("parameter '$" + name +
                              "' is bound to unknown node '" + it->second +
                              "'");
    }
  }

  // Rebuild the query with parameters substituted by node constants. The
  // structure (variables, path variables, relation atoms) is unchanged, so
  // the plan's compiled relations and analysis stay valid.
  auto substitute = [&](const NodeTerm& term) {
    if (!term.is_parameter) return term;
    return NodeTerm::Const(params.bindings().at(term.name));
  };
  QueryBuilder builder;
  for (const PathAtom& atom : query.path_atoms()) {
    builder.Atom(substitute(atom.from), atom.path, substitute(atom.to));
  }
  for (const RelationAtom& atom : query.relation_atoms()) {
    builder.Relation(atom.relation, atom.paths, atom.name);
  }
  for (const LinearAtom& atom : query.linear_atoms()) {
    builder.Linear(atom);
  }
  std::vector<std::string> head_nodes;
  for (const NodeTerm& term : query.head_nodes()) {
    head_nodes.push_back(term.name);
  }
  builder.Head(std::move(head_nodes), query.head_paths());
  auto bound = builder.Build();
  if (!bound.ok()) return bound.status();
  return std::make_shared<const Query>(std::move(bound).value());
}

Result<ResultCursor> PreparedQuery::Execute(const Params& params,
                                            ExecuteOptions exec) const {
  // Pin one snapshot (graph + index) for parameter binding and planning;
  // the cursor re-pins at Run time (it holds the read guard for the
  // engine run, so a MutateGraph between Execute and the first Next only
  // delays the cursor, never races it).
  auto read_lock = db_->ReadLock();
  auto bound = BindParams(params);
  if (!bound.ok()) return bound.status();
  GraphIndexPtr index = db_->graph_index_locked();
  // The cached physical plan is structural (components, ordering,
  // estimates), so it survives parameter substitution; an engine override
  // invalidates it for this execution (the engine replans on the fly).
  PhysicalPlanPtr physical =
      exec.engine.has_value() ? nullptr : PlanForIndex(index);
  return ResultCursor(db_, &db_->graph(), std::move(index),
                      EffectiveOptions(exec), exec.limit, exec.deadline,
                      std::move(bound).value(), plan_->compiled,
                      std::move(physical),
                      plan_->optimizer_report.proven_empty);
}

Result<QueryResult> PreparedQuery::ExecuteAll(const Params& params) const {
  // Hold the session's read guard for the whole engine run: concurrent
  // ExecuteAll calls share it, MutateGraph waits for them.
  auto read_lock = db_->ReadLock();
  auto bound = BindParams(params);
  if (!bound.ok()) return bound.status();
  if (plan_->optimizer_report.proven_empty) {
    EvalStats stats;
    stats.engine = "static-empty";
    return QueryResult({}, {}, std::move(stats));
  }
  Evaluator evaluator(&db_->graph(), EffectiveOptions({}));
  GraphIndexPtr index = db_->graph_index_locked();
  evaluator.set_graph_index(index);
  PhysicalPlanPtr physical = PlanForIndex(std::move(index));
  return MaterializeResult([&](ResultSink& sink, EvalStats& stats) {
    return evaluator.Evaluate(*bound.value(), sink, stats, plan_->compiled,
                              physical.get());
  });
}

Result<bool> PreparedQuery::Exists(const Params& params) const {
  ExecuteOptions exec;
  exec.limit = 1;
  auto cursor = Execute(params, exec);
  if (!cursor.ok()) return cursor.status();
  bool found = cursor.value().exists();
  if (!cursor.value().status().ok()) return cursor.value().status();
  return found;
}

}  // namespace ecrpq
