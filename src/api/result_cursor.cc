#include "api/result_cursor.h"

#include <shared_mutex>

#include "api/database.h"

namespace ecrpq {

void ResultCursor::Run(uint64_t limit) {
  ran_ = true;
  sink_ = MaterializingSink(limit);
  if (query_ == nullptr) return;  // default-constructed: empty, exhausted
  if (static_empty_) {
    // The optimizer proved the query empty on every graph; skip the engine.
    stats_.engine = "static-empty";
    return;
  }
  // Hold the session's read guard for the engine run: MutateGraph waits
  // for in-flight cursors, and the engine (including its worker lanes,
  // which run while this thread blocks on the lane barrier) reads a
  // stable graph. The Evaluator revalidates the pinned index snapshot
  // against the graph counters, so a mutation between Execute and the
  // first Next() is picked up here.
  std::shared_lock<std::shared_mutex> read_lock;
  if (db_ != nullptr) read_lock = db_->ReadLock();
  Evaluator evaluator(graph_, options_);
  evaluator.set_graph_index(index_);
  status_ = evaluator.Evaluate(*query_, sink_, stats_, compiled_,
                               plan_.get());
}

bool ResultCursor::Next() {
  if (!ran_) Run(limit_);
  if (!status_.ok()) return false;
  size_t next = (rows_returned_ == 0) ? 0 : pos_ + 1;
  if (next >= sink_.tuples.size()) return false;
  pos_ = next;
  ++rows_returned_;
  return true;
}

bool ResultCursor::exists() {
  if (!ran_) Run(1);
  return status_.ok() && !sink_.tuples.empty();
}

}  // namespace ecrpq
