#include "api/result_cursor.h"

#include <shared_mutex>

#include "api/database.h"
#include "util/deadline.h"

namespace ecrpq {

void ResultCursor::Run(uint64_t limit) {
  ran_ = true;
  sink_ = MaterializingSink(limit);
  if (query_ == nullptr) return;  // default-constructed: empty, exhausted
  if (static_empty_) {
    // The optimizer proved the query empty on every graph; skip the engine.
    stats_.engine = "static-empty";
    return;
  }
  // An expired deadline sheds the execution before it pins a snapshot or
  // touches the engine: a queued request that missed its deadline must
  // fail as Cancelled, not run to completion late (and must not hold the
  // read guard while doing stale work).
  if (deadline_.has_value() &&
      std::chrono::steady_clock::now() >= *deadline_) {
    status_ = Status::Cancelled("deadline exceeded before evaluation");
    return;
  }
  // Arm the deadline for the duration of the engine run: the shared
  // monitor trips the execution's token at the deadline and the engine
  // unwinds with Status::Cancelled mid-search. The guard disarms on every
  // exit path, so a finished execution can never trip a token late.
  DeadlineGuard deadline_guard;
  if (deadline_.has_value()) {
    if (options_.cancellation == nullptr) {
      options_.cancellation = std::make_shared<CancellationToken>();
    }
    deadline_guard = DeadlineGuard(options_.cancellation, *deadline_);
  }
  // Hold the session's read guard for the engine run: MutateGraph waits
  // for in-flight cursors, and the engine (including its worker lanes,
  // which run while this thread blocks on the lane barrier) reads a
  // stable graph. The Evaluator revalidates the pinned index snapshot
  // against the graph counters, so a mutation between Execute and the
  // first Next() is picked up here.
  std::shared_lock<std::shared_mutex> read_lock;
  if (db_ != nullptr) read_lock = db_->ReadLock();
  Evaluator evaluator(graph_, options_);
  evaluator.set_graph_index(index_);
  status_ = evaluator.Evaluate(*query_, sink_, stats_, compiled_,
                               plan_.get());
  // The engine may have emitted a complete result in the same instant the
  // deadline tripped the token; completing OK is correct then. But an
  // engine that returned OK on a tripped DEADLINE token without having
  // finished cannot happen: trips surface as Cancelled from the engines.
}

bool ResultCursor::Next() {
  if (!ran_) Run(limit_);
  if (!status_.ok()) return false;
  size_t next = (rows_returned_ == 0) ? 0 : pos_ + 1;
  if (next >= sink_.tuples.size()) return false;
  pos_ = next;
  ++rows_returned_;
  return true;
}

bool ResultCursor::exists() {
  if (!ran_) Run(1);
  return status_.ok() && !sink_.tuples.empty();
}

}  // namespace ecrpq
