// Session facade: the single public entry point of the library.
//
//   GraphDb g;
//   ... load nodes/edges ...
//   Database db(std::move(g));
//   auto prepared = db.Prepare("Ans(y) <- ($start, p, y), 'advisor'+(p)");
//   auto cursor = prepared.value().Execute(Params().Set("start", "ann"));
//   while (cursor.value().Next()) { ... cursor.value().tuple() ... }
//
// A Database owns the graph, a relation registry (a copy of the shared
// built-ins, extensible per session), the session-default EvalOptions, and
// an LRU plan cache keyed by query text: preparing the same text twice
// reuses the compiled plan (parse, optimization, relation automata,
// analysis) instead of redoing the query-dependent work.
//
// Concurrency model
// -----------------
// A Database is safe for inter-query parallelism: any number of threads
// may call Prepare / Execute / Exists and run PreparedQuery executions on
// one shared Database concurrently. The implementation is a snapshot
// protocol:
//
//   - the graph is guarded by a reader/writer lock: every execution holds
//     it shared for its whole engine run; MutateGraph takes it exclusive,
//     applies the mutation, and invalidates the caches before readers
//     resume;
//   - the CSR GraphIndex is an immutable snapshot behind a shared_ptr:
//     executions pin the current snapshot and keep using it even while a
//     newer one is built (the swap happens under a mutex, the old
//     snapshot dies with its last execution);
//   - the LRU plan cache (and its hit/miss counters) is mutex-guarded;
//     the per-plan physical-plan memo has its own lock in CompiledPlan.
//
// NOT thread-safe: mutable_graph() (a bare reference for single-threaded
// loading — use MutateGraph once queries may be in flight) and reading
// graph() while a writer is inside MutateGraph.

#ifndef ECRPQ_API_DATABASE_H_
#define ECRPQ_API_DATABASE_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "api/prepared_query.h"
#include "core/evaluator.h"
#include "graph/graph.h"
#include "graph/index.h"
#include "query/parser.h"
#include "util/status.h"

namespace ecrpq {

class DurableLog;
struct DurabilityOptions;
struct WalRecoveryInfo;

struct DatabaseOptions {
  /// Session-default evaluation options (engine choice, budgets,
  /// num_threads, ...).
  EvalOptions eval;

  /// Maximum number of compiled plans kept in the LRU cache (0 disables
  /// caching).
  size_t plan_cache_capacity = 64;

  // ---- delta-snapshot compaction policy (see ApplyDelta) ----

  /// Fold delta segments into a fresh base once the overlay holds more
  /// than this fraction of the base's edges. Keeps the touched-node
  /// directory (one extra binary search per row lookup on delta
  /// snapshots) small relative to the data.
  double compact_delta_fraction = 0.10;
  /// ... or once this many segments have stacked up, whatever the edge
  /// volume (each batch adds one segment; a long chain of tiny batches
  /// should still fold eventually).
  size_t compact_max_segments = 32;
  /// Compact on a background thread (spawned lazily on first trigger).
  /// When false, a triggering ApplyDelta folds synchronously before
  /// returning — deterministic, used by tests and single-threaded tools.
  bool background_compaction = true;
};

// EdgeSpec and GraphMutation — the batched-write value types — moved to
// graph/graph.h so the WAL layer can serialize them without depending
// on this facade; they remain visible here through that include.

/// What a Database::ApplyDelta batch did.
struct MutationSummary {
  int added_edges = 0;
  int removed_edges = 0;
  /// remove_edges entries that matched no existing edge (unknown node,
  /// unknown label, or edge not present).
  int skipped_removes = 0;
  int new_nodes = 0;
  // Post-batch graph totals.
  int num_nodes = 0;
  int num_edges = 0;
  uint64_t version = 0;
  /// True when the index advanced via the O(delta) overlay path; false
  /// when there was no index to advance (first use, indexing disabled,
  /// or a stale snapshot) and the next reader full-builds lazily.
  bool delta_applied = false;
  /// True when a durable Database rejected the batch (degraded WAL):
  /// nothing was applied. Only the legacy ApplyDelta wrappers report
  /// this way — durable writers should call CommitDelta and get a
  /// typed Status instead.
  bool rejected = false;
  /// LSN the batch committed at (0 on a non-durable Database).
  uint64_t lsn = 0;
};

class Database {
 public:
  // Out of line: member construction/destruction needs the complete
  // DurableLog type (database.cc sees wal/durable.h; this header only
  // forward-declares it).
  explicit Database(GraphDb graph, DatabaseOptions options = {});

  // A session is an identity: outstanding PreparedQuery/ResultCursor
  // handles point back into it, and the LRU cache holds self-referential
  // iterators, so copying or moving would dangle both.
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  ~Database();

  // ---- durability (src/wal/) ----

  /// Opens a crash-safe Database backed by the write-ahead log in
  /// `dir`: flocks the dir, loads the newest checkpoint snapshot,
  /// replays the WAL tail through the ApplyDelta machinery (truncating
  /// at the first torn/corrupt record), and arranges for every
  /// subsequent CommitDelta to append to the log BEFORE touching the
  /// graph. On a fresh dir the graph starts as `seed` and an initial
  /// checkpoint is published (it pins node/symbol ids for id-level log
  /// records — OpenDurable fails rather than run without one). When
  /// the dir already holds data, `seed` is ignored: the recovered
  /// state wins. `recovery` (optional) receives what recovery found.
  static Result<std::unique_ptr<Database>> OpenDurable(
      const std::string& dir, const DurabilityOptions& durability,
      DatabaseOptions options = {}, GraphDb seed = GraphDb(),
      WalRecoveryInfo* recovery = nullptr);

  /// The durable write path: appends the batch to the WAL (fsyncing
  /// per the configured policy), then applies it exactly like
  /// ApplyDelta. The ack (an ok Result) implies the configured
  /// durability point. Fails with kUnavailable ("DEGRADED: ...") when
  /// the log can't accept writes — nothing is applied in that case, so
  /// memory never runs ahead of what recovery can reproduce. On a
  /// non-durable Database this is plain ApplyDelta in a Result.
  Result<MutationSummary> CommitDelta(const GraphMutation& mutation);
  /// Id-level overload; ids are validated (not DCHECKed) so a bad
  /// batch is rejected before it reaches the log.
  Result<MutationSummary> CommitDelta(const std::vector<Edge>& add,
                                      const std::vector<Edge>& remove);

  /// fsyncs outstanding WAL records now regardless of policy (SIGTERM
  /// drain). Ok on a non-durable Database.
  Status FlushDurable();

  /// When degraded, attempts recovery: repairs the WAL tail, probes the
  /// disk, and retries a pending MutateGraph checkpoint. Returns true
  /// when the write path is healthy after the call. Cheap when healthy;
  /// serving loops call it periodically.
  bool ProbeDurability();

  bool durable() const { return wal_ != nullptr; }
  /// True when durable writes are currently rejected (sick disk or a
  /// failed MutateGraph checkpoint pending retry).
  bool write_degraded() const;
  /// The underlying log, for stats introspection (null when
  /// non-durable).
  const DurableLog* durable_log() const { return wal_.get(); }
  /// LSN of the last batch applied to the graph (0 when non-durable).
  uint64_t applied_lsn() const {
    return applied_lsn_.load(std::memory_order_relaxed);
  }

  const GraphDb& graph() const { return graph_; }

  /// Mutable graph access for single-threaded loading. Mutations can grow
  /// the alphabet, so cached plans are dropped; outstanding PreparedQuery
  /// handles keep their (possibly stale) plans and re-resolve constants
  /// per execution. The cached GraphIndex snapshot is dropped with the
  /// plans and rebuilt lazily on the next execution. NOT safe while other
  /// threads execute queries — use MutateGraph for that.
  GraphDb& mutable_graph() {
    ClearPlanCache();
    return graph_;
  }

  /// Thread-safe mutation: runs `fn` with exclusive access to the graph
  /// (all concurrent executions drain first and block until `fn`
  /// returns), then invalidates the plan cache and the GraphIndex
  /// snapshot. Executions that pinned the old snapshot before the write
  /// finish against it; later executions see the new graph and a fresh
  /// snapshot.
  /// NOTE: this is the heavyweight escape hatch — `fn` can do anything to
  /// the graph, so the index snapshot is dropped wholesale and the next
  /// reader pays a full O(V+E) rebuild (coalesced: see
  /// graph_index_locked). Batched edge/node writes should use ApplyDelta,
  /// which advances the snapshot in O(batch) instead.
  /// On a durable Database the arbitrary `fn` cannot be logged as a
  /// WAL record, so durability comes from a synchronous checkpoint
  /// published before this returns; if that publish fails the write
  /// path degrades (CommitDelta rejects, ProbeDurability retries).
  void MutateGraph(const std::function<void(GraphDb&)>& fn);

  /// The O(delta) write path. Applies the batch to the graph under the
  /// exclusive writer lock (concurrent executions drain first), then
  /// advances the index by layering a delta segment onto the current
  /// snapshot (GraphIndex::ApplyDelta) instead of discarding it — cost
  /// O(|batch| + Σ degree(touched)), independent of graph size.
  /// Executions that pinned the old snapshot finish against it; the
  /// serving layer's snapshot-keyed result cache misses naturally (each
  /// delta snapshot is a distinct GraphIndexPtr). Cached plans survive
  /// unless the batch grew the alphabet (compiled automata are sized by
  /// it); constants re-resolve per execution, and plans re-cost against
  /// the new snapshot. When the overlay outgrows
  /// DatabaseOptions::compact_delta_fraction of the base (or
  /// compact_max_segments), segments are folded into a fresh base via the
  /// parallel Build — on a background thread by default.
  /// On a durable Database this forwards through CommitDelta; a WAL
  /// rejection surfaces as MutationSummary::rejected (durable callers
  /// should prefer CommitDelta for the typed error).
  MutationSummary ApplyDelta(const GraphMutation& mutation);

  /// Id-level overload: labels already interned, node ids in range
  /// (callers doing bulk ingest with ids they minted via MutateGraph /
  /// mutable_graph). `remove` entries matching no edge are skipped and
  /// counted, same as the name-level path.
  MutationSummary ApplyDelta(const std::vector<Edge>& add,
                             const std::vector<Edge>& remove);

  /// Synchronously folds the current snapshot's delta segments into a
  /// fresh base (no-op when there is no delta). Takes the shared graph
  /// guard — safe alongside executions; writers wait. Exposed for tests
  /// and tools; normal operation relies on the threshold policy.
  void CompactIndexNow();

  /// The session's CSR label index of the graph (see graph/index.h):
  /// built lazily on first use, shared by every PreparedQuery execution,
  /// and invalidated together with the plan cache on graph or relation
  /// mutation. A snapshot whose node/edge/label counters no longer match
  /// the graph is rebuilt here too (GraphDb is append-only, so the
  /// counters detect mutation through a retained mutable_graph()
  /// reference). Null when the session disables indexing
  /// (eval.use_graph_index = false). Thread-safe: the returned snapshot
  /// is immutable and stays valid after later invalidations.
  GraphIndexPtr graph_index() const {
    std::shared_lock<std::shared_mutex> lock(graph_mutex_);
    return graph_index_locked();
  }

  /// The session's relation registry (a copy of the built-ins).
  const RelationRegistry& registry() const { return registry_; }

  /// Public shared guard over the graph for snapshot readers outside the
  /// cursor machinery — e.g. the serving layer rendering NodeName()s of a
  /// finished execution while a MutateGraph writer may be pending. Hold
  /// it only around short read sections; executions take it internally.
  std::shared_lock<std::shared_mutex> SharedReadGuard() const {
    return ReadLock();
  }

  /// Registers a custom relation (or factory) on the session. Cached
  /// plans are dropped at this mutation point: a re-registered name must
  /// not keep resolving through an old plan. Takes the writer lock, so it
  /// is safe alongside concurrent executions.
  void RegisterRelation(std::string name,
                        std::shared_ptr<const RegularRelation> relation) {
    std::unique_lock<std::shared_mutex> lock(graph_mutex_);
    ClearPlanCache();
    registry_.Register(std::move(name), std::move(relation));
  }
  void RegisterRelation(std::string name, RelationRegistry::Factory factory) {
    std::unique_lock<std::shared_mutex> lock(graph_mutex_);
    ClearPlanCache();
    registry_.Register(std::move(name), std::move(factory));
  }

  const EvalOptions& eval_options() const { return options_.eval; }

  /// Compiles `text` (or fetches it from the plan cache): parse →
  /// validate → optimize → relation automata + analysis. Thread-safe;
  /// concurrent misses on the same text may compile twice but converge on
  /// one cached plan.
  Result<PreparedQuery> Prepare(const std::string& text);

  /// One-shot convenience: Prepare (through the cache) + ExecuteAll.
  Result<QueryResult> Execute(const std::string& text,
                              const Params& params = {});

  /// One-shot satisfiability: stops at the first answer.
  Result<bool> Exists(const std::string& text, const Params& params = {});

  // ---- plan cache introspection ----

  /// Number of full O(V+E) GraphIndex::Build runs this session performed
  /// on the lazy read path (graph_index). With single-flight coalescing,
  /// N readers racing one invalidation contribute exactly 1.
  uint64_t index_full_builds() const {
    return index_full_builds_.load(std::memory_order_relaxed);
  }

  uint64_t plan_cache_hits() const {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    return hits_;
  }
  uint64_t plan_cache_misses() const {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    return misses_;
  }
  size_t plan_cache_size() const {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    return cache_.size();
  }
  void ClearPlanCache() {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    cache_.clear();
    lru_.clear();
    index_.reset();  // same invalidation point: the graph may change next
  }

 private:
  friend class PreparedQuery;
  friend class ResultCursor;

  /// Shared guard over graph_ (and registry_), held by executions for the
  /// duration of their engine run. Lock order: graph_mutex_ before
  /// cache_mutex_ / CompiledPlan::memo_mutex.
  std::shared_lock<std::shared_mutex> ReadLock() const {
    return std::shared_lock<std::shared_mutex>(graph_mutex_);
  }

  /// True when `index` is a current snapshot of graph_. Every GraphDb
  /// mutation — including add+remove sequences that leave the node/edge
  /// counts unchanged — bumps the graph's monotone version counter, and
  /// snapshots record the version they were built at, so a single compare
  /// is sound even against mutation through a retained mutable_graph()
  /// reference. Caller holds ReadLock.
  bool IndexFresh(const GraphIndexPtr& index) const {
    return index != nullptr && index->version() == graph_.version();
  }

  /// graph_index() body; the caller must hold ReadLock (shared or
  /// exclusive) so the staleness check and the rebuild read a stable
  /// graph. Single-flight: racing readers that all miss serialize on
  /// build_mutex_, the first one runs the O(V+E) build, and the rest find
  /// the fresh snapshot on their post-acquire recheck — N racing readers
  /// after one invalidation cost exactly one build. The build runs
  /// OUTSIDE cache_mutex_, so concurrent plan-cache hits never wait on
  /// it. Lock order: graph_mutex_ → build_mutex_ → cache_mutex_.
  GraphIndexPtr graph_index_locked() const {
    if (!options_.eval.use_graph_index) return nullptr;
    {
      std::lock_guard<std::mutex> lock(cache_mutex_);
      if (IndexFresh(index_)) return index_;
    }
    std::lock_guard<std::mutex> build_lock(build_mutex_);
    {
      std::lock_guard<std::mutex> lock(cache_mutex_);
      if (IndexFresh(index_)) return index_;  // a coalesced builder won
    }
    GraphIndexPtr built = GraphIndex::Build(graph_);
    index_full_builds_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(cache_mutex_);
    index_ = built;  // fresh by construction: graph stable under ReadLock
    return index_;
  }

  /// Shared tail of the ApplyDelta overloads: stamps the post-batch
  /// totals, advances (or drops) the index snapshot, clears plans iff the
  /// alphabet grew, and triggers compaction. Caller holds the exclusive
  /// graph lock; `prev`/`prev_fresh` were captured BEFORE the batch
  /// touched graph_.
  MutationSummary FinishDeltaLocked(GraphIndexPtr prev, bool prev_fresh,
                                    uint64_t pre_version, int old_num_labels,
                                    int old_num_nodes,
                                    GraphIndex::Delta* delta,
                                    MutationSummary* summary);

  /// Appends the batch to the WAL before anything touches graph_
  /// (write-ahead). No-op Ok when non-durable. Caller holds the
  /// exclusive graph lock. On success `*lsn` is the record's LSN.
  Status LogBatchLocked(const GraphMutation* mutation,
                        const std::vector<Edge>* add,
                        const std::vector<Edge>* remove, uint64_t* lsn);

  /// Serializes graph_ and publishes a checkpoint at applied_lsn_.
  /// `required` marks a checkpoint the log cannot live without (the
  /// MutateGraph path: its mutation has no WAL record) — failure then
  /// degrades the write path until ProbeDurability republishes. The
  /// caller holds the graph lock (shared or exclusive).
  Status WriteCheckpointLocked(bool required);

  bool ShouldCompact(const GraphIndexPtr& index) const {
    return index != nullptr && index->has_delta() &&
           (static_cast<double>(index->delta_edges()) >=
                options_.compact_delta_fraction *
                    std::max(index->base_edges(), 1) ||
            index->num_delta_segments() > options_.compact_max_segments);
  }

  /// Folds the current snapshot into a fresh base if (still) over
  /// threshold — the background thread's work item. Takes the shared
  /// graph guard for the whole fold: readers keep executing, writers
  /// wait (same contention profile a reader-side rebuild had).
  void CompactIfOverThreshold(bool force);
  void CompactLoop();
  /// Wakes (lazily spawning) the background compactor. Only touches
  /// compact_* state — callable with any graph/cache lock held
  /// (compact_mutex_ is a leaf in the lock order).
  void ScheduleCompaction();

  GraphDb graph_;
  DatabaseOptions options_;
  RelationRegistry registry_;

  // Durability (null/0 on an in-memory Database). wal_ is attached by
  // OpenDurable after recovery; every write-path use checks for null.
  // Lock order: graph_mutex_ (and possibly build_mutex_) before the
  // log's internal mutex; the log never takes Database locks.
  std::unique_ptr<DurableLog> wal_;
  std::atomic<uint64_t> applied_lsn_{0};
  /// A MutateGraph checkpoint failed: the in-memory state is ahead of
  /// anything recovery could reproduce, so durable writes are rejected
  /// until ProbeDurability republishes the checkpoint.
  std::atomic<bool> checkpoint_pending_{false};

  /// Readers = executions (and snapshot/prepare graph reads); writer =
  /// MutateGraph / RegisterRelation.
  mutable std::shared_mutex graph_mutex_;

  /// Serializes full index builds on the lazy read path (single-flight).
  /// Writers never take it: ApplyDelta/MutateGraph swap under the
  /// exclusive graph lock, which excludes every reader-side builder.
  mutable std::mutex build_mutex_;
  mutable std::atomic<uint64_t> index_full_builds_{0};

  /// Guards index_, lru_, cache_, hits_, misses_.
  mutable std::mutex cache_mutex_;
  mutable GraphIndexPtr index_;  // lazy CSR snapshot of graph_

  // Background compaction: lazily spawned on the first over-threshold
  // delta, woken by ScheduleCompaction, joined by the destructor.
  // compact_mutex_ is a leaf: never held while acquiring another lock.
  std::mutex compact_mutex_;
  std::condition_variable compact_cv_;
  std::thread compact_thread_;
  bool compact_pending_ = false;
  bool compact_stop_ = false;

  // LRU plan cache keyed by query text; lru_ front = most recent.
  using LruList =
      std::list<std::pair<std::string, std::shared_ptr<const CompiledPlan>>>;
  LruList lru_;
  std::unordered_map<std::string, LruList::iterator> cache_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace ecrpq

#endif  // ECRPQ_API_DATABASE_H_
