// Session facade: the single public entry point of the library.
//
//   GraphDb g;
//   ... load nodes/edges ...
//   Database db(std::move(g));
//   auto prepared = db.Prepare("Ans(y) <- ($start, p, y), 'advisor'+(p)");
//   auto cursor = prepared.value().Execute(Params().Set("start", "ann"));
//   while (cursor.value().Next()) { ... cursor.value().tuple() ... }
//
// A Database owns the graph, a relation registry (a copy of the shared
// built-ins, extensible per session), the session-default EvalOptions, and
// an LRU plan cache keyed by query text: preparing the same text twice
// reuses the compiled plan (parse, optimization, relation automata,
// analysis) instead of redoing the query-dependent work.

#ifndef ECRPQ_API_DATABASE_H_
#define ECRPQ_API_DATABASE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>

#include "api/prepared_query.h"
#include "core/evaluator.h"
#include "graph/graph.h"
#include "graph/index.h"
#include "query/parser.h"
#include "util/status.h"

namespace ecrpq {

struct DatabaseOptions {
  /// Session-default evaluation options (engine choice, budgets, ...).
  EvalOptions eval;

  /// Maximum number of compiled plans kept in the LRU cache (0 disables
  /// caching).
  size_t plan_cache_capacity = 64;
};

class Database {
 public:
  explicit Database(GraphDb graph, DatabaseOptions options = {})
      : graph_(std::move(graph)),
        options_(options),
        registry_(RelationRegistry::Default()) {}

  // A session is an identity: outstanding PreparedQuery/ResultCursor
  // handles point back into it, and the LRU cache holds self-referential
  // iterators, so copying or moving would dangle both.
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  const GraphDb& graph() const { return graph_; }

  /// Mutable graph access for loading. Mutations can grow the alphabet, so
  /// cached plans are dropped; outstanding PreparedQuery handles keep
  /// their (possibly stale) plans and re-resolve constants per execution.
  /// The cached GraphIndex snapshot is dropped with the plans and rebuilt
  /// lazily on the next execution.
  GraphDb& mutable_graph() {
    ClearPlanCache();
    return graph_;
  }

  /// The session's CSR label index of the graph (see graph/index.h):
  /// built lazily on first use, shared by every PreparedQuery execution,
  /// and invalidated together with the plan cache on graph or relation
  /// mutation. A snapshot whose node/edge/label counters no longer match
  /// the graph is rebuilt here too (GraphDb is append-only, so the
  /// counters detect mutation through a retained mutable_graph()
  /// reference). Null when the session disables indexing
  /// (eval.use_graph_index = false).
  GraphIndexPtr graph_index() const {
    if (!options_.eval.use_graph_index) return nullptr;
    if (index_ == nullptr || index_->num_nodes() != graph_.num_nodes() ||
        index_->num_edges() != graph_.num_edges() ||
        index_->num_labels() != graph_.alphabet().size()) {
      index_ = GraphIndex::Build(graph_);
    }
    return index_;
  }

  /// The session's relation registry (a copy of the built-ins).
  const RelationRegistry& registry() const { return registry_; }

  /// Registers a custom relation (or factory) on the session. Cached
  /// plans are dropped at this mutation point: a re-registered name must
  /// not keep resolving through an old plan.
  void RegisterRelation(std::string name,
                        std::shared_ptr<const RegularRelation> relation) {
    ClearPlanCache();
    registry_.Register(std::move(name), std::move(relation));
  }
  void RegisterRelation(std::string name, RelationRegistry::Factory factory) {
    ClearPlanCache();
    registry_.Register(std::move(name), std::move(factory));
  }

  const EvalOptions& eval_options() const { return options_.eval; }

  /// Compiles `text` (or fetches it from the plan cache): parse →
  /// validate → optimize → relation automata + analysis.
  Result<PreparedQuery> Prepare(const std::string& text);

  /// One-shot convenience: Prepare (through the cache) + ExecuteAll.
  Result<QueryResult> Execute(const std::string& text,
                              const Params& params = {});

  /// One-shot satisfiability: stops at the first answer.
  Result<bool> Exists(const std::string& text, const Params& params = {});

  // ---- plan cache introspection ----

  uint64_t plan_cache_hits() const { return hits_; }
  uint64_t plan_cache_misses() const { return misses_; }
  size_t plan_cache_size() const { return cache_.size(); }
  void ClearPlanCache() {
    cache_.clear();
    lru_.clear();
    index_.reset();  // same invalidation point: the graph may change next
  }

 private:
  GraphDb graph_;
  DatabaseOptions options_;
  RelationRegistry registry_;
  mutable GraphIndexPtr index_;  // lazy CSR snapshot of graph_

  // LRU plan cache keyed by query text; lru_ front = most recent.
  using LruList =
      std::list<std::pair<std::string, std::shared_ptr<const CompiledPlan>>>;
  LruList lru_;
  std::unordered_map<std::string, LruList::iterator> cache_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace ecrpq

#endif  // ECRPQ_API_DATABASE_H_
