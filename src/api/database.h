// Session facade: the single public entry point of the library.
//
//   GraphDb g;
//   ... load nodes/edges ...
//   Database db(std::move(g));
//   auto prepared = db.Prepare("Ans(y) <- ($start, p, y), 'advisor'+(p)");
//   auto cursor = prepared.value().Execute(Params().Set("start", "ann"));
//   while (cursor.value().Next()) { ... cursor.value().tuple() ... }
//
// A Database owns the graph, a relation registry (a copy of the shared
// built-ins, extensible per session), the session-default EvalOptions, and
// an LRU plan cache keyed by query text: preparing the same text twice
// reuses the compiled plan (parse, optimization, relation automata,
// analysis) instead of redoing the query-dependent work.
//
// Concurrency model
// -----------------
// A Database is safe for inter-query parallelism: any number of threads
// may call Prepare / Execute / Exists and run PreparedQuery executions on
// one shared Database concurrently. The implementation is a snapshot
// protocol:
//
//   - the graph is guarded by a reader/writer lock: every execution holds
//     it shared for its whole engine run; MutateGraph takes it exclusive,
//     applies the mutation, and invalidates the caches before readers
//     resume;
//   - the CSR GraphIndex is an immutable snapshot behind a shared_ptr:
//     executions pin the current snapshot and keep using it even while a
//     newer one is built (the swap happens under a mutex, the old
//     snapshot dies with its last execution);
//   - the LRU plan cache (and its hit/miss counters) is mutex-guarded;
//     the per-plan physical-plan memo has its own lock in CompiledPlan.
//
// NOT thread-safe: mutable_graph() (a bare reference for single-threaded
// loading — use MutateGraph once queries may be in flight) and reading
// graph() while a writer is inside MutateGraph.

#ifndef ECRPQ_API_DATABASE_H_
#define ECRPQ_API_DATABASE_H_

#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "api/prepared_query.h"
#include "core/evaluator.h"
#include "graph/graph.h"
#include "graph/index.h"
#include "query/parser.h"
#include "util/status.h"

namespace ecrpq {

struct DatabaseOptions {
  /// Session-default evaluation options (engine choice, budgets,
  /// num_threads, ...).
  EvalOptions eval;

  /// Maximum number of compiled plans kept in the LRU cache (0 disables
  /// caching).
  size_t plan_cache_capacity = 64;
};

class Database {
 public:
  explicit Database(GraphDb graph, DatabaseOptions options = {})
      : graph_(std::move(graph)),
        options_(options),
        registry_(RelationRegistry::Default()) {}

  // A session is an identity: outstanding PreparedQuery/ResultCursor
  // handles point back into it, and the LRU cache holds self-referential
  // iterators, so copying or moving would dangle both.
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  const GraphDb& graph() const { return graph_; }

  /// Mutable graph access for single-threaded loading. Mutations can grow
  /// the alphabet, so cached plans are dropped; outstanding PreparedQuery
  /// handles keep their (possibly stale) plans and re-resolve constants
  /// per execution. The cached GraphIndex snapshot is dropped with the
  /// plans and rebuilt lazily on the next execution. NOT safe while other
  /// threads execute queries — use MutateGraph for that.
  GraphDb& mutable_graph() {
    ClearPlanCache();
    return graph_;
  }

  /// Thread-safe mutation: runs `fn` with exclusive access to the graph
  /// (all concurrent executions drain first and block until `fn`
  /// returns), then invalidates the plan cache and the GraphIndex
  /// snapshot. Executions that pinned the old snapshot before the write
  /// finish against it; later executions see the new graph and a fresh
  /// snapshot.
  void MutateGraph(const std::function<void(GraphDb&)>& fn) {
    std::unique_lock<std::shared_mutex> lock(graph_mutex_);
    fn(graph_);
    ClearPlanCache();  // before readers resume (lock order: graph → cache)
  }

  /// The session's CSR label index of the graph (see graph/index.h):
  /// built lazily on first use, shared by every PreparedQuery execution,
  /// and invalidated together with the plan cache on graph or relation
  /// mutation. A snapshot whose node/edge/label counters no longer match
  /// the graph is rebuilt here too (GraphDb is append-only, so the
  /// counters detect mutation through a retained mutable_graph()
  /// reference). Null when the session disables indexing
  /// (eval.use_graph_index = false). Thread-safe: the returned snapshot
  /// is immutable and stays valid after later invalidations.
  GraphIndexPtr graph_index() const {
    std::shared_lock<std::shared_mutex> lock(graph_mutex_);
    return graph_index_locked();
  }

  /// The session's relation registry (a copy of the built-ins).
  const RelationRegistry& registry() const { return registry_; }

  /// Public shared guard over the graph for snapshot readers outside the
  /// cursor machinery — e.g. the serving layer rendering NodeName()s of a
  /// finished execution while a MutateGraph writer may be pending. Hold
  /// it only around short read sections; executions take it internally.
  std::shared_lock<std::shared_mutex> SharedReadGuard() const {
    return ReadLock();
  }

  /// Registers a custom relation (or factory) on the session. Cached
  /// plans are dropped at this mutation point: a re-registered name must
  /// not keep resolving through an old plan. Takes the writer lock, so it
  /// is safe alongside concurrent executions.
  void RegisterRelation(std::string name,
                        std::shared_ptr<const RegularRelation> relation) {
    std::unique_lock<std::shared_mutex> lock(graph_mutex_);
    ClearPlanCache();
    registry_.Register(std::move(name), std::move(relation));
  }
  void RegisterRelation(std::string name, RelationRegistry::Factory factory) {
    std::unique_lock<std::shared_mutex> lock(graph_mutex_);
    ClearPlanCache();
    registry_.Register(std::move(name), std::move(factory));
  }

  const EvalOptions& eval_options() const { return options_.eval; }

  /// Compiles `text` (or fetches it from the plan cache): parse →
  /// validate → optimize → relation automata + analysis. Thread-safe;
  /// concurrent misses on the same text may compile twice but converge on
  /// one cached plan.
  Result<PreparedQuery> Prepare(const std::string& text);

  /// One-shot convenience: Prepare (through the cache) + ExecuteAll.
  Result<QueryResult> Execute(const std::string& text,
                              const Params& params = {});

  /// One-shot satisfiability: stops at the first answer.
  Result<bool> Exists(const std::string& text, const Params& params = {});

  // ---- plan cache introspection ----

  uint64_t plan_cache_hits() const {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    return hits_;
  }
  uint64_t plan_cache_misses() const {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    return misses_;
  }
  size_t plan_cache_size() const {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    return cache_.size();
  }
  void ClearPlanCache() {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    cache_.clear();
    lru_.clear();
    index_.reset();  // same invalidation point: the graph may change next
  }

 private:
  friend class PreparedQuery;
  friend class ResultCursor;

  /// Shared guard over graph_ (and registry_), held by executions for the
  /// duration of their engine run. Lock order: graph_mutex_ before
  /// cache_mutex_ / CompiledPlan::memo_mutex.
  std::shared_lock<std::shared_mutex> ReadLock() const {
    return std::shared_lock<std::shared_mutex>(graph_mutex_);
  }

  /// True when `index` is a current snapshot of graph_ (GraphDb is
  /// append-only, so the counters detect every mutation). Caller holds
  /// ReadLock.
  bool IndexFresh(const GraphIndexPtr& index) const {
    return index != nullptr && index->num_nodes() == graph_.num_nodes() &&
           index->num_edges() == graph_.num_edges() &&
           index->num_labels() == graph_.alphabet().size();
  }

  /// graph_index() body; the caller must hold ReadLock (shared or
  /// exclusive) so the staleness counters and the rebuild read a stable
  /// graph. The O(V+E) build runs OUTSIDE cache_mutex_ — concurrent
  /// plan-cache hits never wait on an index rebuild; racing builders
  /// tolerate a double build and converge on one snapshot.
  GraphIndexPtr graph_index_locked() const {
    if (!options_.eval.use_graph_index) return nullptr;
    {
      std::lock_guard<std::mutex> lock(cache_mutex_);
      if (IndexFresh(index_)) return index_;
    }
    GraphIndexPtr built = GraphIndex::Build(graph_);
    std::lock_guard<std::mutex> lock(cache_mutex_);
    if (!IndexFresh(index_)) index_ = built;
    return index_;
  }

  GraphDb graph_;
  DatabaseOptions options_;
  RelationRegistry registry_;

  /// Readers = executions (and snapshot/prepare graph reads); writer =
  /// MutateGraph / RegisterRelation.
  mutable std::shared_mutex graph_mutex_;

  /// Guards index_, lru_, cache_, hits_, misses_.
  mutable std::mutex cache_mutex_;
  mutable GraphIndexPtr index_;  // lazy CSR snapshot of graph_

  // LRU plan cache keyed by query text; lru_ front = most recent.
  using LruList =
      std::list<std::pair<std::string, std::shared_ptr<const CompiledPlan>>>;
  LruList lru_;
  std::unordered_map<std::string, LruList::iterator> cache_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace ecrpq

#endif  // ECRPQ_API_DATABASE_H_
