// Umbrella header for the public compile-once / stream-many API:
//
//   Database       session facade (graph + registry + options + plan cache)
//   PreparedQuery  parse/optimize/compile once, execute many ($params)
//   ResultCursor   pull-based answer streaming with limit/exists pushdown
//
// See api/database.h for a usage sketch and README.md for the quickstart.

#ifndef ECRPQ_API_API_H_
#define ECRPQ_API_API_H_

#include "api/database.h"         // IWYU pragma: export
#include "api/prepared_query.h"   // IWYU pragma: export
#include "api/result_cursor.h"    // IWYU pragma: export
#include "util/cancellation.h"    // IWYU pragma: export

#endif  // ECRPQ_API_API_H_
