// A query compiled once, executable many times.
//
// PreparedQuery is the product of Database::Prepare: the text is parsed,
// validated, statically optimized, and its relation automata are compiled
// (ε-elimination, transition maps) and analyzed exactly once. Executions
// only pay the data-dependent cost — the paper's split between
// query-dependent and data-dependent complexity, realized as an API.
//
// Queries may contain `$name` node-constant parameters (see
// query/parser.h); each execution binds them to concrete nodes through
// Params. PreparedQuery is a cheap value: it shares the immutable compiled
// plan and stays valid as long as its Database.

#ifndef ECRPQ_API_PREPARED_QUERY_H_
#define ECRPQ_API_PREPARED_QUERY_H_

#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "api/result_cursor.h"
#include "core/eval_product.h"
#include "core/evaluator.h"
#include "core/planner.h"
#include "query/optimizer.h"
#include "util/status.h"

namespace ecrpq {

class Database;

/// Per-execution bindings for `$name` parameters: node names resolved
/// against the database graph at execute time.
class Params {
 public:
  Params() = default;

  /// Binds parameter `$name` to the node called `node_name`.
  Params& Set(std::string name, std::string node_name) {
    bindings_[std::move(name)] = std::move(node_name);
    return *this;
  }

  const std::map<std::string, std::string>& bindings() const {
    return bindings_;
  }

 private:
  std::map<std::string, std::string> bindings_;
};

/// Per-execution knobs; session defaults come from DatabaseOptions.
struct ExecuteOptions {
  /// Stop after this many answer tuples (0 = unlimited). Pushed down into
  /// the engine as early termination.
  uint64_t limit = 0;

  /// Absolute deadline for this execution. When the engine is still
  /// running at the deadline, the shared DeadlineMonitor trips the
  /// execution's CancellationToken (one is created if the caller supplied
  /// none) and the cursor reports Status::Cancelled — never a silent
  /// empty-OK. A deadline that has already passed when evaluation starts
  /// fails the same way without running the engine. Executions queued or
  /// delayed past their deadline therefore shed load instead of doing
  /// stale work (the serving layer maps per-request deadline_ms here).
  std::optional<std::chrono::steady_clock::time_point> deadline;

  /// Convenience: deadline = now + timeout.
  ExecuteOptions& set_timeout(std::chrono::milliseconds timeout) {
    deadline = std::chrono::steady_clock::now() + timeout;
    return *this;
  }

  /// Engine override for this execution (default: the session's choice).
  std::optional<Engine> engine;

  /// Override the session's build_path_answers setting.
  std::optional<bool> build_path_answers;

  /// Override the session's intra-query parallelism for this execution
  /// (see EvalOptions::num_threads; 1 = serial legacy path).
  std::optional<int> num_threads;

  /// Cancellation token for this execution (see EvalOptions::cancellation
  /// for polling granularity per engine; trip it from any thread to stop
  /// the engine). Use a fresh token per execution.
  std::shared_ptr<CancellationToken> cancellation;
};

/// The immutable compiled form of one query text (shared by every
/// PreparedQuery handle and by the Database plan cache).
struct CompiledPlan {
  CompiledPlan(std::string text, Query query, OptimizerReport report,
               CompiledQueryPtr compiled)
      : text(std::move(text)),
        query(std::move(query)),
        optimizer_report(std::move(report)),
        compiled(std::move(compiled)) {}

  std::string text;
  Query query;                     ///< optimized, validated
  OptimizerReport optimizer_report;
  CompiledQueryPtr compiled;       ///< relation automata + analysis

  // Physical-plan memo: the cost-based operator DAG for this query
  // against one GraphIndex snapshot. PreparedQuery::plan() fills it and
  // re-costs when the Database's index snapshot changes (the weak_ptr no
  // longer locks to the session index — i.e. after any graph mutation).
  // Mutable: a memoized cost annotation, not plan identity; memo_mutex
  // guards it so every PreparedQuery handle of the same text can execute
  // concurrently (lock order: Database::graph_mutex_ before memo_mutex).
  mutable std::mutex memo_mutex;
  mutable PhysicalPlanPtr physical;
  mutable std::weak_ptr<const GraphIndex> physical_index;
};

/// The output of PreparedQuery::Explain(): what would run, and why.
struct Explanation {
  Engine engine = Engine::kAuto;
  std::string engine_name;
  std::string analysis;            ///< QueryAnalysis::Describe()
  std::string plan_text;           ///< operator tree with estimates
  OptimizerReport optimizer_report;
  PhysicalPlanPtr plan;            ///< structured operator DAG

  std::string ToString() const;
};

class PreparedQuery {
 public:
  /// An empty handle; using it other than by assignment is invalid.
  PreparedQuery() = default;

  const Query& query() const { return plan_->query; }
  const std::string& text() const { return plan_->text; }
  const std::vector<std::string>& parameter_names() const {
    return plan_->query.parameter_names();
  }
  const QueryAnalysis& analysis() const { return plan_->compiled->analysis; }
  const OptimizerReport& optimizer_report() const {
    return plan_->optimizer_report;
  }

  /// The engine the session's options resolve to for this plan.
  Engine engine() const;

  /// The cost-based physical plan (core/planner.h) for this query against
  /// the session's current GraphIndex snapshot. Cached on the shared
  /// CompiledPlan — every PreparedQuery handle of the same text shares
  /// one costed plan — and re-costed automatically when the Database
  /// invalidates its index (graph or relation mutation). Thread-safe.
  PhysicalPlanPtr plan() const;

  /// Explains the execution without running it: chosen engine, operator
  /// tree with per-component cardinality estimates, structural analysis,
  /// and the static-optimizer report.
  Explanation Explain() const;

  /// Starts one execution: binds parameters (errors on unbound or unknown
  /// parameters and on unknown nodes) and returns a lazy cursor.
  /// Thread-safe: any number of threads may Execute one PreparedQuery (or
  /// different handles of the same cached plan) concurrently; each call
  /// pins the session's current graph/index snapshot.
  Result<ResultCursor> Execute(const Params& params = {},
                               ExecuteOptions exec = {}) const;

  /// Runs to completion and materializes the full sorted answer set.
  /// Thread-safe (see Execute).
  Result<QueryResult> ExecuteAll(const Params& params = {}) const;

  /// True iff at least one answer exists; the engine stops at the first.
  /// Thread-safe (see Execute).
  Result<bool> Exists(const Params& params = {}) const;

 private:
  friend class Database;
  PreparedQuery(const Database* db, std::shared_ptr<const CompiledPlan> plan)
      : db_(db), plan_(std::move(plan)) {}

  /// Substitutes parameters; shares the plan's query when there are none.
  /// The caller must hold the database's read lock (graph name lookups).
  Result<std::shared_ptr<const Query>> BindParams(const Params& params) const;

  /// plan() body against an already-pinned index snapshot; takes only the
  /// CompiledPlan memo lock.
  PhysicalPlanPtr PlanForIndex(GraphIndexPtr index) const;

  EvalOptions EffectiveOptions(const ExecuteOptions& exec) const;

  const Database* db_ = nullptr;
  std::shared_ptr<const CompiledPlan> plan_;
};

}  // namespace ecrpq

#endif  // ECRPQ_API_PREPARED_QUERY_H_
