#include "api/database.h"

#include "query/optimizer.h"
#include "util/status.h"
#include "wal/durable.h"
#include "wal/wal_format.h"

namespace ecrpq {

Database::Database(GraphDb graph, DatabaseOptions options)
    : graph_(std::move(graph)),
      options_(options),
      registry_(RelationRegistry::Default()) {}

Database::~Database() {
  {
    std::lock_guard<std::mutex> lock(compact_mutex_);
    compact_stop_ = true;
  }
  compact_cv_.notify_all();
  if (compact_thread_.joinable()) compact_thread_.join();
}

void Database::MutateGraph(const std::function<void(GraphDb&)>& fn) {
  std::unique_lock<std::shared_mutex> lock(graph_mutex_);
  fn(graph_);
  ClearPlanCache();  // before readers resume (lock order: graph → cache)
  if (wal_ != nullptr) {
    // fn is unloggable (arbitrary code), so the checkpoint IS its
    // durability record; failure blocks further durable writes.
    WriteCheckpointLocked(/*required=*/true);
  }
}

Status Database::LogBatchLocked(const GraphMutation* mutation,
                                const std::vector<Edge>* add,
                                const std::vector<Edge>* remove,
                                uint64_t* lsn) {
  if (wal_ == nullptr) return Status::OK();
  if (checkpoint_pending_.load(std::memory_order_relaxed)) {
    return Status::Unavailable(
        "DEGRADED: checkpoint pending after MutateGraph publish failure");
  }
  Status st = mutation != nullptr ? wal_->AppendMutation(*mutation, lsn)
                                  : wal_->AppendEdgeDelta(*add, *remove, lsn);
  if (st.ok()) applied_lsn_.store(*lsn, std::memory_order_relaxed);
  return st;
}

Status Database::WriteCheckpointLocked(bool required) {
  Status st = wal_->WriteCheckpoint(
      EncodeCheckpoint(graph_), applied_lsn_.load(std::memory_order_relaxed));
  if (st.ok()) {
    checkpoint_pending_.store(false, std::memory_order_relaxed);
  } else if (required) {
    checkpoint_pending_.store(true, std::memory_order_relaxed);
  }
  return st;
}

bool Database::write_degraded() const {
  return wal_ != nullptr &&
         (wal_->degraded() ||
          checkpoint_pending_.load(std::memory_order_relaxed));
}

Status Database::FlushDurable() {
  if (wal_ == nullptr) return Status::OK();
  return wal_->Flush();
}

bool Database::ProbeDurability() {
  if (wal_ == nullptr) return true;
  if (wal_->degraded() && !wal_->Probe()) return false;
  if (checkpoint_pending_.load(std::memory_order_relaxed)) {
    // Shared guard: the graph is stable (writers need it exclusive)
    // while the snapshot is reserialized and republished.
    auto read_lock = ReadLock();
    if (!WriteCheckpointLocked(/*required=*/true).ok()) return false;
  }
  return true;
}

Result<std::unique_ptr<Database>> Database::OpenDurable(
    const std::string& dir, const DurabilityOptions& durability,
    DatabaseOptions options, GraphDb seed, WalRecoveryInfo* recovery) {
  std::unique_ptr<Database> db(new Database(GraphDb(), options));
  bool loaded_checkpoint = false;
  auto load = [&](const std::string& text) -> Status {
    auto parsed = DecodeCheckpoint(text);
    if (!parsed.ok()) return parsed.status();
    db->graph_ = std::move(parsed).value();
    loaded_checkpoint = true;
    return Status::OK();
  };
  // Replay re-runs recovered batches through the normal (non-durable —
  // wal_ is not attached yet) ApplyDelta machinery: name resolution
  // and id assignment are deterministic, so the replayed graph matches
  // the one the records were logged against.
  auto replay_mutation = [&](GraphMutation&& mutation) -> Status {
    db->ApplyDelta(mutation);
    return Status::OK();
  };
  auto replay_edges = [&](std::vector<Edge>&& add,
                          std::vector<Edge>&& remove) -> Status {
    const NodeId n = db->graph_.num_nodes();
    const Symbol l = db->graph_.alphabet().size();
    for (const Edge& e : add) {
      if (e.from < 0 || e.from >= n || e.to < 0 || e.to >= n || e.label < 0 ||
          e.label >= l) {
        return Status::Internal(
            "wal edge-delta references ids beyond the recovered graph "
            "(checkpoint/log mismatch)");
      }
    }
    db->ApplyDelta(add, remove);
    return Status::OK();
  };
  WalRecoveryInfo info;
  auto log = DurableLog::Open(dir, durability, load, replay_mutation,
                              replay_edges, &info);
  if (!log.ok()) return log.status();
  db->wal_ = std::move(log).value();
  db->applied_lsn_.store(info.last_lsn, std::memory_order_relaxed);

  if (!loaded_checkpoint) {
    if (info.last_lsn > 0) {
      // Records without the checkpoint they were logged against: the
      // replay above ran from an empty graph, which is only right if
      // that is what the log started from — and every durable dir
      // publishes its initial checkpoint before the first append.
      return Status::Internal("wal segments present in " + dir +
                              " but no checkpoint — refusing to guess the "
                              "base state");
    }
    db->graph_ = std::move(seed);
    // The initial checkpoint pins node/symbol ids for id-level records;
    // a durable dir must never exist without one.
    std::unique_lock<std::shared_mutex> lock(db->graph_mutex_);
    ECRPQ_RETURN_IF_ERROR(db->WriteCheckpointLocked(/*required=*/true));
  }
  if (recovery != nullptr) *recovery = info;
  return db;
}

Result<MutationSummary> Database::CommitDelta(const GraphMutation& mutation) {
  std::unique_lock<std::shared_mutex> lock(graph_mutex_);
  // Write-ahead: the record reaches the log (and, with fsync=always,
  // the disk) before graph_ changes. A rejected append leaves the
  // graph exactly as it was — memory never runs ahead of recovery.
  uint64_t lsn = 0;
  ECRPQ_RETURN_IF_ERROR(LogBatchLocked(&mutation, nullptr, nullptr, &lsn));
  GraphIndexPtr prev;
  {
    std::lock_guard<std::mutex> cache_lock(cache_mutex_);
    prev = index_;
  }
  const bool prev_fresh = IndexFresh(prev);
  const uint64_t pre_version = graph_.version();
  const int old_num_labels = graph_.alphabet().size();
  const int old_num_nodes = graph_.num_nodes();

  MutationSummary summary;
  GraphIndex::Delta delta;
  auto resolve = [&](const std::string& name) {
    auto found = graph_.FindNode(name);
    return found.has_value() ? *found : graph_.AddNode(name);
  };
  for (const std::string& name : mutation.add_nodes) {
    if (name.empty()) {
      graph_.AddNode();
    } else {
      resolve(name);
    }
  }
  delta.added.reserve(mutation.add_edges.size());
  for (const EdgeSpec& spec : mutation.add_edges) {
    const NodeId from = resolve(spec.from);
    const NodeId to = resolve(spec.to);
    graph_.AddEdge(from, spec.label, to);  // interns the label if new
    delta.added.push_back({from, *graph_.alphabet().Find(spec.label), to});
  }
  for (const EdgeSpec& spec : mutation.remove_edges) {
    const auto from = graph_.FindNode(spec.from);
    const auto to = graph_.FindNode(spec.to);
    const auto label = graph_.alphabet().Find(spec.label);
    if (from && to && label && graph_.RemoveEdge(*from, *label, *to)) {
      delta.removed.push_back({*from, *label, *to});
    } else {
      ++summary.skipped_removes;
    }
  }
  summary.lsn = lsn;
  return FinishDeltaLocked(std::move(prev), prev_fresh, pre_version,
                           old_num_labels, old_num_nodes, &delta, &summary);
}

Result<MutationSummary> Database::CommitDelta(const std::vector<Edge>& add,
                                              const std::vector<Edge>& remove) {
  std::unique_lock<std::shared_mutex> lock(graph_mutex_);
  // Validate BEFORE logging: a record, once appended, will be replayed.
  {
    const NodeId n = graph_.num_nodes();
    const Symbol l = graph_.alphabet().size();
    for (const Edge& e : add) {
      if (e.from < 0 || e.from >= n || e.to < 0 || e.to >= n || e.label < 0 ||
          e.label >= l) {
        return Status::InvalidArgument(
            "CommitDelta: edge (" + std::to_string(e.from) + "," +
            std::to_string(e.label) + "," + std::to_string(e.to) +
            ") out of range");
      }
    }
  }
  uint64_t lsn = 0;
  ECRPQ_RETURN_IF_ERROR(LogBatchLocked(nullptr, &add, &remove, &lsn));
  GraphIndexPtr prev;
  {
    std::lock_guard<std::mutex> cache_lock(cache_mutex_);
    prev = index_;
  }
  const bool prev_fresh = IndexFresh(prev);
  const uint64_t pre_version = graph_.version();
  const int old_num_labels = graph_.alphabet().size();
  const int old_num_nodes = graph_.num_nodes();

  MutationSummary summary;
  GraphIndex::Delta delta;
  delta.added.reserve(add.size());
  for (const Edge& e : add) {
    ECRPQ_DCHECK(e.from >= 0 && e.from < graph_.num_nodes());
    ECRPQ_DCHECK(e.to >= 0 && e.to < graph_.num_nodes());
    ECRPQ_DCHECK(e.label >= 0 && e.label < graph_.alphabet().size());
    graph_.AddEdge(e.from, e.label, e.to);
    delta.added.push_back(e);
  }
  for (const Edge& e : remove) {
    if (e.from >= 0 && e.from < graph_.num_nodes() && e.to >= 0 &&
        e.to < graph_.num_nodes() && graph_.RemoveEdge(e.from, e.label, e.to)) {
      delta.removed.push_back(e);
    } else {
      ++summary.skipped_removes;
    }
  }
  summary.lsn = lsn;
  return FinishDeltaLocked(std::move(prev), prev_fresh, pre_version,
                           old_num_labels, old_num_nodes, &delta, &summary);
}

MutationSummary Database::ApplyDelta(const GraphMutation& mutation) {
  auto result = CommitDelta(mutation);
  if (result.ok()) return std::move(result).value();
  MutationSummary rejected;
  rejected.rejected = true;
  return rejected;
}

MutationSummary Database::ApplyDelta(const std::vector<Edge>& add,
                                     const std::vector<Edge>& remove) {
  auto result = CommitDelta(add, remove);
  if (result.ok()) return std::move(result).value();
  MutationSummary rejected;
  rejected.rejected = true;
  return rejected;
}

MutationSummary Database::FinishDeltaLocked(
    GraphIndexPtr prev, bool prev_fresh, uint64_t pre_version,
    int old_num_labels, int old_num_nodes, GraphIndex::Delta* delta,
    MutationSummary* summary) {
  delta->new_num_nodes = graph_.num_nodes();
  delta->new_num_labels = graph_.alphabet().size();
  delta->new_version = graph_.version();
  summary->added_edges = static_cast<int>(delta->added.size());
  summary->removed_edges = static_cast<int>(delta->removed.size());
  summary->new_nodes = graph_.num_nodes() - old_num_nodes;
  summary->num_nodes = graph_.num_nodes();
  summary->num_edges = graph_.num_edges();
  summary->version = graph_.version();

  const bool changed = graph_.version() != pre_version;
  if (!changed) return *summary;  // empty batch: snapshot still current

  GraphIndexPtr next;
  if (prev_fresh && prev != nullptr) {
    next = prev->ApplyDelta(*delta);
    summary->delta_applied = true;
  }
  const bool alphabet_grew = delta->new_num_labels != old_num_labels;
  {
    std::lock_guard<std::mutex> cache_lock(cache_mutex_);
    if (alphabet_grew) {
      // Compiled automata are sized by the alphabet — plans must not
      // outlive a grown label universe. (Alphabet-stable batches keep
      // their plans: constants re-resolve and plans re-cost per
      // execution against the new snapshot.)
      cache_.clear();
      lru_.clear();
    }
    // next == nullptr (no index yet / stale / indexing off) drops the
    // snapshot; the next reader full-builds, coalesced by build_mutex_.
    index_ = next;
  }
  if (ShouldCompact(next)) {
    if (options_.background_compaction) {
      ScheduleCompaction();
    } else {
      // Synchronous fold under the exclusive lock already held: the
      // writer pays the O(V+E) rebuild, deterministically.
      GraphIndexPtr built = GraphIndex::Build(graph_);
      {
        std::lock_guard<std::mutex> cache_lock(cache_mutex_);
        index_ = built;
      }
      // Compaction is the checkpoint cadence: the fold already paid
      // O(V+E), the snapshot rides along and lets the log prune.
      // Publish failure is benign here — the WAL still holds every
      // record, recovery just replays more.
      if (wal_ != nullptr) WriteCheckpointLocked(/*required=*/false);
    }
  }
  return *summary;
}

void Database::CompactIndexNow() { CompactIfOverThreshold(/*force=*/true); }

void Database::CompactIfOverThreshold(bool force) {
  auto read_lock = ReadLock();
  {
    std::lock_guard<std::mutex> cache_lock(cache_mutex_);
    if (!IndexFresh(index_) || !index_->has_delta()) return;
    if (!force && !ShouldCompact(index_)) return;  // raced a newer fold
  }
  // Fold outside cache_mutex_ (readers keep hitting the plan cache) but
  // inside the shared graph guard (the graph is stable; writers queue
  // behind the fold — the same profile a reader-side full rebuild had).
  std::lock_guard<std::mutex> build_lock(build_mutex_);
  {
    std::lock_guard<std::mutex> cache_lock(cache_mutex_);
    if (!IndexFresh(index_) || !index_->has_delta()) return;
  }
  GraphIndexPtr built = GraphIndex::Build(graph_);
  index_full_builds_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> cache_lock(cache_mutex_);
    index_ = built;  // distinct GraphIndexPtr: result-cache entries for the
                     // delta snapshot miss from here on (correct, rare)
  }
  // Checkpoint at compaction time (still under the shared graph guard,
  // so graph_ and applied_lsn_ are a consistent pair — writers need
  // the exclusive lock). Failure is benign: the log keeps its records.
  if (wal_ != nullptr) WriteCheckpointLocked(/*required=*/false);
}

void Database::ScheduleCompaction() {
  std::lock_guard<std::mutex> lock(compact_mutex_);
  if (compact_stop_) return;
  if (!compact_thread_.joinable()) {
    compact_thread_ = std::thread([this] { CompactLoop(); });
  }
  compact_pending_ = true;
  compact_cv_.notify_one();
}

void Database::CompactLoop() {
  std::unique_lock<std::mutex> lock(compact_mutex_);
  for (;;) {
    compact_cv_.wait(lock, [&] { return compact_pending_ || compact_stop_; });
    if (compact_stop_) return;
    compact_pending_ = false;
    lock.unlock();
    CompactIfOverThreshold(/*force=*/false);
    lock.lock();
  }
}

Result<PreparedQuery> Database::Prepare(const std::string& text) {
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto it = cache_.find(text);
    if (it != cache_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second);
      return PreparedQuery(this, it->second->second);
    }
    ++misses_;
  }

  // Compile outside the cache lock (parsing reads the graph alphabet and
  // the registry — take the shared graph guard so a concurrent
  // MutateGraph cannot race the reads), and INSERT while still holding
  // the graph guard: a writer invalidating the cache needs the exclusive
  // guard, so a plan compiled under this shared hold cannot be cached
  // after the mutation that would make it stale. Concurrent misses on one
  // text may compile twice; the cache converges on one entry.
  std::shared_ptr<CompiledPlan> plan;
  {
    auto read_lock = ReadLock();
    auto parsed = ParseQuery(text, graph_.alphabet(), registry_);
    if (!parsed.ok()) return parsed.status();
    auto optimized = OptimizeQuery(parsed.value());
    if (!optimized.ok()) return optimized.status();
    auto compiled =
        CompileQuery(optimized.value().query, graph_.alphabet().size());
    if (!compiled.ok()) return compiled.status();

    plan = std::make_shared<CompiledPlan>(
        text, std::move(optimized.value().query),
        std::move(optimized.value().report), std::move(compiled).value());

    if (options_.plan_cache_capacity > 0) {
      std::lock_guard<std::mutex> lock(cache_mutex_);
      auto it = cache_.find(text);
      if (it != cache_.end()) {
        // Another thread compiled the same text meanwhile: adopt its
        // entry.
        lru_.splice(lru_.begin(), lru_, it->second);
        return PreparedQuery(this, it->second->second);
      }
      lru_.emplace_front(text, plan);
      cache_[text] = lru_.begin();
      while (lru_.size() > options_.plan_cache_capacity) {
        cache_.erase(lru_.back().first);
        lru_.pop_back();
      }
    }
  }
  return PreparedQuery(this, std::move(plan));
}

Result<QueryResult> Database::Execute(const std::string& text,
                                      const Params& params) {
  auto prepared = Prepare(text);
  if (!prepared.ok()) return prepared.status();
  return prepared.value().ExecuteAll(params);
}

Result<bool> Database::Exists(const std::string& text, const Params& params) {
  auto prepared = Prepare(text);
  if (!prepared.ok()) return prepared.status();
  return prepared.value().Exists(params);
}

}  // namespace ecrpq
