#include "api/database.h"

#include "query/optimizer.h"

namespace ecrpq {

Result<PreparedQuery> Database::Prepare(const std::string& text) {
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto it = cache_.find(text);
    if (it != cache_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second);
      return PreparedQuery(this, it->second->second);
    }
    ++misses_;
  }

  // Compile outside the cache lock (parsing reads the graph alphabet and
  // the registry — take the shared graph guard so a concurrent
  // MutateGraph cannot race the reads), and INSERT while still holding
  // the graph guard: a writer invalidating the cache needs the exclusive
  // guard, so a plan compiled under this shared hold cannot be cached
  // after the mutation that would make it stale. Concurrent misses on one
  // text may compile twice; the cache converges on one entry.
  std::shared_ptr<CompiledPlan> plan;
  {
    auto read_lock = ReadLock();
    auto parsed = ParseQuery(text, graph_.alphabet(), registry_);
    if (!parsed.ok()) return parsed.status();
    auto optimized = OptimizeQuery(parsed.value());
    if (!optimized.ok()) return optimized.status();
    auto compiled =
        CompileQuery(optimized.value().query, graph_.alphabet().size());
    if (!compiled.ok()) return compiled.status();

    plan = std::make_shared<CompiledPlan>(
        text, std::move(optimized.value().query),
        std::move(optimized.value().report), std::move(compiled).value());

    if (options_.plan_cache_capacity > 0) {
      std::lock_guard<std::mutex> lock(cache_mutex_);
      auto it = cache_.find(text);
      if (it != cache_.end()) {
        // Another thread compiled the same text meanwhile: adopt its
        // entry.
        lru_.splice(lru_.begin(), lru_, it->second);
        return PreparedQuery(this, it->second->second);
      }
      lru_.emplace_front(text, plan);
      cache_[text] = lru_.begin();
      while (lru_.size() > options_.plan_cache_capacity) {
        cache_.erase(lru_.back().first);
        lru_.pop_back();
      }
    }
  }
  return PreparedQuery(this, std::move(plan));
}

Result<QueryResult> Database::Execute(const std::string& text,
                                      const Params& params) {
  auto prepared = Prepare(text);
  if (!prepared.ok()) return prepared.status();
  return prepared.value().ExecuteAll(params);
}

Result<bool> Database::Exists(const std::string& text, const Params& params) {
  auto prepared = Prepare(text);
  if (!prepared.ok()) return prepared.status();
  return prepared.value().Exists(params);
}

}  // namespace ecrpq
