#include "api/database.h"

#include "query/optimizer.h"
#include "util/status.h"

namespace ecrpq {

Database::~Database() {
  {
    std::lock_guard<std::mutex> lock(compact_mutex_);
    compact_stop_ = true;
  }
  compact_cv_.notify_all();
  if (compact_thread_.joinable()) compact_thread_.join();
}

MutationSummary Database::ApplyDelta(const GraphMutation& mutation) {
  std::unique_lock<std::shared_mutex> lock(graph_mutex_);
  GraphIndexPtr prev;
  {
    std::lock_guard<std::mutex> cache_lock(cache_mutex_);
    prev = index_;
  }
  const bool prev_fresh = IndexFresh(prev);
  const uint64_t pre_version = graph_.version();
  const int old_num_labels = graph_.alphabet().size();
  const int old_num_nodes = graph_.num_nodes();

  MutationSummary summary;
  GraphIndex::Delta delta;
  auto resolve = [&](const std::string& name) {
    auto found = graph_.FindNode(name);
    return found.has_value() ? *found : graph_.AddNode(name);
  };
  for (const std::string& name : mutation.add_nodes) {
    if (name.empty()) {
      graph_.AddNode();
    } else {
      resolve(name);
    }
  }
  delta.added.reserve(mutation.add_edges.size());
  for (const EdgeSpec& spec : mutation.add_edges) {
    const NodeId from = resolve(spec.from);
    const NodeId to = resolve(spec.to);
    graph_.AddEdge(from, spec.label, to);  // interns the label if new
    delta.added.push_back({from, *graph_.alphabet().Find(spec.label), to});
  }
  for (const EdgeSpec& spec : mutation.remove_edges) {
    const auto from = graph_.FindNode(spec.from);
    const auto to = graph_.FindNode(spec.to);
    const auto label = graph_.alphabet().Find(spec.label);
    if (from && to && label && graph_.RemoveEdge(*from, *label, *to)) {
      delta.removed.push_back({*from, *label, *to});
    } else {
      ++summary.skipped_removes;
    }
  }
  return FinishDeltaLocked(std::move(prev), prev_fresh, pre_version,
                           old_num_labels, old_num_nodes, &delta, &summary);
}

MutationSummary Database::ApplyDelta(const std::vector<Edge>& add,
                                     const std::vector<Edge>& remove) {
  std::unique_lock<std::shared_mutex> lock(graph_mutex_);
  GraphIndexPtr prev;
  {
    std::lock_guard<std::mutex> cache_lock(cache_mutex_);
    prev = index_;
  }
  const bool prev_fresh = IndexFresh(prev);
  const uint64_t pre_version = graph_.version();
  const int old_num_labels = graph_.alphabet().size();
  const int old_num_nodes = graph_.num_nodes();

  MutationSummary summary;
  GraphIndex::Delta delta;
  delta.added.reserve(add.size());
  for (const Edge& e : add) {
    ECRPQ_DCHECK(e.from >= 0 && e.from < graph_.num_nodes());
    ECRPQ_DCHECK(e.to >= 0 && e.to < graph_.num_nodes());
    ECRPQ_DCHECK(e.label >= 0 && e.label < graph_.alphabet().size());
    graph_.AddEdge(e.from, e.label, e.to);
    delta.added.push_back(e);
  }
  for (const Edge& e : remove) {
    if (e.from >= 0 && e.from < graph_.num_nodes() && e.to >= 0 &&
        e.to < graph_.num_nodes() && graph_.RemoveEdge(e.from, e.label, e.to)) {
      delta.removed.push_back(e);
    } else {
      ++summary.skipped_removes;
    }
  }
  return FinishDeltaLocked(std::move(prev), prev_fresh, pre_version,
                           old_num_labels, old_num_nodes, &delta, &summary);
}

MutationSummary Database::FinishDeltaLocked(
    GraphIndexPtr prev, bool prev_fresh, uint64_t pre_version,
    int old_num_labels, int old_num_nodes, GraphIndex::Delta* delta,
    MutationSummary* summary) {
  delta->new_num_nodes = graph_.num_nodes();
  delta->new_num_labels = graph_.alphabet().size();
  delta->new_version = graph_.version();
  summary->added_edges = static_cast<int>(delta->added.size());
  summary->removed_edges = static_cast<int>(delta->removed.size());
  summary->new_nodes = graph_.num_nodes() - old_num_nodes;
  summary->num_nodes = graph_.num_nodes();
  summary->num_edges = graph_.num_edges();
  summary->version = graph_.version();

  const bool changed = graph_.version() != pre_version;
  if (!changed) return *summary;  // empty batch: snapshot still current

  GraphIndexPtr next;
  if (prev_fresh && prev != nullptr) {
    next = prev->ApplyDelta(*delta);
    summary->delta_applied = true;
  }
  const bool alphabet_grew = delta->new_num_labels != old_num_labels;
  {
    std::lock_guard<std::mutex> cache_lock(cache_mutex_);
    if (alphabet_grew) {
      // Compiled automata are sized by the alphabet — plans must not
      // outlive a grown label universe. (Alphabet-stable batches keep
      // their plans: constants re-resolve and plans re-cost per
      // execution against the new snapshot.)
      cache_.clear();
      lru_.clear();
    }
    // next == nullptr (no index yet / stale / indexing off) drops the
    // snapshot; the next reader full-builds, coalesced by build_mutex_.
    index_ = next;
  }
  if (ShouldCompact(next)) {
    if (options_.background_compaction) {
      ScheduleCompaction();
    } else {
      // Synchronous fold under the exclusive lock already held: the
      // writer pays the O(V+E) rebuild, deterministically.
      GraphIndexPtr built = GraphIndex::Build(graph_);
      std::lock_guard<std::mutex> cache_lock(cache_mutex_);
      index_ = built;
    }
  }
  return *summary;
}

void Database::CompactIndexNow() { CompactIfOverThreshold(/*force=*/true); }

void Database::CompactIfOverThreshold(bool force) {
  auto read_lock = ReadLock();
  {
    std::lock_guard<std::mutex> cache_lock(cache_mutex_);
    if (!IndexFresh(index_) || !index_->has_delta()) return;
    if (!force && !ShouldCompact(index_)) return;  // raced a newer fold
  }
  // Fold outside cache_mutex_ (readers keep hitting the plan cache) but
  // inside the shared graph guard (the graph is stable; writers queue
  // behind the fold — the same profile a reader-side full rebuild had).
  std::lock_guard<std::mutex> build_lock(build_mutex_);
  {
    std::lock_guard<std::mutex> cache_lock(cache_mutex_);
    if (!IndexFresh(index_) || !index_->has_delta()) return;
  }
  GraphIndexPtr built = GraphIndex::Build(graph_);
  index_full_builds_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> cache_lock(cache_mutex_);
  index_ = built;  // distinct GraphIndexPtr: result-cache entries for the
                   // delta snapshot miss from here on (correct, rare)
}

void Database::ScheduleCompaction() {
  std::lock_guard<std::mutex> lock(compact_mutex_);
  if (compact_stop_) return;
  if (!compact_thread_.joinable()) {
    compact_thread_ = std::thread([this] { CompactLoop(); });
  }
  compact_pending_ = true;
  compact_cv_.notify_one();
}

void Database::CompactLoop() {
  std::unique_lock<std::mutex> lock(compact_mutex_);
  for (;;) {
    compact_cv_.wait(lock, [&] { return compact_pending_ || compact_stop_; });
    if (compact_stop_) return;
    compact_pending_ = false;
    lock.unlock();
    CompactIfOverThreshold(/*force=*/false);
    lock.lock();
  }
}

Result<PreparedQuery> Database::Prepare(const std::string& text) {
  {
    std::lock_guard<std::mutex> lock(cache_mutex_);
    auto it = cache_.find(text);
    if (it != cache_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second);
      return PreparedQuery(this, it->second->second);
    }
    ++misses_;
  }

  // Compile outside the cache lock (parsing reads the graph alphabet and
  // the registry — take the shared graph guard so a concurrent
  // MutateGraph cannot race the reads), and INSERT while still holding
  // the graph guard: a writer invalidating the cache needs the exclusive
  // guard, so a plan compiled under this shared hold cannot be cached
  // after the mutation that would make it stale. Concurrent misses on one
  // text may compile twice; the cache converges on one entry.
  std::shared_ptr<CompiledPlan> plan;
  {
    auto read_lock = ReadLock();
    auto parsed = ParseQuery(text, graph_.alphabet(), registry_);
    if (!parsed.ok()) return parsed.status();
    auto optimized = OptimizeQuery(parsed.value());
    if (!optimized.ok()) return optimized.status();
    auto compiled =
        CompileQuery(optimized.value().query, graph_.alphabet().size());
    if (!compiled.ok()) return compiled.status();

    plan = std::make_shared<CompiledPlan>(
        text, std::move(optimized.value().query),
        std::move(optimized.value().report), std::move(compiled).value());

    if (options_.plan_cache_capacity > 0) {
      std::lock_guard<std::mutex> lock(cache_mutex_);
      auto it = cache_.find(text);
      if (it != cache_.end()) {
        // Another thread compiled the same text meanwhile: adopt its
        // entry.
        lru_.splice(lru_.begin(), lru_, it->second);
        return PreparedQuery(this, it->second->second);
      }
      lru_.emplace_front(text, plan);
      cache_[text] = lru_.begin();
      while (lru_.size() > options_.plan_cache_capacity) {
        cache_.erase(lru_.back().first);
        lru_.pop_back();
      }
    }
  }
  return PreparedQuery(this, std::move(plan));
}

Result<QueryResult> Database::Execute(const std::string& text,
                                      const Params& params) {
  auto prepared = Prepare(text);
  if (!prepared.ok()) return prepared.status();
  return prepared.value().ExecuteAll(params);
}

Result<bool> Database::Exists(const std::string& text, const Params& params) {
  auto prepared = Prepare(text);
  if (!prepared.ok()) return prepared.status();
  return prepared.value().Exists(params);
}

}  // namespace ecrpq
