// Pull-based iteration over the answers of one prepared-query execution.
//
// A ResultCursor runs its engine lazily on the first Next()/exists() call.
// The execution's `limit` (and the limit-1 shortcut behind exists()) is
// pushed down into the engine as early termination — the search stops and
// unconsumed answers (including their Prop 5.2 path-answer automata) are
// never computed. Tuples arrive in engine discovery order; use
// PreparedQuery::ExecuteAll for the canonical sorted materialization.
//
//   auto cursor = prepared.Execute(params, {.limit = 10});
//   while (cursor.value().Next()) {
//     const std::vector<NodeId>& row = cursor.value().tuple();
//     ...
//   }

#ifndef ECRPQ_API_RESULT_CURSOR_H_
#define ECRPQ_API_RESULT_CURSOR_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/evaluator.h"
#include "util/status.h"

namespace ecrpq {

class Database;

class ResultCursor {
 public:
  /// An empty, exhausted cursor.
  ResultCursor() = default;

  /// Advances to the next answer tuple. Returns false when the results are
  /// exhausted, the execution limit was reached, or evaluation failed
  /// (check status()). The first call triggers evaluation.
  bool Next();

  /// The current tuple; valid after Next() returned true.
  const std::vector<NodeId>& tuple() const { return sink_.tuples[pos_]; }

  /// The Prop 5.2 answer automaton of the current tuple, or null when the
  /// query head has no path variables (or path answers were disabled).
  const PathAnswerSet* path_answers() const {
    return sink_.path_answers.empty() ? nullptr : &sink_.path_answers[pos_];
  }

  /// True iff the query has at least one answer. If evaluation has not
  /// started this runs it with limit 1, so the engine stops at the first
  /// answer; afterwards the cursor serves at most that one row.
  bool exists();

  /// Non-OK when evaluation failed; Next() then returns false.
  const Status& status() const { return status_; }

  /// Engine counters of the (possibly early-terminated) run; meaningful
  /// once evaluation ran.
  const EvalStats& stats() const { return stats_; }

  /// True once evaluation has run (Next()/exists() was called).
  bool ran() const { return ran_; }

  /// Rows served so far through Next().
  uint64_t rows_returned() const { return rows_returned_; }

 private:
  friend class PreparedQuery;
  ResultCursor(const Database* db, const GraphDb* graph, GraphIndexPtr index,
               EvalOptions options, uint64_t limit,
               std::optional<std::chrono::steady_clock::time_point> deadline,
               std::shared_ptr<const Query> query, CompiledQueryPtr compiled,
               std::shared_ptr<const PhysicalPlan> plan, bool static_empty)
      : db_(db),
        graph_(graph),
        index_(std::move(index)),
        options_(options),
        limit_(limit),
        deadline_(deadline),
        query_(std::move(query)),
        compiled_(std::move(compiled)),
        plan_(std::move(plan)),
        static_empty_(static_empty) {}

  void Run(uint64_t limit);

  const Database* db_ = nullptr;  // read-guard provider (null: no locking)
  const GraphDb* graph_ = nullptr;
  GraphIndexPtr index_;  // session-shared CSR index (may be null)
  EvalOptions options_;
  uint64_t limit_ = 0;
  std::optional<std::chrono::steady_clock::time_point> deadline_;
  std::shared_ptr<const Query> query_;
  CompiledQueryPtr compiled_;
  std::shared_ptr<const PhysicalPlan> plan_;  // cached operator DAG
  bool static_empty_ = false;

  bool ran_ = false;
  MaterializingSink sink_;
  EvalStats stats_;
  Status status_;
  size_t pos_ = 0;
  uint64_t rows_returned_ = 0;
};

}  // namespace ecrpq

#endif  // ECRPQ_API_RESULT_CURSOR_H_
