// Rational relations via asynchronous finite transducers (Section 8.2).
//
// The paper shows (Proposition 8.4) that replacing regular relations by
// rational relations makes ECRPQ evaluation undecidable, via a PCP
// reduction. We implement transducers as an executable substrate so the
// boundary is concrete: rational relations can be *applied* to regular
// languages (image/preimage stay regular and are computed here), and the
// PCP gadget of the proof is constructible, but rational relations are
// deliberately rejected by the query evaluator (kUnimplemented).

#ifndef ECRPQ_RELATIONS_TRANSDUCER_H_
#define ECRPQ_RELATIONS_TRANSDUCER_H_

#include <vector>

#include "automata/nfa.h"
#include "relations/relation.h"
#include "util/status.h"

namespace ecrpq {

/// A nondeterministic finite transducer: transitions read a (possibly
/// empty) input word and write a (possibly empty) output word.
class Transducer {
 public:
  struct Rule {
    StateId from;
    Word input;   // may be empty (ε)
    Word output;  // may be empty (ε)
    StateId to;
  };

  explicit Transducer(int base_size) : base_size_(base_size) {}

  StateId AddState();
  void AddRule(StateId from, Word input, Word output, StateId to);
  void SetInitial(StateId s) { initial_.push_back(s); }
  void SetAccepting(StateId s) { accepting_.push_back(s); }

  int base_size() const { return base_size_; }
  int num_states() const { return num_states_; }
  const std::vector<Rule>& rules() const { return rules_; }
  const std::vector<StateId>& initial() const { return initial_; }
  const std::vector<StateId>& accepting() const { return accepting_; }

  /// Image of a regular language: { y : ∃x ∈ L(input), (x,y) ∈ T }.
  /// Regular for every rational relation; computed by a product
  /// construction over (transducer state, input-NFA state).
  Nfa Apply(const Nfa& input) const;

  /// Membership (x, y) ∈ T, decided by dynamic programming over
  /// (state, positions) triples.
  bool Contains(const Word& x, const Word& y) const;

  /// True when every rule reads and writes exactly one letter, i.e. the
  /// relation is synchronous and hence regular; such transducers convert
  /// exactly to RegularRelation.
  bool IsLetterToLetter() const;

  /// Conversion for letter-to-letter transducers.
  Result<RegularRelation> ToRegularRelation() const;

 private:
  int base_size_;
  int num_states_ = 0;
  std::vector<Rule> rules_;
  std::vector<StateId> initial_;
  std::vector<StateId> accepting_;
};

/// A PCP instance: equally long lists (a_i), (b_i) of words.
struct PcpInstance {
  std::vector<Word> a;
  std::vector<Word> b;
};

/// Builds the transducer pair of Proposition 8.4's reduction for a PCP
/// instance over `base_size` letters plus one index letter per pair (the
/// caller's alphabet must already contain base letters followed by index
/// letters 1..n). Returned transducer T restricts a word to the given
/// subset of letters (the R_{Σ'} relation of the proof).
Transducer RestrictionTransducer(int alphabet_size,
                                 const std::vector<bool>& keep);

/// Bounded PCP search (reference semantics for tests): does the instance
/// have a solution using at most `max_tiles` tiles?
bool SolvePcpBounded(const PcpInstance& instance, int max_tiles);

}  // namespace ecrpq

#endif  // ECRPQ_RELATIONS_TRANSDUCER_H_
