#include "relations/convolution.h"

namespace ecrpq {

TupleAlphabet::TupleAlphabet(int base_size, int arity)
    : base_size_(base_size), arity_(arity) {
  ECRPQ_DCHECK(base_size >= 1);
  ECRPQ_DCHECK(arity >= 1);
  int64_t count = 1;
  for (int i = 0; i < arity; ++i) {
    count *= (base_size + 1);
    ECRPQ_DCHECK(count <= (int64_t{1} << 31));
  }
  num_symbols_ = static_cast<int>(count);
}

Symbol TupleAlphabet::Encode(const TupleLetter& letter) const {
  ECRPQ_DCHECK(static_cast<int>(letter.size()) == arity_);
  int64_t id = 0;
  for (int t = 0; t < arity_; ++t) {
    Symbol c = letter[t];
    int digit;
    if (c == kPad) {
      digit = base_size_;
    } else {
      ECRPQ_DCHECK(c >= 0 && c < base_size_);
      digit = c;
    }
    id = id * (base_size_ + 1) + digit;
  }
  return static_cast<Symbol>(id);
}

TupleLetter TupleAlphabet::Decode(Symbol id) const {
  ECRPQ_DCHECK(id >= 0 && id < num_symbols_);
  TupleLetter out(arity_);
  int64_t rest = id;
  for (int t = arity_ - 1; t >= 0; --t) {
    int digit = static_cast<int>(rest % (base_size_ + 1));
    rest /= (base_size_ + 1);
    out[t] = (digit == base_size_) ? kPad : static_cast<Symbol>(digit);
  }
  return out;
}

Symbol TupleAlphabet::Component(Symbol id, int tape) const {
  ECRPQ_DCHECK(tape >= 0 && tape < arity_);
  int64_t rest = id;
  for (int t = arity_ - 1; t > tape; --t) rest /= (base_size_ + 1);
  int digit = static_cast<int>(rest % (base_size_ + 1));
  return (digit == base_size_) ? kPad : static_cast<Symbol>(digit);
}

uint32_t TupleAlphabet::PadMask(Symbol id) const {
  uint32_t mask = 0;
  int64_t rest = id;
  for (int t = arity_ - 1; t >= 0; --t) {
    int digit = static_cast<int>(rest % (base_size_ + 1));
    rest /= (base_size_ + 1);
    if (digit == base_size_) mask |= (1u << t);
  }
  return mask;
}

std::string TupleAlphabet::Format(Symbol id, const Alphabet& base) const {
  TupleLetter letter = Decode(id);
  std::string out = "(";
  for (int t = 0; t < arity_; ++t) {
    if (t > 0) out += ",";
    out += (letter[t] == kPad) ? "⊥" : base.Label(letter[t]);
  }
  out += ")";
  return out;
}

Word Convolve(const TupleAlphabet& ta, const std::vector<Word>& strings) {
  ECRPQ_DCHECK(static_cast<int>(strings.size()) == ta.arity());
  size_t max_len = 0;
  for (const Word& s : strings) max_len = std::max(max_len, s.size());
  Word out;
  out.reserve(max_len);
  TupleLetter letter(ta.arity());
  for (size_t i = 0; i < max_len; ++i) {
    for (int t = 0; t < ta.arity(); ++t) {
      letter[t] = (i < strings[t].size()) ? strings[t][i] : kPad;
    }
    out.push_back(ta.Encode(letter));
  }
  return out;
}

Result<std::vector<Word>> Deconvolve(const TupleAlphabet& ta,
                                     const Word& word) {
  std::vector<Word> out(ta.arity());
  std::vector<bool> finished(ta.arity(), false);
  for (size_t i = 0; i < word.size(); ++i) {
    TupleLetter letter = ta.Decode(word[i]);
    bool any_letter = false;
    for (int t = 0; t < ta.arity(); ++t) {
      if (letter[t] == kPad) {
        finished[t] = true;
      } else {
        if (finished[t]) {
          return Status::InvalidArgument(
              "invalid convolution: letter after ⊥ on tape " +
              std::to_string(t));
        }
        out[t].push_back(letter[t]);
        any_letter = true;
      }
    }
    if (!any_letter) {
      return Status::InvalidArgument("invalid convolution: all-⊥ letter");
    }
  }
  return out;
}

bool IsValidConvolution(const TupleAlphabet& ta, const Word& word) {
  return Deconvolve(ta, word).ok();
}

}  // namespace ecrpq
